package nanoxbar_test

// End-to-end integration tests: expression front end → synthesis on
// every technology → fault-tolerant placement on a defective chip →
// defect-unaware recovery — the complete flow of the DATE'17 paper,
// crossing every internal package boundary.

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/arith"
	"nanoxbar/internal/bdd"
	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/bexpr"
	"nanoxbar/internal/bism"
	"nanoxbar/internal/bist"
	"nanoxbar/internal/core"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/dflow"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/redundancy"
	"nanoxbar/internal/variation"
)

func TestEndToEndSynthesisToPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// 1. Parse a function the way a user would.
	f, _, err := bexpr.ParseTT("x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6")
	if err != nil {
		t.Fatal(err)
	}
	// 2. Synthesize on all three technologies and verify each.
	cmp, err := core.CompareTechnologies(f, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range []*core.Implementation{cmp.Diode, cmp.FET, cmp.Lattice} {
		if !im.Verify(f) {
			t.Fatalf("%v implementation broken", im.Tech)
		}
	}
	// 3. Fabricate a defective chip large enough for the lattice.
	n := 24
	chip := defect.Random(n, n, defect.UniformCrosspoint(0.03), rng)
	// 4. Place with the hybrid self-mapper and validate.
	rep, err := core.MapWithRecovery(cmp.Lattice, chip, bism.Hybrid{}, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mapping == nil {
		t.Fatalf("placement failed: %+v", rep.Stats)
	}
	if !bism.Validate(bism.NewChip(chip), cmp.Lattice.ToApp(), rep.Mapping) {
		t.Fatal("placement invalid")
	}
	// 5. Alternatively, recover a universal sub-crossbar and confirm
	// the lattice fits inside it trivially.
	e := dflow.Greedy(chip)
	if e.K() < cmp.Lattice.Rows || e.K() < cmp.Lattice.Cols {
		t.Skipf("recovered k=%d too small for %d×%d (rare at p=3%%)", e.K(), cmp.Lattice.Rows, cmp.Lattice.Cols)
	}
	if !dflow.IsUniversal(chip, e.Rows[:cmp.Lattice.Rows], e.Cols[:cmp.Lattice.Cols]) {
		t.Fatal("sub-crossbar slice not universal")
	}
}

func TestEndToEndTestAndDiagnoseMatchesDefects(t *testing.T) {
	// The BIST machinery must detect a chip whose configuration is hit
	// by an injected fault, for every fault kind, on the synthesized
	// array shape of a real function.
	f := benchfn.Majority(3).F
	im, err := core.Synthesize(f, core.FourTerminal, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, c := im.Rows, im.Cols
	suite := bist.DetectionSuite(r, c)
	for _, fault := range bist.Universe(r, c) {
		if !suite.Detects(fault) {
			t.Fatalf("undetected fault %v on the synthesized %d×%d shape", fault, r, c)
		}
	}
}

func TestEndToEndSuiteCrossCheckTTvsBDD(t *testing.T) {
	// Every benchmark function elaborated via both engines must agree
	// (guards the two independent function-representation substrates).
	for _, s := range benchfn.Suite() {
		if s.N() > 10 {
			continue
		}
		m := bdd.New(s.N())
		ref := m.FromTT(s.F)
		if !m.ToTT(ref).Equal(s.F) {
			t.Fatalf("%s: BDD round trip diverges", s.Name)
		}
		if m.SatCount(ref) != s.F.CountOnes() {
			t.Fatalf("%s: SatCount disagrees with popcount", s.Name)
		}
	}
}

func TestEndToEndReliabilityPipeline(t *testing.T) {
	// Synthesis → variation placement → TMR → aging: the §IV pipeline.
	rng := rand.New(rand.NewSource(7))
	res, err := latsynth.DualMethod(benchfn.Majority(3).F, latsynth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l := res.Lattice
	// Variation-aware placement on a 16×16 chip.
	vm := variation.Lognormal(16, 16, 0.5, rng)
	best, worst := variation.BestPlacement(l, vm, 3, 2)
	if best.Delay > worst.Delay {
		t.Fatal("placement ordering broken")
	}
	// TMR protects the placed lattice against transients.
	bare, prot := redundancy.ErrorRates(l, 3, 3, 0.02, 3000, rng)
	if prot >= bare {
		t.Fatalf("TMR ineffective: %v vs %v", prot, bare)
	}
	// Aging with repair outlives aging without.
	noRep := redundancy.Lifetime(l, 3, redundancy.LifetimeParams{
		ChipN: 20, FaultsPerEp: 1.5, Epochs: 200, RetestEvery: 0, Seed: 3,
	})
	withRep := redundancy.Lifetime(l, 3, redundancy.LifetimeParams{
		ChipN: 20, FaultsPerEp: 1.5, Epochs: 200, RetestEvery: 2, RemapBudget: 100, Seed: 3,
	})
	if withRep.EpochsAlive <= noRep.EpochsAlive {
		t.Fatalf("repair did not help: %d vs %d", withRep.EpochsAlive, noRep.EpochsAlive)
	}
}

func TestEndToEndSSMOnRecoveredChip(t *testing.T) {
	// Future-work integration: synthesize the SSM, place each of its
	// lattices on a recovered defect-free sub-crossbar.
	rng := rand.New(rand.NewSource(21))
	m, err := arith.SynthesizeSSM(arith.SequenceDetector101(), latsynth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	chip := defect.Random(16, 16, defect.UniformCrosspoint(0.05), rng)
	e := dflow.Greedy(chip)
	for i, l := range append(m.NextBits, m.OutBit) {
		if l.R > e.K() || l.C > e.K() {
			t.Skipf("lattice %d larger than recovered region", i)
		}
	}
	// The recovered region hosts every SSM lattice without any
	// defect-awareness — the point of the Fig. 6(b) flow.
	if e.K() > 0 && !dflow.IsUniversal(chip, e.Rows, e.Cols) {
		t.Fatal("recovered region not universal")
	}
}
