package nanoxbar_test

import (
	"io"
	"testing"

	"nanoxbar/internal/experiments"
)

// The benchmarks regenerate the paper's evaluation: one bench per
// experiment of DESIGN.md §4. Key results are exported through
// b.ReportMetric so `go test -bench . -benchmem` output is the record
// EXPERIMENTS.md cites. Reports are discarded (written to io.Discard);
// run cmd/repro to read the full tables.

func BenchmarkE1TwoTerminalSizes(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E1TwoTerminalSizes()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["xnor2_diode_area"], "xnor2-diode-area")
	b.ReportMetric(r.Metrics["xnor2_fet_area"], "xnor2-fet-area")
}

func BenchmarkE2FourTerminalVsTwoTerminal(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E2FourTerminalComparison()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["lattice_wins"], "lattice-wins")
	b.ReportMetric(r.Metrics["total"], "functions")
	b.ReportMetric(r.Metrics["mean_lat_area"], "mean-lattice-area")
	b.ReportMetric(r.Metrics["mean_diode_area"], "mean-diode-area")
}

func BenchmarkE3Fig4Lattice(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E3Fig4()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["hand_area"], "hand-area")
	b.ReportMetric(r.Metrics["dual_area"], "dual-method-area")
}

func BenchmarkE4PCircuit(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E4PCircuit()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["improved_exact"], "improved-exact")
	b.ReportMetric(r.Metrics["tried_exact"], "tried")
}

func BenchmarkE5DReducible(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E5DReducible()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["improved"], "improved")
	b.ReportMetric(r.Metrics["tried"], "tried")
	b.ReportMetric(r.Metrics["mean_direct"], "mean-direct-area")
	b.ReportMetric(r.Metrics["mean_dec"], "mean-decomposed-area")
}

func BenchmarkE6BIST(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E6BIST()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(100*r.Metrics["coverage_16"], "coverage-pct-16x16")
	b.ReportMetric(r.Metrics["diag_configs_16"], "diag-configs-16x16")
}

func BenchmarkE7BISM(b *testing.B) {
	p := experiments.DefaultE7Params()
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E7BISM(p)
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(100*r.Metrics["blind_ok_0.001"], "blind-ok-pct-lowp")
	b.ReportMetric(100*r.Metrics["blind_ok_0.150"], "blind-ok-pct-highp")
	b.ReportMetric(100*r.Metrics["greedy_ok_0.150"], "greedy-ok-pct-highp")
	b.ReportMetric(100*r.Metrics["hybrid(4)_ok_0.150"], "hybrid-ok-pct-highp")
}

func BenchmarkE8DefectUnawareFlow(b *testing.B) {
	p := experiments.DefaultE8Params()
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E8DefectUnaware(p)
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["meanK_n64_p0.05"], "mean-k-n64-p5pct")
	b.ReportMetric(r.Metrics["cost_advantage"], "flow-cost-advantage")
}

func BenchmarkE9ArithSSM(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E9ArithSSM()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["adder8_area"], "adder8-area")
	b.ReportMetric(r.Metrics["ssm_area"], "ssm-area")
	b.ReportMetric(100*r.Metrics["ssm_equiv"], "ssm-equiv-pct")
}

func BenchmarkE10Variation(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E10Variation()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["p99_over_mean_s0.5"], "p99-over-mean-sigma0.5")
	b.ReportMetric(r.Metrics["placement_gain_s0.5"], "placement-gain-pct")
}

func BenchmarkE11Lifetime(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.E11Lifetime()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["bare_err"], "bare-error-rate")
	b.ReportMetric(r.Metrics["tmr_err"], "tmr-error-rate")
	b.ReportMetric(r.Metrics["alive_period_0"], "epochs-alive-no-repair")
	b.ReportMetric(r.Metrics["alive_period_2"], "epochs-alive-retest2")
}

func BenchmarkAblationSynthesis(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSynthesis()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["area_exact+freq+reduce"], "total-area-full")
	b.ReportMetric(r.Metrics["area_no-postreduce"], "total-area-no-reduce")
	b.ReportMetric(r.Metrics["area_isop-covers"], "total-area-isop")
	b.ReportMetric(r.Metrics["area_first-literal"], "total-area-first-literal")
}

func BenchmarkAblationHybridThreshold(b *testing.B) {
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationHybridThreshold()
	}
	r.WriteTo(io.Discard)
	b.ReportMetric(r.Metrics["cost_bb1"], "mean-cost-budget1")
	b.ReportMetric(r.Metrics["cost_bb4"], "mean-cost-budget4")
	b.ReportMetric(r.Metrics["cost_bb32"], "mean-cost-budget32")
}
