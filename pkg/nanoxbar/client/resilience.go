// Client-side resilience: opt-in retries with jittered exponential
// backoff and a per-endpoint circuit breaker. Off by default — the base
// client fails fast exactly as before — and deterministic under test:
// the clock and the jitter seed are both injectable.
package client

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"nanoxbar/internal/resilience"
	"nanoxbar/pkg/nanoxbar"
)

// ResilienceConfig tunes WithResilience. The zero value gets the
// resilience package defaults: 3 attempts, 50ms base backoff doubling
// to 2s with half-range jitter, breaker opening after 5 consecutive
// unavailable-class failures with a 1s cooldown.
type ResilienceConfig struct {
	// Retry shapes the backoff schedule for retryable failures
	// (overloaded and unavailable-class errors on idempotent calls).
	Retry resilience.RetryPolicy
	// Breaker tunes the per-endpoint circuit breaker. Only
	// unavailable-class failures (server unreachable, 503) count toward
	// opening it; an overloaded server shedding load is alive and does
	// not trip the circuit.
	Breaker resilience.BreakerConfig
	// Seed drives the backoff jitter (deterministic schedules in tests).
	Seed int64
	// Clock substitutes the time source; nil uses the wall clock.
	Clock resilience.Clock
}

// WithResilience enables retries and circuit breaking on the client.
func WithResilience(cfg ResilienceConfig) Option {
	return func(c *Client) {
		clock := cfg.Clock
		if clock == nil {
			clock = resilience.Wall()
		}
		c.res = &resilienceState{
			clock:      clock,
			retrier:    resilience.NewRetrier(cfg.Retry, clock, cfg.Seed),
			breakerCfg: cfg.Breaker,
			breakers:   make(map[string]*resilience.Breaker),
		}
	}
}

// ResilienceStats snapshots the client's retry and breaker counters —
// the numbers the soak driver bridges into /metrics.
type ResilienceStats struct {
	Retry    resilience.RetryStats
	Breakers map[string]resilience.BreakerStats // by endpoint path
}

// ResilienceStats reports the client's resilience counters; ok is false
// when WithResilience was not configured.
func (c *Client) ResilienceStats() (ResilienceStats, bool) {
	if c.res == nil {
		return ResilienceStats{}, false
	}
	st := ResilienceStats{Retry: c.res.retrier.Stats(), Breakers: map[string]resilience.BreakerStats{}}
	c.res.mu.Lock()
	for path, b := range c.res.breakers {
		st.Breakers[path] = b.Stats()
	}
	c.res.mu.Unlock()
	return st, true
}

// resilienceState is the per-client retry/breaker machinery.
type resilienceState struct {
	clock   resilience.Clock
	retrier *resilience.Retrier

	mu         sync.Mutex
	breakerCfg resilience.BreakerConfig
	breakers   map[string]*resilience.Breaker
}

// breaker returns the endpoint's circuit, creating it closed on first
// use.
func (rs *resilienceState) breaker(path string) *resilience.Breaker {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	b := rs.breakers[path]
	if b == nil {
		b = resilience.NewBreaker(rs.breakerCfg, rs.clock, nil)
		rs.breakers[path] = b
	}
	return b
}

// retryable reports whether a failure class is worth retrying: the
// server shedding load (it told us when to come back) or being
// unreachable (the next attempt may hit a recovered process). Bad
// requests, infeasible functions, cancellations, and internal errors
// are not — the retry would fail identically or mask a bug.
func retryable(err error) bool {
	return errors.Is(err, nanoxbar.ErrOverloaded) || errors.Is(err, nanoxbar.ErrUnavailable)
}

// breakerFailure reports whether a failure should count toward opening
// the circuit: only unavailable-class errors, where the server (or the
// path to it) is actually down.
func breakerFailure(err error) bool {
	return errors.Is(err, nanoxbar.ErrUnavailable)
}

// withResilience runs op under the client's retry/breaker machinery.
// Disabled (res == nil), it calls op once, unchanged. op receives the
// attempt number and reports via its return; committed reports whether
// the attempt observably delivered data to the caller (events handed to
// a stream handler), which makes the call non-replayable — a failure
// after commitment aborts instead of retrying.
func (c *Client) withResilience(ctx context.Context, path string, op func(ctx context.Context) (committed bool, err error)) error {
	if c.res == nil {
		_, err := op(ctx)
		return err
	}
	br := c.res.breaker(path)
	return c.res.retrier.Do(ctx, func(ctx context.Context, _ int) error {
		if err := br.Allow(); err != nil {
			// Open circuit: fail fast and typed; retrying inside this
			// Do would just burn the backoff against a fenced endpoint.
			return resilience.Abort(nanoxbar.ErrorFromCode(nanoxbar.CodeUnavailable,
				"client: circuit open for "+path))
		}
		committed, err := op(ctx)
		br.Report(err == nil || !breakerFailure(err))
		if err == nil {
			return nil
		}
		if committed || !retryable(err) {
			return resilience.Abort(err)
		}
		return err
	})
}

// setDeadlineHeader forwards the context's remaining budget as
// X-Deadline-Ms so the server can shed or degrade work the client will
// not wait for anyway.
func setDeadlineHeader(req *http.Request) {
	if d, ok := req.Context().Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
}

// retryAfterHint parses a Retry-After header value per RFC 9110
// §10.2.3, which allows two shapes: delta-seconds ("3") and an
// HTTP-date ("Fri, 08 Aug 2026 01:02:03 GMT" — also the obsolete
// RFC 850 and asctime forms, via http.ParseTime). now anchors the date
// form; a date at or before now, like a non-positive delta, yields no
// hint. The hint feeds the retrier's hint-as-floor logic: it can only
// lengthen a backoff sleep, never shorten one.
func retryAfterHint(value string, now time.Time) time.Duration {
	if n, err := strconv.Atoi(value); err == nil {
		if n <= 0 {
			return 0
		}
		return time.Duration(n) * time.Second
	}
	t, err := http.ParseTime(value)
	if err != nil {
		return 0
	}
	if d := t.Sub(now); d > 0 {
		return d
	}
	return 0
}

// now reads the client's time source: the injected resilience clock
// when resilience is configured (tests pin it with resilience.Fake),
// the wall clock otherwise.
func (c *Client) now() time.Time {
	if c.res != nil {
		return c.res.clock.Now()
	}
	return resilience.Wall().Now()
}

// withRetryAfterHint attaches the response's Retry-After header to err
// so the retrier sleeps at least as long as the server asked.
func (c *Client) withRetryAfterHint(resp *http.Response, err error) error {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if d := retryAfterHint(s, c.now()); d > 0 {
			return resilience.WithRetryAfter(err, d)
		}
	}
	return err
}
