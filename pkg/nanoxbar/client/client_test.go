// Conformance suite: the same scenarios run against both
// implementations of nanoxbar.API — the in-process Client and the HTTP
// client talking to an httptest server over the v2 NDJSON endpoints.
// This is the acceptance contract of the public SDK: local and remote
// callers are interchangeable, including streaming, mid-sweep
// cancellation, and the error taxonomy surviving the HTTP round-trip.
package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
	"nanoxbar/pkg/nanoxbar"
	"nanoxbar/pkg/nanoxbar/client"
)

// impls builds one fresh instance of each API implementation. Each
// test scenario gets its own engines, so cache-hit assertions are
// deterministic.
func impls(t *testing.T) map[string]nanoxbar.API {
	t.Helper()
	local := nanoxbar.NewClient(nanoxbar.ClientConfig{Workers: 4, CacheSize: 64})
	t.Cleanup(func() { local.Close() })

	eng := engine.New(engine.Config{Workers: 4, CacheSize: 64})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(httpapi.New(eng))
	t.Cleanup(ts.Close)
	remote := client.New(ts.URL)
	t.Cleanup(func() { remote.Close() })

	return map[string]nanoxbar.API{"inprocess": local, "http": remote}
}

// forEachImpl runs the scenario against both implementations.
func forEachImpl(t *testing.T, scenario func(t *testing.T, api nanoxbar.API)) {
	for name, api := range impls(t) {
		t.Run(name, func(t *testing.T) { scenario(t, api) })
	}
}

func TestConformanceSynthesize(t *testing.T) {
	forEachImpl(t, func(t *testing.T, api nanoxbar.API) {
		ctx := context.Background()
		syn, err := api.Synthesize(ctx, nanoxbar.Expr("x1x2 + x1'x2'"))
		if err != nil {
			t.Fatal(err)
		}
		if syn.Area == 0 || syn.Tech != "4T-lattice" || syn.Key == "" {
			t.Fatalf("bad synthesis %+v", syn)
		}
		if syn.CacheHit {
			t.Fatal("first synthesis reported a cache hit")
		}
		// The engine canonicalizes by truth table: an equivalent
		// expression must hit the same cache entry.
		again, err := api.Synthesize(ctx, nanoxbar.Expr("x1'x2' + x1x2"))
		if err != nil {
			t.Fatal(err)
		}
		if !again.CacheHit || again.Key != syn.Key {
			t.Fatalf("equivalent function missed the cache: %+v vs %+v", again, syn)
		}
		// Technology selection.
		dio, err := api.Synthesize(ctx, nanoxbar.Func("maj3"), nanoxbar.WithTech("diode"))
		if err != nil {
			t.Fatal(err)
		}
		if dio.Tech != "diode" {
			t.Fatalf("tech %q, want diode", dio.Tech)
		}
	})
}

func TestConformanceCompare(t *testing.T) {
	forEachImpl(t, func(t *testing.T, api nanoxbar.API) {
		cmp, err := api.Compare(context.Background(), nanoxbar.Func("maj3"))
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Diode.Area == 0 || cmp.FET.Area == 0 || cmp.Lattice.Area == 0 {
			t.Fatalf("incomplete comparison %+v", cmp)
		}
	})
}

func TestConformanceMap(t *testing.T) {
	forEachImpl(t, func(t *testing.T, api nanoxbar.API) {
		ctx := context.Background()
		opts := []nanoxbar.Option{nanoxbar.WithDensity(0.05), nanoxbar.WithSeed(42), nanoxbar.WithScheme("greedy")}
		mo, err := api.Map(ctx, nanoxbar.Func("maj3"), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if mo.ChipSize == 0 || mo.Configs == 0 {
			t.Fatalf("bad map outcome %+v", mo)
		}
		// Determinism: the same seed reproduces the same outcome.
		mo2, err := api.Map(ctx, nanoxbar.Func("maj3"), opts...)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(mo)
		b, _ := json.Marshal(mo2)
		if string(a) != string(b) {
			t.Fatalf("same seed, different outcomes:\n%s\n%s", a, b)
		}
	})
}

func TestConformanceYieldStreaming(t *testing.T) {
	forEachImpl(t, func(t *testing.T, api nanoxbar.API) {
		const chips = 25
		var mu sync.Mutex
		seen := make(map[int]bool)
		ys, err := api.YieldSweep(context.Background(), nanoxbar.Func("maj3"),
			nanoxbar.WithChips(chips), nanoxbar.WithDensity(0.04), nanoxbar.WithSeed(7),
			nanoxbar.OnDie(func(d nanoxbar.Die) {
				mu.Lock()
				defer mu.Unlock()
				if d.Err != nil || d.Map == nil {
					t.Errorf("die %d: err=%v map=%v", d.Index, d.Err, d.Map)
				}
				if seen[d.Index] {
					t.Errorf("die %d streamed twice", d.Index)
				}
				seen[d.Index] = true
			}))
		if err != nil {
			t.Fatal(err)
		}
		if ys.Chips != chips || ys.SuccessRate < 0 || ys.SuccessRate > 1 {
			t.Fatalf("bad yield stats %+v", ys)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(seen) != chips {
			t.Fatalf("streamed %d dies, want %d", len(seen), chips)
		}
	})
}

// TestConformanceErrorTaxonomy: typed errors behave identically
// in-process and across the HTTP boundary — the acceptance criterion's
// errors.Is(err, nanoxbar.ErrInfeasible) holds client-side.
func TestConformanceErrorTaxonomy(t *testing.T) {
	tiny := nanoxbar.DefectMapSpec{Rows: []string{"..", ".."}}
	cases := []struct {
		name     string
		call     func(ctx context.Context, api nanoxbar.API) error
		sentinel error
	}{
		{"bad spec", func(ctx context.Context, api nanoxbar.API) error {
			_, err := api.Synthesize(ctx, nanoxbar.Func("no-such-benchmark"))
			return err
		}, nanoxbar.ErrBadSpec},
		{"bad expression", func(ctx context.Context, api nanoxbar.API) error {
			_, err := api.Synthesize(ctx, nanoxbar.Expr("x1 +* x2"))
			return err
		}, nanoxbar.ErrBadSpec},
		{"bad tech", func(ctx context.Context, api nanoxbar.API) error {
			_, err := api.Synthesize(ctx, nanoxbar.Func("maj3"), nanoxbar.WithTech("cmos"))
			return err
		}, nanoxbar.ErrBadSpec},
		{"infeasible chip", func(ctx context.Context, api nanoxbar.API) error {
			_, err := api.Map(ctx, nanoxbar.Func("maj3"), nanoxbar.WithChip(tiny))
			return err
		}, nanoxbar.ErrInfeasible},
		{"canceled upfront", func(ctx context.Context, api nanoxbar.API) error {
			dead, cancel := context.WithCancel(ctx)
			cancel()
			_, err := api.Synthesize(dead, nanoxbar.Func("maj3"))
			return err
		}, nanoxbar.ErrCanceled},
	}
	forEachImpl(t, func(t *testing.T, api nanoxbar.API) {
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				err := tc.call(context.Background(), api)
				if err == nil {
					t.Fatal("call unexpectedly succeeded")
				}
				if !errors.Is(err, tc.sentinel) {
					t.Fatalf("error %v (%T), want errors.Is against %v", err, err, tc.sentinel)
				}
				var ae *apierr.Error
				if !errors.As(err, &ae) {
					t.Fatalf("errors.As(*apierr.Error) failed for %v", err)
				}
				if ae.Code() != nanoxbar.ErrorCode(tc.sentinel) {
					t.Fatalf("code %q, want %q", ae.Code(), nanoxbar.ErrorCode(tc.sentinel))
				}
			})
		}
	})
}

// TestConformanceMidSweepCancellation: canceling from inside the OnDie
// stream stops the sweep early with ErrCanceled on both transports.
func TestConformanceMidSweepCancellation(t *testing.T) {
	forEachImpl(t, func(t *testing.T, api nanoxbar.API) {
		// The sweep must be big enough that the server cannot finish it
		// before the client observes die 3 and cancels — the bit-parallel
		// fault path maps small dies in a few microseconds, so this uses
		// many large dies.
		const chips = 50000
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var mu sync.Mutex
		dies := 0
		_, err := api.YieldSweep(ctx, nanoxbar.Func("maj3"),
			nanoxbar.WithChips(chips), nanoxbar.WithDensity(0.05), nanoxbar.WithSeed(3),
			nanoxbar.WithChipSize(64),
			nanoxbar.OnDie(func(d nanoxbar.Die) {
				mu.Lock()
				dies++
				n := dies
				mu.Unlock()
				if n == 3 {
					cancel()
				}
			}))
		if err == nil {
			t.Fatal("canceled sweep succeeded")
		}
		if !errors.Is(err, nanoxbar.ErrCanceled) {
			t.Fatalf("error %v, want ErrCanceled", err)
		}
		mu.Lock()
		defer mu.Unlock()
		if dies >= chips {
			t.Fatalf("observed all %d dies despite cancellation", dies)
		}
	})
}

// lockedBuf is a goroutine-safe log sink for the request-ID scenario.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestConformanceRequestID: a request ID placed in the context is
// observable on both transports — it appears in the engine's debug log
// either way, and the HTTP transport additionally forwards it as the
// X-Request-ID header so it lands in the server's access log and on
// every v2 stream frame.
func TestConformanceRequestID(t *testing.T) {
	const reqID = "conformance-req-7f3a"

	logged := map[string]*lockedBuf{"inprocess": {}, "http": {}}
	logger := func(name string) *slog.Logger {
		return slog.New(slog.NewJSONHandler(logged[name], &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	local := nanoxbar.NewClient(nanoxbar.ClientConfig{Workers: 4, CacheSize: 64, Logger: logger("inprocess")})
	t.Cleanup(func() { local.Close() })

	eng := engine.New(engine.Config{Workers: 4, CacheSize: 64, Logger: logger("http")})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(httpapi.New(eng, httpapi.WithLogger(logger("http"))))
	t.Cleanup(ts.Close)
	remote := client.New(ts.URL)
	t.Cleanup(func() { remote.Close() })

	for name, api := range map[string]nanoxbar.API{"inprocess": local, "http": remote} {
		t.Run(name, func(t *testing.T) {
			ctx := nanoxbar.ContextWithRequestID(context.Background(), reqID)
			if got := nanoxbar.RequestIDFromContext(ctx); got != reqID {
				t.Fatalf("context round-trip: %q", got)
			}
			if _, err := api.Map(ctx, nanoxbar.Func("maj3"),
				nanoxbar.WithSeed(11), nanoxbar.WithDensity(0.02)); err != nil {
				t.Fatal(err)
			}
			if out := logged[name].String(); !strings.Contains(out, reqID) {
				t.Fatalf("%s logs do not contain the request ID:\n%s", name, out)
			}
		})
	}

	// The HTTP transport's stream frames carry the ID end to end: drive
	// the raw Jobs API and inspect the events the client hands back.
	ctx := nanoxbar.ContextWithRequestID(context.Background(), reqID)
	frames := 0
	err := remote.Jobs(ctx, nanoxbar.JobsRequest{
		Requests: []nanoxbar.Request{{Kind: nanoxbar.KindSynthesize,
			Function: nanoxbar.Func("maj3")}},
	}, func(ev nanoxbar.Event) {
		frames++
		if ev.RequestID != reqID {
			t.Fatalf("frame %d request_id %q, want %q", frames, ev.RequestID, reqID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if frames == 0 {
		t.Fatal("no frames observed")
	}
}
