package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
	"nanoxbar/internal/resilience"
	"nanoxbar/pkg/nanoxbar"
	"nanoxbar/pkg/nanoxbar/client"
)

// flakyFront fronts a real httpapi server: the first failFor requests
// (across all paths) get a synthesized 503 with a Retry-After, the rest
// are delegated. calls counts everything that arrived.
type flakyFront struct {
	backend http.Handler
	failFor int64
	calls   atomic.Int64
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.calls.Add(1)
	if n <= f.failFor {
		w.Header().Set("Retry-After", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"unavailable","message":"front: not ready"}}`)
		return
	}
	f.backend.ServeHTTP(w, r)
}

// resilientClient builds a real engine+server behind front and a client
// with deterministic resilience (fake clock, zero jitter).
func resilientClient(t *testing.T, front *flakyFront, cfg client.ResilienceConfig) (*client.Client, *resilience.Fake) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, CacheSize: 16})
	t.Cleanup(eng.Close)
	front.backend = httpapi.New(eng)
	ts := httptest.NewServer(front)
	t.Cleanup(ts.Close)
	fc := resilience.NewFake(time.Unix(0, 0))
	if cfg.Clock == nil {
		cfg.Clock = fc
	}
	if cfg.Retry.Jitter == 0 {
		cfg.Retry.Jitter = 0 // explicit: deterministic schedule
	}
	cl := client.New(ts.URL, client.WithResilience(cfg))
	t.Cleanup(func() { cl.Close() })
	return cl, fc
}

func TestClientRetriesHonoringRetryAfter(t *testing.T) {
	front := &flakyFront{failFor: 2}
	cl, fc := resilientClient(t, front, client.ResilienceConfig{
		Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond},
	})

	syn, err := cl.Synthesize(context.Background(), nanoxbar.TT("2:0x6"))
	if err != nil {
		t.Fatalf("Synthesize after transient 503s: %v", err)
	}
	if syn == nil || syn.Area <= 0 {
		t.Fatalf("bad synthesis: %+v", syn)
	}
	if got := front.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	// The server's Retry-After (2s) overrides the 50ms/100ms backoff.
	sleeps := fc.Sleeps()
	if len(sleeps) != 2 || sleeps[0] != 2*time.Second || sleeps[1] != 2*time.Second {
		t.Fatalf("sleeps = %v, want [2s 2s]", sleeps)
	}
	st, ok := cl.ResilienceStats()
	if !ok {
		t.Fatal("ResilienceStats not enabled")
	}
	if st.Retry.Attempts != 3 || st.Retry.Retries != 2 || st.Retry.Exhausted != 0 {
		t.Fatalf("retry stats = %+v", st.Retry)
	}
}

func TestClientRetryExhaustion(t *testing.T) {
	front := &flakyFront{failFor: 1 << 30} // never recovers
	cl, _ := resilientClient(t, front, client.ResilienceConfig{
		Retry:   resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Breaker: resilience.BreakerConfig{FailureThreshold: 100}, // keep the breaker out of this test
	})

	_, err := cl.Synthesize(context.Background(), nanoxbar.TT("2:0x6"))
	if !errors.Is(err, nanoxbar.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if got := front.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	st, _ := cl.ResilienceStats()
	if st.Retry.Exhausted != 1 {
		t.Fatalf("retry stats = %+v", st.Retry)
	}
}

func TestClientDoesNotRetryBadRequests(t *testing.T) {
	front := &flakyFront{}
	cl, fc := resilientClient(t, front, client.ResilienceConfig{})

	_, err := cl.Synthesize(context.Background(), nanoxbar.TT("not-a-table"))
	if !errors.Is(err, nanoxbar.ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
	if got := front.calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (bad specs must not retry)", got)
	}
	if len(fc.Sleeps()) != 0 {
		t.Fatalf("client slept %v for a non-retryable error", fc.Sleeps())
	}
}

func TestClientBreakerOpensThenRecovers(t *testing.T) {
	front := &flakyFront{failFor: 2}
	cl, fc := resilientClient(t, front, client.ResilienceConfig{
		Retry:   resilience.RetryPolicy{MaxAttempts: 1}, // isolate the breaker
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Second},
	})
	ctx := context.Background()

	// Two unavailable failures open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := cl.Synthesize(ctx, nanoxbar.TT("2:0x6")); !errors.Is(err, nanoxbar.ErrUnavailable) {
			t.Fatalf("call %d: %v, want ErrUnavailable", i, err)
		}
	}
	// Open: calls fail fast without touching the server.
	before := front.calls.Load()
	if _, err := cl.Synthesize(ctx, nanoxbar.TT("2:0x6")); !errors.Is(err, nanoxbar.ErrUnavailable) {
		t.Fatalf("open-circuit call: %v", err)
	}
	if got := front.calls.Load(); got != before {
		t.Fatalf("open circuit let a request through (%d → %d)", before, got)
	}

	// Cooldown elapses; the half-open probe hits the now-healthy server
	// and closes the circuit.
	fc.Advance(time.Second)
	if _, err := cl.Synthesize(ctx, nanoxbar.TT("2:0x6")); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	st, _ := cl.ResilienceStats()
	br := st.Breakers["/v2/jobs"]
	if br.State != resilience.BreakerClosed || br.Opens != 1 || br.Closes != 1 || br.Rejections != 1 {
		t.Fatalf("breaker stats = %+v", br)
	}
	// Closed again: traffic flows normally.
	if _, err := cl.Synthesize(ctx, nanoxbar.TT("2:0x6")); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
}

func TestClientNoRetryAfterEventsDelivered(t *testing.T) {
	// A stream that dies after delivering events must not be replayed:
	// the caller's handler already observed data.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		// One result event, then the connection dies without "done".
		fmt.Fprintln(w, `{"type":"result","index":0,"result":{"kind":"synthesize","synthesis":{"tech":"lattice","rows":2,"cols":2,"area":4,"method":"x"}}}`)
	}))
	t.Cleanup(ts.Close)
	fc := resilience.NewFake(time.Unix(0, 0))
	cl := client.New(ts.URL, client.WithResilience(client.ResilienceConfig{
		Retry: resilience.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Clock: fc,
	}))
	t.Cleanup(func() { cl.Close() })

	events := 0
	err := cl.Jobs(context.Background(), nanoxbar.JobsRequest{
		Requests: []nanoxbar.Request{{Kind: nanoxbar.KindSynthesize,
			Function: nanoxbar.FunctionSpec{TT: "2:0x6"}}},
	}, func(nanoxbar.Event) { events++ })
	if !errors.Is(err, nanoxbar.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable (stream died without done)", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (committed streams must not retry)", calls.Load())
	}
	if events != 1 {
		t.Fatalf("handler saw %d events, want 1", events)
	}
}

func TestClientStatsRetries(t *testing.T) {
	front := &flakyFront{failFor: 2}
	cl, _ := resilientClient(t, front, client.ResilienceConfig{
		Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats after transient 503s: %v", err)
	}
	if st.Workers != 2 {
		t.Fatalf("stats workers = %d, want 2", st.Workers)
	}
	if got := front.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

func TestClientWithoutResilienceUnchanged(t *testing.T) {
	front := &flakyFront{failFor: 1}
	eng := engine.New(engine.Config{Workers: 1, CacheSize: 8})
	t.Cleanup(eng.Close)
	front.backend = httpapi.New(eng)
	ts := httptest.NewServer(front)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	t.Cleanup(func() { cl.Close() })

	if _, err := cl.Synthesize(context.Background(), nanoxbar.TT("2:0x6")); !errors.Is(err, nanoxbar.ErrUnavailable) {
		t.Fatalf("err = %v, want one typed ErrUnavailable (no retry)", err)
	}
	if got := front.calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
	if _, ok := cl.ResilienceStats(); ok {
		t.Fatal("ResilienceStats reported enabled on a plain client")
	}
}
