package client

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfterHintForms pins both RFC 9110 §10.2.3 Retry-After
// shapes — delta-seconds and HTTP-date — plus the junk the parser must
// shrug off. now anchors the date form.
func TestRetryAfterHintForms(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		value string
		want  time.Duration
	}{
		{"delta seconds", "3", 3 * time.Second},
		{"delta large", "120", 2 * time.Minute},
		{"delta zero", "0", 0},
		{"delta negative", "-5", 0},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date GMT form", "Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second},
		{"http date at now", now.Format(http.TimeFormat), 0},
		{"http date past", now.Add(-time.Hour).Format(http.TimeFormat), 0},
		// RFC 850 and asctime are the obsolete-but-mandatory forms
		// http.ParseTime accepts.
		{"rfc850 date", "Saturday, 08-Aug-26 12:01:00 GMT", time.Minute},
		{"asctime date", "Sat Aug  8 12:02:00 2026", 2 * time.Minute},
		{"garbage", "soon", 0},
		{"empty", "", 0},
		{"float delta", "1.5", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterHint(tc.value, now); got != tc.want {
				t.Fatalf("retryAfterHint(%q) = %v, want %v", tc.value, got, tc.want)
			}
		})
	}
}
