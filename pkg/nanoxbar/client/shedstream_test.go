package client_test

import (
	"context"
	"errors"
	"testing"

	"nanoxbar/internal/resilience"
	"nanoxbar/pkg/nanoxbar"
	"nanoxbar/pkg/nanoxbar/client"
)

// TestConformanceShedCarriesRetryAfter: a shed request must tell the
// caller when to come back — through BOTH implementations. The
// in-process client carries the hint on the typed error itself; the
// HTTP client reconstructs it (header on non-200 bodies, RetryAfterMs
// on stream frames).
func TestConformanceShedCarriesRetryAfter(t *testing.T) {
	for name, s := range saturableImpls(t) {
		t.Run(name, func(t *testing.T) {
			stop1 := holdWorker(t, s.api)
			defer stop1()
			waitStats(t, "worker pickup", func() bool { return s.stats().Requests >= 1 })
			stop2 := holdWorker(t, s.api)
			defer stop2()
			waitStats(t, "queue occupancy", func() bool { return s.stats().QueuedJobs == 1 })

			_, err := s.api.Synthesize(context.Background(), nanoxbar.TT("2:0x6"))
			if !errors.Is(err, nanoxbar.ErrOverloaded) {
				t.Fatalf("saturated synthesize: %v, want ErrOverloaded", err)
			}
			if code := nanoxbar.ErrorCode(err); code != nanoxbar.CodeOverloaded {
				t.Fatalf("wire code = %q, want %q", code, nanoxbar.CodeOverloaded)
			}
			if resilience.RetryAfter(err) <= 0 {
				t.Fatalf("shed error carried no Retry-After hint: %v", err)
			}

			// Release the worker before the queued job: the queued
			// sweep only observes its cancellation once a worker picks
			// it up.
			stop1()
			stop2()
		})
	}
}

// TestConformanceMidStreamShedFrame: a /v2/jobs stream is already 200
// by the time admission sheds one of its requests, so the Retry-After
// header is not available — the hint must ride the NDJSON error frame
// (WireError.RetryAfterMs) and reconstruct into a typed error with
// the hint attached.
func TestConformanceMidStreamShedFrame(t *testing.T) {
	s := saturableImpls(t)["http"]
	cl, ok := s.api.(*client.Client)
	if !ok {
		t.Fatal("http impl is not *client.Client")
	}

	stop1 := holdWorker(t, s.api)
	defer stop1()
	waitStats(t, "worker pickup", func() bool { return s.stats().Requests >= 1 })
	stop2 := holdWorker(t, s.api)
	defer stop2()
	waitStats(t, "queue occupancy", func() bool { return s.stats().QueuedJobs == 1 })

	var frames []nanoxbar.Event
	err := cl.Jobs(context.Background(), nanoxbar.JobsRequest{
		Requests: []nanoxbar.Request{{Kind: nanoxbar.KindSynthesize,
			Function: nanoxbar.FunctionSpec{TT: "2:0x6"}}},
	}, func(ev nanoxbar.Event) { frames = append(frames, ev) })
	if err != nil {
		// Request-level failures are frames, not a Jobs error.
		t.Fatalf("Jobs: %v", err)
	}

	var shed *nanoxbar.WireError
	for _, ev := range frames {
		if ev.Type == nanoxbar.EventError && ev.Error != nil {
			shed = ev.Error
			break
		}
	}
	if shed == nil {
		t.Fatalf("no error frame in stream (%d frames)", len(frames))
	}
	if shed.Code != nanoxbar.CodeOverloaded {
		t.Fatalf("error frame code = %q, want %q", shed.Code, nanoxbar.CodeOverloaded)
	}
	if shed.RetryAfterMs <= 0 {
		t.Fatalf("error frame carried no retry_after_ms: %+v", shed)
	}

	// The frame reconstructs into the full typed error: taxonomy
	// identity AND the backoff hint.
	rerr := shed.Err()
	if !errors.Is(rerr, nanoxbar.ErrOverloaded) {
		t.Fatalf("reconstructed error = %v, want ErrOverloaded", rerr)
	}
	if resilience.RetryAfter(rerr) <= 0 {
		t.Fatalf("reconstructed error lost the Retry-After hint: %v", rerr)
	}

	stop1()
	stop2()
}
