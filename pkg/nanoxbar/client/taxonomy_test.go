package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
	"nanoxbar/internal/resilience"
	"nanoxbar/pkg/nanoxbar"
	"nanoxbar/pkg/nanoxbar/client"
)

// saturable pairs an API implementation with a view of its engine
// stats, so overload scenarios can sequence saturation deterministically
// instead of racing the worker pool.
type saturable struct {
	api   nanoxbar.API
	stats func() nanoxbar.Stats
}

// saturableImpls builds both implementations over a tiny engine: one
// worker, one queue slot, and a short admission budget, so a held
// worker plus a full queue sheds the next request.
func saturableImpls(t *testing.T) map[string]saturable {
	t.Helper()
	adm := struct {
		workers, depth int
		wait           time.Duration
	}{1, 1, 50 * time.Millisecond}

	local := nanoxbar.NewClient(nanoxbar.ClientConfig{
		Workers: adm.workers, CacheSize: 8,
		QueueDepth: adm.depth, MaxQueueWait: adm.wait,
	})
	t.Cleanup(func() { local.Close() })

	eng := engine.New(engine.Config{
		Workers: adm.workers, CacheSize: 8,
		QueueDepth: adm.depth, MaxQueueWait: adm.wait,
	})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(httpapi.New(eng))
	t.Cleanup(ts.Close)
	remote := client.New(ts.URL)
	t.Cleanup(func() { remote.Close() })

	return map[string]saturable{
		"inprocess": {api: local, stats: local.Stats},
		"http":      {api: remote, stats: eng.Stats},
	}
}

// holdWorker occupies a worker with a long cancellable yield sweep via
// the public API and returns an idempotent stop function.
func holdWorker(t *testing.T, api nanoxbar.API) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = api.YieldSweep(ctx, nanoxbar.Func("maj5"),
			nanoxbar.WithChips(100000), nanoxbar.WithChipSize(48),
			nanoxbar.WithDensity(0.4), nanoxbar.WithSeed(1))
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}

// waitStats polls cond until true or a 10s deadline.
func waitStats(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConformanceOverloadedTyped: both implementations shed identically
// under queue saturation — errors.Is(err, ErrOverloaded) holds and the
// wire code survives the HTTP round-trip.
func TestConformanceOverloadedTyped(t *testing.T) {
	for name, s := range saturableImpls(t) {
		t.Run(name, func(t *testing.T) {
			stop1 := holdWorker(t, s.api)
			defer stop1()
			waitStats(t, "worker pickup", func() bool { return s.stats().Requests >= 1 })
			stop2 := holdWorker(t, s.api)
			defer stop2()
			waitStats(t, "queue occupancy", func() bool { return s.stats().QueuedJobs == 1 })

			_, err := s.api.Synthesize(context.Background(), nanoxbar.TT("2:0x6"))
			if !errors.Is(err, nanoxbar.ErrOverloaded) {
				t.Fatalf("saturated synthesize: %v, want ErrOverloaded", err)
			}
			if code := nanoxbar.ErrorCode(err); code != nanoxbar.CodeOverloaded {
				t.Fatalf("wire code = %q, want %q", code, nanoxbar.CodeOverloaded)
			}
			if got := s.stats().Shed; got < 1 {
				t.Fatalf("shed counter = %d, want >= 1", got)
			}

			// Release the pool: the same request now succeeds, so the
			// shed really was load, not a broken request.
			stop1()
			stop2()
			waitStats(t, "pool drain", func() bool { return s.stats().QueuedJobs == 0 })
			if _, err := s.api.Synthesize(context.Background(), nanoxbar.TT("2:0x6")); err != nil {
				t.Fatalf("post-drain synthesize: %v", err)
			}
		})
	}
}

// TestUnavailableSurvivesRoundTrip: a draining server rejects typed; the
// HTTP client surfaces ErrUnavailable with the wire code intact.
func TestUnavailableSurvivesRoundTrip(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1, CacheSize: 8})
	t.Cleanup(eng.Close)
	srv := httpapi.New(eng)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	t.Cleanup(func() { cl.Close() })

	srv.Drain()
	_, err := cl.Synthesize(context.Background(), nanoxbar.TT("2:0x6"))
	if !errors.Is(err, nanoxbar.ErrUnavailable) {
		t.Fatalf("draining synthesize: %v, want ErrUnavailable", err)
	}
	if code := nanoxbar.ErrorCode(err); code != nanoxbar.CodeUnavailable {
		t.Fatalf("wire code = %q, want %q", code, nanoxbar.CodeUnavailable)
	}
	if resilience.RetryAfter(err) <= 0 {
		t.Fatal("drain rejection carried no Retry-After hint")
	}
}

// TestTaxonomyCodeRoundTrip: the two resilience sentinels encode and
// decode symmetrically through the wire-code mapping both clients use.
func TestTaxonomyCodeRoundTrip(t *testing.T) {
	cases := []struct {
		sentinel error
		code     string
	}{
		{nanoxbar.ErrOverloaded, nanoxbar.CodeOverloaded},
		{nanoxbar.ErrUnavailable, nanoxbar.CodeUnavailable},
	}
	for _, c := range cases {
		if got := nanoxbar.ErrorCode(c.sentinel); got != c.code {
			t.Errorf("ErrorCode(%v) = %q, want %q", c.sentinel, got, c.code)
		}
		back := nanoxbar.ErrorFromCode(c.code, "detail")
		if !errors.Is(back, c.sentinel) {
			t.Errorf("ErrorFromCode(%q) does not match its sentinel", c.code)
		}
	}
}
