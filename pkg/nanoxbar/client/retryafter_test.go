package client_test

import (
	"context"
	"net/http"
	"testing"
	"time"

	"net/http/httptest"

	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
	"nanoxbar/internal/resilience"
	"nanoxbar/pkg/nanoxbar"
	"nanoxbar/pkg/nanoxbar/client"
)

// dateFront synthesizes one 503 whose Retry-After is an HTTP-date
// (RFC 9110's second form) before delegating — the date analog of
// flakyFront.
type dateFront struct {
	backend http.Handler
	date    time.Time
	failed  bool
}

func (f *dateFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !f.failed {
		f.failed = true
		w.Header().Set("Retry-After", f.date.UTC().Format(http.TimeFormat))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"unavailable","message":"front: not ready"}}`))
		return
	}
	f.backend.ServeHTTP(w, r)
}

// datedClient wires a real engine+server behind front with a fake
// clock at the epoch (resilientClient's shape, for the date front).
func datedClient(t *testing.T, front *dateFront, cfg client.ResilienceConfig) (*client.Client, *resilience.Fake) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, CacheSize: 16})
	t.Cleanup(eng.Close)
	front.backend = httpapi.New(eng)
	ts := httptest.NewServer(front)
	t.Cleanup(ts.Close)
	fc := resilience.NewFake(time.Unix(0, 0))
	cfg.Clock = fc
	cl := client.New(ts.URL, client.WithResilience(cfg))
	t.Cleanup(func() { cl.Close() })
	return cl, fc
}

// TestClientRetryAfterHTTPDate: an HTTP-date Retry-After flows through
// the same hint-as-floor logic as delta-seconds — the client sleeps
// until the named instant instead of its (shorter) backoff. The fake
// clock starts at the epoch, so a date 3s past the epoch is a 3s hint.
func TestClientRetryAfterHTTPDate(t *testing.T) {
	front := &dateFront{date: time.Unix(3, 0)}
	cl, fc := datedClient(t, front, client.ResilienceConfig{
		Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond},
	})

	if _, err := cl.Synthesize(context.Background(), nanoxbar.TT("2:0x6")); err != nil {
		t.Fatalf("Synthesize after dated 503: %v", err)
	}
	sleeps := fc.Sleeps()
	if len(sleeps) != 1 || sleeps[0] != 3*time.Second {
		t.Fatalf("sleeps = %v, want [3s] (date hint flooring 50ms backoff)", sleeps)
	}
}

// TestClientRetryAfterPastDateFallsBack: a date at or before now is no
// hint; the normal backoff schedule applies.
func TestClientRetryAfterPastDateFallsBack(t *testing.T) {
	front := &dateFront{date: time.Unix(0, 0)} // exactly "now" on the fake clock
	cl, fc := datedClient(t, front, client.ResilienceConfig{
		Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond},
	})

	if _, err := cl.Synthesize(context.Background(), nanoxbar.TT("2:0x6")); err != nil {
		t.Fatalf("Synthesize after dated 503: %v", err)
	}
	sleeps := fc.Sleeps()
	if len(sleeps) != 1 || sleeps[0] != 50*time.Millisecond {
		t.Fatalf("sleeps = %v, want [50ms] (no hint from a stale date)", sleeps)
	}
}
