// Package client is the HTTP implementation of the nanoxbar.API
// interface: a typed Go client for the v2 streaming protocol served by
// cmd/xbarserverd. It is interchangeable with the in-process
// nanoxbar.Client — same methods, same typed results, same error
// taxonomy (errors.Is(err, nanoxbar.ErrInfeasible) holds even though
// the error crossed an HTTP boundary), and the same per-die streaming:
// OnDie observers fire as NDJSON events arrive.
//
//	cl := client.New("http://localhost:8080")
//	defer cl.Close()
//	stats, err := cl.YieldSweep(ctx, nanoxbar.Func("maj5"),
//	    nanoxbar.WithChips(1000), nanoxbar.WithDensity(0.05),
//	    nanoxbar.OnDie(func(d nanoxbar.Die) { ... }))
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"nanoxbar/pkg/nanoxbar"
)

// maxEventBytes bounds one NDJSON line from the server; result events
// carrying explicit mappings stay far below this.
const maxEventBytes = 16 << 20

// Client speaks the v2 streaming HTTP API. It is safe for concurrent
// use; requests share the underlying http.Client's connection pool.
type Client struct {
	base string
	hc   *http.Client
	// ownsTransport marks the default transport built by New: Close
	// may tear down its pool. A caller-supplied http.Client is never
	// closed — the caller owns its connection pool.
	ownsTransport bool
	// res holds the opt-in retry/breaker machinery (resilience.go);
	// nil means every call maps to exactly one HTTP exchange.
	res *resilienceState
}

var _ nanoxbar.API = (*Client)(nil)

// Option configures the client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, TLS, test
// doubles). The caller keeps ownership: Close will not drop the
// supplied client's idle connections.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		c.hc = hc
		c.ownsTransport = false
	}
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). By default it gets its own clone of the
// standard transport, so Close cannot disturb connections pooled by
// unrelated users of http.DefaultClient.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/")}
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		c.hc = &http.Client{Transport: t.Clone()}
		c.ownsTransport = true
	} else {
		c.hc = http.DefaultClient
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Close releases the client's own idle connections (a no-op for a
// caller-supplied http.Client). The client is unusable afterwards only
// by convention — it exists to satisfy nanoxbar.API.
func (c *Client) Close() error {
	if c.ownsTransport {
		c.hc.CloseIdleConnections()
	}
	return nil
}

// Synthesize implements f on the requested technology via the remote
// engine's shared synthesis cache.
func (c *Client) Synthesize(ctx context.Context, f nanoxbar.FunctionSpec, opts ...nanoxbar.Option) (*nanoxbar.Synthesis, error) {
	res, err := c.do(ctx, nanoxbar.KindSynthesize, f, opts)
	if err != nil {
		return nil, err
	}
	return res.Synthesis, nil
}

// Compare synthesizes f on all three technologies.
func (c *Client) Compare(ctx context.Context, f nanoxbar.FunctionSpec, opts ...nanoxbar.Option) (*nanoxbar.Comparison, error) {
	res, err := c.do(ctx, nanoxbar.KindCompare, f, opts)
	if err != nil {
		return nil, err
	}
	return res.Compare, nil
}

// Map places the synthesized implementation on one defective chip.
func (c *Client) Map(ctx context.Context, f nanoxbar.FunctionSpec, opts ...nanoxbar.Option) (*nanoxbar.MapOutcome, error) {
	res, err := c.do(ctx, nanoxbar.KindMap, f, opts)
	if err != nil {
		return nil, err
	}
	return res.Map, nil
}

// YieldSweep maps f onto many random dies, streaming per-die outcomes
// to the OnDie observer as NDJSON events arrive.
func (c *Client) YieldSweep(ctx context.Context, f nanoxbar.FunctionSpec, opts ...nanoxbar.Option) (*nanoxbar.YieldStats, error) {
	res, err := c.do(ctx, nanoxbar.KindYield, f, opts)
	if err != nil {
		return nil, err
	}
	return res.Yield, nil
}

// Stats fetches the server's engine counter snapshot (GET /stats).
// Idempotent, so the resilience layer (when enabled) retries it freely.
func (c *Client) Stats(ctx context.Context) (nanoxbar.Stats, error) {
	var st nanoxbar.Stats
	err := c.withResilience(ctx, "/stats", func(ctx context.Context) (bool, error) {
		return false, c.statsOnce(ctx, &st)
	})
	return st, err
}

// statsOnce is one GET /stats exchange.
func (c *Client) statsOnce(ctx context.Context, st *nanoxbar.Stats) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return nanoxbar.ErrorFromCode(nanoxbar.CodeInternal, err.Error())
	}
	setRequestID(req)
	setDeadlineHeader(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.transportErr(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.decodeErrorBody(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		return nanoxbar.ErrorFromCode(nanoxbar.CodeInternal, err.Error())
	}
	return nil
}

// do runs one request through POST /v2/jobs and resolves its single
// result from the event stream.
func (c *Client) do(ctx context.Context, kind nanoxbar.Kind, f nanoxbar.FunctionSpec, opts []nanoxbar.Option) (nanoxbar.Result, error) {
	req, onDie := nanoxbar.BuildRequest(kind, f, opts...)
	var res nanoxbar.Result
	var resErr error
	resolved := false
	err := c.Jobs(ctx, nanoxbar.JobsRequest{
		Requests:   []nanoxbar.Request{req},
		StreamDies: onDie != nil,
	}, func(ev nanoxbar.Event) {
		switch ev.Type {
		case nanoxbar.EventDie:
			if onDie != nil {
				onDie(nanoxbar.Die{Index: ev.Die, Map: ev.DieMap, Err: ev.DieError.Err()})
			}
		case nanoxbar.EventResult:
			if ev.Result != nil {
				res = *ev.Result
				resolved = true
			}
		case nanoxbar.EventError:
			resErr = ev.Error.Err()
			resolved = true
		}
	})
	if err != nil {
		return res, err
	}
	if resErr != nil {
		return res, resErr
	}
	if !resolved {
		// A protocol violation (done with no result/error event for the
		// request) must not surface as a nil-payload success.
		return res, nanoxbar.ErrorFromCode(nanoxbar.CodeInternal, "client: stream completed without a result for the request")
	}
	return res, res.TypedErr()
}

// Jobs submits a batch to POST /v2/jobs, invoking handle for every
// stream event in arrival order (completion order server-side). It
// returns when the terminating "done" event has been consumed, the
// context is canceled, or the stream fails. Request-level failures are
// delivered as EventError events, not as a Jobs error.
//
// With WithResilience, a submission that fails before any event was
// delivered to handle is retried (the server observed at most a request
// it never answered); once events have flowed, failures surface
// directly — the client cannot replay half-consumed streams.
func (c *Client) Jobs(ctx context.Context, jobs nanoxbar.JobsRequest, handle func(nanoxbar.Event)) error {
	payload, err := json.Marshal(jobs)
	if err != nil {
		return nanoxbar.ErrorFromCode(nanoxbar.CodeBadSpec, err.Error())
	}
	return c.withResilience(ctx, "/v2/jobs", func(ctx context.Context) (bool, error) {
		delivered := false
		err := c.jobsOnce(ctx, payload, func(ev nanoxbar.Event) {
			delivered = true
			handle(ev)
		})
		return delivered, err
	})
}

// jobsOnce is one POST /v2/jobs exchange: submit, then pump the NDJSON
// stream into handle until the done event.
func (c *Client) jobsOnce(ctx context.Context, payload []byte, handle func(nanoxbar.Event)) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/jobs", bytes.NewReader(payload))
	if err != nil {
		return nanoxbar.ErrorFromCode(nanoxbar.CodeInternal, err.Error())
	}
	httpReq.Header.Set("Content-Type", "application/json")
	setRequestID(httpReq)
	setDeadlineHeader(httpReq)
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return c.transportErr(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.decodeErrorBody(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxEventBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev nanoxbar.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// A canceled read surfaces as a truncated final line —
			// the scanner hands back the partial data at stream end.
			// Any other partial line means the connection died
			// mid-frame: the unavailable class.
			if cerr := ctx.Err(); cerr != nil {
				return nanoxbar.ErrorFromCode(nanoxbar.CodeCanceled, fmt.Sprintf("client: %v", cerr))
			}
			return nanoxbar.ErrorFromCode(nanoxbar.CodeUnavailable, fmt.Sprintf("client: bad stream line: %v", err))
		}
		if ev.Type == nanoxbar.EventDone {
			return nil
		}
		handle(ev)
	}
	// The stream ended without a done event: canceled mid-flight or
	// the server died.
	if err := ctx.Err(); err != nil {
		return nanoxbar.ErrorFromCode(nanoxbar.CodeCanceled, fmt.Sprintf("client: %v", err))
	}
	if err := sc.Err(); err != nil {
		return c.transportErr(ctx, err)
	}
	return nanoxbar.ErrorFromCode(nanoxbar.CodeUnavailable, "client: stream ended without done event")
}

// setRequestID forwards the request ID carried by the request context
// (nanoxbar.ContextWithRequestID) as the X-Request-ID header. The
// server echoes it on the response and its log lines; absent an ID, the
// server mints one.
func setRequestID(req *http.Request) {
	if id := nanoxbar.RequestIDFromContext(req.Context()); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
}

// transportErr classifies a transport failure: cancellation keeps its
// taxonomy identity; anything else — refused connections, resets,
// truncated streams — is the unavailable class, the signal the retry
// and circuit-breaker machinery keys on.
func (c *Client) transportErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return nanoxbar.ErrorFromCode(nanoxbar.CodeCanceled, fmt.Sprintf("client: %v", err))
	}
	return nanoxbar.ErrorFromCode(nanoxbar.CodeUnavailable, fmt.Sprintf("client: %v", err))
}

// decodeErrorBody turns a non-200 response into its typed error. It
// accepts both wire shapes — the v2 {"error":{code,message}} object and
// the v1/middleware {"error":message,"code":code} flat form — and
// attaches the Retry-After header (when present) as a backoff hint for
// the resilience layer.
func (c *Client) decodeErrorBody(resp *http.Response) error {
	var raw struct {
		Error json.RawMessage `json:"error"`
		Code  string          `json:"code"`
	}
	err := nanoxbar.ErrorFromCode(nanoxbar.CodeInternal,
		fmt.Sprintf("client: server status %d", resp.StatusCode))
	if derr := json.NewDecoder(resp.Body).Decode(&raw); derr == nil && len(raw.Error) > 0 {
		var wire nanoxbar.WireError
		var msg string
		switch {
		case json.Unmarshal(raw.Error, &wire) == nil && wire.Code != "":
			err = wire.Err()
		case json.Unmarshal(raw.Error, &msg) == nil && raw.Code != "":
			err = nanoxbar.ErrorFromCode(raw.Code, msg)
		}
	}
	return c.withRetryAfterHint(resp, err)
}
