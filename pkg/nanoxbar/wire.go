package nanoxbar

import (
	"time"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/resilience"
)

// The v2 HTTP wire protocol. One endpoint carries every request kind:
//
//	POST /v2/jobs
//	{"requests": [...], "stream_dies": true}
//
// The response is NDJSON (application/x-ndjson, chunked): one Event
// per line, flushed as workers finish — completion order, not
// submission order; Index ties an event back to its request. A stream
// always ends with a single "done" event. Request-body failures (bad
// JSON, empty batch, oversized body) are plain JSON ErrorResponse
// bodies with a 4xx status instead of a stream.
//
// pkg/nanoxbar/client speaks this protocol; the types are exported so
// other consumers can too.

// JobsRequest is the POST /v2/jobs body.
type JobsRequest struct {
	Requests []Request `json:"requests"`
	// StreamDies additionally emits one "die" event per die of every
	// yield request, as dies complete.
	StreamDies bool `json:"stream_dies,omitempty"`
}

// Event types of the v2 NDJSON stream.
const (
	// EventResult carries the completed Result of request Index.
	EventResult = "result"
	// EventError reports the typed failure of request Index.
	EventError = "error"
	// EventDie streams one die of a yield request (StreamDies only).
	EventDie = "die"
	// EventDone terminates the stream with aggregate counts.
	EventDone = "done"
)

// Event is one NDJSON line of a /v2/jobs response.
type Event struct {
	Type  string `json:"type"`
	Index int    `json:"index,omitempty"` // request index, for result/error/die
	// RequestID is the server-assigned (or client-supplied, via the
	// X-Request-ID header) ID of the HTTP request carrying this stream;
	// identical on every frame, and the same value the server logs.
	RequestID string `json:"request_id,omitempty"`
	// Die fields (Type == EventDie). DieMap is nil when the die itself
	// failed; DieError carries that failure.
	Die      int         `json:"die,omitempty"`
	DieMap   *MapOutcome `json:"die_map,omitempty"`
	DieError *WireError  `json:"die_error,omitempty"`
	// Result (Type == EventResult).
	Result *Result `json:"result,omitempty"`
	// Error (Type == EventError).
	Error *WireError `json:"error,omitempty"`
	// Done (Type == EventDone).
	Done *JobsSummary `json:"done,omitempty"`
}

// WireError is the structured error of the v2 API: a machine-readable
// code from the taxonomy plus human-readable detail.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMs carries the server's back-off hint on sheddable
	// failures (overloaded, unavailable) — the mid-stream analog of the
	// Retry-After header, which cannot be attached to an individual
	// NDJSON error frame after the 200 status has been sent.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// Err reconstructs the typed error: errors.Is against the taxonomy
// sentinels holds on the result, and a retry-after hint round-trips
// into resilience.RetryAfter.
func (e *WireError) Err() error {
	if e == nil {
		return nil
	}
	err := apierr.FromCode(e.Code, e.Message)
	if e.RetryAfterMs > 0 {
		err = resilience.WithRetryAfter(err, time.Duration(e.RetryAfterMs)*time.Millisecond)
	}
	return err
}

// WireErrorFrom projects a typed error into wire form (nil for nil),
// carrying any resilience.RetryAfter hint along.
func WireErrorFrom(err error) *WireError {
	if err == nil {
		return nil
	}
	we := &WireError{Code: apierr.CodeOf(err), Message: err.Error()}
	if d := resilience.RetryAfter(err); d > 0 {
		we.RetryAfterMs = d.Milliseconds()
	}
	return we
}

// ErrorResponse is the non-streaming v2 error body:
// {"error":{"code":"bad_spec","message":"..."}}.
type ErrorResponse struct {
	Error WireError `json:"error"`
}

// JobsSummary is the payload of the final "done" event.
type JobsSummary struct {
	Results int `json:"results"` // total requests resolved
	Errors  int `json:"errors"`  // how many failed
}
