package nanoxbar

// Option configures one API call. Options compose left to right; zero
// options request the engine defaults (four-terminal lattice, greedy
// scheme, 100-die sweeps).
type Option func(*callConfig)

// callConfig is the resolved form of an option list: the wire request
// plus the client-side per-die observer.
type callConfig struct {
	req   Request
	onDie func(Die)
}

// BuildRequest resolves a kind, function spec, and option list into
// the wire Request plus the client-side per-die observer (nil when
// OnDie was not given). Both API implementations build their requests
// here, which is what keeps local and remote behavior identical.
func BuildRequest(kind Kind, f FunctionSpec, opts ...Option) (Request, func(Die)) {
	cc := callConfig{req: Request{Kind: kind, Function: f}}
	for _, opt := range opts {
		opt(&cc)
	}
	return cc.req, cc.onDie
}

// WithTech selects the target technology: "diode", "fet", or
// "lattice" (the default). Ignored by Compare.
func WithTech(tech string) Option {
	return func(cc *callConfig) { cc.req.Tech = tech }
}

// WithOptions overrides the synthesis pipeline options. The options
// are part of the cache key, so distinct options never share cached
// results.
func WithOptions(o Options) Option {
	return func(cc *callConfig) { cc.req.Options = &o }
}

// WithScheme selects the self-mapping scheme for Map/YieldSweep:
// "blind", "greedy" (default), or "hybrid".
func WithScheme(scheme string) Option {
	return func(cc *callConfig) { cc.req.Scheme = scheme }
}

// WithSeed makes the call reproducible: it seeds defect drawing and
// mapping randomness (die i of a sweep uses a deterministic sub-seed).
func WithSeed(seed int64) Option {
	return func(cc *callConfig) { cc.req.Seed = seed }
}

// WithDensity sets the crosspoint defect density for random chip draws
// (uniform, 80/20 stuck-open/stuck-closed).
func WithDensity(density float64) Option {
	return func(cc *callConfig) { cc.req.Density = density }
}

// WithChipSize sets the side of the square chip for random draws
// (default: twice the implementation footprint).
func WithChipSize(n int) Option {
	return func(cc *callConfig) { cc.req.ChipSize = n }
}

// WithChip supplies an explicit defect map (Map only; sweeps draw
// random chips).
func WithChip(m DefectMapSpec) Option {
	return func(cc *callConfig) { cc.req.Chip = &m }
}

// WithMaxAttempts bounds the self-mapping configuration budget per
// chip (default 200).
func WithMaxAttempts(n int) Option {
	return func(cc *callConfig) { cc.req.MaxAttempts = n }
}

// WithChips sets the die count of a YieldSweep (default 100).
func WithChips(n int) Option {
	return func(cc *callConfig) { cc.req.Chips = n }
}

// OnDie installs a per-die observer for YieldSweep: fn fires once per
// die as workers finish them (completion order, serialized). Canceling
// the call's context from inside fn stops the sweep at the next die
// boundary — the idiom for "stop after enough evidence". Over HTTP the
// dies arrive as NDJSON stream events; the observer sees the same
// sequence either way.
func OnDie(fn func(Die)) Option {
	return func(cc *callConfig) { cc.onDie = fn }
}
