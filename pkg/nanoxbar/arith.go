package nanoxbar

import (
	"nanoxbar/internal/arith"
	"nanoxbar/internal/benchfn"
)

// Arithmetic-network and benchmark surface: multi-lattice networks
// (the paper's future-work objective 4) and the named benchmark
// function suite the service resolves FunctionSpec.Name against.

// Lattice networks.
type (
	// Network is a feed-forward network of four-terminal lattices.
	Network = arith.Network
	// Signal indexes a network input or node output.
	Signal = arith.Signal
	// MooreSpec specifies a synchronous Moore machine.
	MooreSpec = arith.MooreSpec
	// SSM is a synthesized synchronous state machine whose next-state
	// and output logic run on lattices.
	SSM = arith.SSM
)

// RippleAdder builds an n-bit ripple-carry adder network.
func RippleAdder(n int, opts SynthOptions) *Network { return arith.RippleAdder(n, opts) }

// AddUint drives an adder network with two n-bit operands.
func AddUint(nw *Network, n int, a, b uint64) uint64 { return arith.AddUint(nw, n, a, b) }

// Comparator builds an n-bit a>b comparator network.
func Comparator(n int, opts SynthOptions) *Network { return arith.Comparator(n, opts) }

// GreaterUint drives a comparator network.
func GreaterUint(nw *Network, n int, a, b uint64) bool { return arith.GreaterUint(nw, n, a, b) }

// SequenceDetector101 is the classic "101"-with-overlap Moore machine.
func SequenceDetector101() *MooreSpec { return arith.SequenceDetector101() }

// SynthesizeSSM implements a Moore machine's next-state and output
// logic on lattices.
func SynthesizeSSM(sp *MooreSpec, opts SynthOptions) (*SSM, error) {
	return arith.SynthesizeSSM(sp, opts)
}

// Benchmark functions.
type (
	// BenchSpec is one named benchmark function.
	BenchSpec = benchfn.Spec
)

// BenchSuite returns the paper's benchmark suite.
func BenchSuite() []BenchSpec { return benchfn.Suite() }

// BenchByName resolves a suite name ("maj5", "parity4", ...).
func BenchByName(name string) (BenchSpec, bool) { return benchfn.ByName(name) }

// Majority is the n-input majority benchmark.
func Majority(n int) BenchSpec { return benchfn.Majority(n) }

// AdderBit is output bit b of an n-bit adder as a flat function.
func AdderBit(n, b int) BenchSpec { return benchfn.AdderBit(n, b) }
