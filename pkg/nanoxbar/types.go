package nanoxbar

import (
	"nanoxbar/internal/engine"
)

// The request/result vocabulary of the serving API. These are aliases
// of the engine's wire types: the same structs travel in-process, over
// the v1 and v2 HTTP APIs, and in batch files, so local and remote
// callers are bit-for-bit interchangeable.
type (
	// Kind selects the scenario a Request runs ("synthesize",
	// "compare", "map", "yield").
	Kind = engine.Kind
	// FunctionSpec names the target Boolean function in exactly one of
	// three ways: benchmark name, Boolean expression, or truth table
	// literal. Use the Func/Expr/TT constructors.
	FunctionSpec = engine.FunctionSpec
	// Request is one unit of work in wire form. SDK callers usually
	// build it through Options; it is exported for batch submission
	// and the v2 jobs protocol.
	Request = engine.Request
	// Result is the wire outcome of one Request.
	Result = engine.Result
	// Synthesis summarizes one synthesized implementation.
	Synthesis = engine.SynthesisResult
	// Comparison reports all three technologies for one function.
	Comparison = engine.CompareResult
	// MapOutcome is the result of placing an implementation on one
	// defective chip.
	MapOutcome = engine.MapResult
	// YieldStats aggregates recovery statistics over a sweep of dies.
	YieldStats = engine.YieldResult
	// DefectMapSpec is the wire form of a defect map ('.', 'o', 'c'
	// rows plus broken/bridged wire index lists).
	DefectMapSpec = engine.DefectMapSpec
	// Stats is a point-in-time engine counter snapshot.
	Stats = engine.Stats
)

// Request kinds.
const (
	KindSynthesize = engine.KindSynthesize
	KindCompare    = engine.KindCompare
	KindMap        = engine.KindMap
	KindYield      = engine.KindYield
)

// Func names a benchmark-suite function (e.g. "maj5").
func Func(name string) FunctionSpec { return FunctionSpec{Name: name} }

// Expr gives the function as a Boolean expression (e.g. "x1x2 + x3'").
func Expr(expr string) FunctionSpec { return FunctionSpec{Expr: expr} }

// TT gives the function as a truth-table literal (e.g. "3:0x96").
func TT(tt string) FunctionSpec { return FunctionSpec{TT: tt} }

// Die is one streamed per-die outcome of a yield sweep, delivered in
// completion order. Exactly one of Map/Err is non-nil.
type Die struct {
	// Index is the die number within the sweep (seeds are derived from
	// it, so a die's outcome is independent of completion order).
	Index int
	Map   *MapOutcome
	Err   error
}
