// Package nanoxbar is the public, context-aware SDK of the nanoxbar
// crossbar synthesis and fault-tolerance service — the DATE'17 flow
// ("Computing with Nano-Crossbar Arrays: Logic Synthesis and Fault
// Tolerance", Altun/Ciriani/Tahoori) packaged for programmatic use.
//
// Two interchangeable implementations satisfy the API interface:
//
//   - Client (this package): runs the engine in-process, sharing a
//     canonicalizing synthesis cache and a bounded worker pool.
//   - client.Client (pkg/nanoxbar/client): speaks the v2 streaming
//     HTTP protocol to a remote xbarserverd.
//
// Both return the same typed results, honor context cancellation down
// to the per-die loop of a yield sweep, and fail with the same error
// taxonomy (ErrBadSpec, ErrInfeasible, ErrCanceled — compare with
// errors.Is; the taxonomy survives the HTTP round-trip).
//
// Minimal use:
//
//	cl := nanoxbar.NewClient(nanoxbar.ClientConfig{})
//	defer cl.Close()
//	syn, err := cl.Synthesize(ctx, nanoxbar.Expr("x1x2 + x1'x2'"))
//
// Beyond the serving API, the package re-exports the library surface
// the command-line tools and examples build on: direct synthesis
// (Synthesize, DualMethod, OptimalLattice), fault-tolerance machinery
// (DetectionSuite, mappers, GreedyExtraction), and the arithmetic
// network layer (RippleAdder, SynthesizeSSM).
package nanoxbar

import (
	"context"
	"log/slog"
	"time"

	"nanoxbar/internal/engine"
)

// API is the context-first service interface shared by the in-process
// Client and the HTTP client (pkg/nanoxbar/client). All methods honor
// ctx cancellation: a canceled call returns an error satisfying
// errors.Is(err, ErrCanceled), and a yield sweep stops mapping further
// dies at the next die boundary.
type API interface {
	// Synthesize implements the function on one technology (default
	// four-terminal lattice; see WithTech).
	Synthesize(ctx context.Context, f FunctionSpec, opts ...Option) (*Synthesis, error)
	// Compare synthesizes the function on all three technologies.
	Compare(ctx context.Context, f FunctionSpec, opts ...Option) (*Comparison, error)
	// Map synthesizes (through the shared cache) and places the result
	// on one defective chip with a self-mapping scheme.
	Map(ctx context.Context, f FunctionSpec, opts ...Option) (*MapOutcome, error)
	// YieldSweep maps the function onto many independently drawn
	// defective dies and aggregates recovery statistics. OnDie streams
	// per-die outcomes as workers finish them.
	YieldSweep(ctx context.Context, f FunctionSpec, opts ...Option) (*YieldStats, error)
	// Close releases the client's resources.
	Close() error
}

// ClientConfig sizes the in-process engine behind a Client.
type ClientConfig struct {
	// Workers is the worker pool size (default: number of CPUs).
	Workers int
	// CacheSize bounds the synthesis LRU entry count (default 1024).
	CacheSize int
	// QueueDepth bounds the job queue (default 4× Workers). With
	// MaxQueueWait set, submissions that cannot enqueue within the
	// budget fail typed with ErrOverloaded instead of blocking.
	QueueDepth int
	// MaxQueueWait is the admission budget: how long a submission may
	// wait for a queue slot before being shed. Zero blocks forever (the
	// pre-admission-control behavior).
	MaxQueueWait time.Duration
	// DegradeAfter switches requests that waited longer than this in
	// the queue to the fast degraded synthesis path (correct but not
	// optimal; Result.Degraded is set). Zero disables degradation.
	DegradeAfter time.Duration
	// Logger receives the engine's per-request debug logs (kind,
	// duration, outcome, request ID when the context carries one — see
	// ContextWithRequestID). Nil discards.
	Logger *slog.Logger
}

// Client is the in-process implementation of API: it embeds the
// serving engine — synthesis cache plus worker pool — directly in the
// calling process. It is safe for concurrent use.
type Client struct {
	eng *engine.Engine
}

var _ API = (*Client)(nil)

// NewClient starts an in-process client.
func NewClient(cfg ClientConfig) *Client {
	return &Client{eng: engine.New(engine.Config{
		Workers:      cfg.Workers,
		CacheSize:    cfg.CacheSize,
		QueueDepth:   cfg.QueueDepth,
		MaxQueueWait: cfg.MaxQueueWait,
		DegradeAfter: cfg.DegradeAfter,
		Logger:       cfg.Logger,
	})}
}

// Close stops the engine's worker pool after draining queued work. No
// calls may follow Close.
func (c *Client) Close() error {
	c.eng.Close()
	return nil
}

// Stats snapshots the engine counters (cache hits/misses, request
// counts, lattice evaluation work).
func (c *Client) Stats() Stats { return c.eng.Stats() }

// do executes one typed request and converts the engine result into
// the (payload, error) shape of the public API.
func (c *Client) do(ctx context.Context, kind Kind, f FunctionSpec, opts []Option) (Result, error) {
	req, onDie := BuildRequest(kind, f, opts...)
	res := c.eng.DoStream(ctx, req, engineDieFunc(onDie))
	return res, res.TypedErr()
}

// engineDieFunc adapts the public per-die observer onto the engine's
// callback shape.
func engineDieFunc(onDie func(Die)) engine.DieFunc {
	if onDie == nil {
		return nil
	}
	return func(die int, mr *MapOutcome, err error) {
		onDie(Die{Index: die, Map: mr, Err: err})
	}
}

// Synthesize implements f on the requested technology through the
// shared synthesis cache.
func (c *Client) Synthesize(ctx context.Context, f FunctionSpec, opts ...Option) (*Synthesis, error) {
	res, err := c.do(ctx, KindSynthesize, f, opts)
	if err != nil {
		return nil, err
	}
	return res.Synthesis, nil
}

// Compare synthesizes f on diode, FET, and four-terminal technologies.
func (c *Client) Compare(ctx context.Context, f FunctionSpec, opts ...Option) (*Comparison, error) {
	res, err := c.do(ctx, KindCompare, f, opts)
	if err != nil {
		return nil, err
	}
	return res.Compare, nil
}

// Map places the synthesized implementation on one defective chip.
func (c *Client) Map(ctx context.Context, f FunctionSpec, opts ...Option) (*MapOutcome, error) {
	res, err := c.do(ctx, KindMap, f, opts)
	if err != nil {
		return nil, err
	}
	return res.Map, nil
}

// YieldSweep maps f onto WithChips independently drawn dies,
// streaming per-die outcomes to the OnDie observer as they complete.
func (c *Client) YieldSweep(ctx context.Context, f FunctionSpec, opts ...Option) (*YieldStats, error) {
	res, err := c.do(ctx, KindYield, f, opts)
	if err != nil {
		return nil, err
	}
	return res.Yield, nil
}
