package nanoxbar_test

import (
	"context"
	"testing"

	"nanoxbar/pkg/nanoxbar"
)

func TestBuildRequest(t *testing.T) {
	chip := nanoxbar.DefectMapSpec{Rows: []string{"o.", ".c"}}
	var gotDie nanoxbar.Die
	req, onDie := nanoxbar.BuildRequest(nanoxbar.KindYield, nanoxbar.Func("maj5"),
		nanoxbar.WithTech("fet"),
		nanoxbar.WithScheme("hybrid"),
		nanoxbar.WithSeed(99),
		nanoxbar.WithDensity(0.07),
		nanoxbar.WithChips(321),
		nanoxbar.WithChipSize(64),
		nanoxbar.WithMaxAttempts(555),
		nanoxbar.WithChip(chip),
		nanoxbar.OnDie(func(d nanoxbar.Die) { gotDie = d }),
	)
	if req.Kind != nanoxbar.KindYield || req.Function.Name != "maj5" {
		t.Fatalf("kind/function wrong: %+v", req)
	}
	if req.Tech != "fet" || req.Scheme != "hybrid" || req.Seed != 99 ||
		req.Density != 0.07 || req.Chips != 321 || req.ChipSize != 64 ||
		req.MaxAttempts != 555 || req.Chip == nil || req.Chip.Rows[0] != "o." {
		t.Fatalf("options not applied: %+v", req)
	}
	if onDie == nil {
		t.Fatal("OnDie observer lost")
	}
	onDie(nanoxbar.Die{Index: 5})
	if gotDie.Index != 5 {
		t.Fatal("observer not wired through")
	}
	// No options → plain request, nil observer.
	req, onDie = nanoxbar.BuildRequest(nanoxbar.KindSynthesize, nanoxbar.Expr("x1x2"))
	if req.Tech != "" || req.Options != nil || onDie != nil {
		t.Fatalf("defaults not empty: %+v", req)
	}
}

// TestDirectSynthesisSurface smoke-tests the non-service re-exports
// the CLIs and examples build on.
func TestDirectSynthesisSurface(t *testing.T) {
	f, n, err := nanoxbar.ParseExpr("x1x2 + x1'x2'")
	if err != nil || n != 2 {
		t.Fatalf("ParseExpr: n=%d err=%v", n, err)
	}
	im, err := nanoxbar.Synthesize(context.Background(), f, nanoxbar.FourTerminal, nanoxbar.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if im.Area() == 0 || !im.Verify(f) {
		t.Fatalf("bad implementation %+v", im)
	}
	l, done := nanoxbar.OptimalLattice(context.Background(), f, nanoxbar.DefaultOptimalOptions())
	if !done || l == nil || l.Area() > im.Area()+1 {
		t.Fatalf("optimal search: done=%v l=%v", done, l)
	}
	// Hand-built lattice via the re-exported constructors.
	hand := nanoxbar.NewLattice(1, 1)
	hand.Set(0, 0, nanoxbar.Lit(0, false))
	one, _, _ := nanoxbar.ParseExpr("x1")
	if !hand.Implements(one) {
		t.Fatal("1×1 x1 lattice must implement x1")
	}
}
