package nanoxbar

import (
	"math/rand"

	"nanoxbar/internal/bism"
	"nanoxbar/internal/bist"
	"nanoxbar/internal/core"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/dflow"
)

// Fault-tolerance surface: the paper's Section IV machinery — defect
// maps, built-in self test/diagnosis, self-mapping schemes, and the
// defect-unaware design flow — re-exported for direct (non-service)
// use by simulators and tools.

// Defect maps.
type (
	// DefectMap is the physical defect map of one fabricated chip:
	// per-crosspoint stuck-open/stuck-closed faults plus broken and
	// bridged wires.
	DefectMap = defect.Map
	// DefectParams parameterize random defect injection.
	DefectParams = defect.Params
)

// NewDefectMap allocates a defect-free r×c map.
func NewDefectMap(r, c int) *DefectMap { return defect.NewMap(r, c) }

// UniformCrosspoint is the paper's defect model: uniform crosspoint
// defect density, split 80/20 stuck-open/stuck-closed.
func UniformCrosspoint(density float64) DefectParams { return defect.UniformCrosspoint(density) }

// RandomDefectMap draws an r×c map from the defect model.
func RandomDefectMap(r, c int, p DefectParams, rng *rand.Rand) *DefectMap {
	return defect.Random(r, c, p, rng)
}

// Built-in self test and diagnosis (BIST/BISD).
type (
	// BISTSuite is a set of test configurations with fault coverage
	// and diagnosis machinery.
	BISTSuite = bist.Suite
)

// DetectionSuite builds the paper's O(1)-configuration detection suite
// for an r×c crossbar.
func DetectionSuite(r, c int) *BISTSuite { return bist.DetectionSuite(r, c) }

// DiagnosisSuite builds the log-bounded diagnosis suite.
func DiagnosisSuite(r, c int) *BISTSuite { return bist.DiagnosisSuite(r, c) }

// BISTLogBound is the information-theoretic configuration lower bound
// for diagnosing an r×c crossbar.
func BISTLogBound(r, c int) int { return bist.LogBound(r, c) }

// Built-in self mapping (BISM).
type (
	// Mapper is a self-mapping scheme placing an application on a
	// defective chip.
	Mapper = bism.Mapper
	// Blind retries random placements.
	Blind = bism.Blind
	// Greedy repairs failing placements resource by resource.
	Greedy = bism.Greedy
	// Hybrid runs a blind budget first, then greedy repair.
	Hybrid = bism.Hybrid
	// App is the application matrix to place.
	App = bism.App
	// Chip wraps a defect map for mapping queries.
	Chip = bism.Chip
	// Mapping assigns logical rows/columns to physical ones.
	Mapping = bism.Mapping
	// MapperStats counts the configurations and BIST/BISD invocations
	// a mapping attempt consumed.
	MapperStats = bism.Stats
	// MapReport is the outcome of MapWithRecovery.
	MapReport = core.MapReport
)

// NewChip wraps a defect map for the mappers.
func NewChip(m *DefectMap) *Chip { return bism.NewChip(m) }

// RandomApp draws a random r×c application matrix with the given
// crosspoint usage density.
func RandomApp(r, c int, density float64, rng *rand.Rand) *App {
	return bism.RandomApp(r, c, density, rng)
}

// MapWithRecovery places a synthesized implementation on a defective
// chip with the chosen scheme, reporting the recovery effort.
func MapWithRecovery(im *Implementation, chip *DefectMap, scheme Mapper, maxAttempts int, rng *rand.Rand) (*MapReport, error) {
	return core.MapWithRecovery(im, chip, scheme, maxAttempts, rng)
}

// Defect-unaware design flow.
type (
	// Extraction is a recovered universal k×k sub-crossbar.
	Extraction = dflow.Extraction
	// FlowCosts parameterize the defect-aware vs defect-unaware flow
	// cost comparison.
	FlowCosts = dflow.Costs
)

// GreedyExtraction recovers a universal defect-free sub-crossbar from
// a defective chip.
func GreedyExtraction(m *DefectMap) *Extraction { return dflow.Greedy(m) }

// RawMapBits is the descriptor size of a full n×n defect map.
func RawMapBits(n int) int { return dflow.RawMapBits(n) }

// DefaultFlowCosts mirror the paper's flow cost model.
func DefaultFlowCosts() FlowCosts { return dflow.DefaultCosts() }

// CompareFlows reports total cost of the defect-aware and
// defect-unaware flows for nChips chips × nApps applications.
func CompareFlows(n, k, nChips, nApps int, c FlowCosts) (aware, unaware float64) {
	return dflow.CompareFlows(n, k, nChips, nApps, c)
}
