package nanoxbar

import (
	"context"

	"nanoxbar/internal/bexpr"
	"nanoxbar/internal/core"
	"nanoxbar/internal/cube"
	"nanoxbar/internal/dreduce"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/pcircuit"
	"nanoxbar/internal/truthtab"
)

// Direct synthesis surface: the library layer beneath the serving API,
// re-exported for tools that need method-level control (which lattice
// synthesis algorithm ran, the covers it produced, the lattice grid
// itself) rather than cached service results.

// Boolean functions.
type (
	// TruthTable is a complete single-output Boolean function of up to
	// 24 variables.
	TruthTable = truthtab.TT
	// Cover is a sum-of-products cube cover.
	Cover = cube.Cover
	// PLA is a parsed espresso-format PLA file.
	PLA = cube.PLA
)

// ParseExpr parses a Boolean expression ("x1x2 + x3'") into a truth
// table, also reporting the variable count.
func ParseExpr(expr string) (TruthTable, int, error) { return bexpr.ParseTT(expr) }

// ParseTT parses a truth-table literal ("3:0x96").
func ParseTT(s string) (TruthTable, error) { return truthtab.Parse(s) }

// ParsePLA parses an espresso-format PLA file.
func ParsePLA(text string) (*PLA, error) { return cube.ParsePLA(text) }

// Technologies.
type (
	// Technology selects the crosspoint device.
	Technology = core.Technology
	// Implementation is a synthesized crossbar realization.
	Implementation = core.Implementation
	// TechComparison reports the three technologies side by side.
	TechComparison = core.Comparison
	// Options configure the end-to-end synthesis pipeline.
	Options = core.Options
)

// Supported crossbar technologies.
const (
	Diode        = core.Diode
	FET          = core.FET
	FourTerminal = core.FourTerminal
)

// DefaultOptions enable everything the paper's flow uses (exact
// minimization, P-circuit and D-reducibility searches).
func DefaultOptions() Options { return core.DefaultOptions() }

// Synthesize implements f on the chosen technology, without caching
// (use Client.Synthesize for cached, pooled serving). Cancellation is
// checked between synthesis phases.
func Synthesize(ctx context.Context, f TruthTable, tech Technology, opts Options) (*Implementation, error) {
	return core.SynthesizeCtx(ctx, f, tech, opts)
}

// CompareTechnologies synthesizes f on all three technologies.
func CompareTechnologies(ctx context.Context, f TruthTable, opts Options) (*TechComparison, error) {
	return core.CompareTechnologiesCtx(ctx, f, opts)
}

// Four-terminal lattices.
type (
	// Lattice is a four-terminal switching lattice.
	Lattice = lattice.Lattice
	// Site is one lattice site (a literal or a constant).
	Site = lattice.Site
	// SynthOptions configure the lattice synthesis engines.
	SynthOptions = latsynth.Options
	// LatticeSynthesis is a dual-method synthesis result (lattice plus
	// the f/f-dual covers it was built from).
	LatticeSynthesis = latsynth.Result
	// PCircuitResult is a P-circuit decomposition result.
	PCircuitResult = pcircuit.Result
	// DReduceResult is a D-reducible decomposition result.
	DReduceResult = dreduce.Result
	// OptimalOptions bound the exhaustive optimal lattice search.
	OptimalOptions = latsynth.OptimalOptions
)

// NewLattice allocates an r×c lattice of constant-0 sites.
func NewLattice(r, c int) *Lattice { return lattice.New(r, c) }

// Lit is the lattice site carrying variable v (0-based), optionally
// negated.
func Lit(v int, neg bool) Site { return lattice.Lit(v, neg) }

// DefaultSynthOptions mirror the paper's lattice synthesis settings.
func DefaultSynthOptions() SynthOptions { return latsynth.DefaultOptions() }

// DualMethod runs the Altun–Riedel dual-method lattice synthesis.
func DualMethod(f TruthTable, opts SynthOptions) (*LatticeSynthesis, error) {
	return latsynth.DualMethod(f, opts)
}

// PCircuitBest searches all split variables for the best P-circuit
// decomposition (with intersection handling).
func PCircuitBest(f TruthTable, opts SynthOptions) (*PCircuitResult, error) {
	return pcircuit.Best(f, pcircuit.Options{Synth: opts, Mode: pcircuit.WithIntersection})
}

// DReduce synthesizes the D-reducible decomposition of f.
func DReduce(f TruthTable, opts SynthOptions) (*DReduceResult, error) {
	return dreduce.Synthesize(f, opts)
}

// DefaultOptimalOptions are tuned so functions of up to four support
// variables finish interactively.
func DefaultOptimalOptions() OptimalOptions { return latsynth.DefaultOptimalOptions() }

// OptimalLattice runs the exhaustive minimum-area lattice search. The
// boolean reports whether the search completed within budget (false
// also when ctx was canceled mid-search).
func OptimalLattice(ctx context.Context, f TruthTable, opts OptimalOptions) (*Lattice, bool) {
	return latsynth.OptimalCtx(ctx, f, opts)
}
