package nanoxbar

import "nanoxbar/internal/apierr"

// The error taxonomy of the public API. Every failure returned by an
// API implementation — in-process or HTTP — wraps exactly one of these
// sentinels; compare with errors.Is. The sentinels are shared with the
// engine, so an error classified deep inside synthesis keeps its
// identity all the way out, and the HTTP client reconstructs it from
// the machine-readable wire code.
var (
	// ErrBadSpec: the request itself is malformed — unknown benchmark
	// name, unparsable expression, out-of-range limits, invalid defect
	// map or scheme.
	ErrBadSpec = apierr.ErrBadSpec
	// ErrInfeasible: the request is well-formed but has no solution
	// within its constraints, e.g. the implementation does not fit the
	// supplied chip.
	ErrInfeasible = apierr.ErrInfeasible
	// ErrCanceled: the context was canceled (or its deadline exceeded)
	// before the work completed.
	ErrCanceled = apierr.ErrCanceled
	// ErrOverloaded: the service shed the request under load instead of
	// queueing it past its wait budget. Safe to retry after backing off
	// (the HTTP surface sends a Retry-After hint).
	ErrOverloaded = apierr.ErrOverloaded
	// ErrUnavailable: the service cannot take requests right now —
	// draining for shutdown, unreachable over the network, or fenced
	// off by the HTTP client's circuit breaker.
	ErrUnavailable = apierr.ErrUnavailable
	// ErrInternal: an unexpected failure (bug, panic).
	ErrInternal = apierr.ErrInternal
)

// Wire codes, one per sentinel, as they appear in v2 HTTP error bodies
// and in Result.Code.
const (
	CodeBadSpec     = apierr.CodeBadSpec
	CodeInfeasible  = apierr.CodeInfeasible
	CodeCanceled    = apierr.CodeCanceled
	CodeOverloaded  = apierr.CodeOverloaded
	CodeUnavailable = apierr.CodeUnavailable
	CodeInternal    = apierr.CodeInternal
)

// ErrorCode maps an error onto its wire code ("" for nil,
// "internal" for unclassified errors).
func ErrorCode(err error) string { return apierr.CodeOf(err) }

// ErrorFromCode reconstructs a typed error from its wire form; the
// result wraps the matching sentinel, so errors.Is works on errors
// that crossed an HTTP boundary.
func ErrorFromCode(code, detail string) error { return apierr.FromCode(code, detail) }
