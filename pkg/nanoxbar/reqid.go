package nanoxbar

import (
	"context"

	"nanoxbar/internal/telemetry"
)

// Request-ID propagation, public surface. A request ID placed in a
// context travels with the call: the HTTP client forwards it as the
// X-Request-ID header, the server echoes it on the response and stamps
// it on every v2 stream frame, and both the server's access log and the
// engine's per-request debug log carry it — one string correlates a
// client retry with the server-side evidence.

// ContextWithRequestID returns a context carrying id. An empty id
// returns ctx unchanged.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return telemetry.WithRequestID(ctx, id)
}

// RequestIDFromContext returns the request ID carried by ctx, or "".
func RequestIDFromContext(ctx context.Context) string {
	return telemetry.RequestID(ctx)
}

// NewRequestID mints a 16-hex-character random request ID.
func NewRequestID() string {
	return telemetry.NewRequestID()
}
