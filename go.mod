module nanoxbar

go 1.24
