package nanoxbar_test

// The static-analysis gate: go test enforces every xbarvet invariant
// (depguard, clockdiscipline, seededrand, metricnames, errtaxonomy,
// ctxfirst) over the whole module, so a convention violation fails the
// ordinary test run, not just a separately-invoked linter. This is the
// successor to the old file-walking depguard test — the import rule now
// lives in internal/analysis/depguard.go with the other invariants.
//
// CI also runs `go run ./cmd/xbarvet ./...` in the lint job; this test
// keeps local `go test ./...` equivalent to that gate.

import (
	"testing"

	"nanoxbar/internal/analysis"
)

func TestProjectInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res := analysis.Run(l, pkgs, analysis.Analyzers())
	for _, te := range res.TypeErrors {
		t.Errorf("type error: %s", te)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded — the gate checked nothing")
	}
}
