// Quickstart walks through the paper's running examples on the public
// SDK (pkg/nanoxbar): the two-level array sizes of Fig. 3 for
// f = x1x2 + x1'x2', the 2×2 four-terminal lattice of Fig. 5, and the
// hand-crafted 3×2 lattice of Fig. 4.
package main

import (
	"context"
	"fmt"
	"log"

	"nanoxbar/pkg/nanoxbar"
)

func main() {
	ctx := context.Background()

	// --- the §III running example, via the serving client ---
	cl := nanoxbar.NewClient(nanoxbar.ClientConfig{})
	defer cl.Close()
	cmp, err := cl.Compare(ctx, nanoxbar.Expr("x1x2 + x1'x2'"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("f = x1x2 + x1'x2'   (the paper's running example)")
	fmt.Printf("  diode array:   %d×%d  (paper: 2×5)\n", cmp.Diode.Rows, cmp.Diode.Cols)
	fmt.Printf("  FET array:     %d×%d  (paper: 4×4)\n", cmp.FET.Rows, cmp.FET.Cols)
	fmt.Printf("  4T lattice:    %d×%d  (paper: 2×2)\n\n", cmp.Lattice.Rows, cmp.Lattice.Cols)

	// The client returns sizes; for the lattice grid itself, use the
	// direct synthesis surface.
	f, _, err := nanoxbar.ParseExpr("x1x2 + x1'x2'")
	if err != nil {
		log.Fatal(err)
	}
	li, err := nanoxbar.Synthesize(ctx, f, nanoxbar.FourTerminal, nanoxbar.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(li.Lattice)

	// --- the Fig. 4 lattice ---
	fig4, _, err := nanoxbar.ParseExpr("x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6")
	if err != nil {
		log.Fatal(err)
	}
	hand := nanoxbar.NewLattice(3, 2)
	for i := 0; i < 3; i++ {
		hand.Set(i, 0, nanoxbar.Lit(i, false))
		hand.Set(i, 1, nanoxbar.Lit(3+i, false))
	}
	fmt.Println("Fig. 4: hand-crafted 3×2 lattice")
	fmt.Print(hand)
	fmt.Printf("implements the caption SOP: %v\n", hand.Implements(fig4))
	paths, err := hand.Paths(10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-to-bottom path products: %v\n", paths)

	auto, err := nanoxbar.Synthesize(ctx, fig4, nanoxbar.FourTerminal, nanoxbar.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nautomatic synthesis of the same function: %d×%d via %s\n",
		auto.Rows, auto.Cols, auto.Method)
}
