// Faulttolerance walks the full reliability pipeline of Section IV on
// a defective 32×32 chip through the public SDK: BIST audit, the three
// BISM schemes placing a synthesized function, and the defect-unaware
// k×k extraction.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"nanoxbar/pkg/nanoxbar"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	const n = 32
	const density = 0.04

	// Fabricate a defective chip.
	chip := nanoxbar.RandomDefectMap(n, n, nanoxbar.UniformCrosspoint(density), rng)
	fmt.Printf("chip: %d×%d, %d defective crosspoints (density %.1f%%)\n",
		n, n, chip.CountCrosspointDefects(), 100*density)

	// BIST: what would the built-in test machinery cost on this array?
	det := nanoxbar.DetectionSuite(n, n)
	covered, total := det.Coverage()
	fmt.Printf("BIST: %d configurations, %d vectors → %d/%d single faults detected\n",
		det.NumConfigs(), det.NumVectors(), covered, total)
	diag := nanoxbar.DiagnosisSuite(n, n)
	fmt.Printf("BISD: %d configurations for %d possible faults (log2 bound %d)\n\n",
		diag.NumConfigs(), total, nanoxbar.BISTLogBound(n, n))

	// Synthesize a function and place it with each BISM scheme.
	spec := nanoxbar.Majority(5)
	im, err := nanoxbar.Synthesize(context.Background(), spec.F, nanoxbar.FourTerminal, nanoxbar.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placing %s (%d×%d lattice) on the defective chip:\n", spec.Name, im.Rows, im.Cols)
	for _, scheme := range []nanoxbar.Mapper{nanoxbar.Blind{}, nanoxbar.Greedy{}, nanoxbar.Hybrid{BlindBudget: 4}} {
		rep, err := nanoxbar.MapWithRecovery(im, chip, scheme, 500, rng)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Mapping == nil {
			fmt.Printf("  %-10s FAILED after %d configurations\n", scheme.Name(), rep.Stats.Configs)
			continue
		}
		fmt.Printf("  %-10s ok: %d configs, %d BIST, %d BISD → rows %v cols %v\n",
			scheme.Name(), rep.Stats.Configs, rep.Stats.BISTCalls, rep.Stats.BISDCalls,
			rep.Mapping.Rows, rep.Mapping.Cols)
	}

	// Defect-unaware flow: recover a universal sub-crossbar once.
	e := nanoxbar.GreedyExtraction(chip)
	fmt.Printf("\ndefect-unaware flow: recovered universal %d×%d sub-crossbar (k/N = %.0f%%)\n",
		e.K(), e.K(), 100*float64(e.K())/float64(n))
	fmt.Printf("descriptor: %d bits vs full defect map %d bits\n",
		e.DescriptorBits(n), nanoxbar.RawMapBits(n))
	aware, unaware := nanoxbar.CompareFlows(n, e.K(), 1000, 10, nanoxbar.DefaultFlowCosts())
	fmt.Printf("flow cost (1000 chips × 10 apps): defect-aware %.0f vs defect-unaware %.0f (%.1f×)\n",
		aware, unaware, aware/unaware)
}
