// Faulttolerance walks the full reliability pipeline of Section IV on a
// defective 32×32 chip: BIST audit, the three BISM schemes placing a
// synthesized function, and the defect-unaware k×k extraction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/bism"
	"nanoxbar/internal/bist"
	"nanoxbar/internal/core"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/dflow"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	const n = 32
	const density = 0.04

	// Fabricate a defective chip.
	chip := defect.Random(n, n, defect.UniformCrosspoint(density), rng)
	fmt.Printf("chip: %d×%d, %d defective crosspoints (density %.1f%%)\n",
		n, n, chip.CountCrosspointDefects(), 100*density)

	// BIST: what would the built-in test machinery cost on this array?
	det := bist.DetectionSuite(n, n)
	covered, total := det.Coverage()
	fmt.Printf("BIST: %d configurations, %d vectors → %d/%d single faults detected\n",
		det.NumConfigs(), det.NumVectors(), covered, total)
	diag := bist.DiagnosisSuite(n, n)
	fmt.Printf("BISD: %d configurations for %d possible faults (log2 bound %d)\n\n",
		diag.NumConfigs(), total, bist.LogBound(n, n))

	// Synthesize a function and place it with each BISM scheme.
	spec := benchfn.Majority(5)
	im, err := core.Synthesize(spec.F, core.FourTerminal, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placing %s (%d×%d lattice) on the defective chip:\n", spec.Name, im.Rows, im.Cols)
	for _, scheme := range []bism.Mapper{bism.Blind{}, bism.Greedy{}, bism.Hybrid{BlindBudget: 4}} {
		rep, err := core.MapWithRecovery(im, chip, scheme, 500, rng)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Mapping == nil {
			fmt.Printf("  %-10s FAILED after %d configurations\n", scheme.Name(), rep.Stats.Configs)
			continue
		}
		fmt.Printf("  %-10s ok: %d configs, %d BIST, %d BISD → rows %v cols %v\n",
			scheme.Name(), rep.Stats.Configs, rep.Stats.BISTCalls, rep.Stats.BISDCalls,
			rep.Mapping.Rows, rep.Mapping.Cols)
	}

	// Defect-unaware flow: recover a universal sub-crossbar once.
	e := dflow.Greedy(chip)
	fmt.Printf("\ndefect-unaware flow: recovered universal %d×%d sub-crossbar (k/N = %.0f%%)\n",
		e.K(), e.K(), 100*float64(e.K())/float64(n))
	fmt.Printf("descriptor: %d bits vs full defect map %d bits\n",
		e.DescriptorBits(n), dflow.RawMapBits(n))
	aware, unaware := dflow.CompareFlows(n, e.K(), 1000, 10, dflow.DefaultCosts())
	fmt.Printf("flow cost (1000 chips × 10 apps): defect-aware %.0f vs defect-unaware %.0f (%.1f×)\n",
		aware, unaware, aware/unaware)
}
