// Adder demonstrates the paper's future-work arithmetic package
// through the public SDK: a 4-bit ripple-carry adder built as a
// network of four-terminal lattices, compared per output bit against
// flat (single-array) implementations on all three technologies.
package main

import (
	"context"
	"fmt"
	"log"

	"nanoxbar/pkg/nanoxbar"
)

func main() {
	const n = 4
	nw := nanoxbar.RippleAdder(n, nanoxbar.DefaultSynthOptions())
	fmt.Printf("%d-bit ripple adder: %d lattices, total area %d\n",
		n, nw.NumLattices(), nw.TotalArea())

	// Exhaustive self-check.
	for a := uint64(0); a < 1<<n; a++ {
		for b := uint64(0); b < 1<<n; b++ {
			if got := nanoxbar.AddUint(nw, n, a, b); got != a+b {
				log.Fatalf("adder wrong: %d+%d=%d", a, b, got)
			}
		}
	}
	fmt.Println("verified exhaustively on all 256 operand pairs")

	// Flat per-bit synthesis comparison: a single array per output bit
	// over all 2n inputs, on each technology. The low bits stay small;
	// the high bits show why multi-level networks (and the paper's SOP
	// constraint) matter.
	ctx := context.Background()
	fmt.Println("\nflat single-array cost per output bit (2-bit slice):")
	fmt.Println("bit   diode      FET        lattice")
	for b := 0; b <= 2; b++ {
		spec := nanoxbar.AdderBit(2, b)
		cmp, err := nanoxbar.CompareTechnologies(ctx, spec.F, nanoxbar.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("s%d    %d×%d=%d    %d×%d=%d    %d×%d=%d\n", b,
			cmp.Diode.Rows, cmp.Diode.Cols, cmp.Diode.Area(),
			cmp.FET.Rows, cmp.FET.Cols, cmp.FET.Area(),
			cmp.Lattice.Rows, cmp.Lattice.Cols, cmp.Lattice.Area())
	}

	cmpNet := nanoxbar.Comparator(n, nanoxbar.DefaultSynthOptions())
	fmt.Printf("\n%d-bit comparator network: %d lattices, total area %d\n",
		n, cmpNet.NumLattices(), cmpNet.TotalArea())
	for a := uint64(0); a < 1<<n; a++ {
		for b := uint64(0); b < 1<<n; b++ {
			if nanoxbar.GreaterUint(cmpNet, n, a, b) != (a > b) {
				log.Fatalf("comparator wrong at %d,%d", a, b)
			}
		}
	}
	fmt.Println("comparator verified exhaustively")
}
