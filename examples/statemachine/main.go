// Statemachine demonstrates the paper's objective 4 through the public
// SDK: a synchronous state machine (SSM) whose next-state and output
// logic run on four-terminal switching lattices — here the classic
// "101" sequence detector with overlap.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"nanoxbar/pkg/nanoxbar"
)

func main() {
	spec := nanoxbar.SequenceDetector101()
	m, err := nanoxbar.SynthesizeSSM(spec, nanoxbar.DefaultSynthOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Moore machine: %d states, %d-bit input\n", spec.NumStates, spec.InBits)
	fmt.Printf("synthesized: %d next-state lattices + 1 output lattice, total area %d\n\n",
		len(m.NextBits), m.TotalArea())
	for b, l := range m.NextBits {
		fmt.Printf("next-state bit %d (%d×%d):\n%v\n", b, l.R, l.C, l)
	}

	// Drive it with a demo stream.
	input := []uint64{1, 0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 0, 1}
	out := m.Run(input)
	var inStr, outStr strings.Builder
	for i := range input {
		fmt.Fprintf(&inStr, "%d", input[i])
		if out[i] {
			outStr.WriteByte('1')
		} else {
			outStr.WriteByte('0')
		}
	}
	fmt.Printf("input : %s\noutput: %s   (1 = '101' just seen, overlaps allowed)\n\n",
		inStr.String(), outStr.String())

	// Equivalence against the reference automaton on random streams.
	rng := rand.New(rand.NewSource(5))
	trials, steps := 100, 256
	for t := 0; t < trials; t++ {
		in := make([]uint64, steps)
		for i := range in {
			in[i] = uint64(rng.Intn(2))
		}
		got := m.Run(in)
		want := spec.ReferenceRun(in)
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("divergence at trial %d step %d", t, i)
			}
		}
	}
	fmt.Printf("equivalence check: %d random streams × %d steps — lattice SSM matches the reference automaton\n",
		trials, steps)
}
