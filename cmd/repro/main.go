// Command repro regenerates every experiment table of the DATE'17
// reproduction (the source of EXPERIMENTS.md). Run with no arguments
// for all experiments, or pass experiment ids (e1 … e9) to select.
package main

import (
	"fmt"
	"os"
	"strings"

	"nanoxbar/internal/experiments"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[strings.ToLower(a)] = true
	}
	runners := map[string]func() *experiments.Report{
		"e1":  experiments.E1TwoTerminalSizes,
		"e2":  experiments.E2FourTerminalComparison,
		"e3":  experiments.E3Fig4,
		"e4":  experiments.E4PCircuit,
		"e5":  experiments.E5DReducible,
		"e6":  experiments.E6BIST,
		"e7":  func() *experiments.Report { return experiments.E7BISM(experiments.DefaultE7Params()) },
		"e8":  func() *experiments.Report { return experiments.E8DefectUnaware(experiments.DefaultE8Params()) },
		"e9":  experiments.E9ArithSSM,
		"e10": experiments.E10Variation,
		"e11": experiments.E11Lifetime,
		"a1":  experiments.AblationSynthesis,
		"a2":  experiments.AblationHybridThreshold,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "a1", "a2"}
	ran := 0
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		rep := runners[id]()
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "usage: repro [e1 … e11]\n")
		os.Exit(2)
	}
}
