// Command latsynth synthesizes a four-terminal switching lattice for a
// Boolean function given as an expression or a single-output PLA file,
// using the public SDK (pkg/nanoxbar). Ctrl-C cancels a running
// exhaustive optimal search through the context.
//
// Usage:
//
//	latsynth -f "x1x2 + x1'x2'" [-method dual|pcircuit|dreduce|best|optimal] [-isop] [-paths]
//	latsynth -pla file.pla
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"nanoxbar/pkg/nanoxbar"
)

func main() {
	expr := flag.String("f", "", "Boolean expression, e.g. \"x1x2 + x1'x2'\"")
	plaPath := flag.String("pla", "", "single-output PLA file (espresso format)")
	method := flag.String("method", "best", "dual | pcircuit | dreduce | best | optimal")
	isopCovers := flag.Bool("isop", false, "use irredundant (ISOP) covers instead of exact minimization")
	showPaths := flag.Bool("paths", false, "print the lattice path products")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	f, n, err := loadFunction(*expr, *plaPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latsynth:", err)
		os.Exit(1)
	}
	opts := nanoxbar.DefaultSynthOptions()
	if *isopCovers {
		opts.Exact = false
	}

	var l *nanoxbar.Lattice
	var label string
	switch *method {
	case "dual":
		res, err := nanoxbar.DualMethod(f, opts)
		exitOn(err)
		l, label = res.Lattice, "dual method"
		fmt.Printf("f cover:  %v\nfD cover: %v\n", res.FCover, res.DualCover)
	case "pcircuit":
		res, err := nanoxbar.PCircuitBest(f, opts)
		exitOn(err)
		l, label = res.Lattice, fmt.Sprintf("P-circuit (split x%d, %v)", res.Var+1, res.Mode)
	case "dreduce":
		res, err := nanoxbar.DReduce(f, opts)
		exitOn(err)
		l, label = res.Lattice, "D-reducible decomposition"
		if res.Analysis != nil {
			fmt.Printf("affine hull: dim %d of %d\n", res.Analysis.Affine.Dim(), n)
		}
	case "best":
		l, label = bestOf(f, opts)
	case "optimal":
		got, done := nanoxbar.OptimalLattice(ctx, f, nanoxbar.DefaultOptimalOptions())
		if got == nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "latsynth: optimal search canceled")
			} else {
				fmt.Fprintf(os.Stderr, "latsynth: optimal search found nothing (completed=%v)\n", done)
			}
			os.Exit(1)
		}
		l, label = got, "exhaustive optimal search"
	default:
		fmt.Fprintf(os.Stderr, "latsynth: unknown method %q\n", *method)
		os.Exit(2)
	}

	fmt.Printf("method: %s\nsize:   %d×%d (area %d)\n", label, l.R, l.C, l.Area())
	fmt.Print(l)
	if !l.Implements(f) {
		fmt.Fprintln(os.Stderr, "latsynth: INTERNAL ERROR: lattice does not implement f")
		os.Exit(1)
	}
	fmt.Println("verified: lattice implements f on all assignments")
	if *showPaths {
		paths, err := l.Paths(1 << 16)
		if err != nil {
			fmt.Fprintln(os.Stderr, "latsynth: path enumeration:", err)
		} else {
			fmt.Printf("paths: %v\n", paths)
		}
	}
}

func bestOf(f nanoxbar.TruthTable, opts nanoxbar.SynthOptions) (*nanoxbar.Lattice, string) {
	res, err := nanoxbar.DualMethod(f, opts)
	exitOn(err)
	best, label := res.Lattice, "dual method"
	if p, err := nanoxbar.PCircuitBest(f, opts); err == nil && p.Area() < best.Area() {
		best, label = p.Lattice, fmt.Sprintf("P-circuit (split x%d)", p.Var+1)
	}
	if d, err := nanoxbar.DReduce(f, opts); err == nil && d.Area() < best.Area() {
		best, label = d.Lattice, "D-reducible decomposition"
	}
	return best, label
}

func loadFunction(expr, plaPath string) (nanoxbar.TruthTable, int, error) {
	switch {
	case expr != "" && plaPath != "":
		return nanoxbar.TruthTable{}, 0, fmt.Errorf("choose one of -f and -pla")
	case expr != "":
		return nanoxbar.ParseExpr(expr)
	case plaPath != "":
		text, err := os.ReadFile(plaPath)
		if err != nil {
			return nanoxbar.TruthTable{}, 0, err
		}
		p, err := nanoxbar.ParsePLA(string(text))
		if err != nil {
			return nanoxbar.TruthTable{}, 0, err
		}
		if p.Outputs != 1 {
			return nanoxbar.TruthTable{}, 0, fmt.Errorf("PLA has %d outputs; latsynth handles one", p.Outputs)
		}
		return p.Covers[0].ToTT(p.Inputs), p.Inputs, nil
	default:
		return nanoxbar.TruthTable{}, 0, fmt.Errorf("need -f or -pla (try -f \"x1x2 + x1'x2'\")")
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "latsynth:", err)
		os.Exit(1)
	}
}
