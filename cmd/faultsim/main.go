// Command faultsim drives the fault-tolerance machinery through the
// public SDK (pkg/nanoxbar): BIST coverage audits, BISM Monte Carlo
// sweeps, and defect-unaware flow extraction.
//
// Usage:
//
//	faultsim bist  [-rows 16] [-cols 16]
//	faultsim bism  [-n 32] [-app 8] [-density 0.05] [-trials 50]
//	faultsim dflow [-n 64] [-density 0.05] [-trials 20]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"nanoxbar/pkg/nanoxbar"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "bist":
		runBIST(os.Args[2:])
	case "bism":
		runBISM(os.Args[2:])
	case "dflow":
		runDFlow(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: faultsim bist|bism|dflow [flags]")
	os.Exit(2)
}

func runBIST(args []string) {
	fs := flag.NewFlagSet("bist", flag.ExitOnError)
	rows := fs.Int("rows", 16, "crossbar rows")
	cols := fs.Int("cols", 16, "crossbar columns")
	fs.Parse(args)

	det := nanoxbar.DetectionSuite(*rows, *cols)
	covered, total := det.Coverage()
	fmt.Printf("detection: %d configurations, %d vectors, coverage %d/%d (%.1f%%)\n",
		det.NumConfigs(), det.NumVectors(), covered, total, 100*float64(covered)/float64(total))

	diag := nanoxbar.DiagnosisSuite(*rows, *cols)
	groups := diag.SyndromeTable()
	multi := 0
	for _, g := range groups {
		if len(g) > 1 {
			multi++
		}
	}
	fmt.Printf("diagnosis: %d configurations (log bound %d) for %d faults; %d distinct syndromes, %d same-resource groups\n",
		diag.NumConfigs(), nanoxbar.BISTLogBound(*rows, *cols), total, len(groups), multi)
}

func runBISM(args []string) {
	fs := flag.NewFlagSet("bism", flag.ExitOnError)
	n := fs.Int("n", 32, "chip dimension")
	app := fs.Int("app", 8, "application dimension")
	density := fs.Float64("density", 0.05, "crosspoint defect density")
	trials := fs.Int("trials", 50, "Monte Carlo trials")
	budget := fs.Int("budget", 300, "configuration budget per trial")
	seed := fs.Int64("seed", 1, "RNG seed")
	fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	mappers := []nanoxbar.Mapper{nanoxbar.Blind{}, nanoxbar.Greedy{}, nanoxbar.Hybrid{BlindBudget: 4}}
	fmt.Printf("chip %d×%d, app %d×%d, defect density %.3f, %d trials\n", *n, *n, *app, *app, *density, *trials)
	for _, m := range mappers {
		ok, configs, cost := 0, 0, 0.0
		for t := 0; t < *trials; t++ {
			dm := nanoxbar.RandomDefectMap(*n, *n, nanoxbar.UniformCrosspoint(*density), rng)
			a := nanoxbar.RandomApp(*app, *app, 0.5, rng)
			mp, st := m.Map(nanoxbar.NewChip(dm), a, *budget, rng)
			if mp != nil {
				ok++
			}
			configs += st.Configs
			cost += st.Cost(10)
		}
		fmt.Printf("  %-10s success %3d%%  mean configs %6.1f  mean cost %8.1f\n",
			m.Name(), ok*100 / *trials, float64(configs)/float64(*trials), cost/float64(*trials))
	}
}

func runDFlow(args []string) {
	fs := flag.NewFlagSet("dflow", flag.ExitOnError)
	n := fs.Int("n", 64, "array dimension")
	density := fs.Float64("density", 0.05, "crosspoint defect density")
	trials := fs.Int("trials", 20, "Monte Carlo trials")
	seed := fs.Int64("seed", 1, "RNG seed")
	fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	sum, minK, maxK := 0, 1<<30, 0
	for t := 0; t < *trials; t++ {
		m := nanoxbar.RandomDefectMap(*n, *n, nanoxbar.UniformCrosspoint(*density), rng)
		k := nanoxbar.GreedyExtraction(m).K()
		sum += k
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	mean := float64(sum) / float64(*trials)
	fmt.Printf("N=%d p=%.3f: recovered k mean %.1f (min %d, max %d), k/N %.0f%%\n",
		*n, *density, mean, minK, maxK, 100*mean/float64(*n))
	e := nanoxbar.GreedyExtraction(nanoxbar.NewDefectMap(*n, *n))
	fmt.Printf("descriptor: %d bits (full defect map: %d bits)\n", e.DescriptorBits(*n), nanoxbar.RawMapBits(*n))
	aware, unaware := nanoxbar.CompareFlows(*n, int(mean), 1000, 10, nanoxbar.DefaultFlowCosts())
	fmt.Printf("flow cost for 1000 chips × 10 apps: defect-aware %.0f, defect-unaware %.0f (%.2f× advantage)\n",
		aware, unaware, aware/unaware)
}
