// Command xbarvet runs the project's invariant analyzers (package
// internal/analysis) over module packages: depguard, clockdiscipline,
// seededrand, metricnames, errtaxonomy, ctxfirst, lanegate. It is the
// static-analysis companion to go vet — the conventions the repo's
// correctness story rests on, machine-checked.
//
// Usage:
//
//	xbarvet [-json] [-run regexp] [-list] [packages]
//
// Packages are module-root-relative directories or /... patterns;
// the default is ./... from the current directory's module. Exit
// status: 0 clean, 1 findings (or type errors — a run over a broken
// tree is not a clean bill), 2 usage or load failure.
//
// Suppress a finding with a trailing or preceding line comment
// `//xbarvet:ignore <reason>`; a reasonless ignore is itself reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"nanoxbar/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbarvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the full result as JSON instead of text diagnostics")
	runFilter := fs.String("run", "", "run only analyzers whose name matches this regexp")
	list := fs.Bool("list", false, "list the analyzers and their invariants, then exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: xbarvet [-json] [-run regexp] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			fmt.Fprintf(stderr, "xbarvet: bad -run regexp: %v\n", err)
			return 2
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(stderr, "xbarvet: -run %q matches no analyzers\n", *runFilter)
			return 2
		}
		analyzers = kept
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintf(stderr, "xbarvet: %v\n", err)
		return 2
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "xbarvet: %v\n", err)
		return 2
	}
	res := analysis.Run(l, pkgs, analyzers)

	if *jsonOut {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "xbarvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(stdout, d.String())
		}
	}
	for _, te := range res.TypeErrors {
		fmt.Fprintf(stderr, "xbarvet: type error: %s\n", te)
	}
	if len(res.Diagnostics) > 0 || len(res.TypeErrors) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "xbarvet: %d finding(s) across %d package(s)\n",
				len(res.Diagnostics), res.Packages)
		}
		return 1
	}
	return 0
}
