package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"nanoxbar/internal/engine"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is
// a batch of map requests with explicit defect maps, well under this.
const maxBodyBytes = 16 << 20

// maxBatchSize bounds one /v1/batch submission. Larger workloads should
// be split client-side so a single request cannot monopolize the pool.
const maxBatchSize = 10000

// server routes the HTTP API onto an engine.
type server struct {
	eng *engine.Engine
	mux *http.ServeMux
}

func newServer(eng *engine.Engine, opts ...serverOption) *server {
	s := &server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/synthesize", s.handleSingle(engine.KindSynthesize, engine.KindCompare))
	s.mux.HandleFunc("/v1/map", s.handleSingle(engine.KindMap, engine.KindYield))
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

type serverOption func(*server)

// withPprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default: the profiler exposes internals and
// costs CPU while sampling, so it is opt-in via the -pprof flag.
func withPprof() serverOption {
	return func(s *server) {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody parses a JSON body into dst with a size bound.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// handleSingle serves one-request endpoints. The first kind is the
// default when the body leaves kind empty; a request naming any other
// kind than the allowed ones is rejected, keeping each endpoint's
// latency profile predictable.
func (s *server) handleSingle(def engine.Kind, also ...engine.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var req engine.Request
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if req.Kind == "" {
			req.Kind = def
		}
		allowed := req.Kind == def
		for _, k := range also {
			allowed = allowed || req.Kind == k
		}
		if !allowed {
			writeError(w, http.StatusBadRequest, "kind %q not served by %s", req.Kind, r.URL.Path)
			return
		}
		res := s.eng.Do(req)
		if !res.Ok() {
			writeJSON(w, http.StatusUnprocessableEntity, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// batchRequest is the /v1/batch body.
type batchRequest struct {
	Requests []engine.Request `json:"requests"`
}

// batchResponse mirrors the submission order.
type batchResponse struct {
	Results []engine.Result `json:"results"`
	Errors  int             `json:"errors"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Requests) > maxBatchSize {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Requests), maxBatchSize)
		return
	}
	// Default empty kinds to per-chip mapping, the expected bulk load.
	for i := range req.Requests {
		if req.Requests[i].Kind == "" {
			req.Requests[i].Kind = engine.KindMap
		}
	}
	results := s.eng.SubmitBatch(req.Requests)
	resp := batchResponse{Results: results}
	for _, res := range results {
		if !res.Ok() {
			resp.Errors++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}
