// Command xbarserverd serves the nanoxbar synthesis and per-chip
// mapping pipeline over HTTP. Synthesis results are cached in a sharded
// LRU shared across requests (one core.Synthesize per distinct function
// × technology × options); per-chip mapping jobs fan out across a
// bounded worker pool. The handler lives in internal/httpapi; this
// command is flag parsing and lifecycle.
//
// The cache can persist across restarts: -cache-save checkpoints it to
// disk on shutdown (and every -cache-save-interval while running), and
// -cache-load seeds it at boot, so a restarted server answers
// previously-synthesized functions with pure cache hits. Snapshots are
// fingerprint-keyed; one written by a binary with different synthesis
// behavior is refused and the server starts cold.
//
// Endpoints:
//
//	POST /v2/jobs        any request kinds — NDJSON stream, results
//	                     flushed as workers finish; structured errors
//	POST /v1/synthesize  one synthesize or compare request
//	POST /v1/map         one per-chip map or yield-sweep request
//	POST /v1/batch       {"requests": [...]} — fan-out, results in order
//	GET  /healthz        liveness probe + uptime/build + cache summary
//	GET  /stats          engine counters (cache hits/misses, workers, ...)
//	GET  /metrics        Prometheus text exposition (latency histograms,
//	                     cache/fault counters, Go runtime stats)
//
// SIGINT and SIGTERM both shut down gracefully: the server stops
// admitting work (503 + Retry-After on the work routes; health and
// metrics stay up), lets in-flight requests and NDJSON streams finish
// (bounded at 10s), logs the drain duration, and checkpoints the cache
// after the drain so the snapshot holds every completed synthesis.
//
// Every request gets a request ID — honored from the client's
// X-Request-ID header or minted at ingress — echoed on the response,
// stamped on v2 stream frames, and attached to every log line. Access
// logs are structured (log/slog); -log-level debug additionally logs
// each engine request with its stage outcome.
//
// Cluster mode (-peers, -node-id, -advertise) joins N daemons into a
// consistent-hash serving tier: synthesis requests are routed to the
// node owning their cache key, cold cache slots are filled from the
// owner's cache before synthesizing locally, and a restarting node
// warm-starts by streaming a sibling's cache snapshot when its own
// disk snapshot yields nothing. Draining de-registers the node from
// peer rings via the /healthz cluster block. See DESIGN.md §14 and the
// README "Cluster mode" section.
//
// Usage:
//
//	xbarserverd [-addr :8080] [-workers N] [-cache 1024] [-cache-shards N]
//	            [-cache-load path] [-cache-save path] [-cache-save-interval 5m]
//	            [-log-level info] [-log-format text] [-pprof]
//	            [-node-id a -advertise http://host:8080 -peers a=...,b=...,c=...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"nanoxbar/internal/cluster"
	"nanoxbar/internal/core"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
)

// parsePeers parses the -peers flag: a comma-separated id=url list,
// e.g. "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080". The list may
// include this node's own entry (every member can share one flag
// value); cluster.New skips it by id.
func parsePeers(spec string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate -peers id %q", id)
		}
		out[id] = strings.TrimSuffix(url, "/")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-peers %q names no members", spec)
	}
	return out, nil
}

// buildLogger constructs the process logger from the flag values.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text|json)", format)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	cacheSize := flag.Int("cache", 1024, "synthesis cache entries (total across shards)")
	cacheShards := flag.Int("cache-shards", 0, "cache shard count (0 = 4×workers, power of two)")
	cacheLoad := flag.String("cache-load", "", "seed the cache from this snapshot at boot")
	cacheSave := flag.String("cache-save", "", "checkpoint the cache to this path on shutdown")
	saveInterval := flag.Duration("cache-save-interval", 0, "also checkpoint every interval (0 = only on shutdown)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "log level (debug|info|warn|error); debug logs every engine request")
	logFormat := flag.String("log-format", "text", "log format (text|json)")
	nodeID := flag.String("node-id", "", "cluster member id (required with -peers)")
	advertise := flag.String("advertise", "", "base URL peers reach this node at (cluster mode)")
	peersSpec := flag.String("peers", "", "cluster peers as id=url,... (enables cluster mode)")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbarserverd:", err)
		os.Exit(2)
	}

	eng := engine.New(engine.Config{
		Workers: *workers, CacheSize: *cacheSize, CacheShards: *cacheShards,
		Logger: logger,
	})
	defer eng.Close()

	if *cacheLoad != "" {
		n, err := eng.LoadCacheSnapshot(*cacheLoad)
		if err != nil {
			// A bad or stale snapshot is not fatal: serve cold rather
			// than refuse traffic.
			fmt.Fprintln(os.Stderr, "xbarserverd: cache-load:", err, "(starting cold)")
		} else {
			fmt.Printf("xbarserverd: cache warmed with %d entries from %s\n", n, *cacheLoad)
		}
	}

	sopts := []httpapi.Option{httpapi.WithLogger(logger)}
	if *pprofOn {
		sopts = append(sopts, httpapi.WithPprof())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Cluster mode: join the static membership, serve the peer routes,
	// consult siblings' caches before cold synthesis, and — when the
	// disk snapshot produced nothing — warm-start from a sibling.
	var node *cluster.Node
	if *peersSpec != "" {
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "xbarserverd: -peers requires -node-id")
			os.Exit(2)
		}
		peerMap, err := parsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbarserverd:", err)
			os.Exit(2)
		}
		node, err = cluster.New(eng, cluster.Config{
			NodeID: *nodeID, Advertise: *advertise, Peers: peerMap, Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbarserverd:", err)
			os.Exit(2)
		}
		eng.SetPeerFill(node.PeerFill)
		sopts = append(sopts, httpapi.WithCluster(node))
		go node.Run(ctx)
		if eng.Stats().CacheEntries == 0 {
			if n, from, err := node.WarmStart(ctx); err != nil {
				logger.Info("cluster warm-start unavailable, starting cold", "err", err)
			} else {
				fmt.Printf("xbarserverd: cache warmed with %d entries from peer %s\n", n, from)
			}
		}
	}

	api := httpapi.New(eng, sopts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		// No blanket write timeout: large yield sweeps legitimately run
		// long. The per-request bound is the scheme's MaxAttempts, and
		// v2 clients that hang up cancel their work via the request
		// context.
	}

	// checkpointMu serializes snapshot saves: without it an in-flight
	// interval checkpoint could finish after the shutdown checkpoint and
	// rename a stale snapshot over the final post-drain one.
	var checkpointMu sync.Mutex
	checkpoint := func(reason string) {
		if *cacheSave == "" {
			return
		}
		checkpointMu.Lock()
		defer checkpointMu.Unlock()
		n, err := eng.SaveCacheSnapshot(*cacheSave)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbarserverd: cache-save:", err)
			return
		}
		fmt.Printf("xbarserverd: checkpointed %d cache entries to %s (%s)\n", n, *cacheSave, reason)
	}
	tickerDone := make(chan struct{})
	close(tickerDone)
	if *cacheSave != "" && *saveInterval > 0 {
		tickerDone = make(chan struct{})
		go func() {
			defer close(tickerDone)
			t := time.NewTicker(*saveInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					checkpoint("interval")
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	st := eng.Stats()
	fmt.Printf("xbarserverd listening on %s (workers=%d cache=%d shards=%d fingerprint=%q)\n",
		*addr, st.Workers, *cacheSize, st.CacheShards, core.Fingerprint())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "xbarserverd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// SIGINT and SIGTERM take the same graceful path: mark the handler
	// draining first so new work is rejected typed (503 + Retry-After)
	// while in-flight requests — including open NDJSON streams — run to
	// completion, then close the listener and wait for them.
	drainStart := time.Now()
	if node != nil {
		// De-register from the ring first: peers probing /healthz during
		// the drain window see leaving=true and stop routing here
		// immediately instead of waiting out the suspicion timeout. Hold
		// the listener open for one probe round before Shutdown closes it
		// — without the grace, peers never get a successful probe of the
		// leaving flag and fall back to the slow suspicion path.
		node.Leave()
		time.Sleep(time.Second)
	}
	api.Drain()
	logger.Info("draining", "reason", "signal")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	logger.Info("drained", "duration", time.Since(drainStart).String(),
		"complete", err == nil)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "xbarserverd: shutdown:", err)
	}
	// Final checkpoint after the listener has drained (and the interval
	// ticker has stopped): every completed request's synthesis is in the
	// snapshot, and no stale interval save can land after it.
	<-tickerDone
	checkpoint("shutdown")
}
