// Command xbarserverd serves the nanoxbar synthesis and per-chip
// mapping pipeline over HTTP. Synthesis results are cached and shared
// across requests (one core.Synthesize per distinct function ×
// technology × options); per-chip mapping jobs fan out across a bounded
// worker pool. The handler lives in internal/httpapi; this command is
// flag parsing and lifecycle.
//
// Endpoints:
//
//	POST /v2/jobs        any request kinds — NDJSON stream, results
//	                     flushed as workers finish; structured errors
//	POST /v1/synthesize  one synthesize or compare request
//	POST /v1/map         one per-chip map or yield-sweep request
//	POST /v1/batch       {"requests": [...]} — fan-out, results in order
//	GET  /healthz        liveness probe
//	GET  /stats          engine counters (cache hits/misses, workers, ...)
//
// Usage:
//
//	xbarserverd [-addr :8080] [-workers N] [-cache 1024] [-pprof]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nanoxbar/internal/core"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	cacheSize := flag.Int("cache", 1024, "synthesis cache entries")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	eng := engine.New(engine.Config{Workers: *workers, CacheSize: *cacheSize})
	defer eng.Close()

	var sopts []httpapi.Option
	if *pprofOn {
		sopts = append(sopts, httpapi.WithPprof())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(eng, sopts...),
		ReadHeaderTimeout: 10 * time.Second,
		// No blanket write timeout: large yield sweeps legitimately run
		// long. The per-request bound is the scheme's MaxAttempts, and
		// v2 clients that hang up cancel their work via the request
		// context.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("xbarserverd listening on %s (workers=%d cache=%d fingerprint=%q)\n",
		*addr, eng.Stats().Workers, *cacheSize, core.Fingerprint())

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "xbarserverd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "xbarserverd: shutdown:", err)
	}
}
