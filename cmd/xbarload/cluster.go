// Cluster soak mode: -cluster N boots N in-process cluster nodes
// (engine + cluster.Node + httpapi, each on its own loopback port) and
// drives the regular scenario mix against node n0 while a chaos
// schedule kills node n1 abruptly in the middle of a streaming yield
// sweep, then restarts it on the same port under load and warm-starts
// its cache from a peer snapshot. Node-to-node traffic (probes, fills,
// forwards, snapshots) runs through a seeded resilience.ChaosTransport
// to model partitions.
//
// The run fails when any client-facing error is untyped — including
// the error the dedicated kill-victim stream observes — or when any
// surviving node's /metrics reports a recovered panic. Routing and
// fill counters summed across the surviving nodes are emitted as the
// Soak/cluster pseudo-benchmark (NsPerOp = p50 across all scenario
// latencies) with a Soak/cluster/p99 companion so benchjson -compare
// gates both quantiles.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"nanoxbar/internal/benchreport"
	"nanoxbar/internal/cluster"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
	"nanoxbar/internal/resilience"
	"nanoxbar/pkg/nanoxbar"
	nbclient "nanoxbar/pkg/nanoxbar/client"
)

// clusterVictim is the node the chaos schedule kills and restarts. The
// soak client only ever dials n0, so n0 is never a victim.
const clusterVictim = "n1"

// clusterMember is one live node of the in-process cluster.
type clusterMember struct {
	id     string
	eng    *engine.Engine
	node   *cluster.Node
	srv    *http.Server
	cancel context.CancelFunc // stops node.Run's heartbeat loop
}

// clusterHarness owns the N-node in-process cluster and the kill/
// restart chronology observed during the soak.
type clusterHarness struct {
	n         int
	seed      int64
	workers   int
	cacheSize int
	peers     map[string]string // id → base URL (stable across restarts)
	addrs     map[string]string // id → listen address (rebound on restart)

	mu          sync.Mutex
	members     map[string]*clusterMember // live nodes only
	kills       int
	restarts    int
	killTyped   int      // victim-stream failures that surfaced typed
	killUntyped int      // victim-stream failures that did not (bugs)
	killErrs    []string // the untyped errors, for the failure report
	restartErr  string   // non-empty when the restart itself failed
	warmEntries int
	warmFrom    string
	warmErr     string
}

// startClusterHarness listens for all N nodes first — so every node's
// Peers map holds real URLs — then starts them.
func startClusterHarness(n, workers, cacheSize int, seed int64) (*clusterHarness, error) {
	ch := &clusterHarness{
		n:         n,
		seed:      seed,
		workers:   workers,
		cacheSize: cacheSize,
		peers:     make(map[string]string),
		addrs:     make(map[string]string),
		members:   make(map[string]*clusterMember),
	}
	lns := make(map[string]net.Listener)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, err
		}
		lns[id] = ln
		ch.addrs[id] = ln.Addr().String()
		ch.peers[id] = "http://" + ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		if err := ch.startMember(i, id, lns[id]); err != nil {
			ch.close()
			return nil, err
		}
	}
	return ch, nil
}

// startMember boots one node on ln: engine, cluster membership with a
// seeded chaos transport on the peer links, peer-fill hook, HTTP
// surface with the cluster routes, and the heartbeat loop.
func (ch *clusterHarness) startMember(i int, id string, ln net.Listener) error {
	eng := engine.New(engine.Config{Workers: ch.workers, CacheSize: ch.cacheSize})
	// Partition model: every node-to-node request can be dropped or
	// delayed. Rates stay low so warm-start snapshots usually land on
	// the first or second donor; the failure detector and per-endpoint
	// breakers absorb the rest.
	chaosT := resilience.NewChaosTransport(nil, resilience.ChaosConfig{
		Seed:        ch.seed + int64(i+1)*0x9e3779b9,
		DropRate:    0.02,
		LatencyRate: 0.05,
		LatencyMin:  time.Millisecond,
		LatencyMax:  5 * time.Millisecond,
	})
	node, err := cluster.New(eng, cluster.Config{
		NodeID:    id,
		Advertise: ch.peers[id],
		Peers:     ch.peers,
		// Fast enough that a 5s CI soak sees alive→suspect→dead→alive.
		ProbeInterval: 100 * time.Millisecond,
		Seed:          ch.seed + int64(i),
		HTTPClient:    &http.Client{Transport: chaosT},
	})
	if err != nil {
		eng.Close()
		return err
	}
	eng.SetPeerFill(node.PeerFill)
	srv := &http.Server{Handler: httpapi.New(eng, httpapi.WithCluster(node))}
	runCtx, cancel := context.WithCancel(context.Background())
	go node.Run(runCtx)
	go srv.Serve(ln)
	ch.mu.Lock()
	ch.members[id] = &clusterMember{id: id, eng: eng, node: node, srv: srv, cancel: cancel}
	ch.mu.Unlock()
	return nil
}

// kill tears a node down abruptly — http.Server.Close drops in-flight
// connections mid-stream, the crash model (vs close's graceful drain).
func (ch *clusterHarness) kill(id string) {
	ch.mu.Lock()
	m := ch.members[id]
	delete(ch.members, id)
	if m != nil {
		ch.kills++
	}
	ch.mu.Unlock()
	if m == nil {
		return
	}
	m.cancel()
	m.srv.Close()
	m.eng.Close()
}

// restart rebinds the victim's original port (so peers' static URLs
// keep working), boots a fresh node with an empty cache, and
// warm-starts it from a peer snapshot — no local snapshot file exists.
func (ch *clusterHarness) restart(ctx context.Context, i int, id string) error {
	var ln net.Listener
	var err error
	deadline := time.Now().Add(3 * time.Second)
	for {
		ln, err = net.Listen("tcp", ch.addrs[id])
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("rebind %s: %w", ch.addrs[id], err)
	}
	if err := ch.startMember(i, id, ln); err != nil {
		return err
	}
	ch.mu.Lock()
	m := ch.members[id]
	ch.restarts++
	ch.mu.Unlock()

	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var entries int
	var from string
	for attempt := 0; attempt < 3; attempt++ {
		if entries, from, err = m.node.WarmStart(wctx); err == nil {
			break
		}
	}
	ch.mu.Lock()
	if err != nil {
		ch.warmErr = err.Error() // chaos can drop every donor; warn, don't fail
	} else {
		ch.warmEntries = entries
		ch.warmFrom = from
	}
	ch.mu.Unlock()
	return nil
}

// killMidSweep opens a dedicated yield-sweep stream straight at the
// victim and kills it after the third die event, so the kill lands
// mid-NDJSON-stream deterministically. The stream's error must be
// typed — that is the contract under test.
func (ch *clusterHarness) killMidSweep(ctx context.Context, id string, cfg soakConfig) {
	cl := nbclient.New(ch.peers[id])
	defer cl.Close()
	// The sweep must still be producing when the kill lands: a small
	// sweep finishes (and buffers every frame in the socket) before the
	// client has even processed die 3, and the "mid-stream" kill
	// degrades to a clean completion. 20k dies is hundreds of
	// milliseconds of production against microseconds to the kill.
	const chips = 20000
	seen := 0
	_, err := cl.YieldSweep(ctx, nanoxbar.TT("4:0x1be4"),
		nanoxbar.WithSeed(cfg.seed),
		nanoxbar.WithDensity(cfg.density),
		nanoxbar.WithChips(chips),
		nanoxbar.WithMaxAttempts(cfg.maxAttempts),
		nanoxbar.OnDie(func(nanoxbar.Die) {
			if seen++; seen == 3 {
				ch.kill(id)
			}
		}))
	ch.mu.Lock()
	defer ch.mu.Unlock()
	switch {
	case err == nil:
		// The sweep outran the kill; the node still died under load.
	case errors.Is(err, nanoxbar.ErrUnavailable), errors.Is(err, nanoxbar.ErrCanceled):
		ch.killTyped++
	default:
		ch.killUntyped++
		ch.killErrs = append(ch.killErrs, err.Error())
	}
}

// runChaos is the kill/restart schedule: kill the victim mid-stream at
// ~40% of the soak, restart it under load at ~70%.
func (ch *clusterHarness) runChaos(ctx context.Context, cfg soakConfig) {
	select {
	case <-ctx.Done():
		return
	case <-time.After(cfg.duration * 2 / 5):
	}
	ch.killMidSweep(ctx, clusterVictim, cfg)
	select {
	case <-ctx.Done():
		return
	case <-time.After(cfg.duration * 3 / 10):
	}
	if err := ch.restart(ctx, 1, clusterVictim); err != nil {
		ch.mu.Lock()
		ch.restartErr = err.Error()
		ch.mu.Unlock()
	}
}

// statusSum adds the routing/fill counters across surviving nodes.
func (ch *clusterHarness) statusSum() cluster.Status {
	ch.mu.Lock()
	members := make([]*clusterMember, 0, len(ch.members))
	for _, m := range ch.members {
		members = append(members, m)
	}
	ch.mu.Unlock()
	var sum cluster.Status
	for _, m := range members {
		st := m.node.Status()
		sum.PeerFillHits += st.PeerFillHits
		sum.PeerFillMisses += st.PeerFillMisses
		sum.Forwards += st.Forwards
		sum.Failovers += st.Failovers
		sum.LocalDegrades += st.LocalDegrades
	}
	return sum
}

// panicsObserved scrapes every surviving node's /metrics for the
// recovered-panic counter; an unreadable scrape is itself a failure —
// the soak's zero-panic claim would be vacuous without the evidence.
func (ch *clusterHarness) panicsObserved(ctx context.Context) (int, error) {
	ch.mu.Lock()
	urls := make(map[string]string, len(ch.members))
	for id := range ch.members {
		urls[id] = ch.peers[id]
	}
	ch.mu.Unlock()
	total := 0
	for id, url := range urls {
		exp := scrapeMetrics(ctx, url)
		if exp == nil {
			return 0, fmt.Errorf("node %s: /metrics unreadable", id)
		}
		v, ok := exp.Value("nanoxbar_http_panics_total", nil)
		if !ok {
			return 0, fmt.Errorf("node %s: no panic counter in /metrics", id)
		}
		total += int(v)
	}
	return total, nil
}

// benchmarks shapes the cluster soak as two pseudo-benchmarks:
// Soak/cluster (NsPerOp = p50 across every scenario latency, plus the
// routing/fill/chaos counters) and Soak/cluster/p99 (NsPerOp = p99) so
// the CI gate compares both quantiles as first-class ns/op values.
func (ch *clusterHarness) benchmarks(res *soakResult, duration time.Duration) []benchreport.Benchmark {
	res.mu.Lock()
	var all []time.Duration
	for _, lats := range res.latencies {
		all = append(all, lats...)
	}
	res.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := percentile(all, 0.50)
	p99 := percentile(all, 0.99)

	st := ch.statusSum()
	ch.mu.Lock()
	m := map[string]float64{
		"nodes":            float64(ch.n),
		"ops":              float64(len(all)),
		"p50-ns":           float64(p50.Nanoseconds()),
		"p99-ns":           float64(p99.Nanoseconds()),
		"forwards":         float64(st.Forwards),
		"failovers":        float64(st.Failovers),
		"peer-fill-hits":   float64(st.PeerFillHits),
		"peer-fill-misses": float64(st.PeerFillMisses),
		"local-degrades":   float64(st.LocalDegrades),
		"kills":            float64(ch.kills),
		"restarts":         float64(ch.restarts),
		"kill-typed":       float64(ch.killTyped),
		"warm-entries":     float64(ch.warmEntries),
	}
	ch.mu.Unlock()
	return []benchreport.Benchmark{
		{
			Pkg:        "nanoxbar/cmd/xbarload",
			Name:       "Soak/cluster",
			Iterations: int64(len(all)),
			NsPerOp:    float64(p50.Nanoseconds()),
			Metrics:    m,
		},
		{
			Pkg:        "nanoxbar/cmd/xbarload",
			Name:       "Soak/cluster/p99",
			Iterations: int64(len(all)),
			NsPerOp:    float64(p99.Nanoseconds()),
			Metrics:    map[string]float64{"p99-ns": float64(p99.Nanoseconds())},
		},
	}
}

// verdict prints the cluster chronology and returns false when the
// soak violated an invariant: an untyped kill-stream error, a failed
// restart, or a recovered panic on any surviving node.
func (ch *clusterHarness) verdict(ctx context.Context) bool {
	ch.mu.Lock()
	kills, restarts := ch.kills, ch.restarts
	killTyped, killUntyped := ch.killTyped, ch.killUntyped
	killErrs := append([]string(nil), ch.killErrs...)
	restartErr, warmErr := ch.restartErr, ch.warmErr
	warmEntries, warmFrom := ch.warmEntries, ch.warmFrom
	ch.mu.Unlock()

	st := ch.statusSum()
	fmt.Fprintf(os.Stderr,
		"xbarload: cluster: %d kill(s) %d restart(s), victim stream %d typed / %d untyped; forwards %d (failovers %d), fills %d hit / %d miss, local degrades %d\n",
		kills, restarts, killTyped, killUntyped,
		st.Forwards, st.Failovers, st.PeerFillHits, st.PeerFillMisses, st.LocalDegrades)
	ok := true
	if killUntyped > 0 {
		for _, e := range killErrs {
			fmt.Fprintf(os.Stderr, "xbarload: cluster: UNTYPED kill-stream error: %s\n", e)
		}
		ok = false
	}
	if restartErr != "" {
		fmt.Fprintf(os.Stderr, "xbarload: cluster: restart failed: %s\n", restartErr)
		ok = false
	} else if warmErr != "" {
		fmt.Fprintf(os.Stderr, "xbarload: cluster: warm start degraded (cold restart): %s\n", warmErr)
	} else if restarts > 0 {
		fmt.Fprintf(os.Stderr, "xbarload: cluster: %s warm-started with %d entries from %s\n",
			clusterVictim, warmEntries, warmFrom)
	}
	if panics, err := ch.panicsObserved(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "xbarload: cluster:", err)
		ok = false
	} else if panics > 0 {
		fmt.Fprintf(os.Stderr, "xbarload: cluster: %d recovered panic(s) across surviving nodes\n", panics)
		ok = false
	}
	return ok
}

// close drains every surviving node gracefully: Leave first so peers
// probing the drain see an intentional departure, then shut down.
func (ch *clusterHarness) close() {
	ch.mu.Lock()
	members := make([]*clusterMember, 0, len(ch.members))
	for _, m := range ch.members {
		members = append(members, m)
	}
	ch.members = make(map[string]*clusterMember)
	ch.mu.Unlock()
	for _, m := range members {
		m.node.Leave()
		m.cancel()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		m.srv.Shutdown(ctx)
		cancel()
		m.eng.Close()
	}
}
