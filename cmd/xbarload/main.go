// Command xbarload is the load-generation and soak driver for the
// nanoxbar serving stack. It replays a configurable scenario mix —
// cached synthesis lookups, per-chip mapping, streaming yield sweeps,
// and mid-stream cancellations — through the public HTTP client
// (pkg/nanoxbar/client) against either a running xbarserverd or an
// in-process server it starts itself, with function popularity drawn
// from a zipf distribution so the cache sees a realistic hot set.
//
// It emits latency percentiles per scenario plus the server's cache
// hit-rate delta as a JSON report in the internal/benchreport schema,
// so the same tooling that reads BENCH_lattice.json (cmd/benchjson
// -compare) reads soak results. The server's GET /metrics endpoint is
// scraped before and after the soak; the bucket deltas yield
// server-side per-kind and per-stage latency quantiles (the
// Soak/server pseudo-benchmark), measured without client and network
// overhead.
//
// Usage:
//
//	xbarload [-addr http://host:8080] [-duration 30s] [-concurrency 8]
//	         [-seed 1] [-mix synthesize=3,map=5,yield=1,cancel=1]
//	         [-funcs 48] [-zipf-s 1.3] [-chips 12] [-density 0.04]
//	         [-max-attempts 50] [-out -]
//
// -mix also accepts a built-in preset name: "default" (the cache-heavy
// mix above) or "yield-heavy" (mostly streaming yield sweeps — the
// fault-tolerance hot path). Yield sweeps additionally report per-die
// map latency percentiles and mean self-mapping attempts per die in the
// JSON output (the Soak/die pseudo-benchmark).
//
// With no -addr it boots a private in-process server (sized by -workers
// and -cache) on a loopback port, which is what the CI soak smoke uses:
//
//	go run -race ./cmd/xbarload -duration 5s -seed 1 -out soak.json
//
// -chaos turns the soak into a resilience test: the client's transport
// injects seeded faults (dropped connections, 5xx bursts, latency
// spikes, truncated NDJSON frames) and the client runs with retries and
// a circuit breaker enabled. Failures that surface typed — overloaded,
// unavailable, canceled, or a chaos-synthesized 500 — are expected and
// counted (the Soak/chaos pseudo-benchmark); anything untyped, and any
// server panic observed in /metrics, fails the run. Against the
// in-process server the injected-fault and client retry/breaker
// counters are bridged into GET /metrics.
//
// -cluster N (N >= 2) boots an in-process N-node cluster —
// consistent-hash routing, failure detection, peer cache-fill — and
// soaks it through node n0 while the harness kills node n1 abruptly in
// the middle of a streaming yield sweep, then restarts it on the same
// port under load and warm-starts its cache from a peer snapshot.
// Inter-node traffic runs through a seeded chaos transport to model
// partitions. The run fails on any untyped client error (including the
// kill-victim stream's), a failed restart, or a recovered panic in any
// surviving node's /metrics; routing counters and latency quantiles
// are emitted as the Soak/cluster and Soak/cluster/p99
// pseudo-benchmarks:
//
//	go run -race ./cmd/xbarload -cluster 3 -duration 5s -seed 1 -out soak_cluster.json
//
// Exit status 1 when any request fails unexpectedly (cancellations the
// driver itself issued are expected; unsuccessful-but-valid mapping
// outcomes are results, not failures; typed chaos failures under
// -chaos or -cluster likewise).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"nanoxbar/internal/benchreport"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/httpapi"
	"nanoxbar/internal/resilience"
	"nanoxbar/internal/telemetry"
	"nanoxbar/pkg/nanoxbar"
	nbclient "nanoxbar/pkg/nanoxbar/client"
)

// scenario names, in report order.
const (
	scSynthesize = "synthesize"
	scMap        = "map"
	scYield      = "yield"
	scCancel     = "cancel" // yield sweep canceled mid-stream
)

var scenarioOrder = []string{scSynthesize, scMap, scYield, scCancel}

// mixPresets are built-in scenario mixes selectable by passing their
// name as -mix.
var mixPresets = map[string]string{
	// default leans on the synthesis cache and per-chip mapping.
	"default": "synthesize=3,map=5,yield=1,cancel=1",
	// yield-heavy drives the fault-tolerance path: most operations are
	// streaming yield sweeps, each fanning dies across the server's
	// workers.
	"yield-heavy": "synthesize=1,map=2,yield=6,cancel=1",
}

func main() {
	addr := flag.String("addr", "", "server base URL; empty starts an in-process server")
	duration := flag.Duration("duration", 30*time.Second, "soak duration")
	concurrency := flag.Int("concurrency", 8, "concurrent client streams")
	seed := flag.Int64("seed", 1, "root seed for scenario and function draws")
	mixSpec := flag.String("mix", "default", "scenario weights (name=weight,...) or a preset name (default|yield-heavy)")
	funcs := flag.Int("funcs", 48, "distinct functions in the popularity pool")
	zipfS := flag.Float64("zipf-s", 1.3, "zipf exponent for function popularity (<=1 = uniform)")
	chips := flag.Int("chips", 12, "dies per yield sweep")
	density := flag.Float64("density", 0.04, "crosspoint defect density")
	maxAttempts := flag.Int("max-attempts", 50, "self-mapping attempt budget per chip")
	out := flag.String("out", "-", "report path (- for stdout)")
	workers := flag.Int("workers", 0, "in-process server worker pool size (0 = NumCPU)")
	cacheSize := flag.Int("cache", 1024, "in-process server cache entries")
	chaos := flag.Bool("chaos", false, "inject seeded transport faults and assert every failure is typed")
	clusterN := flag.Int("cluster", 0, "boot an N-node in-process cluster (N >= 2) with kill/restart chaos; incompatible with -addr and -chaos")
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbarload:", err)
		os.Exit(2)
	}
	if *funcs < 1 {
		fmt.Fprintln(os.Stderr, "xbarload: -funcs must be >= 1")
		os.Exit(2)
	}
	if *concurrency < 1 || *chips < 1 {
		fmt.Fprintln(os.Stderr, "xbarload: -concurrency and -chips must be >= 1")
		os.Exit(2)
	}
	if *clusterN != 0 && *clusterN < 2 {
		fmt.Fprintln(os.Stderr, "xbarload: -cluster needs at least 2 nodes")
		os.Exit(2)
	}
	if *clusterN > 0 && (*addr != "" || *chaos) {
		fmt.Fprintln(os.Stderr, "xbarload: -cluster is incompatible with -addr and -chaos")
		os.Exit(2)
	}

	base := *addr
	var inproc *inprocServer
	var clus *clusterHarness
	if *clusterN > 0 {
		c, err := startClusterHarness(*clusterN, *workers, *cacheSize, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbarload:", err)
			os.Exit(1)
		}
		defer c.close()
		clus = c
		base = c.peers["n0"]
		fmt.Fprintf(os.Stderr, "xbarload: %d-node in-process cluster, client at %s\n", *clusterN, base)
	} else if base == "" {
		srv, err := startInProcessServer(*workers, *cacheSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbarload:", err)
			os.Exit(1)
		}
		defer srv.close()
		inproc = srv
		base = srv.url
		fmt.Fprintf(os.Stderr, "xbarload: in-process server at %s\n", base)
	}

	// Under -chaos the client speaks through a fault-injecting transport
	// and defends itself with the stock retry/breaker configuration —
	// the point of the soak is that this combination never produces an
	// untyped failure.
	var chaosT *resilience.ChaosTransport
	var clOpts []nbclient.Option
	if *chaos {
		chaosT = resilience.NewChaosTransport(nil, resilience.ChaosConfig{
			Seed:         *seed,
			DropRate:     0.03,
			ErrorRate:    0.05,
			LatencyRate:  0.05,
			LatencyMin:   time.Millisecond,
			LatencyMax:   5 * time.Millisecond,
			TruncateRate: 0.02,
		})
		clOpts = append(clOpts,
			nbclient.WithHTTPClient(&http.Client{Transport: chaosT}),
			// Six attempts outlast the longest 5xx burst (three
			// responses) with room for an adjacent drop, so the control
			// calls bracketing the soak (Stats, /metrics) survive chaos.
			nbclient.WithResilience(nbclient.ResilienceConfig{
				Seed:  *seed,
				Retry: resilience.RetryPolicy{MaxAttempts: 6},
			}))
	}
	cl := nbclient.New(base, clOpts...)
	defer cl.Close()
	if *chaos && inproc != nil {
		bridgeChaosMetrics(inproc.eng.Registry(), chaosT, cl)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := soakConfig{
		baseURL:     base,
		duration:    *duration,
		concurrency: *concurrency,
		seed:        *seed,
		mix:         mix,
		funcs:       *funcs,
		zipfS:       *zipfS,
		chips:       *chips,
		density:     *density,
		maxAttempts: *maxAttempts,
		chaos:       *chaos,
		cluster:     clus != nil,
	}
	// The kill/restart schedule runs beside the soak workers, against
	// the same wall clock, so the kill lands mid-soak and the restart
	// happens under load.
	var chaosWG sync.WaitGroup
	if clus != nil {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			clus.runChaos(ctx, cfg)
		}()
	}
	res, err := soak(ctx, cl, cfg)
	chaosWG.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbarload:", err)
		os.Exit(1)
	}

	rep := res.report(*duration)
	if *chaos {
		rep.Benchmarks = append(rep.Benchmarks, chaosBenchmark(chaosT, cl, res))
	}
	if clus != nil {
		rep.Benchmarks = append(rep.Benchmarks, clus.benchmarks(res, *duration)...)
	}
	if rep.Notes["metrics_scrape"] != "" {
		fmt.Fprintln(os.Stderr, "xbarload: warning: /metrics scrape skipped; report carries notes.metrics_scrape and no server-side quantiles")
	}
	if err := benchreport.WriteFile(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "xbarload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "xbarload: %d ops (%d failed, %d typed-chaos, %d cancel-scenario), cache hit rate %.3f\n",
		res.totalOps(), res.failures(), res.chaosTypedTotal(), res.counts[scCancel], res.hitRate)
	if *chaos {
		if panics, ok := serverPanics(res.metricsAfter); !ok {
			fmt.Fprintln(os.Stderr, "xbarload: chaos: could not read the server panic counter from /metrics")
			os.Exit(1)
		} else if panics > 0 {
			fmt.Fprintf(os.Stderr, "xbarload: chaos: server recovered %d panic(s) during the soak\n", int(panics))
			os.Exit(1)
		}
	}
	clusterOK := true
	if clus != nil {
		vctx, vcancel := context.WithTimeout(context.Background(), 10*time.Second)
		clusterOK = clus.verdict(vctx)
		vcancel()
	}
	if res.failures() > 0 || !clusterOK {
		os.Exit(1)
	}
}

// expectedChaosFailure reports whether an op error is an acceptable
// outcome under fault injection: a typed shed/unavailability/
// cancellation, or the internal error decoded from a chaos-synthesized
// 500 (recognizable by its message). Anything else is a real bug — an
// untyped error leaking through the taxonomy.
func expectedChaosFailure(err error) bool {
	if errors.Is(err, nanoxbar.ErrOverloaded) ||
		errors.Is(err, nanoxbar.ErrUnavailable) ||
		errors.Is(err, nanoxbar.ErrCanceled) {
		return true
	}
	return errors.Is(err, nanoxbar.ErrInternal) && strings.Contains(err.Error(), "chaos: injected")
}

// Metric family names the chaos soak bridges into the in-process
// server's registry.
const (
	metricChaosFaults          = "nanoxbar_chaos_faults_total"
	metricClientRetries        = "nanoxbar_client_retries_total"
	metricClientRetryExhausted = "nanoxbar_client_retry_exhausted_total"
	metricClientBreakerOpens   = "nanoxbar_client_breaker_opens_total"
)

// bridgeChaosMetrics exposes the chaos transport's injected-fault
// counters and the client's retry/breaker counters through the
// in-process server's registry, so the soak's /metrics scrapes (and a
// human watching the endpoint) see the failure plumbing working.
func bridgeChaosMetrics(reg *telemetry.Registry, ct *resilience.ChaosTransport, cl *nbclient.Client) {
	faults := map[string]func(resilience.ChaosStats) uint64{
		"drop":     func(s resilience.ChaosStats) uint64 { return s.Drops },
		"error5xx": func(s resilience.ChaosStats) uint64 { return s.Errors5xx },
		"latency":  func(s resilience.ChaosStats) uint64 { return s.Latencies },
		"truncate": func(s resilience.ChaosStats) uint64 { return s.Truncations },
	}
	for fault, get := range faults {
		get := get
		reg.CounterFunc(metricChaosFaults,
			"Faults injected by the xbarload chaos transport.",
			func() float64 { return float64(get(ct.Stats())) }, "fault", fault)
	}
	stats := func() (nbclient.ResilienceStats, bool) { return cl.ResilienceStats() }
	reg.CounterFunc(metricClientRetries,
		"Retries the soak client issued against injected faults.",
		func() float64 {
			st, _ := stats()
			return float64(st.Retry.Retries)
		})
	reg.CounterFunc(metricClientRetryExhausted,
		"Soak client calls that failed after exhausting their retry budget.",
		func() float64 {
			st, _ := stats()
			return float64(st.Retry.Exhausted)
		})
	reg.CounterFunc(metricClientBreakerOpens,
		"Circuit-breaker open transitions across the soak client's endpoints.",
		func() float64 {
			st, _ := stats()
			var n uint64
			for _, b := range st.Breakers {
				n += b.Opens
			}
			return float64(n)
		})
}

// chaosBenchmark shapes the chaos soak's fault and resilience counters
// as a pseudo-benchmark so soak reports diff cleanly across runs.
func chaosBenchmark(ct *resilience.ChaosTransport, cl *nbclient.Client, res *soakResult) benchreport.Benchmark {
	cs := ct.Stats()
	m := map[string]float64{
		"requests":       float64(cs.Requests),
		"drops":          float64(cs.Drops),
		"errors-5xx":     float64(cs.Errors5xx),
		"latency-spikes": float64(cs.Latencies),
		"truncations":    float64(cs.Truncations),
		"typed-failures": float64(res.chaosTypedTotal()),
	}
	if st, ok := cl.ResilienceStats(); ok {
		m["retries"] = float64(st.Retry.Retries)
		m["retry-exhausted"] = float64(st.Retry.Exhausted)
		var opens, rejections uint64
		for _, b := range st.Breakers {
			opens += b.Opens
			rejections += b.Rejections
		}
		m["breaker-opens"] = float64(opens)
		m["breaker-rejections"] = float64(rejections)
	}
	return benchreport.Benchmark{
		Pkg:        "nanoxbar/cmd/xbarload",
		Name:       "Soak/chaos",
		Iterations: 1,
		Metrics:    m,
	}
}

// serverPanics reads the recovered-panic counter from the closing
// /metrics scrape; ok is false when the scrape or series is missing.
func serverPanics(exp *telemetry.Exposition) (float64, bool) {
	if exp == nil {
		return 0, false
	}
	return exp.Value("nanoxbar_http_panics_total", nil)
}

// inprocServer is the self-hosted serving stack for -addr "".
type inprocServer struct {
	eng *engine.Engine
	srv *http.Server
	url string
}

func startInProcessServer(workers, cacheSize int) (*inprocServer, error) {
	eng := engine.New(engine.Config{Workers: workers, CacheSize: cacheSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		return nil, err
	}
	srv := &http.Server{Handler: httpapi.New(eng)}
	go srv.Serve(ln)
	return &inprocServer{eng: eng, srv: srv, url: "http://" + ln.Addr().String()}, nil
}

func (s *inprocServer) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.srv.Shutdown(ctx)
	s.eng.Close()
}

// parseMix reads "name=weight,..." into per-scenario weights; a bare
// preset name expands to its built-in weights first.
func parseMix(spec string) (map[string]int, error) {
	if preset, ok := mixPresets[spec]; ok {
		spec = preset
	}
	mix := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix element %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		known := false
		for _, s := range scenarioOrder {
			known = known || name == s
		}
		if !known {
			return nil, fmt.Errorf("unknown scenario %q (want %s)", name, strings.Join(scenarioOrder, "|"))
		}
		mix[name] = w
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return mix, nil
}

// functionPool builds the popularity-ranked function set: a core of
// named benchmark functions, padded with seeded random 3- and 4-input
// truth tables. Index 0 is the most popular under zipf.
func functionPool(n int, rng *rand.Rand) []nanoxbar.FunctionSpec {
	named := []string{"xnor2", "maj3", "fig4", "xor4", "mux2", "cmp2", "add2_s0", "rd5_s1"}
	pool := make([]nanoxbar.FunctionSpec, 0, n)
	for _, name := range named {
		if len(pool) == n {
			break
		}
		pool = append(pool, nanoxbar.Func(name))
	}
	for len(pool) < n {
		if len(pool)%2 == 0 {
			pool = append(pool, nanoxbar.TT(fmt.Sprintf("3:0x%02x", rng.Intn(0x100))))
		} else {
			pool = append(pool, nanoxbar.TT(fmt.Sprintf("4:0x%04x", rng.Intn(0x10000))))
		}
	}
	return pool
}

type soakConfig struct {
	baseURL     string
	duration    time.Duration
	concurrency int
	seed        int64
	mix         map[string]int
	funcs       int
	zipfS       float64
	chips       int
	density     float64
	maxAttempts int
	chaos       bool
	// cluster marks the N-node soak: typed failures are expected
	// casualties of the kill/restart schedule and inter-node chaos,
	// exactly as under -chaos.
	cluster bool
}

// soakResult aggregates per-scenario latencies and outcome counters.
type soakResult struct {
	mu        sync.Mutex
	latencies map[string][]time.Duration
	counts    map[string]int // completed ops per scenario
	failed    map[string]int // unexpected errors per scenario
	// chaosTyped counts ops that failed typed under -chaos — expected
	// casualties of fault injection, not failures.
	chaosTyped map[string]int

	// Per-die observations from completed yield sweeps: the client-side
	// inter-arrival latency of streamed die events (gaps between
	// consecutive events; one fewer than dies per sweep) and the
	// self-mapping attempts each die reported.
	dieLats     []time.Duration
	dieAttempts int64
	dieEvents   int64

	statsBefore, statsAfter nanoxbar.Stats
	hitRate                 float64

	// Scrapes of the server's /metrics endpoint bracketing the soak;
	// nil when the endpoint is unavailable (older server). The report
	// derives server-side latency quantiles from their bucket deltas.
	metricsBefore, metricsAfter *telemetry.Exposition
}

func (r *soakResult) record(scenario string, d time.Duration, failed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.latencies[scenario] = append(r.latencies[scenario], d)
	r.counts[scenario]++
	if failed {
		r.failed[scenario]++
	}
}

func (r *soakResult) recordChaosTyped(scenario string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.chaosTyped[scenario]++
}

func (r *soakResult) chaosTypedTotal() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.chaosTyped {
		n += c
	}
	return n
}

func (r *soakResult) recordDies(lats []time.Duration, attempts, dies int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dieLats = append(r.dieLats, lats...)
	r.dieAttempts += attempts
	r.dieEvents += dies
}

func (r *soakResult) totalOps() int {
	n := 0
	for _, c := range r.counts {
		n += c
	}
	return n
}

func (r *soakResult) failures() int {
	n := 0
	for _, c := range r.failed {
		n += c
	}
	return n
}

// soak runs the workload until the duration elapses or ctx is canceled.
func soak(ctx context.Context, cl *nbclient.Client, cfg soakConfig) (*soakResult, error) {
	res := &soakResult{
		latencies:  make(map[string][]time.Duration),
		counts:     make(map[string]int),
		failed:     make(map[string]int),
		chaosTyped: make(map[string]int),
	}
	var err error
	if res.statsBefore, err = cl.Stats(ctx); err != nil {
		return nil, fmt.Errorf("server not reachable: %w", err)
	}
	res.metricsBefore = scrapeMetrics(ctx, cfg.baseURL)

	pool := functionPool(cfg.funcs, rand.New(rand.NewSource(cfg.seed)))
	// Scenario schedule: expand the weighted mix into a deck each worker
	// walks at a seeded random offset.
	var deck []string
	for _, s := range scenarioOrder {
		for i := 0; i < cfg.mix[s]; i++ {
			deck = append(deck, s)
		}
	}

	deadline, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// splitmix64-style increment keeps worker streams decorrelated.
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*-0x61c8864680b583eb))
			var zipf *rand.Zipf
			if cfg.zipfS > 1 {
				zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(len(pool)-1))
			}
			for op := 0; ; op++ {
				if deadline.Err() != nil {
					return
				}
				fi := 0
				if zipf != nil {
					fi = int(zipf.Uint64())
				} else {
					fi = rng.Intn(len(pool))
				}
				scenario := deck[rng.Intn(len(deck))]
				start := time.Now()
				opErr := runOp(deadline, cl, cfg, scenario, pool[fi], rng.Int63(), res)
				elapsed := time.Since(start)
				if deadline.Err() != nil && errors.Is(opErr, nanoxbar.ErrCanceled) {
					// The soak window closed mid-call; not a data point.
					return
				}
				failed := opErr != nil
				if failed && (cfg.chaos || cfg.cluster) && expectedChaosFailure(opErr) {
					// An injected fault surfaced typed — the contract the
					// chaos soak exists to check. Counted, not failed.
					failed = false
					res.recordChaosTyped(scenario)
				}
				res.record(scenario, elapsed, failed)
				if failed {
					fmt.Fprintf(os.Stderr, "xbarload: worker %d op %d (%s): %v\n", w, op, scenario, opErr)
				}
			}
		}(w)
	}
	wg.Wait()

	// The soak context is spent; read closing stats on a fresh one.
	statsCtx, cancelStats := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelStats()
	if res.statsAfter, err = cl.Stats(statsCtx); err != nil {
		return nil, fmt.Errorf("closing stats: %w", err)
	}
	res.metricsAfter = scrapeMetrics(statsCtx, cfg.baseURL)
	dh := res.statsAfter.CacheHits - res.statsBefore.CacheHits
	dm := res.statsAfter.CacheMisses - res.statsBefore.CacheMisses
	if dh+dm > 0 {
		res.hitRate = float64(dh) / float64(dh+dm)
	}
	return res, nil
}

// scrapeMetrics fetches and parses the server's /metrics exposition.
// Any failure (endpoint missing on an older server, parse error) is
// reported on stderr and degrades the report to client-side numbers
// only — a soak must not fail for lack of server telemetry.
func scrapeMetrics(ctx context.Context, base string) *telemetry.Exposition {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbarload: metrics scrape:", err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "xbarload: metrics scrape: status %d (server-side quantiles omitted)\n", resp.StatusCode)
		return nil
	}
	exp, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbarload: metrics scrape:", err)
		return nil
	}
	return exp
}

// runOp executes one scenario call, reporting per-die observations of
// yield sweeps into res. The returned error is nil for expected
// outcomes, including the cancel scenario's own cancellation.
func runOp(ctx context.Context, cl *nbclient.Client, cfg soakConfig, scenario string, f nanoxbar.FunctionSpec, seed int64, res *soakResult) error {
	switch scenario {
	case scSynthesize:
		_, err := cl.Synthesize(ctx, f)
		return err
	case scMap:
		out, err := cl.Map(ctx, f,
			nanoxbar.WithSeed(seed),
			nanoxbar.WithDensity(cfg.density),
			nanoxbar.WithMaxAttempts(cfg.maxAttempts))
		if err != nil {
			return err
		}
		_ = out.Success // an unrecoverable die is a result, not a failure
		return nil
	case scYield:
		// Dies stream in completion order; the gap between consecutive
		// die events is the per-die map latency as the client observes
		// it. The first event is excluded — its gap would measure
		// request setup and any synthesis-cache miss, not a die.
		var last time.Time
		lats := make([]time.Duration, 0, cfg.chips)
		var attempts, dies int64
		_, err := cl.YieldSweep(ctx, f,
			nanoxbar.WithSeed(seed),
			nanoxbar.WithDensity(cfg.density),
			nanoxbar.WithChips(cfg.chips),
			nanoxbar.WithMaxAttempts(cfg.maxAttempts),
			nanoxbar.OnDie(func(d nanoxbar.Die) {
				now := time.Now()
				if !last.IsZero() {
					lats = append(lats, now.Sub(last))
				}
				last = now
				dies++
				if d.Map != nil {
					attempts += int64(d.Map.Configs)
				}
			}))
		if err == nil {
			res.recordDies(lats, attempts, dies)
		}
		return err
	case scCancel:
		// Stream a sweep and hang up partway through: the concurrent-
		// streams-with-cancel path the v2 protocol must survive.
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		stopAfter := cfg.chips / 2
		if stopAfter < 1 {
			stopAfter = 1
		}
		seen := 0
		_, err := cl.YieldSweep(cctx, f,
			nanoxbar.WithSeed(seed),
			nanoxbar.WithDensity(cfg.density),
			nanoxbar.WithChips(2*cfg.chips),
			nanoxbar.WithMaxAttempts(cfg.maxAttempts),
			nanoxbar.OnDie(func(nanoxbar.Die) {
				if seen++; seen >= stopAfter {
					cancel()
				}
			}))
		if err == nil || errors.Is(err, nanoxbar.ErrCanceled) {
			return nil // finished fast or canceled as intended
		}
		return err
	}
	return fmt.Errorf("unknown scenario %q", scenario)
}

// percentile returns the p-th percentile (0..1) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// report shapes the soak outcome as a benchreport document: one
// benchmark per scenario (mean ns/op, percentile metrics), plus a
// pseudo-benchmark carrying the cache hit-rate delta.
func (r *soakResult) report(duration time.Duration) benchreport.Report {
	rep := benchreport.Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchtime:   duration.String(),
	}
	for _, s := range scenarioOrder {
		lats := r.latencies[s]
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		rep.Benchmarks = append(rep.Benchmarks, benchreport.Benchmark{
			Pkg:        "nanoxbar/cmd/xbarload",
			Name:       "Soak/" + s,
			Iterations: int64(len(lats)),
			NsPerOp:    float64(sum.Nanoseconds()) / float64(len(lats)),
			Metrics: map[string]float64{
				"p50-ns":  float64(percentile(lats, 0.50).Nanoseconds()),
				"p90-ns":  float64(percentile(lats, 0.90).Nanoseconds()),
				"p99-ns":  float64(percentile(lats, 0.99).Nanoseconds()),
				"max-ns":  float64(lats[len(lats)-1].Nanoseconds()),
				"errors":  float64(r.failed[s]),
				"ops/sec": float64(len(lats)) / duration.Seconds(),
			},
		})
	}
	if len(r.dieLats) > 0 {
		lats := r.dieLats
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		rep.Benchmarks = append(rep.Benchmarks, benchreport.Benchmark{
			Pkg:        "nanoxbar/cmd/xbarload",
			Name:       "Soak/die",
			Iterations: int64(len(lats)),
			NsPerOp:    float64(sum.Nanoseconds()) / float64(len(lats)),
			Metrics: map[string]float64{
				"p50-ns":           float64(percentile(lats, 0.50).Nanoseconds()),
				"p99-ns":           float64(percentile(lats, 0.99).Nanoseconds()),
				"attempts-per-die": float64(r.dieAttempts) / float64(r.dieEvents),
				"dies":             float64(r.dieEvents),
				"dies/sec":         float64(r.dieEvents) / duration.Seconds(),
			},
		})
	}
	if r.metricsBefore == nil || r.metricsAfter == nil {
		// The missing Soak/server block must read as "no data", not
		// "zero delta" — downstream tooling keys on this note.
		rep.Notes = map[string]string{"metrics_scrape": "skipped"}
	}
	if sm := r.serverMetrics(); len(sm) > 0 {
		rep.Benchmarks = append(rep.Benchmarks, benchreport.Benchmark{
			Pkg:        "nanoxbar/cmd/xbarload",
			Name:       "Soak/server",
			Iterations: 1,
			Metrics:    sm,
		})
	}
	rep.Benchmarks = append(rep.Benchmarks, benchreport.Benchmark{
		Pkg:        "nanoxbar/cmd/xbarload",
		Name:       "Soak/cache",
		Iterations: 1,
		Metrics: map[string]float64{
			"hit-rate":    r.hitRate,
			"hits":        float64(r.statsAfter.CacheHits - r.statsBefore.CacheHits),
			"misses":      float64(r.statsAfter.CacheMisses - r.statsBefore.CacheMisses),
			"entries":     float64(r.statsAfter.CacheEntries),
			"shards":      float64(r.statsAfter.CacheShards),
			"loaded":      float64(r.statsAfter.CacheLoaded),
			"synth-calls": float64(r.statsAfter.SynthCalls - r.statsBefore.SynthCalls),
		},
	})
	return rep
}

// serverMetrics derives server-side latency quantiles from the
// /metrics scrapes bracketing the soak: per-kind request duration and
// pipeline stage histograms, subtracted bucket-wise so only the soak's
// own observations contribute. Empty when scraping was unavailable.
func (r *soakResult) serverMetrics() map[string]float64 {
	if r.metricsBefore == nil || r.metricsAfter == nil {
		return nil
	}
	m := make(map[string]float64)
	delta := func(name string, labels map[string]string) *telemetry.HistogramSnapshot {
		after, ok := r.metricsAfter.Histogram(name, labels)
		if !ok {
			return nil
		}
		before, _ := r.metricsBefore.Histogram(name, labels)
		d, ok := after.Sub(before)
		if !ok || d.Count == 0 {
			return nil
		}
		return d
	}
	quantiles := func(prefix string, d *telemetry.HistogramSnapshot) {
		m[prefix+"-p50-ns"] = d.Quantile(0.50) * 1e9
		m[prefix+"-p99-ns"] = d.Quantile(0.99) * 1e9
		m[prefix+"-count"] = float64(d.Count)
	}
	for _, kind := range []string{"synthesize", "map", "yield"} {
		if d := delta("nanoxbar_request_duration_seconds", map[string]string{"kind": kind}); d != nil {
			quantiles(kind, d)
		}
	}
	for _, stage := range []string{"queue_wait", "cache_lookup", "die_map"} {
		if d := delta("nanoxbar_stage_duration_seconds", map[string]string{"stage": stage}); d != nil {
			quantiles(strings.ReplaceAll(stage, "_", "-"), d)
		}
	}
	return m
}
