// Command xbarsize prints the crossbar array sizes — diode, FET
// (Fig. 3) and four-terminal lattice (Fig. 5) — for a Boolean function
// or for the whole benchmark suite.
//
// Usage:
//
//	xbarsize -f "x1x2 + x1'x2'"
//	xbarsize -suite
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/bexpr"
	"nanoxbar/internal/core"
)

func main() {
	expr := flag.String("f", "", "Boolean expression")
	suite := flag.Bool("suite", false, "run the whole benchmark suite")
	flag.Parse()

	opts := core.DefaultOptions()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tn\tdiode\tFET\tlattice\tmethod\twinner")
	defer tw.Flush()

	run := func(name string, spec benchfn.Spec) error {
		cmp, err := core.CompareTechnologies(spec.F, opts)
		if err != nil {
			return err
		}
		winner := "lattice"
		if cmp.Lattice.Area() > cmp.Diode.Area() || cmp.Lattice.Area() > cmp.FET.Area() {
			winner = "two-terminal"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d×%d\t%d×%d\t%d×%d\t%s\t%s\n",
			name, spec.N(),
			cmp.Diode.Rows, cmp.Diode.Cols,
			cmp.FET.Rows, cmp.FET.Cols,
			cmp.Lattice.Rows, cmp.Lattice.Cols,
			cmp.Lattice.Method, winner)
		return nil
	}

	switch {
	case *suite:
		for _, s := range benchfn.Suite() {
			if err := run(s.Name, s); err != nil {
				fmt.Fprintln(os.Stderr, "xbarsize:", s.Name, err)
			}
		}
	case *expr != "":
		f, _, err := bexpr.ParseTT(*expr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbarsize:", err)
			os.Exit(1)
		}
		if err := run("f", benchfn.Spec{Name: "f", Description: *expr, F: f}); err != nil {
			fmt.Fprintln(os.Stderr, "xbarsize:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: xbarsize -f \"expr\" | -suite")
		os.Exit(2)
	}
}
