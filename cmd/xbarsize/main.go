// Command xbarsize prints the crossbar array sizes — diode, FET
// (Fig. 3) and four-terminal lattice (Fig. 5) — for a Boolean function
// or for the whole benchmark suite. It runs on the public SDK
// (pkg/nanoxbar): one in-process client whose synthesis cache is shared
// across the suite sweep.
//
// Usage:
//
//	xbarsize -f "x1x2 + x1'x2'"
//	xbarsize -suite
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"nanoxbar/pkg/nanoxbar"
)

func main() {
	expr := flag.String("f", "", "Boolean expression")
	suite := flag.Bool("suite", false, "run the whole benchmark suite")
	flag.Parse()

	cl := nanoxbar.NewClient(nanoxbar.ClientConfig{})
	defer cl.Close()
	ctx := context.Background()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tn\tdiode\tFET\tlattice\tmethod\twinner")
	defer tw.Flush()

	run := func(name string, n int, f nanoxbar.FunctionSpec) error {
		cmp, err := cl.Compare(ctx, f)
		if err != nil {
			return err
		}
		winner := "lattice"
		if cmp.Lattice.Area > cmp.Diode.Area || cmp.Lattice.Area > cmp.FET.Area {
			winner = "two-terminal"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d×%d\t%d×%d\t%d×%d\t%s\t%s\n",
			name, n,
			cmp.Diode.Rows, cmp.Diode.Cols,
			cmp.FET.Rows, cmp.FET.Cols,
			cmp.Lattice.Rows, cmp.Lattice.Cols,
			cmp.Lattice.Method, winner)
		return nil
	}

	switch {
	case *suite:
		for _, s := range nanoxbar.BenchSuite() {
			if err := run(s.Name, s.N(), nanoxbar.Func(s.Name)); err != nil {
				fmt.Fprintln(os.Stderr, "xbarsize:", s.Name, err)
			}
		}
	case *expr != "":
		_, n, err := nanoxbar.ParseExpr(*expr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbarsize:", err)
			os.Exit(1)
		}
		if err := run("f", n, nanoxbar.Expr(*expr)); err != nil {
			fmt.Fprintln(os.Stderr, "xbarsize:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: xbarsize -f \"expr\" | -suite")
		os.Exit(2)
	}
}
