package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nanoxbar/internal/benchreport"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestEmitGolden locks the emit pipeline: raw `go test -bench` text in,
// benchreport JSON out. Volatile fields (timestamp, toolchain, host) are
// normalized before comparing against the golden file.
func TestEmitGolden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "raw_bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	rep := buildReport(string(raw), "0.5s")
	rep.GeneratedAt = "GENERATED_AT"
	rep.GoVersion = "GO_VERSION"
	rep.GOOS, rep.GOARCH = "GOOS", "GOARCH"
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "want_report.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("emitted report drifted from golden (run `go test ./cmd/benchjson -update` if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Sanity on the parsed content itself, independent of formatting.
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	sub := rep.Benchmarks[3]
	if sub.Name != "BenchmarkEngineCacheContention/single-lock" {
		t.Fatalf("sub-benchmark name %q lost its suite path", sub.Name)
	}
}

// capture runs runCompare with its output redirected to a temp file and
// returns (exit code, printed text).
func capture(t *testing.T, oldPath, newPath string, tol float64, allow string, only ...string) (int, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	onlyPat := ""
	if len(only) > 0 {
		onlyPat = only[0]
	}
	code := runCompare(f, oldPath, newPath, tol, allow, onlyPat)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(f.Name())
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out)
}

func td(name string) string { return filepath.Join("testdata", name) }

// TestCompareGateTripsOnRegression proves the CI gate fails a
// deliberately slowed benchmark: the fixture's BenchmarkSynthesizeCached
// is 6x the baseline.
func TestCompareGateTripsOnRegression(t *testing.T) {
	code, out := capture(t, td("baseline.json"), td("new_regressed.json"), 0.25, "")
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkSynthesizeCached") || !strings.Contains(out, "FAIL") {
		t.Fatalf("gate output lacks the offender:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkEval8x8") {
		t.Fatalf("unregressed benchmark reported as regression:\n%s", out)
	}
}

func TestCompareGatePassesWithinTolerance(t *testing.T) {
	// new_ok drifts the HTTP round trip +22%, inside the 25% tolerance.
	code, out := capture(t, td("baseline.json"), td("new_ok.json"), 0.25, "")
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "OK: 3 benchmarks compared") {
		t.Fatalf("gate output:\n%s", out)
	}
	// The same drift fails a tighter gate.
	if code, _ := capture(t, td("baseline.json"), td("new_ok.json"), 0.10, ""); code != 1 {
		t.Fatal("22% drift passed a 10% gate")
	}
}

func TestCompareGateAllowList(t *testing.T) {
	code, out := capture(t, td("baseline.json"), td("new_regressed.json"), 0.25, `engine\.BenchmarkSynthesizeCached`)
	if code != 0 {
		t.Fatalf("allow-listed regression still fails: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "allow-listed") {
		t.Fatalf("allowed exceedance not reported:\n%s", out)
	}
}

func TestCompareGateMissingBenchmark(t *testing.T) {
	// A new report that silently dropped a baseline benchmark fails.
	var rep benchreport.Report
	rep.Benchmarks = []benchreport.Benchmark{{Pkg: "nanoxbar/internal/lattice", Name: "BenchmarkEval8x8", Iterations: 1, NsPerOp: 2100}}
	raw, _ := json.Marshal(rep)
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := capture(t, td("baseline.json"), path, 0.25, "")
	if code != 1 || !strings.Contains(out, "MISSING") {
		t.Fatalf("missing benchmarks not failed: exit %d\n%s", code, out)
	}
}

func TestCompareGateBadInputs(t *testing.T) {
	if code, _ := capture(t, td("baseline.json"), "", 0.25, ""); code != 2 {
		t.Fatal("missing -against not a usage error")
	}
	if code, _ := capture(t, td("baseline.json"), td("nope.json"), 0.25, ""); code != 2 {
		t.Fatal("unreadable new report not a usage error")
	}
	if code, _ := capture(t, td("baseline.json"), td("new_ok.json"), 0.25, "["); code != 2 {
		t.Fatal("bad allow regex not a usage error")
	}
}

// TestCompareGateOnlyScopes: -only filters BOTH reports before the
// diff, so baseline blocks outside the scope are neither compared nor
// failed as missing — the mechanism that lets micro-bench and soak
// gates share one baseline file.
func TestCompareGateOnlyScopes(t *testing.T) {
	// A new report carrying just one of the baseline's three
	// benchmarks: unscoped it fails on the two missing ones, scoped to
	// that benchmark it passes.
	var rep benchreport.Report
	rep.Benchmarks = []benchreport.Benchmark{{Pkg: "nanoxbar/internal/lattice", Name: "BenchmarkEval8x8", Iterations: 1, NsPerOp: 2100}}
	raw, _ := json.Marshal(rep)
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := capture(t, td("baseline.json"), path, 0.25, ""); code != 1 {
		t.Fatalf("unscoped partial report passed: exit %d\n%s", code, out)
	}
	code, out := capture(t, td("baseline.json"), path, 0.25, "", `lattice\.BenchmarkEval8x8`)
	if code != 0 {
		t.Fatalf("scoped gate failed: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "OK: 1 benchmarks compared") {
		t.Fatalf("scoped gate output:\n%s", out)
	}
	if code, _ := capture(t, td("baseline.json"), path, 0.25, "", "["); code != 2 {
		t.Fatal("bad -only regex not a usage error")
	}
}
