// Command benchjson tracks the repository's performance trajectory. It
// has two modes:
//
// Emit (default): run the hot-path benchmark suites (lattice
// evaluation, lattice synthesis, QM minimization, serving engine, HTTP
// round trip) and write a machine-readable JSON report
// (internal/benchreport schema):
//
//	benchjson [-out BENCH_lattice.json] [-bench regex] [-benchtime 0.5s] [-pkgs p1,p2,...]
//
// Compare: diff a fresh report against a committed baseline and fail on
// hot-path regressions — the CI perf-regression gate:
//
//	benchjson -compare BENCH_lattice.json -against bench_ci.json \
//	          [-tolerance 0.25] [-allow 'regex over pkg.BenchmarkName'] \
//	          [-only 'regex over pkg.BenchmarkName']
//
// A benchmark regresses when its ns/op exceeds baseline×(1+tolerance);
// benchmarks matching -allow (noisy suites) are reported but never fail
// the gate, and baseline benchmarks missing from the new report fail it
// unless allow-listed. -only filters both reports to matching IDs
// before the diff, scoping the gate to the blocks a job regenerates
// (micro-benchmarks vs the xbarload Soak/* pseudo-benchmarks, which
// share BENCH_lattice.json as their baseline). Exit status 1 on a
// failed gate.
//
// CI emits with -benchtime 20ms (steady-state but fast; single-
// iteration -benchtime 1x timings are warmup-dominated and useless for
// a ns/op gate) and gates with a loose tolerance that absorbs
// cross-machine noise; release numbers are regenerated with the
// default benchtime and committed as BENCH_lattice.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strings"
	"time"

	"nanoxbar/internal/benchreport"
)

// defaultPkgs are the suites covering the synthesis/serving hot paths,
// including the client/server round trip through the v2 HTTP protocol
// (internal/httpapi) so serving overhead is tracked alongside raw
// engine numbers, the fault-tolerance path (defect-map generation,
// BISM repair, transient Monte Carlo) gated since the bit-parallel
// rewrite, and the telemetry substrate (histogram observation sits
// inside the per-die loop, so its cost is gated like any hot path).
const defaultPkgs = "./internal/lattice,./internal/latsynth,./internal/qm,./internal/engine,./internal/httpapi,./internal/defect,./internal/bism,./internal/redundancy,./internal/telemetry,./internal/yield"

func main() {
	out := flag.String("out", "BENCH_lattice.json", "output JSON path (- for stdout)")
	benchRe := flag.String("bench", ".", "benchmark name regex passed to go test -bench")
	benchtime := flag.String("benchtime", "0.5s", "go test -benchtime value")
	pkgs := flag.String("pkgs", defaultPkgs, "comma-separated packages to benchmark")
	compare := flag.String("compare", "", "baseline report path; switches to compare mode")
	against := flag.String("against", "", "new report path to gate against the baseline (compare mode)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed ns/op growth fraction before a regression fails the gate")
	allow := flag.String("allow", "", "regex over pkg.BenchmarkName; matches never fail the gate")
	only := flag.String("only", "", "regex over pkg.BenchmarkName; both reports are filtered to matches before comparing (compare mode)")
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(os.Stdout, *compare, *against, *tolerance, *allow, *only))
	}
	runEmit(*out, *benchRe, *benchtime, *pkgs)
}

// runCompare executes the perf-regression gate and returns the process
// exit code.
func runCompare(w *os.File, oldPath, newPath string, tolerance float64, allowPat, onlyPat string) int {
	if newPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -compare requires -against new.json")
		return 2
	}
	var allowRe *regexp.Regexp
	if allowPat != "" {
		var err error
		if allowRe, err = regexp.Compile(allowPat); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -allow regex:", err)
			return 2
		}
	}
	var onlyRe *regexp.Regexp
	if onlyPat != "" {
		var err error
		if onlyRe, err = regexp.Compile(onlyPat); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -only regex:", err)
			return 2
		}
	}
	old, err := benchreport.Load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	new, err := benchreport.Load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	// -only scopes the gate: the baseline may hold blocks this job does
	// not regenerate (micro-benchmarks vs Soak/* pseudo-benchmarks), and
	// an unscoped Compare would fail them as Missing.
	cmp := benchreport.Compare(old.Filter(onlyRe), new.Filter(onlyRe), tolerance, allowRe)
	fmt.Fprintf(w, "benchjson: %s (baseline) vs %s\n%s", oldPath, newPath, cmp.Format())
	if !cmp.OK() {
		return 1
	}
	return 0
}

// runEmit runs the benchmark suites and writes the report.
func runEmit(out, benchRe, benchtime, pkgs string) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem", "-benchtime", benchtime}
	args = append(args, strings.Split(pkgs, ",")...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n%s", strings.Join(args, " "), err, raw)
		os.Exit(1)
	}

	rep := buildReport(string(raw), benchtime)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines in go test output:\n%s", raw)
		os.Exit(1)
	}
	if err := benchreport.WriteFile(out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if out != "-" {
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), out)
	}
}

// buildReport wraps the parsed `go test -bench` output in a stamped
// report.
func buildReport(raw, benchtime string) benchreport.Report {
	rep := benchreport.Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchtime:   benchtime,
	}
	benchreport.ParseGoBench(raw, &rep)
	return rep
}
