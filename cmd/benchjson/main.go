// Command benchjson runs the repository's performance benchmark suites
// (lattice evaluation, lattice synthesis, QM minimization, serving
// engine) and emits a machine-readable JSON report, so the perf
// trajectory of the hot paths is tracked in-tree from PR to PR.
//
// Usage:
//
//	benchjson [-out BENCH_lattice.json] [-bench regex] [-benchtime 0.5s] [-pkgs p1,p2,...]
//
// CI runs it with -benchtime 1x as a smoke check; release numbers are
// regenerated with the default benchtime and committed as
// BENCH_lattice.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultPkgs are the suites covering the synthesis/serving hot paths,
// including the client/server round trip through the v2 HTTP protocol
// (internal/httpapi) so serving overhead is tracked alongside raw
// engine numbers.
const defaultPkgs = "./internal/lattice,./internal/latsynth,./internal/qm,./internal/engine,./internal/httpapi"

// Benchmark is one parsed benchmark line.
type Benchmark struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present when the suite ran -benchmem
	// (always, here) and the bench reports allocations.
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // b.ReportMetric extras
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	CPU         string      `json:"cpu,omitempty"`
	Benchtime   string      `json:"benchtime"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_lattice.json", "output JSON path (- for stdout)")
	benchRe := flag.String("bench", ".", "benchmark name regex passed to go test -bench")
	benchtime := flag.String("benchtime", "0.5s", "go test -benchtime value")
	pkgs := flag.String("pkgs", defaultPkgs, "comma-separated packages to benchmark")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem", "-benchtime", *benchtime}
	args = append(args, strings.Split(*pkgs, ",")...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n%s", strings.Join(args, " "), err, raw)
		os.Exit(1)
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchtime:   *benchtime,
	}
	parseBenchOutput(string(raw), &rep)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines in go test output:\n%s", raw)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseBenchOutput scans standard `go test -bench` text: "pkg:" and
// "cpu:" header lines, then one line per benchmark of the form
//
//	BenchmarkName-8   1203   9876 ns/op   120 B/op   3 allocs/op   42.0 custom/metric
//
// with an iteration count followed by (value, unit) pairs.
func parseBenchOutput(raw string, rep *Report) {
	pkg := ""
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Pkg: pkg, Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := int64(val)
				b.BytesPerOp = &v
			case "allocs/op":
				v := int64(val)
				b.AllocsPerOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
}
