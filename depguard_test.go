package nanoxbar_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// publicOnlyDirs are the trees that must program exclusively against
// the public SDK: the runnable examples and the user-facing CLIs. They
// are the API-compatibility canary — if pkg/nanoxbar loses surface
// these need, they stop compiling; if anyone reaches back into
// internal/ from them, this test fails.
//
// The serving daemon (cmd/xbarserverd), the experiment reproducers
// (cmd/repro, cmd/benchjson), and pkg/nanoxbar itself are the module's
// own plumbing and may use internal packages.
var publicOnlyDirs = []string{
	"examples",
	"cmd/xbarsize",
	"cmd/latsynth",
	"cmd/faultsim",
}

// TestDepguardPublicAPIOnly walks the public-only trees and rejects
// any import of nanoxbar/internal/...: external users could not build
// that code, so it would be a broken advertisement of the SDK.
func TestDepguardPublicAPIOnly(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range publicOnlyDirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == "nanoxbar/internal" || strings.HasPrefix(p, "nanoxbar/internal/") {
					t.Errorf("%s imports %s: examples and CLIs must use pkg/nanoxbar only", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
}
