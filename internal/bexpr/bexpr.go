// Package bexpr parses Boolean expressions in the paper's notation into
// an AST that can be elaborated to truth tables or BDDs. It is the entry
// point used by the command-line tools and examples.
//
// Grammar (lowest to highest precedence):
//
//	expr   := xorterm ('+' xorterm)*            // OR
//	xorterm:= term ('^' term)*                  // XOR
//	term   := factor (('*')? factor)*           // AND, '*' optional
//	factor := '!' factor | atom postfix*
//	postfix:= '\''                              // complement
//	atom   := 'x' digits | '0' | '1' | '(' expr ')'
//
// Variables are 1-indexed (x1 is variable 0 internally), matching the
// DATE'17 paper.
package bexpr

import (
	"fmt"
	"strconv"
	"strings"

	"nanoxbar/internal/bdd"
	"nanoxbar/internal/truthtab"
)

// Op identifies an AST node kind.
type Op int

// AST node kinds.
const (
	OpConst Op = iota
	OpVar
	OpNot
	OpAnd
	OpOr
	OpXor
)

// Expr is a parsed Boolean expression tree.
type Expr struct {
	Op    Op
	Val   bool  // OpConst
	Var   int   // OpVar, 0-indexed
	Left  *Expr // OpNot uses Left only
	Right *Expr
}

// MaxVar returns the number of variables needed: one past the highest
// 0-indexed variable used (0 for constant expressions).
func (e *Expr) MaxVar() int {
	switch e.Op {
	case OpConst:
		return 0
	case OpVar:
		return e.Var + 1
	case OpNot:
		return e.Left.MaxVar()
	default:
		l, r := e.Left.MaxVar(), e.Right.MaxVar()
		if l > r {
			return l
		}
		return r
	}
}

// TT elaborates the expression over n variables (n ≥ MaxVar).
func (e *Expr) TT(n int) (truthtab.TT, error) {
	if need := e.MaxVar(); n < need {
		return truthtab.TT{}, fmt.Errorf("bexpr: expression needs %d variables, given %d", need, n)
	}
	return e.tt(n), nil
}

func (e *Expr) tt(n int) truthtab.TT {
	switch e.Op {
	case OpConst:
		if e.Val {
			return truthtab.One(n)
		}
		return truthtab.Zero(n)
	case OpVar:
		return truthtab.Var(n, e.Var)
	case OpNot:
		return e.Left.tt(n).Not()
	case OpAnd:
		return e.Left.tt(n).And(e.Right.tt(n))
	case OpOr:
		return e.Left.tt(n).Or(e.Right.tt(n))
	case OpXor:
		return e.Left.tt(n).Xor(e.Right.tt(n))
	}
	panic("bexpr: unknown op")
}

// BDD elaborates the expression in a BDD manager.
func (e *Expr) BDD(m *bdd.Manager) bdd.Ref {
	switch e.Op {
	case OpConst:
		return m.Const(e.Val)
	case OpVar:
		return m.Var(e.Var)
	case OpNot:
		return m.Not(e.Left.BDD(m))
	case OpAnd:
		return m.And(e.Left.BDD(m), e.Right.BDD(m))
	case OpOr:
		return m.Or(e.Left.BDD(m), e.Right.BDD(m))
	case OpXor:
		return m.Xor(e.Left.BDD(m), e.Right.BDD(m))
	}
	panic("bexpr: unknown op")
}

// Parse parses an expression.
func Parse(s string) (*Expr, error) {
	p := &parser{src: s}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("bexpr: unexpected %q at offset %d", p.src[p.pos:], p.pos)
	}
	return e, nil
}

// ParseTT parses an expression and elaborates it over exactly the
// variables it mentions.
func ParseTT(s string) (truthtab.TT, int, error) {
	e, err := Parse(s)
	if err != nil {
		return truthtab.TT{}, 0, err
	}
	n := e.MaxVar()
	t, err := e.TT(n)
	return t, n, err
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseOr() (*Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.peek() == '+' {
		p.pos++
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &Expr{Op: OpOr, Left: l, Right: r}
	}
	return l, nil
}

func (p *parser) parseXor() (*Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == '^' {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Expr{Op: OpXor, Left: l, Right: r}
	}
	return l, nil
}

// parseAnd handles explicit '*' and implicit juxtaposition: a factor
// starts with 'x', 'X', '0', '1', '(', or '!'.
func (p *parser) parseAnd() (*Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c == '*' {
			p.pos++
			c = p.peek()
		} else if !isFactorStart(c) {
			return l, nil
		}
		if !isFactorStart(c) {
			return nil, fmt.Errorf("bexpr: expected operand at offset %d", p.pos)
		}
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &Expr{Op: OpAnd, Left: l, Right: r}
	}
}

func isFactorStart(c byte) bool {
	return c == 'x' || c == 'X' || c == '0' || c == '1' || c == '(' || c == '!'
}

func (p *parser) parseFactor() (*Expr, error) {
	if p.peek() == '!' {
		p.pos++
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Expr{Op: OpNot, Left: e}, nil
	}
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.peek() == '\'' {
		p.pos++
		e = &Expr{Op: OpNot, Left: e}
	}
	return e, nil
}

func (p *parser) parseAtom() (*Expr, error) {
	switch c := p.peek(); {
	case c == '0':
		p.pos++
		return &Expr{Op: OpConst, Val: false}, nil
	case c == '1':
		p.pos++
		return &Expr{Op: OpConst, Val: true}, nil
	case c == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("bexpr: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	case c == 'x' || c == 'X':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("bexpr: variable needs an index at offset %d", start)
		}
		idx, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil || idx < 1 || idx > truthtab.MaxVars {
			return nil, fmt.Errorf("bexpr: bad variable index %q", p.src[start:p.pos])
		}
		return &Expr{Op: OpVar, Var: idx - 1}, nil
	case c == 0:
		return nil, fmt.Errorf("bexpr: unexpected end of input")
	default:
		return nil, fmt.Errorf("bexpr: unexpected character %q at offset %d", c, p.pos)
	}
}

// String renders the expression with minimal parentheses.
func (e *Expr) String() string {
	var render func(e *Expr, prec int) string
	render = func(e *Expr, prec int) string {
		var s string
		var myPrec int
		switch e.Op {
		case OpConst:
			if e.Val {
				return "1"
			}
			return "0"
		case OpVar:
			return fmt.Sprintf("x%d", e.Var+1)
		case OpNot:
			inner := render(e.Left, 3)
			if e.Left.Op == OpVar || e.Left.Op == OpConst {
				return inner + "'"
			}
			return "(" + inner + ")'"
		case OpAnd:
			myPrec = 2
			s = render(e.Left, myPrec) + render(e.Right, myPrec+1)
		case OpXor:
			myPrec = 1
			s = render(e.Left, myPrec) + " ^ " + render(e.Right, myPrec+1)
		case OpOr:
			myPrec = 0
			s = render(e.Left, myPrec) + " + " + render(e.Right, myPrec+1)
		}
		if myPrec < prec {
			return "(" + s + ")"
		}
		return s
	}
	out := render(e, 0)
	return strings.TrimSpace(out)
}
