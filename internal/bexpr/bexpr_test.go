package bexpr

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/bdd"
	"nanoxbar/internal/truthtab"
)

func parseTT(t *testing.T, s string) truthtab.TT {
	t.Helper()
	tt, _, err := ParseTT(s)
	if err != nil {
		t.Fatalf("ParseTT(%q): %v", s, err)
	}
	return tt
}

func TestBasicForms(t *testing.T) {
	xnor := parseTT(t, "x1x2 + x1'x2'")
	want := truthtab.FromMinterms(2, []uint64{0, 3})
	if !xnor.Equal(want) {
		t.Fatal("xnor wrong")
	}
	if !parseTT(t, "x1 ^ x2").Equal(want.Not()) {
		t.Fatal("xor wrong")
	}
}

func TestEquivalentSpellings(t *testing.T) {
	forms := []string{
		"x1x2' + x3",
		"x1 * x2' + x3",
		"(x1)(x2') + x3",
		"!(!x1 + x2)+x3",
		"x1(x2)' + x3",
	}
	ref := parseTT(t, forms[0])
	for _, f := range forms[1:] {
		e, err := Parse(f)
		if err != nil {
			t.Fatalf("%q: %v", f, err)
		}
		tt, err := e.TT(3)
		if err != nil {
			t.Fatal(err)
		}
		if !tt.Equal(ref) {
			t.Fatalf("%q differs from reference", f)
		}
	}
}

func TestPrecedence(t *testing.T) {
	// AND binds tighter than XOR binds tighter than OR.
	f := parseTT(t, "x1 + x2 x3")
	want := truthtab.Var(3, 0).Or(truthtab.Var(3, 1).And(truthtab.Var(3, 2)))
	if !f.Equal(want) {
		t.Fatal("AND/OR precedence")
	}
	g := parseTT(t, "x1 ^ x2 + x3")
	wantG := truthtab.Var(3, 0).Xor(truthtab.Var(3, 1)).Or(truthtab.Var(3, 2))
	if !g.Equal(wantG) {
		t.Fatal("XOR/OR precedence")
	}
}

func TestConstants(t *testing.T) {
	if !parseTT(t, "0").IsZero() {
		t.Fatal("0")
	}
	if !parseTT(t, "1").IsOne() {
		t.Fatal("1")
	}
	// x + 1 = 1
	e, err := Parse("x1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := e.TT(1)
	if !tt.IsOne() {
		t.Fatal("x1+1 != 1")
	}
}

func TestDoubleComplement(t *testing.T) {
	f := parseTT(t, "x1''")
	if !f.Equal(truthtab.Var(1, 0)) {
		t.Fatal("x1'' != x1")
	}
}

func TestFig4Expression(t *testing.T) {
	f := parseTT(t, "x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6")
	if f.NumVars() != 6 {
		t.Fatalf("vars = %d", f.NumVars())
	}
	// Spot checks from the caption SOP.
	if !f.Bit(0b000111) { // x1x2x3
		t.Fatal("missing x1x2x3 minterm")
	}
	if !f.Bit(0b111000) { // x4x5x6
		t.Fatal("missing x4x5x6 minterm")
	}
	if f.Bit(0) {
		t.Fatal("constant term crept in")
	}
}

func TestBDDElaborationMatchesTT(t *testing.T) {
	exprs := []string{
		"x1x2 + x1'x2'",
		"x1 ^ x2 ^ x3",
		"(x1 + x2)(x3 + x4')",
		"x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6",
	}
	for _, s := range exprs {
		e, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		n := e.MaxVar()
		m := bdd.New(n)
		tt, _ := e.TT(n)
		if !m.ToTT(e.BDD(m)).Equal(tt) {
			t.Fatalf("BDD and TT disagree for %q", s)
		}
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"", "x", "x0", "+x1", "x1+", "x1 & x2", "(x1", "x1)", "x1 ** x2",
		"!", "x1'''(", "y1",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	exprs := []string{
		"x1x2 + x1'x2'",
		"x1 ^ x2 + x3",
		"(x1 + x2)x3'",
		"x1x2x3 + x4x5x6",
		"1",
		"0",
	}
	_ = rng
	for _, s := range exprs {
		e, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", e.String(), s, err)
		}
		n := e.MaxVar()
		if n == 0 {
			n = 1
		}
		t1, _ := e.TT(n)
		t2, _ := e2.TT(n)
		if !t1.Equal(t2) {
			t.Fatalf("String round trip changed %q", s)
		}
	}
}

func TestMaxVar(t *testing.T) {
	e, err := Parse("x3 + x7'")
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxVar() != 7 {
		t.Fatalf("MaxVar = %d", e.MaxVar())
	}
	if _, err := e.TT(3); err == nil {
		t.Fatal("TT with too few vars must fail")
	}
}
