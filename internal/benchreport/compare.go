package benchreport

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Delta is one benchmark present in both reports.
type Delta struct {
	ID      string  `json:"id"`
	OldNs   float64 `json:"old_ns_per_op"`
	NewNs   float64 `json:"new_ns_per_op"`
	Ratio   float64 `json:"ratio"` // new / old; > 1 is slower
	Allowed bool    `json:"allowed,omitempty"`
}

// Comparison is the outcome of diffing a new report against a baseline.
type Comparison struct {
	Tolerance float64 `json:"tolerance"`
	Compared  int     `json:"compared"`
	// Regressions exceed the tolerance and are not allow-listed — each
	// one fails the gate.
	Regressions []Delta `json:"regressions,omitempty"`
	// Allowed exceed the tolerance but match the allow-list (noisy
	// suites); reported, not failing.
	Allowed []Delta `json:"allowed,omitempty"`
	// Missing are baseline benchmarks absent from the new report — a
	// deleted or renamed benchmark silently escapes the gate, so the
	// gate fails on them too unless allow-listed.
	Missing []string `json:"missing,omitempty"`
}

// OK reports whether the gate passes.
func (c Comparison) OK() bool { return len(c.Regressions) == 0 && len(c.Missing) == 0 }

// Compare diffs `new` against the `old` baseline on ns/op. A benchmark
// regresses when new > old×(1+tolerance). allow (optional) is matched
// against the benchmark ID (pkg.Name); matching benchmarks never fail
// the gate, covering suites that are inherently noisy in CI.
func Compare(old, new Report, tolerance float64, allow *regexp.Regexp) Comparison {
	cmp := Comparison{Tolerance: tolerance}
	newByID := make(map[string]Benchmark, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		newByID[b.ID()] = b
	}
	allowed := func(id string) bool { return allow != nil && allow.MatchString(id) }
	for _, ob := range old.Benchmarks {
		nb, ok := newByID[ob.ID()]
		if !ok {
			if !allowed(ob.ID()) {
				cmp.Missing = append(cmp.Missing, ob.ID())
			}
			continue
		}
		cmp.Compared++
		if ob.NsPerOp <= 0 {
			continue // a zero baseline cannot regress meaningfully
		}
		d := Delta{ID: ob.ID(), OldNs: ob.NsPerOp, NewNs: nb.NsPerOp, Ratio: nb.NsPerOp / ob.NsPerOp}
		if d.Ratio > 1+tolerance {
			if allowed(d.ID) {
				d.Allowed = true
				cmp.Allowed = append(cmp.Allowed, d)
			} else {
				cmp.Regressions = append(cmp.Regressions, d)
			}
		}
	}
	sort.Slice(cmp.Regressions, func(i, j int) bool { return cmp.Regressions[i].Ratio > cmp.Regressions[j].Ratio })
	sort.Slice(cmp.Allowed, func(i, j int) bool { return cmp.Allowed[i].Ratio > cmp.Allowed[j].Ratio })
	sort.Strings(cmp.Missing)
	return cmp
}

// Format renders the comparison for CI logs: worst offenders first,
// then the allow-listed exceedances, then a one-line verdict.
func (c Comparison) Format() string {
	var sb strings.Builder
	line := func(d Delta) {
		fmt.Fprintf(&sb, "  %-60s %12.1f → %12.1f ns/op  (%.2fx)\n", d.ID, d.OldNs, d.NewNs, d.Ratio)
	}
	if len(c.Regressions) > 0 {
		fmt.Fprintf(&sb, "REGRESSIONS (> %.0f%% over baseline):\n", c.Tolerance*100)
		for _, d := range c.Regressions {
			line(d)
		}
	}
	if len(c.Missing) > 0 {
		sb.WriteString("MISSING from new report:\n")
		for _, id := range c.Missing {
			fmt.Fprintf(&sb, "  %s\n", id)
		}
	}
	if len(c.Allowed) > 0 {
		sb.WriteString("allow-listed exceedances (not failing):\n")
		for _, d := range c.Allowed {
			line(d)
		}
	}
	verdict := "OK"
	if !c.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "%s: %d benchmarks compared, %d regressions, %d missing, %d allow-listed (tolerance %.0f%%)\n",
		verdict, c.Compared, len(c.Regressions), len(c.Missing), len(c.Allowed), c.Tolerance*100)
	return sb.String()
}
