package benchreport

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: nanoxbar/internal/lattice
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEval8x8-8         	  500000	      2100 ns/op	       0 B/op	       0 allocs/op
BenchmarkFunction6Var-8    	    1200	    998000 ns/op	   12288 B/op	       6 allocs/op	     64.0 evals/op
PASS
pkg: nanoxbar/internal/engine
BenchmarkSynthesizeCached-8	 3000000	       400.5 ns/op	      16 B/op	       1 allocs/op
ok  	nanoxbar/internal/engine	1.2s
`

func TestParseGoBench(t *testing.T) {
	var rep Report
	ParseGoBench(sampleBenchOutput, &rep)
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu %q", rep.CPU)
	}
	b := rep.Benchmarks[0]
	if b.Pkg != "nanoxbar/internal/lattice" || b.Name != "BenchmarkEval8x8" || b.NsPerOp != 2100 || b.Iterations != 500000 {
		t.Fatalf("benchmark 0: %+v", b)
	}
	if b.ID() != "nanoxbar/internal/lattice.BenchmarkEval8x8" {
		t.Fatalf("id %q", b.ID())
	}
	b = rep.Benchmarks[1]
	if b.Metrics["evals/op"] != 64.0 {
		t.Fatalf("custom metric not parsed: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 12288 || b.AllocsPerOp == nil || *b.AllocsPerOp != 6 {
		t.Fatalf("benchmem fields: %+v", b)
	}
	b = rep.Benchmarks[2]
	if b.Pkg != "nanoxbar/internal/engine" || b.NsPerOp != 400.5 {
		t.Fatalf("benchmark 2: %+v", b)
	}
}

// mkReport builds a report with the given name→ns pairs in one package.
func mkReport(ns map[string]float64) Report {
	var rep Report
	for name, v := range ns {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Pkg: "p", Name: name, Iterations: 1, NsPerOp: v})
	}
	return rep
}

func TestCompareDetectsRegression(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkC": 100})
	new := mkReport(map[string]float64{"BenchmarkA": 120, "BenchmarkB": 200, "BenchmarkC": 80})
	cmp := Compare(old, new, 0.25, nil)
	if cmp.OK() {
		t.Fatal("2x regression passed the gate")
	}
	if len(cmp.Regressions) != 1 || cmp.Regressions[0].ID != "p.BenchmarkB" {
		t.Fatalf("regressions %+v, want only p.BenchmarkB", cmp.Regressions)
	}
	if cmp.Regressions[0].Ratio != 2.0 {
		t.Fatalf("ratio %v, want 2.0", cmp.Regressions[0].Ratio)
	}
	if cmp.Compared != 3 {
		t.Fatalf("compared %d, want 3", cmp.Compared)
	}
	out := cmp.Format()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "p.BenchmarkB") {
		t.Fatalf("format lacks verdict or offender:\n%s", out)
	}
}

func TestCompareWithinToleranceOK(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkA": 100})
	new := mkReport(map[string]float64{"BenchmarkA": 124})
	cmp := Compare(old, new, 0.25, nil)
	if !cmp.OK() || len(cmp.Regressions) != 0 {
		t.Fatalf("24%% drift failed a 25%% gate: %+v", cmp)
	}
	if !strings.Contains(cmp.Format(), "OK") {
		t.Fatalf("format lacks OK verdict:\n%s", cmp.Format())
	}
}

func TestCompareAllowList(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkNoisy": 100, "BenchmarkHot": 100})
	new := mkReport(map[string]float64{"BenchmarkNoisy": 500, "BenchmarkHot": 90})
	allow := regexp.MustCompile(`Noisy`)
	cmp := Compare(old, new, 0.25, allow)
	if !cmp.OK() {
		t.Fatalf("allow-listed regression failed the gate: %+v", cmp)
	}
	if len(cmp.Allowed) != 1 || cmp.Allowed[0].ID != "p.BenchmarkNoisy" {
		t.Fatalf("allowed %+v", cmp.Allowed)
	}
	// The same run without the allow-list must fail.
	if Compare(old, new, 0.25, nil).OK() {
		t.Fatal("5x regression passed without allow-list")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkA": 100, "BenchmarkGone": 100})
	new := mkReport(map[string]float64{"BenchmarkA": 100})
	cmp := Compare(old, new, 0.25, nil)
	if cmp.OK() {
		t.Fatal("missing benchmark passed the gate")
	}
	if len(cmp.Missing) != 1 || cmp.Missing[0] != "p.BenchmarkGone" {
		t.Fatalf("missing %+v", cmp.Missing)
	}
	// Allow-listing the missing benchmark unblocks the gate.
	if cmp := Compare(old, new, 0.25, regexp.MustCompile(`Gone`)); !cmp.OK() {
		t.Fatalf("allow-listed missing benchmark still fails: %+v", cmp)
	}
}

func TestCompareZeroBaselineIgnored(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkZero": 0})
	new := mkReport(map[string]float64{"BenchmarkZero": 1000})
	if cmp := Compare(old, new, 0.25, nil); !cmp.OK() {
		t.Fatalf("zero baseline produced a regression: %+v", cmp)
	}
}
