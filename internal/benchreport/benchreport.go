// Package benchreport defines the machine-readable benchmark report the
// repository tracks in-tree (BENCH_lattice.json), the parser that builds
// it from `go test -bench` output, and the comparison logic behind the
// CI perf-regression gate. cmd/benchjson emits and compares reports;
// cmd/xbarload emits its soak latencies in the same shape so one set of
// tooling reads both.
package benchreport

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark line.
type Benchmark struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present when the suite ran -benchmem
	// (always, here) and the bench reports allocations.
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // b.ReportMetric extras
}

// ID identifies a benchmark across reports.
func (b Benchmark) ID() string { return b.Pkg + "." + b.Name }

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	CPU         string      `json:"cpu,omitempty"`
	Benchtime   string      `json:"benchtime"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	// Notes carries emitter caveats that change how the report should
	// be read — e.g. xbarload sets {"metrics_scrape": "skipped"} when
	// the server's /metrics endpoint could not be scraped, so a missing
	// Soak/server block reads as "no data", not "zero delta".
	Notes map[string]string `json:"notes,omitempty"`
}

// Filter returns a copy of the report keeping only benchmarks whose ID
// (pkg.Name) matches only. A nil pattern keeps everything. Compare
// gates use it to scope a baseline to the blocks a given CI job
// actually regenerates — the bench-smoke gate must not fail Soak/*
// blocks as Missing, and the soak gates must not re-judge micro-bench
// blocks.
func (r Report) Filter(only *regexp.Regexp) Report {
	if only == nil {
		return r
	}
	out := r
	out.Benchmarks = nil
	for _, b := range r.Benchmarks {
		if only.MatchString(b.ID()) {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	return out
}

// Load reads a report file.
func Load(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("benchreport: %w", err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("benchreport: parse %s: %w", path, err)
	}
	return rep, nil
}

// WriteFile renders the report as indented JSON to path, or to stdout
// when path is "-". Shared by every report-emitting command so the
// on-disk encoding cannot drift between them.
func WriteFile(path string, rep Report) error {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("benchreport: %w", err)
	}
	enc = append(enc, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(path, enc, 0o644)
}

// ParseGoBench scans standard `go test -bench` text: "pkg:" and "cpu:"
// header lines, then one line per benchmark of the form
//
//	BenchmarkName-8   1203   9876 ns/op   120 B/op   3 allocs/op   42.0 custom/metric
//
// with an iteration count followed by (value, unit) pairs. Parsed
// benchmarks are appended to rep.Benchmarks; the trailing -GOMAXPROCS
// suffix is stripped so reports from differently-sized machines compare.
func ParseGoBench(raw string, rep *Report) {
	pkg := ""
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Pkg: pkg, Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := int64(val)
				b.BytesPerOp = &v
			case "allocs/op":
				v := int64(val)
				b.AllocsPerOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
}
