package engine

import (
	"context"
	"errors"
	"sync"
	"time"
)

// errQueueFull is submitWait's shed signal: the job queue stayed full
// past the wait budget. Distinct from context cancellation so admission
// control can answer "overloaded" rather than "canceled".
var errQueueFull = errors.New("engine: job queue saturated")

// pool is a bounded worker pool: a fixed set of goroutines draining one
// job channel. Submission blocks once the buffer fills, giving callers
// natural backpressure — and, via submitWait's budget, a typed shed
// point — instead of unbounded goroutine growth.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newPool(workers, depth int) *pool {
	if depth <= 0 {
		depth = 4 * workers
	}
	p := &pool{jobs: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// depth returns the queue buffer size.
func (p *pool) depth() int { return cap(p.jobs) }

// queued returns the number of jobs waiting for a worker.
func (p *pool) queued() int { return len(p.jobs) }

// submitWait enqueues a job, waiting at most maxWait for queue space
// (maxWait <= 0 waits indefinitely). It returns nil on acceptance,
// errQueueFull when the wait budget expired with the queue still full,
// or ctx.Err() when the context died first. A job accepted here may
// still observe a canceled context when it runs — executors re-check
// before doing work.
func (p *pool) submitWait(ctx context.Context, maxWait time.Duration, job func()) error {
	select {
	case p.jobs <- job:
		return nil
	default:
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		done = ctx.Done()
	}
	if maxWait <= 0 {
		select {
		case p.jobs <- job:
			return nil
		case <-done:
			return ctx.Err()
		}
	}
	t := time.NewTimer(maxWait)
	defer t.Stop()
	select {
	case p.jobs <- job:
		return nil
	case <-t.C:
		return errQueueFull
	case <-done:
		return ctx.Err()
	}
}

// close stops accepting jobs and waits for the workers to drain.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}
