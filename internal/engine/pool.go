package engine

import (
	"context"
	"sync"
)

// pool is a bounded worker pool: a fixed set of goroutines draining one
// job channel. Submission blocks once the buffer fills, giving callers
// natural backpressure instead of unbounded goroutine growth.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{jobs: make(chan func(), 4*workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit enqueues a job; it blocks when the queue is full.
func (p *pool) submit(job func()) { p.jobs <- job }

// submitCtx enqueues a job unless the context is done first; it reports
// whether the job was accepted. A job accepted here may still observe a
// canceled context when it runs — executors re-check before doing work.
func (p *pool) submitCtx(ctx context.Context, job func()) bool {
	if ctx == nil || ctx.Done() == nil {
		p.jobs <- job
		return true
	}
	select {
	case <-ctx.Done():
		return false
	default:
	}
	select {
	case p.jobs <- job:
		return true
	case <-ctx.Done():
		return false
	}
}

// close stops accepting jobs and waits for the workers to drain.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}
