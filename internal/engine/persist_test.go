package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// warmupBatch is a batch of synthesize requests spanning several
// functions and technologies — the workload whose synthesis cost a warm
// restart must not re-pay.
func warmupBatch() []Request {
	var reqs []Request
	for _, fn := range []FunctionSpec{
		{Name: "maj3"},
		{TT: "3:0x96"},
		{Expr: "x1x2 + x3x4"},
	} {
		for _, tech := range []string{"diode", "fet", "lattice"} {
			reqs = append(reqs, Request{Kind: KindSynthesize, Function: fn, Tech: tech})
		}
	}
	return reqs
}

// TestWarmRestartServesFromSnapshot is the daemon-restart scenario:
// synthesize a batch, snapshot the cache, start a fresh engine from the
// snapshot, and replay the batch. Every answer must be a cache hit and
// the underlying synthesizer must never run.
func TestWarmRestartServesFromSnapshot(t *testing.T) {
	reqs := warmupBatch()
	path := filepath.Join(t.TempDir(), "cache.snap")

	e1 := New(Config{Workers: 4, CacheSize: 64})
	for i, res := range e1.SubmitBatch(reqs) {
		if !res.Ok() {
			t.Fatalf("warmup request %d failed: %s", i, res.Error)
		}
	}
	n, err := e1.SaveCacheSnapshot(path)
	e1.Close()
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if n != len(reqs) {
		t.Fatalf("saved %d entries, want %d", n, len(reqs))
	}

	e2 := New(Config{Workers: 4, CacheSize: 64})
	defer e2.Close()
	loaded, err := e2.LoadCacheSnapshot(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded != n {
		t.Fatalf("loaded %d entries, want %d", loaded, n)
	}
	if st := e2.Stats(); st.CacheLoaded != uint64(n) || st.CacheEntries != n {
		t.Fatalf("stats after load: loaded=%d entries=%d, want %d/%d", st.CacheLoaded, st.CacheEntries, n, n)
	}

	for i, res := range e2.SubmitBatch(reqs) {
		if !res.Ok() {
			t.Fatalf("replayed request %d failed: %s", i, res.Error)
		}
		if !res.Synthesis.CacheHit {
			t.Fatalf("replayed request %d was not a cache hit", i)
		}
	}
	st := e2.Stats()
	if st.SynthCalls != 0 {
		t.Fatalf("warm engine ran %d syntheses, want 0", st.SynthCalls)
	}
	if st.CacheHits != uint64(len(reqs)) || st.CacheMisses != 0 {
		t.Fatalf("hits=%d misses=%d, want %d/0", st.CacheHits, st.CacheMisses, len(reqs))
	}
}

// TestSnapshotStreamRoundTrip exercises the io.Writer/io.Reader pair
// and checks that loading into a non-empty cache is additive.
func TestSnapshotStreamRoundTrip(t *testing.T) {
	e1 := New(Config{Workers: 2, CacheSize: 64})
	reqs := warmupBatch()
	e1.SubmitBatch(reqs)
	var buf bytes.Buffer
	n, err := e1.WriteCacheSnapshot(&buf)
	e1.Close()
	if err != nil || n != len(reqs) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}

	e2 := New(Config{Workers: 2, CacheSize: 64})
	defer e2.Close()
	// Pre-populate one key; the snapshot's copy of it must not count as
	// loaded.
	if res := e2.Do(reqs[0]); !res.Ok() {
		t.Fatalf("pre-populate: %s", res.Error)
	}
	loaded, err := e2.ReadCacheSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if loaded != len(reqs)-1 {
		t.Fatalf("loaded %d entries into warm cache, want %d", loaded, len(reqs)-1)
	}
	st := e2.Stats()
	if st.CacheEntries != len(reqs) {
		t.Fatalf("entries=%d, want %d", st.CacheEntries, len(reqs))
	}
}

// TestColdStartAfterTruncatedSnapshot is the crash-during-save restart
// scenario: the snapshot on disk is cut mid-stream, the load fails
// typed, and the engine still serves every request cold — a torn
// checkpoint costs warmth, never availability or correctness.
func TestColdStartAfterTruncatedSnapshot(t *testing.T) {
	reqs := warmupBatch()
	path := filepath.Join(t.TempDir(), "cache.snap")

	e1 := New(Config{Workers: 4, CacheSize: 64})
	e1.SubmitBatch(reqs)
	if _, err := e1.SaveCacheSnapshot(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	e1.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o600); err != nil {
		t.Fatal(err)
	}

	e2 := New(Config{Workers: 4, CacheSize: 64})
	defer e2.Close()
	if n, err := e2.LoadCacheSnapshot(path); err == nil {
		t.Fatalf("torn snapshot loaded %d entries without error", n)
	}
	if st := e2.Stats(); st.CacheLoaded != 0 || st.CacheEntries != 0 {
		t.Fatalf("torn snapshot leaked entries: loaded=%d entries=%d", st.CacheLoaded, st.CacheEntries)
	}
	for i, res := range e2.SubmitBatch(reqs) {
		if !res.Ok() {
			t.Fatalf("cold request %d failed: %s", i, res.Error)
		}
	}
}

// TestLoadSnapshotMissingFile keeps the boot path honest: a missing
// snapshot is an error the daemon reports, not a silent cold start.
func TestLoadSnapshotMissingFile(t *testing.T) {
	e := New(Config{Workers: 1, CacheSize: 8})
	defer e.Close()
	if _, err := e.LoadCacheSnapshot(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Fatal("loading a missing snapshot succeeded")
	}
}
