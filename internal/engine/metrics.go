package engine

import (
	"strconv"
	"time"

	"nanoxbar/internal/lattice"
	"nanoxbar/internal/telemetry"
)

// Stage names of the request pipeline, the label values of
// nanoxbar_stage_duration_seconds. Together they decompose a request's
// wall time: how long it sat in the pool queue, how long the cache
// lookup took (including waiting on another request's in-flight
// synthesis), how long a cold synthesis ran, and how long each die's
// defect draw + self-mapping took.
const (
	stageQueueWait   = "queue_wait"
	stageCacheLookup = "cache_lookup"
	stageSynthesize  = "synthesize"
	stageDieMap      = "die_map"
)

// engineMetrics holds the engine's telemetry handles. The histograms
// are observed on the hot path (lock-free, allocation-free); everything
// read from existing atomics or shard counters registers as a
// scrape-time closure so the counters are not maintained twice.
type engineMetrics struct {
	reg *telemetry.Registry

	// reqDur indexes per-kind request latency by the same kind index
	// the byKind counters use.
	reqDur [4]*telemetry.Histogram

	queueWait   *telemetry.Histogram
	cacheLookup *telemetry.Histogram
	synthesize  *telemetry.Histogram
	dieMap      *telemetry.Histogram

	inflight *telemetry.Gauge
}

// kindIndex maps a request kind onto the byKind/reqDur slot, -1 for
// unknown kinds.
func kindIndex(k Kind) int {
	switch k {
	case KindSynthesize:
		return 0
	case KindCompare:
		return 1
	case KindMap:
		return 2
	case KindYield:
		return 3
	}
	return -1
}

// newEngineMetrics builds the engine's registry: request and stage
// histograms (observed by the engine), counters mirrored from the
// engine's atomics, per-shard cache families walked at scrape time, the
// process-wide lattice evaluation counters, and the Go runtime set.
func newEngineMetrics(e *Engine) *engineMetrics {
	reg := telemetry.NewRegistry()
	m := &engineMetrics{reg: reg}

	for i, k := range []Kind{KindSynthesize, KindCompare, KindMap, KindYield} {
		kind := string(k)
		m.reqDur[i] = reg.Histogram("nanoxbar_request_duration_seconds",
			"End-to-end request latency by kind, from worker pickup to result.",
			"kind", kind)
		idx := i
		reg.CounterFunc("nanoxbar_requests_total", "Requests executed by kind.",
			func() float64 { return float64(e.byKind[idx].Load()) }, "kind", kind)
	}
	m.queueWait = reg.Histogram("nanoxbar_stage_duration_seconds",
		"Pipeline stage latency.", "stage", stageQueueWait)
	m.cacheLookup = reg.Histogram("nanoxbar_stage_duration_seconds",
		"Pipeline stage latency.", "stage", stageCacheLookup)
	m.synthesize = reg.Histogram("nanoxbar_stage_duration_seconds",
		"Pipeline stage latency.", "stage", stageSynthesize)
	m.dieMap = reg.Histogram("nanoxbar_stage_duration_seconds",
		"Pipeline stage latency.", "stage", stageDieMap)
	m.inflight = reg.Gauge("nanoxbar_requests_inflight",
		"Requests currently executing on the worker pool.")

	counter := func(name, help string, v func() uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v()) })
	}
	counter("nanoxbar_request_failures_total", "Requests that returned an error result.", e.failures.Load)
	counter("nanoxbar_engine_shed_total", "Requests shed at admission: the job queue stayed saturated past the wait budget.", e.shed.Load)
	counter("nanoxbar_engine_degraded_total", "Requests served with the degraded fast-path synthesis options after excessive queue wait.", e.degradedReqs.Load)
	reg.GaugeFunc("nanoxbar_engine_queue_depth", "Job queue buffer size.",
		func() float64 { return float64(e.pool.depth()) })
	reg.GaugeFunc("nanoxbar_engine_queued_jobs", "Jobs waiting for a worker.",
		func() float64 { return float64(e.pool.queued()) })
	counter("nanoxbar_synth_calls_total", "Underlying core.Synthesize invocations (cache misses that ran).", e.synthCalls.Load)
	counter("nanoxbar_dies_mapped_total", "Dies placed through the self-mapper.", e.diesMapped.Load)
	counter("nanoxbar_defect_maps_generated_total", "Random defect maps drawn.", e.defectMaps.Load)
	counter("nanoxbar_map_attempts_total", "Self-mapping configurations spent across all dies.", e.mapAttempts.Load)
	reg.GaugeFunc("nanoxbar_workers", "Worker pool size.",
		func() float64 { return float64(e.workers) })

	// Per-shard cache families. Each family snapshots the shards at
	// scrape time (one mutex hop per shard), so the hot-path cache code
	// keeps its existing plain counters.
	cacheFamily := func(name, help, typ string, v func(cacheShardStats) float64) {
		reg.Collect(name, help, typ, func(emit func(string, float64)) {
			for i, st := range e.cache.perShard() {
				emit(telemetry.Label("shard", strconv.Itoa(i)), v(st))
			}
		})
	}
	cacheFamily("nanoxbar_cache_hits_total", "Cache hits by shard.", "counter",
		func(st cacheShardStats) float64 { return float64(st.hits) })
	cacheFamily("nanoxbar_cache_misses_total", "Cache misses by shard.", "counter",
		func(st cacheShardStats) float64 { return float64(st.misses) })
	cacheFamily("nanoxbar_cache_evictions_total", "Cache evictions by shard.", "counter",
		func(st cacheShardStats) float64 { return float64(st.evictions) })
	cacheFamily("nanoxbar_cache_loaded_total", "Cache entries seeded from a snapshot, by shard.", "counter",
		func(st cacheShardStats) float64 { return float64(st.loads) })
	cacheFamily("nanoxbar_cache_entries", "Live cache entries by shard.", "gauge",
		func(st cacheShardStats) float64 { return float64(st.entries) })

	// Process-wide lattice evaluation counters — the synthesis hot
	// path's work units, already tracked by internal/lattice.
	reg.CounterFunc("nanoxbar_lattice_scalar_evals_total",
		"Assignments walked by scalar lattice evaluation.",
		func() float64 { return float64(lattice.CounterSnapshot().ScalarEvals) })
	reg.CounterFunc("nanoxbar_lattice_fast_functions_total",
		"Bit-parallel function expansions.",
		func() float64 { return float64(lattice.CounterSnapshot().FastFunctions) })
	reg.CounterFunc("nanoxbar_lattice_fast_implements_total",
		"Bit-parallel Implements/feasibility checks.",
		func() float64 { return float64(lattice.CounterSnapshot().FastImplements) })
	reg.CounterFunc("nanoxbar_lattice_word_blocks_total",
		"64-assignment word blocks percolated.",
		func() float64 { return float64(lattice.CounterSnapshot().WordBlocks) })

	telemetry.RegisterGoMetrics(reg)
	return m
}

// observeRequest records one completed request of kind k.
func (m *engineMetrics) observeRequest(k Kind, d time.Duration) {
	if i := kindIndex(k); i >= 0 {
		m.reqDur[i].Observe(d)
	}
}
