package engine

import (
	"strconv"
	"time"

	"nanoxbar/internal/lattice"
	"nanoxbar/internal/telemetry"
)

// Stage names of the request pipeline, the label values of
// nanoxbar_stage_duration_seconds. Together they decompose a request's
// wall time: how long it sat in the pool queue, how long the cache
// lookup took (including waiting on another request's in-flight
// synthesis), how long a cold synthesis ran, and how long each die's
// defect draw + self-mapping took.
const (
	stageQueueWait   = "queue_wait"
	stageCacheLookup = "cache_lookup"
	stageSynthesize  = "synthesize"
	stageDieMap      = "die_map"
)

// Metric family names registered by the engine. One named constant per
// family — the metricnames analyzer (cmd/xbarvet) enforces the
// nanoxbar_ snake_case shape and repo-wide uniqueness at these consts.
const (
	metricRequestDuration      = "nanoxbar_request_duration_seconds"
	metricRequestsTotal        = "nanoxbar_requests_total"
	metricStageDuration        = "nanoxbar_stage_duration_seconds"
	metricRequestsInflight     = "nanoxbar_requests_inflight"
	metricRequestFailures      = "nanoxbar_request_failures_total"
	metricEngineShed           = "nanoxbar_engine_shed_total"
	metricEngineDegraded       = "nanoxbar_engine_degraded_total"
	metricEngineQueueDepth     = "nanoxbar_engine_queue_depth"
	metricEngineQueuedJobs     = "nanoxbar_engine_queued_jobs"
	metricSynthCalls           = "nanoxbar_synth_calls_total"
	metricDiesMapped           = "nanoxbar_dies_mapped_total"
	metricDefectMapsGenerated  = "nanoxbar_defect_maps_generated_total"
	metricMapAttempts          = "nanoxbar_map_attempts_total"
	metricDiesCheckedFast      = "nanoxbar_dies_checked_fast_total"
	metricDiesDemotedScalar    = "nanoxbar_dies_demoted_scalar_total"
	metricWorkers              = "nanoxbar_workers"
	metricCacheHits            = "nanoxbar_cache_hits_total"
	metricCacheMisses          = "nanoxbar_cache_misses_total"
	metricCacheEvictions       = "nanoxbar_cache_evictions_total"
	metricCacheLoaded          = "nanoxbar_cache_loaded_total"
	metricCacheEntries         = "nanoxbar_cache_entries"
	metricLatticeScalarEvals   = "nanoxbar_lattice_scalar_evals_total"
	metricLatticeFastFunctions = "nanoxbar_lattice_fast_functions_total"
	metricLatticeFastImpl      = "nanoxbar_lattice_fast_implements_total"
	metricLatticeWordBlocks    = "nanoxbar_lattice_word_blocks_total"
)

// engineMetrics holds the engine's telemetry handles. The histograms
// are observed on the hot path (lock-free, allocation-free); everything
// read from existing atomics or shard counters registers as a
// scrape-time closure so the counters are not maintained twice.
type engineMetrics struct {
	reg *telemetry.Registry

	// reqDur indexes per-kind request latency by the same kind index
	// the byKind counters use.
	reqDur [4]*telemetry.Histogram

	queueWait   *telemetry.Histogram
	cacheLookup *telemetry.Histogram
	synthesize  *telemetry.Histogram
	dieMap      *telemetry.Histogram

	inflight *telemetry.Gauge
}

// kindIndex maps a request kind onto the byKind/reqDur slot, -1 for
// unknown kinds.
func kindIndex(k Kind) int {
	switch k {
	case KindSynthesize:
		return 0
	case KindCompare:
		return 1
	case KindMap:
		return 2
	case KindYield:
		return 3
	}
	return -1
}

// newEngineMetrics builds the engine's registry: request and stage
// histograms (observed by the engine), counters mirrored from the
// engine's atomics, per-shard cache families walked at scrape time, the
// process-wide lattice evaluation counters, and the Go runtime set.
func newEngineMetrics(e *Engine) *engineMetrics {
	reg := telemetry.NewRegistry()
	m := &engineMetrics{reg: reg}

	for i, k := range []Kind{KindSynthesize, KindCompare, KindMap, KindYield} {
		kind := string(k)
		m.reqDur[i] = reg.Histogram(metricRequestDuration,
			"End-to-end request latency by kind, from worker pickup to result.",
			"kind", kind)
		idx := i
		reg.CounterFunc(metricRequestsTotal, "Requests executed by kind.",
			func() float64 { return float64(e.byKind[idx].Load()) }, "kind", kind)
	}
	m.queueWait = reg.Histogram(metricStageDuration,
		"Pipeline stage latency.", "stage", stageQueueWait)
	m.cacheLookup = reg.Histogram(metricStageDuration,
		"Pipeline stage latency.", "stage", stageCacheLookup)
	m.synthesize = reg.Histogram(metricStageDuration,
		"Pipeline stage latency.", "stage", stageSynthesize)
	m.dieMap = reg.Histogram(metricStageDuration,
		"Pipeline stage latency.", "stage", stageDieMap)
	m.inflight = reg.Gauge(metricRequestsInflight,
		"Requests currently executing on the worker pool.")

	counter := func(name, help string, v func() uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v()) })
	}
	counter(metricRequestFailures, "Requests that returned an error result.", e.failures.Load)
	counter(metricEngineShed, "Requests shed at admission: the job queue stayed saturated past the wait budget.", e.shed.Load)
	counter(metricEngineDegraded, "Requests served with the degraded fast-path synthesis options after excessive queue wait.", e.degradedReqs.Load)
	reg.GaugeFunc(metricEngineQueueDepth, "Job queue buffer size.",
		func() float64 { return float64(e.pool.depth()) })
	reg.GaugeFunc(metricEngineQueuedJobs, "Jobs waiting for a worker.",
		func() float64 { return float64(e.pool.queued()) })
	counter(metricSynthCalls, "Underlying core.Synthesize invocations (cache misses that ran).", e.synthCalls.Load)
	counter(metricDiesMapped, "Dies placed through the self-mapper.", e.diesMapped.Load)
	counter(metricDefectMapsGenerated, "Random defect maps drawn.", e.defectMaps.Load)
	counter(metricMapAttempts, "Self-mapping configurations spent across all dies.", e.mapAttempts.Load)
	counter(metricDiesCheckedFast, "Yield-sweep dies resolved by the lane path's word-parallel candidate schedule.", e.diesFast.Load)
	counter(metricDiesDemotedScalar, "Yield-sweep dies demoted to the scalar mapper after failing every candidate.", e.diesDemoted.Load)
	reg.GaugeFunc(metricWorkers, "Worker pool size.",
		func() float64 { return float64(e.workers) })

	// Per-shard cache families. Each family snapshots the shards at
	// scrape time (one mutex hop per shard), so the hot-path cache code
	// keeps its existing plain counters.
	cacheFamily := func(name, help, typ string, v func(cacheShardStats) float64) {
		reg.Collect(name, help, typ, func(emit func(string, float64)) {
			for i, st := range e.cache.perShard() {
				emit(telemetry.Label("shard", strconv.Itoa(i)), v(st))
			}
		})
	}
	cacheFamily(metricCacheHits, "Cache hits by shard.", "counter",
		func(st cacheShardStats) float64 { return float64(st.hits) })
	cacheFamily(metricCacheMisses, "Cache misses by shard.", "counter",
		func(st cacheShardStats) float64 { return float64(st.misses) })
	cacheFamily(metricCacheEvictions, "Cache evictions by shard.", "counter",
		func(st cacheShardStats) float64 { return float64(st.evictions) })
	cacheFamily(metricCacheLoaded, "Cache entries seeded from a snapshot, by shard.", "counter",
		func(st cacheShardStats) float64 { return float64(st.loads) })
	cacheFamily(metricCacheEntries, "Live cache entries by shard.", "gauge",
		func(st cacheShardStats) float64 { return float64(st.entries) })

	// Process-wide lattice evaluation counters — the synthesis hot
	// path's work units, already tracked by internal/lattice.
	reg.CounterFunc(metricLatticeScalarEvals,
		"Assignments walked by scalar lattice evaluation.",
		func() float64 { return float64(lattice.CounterSnapshot().ScalarEvals) })
	reg.CounterFunc(metricLatticeFastFunctions,
		"Bit-parallel function expansions.",
		func() float64 { return float64(lattice.CounterSnapshot().FastFunctions) })
	reg.CounterFunc(metricLatticeFastImpl,
		"Bit-parallel Implements/feasibility checks.",
		func() float64 { return float64(lattice.CounterSnapshot().FastImplements) })
	reg.CounterFunc(metricLatticeWordBlocks,
		"64-assignment word blocks percolated.",
		func() float64 { return float64(lattice.CounterSnapshot().WordBlocks) })

	telemetry.RegisterGoMetrics(reg)
	return m
}

// observeRequest records one completed request of kind k.
func (m *engineMetrics) observeRequest(k Kind, d time.Duration) {
	if i := kindIndex(k); i >= 0 {
		m.reqDur[i].Observe(d)
	}
}
