package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"nanoxbar/internal/apierr"
)

// TestSubmitBatchCtxCanceledUpfront: a context that is already dead
// must not run any request — every result is ErrCanceled.
func TestSubmitBatchCtxCanceledUpfront(t *testing.T) {
	e := New(Config{Workers: 2, CacheSize: 8})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Kind: KindMap, Function: FunctionSpec{Name: "maj3"}, Seed: int64(i), Density: 0.05}
	}
	results := e.SubmitBatchCtx(ctx, reqs)
	if len(results) != 16 {
		t.Fatalf("got %d results, want 16", len(results))
	}
	for i, r := range results {
		if r.Ok() {
			t.Fatalf("result %d ran despite canceled context: %+v", i, r)
		}
		if !errors.Is(r.Err, apierr.ErrCanceled) {
			t.Fatalf("result %d error %v, want ErrCanceled", i, r.Err)
		}
		if r.Code != apierr.CodeCanceled {
			t.Fatalf("result %d code %q, want %q", i, r.Code, apierr.CodeCanceled)
		}
	}
	// No synthesis ran.
	if st := e.Stats(); st.SynthCalls != 0 {
		t.Fatalf("synth calls %d, want 0", st.SynthCalls)
	}
}

// TestSubmitBatchCtxMidBatchCancellation: cancel while the batch is in
// flight on a single-worker engine; queued-but-unstarted requests must
// come back ErrCanceled instead of running to completion. Canceling
// from inside the first completion callback is deterministic: the
// single worker invokes done synchronously before dequeuing its next
// job, so every later request observes a dead context.
func TestSubmitBatchCtxMidBatchCancellation(t *testing.T) {
	e := New(Config{Workers: 1, CacheSize: 8})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const n = 64
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Kind: KindSynthesize, Function: FunctionSpec{Expr: "x1x2 + x3'"}}
	}
	var completed atomic.Int32
	results := make([]Result, n)
	e.SubmitStream(ctx, reqs, func(i int, r Result) {
		results[i] = r
		if completed.Add(1) == 1 {
			cancel()
		}
	}, nil)

	var ok, canceled int
	for i, r := range results {
		switch {
		case r.Ok():
			ok++
		case errors.Is(r.Err, apierr.ErrCanceled):
			canceled++
		default:
			t.Fatalf("result %d unexpected error %v", i, r.Err)
		}
	}
	if canceled == 0 {
		t.Fatalf("no request was canceled (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatal("expected at least the first request to complete")
	}
}

// TestYieldMidSweepCancellation: cancel a long yield sweep from its own
// per-die stream; the sweep must stop early and report ErrCanceled.
func TestYieldMidSweepCancellation(t *testing.T) {
	e := New(Config{Workers: 2, CacheSize: 8})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const chips = 5000
	var dies atomic.Int32
	res := e.DoStream(ctx, Request{
		Kind:     KindYield,
		Function: FunctionSpec{Name: "maj3"},
		Density:  0.05,
		Chips:    chips,
		Seed:     7,
	}, func(die int, mr *MapResult, err error) {
		if dies.Add(1) == 3 {
			cancel()
		}
	})
	if res.Ok() {
		t.Fatalf("canceled sweep succeeded: %+v", res.Yield)
	}
	if !errors.Is(res.Err, apierr.ErrCanceled) {
		t.Fatalf("sweep error %v, want ErrCanceled", res.Err)
	}
	if n := dies.Load(); n >= chips {
		t.Fatalf("sweep mapped all %d dies despite cancellation", n)
	}
}

// TestEngineErrorTaxonomy is the engine half of the taxonomy contract:
// each failure class surfaces the right sentinel and wire code.
func TestEngineErrorTaxonomy(t *testing.T) {
	e := New(Config{Workers: 2, CacheSize: 8})
	defer e.Close()

	tiny := &DefectMapSpec{Rows: []string{"..", ".."}} // 2×2 chip, too small for maj3
	cases := []struct {
		name     string
		req      Request
		sentinel error
		code     string
	}{
		{"unknown benchmark", Request{Kind: KindSynthesize, Function: FunctionSpec{Name: "nope"}}, apierr.ErrBadSpec, apierr.CodeBadSpec},
		{"bad expression", Request{Kind: KindSynthesize, Function: FunctionSpec{Expr: "x1 +* x2"}}, apierr.ErrBadSpec, apierr.CodeBadSpec},
		{"ambiguous spec", Request{Kind: KindSynthesize, Function: FunctionSpec{Name: "maj3", Expr: "x1"}}, apierr.ErrBadSpec, apierr.CodeBadSpec},
		{"bad tech", Request{Kind: KindSynthesize, Function: FunctionSpec{Name: "maj3"}, Tech: "cmos"}, apierr.ErrBadSpec, apierr.CodeBadSpec},
		{"bad scheme", Request{Kind: KindMap, Function: FunctionSpec{Name: "maj3"}, Scheme: "psychic"}, apierr.ErrBadSpec, apierr.CodeBadSpec},
		{"unknown kind", Request{Kind: Kind("divine"), Function: FunctionSpec{Name: "maj3"}}, apierr.ErrBadSpec, apierr.CodeBadSpec},
		{"chips over limit", Request{Kind: KindYield, Function: FunctionSpec{Name: "maj3"}, Chips: maxChips + 1}, apierr.ErrBadSpec, apierr.CodeBadSpec},
		{"chip too small", Request{Kind: KindMap, Function: FunctionSpec{Name: "maj3"}, Chip: tiny}, apierr.ErrInfeasible, apierr.CodeInfeasible},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := e.Do(tc.req)
			if res.Ok() {
				t.Fatalf("request unexpectedly succeeded: %+v", res)
			}
			if !errors.Is(res.Err, tc.sentinel) {
				t.Fatalf("error %v (%T), want sentinel %v", res.Err, res.Err, tc.sentinel)
			}
			if res.Code != tc.code {
				t.Fatalf("code %q, want %q", res.Code, tc.code)
			}
			// TypedErr must reconstruct the sentinel from the wire
			// fields alone, as a remote client would.
			wire := Result{Kind: res.Kind, Error: res.Error, Code: res.Code}
			if !errors.Is(wire.TypedErr(), tc.sentinel) {
				t.Fatalf("wire round-trip lost sentinel: %v", wire.TypedErr())
			}
			var ae *apierr.Error
			if !errors.As(res.Err, &ae) {
				t.Fatalf("errors.As(*apierr.Error) failed for %v", res.Err)
			}
		})
	}
}
