package engine

import (
	"errors"
	"testing"
	"time"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/core"
)

// occupyWorkers parks every pool worker on a blocking job, returning
// the release function. The test can then fill and overflow the queue
// deterministically.
func occupyWorkers(t *testing.T, e *Engine) (release func()) {
	t.Helper()
	block := make(chan struct{})
	for i := 0; i < e.workers; i++ {
		started := make(chan struct{})
		e.pool.jobs <- func() { close(started); <-block }
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("worker never picked up the blocking job")
		}
	}
	var released bool
	return func() {
		if !released {
			released = true
			close(block)
		}
	}
}

func TestAdmissionShedsWhenQueueSaturated(t *testing.T) {
	e := New(Config{Workers: 1, CacheSize: 8, QueueDepth: 1, MaxQueueWait: time.Millisecond})
	defer e.Close()
	release := occupyWorkers(t, e)
	defer release()
	e.pool.jobs <- func() {} // fill the single queue slot

	res := e.Do(Request{Kind: KindSynthesize, Function: FunctionSpec{TT: "2:0x6"}})
	if res.Ok() {
		t.Fatal("saturated engine accepted the request")
	}
	if !errors.Is(res.TypedErr(), apierr.ErrOverloaded) {
		t.Fatalf("TypedErr = %v, want ErrOverloaded", res.TypedErr())
	}
	if res.Code != apierr.CodeOverloaded {
		t.Fatalf("Code = %q, want %q", res.Code, apierr.CodeOverloaded)
	}
	if st := e.Stats(); st.Shed != 1 || st.Failures != 1 {
		t.Fatalf("stats: shed=%d failures=%d, want 1/1", st.Shed, st.Failures)
	}

	// Released workers drain the queue; the same request is admitted.
	release()
	if res := e.Do(Request{Kind: KindSynthesize, Function: FunctionSpec{TT: "2:0x6"}}); !res.Ok() {
		t.Fatalf("post-drain request failed: %s", res.Error)
	}
}

func TestAdmissionBlocksForeverWithoutBudget(t *testing.T) {
	// MaxQueueWait 0 preserves the original blocking submission: a full
	// queue delays, never sheds.
	e := New(Config{Workers: 1, CacheSize: 8, QueueDepth: 1})
	defer e.Close()
	release := occupyWorkers(t, e)
	e.pool.jobs <- func() {}
	go func() { time.Sleep(10 * time.Millisecond); release() }()

	res := e.Do(Request{Kind: KindSynthesize, Function: FunctionSpec{TT: "2:0x6"}})
	if !res.Ok() {
		t.Fatalf("blocking submission failed: %s (code %s)", res.Error, res.Code)
	}
	if st := e.Stats(); st.Shed != 0 {
		t.Fatalf("shed = %d, want 0", st.Shed)
	}
}

func TestDegradationAfterQueueWait(t *testing.T) {
	// DegradeAfter of 1ns: any real queue wait exceeds it, so every
	// request that does not pin Options runs degraded.
	e := New(Config{Workers: 2, CacheSize: 8, DegradeAfter: time.Nanosecond})
	defer e.Close()

	res := e.Do(Request{Kind: KindSynthesize, Function: FunctionSpec{Name: "maj3"}})
	if !res.Ok() {
		t.Fatalf("degraded request failed: %s", res.Error)
	}
	if !res.Degraded {
		t.Fatal("result not marked degraded")
	}
	if res.Synthesis == nil || res.Synthesis.Area <= 0 {
		t.Fatalf("degraded synthesis produced no implementation: %+v", res.Synthesis)
	}
	if st := e.Stats(); st.Degraded != 1 {
		t.Fatalf("degraded counter = %d, want 1", st.Degraded)
	}

	// Pinned options opt out of degradation.
	opts := core.DefaultOptions()
	res = e.Do(Request{Kind: KindSynthesize, Function: FunctionSpec{Name: "maj3"}, Options: &opts})
	if !res.Ok() || res.Degraded {
		t.Fatalf("pinned-options request: ok=%v degraded=%v", res.Ok(), res.Degraded)
	}
	if st := e.Stats(); st.Degraded != 1 {
		t.Fatalf("degraded counter moved for pinned options: %d", st.Degraded)
	}
}

func TestDegradedMatchesExactFunction(t *testing.T) {
	// The degraded path trades area, never correctness: both flows must
	// implement the same function (the engine's synth checks equivalence
	// internally; here we just confirm both succeed and the degraded
	// area is no better than exact).
	exact := New(Config{Workers: 1, CacheSize: 8})
	defer exact.Close()
	deg := New(Config{Workers: 1, CacheSize: 8, DegradeAfter: time.Nanosecond})
	defer deg.Close()

	for _, fn := range []string{"maj3", "xor4"} {
		re := exact.Do(Request{Kind: KindSynthesize, Function: FunctionSpec{Name: fn}})
		rd := deg.Do(Request{Kind: KindSynthesize, Function: FunctionSpec{Name: fn}})
		if !re.Ok() || !rd.Ok() {
			t.Fatalf("%s: exact ok=%v degraded ok=%v", fn, re.Ok(), rd.Ok())
		}
		if !rd.Degraded {
			t.Fatalf("%s: expected degraded result", fn)
		}
		if rd.Synthesis.Area < re.Synthesis.Area {
			t.Fatalf("%s: degraded area %d beat exact %d — exact flow regressed",
				fn, rd.Synthesis.Area, re.Synthesis.Area)
		}
	}
}
