// Per-die random sources. The engine reseeds a source for every die so
// yield results are independent of worker scheduling, but math/rand's
// default lagged-Fibonacci source pays a ~600-step table initialization
// per Seed — more expensive than generating the whole defect map it
// feeds. splitmixSource is a rand.Source64 with O(1) seeding
// (splitmix64, the standard seeder for xoshiro-family generators).

package engine

import "math/rand"

// splitmixSource implements rand.Source64 over splitmix64.
type splitmixSource struct {
	s uint64
}

// newDieRand returns a reseedable per-die RNG over a splitmix source.
// Call (*rand.Rand).Seed is not used; reseed through the returned
// source.
func newDieRand() (*splitmixSource, *rand.Rand) {
	src := &splitmixSource{}
	return src, rand.New(src)
}

// mix64 is the splitmix64 output finalizer: a bijective avalanche over
// the full 64-bit state.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Seed implements rand.Source. The raw seed is passed through the
// finalizer before becoming the counter state: subSeed strides dies by
// a multiple of splitmix64's own golden-ratio increment, so seeding
// with the raw value would make adjacent dies' streams one-draw-shifted
// copies of each other (die i+1's k-th draw = die i's (k−1)-th).
// Mixing first lands each die at an unrelated point of the state
// space, keeping the streams decorrelated.
func (s *splitmixSource) Seed(seed int64) { s.s = mix64(uint64(seed)) }

// Uint64 implements rand.Source64.
func (s *splitmixSource) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	return mix64(s.s)
}

// Int63 implements rand.Source.
func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }
