package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"nanoxbar/internal/core"
)

// fakeImp builds a distinguishable implementation without running
// synthesis.
func fakeImp(id int) *core.Implementation {
	return &core.Implementation{Rows: id, Cols: 1, Method: "fake"}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newCache(8)
	var calls atomic.Int64
	const goroutines = 64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	results := make([]*core.Implementation, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			imp, err, _ := c.getOrCompute("k", func() (*core.Implementation, error) {
				calls.Add(1)
				return fakeImp(7), nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
			results[g] = imp
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times for one key, want 1", got)
	}
	for g, imp := range results {
		if imp != results[0] {
			t.Fatalf("goroutine %d got a different instance", g)
		}
	}
	hits, misses, _, entries := c.counters()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, goroutines-1)
	}
	if entries != 1 {
		t.Fatalf("entries=%d, want 1", entries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(3)
	get := func(key string, id int) {
		t.Helper()
		imp, err, _ := c.getOrCompute(key, func() (*core.Implementation, error) {
			return fakeImp(id), nil
		})
		if err != nil || imp.Rows != id {
			t.Fatalf("get(%s): imp=%v err=%v", key, imp, err)
		}
	}
	// Recompute on re-miss must yield the recomputed value.
	get("a", 1)
	get("b", 2)
	get("c", 3)
	get("a", 1) // refresh a: LRU order b, c, a
	get("d", 4) // evicts b
	_, _, _, n := c.counters()
	if n != 3 {
		t.Fatalf("entries=%d, want 3", n)
	}
	var recomputed bool
	c.getOrCompute("b", func() (*core.Implementation, error) {
		recomputed = true
		return fakeImp(2), nil
	})
	if !recomputed {
		t.Fatal("evicted key b still cached")
	}
	c.getOrCompute("a", func() (*core.Implementation, error) {
		t.Fatal("recently used key a was evicted")
		return nil, nil
	})
	_, _, ev, _ := c.counters()
	if ev < 2 {
		t.Fatalf("evictions=%d, want >=2", ev)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newCache(4)
	boom := fmt.Errorf("boom")
	_, err, hit := c.getOrCompute("k", func() (*core.Implementation, error) { return nil, boom })
	if err != boom || hit {
		t.Fatalf("first call: err=%v hit=%v", err, hit)
	}
	imp, err, hit := c.getOrCompute("k", func() (*core.Implementation, error) { return fakeImp(1), nil })
	if err != nil || hit || imp.Rows != 1 {
		t.Fatalf("retry after error: imp=%v err=%v hit=%v", imp, err, hit)
	}
	imp, err, hit = c.getOrCompute("k", func() (*core.Implementation, error) {
		t.Fatal("recomputed a cached success")
		return nil, nil
	})
	if err != nil || !hit || imp.Rows != 1 {
		t.Fatalf("third call: imp=%v err=%v hit=%v", imp, err, hit)
	}
}

func TestCacheConcurrentManyKeys(t *testing.T) {
	// Hammer a small cache with more keys than capacity from many
	// goroutines; every call must observe its own key's value.
	c := newCache(4)
	const goroutines, rounds, keys = 16, 200, 12
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := (g + r) % keys
				key := fmt.Sprintf("k%d", id)
				imp, err, _ := c.getOrCompute(key, func() (*core.Implementation, error) {
					return fakeImp(id), nil
				})
				if err != nil || imp.Rows != id {
					t.Errorf("key %s returned imp=%v err=%v", key, imp, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	_, _, _, entries := c.counters()
	if entries > 4 {
		t.Fatalf("cache grew to %d entries, capacity 4", entries)
	}
}
