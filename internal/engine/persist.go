// Cache persistence: the engine's synthesis cache can be checkpointed
// to disk and reloaded at boot, so a restarted daemon answers
// previously-synthesized functions warm (internal/cachestore holds the
// format). Snapshots carry core.Fingerprint; a snapshot written by a
// binary with different synthesis behavior is refused wholesale.
package engine

import (
	"io"

	"nanoxbar/internal/cachestore"
	"nanoxbar/internal/core"
)

// WriteCacheSnapshot streams the completed cache entries to w. Entries
// still in flight are skipped — only finished results persist.
func (e *Engine) WriteCacheSnapshot(w io.Writer) (int, error) {
	entries := snapshotEntries(e.cache)
	return len(entries), cachestore.Write(w, core.Fingerprint(), entries)
}

// SaveCacheSnapshot atomically writes the cache to path, returning the
// number of entries persisted.
func (e *Engine) SaveCacheSnapshot(path string) (int, error) {
	entries := snapshotEntries(e.cache)
	return len(entries), cachestore.Save(path, core.Fingerprint(), entries)
}

// ReadCacheSnapshot seeds the cache from a snapshot stream. Existing
// entries win over persisted ones; the returned count is the number of
// entries actually inserted. Loading is additive — it never evicts live
// results, beyond the cache's own capacity bound.
func (e *Engine) ReadCacheSnapshot(r io.Reader) (int, error) {
	_, entries, err := cachestore.Read(r, core.Fingerprint())
	if err != nil {
		return 0, err
	}
	return e.seed(entries), nil
}

// LoadCacheSnapshot seeds the cache from the snapshot at path.
func (e *Engine) LoadCacheSnapshot(path string) (int, error) {
	entries, err := cachestore.Load(path, core.Fingerprint())
	if err != nil {
		return 0, err
	}
	return e.seed(entries), nil
}

func (e *Engine) seed(entries []cachestore.Entry) int {
	n := 0
	for _, en := range entries {
		if e.cache.insert(en.Key, en.Imp) {
			n++
		}
	}
	return n
}

func snapshotEntries(c *shardedCache) []cachestore.Entry {
	snap := c.snapshot()
	entries := make([]cachestore.Entry, len(snap))
	for i, s := range snap {
		entries[i] = cachestore.Entry{Key: s.Key, Imp: s.Imp}
	}
	return entries
}
