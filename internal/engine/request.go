// Request and Result are the typed units of work the engine executes.
// They are plain data with JSON tags, so the same structs travel
// in-process (SubmitBatch), over HTTP (cmd/xbarserverd), and in batch
// files without translation layers.
package engine

import (
	"strings"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/bexpr"
	"nanoxbar/internal/bism"
	"nanoxbar/internal/core"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/truthtab"
)

// Kind selects the scenario a Request runs.
type Kind string

// Request kinds.
const (
	// KindSynthesize implements the function on one technology
	// (defect-free, shared across chips — the cacheable step).
	KindSynthesize Kind = "synthesize"
	// KindCompare synthesizes on all three technologies side by side.
	KindCompare Kind = "compare"
	// KindMap synthesizes (via the cache) and then places the result
	// on one defective chip with a self-mapping scheme.
	KindMap Kind = "map"
	// KindYield synthesizes once and maps onto Chips independently
	// drawn defective dies, aggregating recovery statistics.
	KindYield Kind = "yield"
)

// FunctionSpec names the target Boolean function in exactly one of
// three ways: a benchmark suite name, a Boolean expression, or a raw
// truth table in truthtab.Parse form ("3:0x96").
type FunctionSpec struct {
	Name string `json:"name,omitempty"` // benchfn suite name, e.g. "maj5"
	Expr string `json:"expr,omitempty"` // bexpr expression, e.g. "x1x2 + x3'"
	TT   string `json:"tt,omitempty"`   // truth table literal, e.g. "3:0x96"
}

// Resolve elaborates the spec into a truth table.
func (fs FunctionSpec) Resolve() (truthtab.TT, error) {
	set := 0
	for _, s := range []string{fs.Name, fs.Expr, fs.TT} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return truthtab.TT{}, apierr.BadSpec("engine: function spec must set exactly one of name/expr/tt, got %d", set)
	}
	switch {
	case fs.Name != "":
		spec, ok := benchfn.ByName(fs.Name)
		if !ok {
			return truthtab.TT{}, apierr.BadSpec("engine: unknown benchmark function %q", fs.Name)
		}
		return spec.F, nil
	case fs.Expr != "":
		f, _, err := bexpr.ParseTT(fs.Expr)
		if err != nil {
			return truthtab.TT{}, apierr.BadSpec("engine: %v", err)
		}
		return f, nil
	default:
		f, err := truthtab.Parse(fs.TT)
		if err != nil {
			return truthtab.TT{}, apierr.BadSpec("engine: %v", err)
		}
		return f, nil
	}
}

// DefectMapSpec is the wire form of a defect.Map: crosspoints as one
// string per row ('.', 'o' stuck-open, 'c' stuck-closed), wire faults
// as index lists.
type DefectMapSpec struct {
	Rows       []string `json:"rows"`
	RowBroken  []int    `json:"row_broken,omitempty"`
	ColBroken  []int    `json:"col_broken,omitempty"`
	RowBridges []int    `json:"row_bridges,omitempty"` // bridge between r and r+1
	ColBridges []int    `json:"col_bridges,omitempty"`
}

// ToMap decodes the spec.
func (s DefectMapSpec) ToMap() (*defect.Map, error) {
	if len(s.Rows) == 0 || len(s.Rows[0]) == 0 {
		return nil, apierr.BadSpec("engine: empty defect map")
	}
	r, c := len(s.Rows), len(s.Rows[0])
	m := defect.NewMap(r, c)
	for ri, row := range s.Rows {
		if len(row) != c {
			return nil, apierr.BadSpec("engine: ragged defect map: row %d has %d columns, want %d", ri, len(row), c)
		}
		for ci := 0; ci < c; ci++ {
			switch row[ci] {
			case '.':
			case 'o':
				m.Set(ri, ci, defect.StuckOpen)
			case 'c':
				m.Set(ri, ci, defect.StuckClosed)
			default:
				return nil, apierr.BadSpec("engine: bad defect char %q at (%d,%d)", row[ci], ri, ci)
			}
		}
	}
	mark := func(n int, set func(int), idx []int, what string) error {
		for _, i := range idx {
			if i < 0 || i >= n {
				return apierr.BadSpec("engine: %s index %d out of range [0,%d)", what, i, n)
			}
			set(i)
		}
		return nil
	}
	if err := mark(r, func(i int) { m.SetRowBroken(i, true) }, s.RowBroken, "row_broken"); err != nil {
		return nil, err
	}
	if err := mark(c, func(i int) { m.SetColBroken(i, true) }, s.ColBroken, "col_broken"); err != nil {
		return nil, err
	}
	if err := mark(r-1, func(i int) { m.SetRowBridge(i, true) }, s.RowBridges, "row_bridges"); err != nil {
		return nil, err
	}
	if err := mark(c-1, func(i int) { m.SetColBridge(i, true) }, s.ColBridges, "col_bridges"); err != nil {
		return nil, err
	}
	return m, nil
}

// FromMap encodes a defect map into its wire form.
func FromMap(m *defect.Map) DefectMapSpec {
	var s DefectMapSpec
	s.Rows = make([]string, m.R)
	for r := 0; r < m.R; r++ {
		var sb strings.Builder
		for c := 0; c < m.C; c++ {
			switch m.At(r, c) {
			case defect.StuckOpen:
				sb.WriteByte('o')
			case defect.StuckClosed:
				sb.WriteByte('c')
			default:
				sb.WriteByte('.')
			}
		}
		s.Rows[r] = sb.String()
	}
	pick := func(n int, get func(int) bool) []int {
		var idx []int
		for i := 0; i < n; i++ {
			if get(i) {
				idx = append(idx, i)
			}
		}
		return idx
	}
	s.RowBroken = pick(m.R, m.RowBroken)
	s.ColBroken = pick(m.C, m.ColBroken)
	s.RowBridges = pick(m.R-1, m.RowBridge)
	s.ColBridges = pick(m.C-1, m.ColBridge)
	return s
}

// Request is one unit of work.
type Request struct {
	Kind     Kind         `json:"kind"`
	Function FunctionSpec `json:"function"`
	// Tech is the target technology ("diode", "fet", "lattice");
	// default lattice. Ignored by KindCompare.
	Tech string `json:"tech,omitempty"`
	// Options override core.DefaultOptions when non-nil. The struct is
	// part of the cache key, so distinct options never share results.
	Options *core.Options `json:"options,omitempty"`

	// Per-chip fields (KindMap, KindYield).

	// Scheme is the self-mapping scheme: "blind", "greedy" (default),
	// or "hybrid".
	Scheme string `json:"scheme,omitempty"`
	// MaxAttempts bounds the scheme's configuration budget (default 200).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Seed makes the request reproducible: it seeds the per-job RNG
	// used for defect drawing and mapping randomness.
	Seed int64 `json:"seed,omitempty"`
	// Chip supplies an explicit defect map (KindMap only). When nil, a
	// map is drawn from Density/ChipSize with the request seed.
	Chip *DefectMapSpec `json:"chip,omitempty"`
	// ChipSize is the side of the square chip for random draws;
	// default 2·max(app rows, app cols).
	ChipSize int `json:"chip_size,omitempty"`
	// Density is the crosspoint defect density for random draws
	// (uniform, 80/20 stuck-open/stuck-closed).
	Density float64 `json:"density,omitempty"`
	// Chips is the number of dies a KindYield request sweeps
	// (default 100). Die i uses a deterministic sub-seed of Seed.
	Chips int `json:"chips,omitempty"`
}

// SynthesisResult summarizes one synthesized implementation.
type SynthesisResult struct {
	Tech     string `json:"tech"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	Area     int    `json:"area"`
	Method   string `json:"method"`
	CacheHit bool   `json:"cache_hit"`
	Key      string `json:"key"` // canonical cache key (core.CacheKey)
}

// CompareResult reports all three technologies for one function.
type CompareResult struct {
	Diode   SynthesisResult `json:"diode"`
	FET     SynthesisResult `json:"fet"`
	Lattice SynthesisResult `json:"lattice"`
}

// MapResult is the outcome of placing an implementation on one chip.
type MapResult struct {
	Success   bool  `json:"success"`
	Configs   int   `json:"configs"`
	BISTCalls int   `json:"bist_calls"`
	BISDCalls int   `json:"bisd_calls"`
	ChipSize  int   `json:"chip_size"`
	Rows      []int `json:"rows,omitempty"` // physical row of each logical row
	Cols      []int `json:"cols,omitempty"`
}

// YieldResult aggregates recovery statistics over a batch of dies.
type YieldResult struct {
	Chips       int     `json:"chips"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	AvgConfigs  float64 `json:"avg_configs"`
	AvgBIST     float64 `json:"avg_bist"`
	AvgBISD     float64 `json:"avg_bisd"`
}

// Result is the outcome of one Request. Exactly one payload field is
// set on success; on failure Err carries the typed error (classified
// per internal/apierr, compare with errors.Is), while Error and Code
// are its wire projections for JSON transport.
type Result struct {
	Kind      Kind             `json:"kind"`
	Error     string           `json:"error,omitempty"`
	Code      string           `json:"code,omitempty"` // apierr wire code, set iff Error is
	Synthesis *SynthesisResult `json:"synthesis,omitempty"`
	Compare   *CompareResult   `json:"compare,omitempty"`
	Map       *MapResult       `json:"map,omitempty"`
	Yield     *YieldResult     `json:"yield,omitempty"`

	// Degraded marks a result produced with the engine's fast-path
	// synthesis options after the request overran its queue-wait budget
	// (correct, but not area-optimal). Never set when the request
	// pinned explicit Options.
	Degraded bool `json:"degraded,omitempty"`

	// Err is the typed failure for in-process callers. It does not
	// travel over the wire; remote callers reconstruct it from Code via
	// apierr.FromCode.
	Err error `json:"-"`
}

// Ok reports whether the request succeeded.
func (r Result) Ok() bool { return r.Err == nil && r.Error == "" }

// TypedErr returns the typed failure of the result, reconstructing it
// from the wire code when the result crossed a process boundary (where
// Err does not survive JSON). Nil for successful results.
func (r Result) TypedErr() error {
	if r.Err != nil {
		return r.Err
	}
	if r.Error == "" {
		return nil
	}
	code := r.Code
	if code == "" {
		code = apierr.CodeInternal
	}
	return apierr.FromCode(code, r.Error)
}

// errResult wraps an error into a Result, classifying it into the
// apierr taxonomy.
func errResult(kind Kind, err error) Result {
	err = apierr.Classify(err)
	return Result{Kind: kind, Error: err.Error(), Code: apierr.CodeOf(err), Err: err}
}

// parseScheme resolves the wire scheme name.
func parseScheme(s string) (bism.Mapper, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "greedy":
		return bism.Greedy{}, nil
	case "blind":
		return bism.Blind{}, nil
	case "hybrid":
		return bism.Hybrid{}, nil
	}
	return nil, apierr.BadSpec("engine: unknown mapping scheme %q (want blind|greedy|hybrid)", s)
}
