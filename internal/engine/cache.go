package engine

import (
	"container/list"
	"sync"

	"nanoxbar/internal/core"
)

// flight is one cache slot: either a completed synthesis result or a
// computation in progress that followers wait on. Completed flights are
// immutable; the Implementation they hold is shared read-only across
// every request that hits the slot.
type flight struct {
	done chan struct{} // closed when imp/err are final
	imp  *core.Implementation
	err  error
}

// cache is a canonicalizing LRU over synthesis results with in-flight
// deduplication: concurrent misses for one key run the compute function
// exactly once, and followers block on the leader's flight instead of
// recomputing. Eviction only removes completed entries, oldest first.
//
// One cache guards its map with a single mutex, so it is also the
// contention unit: the engine stripes keys across many of them via
// shardedCache rather than growing one lock's critical section.
type cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // key → element whose Value is *cacheNode
	order    *list.List               // front = most recently used

	hits, misses, evictions, loads uint64
}

type cacheNode struct {
	key string
	fl  *flight
}

func newCache(capacity int) *cache {
	if capacity < 1 {
		capacity = 1
	}
	return &cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// getOrCompute returns the cached result for key, computing it with fn
// on a miss. The boolean reports a hit: true whenever this call did not
// itself run fn (including when it waited on another goroutine's
// in-flight computation). Failed computations are removed so later
// calls retry.
func (c *cache) getOrCompute(key string, fn func() (*core.Implementation, error)) (*core.Implementation, error, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		fl := el.Value.(*cacheNode).fl
		c.mu.Unlock()
		<-fl.done
		return fl.imp, fl.err, true
	}
	fl := &flight{done: make(chan struct{})}
	el := c.order.PushFront(&cacheNode{key: key, fl: fl})
	c.entries[key] = el
	c.misses++
	c.evictLocked()
	c.mu.Unlock()

	fl.imp, fl.err = fn()
	close(fl.done)
	if fl.err != nil {
		c.mu.Lock()
		// Only remove our own flight: the slot may already have been
		// evicted and repopulated by a retry.
		if cur, ok := c.entries[key]; ok && cur.Value.(*cacheNode).fl == fl {
			c.order.Remove(cur)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return fl.imp, fl.err, false
}

// peek returns the completed, successful entry for key without
// computing, blocking on an in-flight slot, touching the LRU order, or
// counting a hit/miss. It exists for the cluster peer-fill route: a
// sibling's lookup must not distort this node's own hit-rate
// accounting, and it must never wait behind a running synthesis.
func (c *cache) peek(key string) (*core.Implementation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	fl := el.Value.(*cacheNode).fl
	select {
	case <-fl.done:
		if fl.err == nil && fl.imp != nil {
			return fl.imp, true
		}
		return nil, false
	default: // still computing — report a miss rather than block
		return nil, false
	}
}

// evictLocked trims completed entries from the LRU tail until the cache
// fits its capacity. In-flight entries are skipped — evicting them
// would duplicate running syntheses.
func (c *cache) evictLocked() {
	for el := c.order.Back(); el != nil && c.order.Len() > c.capacity; {
		prev := el.Prev()
		node := el.Value.(*cacheNode)
		select {
		case <-node.fl.done:
			c.order.Remove(el)
			delete(c.entries, node.key)
			c.evictions++
		default: // still computing
		}
		el = prev
	}
}

// counters returns a consistent snapshot of the cache statistics.
func (c *cache) counters() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len()
}

// insert seeds a completed entry, used when warming the cache from a
// snapshot. An existing slot for the key wins — live results (possibly
// in flight) are never replaced by persisted ones. The entry lands at
// the LRU front, so a snapshot is replayed oldest-first to preserve
// recency order.
func (c *cache) insert(key string, imp *core.Implementation) bool {
	fl := &flight{done: make(chan struct{}), imp: imp}
	close(fl.done)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.entries[key] = c.order.PushFront(&cacheNode{key: key, fl: fl})
	c.loads++
	c.evictLocked()
	return true
}

// snapshot appends the completed entries in eviction order (least
// recently used first) to dst. In-flight computations are skipped: a
// snapshot taken mid-synthesis persists only finished results.
func (c *cache) snapshot(dst []SnapshotEntry) []SnapshotEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Back(); el != nil; el = el.Prev() {
		node := el.Value.(*cacheNode)
		select {
		case <-node.fl.done:
			if node.fl.err == nil && node.fl.imp != nil {
				dst = append(dst, SnapshotEntry{Key: node.key, Imp: node.fl.imp})
			}
		default: // still computing
		}
	}
	return dst
}

// SnapshotEntry is one persisted cache slot: the canonical key and the
// immutable implementation it maps to.
type SnapshotEntry struct {
	Key string
	Imp *core.Implementation
}

// shardedCache stripes the synthesis cache across independent
// single-lock shards so cache-hit traffic scales with GOMAXPROCS
// instead of serializing on one mutex. Keys are assigned to shards by
// FNV-1a hash; each shard keeps its own LRU order and singleflight
// slots, and the aggregate statistics are the sum over shards.
type shardedCache struct {
	shards []*cache
	mask   uint64
}

// newShardedCache builds a cache of roughly `capacity` total entries
// striped over `shards` shards (rounded up to a power of two).
func newShardedCache(capacity, shards int) *shardedCache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacity < 1 {
		capacity = 1
	}
	per := (capacity + n - 1) / n
	s := &shardedCache{shards: make([]*cache, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i] = newCache(per)
	}
	return s
}

// shardFor hashes the key onto its shard with FNV-1a over at most the
// first 16 bytes. Keys are sha-256 hex strings, so a 16-char prefix is
// already uniformly distributed; bounding the hash keeps the shard pick
// a few nanoseconds instead of scaling with key length.
func (s *shardedCache) shardFor(key string) *cache {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	n := len(key)
	if n > 16 {
		n = 16
	}
	h := uint64(offset64)
	for i := 0; i < n; i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return s.shards[h&s.mask]
}

func (s *shardedCache) getOrCompute(key string, fn func() (*core.Implementation, error)) (*core.Implementation, error, bool) {
	return s.shardFor(key).getOrCompute(key, fn)
}

func (s *shardedCache) insert(key string, imp *core.Implementation) bool {
	return s.shardFor(key).insert(key, imp)
}

func (s *shardedCache) peek(key string) (*core.Implementation, bool) {
	return s.shardFor(key).peek(key)
}

// snapshot collects the completed entries of every shard,
// least-recently-used first within each shard.
func (s *shardedCache) snapshot() []SnapshotEntry {
	var dst []SnapshotEntry
	for _, sh := range s.shards {
		dst = sh.snapshot(dst)
	}
	return dst
}

// counters sums the per-shard statistics, locking one shard at a time.
// The totals are approximate under concurrent traffic (shard 0's count
// is read before shard N's moves), which is fine for observability —
// holding every shard lock at once would turn each /healthz or /stats
// poll into exactly the global serialization point sharding removed.
func (s *shardedCache) counters() (hits, misses, evictions, loads uint64, entries int) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		evictions += sh.evictions
		loads += sh.loads
		entries += sh.order.Len()
		sh.mu.Unlock()
	}
	return hits, misses, evictions, loads, entries
}

// cacheShardStats is one shard's statistics snapshot, consumed by the
// metrics registry's per-shard families.
type cacheShardStats struct {
	hits, misses, evictions, loads uint64
	entries                        int
}

// perShard snapshots every shard's statistics, locking one shard at a
// time (the same consistency tradeoff as counters).
func (s *shardedCache) perShard() []cacheShardStats {
	out := make([]cacheShardStats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = cacheShardStats{sh.hits, sh.misses, sh.evictions, sh.loads, sh.order.Len()}
		sh.mu.Unlock()
	}
	return out
}

// capacity is the summed shard capacity (≥ the requested total due to
// per-shard rounding).
func (s *shardedCache) capacity() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.capacity
	}
	return total
}
