package engine

import (
	"container/list"
	"sync"

	"nanoxbar/internal/core"
)

// flight is one cache slot: either a completed synthesis result or a
// computation in progress that followers wait on. Completed flights are
// immutable; the Implementation they hold is shared read-only across
// every request that hits the slot.
type flight struct {
	done chan struct{} // closed when imp/err are final
	imp  *core.Implementation
	err  error
}

// cache is a canonicalizing LRU over synthesis results with in-flight
// deduplication: concurrent misses for one key run the compute function
// exactly once, and followers block on the leader's flight instead of
// recomputing. Eviction only removes completed entries, oldest first.
type cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // key → element whose Value is *cacheNode
	order    *list.List               // front = most recently used

	hits, misses, evictions uint64
}

type cacheNode struct {
	key string
	fl  *flight
}

func newCache(capacity int) *cache {
	if capacity < 1 {
		capacity = 1
	}
	return &cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// getOrCompute returns the cached result for key, computing it with fn
// on a miss. The boolean reports a hit: true whenever this call did not
// itself run fn (including when it waited on another goroutine's
// in-flight computation). Failed computations are removed so later
// calls retry.
func (c *cache) getOrCompute(key string, fn func() (*core.Implementation, error)) (*core.Implementation, error, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		fl := el.Value.(*cacheNode).fl
		c.mu.Unlock()
		<-fl.done
		return fl.imp, fl.err, true
	}
	fl := &flight{done: make(chan struct{})}
	el := c.order.PushFront(&cacheNode{key: key, fl: fl})
	c.entries[key] = el
	c.misses++
	c.evictLocked()
	c.mu.Unlock()

	fl.imp, fl.err = fn()
	close(fl.done)
	if fl.err != nil {
		c.mu.Lock()
		// Only remove our own flight: the slot may already have been
		// evicted and repopulated by a retry.
		if cur, ok := c.entries[key]; ok && cur.Value.(*cacheNode).fl == fl {
			c.order.Remove(cur)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return fl.imp, fl.err, false
}

// evictLocked trims completed entries from the LRU tail until the cache
// fits its capacity. In-flight entries are skipped — evicting them
// would duplicate running syntheses.
func (c *cache) evictLocked() {
	for el := c.order.Back(); el != nil && c.order.Len() > c.capacity; {
		prev := el.Prev()
		node := el.Value.(*cacheNode)
		select {
		case <-node.fl.done:
			c.order.Remove(el)
			delete(c.entries, node.key)
			c.evictions++
		default: // still computing
		}
		el = prev
	}
}

// counters returns a consistent snapshot of the cache statistics.
func (c *cache) counters() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len()
}
