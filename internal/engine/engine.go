// Package engine turns the nanoxbar library into a concurrent serving
// backend. The DATE'17 flow splits naturally into a shared, defect-free
// synthesis step (identical across every die that implements a
// function) and a per-chip mapping step (each fabricated crossbar has a
// unique defect map). The engine exploits that split: synthesis results
// live in a canonicalizing LRU cache keyed by core.CacheKey, so one
// core.Synthesize call serves millions of per-chip requests, while a
// bounded worker pool fans the per-chip bism mapping jobs out across
// goroutines with per-job seeded RNGs for reproducibility.
package engine

import (
	"context"
	"errors"
	"log/slog"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/bism"
	"nanoxbar/internal/core"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/qm"
	"nanoxbar/internal/resilience"
	"nanoxbar/internal/telemetry"
	"nanoxbar/internal/truthtab"
	"nanoxbar/internal/xrand"
	"nanoxbar/internal/yield"
)

// Config sizes the engine.
type Config struct {
	// Workers is the size of the worker pool (default runtime.NumCPU()).
	Workers int
	// CacheSize bounds the synthesis LRU entry count (default 1024),
	// summed across shards.
	CacheSize int
	// CacheShards is the number of independent cache shards (rounded up
	// to a power of two). Default: the smallest power of two ≥ 4×Workers,
	// capped at 256 — enough stripes that hit traffic rarely contends.
	CacheShards int
	// Logger receives per-request debug logs (kind, duration, outcome,
	// request ID when the context carries one). Nil discards.
	Logger *slog.Logger

	// QueueDepth bounds the job queue (default 4×Workers). Submissions
	// beyond Workers running + QueueDepth queued wait for space.
	QueueDepth int
	// MaxQueueWait is the admission-control budget: a submission that
	// cannot get queue space within it is shed with an
	// apierr.ErrOverloaded result instead of blocking. 0 preserves the
	// pre-admission-control behavior of blocking indefinitely.
	MaxQueueWait time.Duration
	// DegradeAfter is the degradation threshold: a request that sat in
	// the queue longer than this, and that did not pin explicit Options,
	// runs with the fast degraded synthesis options (greedy SOP, no
	// exact search, no post-reduction) instead of the defaults, trading
	// area optimality for latency under load. 0 disables degradation.
	DegradeAfter time.Duration

	// Yield executes KindYield sweeps (default yield.LaneRunner{}, the
	// bit-sliced 64-dies-per-word path; yield.ScalarRunner{} is the
	// retained scalar reference).
	Yield yield.Runner
}

// defaultMaxAttempts bounds self-mapping effort when a request does not
// say otherwise; it matches the budget the paper's E7 sweep uses for
// mid-size chips.
const defaultMaxAttempts = 200

// defaultYieldChips is the die count of a KindYield request that leaves
// Chips unset.
const defaultYieldChips = 100

// Request bounds. These fields drive allocations proportional to their
// value, so untrusted requests must not pick them freely: a yield sweep
// allocates per-die state, a random chip draw allocates ChipSize².
const (
	maxChips       = 100_000
	maxChipSize    = 4096
	maxMaxAttempts = 1_000_000
)

// Engine executes Requests over a shared synthesis cache and a bounded
// worker pool. It is safe for concurrent use; Close releases the
// workers (no Submit/Do may follow Close).
type Engine struct {
	cache        *shardedCache
	pool         *pool
	workers      int
	maxQueueWait time.Duration
	degradeAfter time.Duration
	met          *engineMetrics
	logger       *slog.Logger

	requests   atomic.Uint64
	failures   atomic.Uint64
	synthCalls atomic.Uint64
	byKind     [4]atomic.Uint64 // synthesize, compare, map, yield

	// Admission-control counters: requests shed at the queue (typed
	// apierr.ErrOverloaded, never run) and requests served with the
	// degraded fast-path synthesis options after excessive queue wait.
	shed         atomic.Uint64
	degradedReqs atomic.Uint64

	// Fault-path counters: dies placed through the self-mapper, random
	// defect maps drawn, and total self-mapping configurations spent —
	// mean attempts per die is mapAttempts/diesMapped. diesFast counts
	// yield-sweep dies resolved by the lane fast path's candidate
	// schedule; diesDemoted counts the ones that fell back to the scalar
	// mapper.
	diesMapped  atomic.Uint64
	defectMaps  atomic.Uint64
	mapAttempts atomic.Uint64
	diesFast    atomic.Uint64
	diesDemoted atomic.Uint64

	// peerFill, when set, is consulted on a cache miss before local
	// synthesis — the cluster tier's chance to fetch the owner's cached
	// implementation instead of recomputing it.
	peerFill atomic.Pointer[PeerFillFunc]

	yield yield.Runner
}

// PeerFillFunc resolves a cache key against a remote source. It
// returns nil on any miss or failure; it must never block past its own
// internal timeout, because it runs inside the cache flight and every
// waiter for the key is behind it.
type PeerFillFunc func(ctx context.Context, key string) *core.Implementation

// SetPeerFill installs (or, with nil, removes) the cache-miss peer
// fill hook. Safe to call at any time; typically wired once at daemon
// startup before traffic.
func (e *Engine) SetPeerFill(fn PeerFillFunc) {
	if fn == nil {
		e.peerFill.Store(nil)
		return
	}
	e.peerFill.Store(&fn)
}

// PeekCached returns the completed cached implementation for key, if
// any, without computing, blocking, or perturbing the hit/miss
// statistics. It backs the cluster peer-fill route. The returned
// Implementation is shared and must be treated as read-only.
func (e *Engine) PeekCached(key string) (*core.Implementation, bool) {
	return e.cache.peek(key)
}

// KeyFor resolves a request's function/technology/options and returns
// its canonical cache key. This is the routing key the cluster tier
// hashes; it errors exactly when serving the request would produce a
// typed bad-spec result.
func (e *Engine) KeyFor(req Request) (string, error) {
	f, tech, opts, _, err := e.resolve(req, false)
	if err != nil {
		return "", err
	}
	return core.CacheKey(f, tech, opts), nil
}

// New starts an engine.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = defaultCacheShards(cfg.Workers)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Yield == nil {
		cfg.Yield = yield.LaneRunner{}
	}
	e := &Engine{
		cache:        newShardedCache(cfg.CacheSize, cfg.CacheShards),
		pool:         newPool(cfg.Workers, cfg.QueueDepth),
		workers:      cfg.Workers,
		maxQueueWait: cfg.MaxQueueWait,
		degradeAfter: cfg.DegradeAfter,
		logger:       cfg.Logger,
		yield:        cfg.Yield,
	}
	e.met = newEngineMetrics(e)
	return e
}

// Registry exposes the engine's telemetry registry — request/stage
// latency histograms, cache and fault-path counters, and Go runtime
// stats — for the daemon's /metrics endpoint. The HTTP layer registers
// its own families on the same registry.
func (e *Engine) Registry() *telemetry.Registry { return e.met.reg }

// defaultCacheShards picks the shard count for a pool of `workers`
// goroutines: 4× oversubscription keeps the probability of two hot
// lookups colliding on one shard's mutex low, capped so tiny caches are
// not shredded into hundreds of near-empty LRUs.
func defaultCacheShards(workers int) int {
	n := 4 * workers
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return n
}

// Close stops the worker pool after draining queued jobs.
func (e *Engine) Close() { e.pool.close() }

// Synthesize implements f on tech through the cache. The returned
// Implementation is shared: callers must treat it as read-only. The
// boolean reports a cache hit.
func (e *Engine) Synthesize(f truthtab.TT, tech core.Technology, opts core.Options) (*core.Implementation, bool, error) {
	imp, _, hit, err := e.synthKeyed(context.Background(), f, tech, opts)
	return imp, hit, err
}

// synthKeyed is Synthesize plus the cache key, which is a SHA-256 over
// the full truth table — computed once here and reused by callers that
// report it. The context is checked on entry; the synthesis itself runs
// detached from it, because a cache flight is shared work — a canceled
// leader must not poison the result for concurrent followers of the
// same key.
func (e *Engine) synthKeyed(ctx context.Context, f truthtab.TT, tech core.Technology, opts core.Options) (*core.Implementation, string, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", false, apierr.Canceled(err)
	}
	key := core.CacheKey(f, tech, opts)
	lookup := time.Now()
	imp, err, hit := e.cache.getOrCompute(key, func() (*core.Implementation, error) {
		// Cluster peer fill: a cold slot may be warm in the key owner's
		// cache. Runs detached from the caller's context for the same
		// reason the synthesis does — the flight's result is shared.
		if fill := e.peerFill.Load(); fill != nil {
			if imp := (*fill)(context.WithoutCancel(ctx), key); imp != nil {
				return imp, nil
			}
		}
		e.synthCalls.Add(1)
		start := time.Now()
		imp, err := core.SynthesizeCtx(context.WithoutCancel(ctx), f, tech, opts)
		e.met.synthesize.Observe(time.Since(start))
		return imp, err
	})
	if hit {
		// The hit path (including waiting out another request's flight)
		// is the cache_lookup stage; a miss's time is the synthesize
		// stage, observed inside the compute function.
		e.met.cacheLookup.Observe(time.Since(lookup))
	}
	return imp, key, hit, err
}

// DieFunc observes per-die outcomes of a yield sweep as dies complete
// (completion order, not die order). Exactly one of mr/err is non-nil.
type DieFunc func(die int, mr *MapResult, err error)

// Do executes one request on the worker pool and waits for its result.
func (e *Engine) Do(req Request) Result {
	return e.DoCtx(context.Background(), req)
}

// DoCtx executes one request on the worker pool, honoring cancellation:
// a context canceled before the request starts yields an
// apierr.ErrCanceled result without running it; a yield sweep canceled
// mid-flight stops mapping further dies.
func (e *Engine) DoCtx(ctx context.Context, req Request) Result {
	return e.DoStream(ctx, req, nil)
}

// DoStream is DoCtx plus per-die streaming for KindYield requests:
// onDie (when non-nil) fires as each die completes, before the
// aggregate result returns. Calls to onDie are serialized.
func (e *Engine) DoStream(ctx context.Context, req Request, onDie DieFunc) Result {
	var res Result
	e.SubmitStream(ctx, []Request{req},
		func(_ int, r Result) { res = r },
		func(_ int, die int, mr *MapResult, err error) {
			if onDie != nil {
				onDie(die, mr, err)
			}
		})
	return res
}

// SubmitBatch fans the requests out across the worker pool and returns
// their results in submission order. It blocks until every request has
// completed; it is safe to call from many goroutines at once.
func (e *Engine) SubmitBatch(reqs []Request) []Result {
	return e.SubmitBatchCtx(context.Background(), reqs)
}

// SubmitBatchCtx is SubmitBatch with cancellation: once the context is
// done, requests that have not started return apierr.ErrCanceled
// results instead of running to completion, and in-flight yield sweeps
// stop at the next die boundary.
func (e *Engine) SubmitBatchCtx(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	e.SubmitStream(ctx, reqs, func(i int, r Result) { results[i] = r }, nil)
	return results
}

// SubmitStream fans the requests out across the worker pool, invoking
// done(i, result) as each request completes — in completion order, not
// submission order, which is what lets the HTTP layer flush finished
// results while slower ones still run. onDie (optional) additionally
// observes every die of yield requests as (request index, die index).
// Both callbacks may be invoked concurrently from pool workers; callers
// synchronize shared state. SubmitStream returns when every request has
// been resolved (run, shed with an apierr.ErrOverloaded result when the
// queue stayed saturated past MaxQueueWait, or reported canceled).
func (e *Engine) SubmitStream(ctx context.Context, reqs []Request, done func(int, Result), onDie func(req, die int, mr *MapResult, err error)) {
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i := range reqs {
		i := i
		enqueued := time.Now()
		job := func() {
			defer wg.Done()
			wait := time.Since(enqueued)
			e.met.queueWait.Observe(wait)
			// Degrade rather than queue-collapse: a request that already
			// burned its wait budget in the queue gets the cheap
			// synthesis path (unless it pinned explicit Options).
			degraded := e.degradeAfter > 0 && wait > e.degradeAfter && reqs[i].Options == nil
			var df DieFunc
			if onDie != nil {
				df = func(die int, mr *MapResult, err error) { onDie(i, die, mr, err) }
			}
			done(i, e.run(ctx, reqs[i], df, degraded))
		}
		if err := e.pool.submitWait(ctx, e.maxQueueWait, job); err != nil {
			// Never reached a worker: resolve the job here, typed by
			// why admission failed.
			wg.Done()
			if errors.Is(err, errQueueFull) {
				done(i, e.overloadedResult(reqs[i].Kind))
			} else {
				done(i, e.canceledResult(reqs[i].Kind, err))
			}
		}
	}
	wg.Wait()
}

// canceledResult accounts a request that was refused due to
// cancellation, keeping the request/failure counters consistent with
// executed work.
func (e *Engine) canceledResult(kind Kind, cause error) Result {
	e.requests.Add(1)
	e.failures.Add(1)
	return errResult(kind, apierr.Canceled(cause))
}

// ShedRetryAfter is the back-off hint attached to every shed result:
// long enough for a saturation spike to drain, short enough that
// clients re-offer load promptly. It rides Result.Err in-process and
// the wire error's retry_after_ms over HTTP, so both client shapes
// observe the same hint.
const ShedRetryAfter = time.Second

// overloadedResult accounts a request shed at admission.
func (e *Engine) overloadedResult(kind Kind) Result {
	e.requests.Add(1)
	e.failures.Add(1)
	e.shed.Add(1)
	return errResult(kind, resilience.WithRetryAfter(apierr.Overloaded(
		"engine: job queue saturated past the %v admission budget", e.maxQueueWait), ShedRetryAfter))
}

// run executes one request inline on the calling goroutine.
func (e *Engine) run(ctx context.Context, req Request, onDie DieFunc, degraded bool) Result {
	if err := ctx.Err(); err != nil {
		return e.canceledResult(req.Kind, err)
	}
	e.requests.Add(1)
	e.met.inflight.Inc()
	start := time.Now()
	res := e.dispatch(ctx, req, onDie, degraded)
	elapsed := time.Since(start)
	e.met.inflight.Dec()
	e.met.observeRequest(req.Kind, elapsed)
	if !res.Ok() {
		e.failures.Add(1)
	}
	e.logRequest(ctx, req.Kind, elapsed, res)
	return res
}

// logRequest emits the per-request debug log line. The Enabled check
// keeps the cost of a disabled logger to one virtual call.
func (e *Engine) logRequest(ctx context.Context, kind Kind, d time.Duration, res Result) {
	if !e.logger.Enabled(ctx, slog.LevelDebug) {
		return
	}
	attrs := []slog.Attr{
		slog.String("kind", string(kind)),
		slog.Duration("duration", d),
		slog.Bool("ok", res.Ok()),
	}
	if id := telemetry.RequestID(ctx); id != "" {
		attrs = append(attrs, slog.String("request_id", id))
	}
	if !res.Ok() {
		attrs = append(attrs, slog.String("code", res.Code), slog.String("error", res.Error))
	}
	e.logger.LogAttrs(ctx, slog.LevelDebug, "engine: request done", attrs...)
}

// dispatch routes by kind, converting panics into error results so one
// bad request cannot take down a pool worker (and with it the daemon).
// degraded substitutes the fast synthesis options for requests that did
// not pin their own.
func (e *Engine) dispatch(ctx context.Context, req Request, onDie DieFunc, degraded bool) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = errResult(req.Kind, apierr.Internal("engine: panic executing request: %v", r))
		}
	}()
	switch req.Kind {
	case KindSynthesize:
		e.byKind[0].Add(1)
		res = e.runSynthesize(ctx, req, degraded)
	case KindCompare:
		e.byKind[1].Add(1)
		res = e.runCompare(ctx, req, degraded)
	case KindMap:
		e.byKind[2].Add(1)
		res = e.runMap(ctx, req, degraded)
	case KindYield:
		e.byKind[3].Add(1)
		res = e.runYield(ctx, req, onDie, degraded)
	default:
		res = errResult(req.Kind, apierr.BadSpec("engine: unknown request kind %q", req.Kind))
	}
	if res.Degraded {
		e.degradedReqs.Add(1)
	}
	return res
}

// degradedOptions is the overload fast path: greedy SOP cell assignment
// with no exact search, no post-reduction, and no alternative
// p-circuit/dual-reduce probing — the cheapest correct flow the
// synthesizer offers. The options differ from the defaults, so degraded
// results live under their own cache key and never shadow exact ones.
func degradedOptions() core.Options {
	return core.Options{
		Synth: latsynth.Options{Exact: false, QM: qm.DefaultOptions(), Cells: latsynth.MostFrequent},
	}
}

// resolve elaborates the shared request fields: function, technology,
// options. The returned bool reports that the degraded fast-path
// options were substituted (only ever when req.Options is nil).
func (e *Engine) resolve(req Request, degraded bool) (truthtab.TT, core.Technology, core.Options, bool, error) {
	f, err := req.Function.Resolve()
	if err != nil {
		return truthtab.TT{}, 0, core.Options{}, false, err
	}
	tech := core.FourTerminal
	if req.Tech != "" {
		if tech, err = core.ParseTechnology(req.Tech); err != nil {
			return truthtab.TT{}, 0, core.Options{}, false, err
		}
	}
	opts := core.DefaultOptions()
	applied := false
	if req.Options != nil {
		opts = *req.Options
	} else if degraded {
		opts = degradedOptions()
		applied = true
	}
	return f, tech, opts, applied, nil
}

// synth runs one cached synthesis and summarizes it.
func (e *Engine) synth(ctx context.Context, f truthtab.TT, tech core.Technology, opts core.Options) (*core.Implementation, SynthesisResult, error) {
	imp, key, hit, err := e.synthKeyed(ctx, f, tech, opts)
	if err != nil {
		return nil, SynthesisResult{}, err
	}
	return imp, SynthesisResult{
		Tech: tech.String(), Rows: imp.Rows, Cols: imp.Cols, Area: imp.Area(),
		Method: imp.Method, CacheHit: hit, Key: key,
	}, nil
}

func (e *Engine) runSynthesize(ctx context.Context, req Request, degraded bool) Result {
	f, tech, opts, deg, err := e.resolve(req, degraded)
	if err != nil {
		return errResult(req.Kind, err)
	}
	_, sr, err := e.synth(ctx, f, tech, opts)
	if err != nil {
		return errResult(req.Kind, err)
	}
	return Result{Kind: req.Kind, Synthesis: &sr, Degraded: deg}
}

func (e *Engine) runCompare(ctx context.Context, req Request, degraded bool) Result {
	f, _, opts, deg, err := e.resolve(req, degraded)
	if err != nil {
		return errResult(req.Kind, err)
	}
	var cr CompareResult
	for _, tc := range []struct {
		tech core.Technology
		dst  *SynthesisResult
	}{{core.Diode, &cr.Diode}, {core.FET, &cr.FET}, {core.FourTerminal, &cr.Lattice}} {
		_, sr, err := e.synth(ctx, f, tc.tech, opts)
		if err != nil {
			return errResult(req.Kind, err)
		}
		*tc.dst = sr
	}
	return Result{Kind: req.Kind, Compare: &cr, Degraded: deg}
}

// chipSizeFor resolves and bounds the chip side for random defect
// draws: the request's ChipSize, defaulting to twice the implementation
// footprint. Resolved once per request — the per-die sweep must not
// rebuild the app matrix just to read its dimensions.
func chipSizeFor(req Request, imp *core.Implementation) (int, error) {
	n := req.ChipSize
	if n <= 0 {
		app := imp.App()
		n = app.R
		if app.C > n {
			n = app.C
		}
		n *= 2
	}
	if n > maxChipSize {
		return 0, apierr.BadSpec("engine: chip_size %d exceeds limit %d", n, maxChipSize)
	}
	return n, nil
}

// boundedAttempts resolves and bounds the per-chip configuration budget.
func boundedAttempts(req Request) (int, error) {
	if req.MaxAttempts > maxMaxAttempts {
		return 0, apierr.BadSpec("engine: max_attempts %d exceeds limit %d", req.MaxAttempts, maxMaxAttempts)
	}
	if req.MaxAttempts <= 0 {
		return defaultMaxAttempts, nil
	}
	return req.MaxAttempts, nil
}

// mapOnce places imp on one chip and summarizes the recovery effort,
// feeding the engine's fault-path counters.
func (e *Engine) mapOnce(imp *core.Implementation, chip *defect.Map, scheme bism.Mapper, maxAttempts int, rng *rand.Rand) (*MapResult, error) {
	start := time.Now()
	rep, err := core.MapWithRecovery(imp, chip, scheme, maxAttempts, rng)
	e.met.dieMap.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	e.diesMapped.Add(1)
	e.mapAttempts.Add(uint64(rep.Stats.Configs))
	mr := &MapResult{
		Success:   rep.Stats.Success,
		Configs:   rep.Stats.Configs,
		BISTCalls: rep.Stats.BISTCalls,
		BISDCalls: rep.Stats.BISDCalls,
		ChipSize:  chip.R,
	}
	if rep.Mapping != nil {
		mr.Rows = rep.Mapping.Rows
		mr.Cols = rep.Mapping.Cols
	}
	return mr, nil
}

func (e *Engine) runMap(ctx context.Context, req Request, degraded bool) Result {
	f, tech, opts, deg, err := e.resolve(req, degraded)
	if err != nil {
		return errResult(req.Kind, err)
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return errResult(req.Kind, err)
	}
	imp, _, err := e.synth(ctx, f, tech, opts)
	if err != nil {
		return errResult(req.Kind, err)
	}
	maxAttempts, err := boundedAttempts(req)
	if err != nil {
		return errResult(req.Kind, err)
	}
	src, rng := xrand.New()
	src.Seed(req.Seed)
	var chip *defect.Map
	if req.Chip != nil {
		chip, err = req.Chip.ToMap()
	} else {
		var n int
		if n, err = chipSizeFor(req, imp); err == nil {
			chip = defect.Random(n, n, defect.UniformCrosspoint(req.Density), rng)
			e.defectMaps.Add(1)
		}
	}
	if err != nil {
		return errResult(req.Kind, err)
	}
	mr, err := e.mapOnce(imp, chip, scheme, maxAttempts, rng)
	if err != nil {
		return errResult(req.Kind, err)
	}
	return Result{Kind: req.Kind, Map: mr, Degraded: deg}
}

func (e *Engine) runYield(ctx context.Context, req Request, onDie DieFunc, degraded bool) Result {
	f, tech, opts, deg, err := e.resolve(req, degraded)
	if err != nil {
		return errResult(req.Kind, err)
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return errResult(req.Kind, err)
	}
	if req.Chip != nil {
		return errResult(req.Kind, apierr.BadSpec("engine: yield requests draw random chips; supply density, not an explicit chip"))
	}
	imp, _, err := e.synth(ctx, f, tech, opts)
	if err != nil {
		return errResult(req.Kind, err)
	}
	chips := req.Chips
	if chips <= 0 {
		chips = defaultYieldChips
	}
	if chips > maxChips {
		return errResult(req.Kind, apierr.BadSpec("engine: chips %d exceeds limit %d", chips, maxChips))
	}
	maxAttempts, err := boundedAttempts(req)
	if err != nil {
		return errResult(req.Kind, err)
	}
	size, err := chipSizeFor(req, imp)
	if err != nil {
		return errResult(req.Kind, err)
	}
	app := imp.App()
	if app.R > size || app.C > size {
		return errResult(req.Kind, apierr.Infeasible("engine: implementation %d×%d exceeds chip %d×%d", app.R, app.C, size, size))
	}

	// Hand the sweep to the configured yield runner — by default the
	// bit-sliced lane path: 64 dies drawn per lane-word group, one BIST
	// session per candidate mapping covering the whole group, and only
	// the dies no candidate fits demoted to the scalar mapper. Each die
	// is sub-seeded from req.Seed, so results are independent of worker
	// scheduling; emit fires serialized, in die order within a group.
	spec := yield.Spec{
		App:         app,
		Scheme:      scheme,
		ChipSize:    size,
		Params:      defect.UniformCrosspoint(req.Density),
		Dies:        chips,
		Seed:        req.Seed,
		MaxAttempts: maxAttempts,
		Parallel:    e.workers,
	}
	type dieOut struct {
		st  bism.Stats
		err error
	}
	outs := make([]dieOut, chips)
	runErr := e.yield.Run(ctx, spec, func(dr yield.DieResult) {
		if dr.Err != nil {
			outs[dr.Die] = dieOut{err: apierr.Internal("engine: die %d: %v", dr.Die, dr.Err)}
			if onDie != nil {
				onDie(dr.Die, nil, outs[dr.Die].err)
			}
			return
		}
		e.defectMaps.Add(1)
		e.diesMapped.Add(1)
		e.mapAttempts.Add(uint64(dr.Stats.Configs))
		if dr.Fast {
			e.diesFast.Add(1)
		} else {
			e.diesDemoted.Add(1)
		}
		outs[dr.Die] = dieOut{st: dr.Stats}
		if onDie != nil {
			// The MapResult is materialized only for streaming
			// observers; the aggregate below reads the raw stats.
			mr := &MapResult{
				Success:   dr.Stats.Success,
				Configs:   dr.Stats.Configs,
				BISTCalls: dr.Stats.BISTCalls,
				BISDCalls: dr.Stats.BISDCalls,
				ChipSize:  size,
			}
			if dr.Mapping != nil {
				mr.Rows = dr.Mapping.Rows
				mr.Cols = dr.Mapping.Cols
			}
			onDie(dr.Die, mr, nil)
		}
	})
	if runErr != nil {
		if errors.Is(runErr, ctx.Err()) {
			return errResult(req.Kind, apierr.Canceled(runErr))
		}
		return errResult(req.Kind, apierr.Internal("engine: yield runner %s: %v", e.yield.Name(), runErr))
	}

	yr := &YieldResult{Chips: chips}
	var configs, bist, bisd int
	for _, o := range outs {
		if o.err != nil {
			return errResult(req.Kind, o.err)
		}
		if o.st.Success {
			yr.Successes++
		}
		configs += o.st.Configs
		bist += o.st.BISTCalls
		bisd += o.st.BISDCalls
	}
	yr.SuccessRate = float64(yr.Successes) / float64(chips)
	yr.AvgConfigs = float64(configs) / float64(chips)
	yr.AvgBIST = float64(bist) / float64(chips)
	yr.AvgBISD = float64(bisd) / float64(chips)
	return Result{Kind: req.Kind, Yield: yr, Degraded: deg}
}

// Stats is a point-in-time snapshot of the engine counters, shaped for
// the daemon's /stats endpoint.
type Stats struct {
	Workers        int    `json:"workers"`
	CacheShards    int    `json:"cache_shards"`
	CacheCapacity  int    `json:"cache_capacity"`
	CacheEntries   int    `json:"cache_entries"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// CacheLoaded counts entries seeded from a persisted snapshot
	// (LoadCacheSnapshot) still attributable to it: warm-start hits serve
	// from these without any synth_calls.
	CacheLoaded uint64 `json:"cache_loaded_from_snapshot"`
	SynthCalls  uint64 `json:"synth_calls"` // underlying core.Synthesize invocations
	Requests    uint64 `json:"requests"`
	Failures    uint64 `json:"failures"`
	// Admission-control counters: requests shed at the queue and
	// requests served degraded; QueueDepth/QueuedJobs expose the bounded
	// queue's size and current occupancy.
	Shed        uint64 `json:"shed"`
	Degraded    uint64 `json:"requests_degraded"`
	QueueDepth  int    `json:"queue_depth"`
	QueuedJobs  int    `json:"queued_jobs"`
	Synthesizes uint64 `json:"requests_synthesize"`
	Compares    uint64 `json:"requests_compare"`
	Maps        uint64 `json:"requests_map"`
	Yields      uint64 `json:"requests_yield"`
	// Fault-path counters: the per-die work the map/yield kinds fan
	// out — dies placed through the self-mapper, random defect maps
	// generated, self-mapping configurations spent in total, and the
	// mean attempts per die.
	DiesMapped          uint64  `json:"dies_mapped"`
	DefectMapsGenerated uint64  `json:"defect_maps_generated"`
	MapAttempts         uint64  `json:"map_attempts_total"`
	MeanMapAttempts     float64 `json:"mean_map_attempts"`
	// DiesCheckedFast counts yield-sweep dies resolved by the lane
	// path's word-parallel candidate schedule; DiesDemotedScalar counts
	// the dies that failed every candidate and fell back to the scalar
	// mapper. Their sum is the yield contribution to DiesMapped.
	DiesCheckedFast   uint64 `json:"dies_checked_fast"`
	DiesDemotedScalar uint64 `json:"dies_demoted_scalar"`
	// Evaluation counts process-wide lattice evaluation work — the
	// synthesis hot path — split into the per-assignment scalar walks
	// and the bit-parallel word-block percolations that replaced them.
	Evaluation  lattice.Counters `json:"lattice_evaluation"`
	Fingerprint string           `json:"fingerprint"`
}

// Stats returns the current counters.
func (e *Engine) Stats() Stats {
	hits, misses, evictions, loads, entries := e.cache.counters()
	dies, attempts := e.diesMapped.Load(), e.mapAttempts.Load()
	mean := 0.0
	if dies > 0 {
		mean = float64(attempts) / float64(dies)
	}
	return Stats{
		DiesMapped:          dies,
		DefectMapsGenerated: e.defectMaps.Load(),
		MapAttempts:         attempts,
		MeanMapAttempts:     mean,
		DiesCheckedFast:     e.diesFast.Load(),
		DiesDemotedScalar:   e.diesDemoted.Load(),
		Evaluation:          lattice.CounterSnapshot(),
		Workers:             e.workers,
		CacheShards:         len(e.cache.shards),
		CacheCapacity:       e.cache.capacity(),
		CacheEntries:        entries,
		CacheHits:           hits,
		CacheMisses:         misses,
		CacheEvictions:      evictions,
		CacheLoaded:         loads,
		SynthCalls:          e.synthCalls.Load(),
		Requests:            e.requests.Load(),
		Failures:            e.failures.Load(),
		Shed:                e.shed.Load(),
		Degraded:            e.degradedReqs.Load(),
		QueueDepth:          e.pool.depth(),
		QueuedJobs:          e.pool.queued(),
		Synthesizes:         e.byKind[0].Load(),
		Compares:            e.byKind[1].Load(),
		Maps:                e.byKind[2].Load(),
		Yields:              e.byKind[3].Load(),
		Fingerprint:         core.Fingerprint(),
	}
}
