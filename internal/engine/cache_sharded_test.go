package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nanoxbar/internal/core"
)

// hexKey builds a realistic cache key (64 hex chars, like core.CacheKey
// output) from an integer id.
func hexKey(id int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", id)))
	return hex.EncodeToString(sum[:])
}

func TestShardedCacheShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ req, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {100, 128},
	} {
		c := newShardedCache(64, tc.req)
		if len(c.shards) != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.req, len(c.shards), tc.want)
		}
	}
	// Total capacity never drops below the request.
	c := newShardedCache(100, 16)
	if got := c.capacity(); got < 100 {
		t.Fatalf("capacity %d < requested 100", got)
	}
}

func TestShardedCacheSingleFlightPerKey(t *testing.T) {
	c := newShardedCache(256, 16)
	const keys, goroutinesPerKey = 32, 8
	var calls atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		key := hexKey(k)
		id := k
		for g := 0; g < goroutinesPerKey; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				imp, err, _ := c.getOrCompute(key, func() (*core.Implementation, error) {
					calls.Add(1)
					return fakeImp(id), nil
				})
				if err != nil || imp.Rows != id {
					t.Errorf("key %d: imp=%v err=%v", id, imp, err)
				}
			}()
		}
	}
	wg.Wait()
	if got := calls.Load(); got != keys {
		t.Fatalf("compute ran %d times, want once per key (%d)", got, keys)
	}
	hits, misses, _, _, entries := c.counters()
	if misses != keys || hits != keys*(goroutinesPerKey-1) {
		t.Fatalf("hits=%d misses=%d, want %d/%d", hits, misses, keys*(goroutinesPerKey-1), keys)
	}
	if entries != keys {
		t.Fatalf("entries=%d, want %d", entries, keys)
	}
}

func TestShardedCacheDistributesAcrossShards(t *testing.T) {
	c := newShardedCache(4096, 16)
	const keys = 1024
	for k := 0; k < keys; k++ {
		id := k
		c.getOrCompute(hexKey(k), func() (*core.Implementation, error) { return fakeImp(id), nil })
	}
	// FNV over sha-256 hex keys should land every shard well away from
	// zero; a skew this coarse would mean the shard picker is broken.
	for i, sh := range c.shards {
		_, _, _, n := sh.counters()
		if n == 0 {
			t.Errorf("shard %d/%d got no entries for %d keys", i, len(c.shards), keys)
		}
	}
}

func TestShardedCacheInsertAndSnapshot(t *testing.T) {
	c := newShardedCache(64, 4)
	// Live result wins over a snapshot insert for the same key.
	key := hexKey(1)
	c.getOrCompute(key, func() (*core.Implementation, error) { return fakeImp(10), nil })
	if c.insert(key, fakeImp(99)) {
		t.Fatal("insert replaced a live entry")
	}
	if !c.insert(hexKey(2), fakeImp(20)) {
		t.Fatal("insert of a fresh key failed")
	}
	imp, err, hit := c.getOrCompute(key, func() (*core.Implementation, error) {
		t.Fatal("live entry recomputed")
		return nil, nil
	})
	if err != nil || !hit || imp.Rows != 10 {
		t.Fatalf("lookup after insert: imp=%v err=%v hit=%v", imp, err, hit)
	}
	imp, err, hit = c.getOrCompute(hexKey(2), func() (*core.Implementation, error) {
		t.Fatal("inserted entry recomputed")
		return nil, nil
	})
	if err != nil || !hit || imp.Rows != 20 {
		t.Fatalf("lookup of inserted key: imp=%v err=%v hit=%v", imp, err, hit)
	}
	_, _, _, loads, entries := c.counters()
	if loads != 1 || entries != 2 {
		t.Fatalf("loads=%d entries=%d, want 1/2", loads, entries)
	}
	snap := c.snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	for _, e := range snap {
		if e.Key == "" || e.Imp == nil {
			t.Fatalf("snapshot entry incomplete: %+v", e)
		}
	}
}

func TestShardedCacheSnapshotSkipsInFlight(t *testing.T) {
	c := newShardedCache(64, 4)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.getOrCompute(hexKey(1), func() (*core.Implementation, error) {
		close(started)
		<-release
		return fakeImp(1), nil
	})
	<-started
	c.insert(hexKey(2), fakeImp(2))
	snap := c.snapshot()
	close(release)
	if len(snap) != 1 || snap[0].Imp.Rows != 2 {
		t.Fatalf("snapshot %v, want only the completed entry", snap)
	}
}

// BenchmarkEngineCacheContention measures hit-path throughput of the
// single-lock LRU against the sharded cache under parallel load. The
// serving daemon's steady state is exactly this: every worker hitting
// the cache with already-synthesized keys. The sharded cache must scale
// with GOMAXPROCS where the single mutex plateaus.
func BenchmarkEngineCacheContention(b *testing.B) {
	const numKeys = 1024
	keys := make([]string, numKeys)
	for i := range keys {
		keys[i] = hexKey(i)
	}
	imp := fakeImp(1)
	type synthCache interface {
		getOrCompute(string, func() (*core.Implementation, error)) (*core.Implementation, error, bool)
	}
	run := func(b *testing.B, c synthCache) {
		for _, k := range keys {
			c.getOrCompute(k, func() (*core.Implementation, error) { return imp, nil })
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := keys[i&(numKeys-1)]
				i++
				_, err, hit := c.getOrCompute(k, func() (*core.Implementation, error) { return imp, nil })
				if err != nil || !hit {
					b.Fatalf("hit path missed: err=%v hit=%v", err, hit)
				}
			}
		})
	}
	b.Run("single-lock", func(b *testing.B) { run(b, newCache(2*numKeys)) })
	b.Run("sharded", func(b *testing.B) { run(b, newShardedCache(2*numKeys, defaultCacheShards(runtime.GOMAXPROCS(0)))) })
}
