package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/core"
	"nanoxbar/internal/defect"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{Workers: 4, CacheSize: 64})
	t.Cleanup(e.Close)
	return e
}

func TestSynthesizeMatchesUncached(t *testing.T) {
	e := newTestEngine(t)
	opts := core.DefaultOptions()
	for _, spec := range []benchfn.Spec{benchfn.Majority(3), benchfn.Parity(4), benchfn.PaperExample()} {
		for _, tech := range []core.Technology{core.Diode, core.FET, core.FourTerminal} {
			want, err := core.Synthesize(spec.F, tech, opts)
			if err != nil {
				t.Fatalf("%s/%v: %v", spec.Name, tech, err)
			}
			got, hit, err := e.Synthesize(spec.F, tech, opts)
			if err != nil || hit {
				t.Fatalf("%s/%v first call: hit=%v err=%v", spec.Name, tech, hit, err)
			}
			if got.Rows != want.Rows || got.Cols != want.Cols || got.Method != want.Method {
				t.Fatalf("%s/%v: cached %dx%d %s, uncached %dx%d %s",
					spec.Name, tech, got.Rows, got.Cols, got.Method, want.Rows, want.Cols, want.Method)
			}
			if !got.Verify(spec.F) {
				t.Fatalf("%s/%v: cached implementation does not compute the function", spec.Name, tech)
			}
			again, hit, err := e.Synthesize(spec.F, tech, opts)
			if err != nil || !hit || again != got {
				t.Fatalf("%s/%v second call: hit=%v same=%v err=%v", spec.Name, tech, hit, again == got, err)
			}
		}
	}
}

// TestConcurrentCacheCorrectness hammers the engine cache from many
// goroutines (run under -race in CI) and asserts both the hit rate and
// result equality with uncached core.Synthesize.
func TestConcurrentCacheCorrectness(t *testing.T) {
	e := newTestEngine(t)
	opts := core.DefaultOptions()
	specs := []benchfn.Spec{
		benchfn.Majority(3), benchfn.Parity(4), benchfn.Threshold(4, 2), benchfn.PaperExample(),
	}
	want := make([]*core.Implementation, len(specs))
	for i, s := range specs {
		var err error
		if want[i], err = core.Synthesize(s.F, core.FourTerminal, opts); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines, rounds = 16, 25
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(specs)
				imp, _, err := e.Synthesize(specs[i].F, core.FourTerminal, opts)
				if err != nil {
					t.Errorf("synthesize %s: %v", specs[i].Name, err)
					return
				}
				if imp.Rows != want[i].Rows || imp.Cols != want[i].Cols {
					t.Errorf("%s: got %dx%d, want %dx%d", specs[i].Name, imp.Rows, imp.Cols, want[i].Rows, want[i].Cols)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	total := st.CacheHits + st.CacheMisses
	if total != goroutines*rounds {
		t.Fatalf("cache saw %d lookups, want %d", total, goroutines*rounds)
	}
	if st.CacheMisses != uint64(len(specs)) {
		t.Fatalf("misses=%d, want %d (one per distinct function)", st.CacheMisses, len(specs))
	}
	if st.SynthCalls != uint64(len(specs)) {
		t.Fatalf("synth calls=%d, want %d", st.SynthCalls, len(specs))
	}
}

// TestBatchSingleMissDeterministic is the acceptance scenario: a batch
// of 100 per-chip mapping requests for the same function completes with
// exactly one underlying core.Synthesize call, and a fixed seed gives
// identical results across runs.
func TestBatchSingleMissDeterministic(t *testing.T) {
	const n = 100
	makeBatch := func() []Request {
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{
				Kind:     KindMap,
				Function: FunctionSpec{Name: "maj3"},
				Density:  0.05,
				Seed:     int64(1000 + i),
			}
		}
		return reqs
	}

	e1 := newTestEngine(t)
	res1 := e1.SubmitBatch(makeBatch())
	st := e1.Stats()
	if st.SynthCalls != 1 {
		t.Fatalf("batch of %d same-function requests ran %d syntheses, want 1", n, st.SynthCalls)
	}
	if st.CacheMisses != 1 || st.CacheHits != n-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", st.CacheHits, st.CacheMisses, n-1)
	}
	for i, r := range res1 {
		if !r.Ok() {
			t.Fatalf("request %d failed: %s", i, r.Error)
		}
		if r.Map == nil {
			t.Fatalf("request %d has no map result", i)
		}
	}

	e2 := newTestEngine(t)
	res2 := e2.SubmitBatch(makeBatch())
	if !reflect.DeepEqual(res1, res2) {
		t.Fatal("fixed seeds gave different results across engines")
	}
}

func TestMapAgainstSuppliedChip(t *testing.T) {
	e := newTestEngine(t)
	// Build a chip with a known defect map, round-trip through the
	// wire spec, and check the returned mapping validates.
	rng := rand.New(rand.NewSource(5))
	chip := defect.Random(16, 16, defect.UniformCrosspoint(0.04), rng)
	spec := FromMap(chip)
	back, err := spec.ToMap()
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != chip.String() {
		t.Fatal("defect map wire round trip changed the map")
	}
	res := e.Do(Request{
		Kind:     KindMap,
		Function: FunctionSpec{Expr: "x1x2 + x1'x2'"},
		Scheme:   "hybrid",
		Chip:     &spec,
		Seed:     7,
	})
	if !res.Ok() || res.Map == nil {
		t.Fatalf("map request failed: %+v", res)
	}
	if res.Map.ChipSize != 16 {
		t.Fatalf("chip size %d, want 16", res.Map.ChipSize)
	}
	if res.Map.Success {
		f, err := FunctionSpec{Expr: "x1x2 + x1'x2'"}.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		imp, _, err := e.Synthesize(f, core.FourTerminal, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Map.Rows) != imp.ToApp().R || len(res.Map.Cols) != imp.ToApp().C {
			t.Fatalf("mapping shape %dx%d does not match app %dx%d",
				len(res.Map.Rows), len(res.Map.Cols), imp.ToApp().R, imp.ToApp().C)
		}
	}
}

func TestCompareUsesSharedCache(t *testing.T) {
	e := newTestEngine(t)
	res := e.Do(Request{Kind: KindCompare, Function: FunctionSpec{Name: "maj3"}})
	if !res.Ok() || res.Compare == nil {
		t.Fatalf("compare failed: %+v", res)
	}
	if res.Compare.Diode.Area == 0 || res.Compare.FET.Area == 0 || res.Compare.Lattice.Area == 0 {
		t.Fatalf("zero area in %+v", res.Compare)
	}
	// A follow-up synthesize on each technology must hit.
	for _, tech := range []string{"diode", "fet", "lattice"} {
		r := e.Do(Request{Kind: KindSynthesize, Function: FunctionSpec{Name: "maj3"}, Tech: tech})
		if !r.Ok() || !r.Synthesis.CacheHit {
			t.Fatalf("synthesize after compare on %s: %+v", tech, r)
		}
	}
}

func TestYieldSweep(t *testing.T) {
	e := newTestEngine(t)
	req := Request{
		Kind:     KindYield,
		Function: FunctionSpec{Name: "maj3"},
		Density:  0.03,
		Chips:    40,
		ChipSize: 20,
		Seed:     99,
	}
	res := e.Do(req)
	if !res.Ok() || res.Yield == nil {
		t.Fatalf("yield failed: %+v", res)
	}
	y := res.Yield
	if y.Chips != 40 {
		t.Fatalf("chips=%d, want 40", y.Chips)
	}
	if y.Successes < 1 {
		t.Fatal("no die recovered at 3% density on a 20x20 chip; expected most to succeed")
	}
	if y.SuccessRate != float64(y.Successes)/40 {
		t.Fatalf("inconsistent success rate %v for %d successes", y.SuccessRate, y.Successes)
	}
	if y.AvgBIST <= 0 {
		t.Fatalf("avg BIST calls %v, want > 0", y.AvgBIST)
	}
	// Determinism: same seed, same aggregate.
	res2 := e.Do(req)
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("yield sweep not deterministic for fixed seed")
	}
	// Exactly one synthesis across both sweeps.
	if st := e.Stats(); st.SynthCalls != 1 {
		t.Fatalf("synth calls=%d, want 1", st.SynthCalls)
	}
	// Fault-path accounting: both sweeps drew and mapped 40 dies each.
	st := e.Stats()
	if st.DiesMapped != 80 || st.DefectMapsGenerated != 80 {
		t.Fatalf("dies=%d maps=%d, want 80/80", st.DiesMapped, st.DefectMapsGenerated)
	}
	// Every yield die either resolved on the lane fast path or was
	// demoted to the scalar mapper.
	if st.DiesCheckedFast+st.DiesDemotedScalar != 80 {
		t.Fatalf("fast=%d demoted=%d, want sum 80", st.DiesCheckedFast, st.DiesDemotedScalar)
	}
	if st.MapAttempts < st.DiesMapped {
		t.Fatalf("map attempts %d below dies %d", st.MapAttempts, st.DiesMapped)
	}
	if want := float64(st.MapAttempts) / float64(st.DiesMapped); st.MeanMapAttempts != want {
		t.Fatalf("mean attempts %v, want %v", st.MeanMapAttempts, want)
	}
}

func TestRequestValidation(t *testing.T) {
	e := newTestEngine(t)
	for name, req := range map[string]Request{
		"unknown kind":    {Kind: "melt", Function: FunctionSpec{Name: "maj3"}},
		"no function":     {Kind: KindSynthesize},
		"two functions":   {Kind: KindSynthesize, Function: FunctionSpec{Name: "maj3", Expr: "x1"}},
		"unknown name":    {Kind: KindSynthesize, Function: FunctionSpec{Name: "nope"}},
		"bad expr":        {Kind: KindSynthesize, Function: FunctionSpec{Expr: "x1 +"}},
		"bad tt":          {Kind: KindSynthesize, Function: FunctionSpec{TT: "3:zz"}},
		"bad tech":        {Kind: KindSynthesize, Function: FunctionSpec{Name: "maj3"}, Tech: "memristor"},
		"bad scheme":      {Kind: KindMap, Function: FunctionSpec{Name: "maj3"}, Scheme: "psychic"},
		"yield with chip": {Kind: KindYield, Function: FunctionSpec{Name: "maj3"}, Chip: &DefectMapSpec{Rows: []string{"."}}},
		"huge chips":      {Kind: KindYield, Function: FunctionSpec{Name: "maj3"}, Chips: 4_000_000_000},
		"huge chip size":  {Kind: KindMap, Function: FunctionSpec{Name: "maj3"}, ChipSize: 4_000_000_000},
		"huge attempts":   {Kind: KindMap, Function: FunctionSpec{Name: "maj3"}, MaxAttempts: 2_000_000_000},
	} {
		if res := e.Do(req); res.Ok() {
			t.Errorf("%s: request unexpectedly succeeded", name)
		}
	}
	if st := e.Stats(); st.Failures == 0 {
		t.Fatal("failure counter did not move")
	}
}

func TestConcurrentBatches(t *testing.T) {
	// Several goroutines submitting batches at once must all complete
	// with correct per-batch ordering.
	e := newTestEngine(t)
	const batches = 8
	var wg sync.WaitGroup
	wg.Add(batches)
	for b := 0; b < batches; b++ {
		b := b
		go func() {
			defer wg.Done()
			reqs := []Request{
				{Kind: KindSynthesize, Function: FunctionSpec{Name: "maj3"}},
				{Kind: KindCompare, Function: FunctionSpec{Name: "xor4"}},
				{Kind: KindMap, Function: FunctionSpec{Name: "maj3"}, Density: 0.02, Seed: int64(b)},
			}
			res := e.SubmitBatch(reqs)
			if len(res) != 3 {
				t.Errorf("batch %d: %d results", b, len(res))
				return
			}
			if res[0].Synthesis == nil || res[1].Compare == nil || res[2].Map == nil {
				t.Errorf("batch %d: results out of order: %+v", b, res)
			}
		}()
	}
	wg.Wait()
	// Distinct (function, tech) pairs across every batch: maj3 on the
	// lattice (shared by synthesize and map) and xor4 on all three
	// technologies — four underlying syntheses no matter how many
	// batches raced.
	if st := e.Stats(); st.SynthCalls != 4 {
		t.Fatalf("synth calls=%d, want 4", st.SynthCalls)
	}
}
