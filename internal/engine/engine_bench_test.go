package engine

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/bism"
	"nanoxbar/internal/core"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/xrand"
)

// Serving-path baselines: how much the cache saves on the shared
// synthesis step, and how much the worker pool saves on per-chip
// mapping fan-out. Future PRs optimizing the serving path compare
// against these numbers.

func BenchmarkSynthesizeUncached(b *testing.B) {
	spec := benchfn.NineSym()
	opts := core.DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Synthesize(spec.F, core.FourTerminal, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeCached(b *testing.B) {
	e := New(Config{Workers: 4, CacheSize: 64})
	defer e.Close()
	spec := benchfn.NineSym()
	opts := core.DefaultOptions()
	if _, _, err := e.Synthesize(spec.F, core.FourTerminal, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Synthesize(spec.F, core.FourTerminal, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// perChipBatch builds one batch of per-chip mapping requests for the
// same function with distinct seeds — the daemon's hot path.
func perChipBatch(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Kind:     KindMap,
			Function: FunctionSpec{Name: "maj3"},
			Density:  0.05,
			Seed:     int64(i),
		}
	}
	return reqs
}

func BenchmarkMapBatchPooled(b *testing.B) {
	e := New(Config{CacheSize: 64}) // default worker count
	defer e.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range e.SubmitBatch(perChipBatch(64)) {
			if !r.Ok() {
				b.Fatal(r.Error)
			}
		}
	}
}

// BenchmarkMapOnce is the CI-gated per-die number: draw one 64×64 die
// at 2% density into pooled scratch and place maj3 on it with greedy
// recovery — the unit of work a yield sweep repeats per chip.
func BenchmarkMapOnce(b *testing.B) {
	e := New(Config{Workers: 1, CacheSize: 16})
	defer e.Close()
	spec := benchfn.Majority(3)
	imp, _, err := e.Synthesize(spec.F, core.FourTerminal, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	src, rng := xrand.New()
	chip := defect.NewMap(64, 64)
	params := defect.UniformCrosspoint(0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
		defect.RandomInto(chip, params, rng)
		if _, err := e.mapOnce(imp, chip, bism.Greedy{}, defaultMaxAttempts, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYieldSweep is the CI-gated end-to-end number: one KindYield
// request sweeping 64 dies of a 64×64 chip at 2% density through the
// full engine path (cache hit, per-worker die scratch, aggregation).
func BenchmarkYieldSweep(b *testing.B) {
	e := New(Config{CacheSize: 64}) // default worker count
	defer e.Close()
	req := Request{
		Kind:     KindYield,
		Function: FunctionSpec{Name: "maj3"},
		Density:  0.02,
		Chips:    64,
		ChipSize: 64,
		Seed:     42,
	}
	if r := e.Do(req); !r.Ok() {
		b.Fatal(r.Error)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := e.Do(req); !r.Ok() {
			b.Fatal(r.Error)
		}
	}
}

func BenchmarkMapBatchSerial(b *testing.B) {
	// The same 64-chip workload without the engine: one synthesis,
	// then sequential MapWithRecovery calls on the caller goroutine.
	spec := benchfn.Majority(3)
	opts := core.DefaultOptions()
	imp, err := core.Synthesize(spec.F, core.FourTerminal, opts)
	if err != nil {
		b.Fatal(err)
	}
	app := imp.ToApp()
	n := 2 * max(app.R, app.C)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < 64; c++ {
			rng := rand.New(rand.NewSource(int64(c)))
			chip := defect.Random(n, n, defect.UniformCrosspoint(0.05), rng)
			if _, err := core.MapWithRecovery(imp, chip, bism.Greedy{}, defaultMaxAttempts, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}
