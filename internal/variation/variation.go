// Package variation models parametric variation of nano-crossbar
// arrays and the variation-tolerant mapping the paper's Section IV
// targets ("variation tolerance to ensure the predictability and
// performance (for parametric variations)").
//
// Every crosspoint carries a multiplicative delay factor drawn from a
// lognormal distribution around the nominal switch delay — the
// standard first-order model for self-assembled nanowire parameter
// spread. The delay of a conducting lattice is the fastest conducting
// top-to-bottom path (parallel paths conduct in parallel; the earliest
// arrival dominates), and the array's critical delay is the worst such
// delay over the function's on-set. Variation-aware placement picks,
// among candidate positions of the logical array inside the larger
// physical array, the one minimizing critical delay — reusing the
// reconfigurability that the defect flows already exploit.
package variation

import (
	"fmt"
	"math"
	"math/rand"

	"nanoxbar/internal/lattice"
)

// Map holds per-crosspoint delay factors of an R×C physical array.
type Map struct {
	R, C  int
	delay []float64 // row-major multiplicative delay factors
}

// NewMap returns a variation-free map (all factors 1).
func NewMap(r, c int) *Map {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("variation: invalid shape %d×%d", r, c))
	}
	m := &Map{R: r, C: c, delay: make([]float64, r*c)}
	for i := range m.delay {
		m.delay[i] = 1
	}
	return m
}

// At returns the delay factor of crosspoint (r, c).
func (m *Map) At(r, c int) float64 { return m.delay[r*m.C+c] }

// Set assigns a delay factor.
func (m *Map) Set(r, c int, d float64) {
	if d <= 0 {
		panic("variation: delay factors must be positive")
	}
	m.delay[r*m.C+c] = d
}

// Lognormal draws a map whose factors are exp(N(0, sigma)) — median 1,
// spread controlled by sigma (sigma 0.3–0.7 covers published nanowire
// spreads).
func Lognormal(r, c int, sigma float64, rng *rand.Rand) *Map {
	m := NewMap(r, c)
	for i := range m.delay {
		m.delay[i] = math.Exp(sigma * rng.NormFloat64())
	}
	return m
}

// PathDelay returns the fastest conducting top-to-bottom path delay of
// the lattice at assignment a, with site (i,j) of the lattice placed on
// physical crosspoint (rowOff+i, colOff+j). It returns +Inf when the
// lattice does not conduct at a.
func PathDelay(l *lattice.Lattice, m *Map, rowOff, colOff int, a uint64) float64 {
	if rowOff < 0 || colOff < 0 || rowOff+l.R > m.R || colOff+l.C > m.C {
		panic(fmt.Sprintf("variation: %d×%d lattice at (%d,%d) exceeds %d×%d array",
			l.R, l.C, rowOff, colOff, m.R, m.C))
	}
	const inf = math.MaxFloat64
	dist := make([]float64, l.R*l.C)
	on := make([]bool, l.R*l.C)
	for i := range dist {
		dist[i] = inf
		on[i] = l.At(i/l.C, i%l.C).On(a)
	}
	cellDelay := func(i int) float64 {
		return m.At(rowOff+i/l.C, colOff+i%l.C)
	}
	// Dijkstra without a heap: the grids are small (≤ a few hundred
	// cells), so the O(V²) scan is cheaper than heap bookkeeping.
	for c := 0; c < l.C; c++ {
		if on[c] {
			dist[c] = cellDelay(c)
		}
	}
	settled := make([]bool, l.R*l.C)
	for {
		best, bestD := -1, inf
		for i, d := range dist {
			if !settled[i] && d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			return inf // no conducting path
		}
		r, c := best/l.C, best%l.C
		if r == l.R-1 {
			return bestD
		}
		settled[best] = true
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= l.R || nc < 0 || nc >= l.C {
				continue
			}
			ni := nr*l.C + nc
			if on[ni] && !settled[ni] && bestD+cellDelay(ni) < dist[ni] {
				dist[ni] = bestD + cellDelay(ni)
			}
		}
	}
}

// CriticalDelay returns the worst-case conducting delay over all
// on-set assignments of the n-variable function the lattice computes.
func CriticalDelay(l *lattice.Lattice, m *Map, rowOff, colOff, n int) float64 {
	worst := 0.0
	for a := uint64(0); a < uint64(1)<<uint(n); a++ {
		if !l.Eval(a) {
			continue
		}
		if d := PathDelay(l, m, rowOff, colOff, a); d > worst {
			worst = d
		}
	}
	return worst
}

// Placement is a candidate position of the lattice on the array.
type Placement struct {
	RowOff, ColOff int
	Delay          float64
}

// BestPlacement scans all offsets of the lattice inside the physical
// array and returns the placement with minimum critical delay plus the
// delay of the worst placement (for reporting the variation-awareness
// gain). Stride subsamples offsets for large arrays (1 = exhaustive).
func BestPlacement(l *lattice.Lattice, m *Map, n, stride int) (best, worst Placement) {
	if stride < 1 {
		stride = 1
	}
	first := true
	for ro := 0; ro+l.R <= m.R; ro += stride {
		for co := 0; co+l.C <= m.C; co += stride {
			d := CriticalDelay(l, m, ro, co, n)
			p := Placement{RowOff: ro, ColOff: co, Delay: d}
			if first || d < best.Delay {
				best = p
			}
			if first || d > worst.Delay {
				worst = p
			}
			first = false
		}
	}
	if first {
		panic("variation: lattice larger than the physical array")
	}
	return best, worst
}

// GuardBand Monte-Carlo estimates the delay distribution of a lattice
// under variation: mean and the q-quantile (e.g. 0.99) of the critical
// delay across random variation maps, at a fixed placement (0,0) on a
// lattice-sized array. The quantile is the guard band a designer must
// budget for predictable performance.
func GuardBand(l *lattice.Lattice, n int, sigma float64, trials int, q float64, rng *rand.Rand) (mean, quantile float64) {
	if trials < 1 || q <= 0 || q >= 1 {
		panic("variation: bad GuardBand parameters")
	}
	ds := make([]float64, trials)
	sum := 0.0
	for t := 0; t < trials; t++ {
		m := Lognormal(l.R, l.C, sigma, rng)
		d := CriticalDelay(l, m, 0, 0, n)
		ds[t] = d
		sum += d
	}
	// Selection by partial sort (small trials counts).
	idx := int(q * float64(trials))
	if idx >= trials {
		idx = trials - 1
	}
	for i := 0; i <= idx; i++ {
		min := i
		for j := i + 1; j < trials; j++ {
			if ds[j] < ds[min] {
				min = j
			}
		}
		ds[i], ds[min] = ds[min], ds[i]
	}
	return sum / float64(trials), ds[idx]
}
