package variation

import (
	"math"
	"math/rand"
	"testing"

	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/truthtab"
)

func synth(t *testing.T, f truthtab.TT) *lattice.Lattice {
	t.Helper()
	res, err := latsynth.DualMethod(f, latsynth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Lattice
}

func TestPathDelayNominal(t *testing.T) {
	// A 3×1 AND column at nominal variation: delay = 3 cells.
	f := truthtab.Var(3, 0).And(truthtab.Var(3, 1)).And(truthtab.Var(3, 2))
	l := synth(t, f)
	m := NewMap(l.R, l.C)
	d := PathDelay(l, m, 0, 0, 0b111)
	if d != float64(l.R) {
		t.Fatalf("nominal column delay %v, want %v", d, l.R)
	}
	// Non-conducting assignment: +Inf.
	if d := PathDelay(l, m, 0, 0, 0b011); !math.IsInf(d, 1) && d != math.MaxFloat64 {
		t.Fatalf("non-conducting delay %v", d)
	}
}

func TestPathDelayPicksFastestPath(t *testing.T) {
	// 1×2 OR row: two parallel single-cell paths; delay = min factor.
	l := lattice.New(1, 2)
	l.Set(0, 0, lattice.Lit(0, false))
	l.Set(0, 1, lattice.Lit(1, false))
	m := NewMap(1, 2)
	m.Set(0, 0, 5)
	m.Set(0, 1, 2)
	if d := PathDelay(l, m, 0, 0, 0b11); d != 2 {
		t.Fatalf("parallel delay %v, want 2 (fastest path)", d)
	}
	// Only the slow path conducts.
	if d := PathDelay(l, m, 0, 0, 0b01); d != 5 {
		t.Fatalf("single-path delay %v, want 5", d)
	}
}

func TestCriticalDelayIsWorstOnSet(t *testing.T) {
	l := lattice.New(1, 2)
	l.Set(0, 0, lattice.Lit(0, false))
	l.Set(0, 1, lattice.Lit(1, false))
	m := NewMap(1, 2)
	m.Set(0, 0, 7)
	m.Set(0, 1, 3)
	// On-set: 01 (delay 7), 10 (delay 3), 11 (delay 3). Critical = 7.
	if d := CriticalDelay(l, m, 0, 0, 2); d != 7 {
		t.Fatalf("critical delay %v, want 7", d)
	}
}

func TestLognormalStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Lognormal(40, 40, 0.5, rng)
	logSum, n := 0.0, 0
	for r := 0; r < 40; r++ {
		for c := 0; c < 40; c++ {
			d := m.At(r, c)
			if d <= 0 {
				t.Fatal("non-positive delay factor")
			}
			logSum += math.Log(d)
			n++
		}
	}
	// Median ≈ 1 → mean log ≈ 0.
	if mean := logSum / float64(n); math.Abs(mean) > 0.05 {
		t.Fatalf("log-mean %v too far from 0", mean)
	}
	// Zero sigma: all factors exactly 1.
	z := Lognormal(4, 4, 0, rng)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if z.At(r, c) != 1 {
				t.Fatal("sigma=0 must be nominal")
			}
		}
	}
}

func TestBestPlacementBeatsWorst(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := truthtab.FromFunc(3, func(a uint64) bool {
		return a&1+a>>1&1+a>>2&1 >= 2
	})
	l := synth(t, f)
	m := Lognormal(l.R+6, l.C+6, 0.6, rng)
	best, worst := BestPlacement(l, m, 3, 1)
	if best.Delay > worst.Delay {
		t.Fatalf("best %v > worst %v", best.Delay, worst.Delay)
	}
	if best.Delay <= 0 || math.IsInf(best.Delay, 1) {
		t.Fatalf("implausible best delay %v", best.Delay)
	}
	// With real variation there is almost surely a strict gap.
	if best.Delay == worst.Delay {
		t.Log("degenerate map: best == worst (acceptable but unusual)")
	}
}

func TestVariationAwareGainPositiveOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := truthtab.Var(2, 0).And(truthtab.Var(2, 1))
	l := synth(t, f)
	gains := 0.0
	trials := 30
	for i := 0; i < trials; i++ {
		m := Lognormal(l.R+8, l.C+8, 0.5, rng)
		best, worst := BestPlacement(l, m, 2, 1)
		gains += worst.Delay - best.Delay
	}
	if gains <= 0 {
		t.Fatal("variation-aware placement never helped")
	}
}

func TestGuardBandMonotoneInSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := truthtab.FromFunc(3, func(a uint64) bool {
		return a&1+a>>1&1+a>>2&1 >= 2
	})
	l := synth(t, f)
	meanLo, p99Lo := GuardBand(l, 3, 0.2, 120, 0.99, rng)
	meanHi, p99Hi := GuardBand(l, 3, 0.8, 120, 0.99, rng)
	if p99Lo >= p99Hi {
		t.Fatalf("guard band must widen with sigma: %v vs %v", p99Lo, p99Hi)
	}
	if p99Lo < meanLo || p99Hi < meanHi {
		t.Fatal("p99 below mean")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewMap(0, 1) })
	mustPanic(func() { NewMap(2, 2).Set(0, 0, 0) })
	l := lattice.Constant(true)
	mustPanic(func() { PathDelay(l, NewMap(1, 1), 1, 0, 0) })
	mustPanic(func() { GuardBand(l, 1, 0.5, 0, 0.99, rand.New(rand.NewSource(5))) })
	big := lattice.New(3, 3)
	mustPanic(func() { BestPlacement(big, NewMap(2, 2), 1, 1) })
}
