// Package dreduce implements D-reducible function preprocessing for
// lattice synthesis, Section III-B-2 of the DATE'17 paper (after
// Bernasconi–Ciriani and Bernasconi–Ciriani–Frontini–Trucco).
//
// A Boolean function f is D-reducible when its on-set is contained in an
// affine space A strictly smaller than the whole Boolean space. Then
//
//	f = χA · fA
//
// where χA is the characteristic function of A and fA the projection of
// f onto A. The projection has the same number of on-set points but
// lives in a dim(A)-dimensional space, so its lattice is often smaller;
// the overall lattice is the AND composition of the lattice for χA and
// the lattice for fA.
package dreduce

import (
	"fmt"

	"nanoxbar/internal/gf2"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/truthtab"
)

// Analysis describes the affine structure of a function's on-set.
type Analysis struct {
	N         int
	Affine    *gf2.Affine       // affine hull A of the on-set
	Checks    []gf2.ParityCheck // affine constraints characterizing A
	FreeVars  []int             // coordinates parameterizing A
	Reducible bool              // dim(A) < N
	ChiA      truthtab.TT       // characteristic function of A
	FA        truthtab.TT       // projection of f onto A (depends only on FreeVars)
}

// Analyze computes the affine hull of f's on-set, the characteristic
// function χA, and the projection fA with f = χA · fA. It returns an
// error for the constant-0 function (no hull exists).
func Analyze(f truthtab.TT) (*Analysis, error) {
	n := f.NumVars()
	ms := f.Minterms()
	if len(ms) == 0 {
		return nil, fmt.Errorf("dreduce: constant-0 function has no affine hull")
	}
	aff := gf2.AffineHull(n, ms)
	checks := aff.ParityChecks()
	free := aff.FreeCoordinates()

	chi := truthtab.FromFunc(n, func(a uint64) bool {
		for _, c := range checks {
			if !c.Holds(a) {
				return false
			}
		}
		return true
	})
	// fA(a) depends only on a's values at the free coordinates: it is
	// f evaluated at the unique point of A sharing those values.
	fa := truthtab.FromFunc(n, func(a uint64) bool {
		var fv uint64
		for i, c := range free {
			if a>>uint(c)&1 == 1 {
				fv |= 1 << uint(i)
			}
		}
		return f.Bit(aff.PointFromFree(free, fv))
	})
	return &Analysis{
		N: n, Affine: aff, Checks: checks, FreeVars: free,
		Reducible: aff.Dim() < n, ChiA: chi, FA: fa,
	}, nil
}

// Verify checks the defining identity f = χA ∧ fA.
func (an *Analysis) Verify(f truthtab.TT) bool {
	return an.ChiA.And(an.FA).Equal(f)
}

// Result is a synthesized D-reducible decomposition lattice.
type Result struct {
	Lattice  *lattice.Lattice
	Analysis *Analysis
}

// Area returns the lattice area.
func (r *Result) Area() int { return r.Lattice.Area() }

// Synthesize builds the composed lattice AND(L(χA), L(fA)). For
// non-reducible functions it degenerates to plain dual-method synthesis
// of f (χA ≡ 1 contributes nothing).
func Synthesize(f truthtab.TT, opts latsynth.Options) (*Result, error) {
	if f.IsZero() || f.IsOne() {
		return &Result{Lattice: lattice.Constant(f.IsOne())}, nil
	}
	an, err := Analyze(f)
	if err != nil {
		return nil, err
	}
	if !an.Verify(f) {
		return nil, fmt.Errorf("dreduce: decomposition identity failed (f=%v)", f)
	}
	var l *lattice.Lattice
	if !an.Reducible || an.ChiA.IsOne() {
		res, err := latsynth.DualMethod(f, opts)
		if err != nil {
			return nil, err
		}
		l = res.Lattice
	} else {
		// χA = ∧ parity checks. Composing one lattice per check keeps
		// the cost additive in the checks, whereas a joint synthesis
		// of the product would multiply their SOP sizes (each
		// weight-w affine constraint alone needs 2^(w-1) products).
		parts := make([]*lattice.Lattice, 0, len(an.Checks)+1)
		n := f.NumVars()
		for _, pc := range an.Checks {
			check := pc
			tt := truthtab.FromFunc(n, check.Holds)
			res, err := latsynth.DualMethod(tt, opts)
			if err != nil {
				return nil, err
			}
			parts = append(parts, res.Lattice)
		}
		if !an.FA.IsOne() {
			faRes, err := latsynth.DualMethod(an.FA, opts)
			if err != nil {
				return nil, err
			}
			parts = append(parts, faRes.Lattice)
		}
		l = lattice.AndAll(parts...)
		if opts.PostReduce && l.Area() <= 1200 {
			l = latsynth.PostReduce(l, f)
		}
	}
	if !l.ImplementsFast(f) {
		return nil, fmt.Errorf("dreduce: composed lattice does not implement f")
	}
	return &Result{Lattice: l, Analysis: an}, nil
}

// RandomDReducible generates a seeded random D-reducible function of n
// variables whose affine hull has the given codimension (n − dim). The
// generator draws random parity checks until they are independent, then
// fills a random nonempty on-set inside the affine space. onDensity in
// (0,1] controls how much of the space is filled. The second return
// value is the affine space used.
func RandomDReducible(n, codim int, onDensity float64, rnd interface{ Uint64() uint64 }) (truthtab.TT, *gf2.Affine) {
	if codim < 0 || codim >= n {
		panic(fmt.Sprintf("dreduce: bad codimension %d for n=%d", codim, n))
	}
	if onDensity <= 0 || onDensity > 1 {
		panic("dreduce: onDensity out of (0,1]")
	}
	msk := uint64(1)<<uint(n) - 1
	// Draw a random point and random independent directions spanning a
	// (n-codim)-dimensional space.
	p0 := rnd.Uint64() & msk
	var basis []uint64
	for len(basis) < n-codim {
		v := rnd.Uint64() & msk
		m := gf2.NewMatrix(n, append(append([]uint64(nil), basis...), v)...)
		if m.Rank() == len(basis)+1 {
			basis = append(basis, v)
		}
	}
	// Normalize to RREF so the Affine satisfies the invariant that
	// PointFromFree relies on.
	bm := gf2.NewMatrix(n, basis...)
	bm.RREF()
	aff := &gf2.Affine{N: n, Point: p0, Basis: bm.Rows}
	f := truthtab.New(n)
	nonEmpty := false
	aff.Enumerate(func(x uint64) {
		// Density threshold on a 16-bit draw.
		if float64(rnd.Uint64()&0xffff)/65536.0 < onDensity {
			f.SetBit(x, true)
			nonEmpty = true
		}
	})
	if !nonEmpty {
		f.SetBit(p0, true)
	}
	return f, aff
}
