package dreduce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nanoxbar/internal/bexpr"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/truthtab"
)

func randTT(n int, rng *rand.Rand) truthtab.TT {
	f := truthtab.New(n)
	for a := uint64(0); a < f.Size(); a++ {
		if rng.Intn(2) == 1 {
			f.SetBit(a, true)
		}
	}
	return f
}

func TestAnalyzeIdentityRandom(t *testing.T) {
	// f = χA · fA must hold for every nonzero function.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 150; i++ {
		n := 1 + rng.Intn(6)
		f := randTT(n, rng)
		if f.IsZero() {
			continue
		}
		an, err := Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		if !an.Verify(f) {
			t.Fatalf("identity broken for f=%v (dim=%d)", f, an.Affine.Dim())
		}
	}
}

func TestAnalyzeKnownReducible(t *testing.T) {
	// f = (x1 ⊕ x2) · x3: on-set within the affine plane x1⊕x2=1.
	e, err := bexpr.Parse("(x1 ^ x2) x3")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := e.TT(3)
	an, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Reducible {
		t.Fatal("function should be D-reducible")
	}
	// On-set points all satisfy x1⊕x2 = 1 AND x3 = 1, so the hull is
	// the line {x1⊕x2=1, x3=1}: dimension 1, two parity checks.
	if an.Affine.Dim() != 1 {
		t.Fatalf("dim = %d, want 1", an.Affine.Dim())
	}
	if len(an.Checks) != 2 {
		t.Fatalf("checks = %d", len(an.Checks))
	}
	if !an.Verify(f) {
		t.Fatal("identity")
	}
}

func TestAnalyzeAffineConstraintsExact(t *testing.T) {
	// Carefully: f = (x1 ⊕ x2)·x3 has on-set {110?, 011?...} over 3
	// vars: points {011, 101} wait — enumerate: x1⊕x2=1 and x3=1:
	// points (x1,x2,x3) ∈ {(1,0,1),(0,1,1)} = minterms 0b101, 0b110.
	f := truthtab.FromMinterms(3, []uint64{0b101, 0b110})
	an, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	// Hull: two points differing in bits 0,1 → dim 1, codim 2.
	if an.Affine.Dim() != 1 || len(an.Checks) != 2 {
		t.Fatalf("dim=%d checks=%d", an.Affine.Dim(), len(an.Checks))
	}
	if !an.Verify(f) {
		t.Fatal("identity")
	}
}

func TestNonReducible(t *testing.T) {
	// Functions whose on-set spans everything: e.g. all minterms.
	f := truthtab.One(3)
	an, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if an.Reducible {
		t.Fatal("constant 1 must not be reducible")
	}
	if !an.ChiA.IsOne() {
		t.Fatal("χA of full space must be 1")
	}
}

func TestAnalyzeZeroFails(t *testing.T) {
	if _, err := Analyze(truthtab.Zero(3)); err == nil {
		t.Fatal("expected error for constant 0")
	}
}

func TestFADependsOnlyOnFreeVars(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 80; i++ {
		n := 2 + rng.Intn(5)
		f := randTT(n, rng)
		if f.IsZero() {
			continue
		}
		an, err := Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		freeSet := make(map[int]bool)
		for _, v := range an.FreeVars {
			freeSet[v] = true
		}
		for v := 0; v < n; v++ {
			if !freeSet[v] && an.FA.DependsOn(v) {
				t.Fatalf("fA depends on non-free x%d (f=%v)", v+1, f)
			}
		}
	}
}

func TestSynthesizeCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	opts := latsynth.DefaultOptions()
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(4)
		f := randTT(n, rng)
		res, err := Synthesize(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Lattice.Implements(f) {
			t.Fatalf("composed lattice wrong for %v", f)
		}
	}
}

func TestSynthesizeDReducibleFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	opts := latsynth.DefaultOptions()
	for i := 0; i < 40; i++ {
		n := 3 + rng.Intn(3)
		codim := 1 + rng.Intn(2)
		f, aff := RandomDReducible(n, codim, 0.5, rng)
		if aff.Dim() != n-codim {
			t.Fatalf("generator dim %d want %d", aff.Dim(), n-codim)
		}
		an, err := Analyze(f)
		if err != nil {
			t.Fatal(err)
		}
		if !an.Reducible {
			t.Fatalf("generated function not reducible (n=%d codim=%d)", n, codim)
		}
		// The hull may be even smaller than the generator space.
		if an.Affine.Dim() > n-codim {
			t.Fatalf("hull dim %d exceeds generator dim %d", an.Affine.Dim(), n-codim)
		}
		res, err := Synthesize(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Lattice.Implements(f) {
			t.Fatal("lattice wrong for D-reducible function")
		}
	}
}

func TestRandomDReducibleOnSetInSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		n := 3 + rng.Intn(4)
		codim := 1 + rng.Intn(n-1)
		if codim >= n {
			codim = n - 1
		}
		f, aff := RandomDReducible(n, codim, 0.7, rng)
		f.ForEachMinterm(func(a uint64) {
			if !aff.Contains(a) {
				t.Fatalf("on-set point %b outside generator space", a)
			}
		})
	}
}

func TestQuickIdentity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		f := randTT(n, rng)
		if f.IsZero() {
			return true
		}
		an, err := Analyze(f)
		if err != nil {
			return false
		}
		return an.Verify(f)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { RandomDReducible(4, 4, 0.5, rng) })
	mustPanic(func() { RandomDReducible(4, 1, 0, rng) })
}
