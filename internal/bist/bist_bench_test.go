package bist

import "testing"

func BenchmarkDetectionCoverage16x16(b *testing.B) {
	s := DetectionSuite(16, 16)
	for i := 0; i < b.N; i++ {
		if got, total := s.Coverage(); got != total {
			b.Fatalf("coverage %d/%d", got, total)
		}
	}
}

func BenchmarkDiagnosisSyndrome32x32(b *testing.B) {
	s := DiagnosisSuite(32, 32)
	f := Fault{SAOpen, 17, 23}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Syndrome(f)
	}
}

func BenchmarkSimulate32x32(b *testing.B) {
	s := DetectionSuite(32, 32)
	conf := s.Configs[0].Rows
	f := Fault{ColBridge, 0, 12}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(32, 32, conf, f, ^uint64(0))
	}
}
