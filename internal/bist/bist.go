// Package bist implements the built-in self-test (BIST) and
// self-diagnosis (BISD) of Section IV-A of the DATE'17 paper for
// reconfigurable diode-style crossbars.
//
// Model. A test-mode crossbar has R horizontal product lines and C
// vertical input lines (C ≤ 64). A configuration closes a subset of
// crosspoints; row r outputs the wired-AND of the inputs on its closed
// columns (an empty row reads 1), and every row output is observable in
// test mode.
//
// The detection suite follows the paper's key idea — configure
// "single-term functions" so every sensitized fault propagates to an
// output — and achieves exhaustive coverage of the single-fault universe
// (crosspoints stuck-open/stuck-closed, broken lines, adjacent-line
// bridges, functional crosspoint faults) with a configuration count that
// does not grow with the array size (only the vector count does).
//
// The diagnosis suite encodes each crosspoint in binary across
// ⌈log2(R·C)⌉ configurations plus two disambiguators, so the pass/fail
// syndrome uniquely identifies the faulty resource — the logarithmic
// block-code scheme of the paper.
package bist

import (
	"fmt"
	"math/bits"
)

// FaultKind enumerates the single-fault universe.
type FaultKind uint8

// Fault kinds of the crossbar test model.
const (
	FaultFree  FaultKind = iota
	SAOpen               // crosspoint never closes
	SAClosed             // crosspoint never opens
	RowBreak             // product line broken: reads constant 1
	ColBreak             // input line broken: reads constant 1
	RowBridge            // rows r and r+1 short: wired-AND
	ColBridge            // cols c and c+1 short: inputs wired-AND
	Functional           // crosspoint inverts its input contribution
)

func (k FaultKind) String() string {
	switch k {
	case FaultFree:
		return "fault-free"
	case SAOpen:
		return "sa-open"
	case SAClosed:
		return "sa-closed"
	case RowBreak:
		return "row-break"
	case ColBreak:
		return "col-break"
	case RowBridge:
		return "row-bridge"
	case ColBridge:
		return "col-bridge"
	case Functional:
		return "functional"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Fault is a single fault instance. R/C index the affected crosspoint
// (SAOpen, SAClosed, Functional), row (RowBreak: R; RowBridge: rows
// R,R+1) or column (ColBreak: C; ColBridge: cols C,C+1).
type Fault struct {
	Kind FaultKind
	R, C int
}

func (f Fault) String() string {
	switch f.Kind {
	case SAOpen, SAClosed, Functional:
		return fmt.Sprintf("%v@(%d,%d)", f.Kind, f.R, f.C)
	case RowBreak, RowBridge:
		return fmt.Sprintf("%v@row%d", f.Kind, f.R)
	default:
		return fmt.Sprintf("%v@col%d", f.Kind, f.C)
	}
}

// Universe returns the complete single-fault universe for an R×C
// crossbar.
func Universe(r, c int) []Fault {
	var fs []Fault
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			fs = append(fs, Fault{SAOpen, i, j}, Fault{SAClosed, i, j}, Fault{Functional, i, j})
		}
	}
	for i := 0; i < r; i++ {
		fs = append(fs, Fault{RowBreak, i, 0})
	}
	for j := 0; j < c; j++ {
		fs = append(fs, Fault{ColBreak, 0, j})
	}
	for i := 0; i+1 < r; i++ {
		fs = append(fs, Fault{RowBridge, i, 0})
	}
	for j := 0; j+1 < c; j++ {
		fs = append(fs, Fault{ColBridge, 0, j})
	}
	return fs
}

// Config is one test configuration: a crosspoint closure pattern plus
// the input vectors applied under it. Rows are bit masks over columns.
type Config struct {
	Name    string
	Rows    []uint64 // closed crosspoints per row
	Vectors []uint64 // input vectors (bit c = input c)
}

// Suite is an ordered set of configurations.
type Suite struct {
	R, C    int
	Configs []Config
}

// NumConfigs returns the configuration count.
func (s *Suite) NumConfigs() int { return len(s.Configs) }

// NumVectors returns the total vector applications.
func (s *Suite) NumVectors() int {
	n := 0
	for _, c := range s.Configs {
		n += len(c.Vectors)
	}
	return n
}

// Simulate computes the row outputs of the crossbar under a
// configuration, input vector, and fault.
func Simulate(r, c int, conf []uint64, f Fault, v uint64) []uint64 {
	colMask := uint64(1)<<uint(c) - 1
	// Effective inputs.
	in := v & colMask
	switch f.Kind {
	case ColBreak:
		in |= 1 << uint(f.C) // floating column reads pulled-up 1
	case ColBridge:
		both := in >> uint(f.C) & 1 & (in >> uint(f.C+1) & 1)
		in &^= 3 << uint(f.C)
		in |= both<<uint(f.C) | both<<uint(f.C+1)
	}
	out := make([]uint64, r)
	for i := 0; i < r; i++ {
		m := conf[i] & colMask
		switch f.Kind {
		case SAOpen:
			if i == f.R {
				m &^= 1 << uint(f.C)
			}
		case SAClosed:
			if i == f.R {
				m |= 1 << uint(f.C)
			}
		}
		eff := in
		if f.Kind == Functional && i == f.R && m>>uint(f.C)&1 == 1 {
			eff ^= 1 << uint(f.C) // device inverts its contribution
		}
		// Wired-AND of connected inputs; empty row pulls up to 1.
		if eff&m == m {
			out[i] = 1
		}
	}
	if f.Kind == RowBreak {
		out[f.R] = 1
	}
	if f.Kind == RowBridge {
		and := out[f.R] & out[f.R+1]
		out[f.R], out[f.R+1] = and, and
	}
	return out
}

// golden is Simulate with no fault.
func golden(r, c int, conf []uint64, v uint64) []uint64 {
	return Simulate(r, c, conf, Fault{Kind: FaultFree}, v)
}

// Detects reports whether the suite distinguishes the fault from the
// fault-free crossbar (some configuration and vector produce differing
// outputs).
func (s *Suite) Detects(f Fault) bool {
	for _, cfg := range s.Configs {
		for _, v := range cfg.Vectors {
			g := golden(s.R, s.C, cfg.Rows, v)
			b := Simulate(s.R, s.C, cfg.Rows, f, v)
			for i := range g {
				if g[i] != b[i] {
					return true
				}
			}
		}
	}
	return false
}

// Coverage fault-simulates the whole universe and returns the detected
// and total counts.
func (s *Suite) Coverage() (detected, total int) {
	for _, f := range Universe(s.R, s.C) {
		total++
		if s.Detects(f) {
			detected++
		}
	}
	return detected, total
}

// --- detection suite ---

func allRows(r int, m uint64) []uint64 {
	rows := make([]uint64, r)
	for i := range rows {
		rows[i] = m
	}
	return rows
}

// walkingZeros returns the all-ones vector followed by each
// single-zero vector.
func walkingZeros(c int) []uint64 {
	msk := uint64(1)<<uint(c) - 1
	vs := []uint64{msk}
	for j := 0; j < c; j++ {
		vs = append(vs, msk&^(1<<uint(j)))
	}
	return vs
}

// DetectionSuite builds the exhaustive-coverage test set:
//
//	all-closed  + walking-zero vectors  (sa-open, breaks, functional)
//	all-open    + walking-zero vectors  (sa-closed)
//	alternating rows + {all-0, all-1}   (row bridges)
//	single-term diagonals + walking-0   (column bridges; the paper's
//	                                     single-term configurations)
//
// The configuration count is 3 + ⌈C/R⌉ independent of fault count; the
// vector count grows linearly with C.
func DetectionSuite(r, c int) *Suite {
	if c > 64 {
		panic("bist: more than 64 columns unsupported")
	}
	msk := uint64(1)<<uint(c) - 1
	s := &Suite{R: r, C: c}
	s.Configs = append(s.Configs,
		Config{Name: "all-closed", Rows: allRows(r, msk), Vectors: walkingZeros(c)},
		Config{Name: "all-open", Rows: allRows(r, 0), Vectors: walkingZeros(c)},
	)
	alt := make([]uint64, r)
	for i := range alt {
		if i%2 == 0 {
			alt[i] = msk
		}
	}
	s.Configs = append(s.Configs, Config{Name: "alternating-rows", Rows: alt, Vectors: []uint64{0, msk}})
	// Diagonal single-term configurations: shift k makes row i select
	// column (i+k) mod c; shifts step by r so that every column is
	// selected by some row in some diagonal.
	for k := 0; k < c; k += r {
		rows := make([]uint64, r)
		for i := range rows {
			rows[i] = 1 << uint((i+k)%c)
		}
		s.Configs = append(s.Configs, Config{
			Name:    fmt.Sprintf("diagonal-%d", k),
			Rows:    rows,
			Vectors: walkingZeros(c),
		})
	}
	return s
}

// --- diagnosis suite ---

// DiagnosisSuite builds the logarithmic BISD configuration set. The
// pass/fail outcomes across configurations (the syndrome) uniquely
// encode the faulty resource, the paper's block-code scheme:
//
//   - ⌈log2(R·C)⌉ cell-code configurations — crosspoint (i,j) is closed
//     in configuration b iff bit b of i·C+j is set — give stuck-open
//     faults the syndrome "binary cell address" and stuck-closed faults
//     its complement;
//   - all-closed and all-open disambiguate the two stuck polarities;
//   - col0-only and row0-only separate broken-line faults (which involve
//     a whole row or column) from single-cell faults that alias them on
//     power-of-two array sizes;
//   - alternating rows/columns plus ⌈log2⌉ boundary-coded configurations
//     localize bridge faults: a set of rows S detects the bridge at
//     position p iff p lies on the boundary of S, and any desired
//     boundary set is realized by its prefix-parity row set, so binary
//     position codes become realizable boundary families.
//
// Total configurations: ~2·log2(R·C) + 6, logarithmic in the resource
// count as the paper claims.
func DiagnosisSuite(r, c int) *Suite {
	if c > 64 {
		panic("bist: more than 64 columns unsupported")
	}
	nRes := r * c
	bitsNeeded := 1
	for 1<<uint(bitsNeeded) < nRes {
		bitsNeeded++
	}
	msk := uint64(1)<<uint(c) - 1
	s := &Suite{R: r, C: c}
	for b := 0; b < bitsNeeded; b++ {
		rows := make([]uint64, r)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if (i*c+j)>>uint(b)&1 == 1 {
					rows[i] |= 1 << uint(j)
				}
			}
		}
		s.Configs = append(s.Configs, Config{
			Name:    fmt.Sprintf("cell-bit-%d", b),
			Rows:    rows,
			Vectors: walkingZeros(c),
		})
	}
	s.Configs = append(s.Configs,
		Config{Name: "all-closed", Rows: allRows(r, msk), Vectors: walkingZeros(c)},
		Config{Name: "all-open", Rows: allRows(r, 0), Vectors: walkingZeros(c)},
		Config{Name: "col0-only", Rows: allRows(r, 1), Vectors: walkingZeros(c)},
	)
	row0 := make([]uint64, r)
	row0[0] = msk
	s.Configs = append(s.Configs, Config{Name: "row0-only", Rows: row0, Vectors: walkingZeros(c)})

	// Row-bridge localization: full-row sets whose boundaries encode
	// the bridge position in binary (plus the everywhere-boundary
	// alternating set so position 0 is not all-pass).
	if r >= 2 {
		addRowSet := func(name string, member []bool) {
			rows := make([]uint64, r)
			for i := range rows {
				if member[i] {
					rows[i] = msk
				}
			}
			s.Configs = append(s.Configs, Config{Name: name, Rows: rows, Vectors: walkingZeros(c)})
		}
		alt := make([]bool, r)
		for i := range alt {
			alt[i] = i%2 == 1
		}
		addRowSet("alt-rows", alt)
		for b := 0; positionBitUsed(r-1, b); b++ {
			addRowSet(fmt.Sprintf("row-bridge-bit-%d", b), prefixParitySet(r, b))
		}
	}
	// Column-bridge localization: full-column sets, same coding.
	if c >= 2 {
		addColSet := func(name string, member []bool) {
			var m uint64
			for j := range member {
				if member[j] {
					m |= 1 << uint(j)
				}
			}
			s.Configs = append(s.Configs, Config{Name: name, Rows: allRows(r, m), Vectors: walkingZeros(c)})
		}
		alt := make([]bool, c)
		for j := range alt {
			alt[j] = j%2 == 1
		}
		addColSet("alt-cols", alt)
		for b := 0; positionBitUsed(c-1, b); b++ {
			addColSet(fmt.Sprintf("col-bridge-bit-%d", b), prefixParitySet(c, b))
		}
	}
	return s
}

// positionBitUsed reports whether bit b occurs in any position index
// 0..nPos-1.
func positionBitUsed(nPos, b int) bool {
	return nPos > 0 && b < bits.Len(uint(nPos-1))
}

// prefixParitySet returns the membership of the n-element line set whose
// boundary is exactly the positions p (between elements p and p+1) with
// bit b of p set: element i belongs iff an odd number of positions
// below i have bit b set.
func prefixParitySet(n, b int) []bool {
	member := make([]bool, n)
	parity := false
	for i := 0; i < n; i++ {
		member[i] = parity
		// Position i sits between elements i and i+1.
		if i>>uint(b)&1 == 1 {
			parity = !parity
		}
	}
	return member
}

// Syndrome returns the per-configuration pass(false)/fail(true) outcome
// vector for a fault under the suite.
func (s *Suite) Syndrome(f Fault) []bool {
	syn := make([]bool, len(s.Configs))
	for k, cfg := range s.Configs {
		for _, v := range cfg.Vectors {
			g := golden(s.R, s.C, cfg.Rows, v)
			b := Simulate(s.R, s.C, cfg.Rows, f, v)
			for i := range g {
				if g[i] != b[i] {
					syn[k] = true
				}
			}
			if syn[k] {
				break
			}
		}
	}
	return syn
}

func synKey(syn []bool) string {
	b := make([]byte, len(syn))
	for i, v := range syn {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// Diagnose returns every fault in the universe whose syndrome matches.
// With the DiagnosisSuite the result is a single fault (or a set of
// physically equivalent ones).
func (s *Suite) Diagnose(syn []bool) []Fault {
	key := synKey(syn)
	var out []Fault
	for _, f := range Universe(s.R, s.C) {
		if synKey(s.Syndrome(f)) == key {
			out = append(out, f)
		}
	}
	return out
}

// SyndromeTable maps syndrome keys to the faults producing them; used to
// audit diagnosability (ambiguity groups).
func (s *Suite) SyndromeTable() map[string][]Fault {
	tbl := make(map[string][]Fault)
	for _, f := range Universe(s.R, s.C) {
		k := synKey(s.Syndrome(f))
		tbl[k] = append(tbl[k], f)
	}
	return tbl
}

// LogBound returns the diagnosis configuration count of DiagnosisSuite
// in closed form — Θ(log(R·C)) — for reporting against the paper's
// logarithmic claim.
func LogBound(r, c int) int {
	cellBits := 1
	for 1<<uint(cellBits) < r*c {
		cellBits++
	}
	n := cellBits + 4 // cell bits + all-closed, all-open, col0-only, row0-only
	if r >= 2 {
		n++ // alt-rows
		if r-1 > 1 {
			n += bits.Len(uint(r - 2))
		}
	}
	if c >= 2 {
		n++ // alt-cols
		if c-1 > 1 {
			n += bits.Len(uint(c - 2))
		}
	}
	return n
}
