package bist

import (
	"fmt"
	"testing"
)

func TestSimulateFaultFree(t *testing.T) {
	// 2×3 all-closed: output = AND of all inputs.
	conf := []uint64{0b111, 0b111}
	out := Simulate(2, 3, conf, Fault{Kind: FaultFree}, 0b111)
	if out[0] != 1 || out[1] != 1 {
		t.Fatal("all-ones should read 1")
	}
	out = Simulate(2, 3, conf, Fault{Kind: FaultFree}, 0b101)
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("a zero input must pull the wired-AND low")
	}
	// Empty rows read pulled-up 1.
	out = Simulate(2, 3, []uint64{0, 0b1}, Fault{Kind: FaultFree}, 0)
	if out[0] != 1 || out[1] != 0 {
		t.Fatal("empty row must read 1")
	}
}

func TestSimulateFaults(t *testing.T) {
	conf := []uint64{0b11, 0b11}
	// SA-open removes the literal: row ignores the zeroed column.
	out := Simulate(2, 2, conf, Fault{SAOpen, 0, 1}, 0b01)
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("sa-open: %v", out)
	}
	// SA-closed adds the literal in an open row.
	out = Simulate(2, 2, []uint64{0, 0}, Fault{SAClosed, 1, 0}, 0b10)
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("sa-closed: %v", out)
	}
	// Row break reads constant 1.
	out = Simulate(2, 2, conf, Fault{RowBreak, 0, 0}, 0b00)
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("row-break: %v", out)
	}
	// Column break reads pulled-up 1.
	out = Simulate(1, 2, []uint64{0b11}, Fault{ColBreak, 0, 0}, 0b10)
	if out[0] != 1 {
		t.Fatalf("col-break: %v", out)
	}
	// Row bridge wire-ANDs adjacent outputs.
	out = Simulate(2, 2, []uint64{0b01, 0}, Fault{RowBridge, 0, 0}, 0b00)
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("row-bridge: %v", out)
	}
	// Column bridge wire-ANDs adjacent inputs.
	out = Simulate(1, 2, []uint64{0b10}, Fault{ColBridge, 0, 0}, 0b10)
	if out[0] != 0 {
		t.Fatalf("col-bridge: %v", out)
	}
	// Functional fault inverts the contribution.
	out = Simulate(1, 2, []uint64{0b11}, Fault{Functional, 0, 0}, 0b11)
	if out[0] != 0 {
		t.Fatalf("functional: %v", out)
	}
}

func TestUniverseSize(t *testing.T) {
	r, c := 3, 4
	u := Universe(r, c)
	want := 3*r*c + r + c + (r - 1) + (c - 1)
	if len(u) != want {
		t.Fatalf("universe size %d, want %d", len(u), want)
	}
}

func TestDetectionFullCoverage(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 2}, {3, 5}, {4, 4}, {5, 3}, {8, 8}, {6, 10}}
	for _, sh := range shapes {
		r, c := sh[0], sh[1]
		s := DetectionSuite(r, c)
		det, total := s.Coverage()
		if det != total {
			// Identify what was missed for the failure message.
			var missed []Fault
			for _, f := range Universe(r, c) {
				if !s.Detects(f) {
					missed = append(missed, f)
				}
			}
			t.Fatalf("%d×%d: coverage %d/%d, missed %v", r, c, det, total, missed)
		}
	}
}

func TestDetectionConfigCountConstant(t *testing.T) {
	// Configuration count must not grow with R and only by ⌈C/R⌉ with C.
	for _, sh := range [][2]int{{4, 4}, {16, 16}, {32, 32}, {64, 64}} {
		s := DetectionSuite(sh[0], sh[1])
		want := 3 + (sh[1]+sh[0]-1)/sh[0]
		if s.NumConfigs() != want {
			t.Fatalf("%v: %d configs, want %d", sh, s.NumConfigs(), want)
		}
	}
}

func TestDiagnosisSyndromeUniqueness(t *testing.T) {
	// Every ambiguity group must consist of faults of the same physical
	// resource (same crosspoint, or known degenerate equivalences on
	// 1-wide arrays).
	shapes := [][2]int{{2, 2}, {3, 3}, {4, 4}, {2, 5}, {5, 2}, {4, 8}}
	for _, sh := range shapes {
		r, c := sh[0], sh[1]
		s := DiagnosisSuite(r, c)
		for key, group := range s.SyndromeTable() {
			if len(group) == 1 {
				continue
			}
			// All members must name the same resource.
			sameCell := true
			for _, f := range group[1:] {
				if !sameResource(group[0], f) {
					sameCell = false
					break
				}
			}
			if !sameCell {
				t.Fatalf("%d×%d: ambiguous syndrome %s: %v", r, c, key, group)
			}
		}
	}
}

// sameResource groups faults that point at the same repair unit: the
// same crosspoint (stuck-open and functional faults of one cell are
// repaired identically — avoid the cell).
func sameResource(a, b Fault) bool {
	cellKind := func(k FaultKind) bool { return k == SAOpen || k == Functional }
	if cellKind(a.Kind) && cellKind(b.Kind) {
		return a.R == b.R && a.C == b.C
	}
	return a.Kind == b.Kind && a.R == b.R && a.C == b.C
}

func TestDiagnosisLogarithmicCount(t *testing.T) {
	for _, sh := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {16, 16}, {16, 32}} {
		s := DiagnosisSuite(sh[0], sh[1])
		if got, want := s.NumConfigs(), LogBound(sh[0], sh[1]); got != want {
			t.Fatalf("%v: %d configs, want log bound %d", sh, got, want)
		}
	}
	// Growth check: doubling each dimension (4× the resources) adds a
	// constant number of configurations (2 cell bits + 1 per bridge
	// code), i.e. configurations grow logarithmically, not linearly.
	d8 := DiagnosisSuite(8, 8).NumConfigs()
	d16 := DiagnosisSuite(16, 16).NumConfigs()
	d32 := DiagnosisSuite(32, 32).NumConfigs()
	if d16-d8 != d32-d16 {
		t.Fatalf("log growth violated: %d → %d → %d", d8, d16, d32)
	}
	if d16-d8 > 4 {
		t.Fatalf("growth per quadrupling too steep: %d", d16-d8)
	}
}

func TestDiagnoseRoundTrip(t *testing.T) {
	r, c := 4, 5
	s := DiagnosisSuite(r, c)
	cases := []Fault{
		{SAOpen, 2, 3}, {SAClosed, 0, 4}, {RowBreak, 1, 0},
		{ColBreak, 0, 2}, {RowBridge, 2, 0}, {ColBridge, 0, 1},
	}
	for _, f := range cases {
		got := s.Diagnose(s.Syndrome(f))
		found := false
		for _, g := range got {
			if g == f {
				found = true
			}
			if !sameResource(g, f) {
				t.Fatalf("diagnosis of %v returned unrelated %v", f, g)
			}
		}
		if !found {
			t.Fatalf("diagnosis of %v missed it: %v", f, got)
		}
	}
}

func TestFaultFreeSyndromeAllPass(t *testing.T) {
	s := DiagnosisSuite(3, 3)
	for _, b := range s.Syndrome(Fault{Kind: FaultFree}) {
		if b {
			t.Fatal("fault-free crossbar failed a diagnosis config")
		}
	}
}

func TestSuiteCounts(t *testing.T) {
	s := DetectionSuite(4, 6)
	if s.NumVectors() == 0 || s.NumConfigs() == 0 {
		t.Fatal("empty suite")
	}
	// Vector count grows linearly in C: (C+1) per walking config.
	perWalk := 6 + 1
	want := perWalk + perWalk + 2 + ((6+3)/4)*perWalk
	if s.NumVectors() != want {
		t.Fatalf("vectors = %d, want %d", s.NumVectors(), want)
	}
}

func TestStringForms(t *testing.T) {
	f := Fault{SAOpen, 1, 2}
	if f.String() != "sa-open@(1,2)" {
		t.Fatalf("fault string %q", f)
	}
	if (Fault{RowBreak, 3, 0}).String() != "row-break@row3" {
		t.Fatal("row fault string")
	}
	if fmt.Sprint(FaultFree) != "fault-free" {
		t.Fatal("kind string")
	}
}

func TestPanicsOnWideArray(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 columns")
		}
	}()
	DetectionSuite(2, 65)
}
