// Package xbar2t models two-terminal switch nano-crossbar arrays —
// diode-based (diode-resistor logic) and FET-based (complementary
// CMOS-like logic) — and the array-size formulas of Fig. 3 of the
// DATE'17 paper. Boolean functions are implemented in sum-of-products
// form only, the paper's structural constraint for two-terminal
// crossbars.
//
// Size formulas (Fig. 3, with L(f) = number of distinct literals,
// P(·) = number of products of the minimized SOP):
//
//	diode array:   P(f) × (L(f) + 1)
//	FET array:     L(f) × (P(f) + P(f^D))
//
// and Fig. 5 for the four-terminal lattice: P(f^D) × P(f).
//
// The structural models evaluate the arrays crosspoint by crosspoint so
// that the fault-tolerance packages can reuse them with injected
// defects.
package xbar2t

import (
	"fmt"
	"strings"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/truthtab"
)

// Sizes aggregates the paper's array-size formulas for one function.
type Sizes struct {
	DiodeRows, DiodeCols     int
	FETRows, FETCols         int
	LatticeRows, LatticeCols int
}

// DiodeArea returns rows×columns of the diode array.
func (s Sizes) DiodeArea() int { return s.DiodeRows * s.DiodeCols }

// FETArea returns rows×columns of the FET array.
func (s Sizes) FETArea() int { return s.FETRows * s.FETCols }

// LatticeArea returns rows×columns of the four-terminal lattice formula.
func (s Sizes) LatticeArea() int { return s.LatticeRows * s.LatticeCols }

// FormulaSizes evaluates the Fig. 3 and Fig. 5 formulas on SOP covers of
// f (fc) and of its dual (dc).
func FormulaSizes(fc, dc cube.Cover) Sizes {
	return Sizes{
		DiodeRows: fc.NumProducts(), DiodeCols: fc.DistinctLiterals() + 1,
		FETRows: fc.DistinctLiterals(), FETCols: fc.NumProducts() + dc.NumProducts(),
		LatticeRows: dc.NumProducts(), LatticeCols: fc.NumProducts(),
	}
}

// DiodeArray is a diode-resistor logic crossbar: one row (horizontal
// nanowire) per product, one column (vertical nanowire) per distinct
// literal, plus one output column that wire-ORs the product rows.
type DiodeArray struct {
	Products cube.Cover
	Literals []cube.Lit // column order
	// Crosspoints[r][c] is true when a diode joins product row r to
	// literal column c.
	Crosspoints [][]bool
}

// NewDiodeArray builds the array for an SOP cover.
func NewDiodeArray(fc cube.Cover) *DiodeArray {
	lits := coverLiterals(fc)
	a := &DiodeArray{Products: fc.Clone(), Literals: lits}
	a.Crosspoints = make([][]bool, len(fc))
	for r, p := range fc {
		row := make([]bool, len(lits))
		for c, l := range lits {
			row[c] = p.HasLiteral(l.Var, l.Neg)
		}
		a.Crosspoints[r] = row
	}
	return a
}

// Rows returns the row count (products).
func (a *DiodeArray) Rows() int { return len(a.Products) }

// Cols returns the column count including the output column.
func (a *DiodeArray) Cols() int { return len(a.Literals) + 1 }

// Area returns Rows × Cols, the Fig. 3 diode size.
func (a *DiodeArray) Area() int { return a.Rows() * a.Cols() }

// Eval computes the output for input assignment x: each product row is
// the wired-AND of its connected literal columns; the output column is
// the wired-OR of the rows.
func (a *DiodeArray) Eval(x uint64) bool {
	for r := range a.Crosspoints {
		all := true
		for c, connected := range a.Crosspoints[r] {
			if !connected {
				continue
			}
			l := a.Literals[c]
			v := x>>uint(l.Var)&1 == 1
			if v == l.Neg {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// Function expands the array's output over n variables.
func (a *DiodeArray) Function(n int) truthtab.TT {
	return truthtab.FromFunc(n, a.Eval)
}

// String renders the crosspoint matrix with literal column headers.
func (a *DiodeArray) String() string {
	var sb strings.Builder
	sb.WriteString("diode array (rows=products, cols=literals+out)\n")
	for _, l := range a.Literals {
		fmt.Fprintf(&sb, "%4s", l.String())
	}
	sb.WriteString(" out\n")
	for r := range a.Crosspoints {
		for _, on := range a.Crosspoints[r] {
			if on {
				sb.WriteString("   D")
			} else {
				sb.WriteString("   .")
			}
		}
		sb.WriteString("   D\n")
	}
	return sb.String()
}

// DriveState describes the FET array's output node condition.
type DriveState int

// Output drive conditions.
const (
	Driven DriveState = iota
	Floating
	Conflict
)

// FETArray is a complementary FET crossbar: N-type series chains (one
// column per product of f) connect the output to VDD when their product
// holds, and P-type chains (one column per product of f^D, evaluated on
// complemented inputs) connect the output to GND when f is 0. Rows are
// the distinct literal input lines of both planes.
type FETArray struct {
	FProducts cube.Cover // pull-up plane (one column each)
	DProducts cube.Cover // pull-down plane (one column each)
	Rows      []cube.Lit // input lines
}

// NewFETArray builds the array from covers of f and f^D.
func NewFETArray(fc, dc cube.Cover) *FETArray {
	all := append(fc.Clone(), dc...)
	return &FETArray{FProducts: fc.Clone(), DProducts: dc.Clone(), Rows: coverLiterals(all)}
}

// NumRows returns the input-line count of the structural model (distinct
// literals of both planes; the Fig. 3 formula counts only f's).
func (a *FETArray) NumRows() int { return len(a.Rows) }

// NumCols returns P(f) + P(f^D).
func (a *FETArray) NumCols() int { return len(a.FProducts) + len(a.DProducts) }

// Area returns the structural array size.
func (a *FETArray) Area() int { return a.NumRows() * a.NumCols() }

// EvalDrive returns the electrical output state and its value for input
// x. For implicant covers of a dual pair (f, f^D) the output is always
// Driven; Floating or Conflict indicate a malformed or faulty array.
func (a *FETArray) EvalDrive(x uint64) (bool, DriveState) {
	up := false // some f product chain conducts → output 1
	for _, p := range a.FProducts {
		if p.Eval(x) {
			up = true
			break
		}
	}
	down := false // some dual chain conducts on complemented inputs → output 0
	for _, q := range a.DProducts {
		if q.Eval(^x) { // P-type devices see complemented inputs
			down = true
			break
		}
	}
	switch {
	case up && down:
		return false, Conflict
	case up:
		return true, Driven
	case down:
		return false, Driven
	default:
		return false, Floating
	}
}

// Eval returns the output value (Conflict/Floating read as 0).
func (a *FETArray) Eval(x uint64) bool {
	v, st := a.EvalDrive(x)
	return v && st == Driven
}

// Function expands the output over n variables.
func (a *FETArray) Function(n int) truthtab.TT {
	return truthtab.FromFunc(n, a.Eval)
}

// WellFormed reports whether the output is driven without conflict for
// every assignment over n variables.
func (a *FETArray) WellFormed(n int) bool {
	for x := uint64(0); x < uint64(1)<<uint(n); x++ {
		if _, st := a.EvalDrive(x); st != Driven {
			return false
		}
	}
	return true
}

// String renders both planes.
func (a *FETArray) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FET array: %d input rows, %d N-columns (f), %d P-columns (f^D)\n",
		a.NumRows(), len(a.FProducts), len(a.DProducts))
	for _, l := range a.Rows {
		fmt.Fprintf(&sb, "%4s:", l.String())
		for _, p := range a.FProducts {
			if p.HasLiteral(l.Var, l.Neg) {
				sb.WriteString("  N")
			} else {
				sb.WriteString("  .")
			}
		}
		sb.WriteString(" |")
		for _, q := range a.DProducts {
			if q.HasLiteral(l.Var, l.Neg) {
				sb.WriteString("  P")
			} else {
				sb.WriteString("  .")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// coverLiterals lists the distinct literals of a cover in ascending
// (variable, polarity) order.
func coverLiterals(cv cube.Cover) []cube.Lit {
	pos, neg := cv.LiteralMasks()
	var ls []cube.Lit
	for v := 0; v < 64; v++ {
		if pos>>uint(v)&1 == 1 {
			ls = append(ls, cube.Lit{Var: v})
		}
		if neg>>uint(v)&1 == 1 {
			ls = append(ls, cube.Lit{Var: v, Neg: true})
		}
	}
	return ls
}
