package xbar2t

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/qm"
	"nanoxbar/internal/truthtab"
)

func covers(t *testing.T, f truthtab.TT) (cube.Cover, cube.Cover) {
	t.Helper()
	fc, err := qm.MinimizeTT(f, qm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := qm.MinimizeTT(f.Dual(), qm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return fc, dc
}

func randTT(n int, rng *rand.Rand) truthtab.TT {
	f := truthtab.New(n)
	for a := uint64(0); a < f.Size(); a++ {
		if rng.Intn(2) == 1 {
			f.SetBit(a, true)
		}
	}
	return f
}

func TestPaperFig3And5Examples(t *testing.T) {
	// §III-A: f = x1x2 + x1'x2' → diode 2×5, FET 4×4; §III-B → lattice 2×2.
	f := truthtab.FromMinterms(2, []uint64{0, 3})
	fc, dc := covers(t, f)
	s := FormulaSizes(fc, dc)
	if s.DiodeRows != 2 || s.DiodeCols != 5 {
		t.Fatalf("diode %d×%d, want 2×5", s.DiodeRows, s.DiodeCols)
	}
	if s.FETRows != 4 || s.FETCols != 4 {
		t.Fatalf("FET %d×%d, want 4×4", s.FETRows, s.FETCols)
	}
	if s.LatticeRows != 2 || s.LatticeCols != 2 {
		t.Fatalf("lattice %d×%d, want 2×2", s.LatticeRows, s.LatticeCols)
	}
	if s.DiodeArea() != 10 || s.FETArea() != 16 || s.LatticeArea() != 4 {
		t.Fatal("areas wrong")
	}
}

func TestDiodeArrayFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(5)
		f := randTT(n, rng)
		fc, _ := covers(t, f)
		a := NewDiodeArray(fc)
		if !a.Function(n).Equal(f) {
			t.Fatalf("diode array computes wrong function for %v", f)
		}
		if a.Rows() != len(fc) || a.Cols() != fc.DistinctLiterals()+1 {
			t.Fatalf("diode shape %d×%d", a.Rows(), a.Cols())
		}
	}
}

func TestDiodeEmptyAndUniverse(t *testing.T) {
	// Constant 0: no products.
	a := NewDiodeArray(cube.Cover{})
	if a.Eval(0) || a.Rows() != 0 {
		t.Fatal("empty cover")
	}
	// Universe cube row: conducts for every input.
	u := NewDiodeArray(cube.Cover{cube.Universe})
	if !u.Eval(0) || !u.Eval(7) {
		t.Fatal("universe row")
	}
}

func TestFETArrayFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(5)
		f := randTT(n, rng)
		if f.IsZero() || f.IsOne() {
			continue
		}
		fc, dc := covers(t, f)
		a := NewFETArray(fc, dc)
		if !a.WellFormed(n) {
			t.Fatalf("FET array not always driven for %v", f)
		}
		if !a.Function(n).Equal(f) {
			t.Fatalf("FET array computes wrong function for %v", f)
		}
		if a.NumCols() != len(fc)+len(dc) {
			t.Fatal("FET column count")
		}
	}
}

func TestFETComplementaryNeverConflicts(t *testing.T) {
	// The dual-pair structure guarantees exactly one plane conducts.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		n := 2 + rng.Intn(4)
		f := randTT(n, rng)
		if f.IsZero() || f.IsOne() {
			continue
		}
		fc, dc := covers(t, f)
		a := NewFETArray(fc, dc)
		for x := uint64(0); x < uint64(1)<<uint(n); x++ {
			if _, st := a.EvalDrive(x); st != Driven {
				t.Fatalf("state %v at %b for %v", st, x, f)
			}
		}
	}
}

func TestFETMalformedDetected(t *testing.T) {
	// Pairing f with a non-dual plane must float or conflict somewhere.
	fc, _, _ := cube.ParseSOP("x1")
	wrong, _, _ := cube.ParseSOP("x1") // dual of x1 is x1; use x2 to break it
	wrong[0] = cube.FromLiteral(1, false)
	a := NewFETArray(fc, wrong)
	if a.WellFormed(2) {
		t.Fatal("malformed pairing should not be well formed")
	}
}

func TestFormulaMonotonicProducts(t *testing.T) {
	// More products must never shrink the formula sizes.
	f1, _, _ := cube.ParseSOP("x1x2")
	f2, _, _ := cube.ParseSOP("x1x2 + x3x4")
	d, _, _ := cube.ParseSOP("x1 + x2")
	s1 := FormulaSizes(f1, d)
	s2 := FormulaSizes(f2, d)
	if s2.DiodeArea() <= s1.DiodeArea() || s2.FETCols <= s1.FETCols {
		t.Fatal("formula not monotone in products")
	}
}

func TestDiodeString(t *testing.T) {
	fc, _, _ := cube.ParseSOP("x1x2 + x1'x2'")
	s := NewDiodeArray(fc).String()
	if len(s) == 0 || s[0] != 'd' {
		t.Fatalf("rendering: %q", s)
	}
}

func TestFETString(t *testing.T) {
	f := truthtab.FromMinterms(2, []uint64{0, 3})
	fc, dc := covers(t, f)
	s := NewFETArray(fc, dc).String()
	if len(s) == 0 {
		t.Fatal("empty rendering")
	}
}
