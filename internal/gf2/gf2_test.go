package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if Dot(0b101, 0b100) != 1 || Dot(0b101, 0b101) != 0 || Dot(0, 0xffff) != 0 {
		t.Fatal("dot products wrong")
	}
}

func TestRREFIdentity(t *testing.T) {
	m := NewMatrix(3, 0b001, 0b010, 0b100)
	p := m.RREF()
	if len(p) != 3 {
		t.Fatalf("pivots = %v", p)
	}
	if m.Rows[0] != 1 || m.Rows[1] != 2 || m.Rows[2] != 4 {
		t.Fatalf("rows = %v", m.Rows)
	}
}

func TestRankAndDependence(t *testing.T) {
	m := NewMatrix(4, 0b0011, 0b0110, 0b0101) // r3 = r1 ⊕ r2
	if m.Rank() != 2 {
		t.Fatalf("rank = %d", m.Rank())
	}
	if len(m.Rows) != 3 {
		t.Fatal("Rank must not modify the matrix")
	}
}

func TestNullSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		cols := 1 + rng.Intn(10)
		nRows := rng.Intn(6)
		rows := make([]uint64, nRows)
		for j := range rows {
			rows[j] = rng.Uint64() & mask(cols)
		}
		m := NewMatrix(cols, rows...)
		ns := m.NullSpace()
		// Dimension theorem.
		if len(ns)+m.Rank() != cols {
			t.Fatalf("rank %d + nullity %d != %d", m.Rank(), len(ns), cols)
		}
		// Every basis vector is annihilated by every row.
		for _, v := range ns {
			for _, r := range rows {
				if Dot(r, v) != 0 {
					t.Fatalf("null vector %b not annihilated by row %b", v, r)
				}
			}
		}
		// Null basis is independent.
		nm := NewMatrix(cols, ns...)
		if nm.Rank() != len(ns) {
			t.Fatal("null basis dependent")
		}
	}
}

func TestSpanContains(t *testing.T) {
	m := NewMatrix(4, 0b0011, 0b0110)
	cases := map[uint64]bool{
		0b0000: true, 0b0011: true, 0b0110: true, 0b0101: true,
		0b0001: false, 0b1000: false, 0b0111: false,
	}
	for v, want := range cases {
		if m.SpanContains(v) != want {
			t.Fatalf("SpanContains(%04b) != %v", v, want)
		}
	}
}

func TestAffineHullFullSpace(t *testing.T) {
	// All 8 points of GF(2)^3 → hull is the whole space.
	pts := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	a := AffineHull(3, pts)
	if a.Dim() != 3 {
		t.Fatalf("dim = %d", a.Dim())
	}
}

func TestAffineHullSinglePoint(t *testing.T) {
	a := AffineHull(5, []uint64{0b10110})
	if a.Dim() != 0 {
		t.Fatal("single point hull must be 0-dim")
	}
	if !a.Contains(0b10110) || a.Contains(0) {
		t.Fatal("containment wrong")
	}
	checks := a.ParityChecks()
	if len(checks) != 5 {
		t.Fatalf("%d checks", len(checks))
	}
}

func TestAffineHullPlane(t *testing.T) {
	// Points with x0 ⊕ x1 = 1 inside GF(2)^3: an affine plane of dim 2.
	var pts []uint64
	for x := uint64(0); x < 8; x++ {
		if (x&1)^(x>>1&1) == 1 {
			pts = append(pts, x)
		}
	}
	a := AffineHull(3, pts)
	if a.Dim() != 2 {
		t.Fatalf("dim = %d", a.Dim())
	}
	for x := uint64(0); x < 8; x++ {
		want := (x&1)^(x>>1&1) == 1
		if a.Contains(x) != want {
			t.Fatalf("Contains(%03b) = %v", x, a.Contains(x))
		}
	}
	checks := a.ParityChecks()
	if len(checks) != 1 {
		t.Fatalf("checks = %v", checks)
	}
	for x := uint64(0); x < 8; x++ {
		want := (x&1)^(x>>1&1) == 1
		if checks[0].Holds(x) != want {
			t.Fatal("parity check disagrees with membership")
		}
	}
}

func TestParityChecksCharacterize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(7)
		k := 1 + rng.Intn(4)
		pts := make([]uint64, k)
		for j := range pts {
			pts[j] = rng.Uint64() & mask(n)
		}
		a := AffineHull(n, pts)
		checks := a.ParityChecks()
		if len(checks) != n-a.Dim() {
			t.Fatalf("%d checks for dim %d in n=%d", len(checks), a.Dim(), n)
		}
		for x := uint64(0); x < 1<<uint(n); x++ {
			all := true
			for _, c := range checks {
				if !c.Holds(x) {
					all = false
					break
				}
			}
			if all != a.Contains(x) {
				t.Fatalf("checks vs Contains mismatch at %b", x)
			}
		}
	}
}

func TestFreeCoordinatesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(7)
		k := 1 + rng.Intn(5)
		pts := make([]uint64, k)
		for j := range pts {
			pts[j] = rng.Uint64() & mask(n)
		}
		a := AffineHull(n, pts)
		free := a.FreeCoordinates()
		if len(free) != a.Dim() {
			t.Fatalf("free = %v, dim = %d", free, a.Dim())
		}
		// Every assignment of free coordinates yields a distinct point
		// of A with those coordinate values.
		seen := make(map[uint64]bool)
		for fv := uint64(0); fv < 1<<uint(len(free)); fv++ {
			x := a.PointFromFree(free, fv)
			if !a.Contains(x) {
				t.Fatalf("reconstructed point %b not in A", x)
			}
			for bi, c := range free {
				if x>>uint(c)&1 != fv>>uint(bi)&1 {
					t.Fatalf("free coordinate %d wrong in %b", c, x)
				}
			}
			if seen[x] {
				t.Fatal("duplicate point from distinct free values")
			}
			seen[x] = true
		}
		if len(seen) != 1<<uint(a.Dim()) {
			t.Fatal("parameterization not a bijection")
		}
	}
}

func TestEnumerate(t *testing.T) {
	a := AffineHull(4, []uint64{0b0001, 0b0010, 0b0100})
	var cnt int
	a.Enumerate(func(x uint64) {
		if !a.Contains(x) {
			t.Fatalf("enumerated %b outside A", x)
		}
		cnt++
	})
	if cnt != 1<<uint(a.Dim()) {
		t.Fatalf("enumerated %d points", cnt)
	}
}

func TestHullContainsAllInputs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		k := 1 + rng.Intn(6)
		pts := make([]uint64, k)
		for j := range pts {
			pts[j] = rng.Uint64() & mask(n)
		}
		a := AffineHull(n, pts)
		for _, p := range pts {
			if !a.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(65)
}
