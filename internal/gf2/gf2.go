// Package gf2 provides bit-packed linear algebra over GF(2) for up to 64
// dimensions: row reduction, rank, null spaces, and affine hulls of point
// sets. It is the algebraic substrate of the D-reducible function
// preprocessing (package dreduce), where Boolean points live in GF(2)^n
// and the affine hull of a function's on-set defines its associated
// affine space A.
package gf2

import (
	"fmt"
	"math/bits"
)

// Dot returns the GF(2) inner product (parity of the AND) of two vectors.
func Dot(a, b uint64) uint64 {
	return uint64(bits.OnesCount64(a&b) & 1)
}

// Matrix is a dense GF(2) matrix with up to 64 columns; each row is a
// bit mask with bit j = entry (row, j).
type Matrix struct {
	Cols int
	Rows []uint64
}

// NewMatrix returns a matrix with the given rows.
func NewMatrix(cols int, rows ...uint64) *Matrix {
	if cols < 0 || cols > 64 {
		panic(fmt.Sprintf("gf2: %d columns out of range", cols))
	}
	m := &Matrix{Cols: cols, Rows: append([]uint64(nil), rows...)}
	msk := mask(cols)
	for i := range m.Rows {
		m.Rows[i] &= msk
	}
	return m
}

func mask(cols int) uint64 {
	if cols == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(cols)) - 1
}

// Clone returns an independent copy.
func (m *Matrix) Clone() *Matrix {
	return NewMatrix(m.Cols, m.Rows...)
}

// RREF row-reduces the matrix in place to reduced row echelon form and
// returns the pivot column of each nonzero row, in order.
func (m *Matrix) RREF() []int {
	var pivots []int
	r := 0
	for c := 0; c < m.Cols && r < len(m.Rows); c++ {
		// Find a row at or below r with a 1 in column c.
		sel := -1
		for i := r; i < len(m.Rows); i++ {
			if m.Rows[i]>>uint(c)&1 == 1 {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		m.Rows[r], m.Rows[sel] = m.Rows[sel], m.Rows[r]
		for i := range m.Rows {
			if i != r && m.Rows[i]>>uint(c)&1 == 1 {
				m.Rows[i] ^= m.Rows[r]
			}
		}
		pivots = append(pivots, c)
		r++
	}
	// Drop zero rows.
	m.Rows = m.Rows[:r]
	return pivots
}

// Rank returns the rank of the matrix (does not modify it).
func (m *Matrix) Rank() int {
	c := m.Clone()
	return len(c.RREF())
}

// NullSpace returns a basis of {x : M·x = 0} (x as a column vector,
// bit j of x multiplying column j).
func (m *Matrix) NullSpace() []uint64 {
	c := m.Clone()
	pivots := c.RREF()
	isPivot := make([]bool, m.Cols)
	for _, p := range pivots {
		isPivot[p] = true
	}
	var basis []uint64
	for free := 0; free < m.Cols; free++ {
		if isPivot[free] {
			continue
		}
		// Set the free variable to 1, solve for pivots.
		v := uint64(1) << uint(free)
		for i, p := range pivots {
			if c.Rows[i]>>uint(free)&1 == 1 {
				v |= 1 << uint(p)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// SpanContains reports whether v lies in the row span of the matrix.
func (m *Matrix) SpanContains(v uint64) bool {
	c := m.Clone()
	c.RREF()
	for _, row := range c.Rows {
		if row == 0 {
			continue
		}
		low := uint(bits.TrailingZeros64(row))
		if v>>low&1 == 1 {
			v ^= row
		}
	}
	return v&mask(m.Cols) == 0
}

// Affine is an affine subspace p0 ⊕ span(Basis) of GF(2)^n.
type Affine struct {
	N     int
	Point uint64   // a representative point p0
	Basis []uint64 // linearly independent direction vectors (RREF rows)
}

// Dim returns the dimension of the affine space.
func (a *Affine) Dim() int { return len(a.Basis) }

// Contains reports whether x lies in the affine space.
func (a *Affine) Contains(x uint64) bool {
	m := NewMatrix(a.N, a.Basis...)
	return m.SpanContains((x ^ a.Point) & mask(a.N))
}

// AffineHull returns the smallest affine subspace of GF(2)^n containing
// all points. It panics if points is empty (the empty set has no hull).
func AffineHull(n int, points []uint64) *Affine {
	if len(points) == 0 {
		panic("gf2: affine hull of empty point set")
	}
	p0 := points[0]
	var dirs []uint64
	for _, p := range points[1:] {
		dirs = append(dirs, (p^p0)&mask(n))
	}
	m := NewMatrix(n, dirs...)
	m.RREF()
	return &Affine{N: n, Point: p0 & mask(n), Basis: append([]uint64(nil), m.Rows...)}
}

// ParityCheck is one affine constraint ⟨Vec, x⟩ = Rhs over GF(2).
type ParityCheck struct {
	Vec uint64
	Rhs uint64 // 0 or 1
}

// Holds reports whether x satisfies the check.
func (pc ParityCheck) Holds(x uint64) bool { return Dot(pc.Vec, x) == pc.Rhs }

// ParityChecks returns n−dim(A) independent affine constraints whose
// simultaneous solutions are exactly the affine space: x ∈ A iff every
// check holds. The constraint vectors are weight-reduced: sparse checks
// mean cheap characteristic-function lattices downstream (a weight-w
// affine constraint needs 2^(w-1) SOP products).
func (a *Affine) ParityChecks() []ParityCheck {
	m := NewMatrix(a.N, a.Basis...)
	ortho := ReduceWeight(m.NullSpace())
	checks := make([]ParityCheck, 0, len(ortho))
	for _, h := range ortho {
		checks = append(checks, ParityCheck{Vec: h, Rhs: Dot(h, a.Point)})
	}
	return checks
}

// ReduceWeight greedily lowers the Hamming weight of a set of
// independent vectors by replacing a vector with its XOR against
// another whenever that is lighter. Row operations preserve both the
// span and independence, so the result generates the same space.
func ReduceWeight(vs []uint64) []uint64 {
	for changed := true; changed; {
		changed = false
		for i := range vs {
			for j := range vs {
				if i == j {
					continue
				}
				if bits.OnesCount64(vs[i]^vs[j]) < bits.OnesCount64(vs[i]) {
					vs[i] ^= vs[j]
					changed = true
				}
			}
		}
	}
	return vs
}

// FreeCoordinates returns dim(A) coordinate positions such that every
// point of A is uniquely determined by its values on them (the pivot
// columns of the RREF basis).
func (a *Affine) FreeCoordinates() []int {
	m := NewMatrix(a.N, a.Basis...)
	return m.RREF()
}

// PointFromFree reconstructs the unique point of A whose values at the
// free coordinates (as returned by FreeCoordinates) match the bits of
// freeVals: bit i of freeVals is the value at free coordinate i.
func (a *Affine) PointFromFree(free []int, freeVals uint64) uint64 {
	x := a.Point
	for i, c := range free {
		want := freeVals >> uint(i) & 1
		if x>>uint(c)&1 != want {
			// Flip using the basis vector whose pivot is c. Because
			// the basis is in RREF, basis[i] is exactly that vector,
			// and adding it does not disturb earlier pivots... it may
			// disturb later ones, which subsequent iterations fix.
			x ^= a.Basis[i]
		}
	}
	return x & mask(a.N)
}

// Enumerate calls fn for every point of the affine space.
func (a *Affine) Enumerate(fn func(x uint64)) {
	d := a.Dim()
	for t := uint64(0); t < uint64(1)<<uint(d); t++ {
		x := a.Point
		for i := 0; i < d; i++ {
			if t>>uint(i)&1 == 1 {
				x ^= a.Basis[i]
			}
		}
		fn(x & mask(a.N))
	}
}
