package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// benchName matches Go benchmark identifiers — Benchmark followed by an
// exported-style name. The uppercase requirement keeps prose words like
// "benchmarks" out of workflow-file scans.
var benchName = regexp.MustCompile(`Benchmark[A-Z][A-Za-z0-9_]*`)

// benchDecl matches a benchmark declaration line in a _test.go file.
var benchDecl = regexp.MustCompile(`(?m)^func (Benchmark[A-Z][A-Za-z0-9_]*)\s*\(`)

// soakName matches xbarload Soak pseudo-benchmark identifiers —
// Soak/cluster, Soak/cluster/p99 — in workflow gate regexes and in the
// cmd/xbarload sources that emit them.
var soakName = regexp.MustCompile(`Soak/[A-Za-z0-9_/-]+`)

// newLaneGate verifies the CI perf gates stay anchored to real code:
// every benchmark named in a .github/workflows file — gate regexes,
// allow-lists, and the comments explaining them — must exist as a
// declared benchmark somewhere in the module, and every Soak/* block a
// workflow gates on must be one cmd/xbarload actually emits. A rename
// that forgets the workflow would otherwise leave the bench-smoke or
// cluster-soak gate matching nothing and pass forever; this is the
// regression the lane64 yield gate is specifically exposed to, hence
// the name.
func newLaneGate() *Analyzer {
	a := &Analyzer{
		Name: "lanegate",
		Doc:  "every benchmark or Soak block named in a CI workflow file is declared in the module",
	}
	a.Run = func(*Pass) {}
	a.Finish = func(l *Loader, report func(Diagnostic)) {
		declared := declaredBenchmarks(l.Root)
		soaks := declaredSoaks(l.Root)
		dir := filepath.Join(l.Root, ".github", "workflows")
		entries, err := os.ReadDir(dir)
		if err != nil {
			return // no workflows, nothing to gate
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || (!strings.HasSuffix(name, ".yml") && !strings.HasSuffix(name, ".yaml")) {
				continue
			}
			path := filepath.Join(dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			for li, line := range strings.Split(string(data), "\n") {
				for _, loc := range benchName.FindAllStringIndex(line, -1) {
					bench := line[loc[0]:loc[1]]
					if declared[bench] {
						continue
					}
					report(Diagnostic{
						Analyzer: a.Name,
						File:     path,
						Line:     li + 1,
						Col:      loc[0] + 1,
						Message:  "workflow names benchmark " + bench + " but no _test.go file declares it",
					})
				}
				for _, loc := range soakName.FindAllStringIndex(line, -1) {
					soak := line[loc[0]:loc[1]]
					if soaks[soak] {
						continue
					}
					report(Diagnostic{
						Analyzer: a.Name,
						File:     path,
						Line:     li + 1,
						Col:      loc[0] + 1,
						Message:  "workflow names soak block " + soak + " but cmd/xbarload never emits it",
					})
				}
			}
		}
	}
	return a
}

// declaredSoaks collects every Soak/* identifier appearing in the
// cmd/xbarload sources — the literals naming the pseudo-benchmarks the
// soak report emits. The composed "Soak/"+scenario names never appear
// in workflows (gates scope by prefix regex), so a literal scan is the
// whole contract.
func declaredSoaks(root string) map[string]bool {
	decls := map[string]bool{}
	dir := filepath.Join(root, "cmd", "xbarload")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return decls
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, m := range soakName.FindAllString(string(data), -1) {
			decls[m] = true
		}
	}
	return decls
}

// declaredBenchmarks collects every `func BenchmarkXxx(` declared in
// _test.go files under root, walking the tree directly: the loader
// deliberately skips test files, and the gate must see benchmarks
// wherever they live. Hidden, underscore-prefixed, testdata, and vendor
// directories are skipped, mirroring the go tool's matching rules.
func declaredBenchmarks(root string) map[string]bool {
	decls := map[string]bool{}
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		name := d.Name()
		if d.IsDir() {
			if path == root {
				return nil
			}
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		for _, m := range benchDecl.FindAllStringSubmatch(string(data), -1) {
			decls[m[1]] = true
		}
		return nil
	})
	return decls
}
