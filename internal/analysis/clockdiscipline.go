package analysis

import (
	"go/ast"
	"go/types"
)

// resiliencePath is the clock-disciplined package: its retry/breaker
// schedules must be reproducible under test, so real time is confined
// to the one wallClock implementation (suppressed there with an
// explicit //xbarvet:ignore).
const resiliencePath = "nanoxbar/internal/resilience"

// bannedTimeFuncs are the real-time entry points that break fake-clock
// determinism. time.Time / time.Duration values and arithmetic stay
// legal — only acquiring "now" or a real timer is disciplined.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// newClockDiscipline enforces injected clocks: no direct time.Now /
// time.Sleep / timer construction anywhere in internal/resilience, nor
// in any function that receives a resilience.Clock parameter or whose
// receiver carries a resilience.Clock field. Such code must go through
// the Clock so tests drive it with resilience.Fake.
func newClockDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "clockdiscipline",
		Doc:  "clock-disciplined code uses the injected resilience.Clock, never the time package's real clock",
	}
	report := func(pass *Pass, n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := qualifiedName(pass.Pkg.Info, sel, "time"); ok && bannedTimeFuncs[name] {
				pass.Reportf(sel.Pos(),
					"time.%s in clock-disciplined code: use the injected resilience.Clock so tests stay deterministic", name)
			}
			return true
		})
	}
	a.Run = func(pass *Pass) {
		wholePkg := hasPathPrefix(pass.Pkg.ScopePath, resiliencePath)
		for _, f := range pass.Pkg.Files {
			if wholePkg {
				report(pass, f)
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if receivesClock(pass.Pkg.Info, fn) || receiverHasClockField(pass.Pkg.Info, fn) {
					report(pass, fn.Body)
				}
			}
		}
	}
	return a
}

// receivesClock reports whether fn has a parameter of type
// resilience.Clock.
func receivesClock(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isNamedType(tv.Type, resiliencePath, "Clock") {
			return true
		}
	}
	return false
}

// receiverHasClockField reports whether fn is a method on a struct that
// stores a resilience.Clock — its methods are expected to read time
// through that field.
func receiverHasClockField(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isNamedType(st.Field(i).Type(), resiliencePath, "Clock") {
			return true
		}
	}
	return false
}
