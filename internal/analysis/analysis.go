// Package analysis is the project-invariant static-analysis framework
// behind cmd/xbarvet. The repo's correctness story rests on conventions
// that ordinary tests cannot see — deterministic seeded RNG streams,
// injected clocks, the apierr error taxonomy, metric-name hygiene, the
// SDK-only import rule for examples — and this package turns each of
// them into an executable analyzer over go/ast + go/types, so a
// violation is a build failure, not a code-review catch.
//
// The pieces:
//
//   - Loader (load.go): parses and type-checks module packages with a
//     module-aware source importer, so analyzers get full types.Info
//     without any dependency outside the standard library.
//   - Analyzer / Pass / Diagnostic (this file): the per-package
//     analysis contract, modeled on golang.org/x/tools/go/analysis but
//     small enough to own.
//   - Run (run.go): drives every analyzer over every loaded package,
//     applies //xbarvet:ignore suppressions, and renders the result as
//     text or JSON.
//   - The six project analyzers (one file each): depguard,
//     clockdiscipline, seededrand, metricnames, errtaxonomy, ctxfirst.
//
// Fixture packages under testdata/src carry `// want "regexp"`
// expectation comments; harness_test.go diffs reported diagnostics
// against them, so each analyzer has a test that fails if its check is
// disabled.
package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Diagnostic is one finding: an analyzer, a position, and a message.
// File is module-root-relative so output (and JSON golden tests) are
// stable across checkouts.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Analyzers may carry cross-package
// state (the metric duplicate-name check does), so Analyzers() returns
// fresh instances per run rather than shared globals.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-line invariant statement shown by xbarvet -list.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// Finish, if non-nil, runs once after every package pass — the hook
	// for whole-module invariants that live outside loaded Go packages
	// (CI workflow files, test-only declarations). Findings it reports
	// skip //xbarvet:ignore filtering, since they anchor to files the
	// loader never parsed.
	Finish func(l *Loader, report func(Diagnostic))
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.Pkg.ScopePath,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns a fresh instance of every project analyzer, in the
// order they run.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		newDepguard(),
		newClockDiscipline(),
		newSeededRand(),
		newMetricNames(),
		newErrTaxonomy(),
		newCtxFirst(),
		newLaneGate(),
	}
}

// pkgPathOf resolves an identifier used as a package qualifier to the
// imported package's path, or "" when the identifier is anything else
// (including a local shadowing the import name — the types.Info lookup,
// not the spelling, decides).
func pkgPathOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// qualifiedName matches expressions of the form pkg.Name where pkg is
// an import of pkgPath, returning the selected name.
func qualifiedName(info *types.Info, e ast.Expr, pkgPath string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pkgPathOf(info, id) != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// isNamedType reports whether t (after pointer stripping) is the named
// type path.name.
func isNamedType(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// constString evaluates e as a compile-time string constant.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// hasPathPrefix reports whether path is prefix itself or a package
// below it (prefix "a/b" matches "a/b" and "a/b/c", not "a/bc").
func hasPathPrefix(path, prefix string) bool {
	if path == prefix {
		return true
	}
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}
