package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestAnalyzerRoster pins the suite's membership: dropping an analyzer
// from Analyzers() must fail loudly, not silently shrink coverage.
func TestAnalyzerRoster(t *testing.T) {
	wantNames := []string{"depguard", "clockdiscipline", "seededrand", "metricnames", "errtaxonomy", "ctxfirst", "lanegate"}
	got := Analyzers()
	if len(got) != len(wantNames) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(wantNames))
	}
	for i, a := range got {
		if a.Name != wantNames[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, wantNames[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}

func TestDepguardFixtures(t *testing.T) {
	dirs := []string{
		fixtureDir("depguard", "badcli"),
		fixtureDir("depguard", "okcli"),
		fixtureDir("depguard", "outofscope"),
	}
	checkWants(t, runOn(t, "depguard", dirs...), dirs...)
}

func TestClockDisciplineFixtures(t *testing.T) {
	dirs := []string{
		fixtureDir("clockdiscipline", "bad"),
		fixtureDir("clockdiscipline", "clockparam"),
	}
	res := runOn(t, "clockdiscipline", dirs...)
	checkWants(t, res, dirs...)
	// The bad fixture carries one reasoned //xbarvet:ignore; the finding
	// it covers must be counted as suppressed, not listed or lost.
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
}

func TestSeededRandFixtures(t *testing.T) {
	dirs := []string{
		fixtureDir("seededrand", "bad"),
		fixtureDir("seededrand", "outofscope"),
	}
	checkWants(t, runOn(t, "seededrand", dirs...), dirs...)
}

func TestMetricNamesFixtures(t *testing.T) {
	dirs := []string{
		fixtureDir("metricnames", "bad"),
		fixtureDir("metricnames", "ok"),
	}
	checkWants(t, runOn(t, "metricnames", dirs...), dirs...)
}

func TestErrTaxonomyFixtures(t *testing.T) {
	dirs := []string{
		fixtureDir("errtaxonomy", "bad"),
		fixtureDir("errtaxonomy", "outofscope"),
	}
	checkWants(t, runOn(t, "errtaxonomy", dirs...), dirs...)
}

func TestCtxFirstFixtures(t *testing.T) {
	dirs := []string{fixtureDir("ctxfirst", "bad")}
	checkWants(t, runOn(t, "ctxfirst", dirs...), dirs...)
}

// TestIgnoreMissingReason checks the driver-level rule that a
// reasonless //xbarvet:ignore is itself a finding, reported under the
// synthetic analyzer name "xbarvet". (A want comment cannot share the
// directive's line — its text would become the directive's reason — so
// this test asserts directly.)
func TestIgnoreMissingReason(t *testing.T) {
	res := runOn(t, "", fixtureDir("ignore", "noreason"))
	if len(res.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(res.Diagnostics), res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Analyzer != "xbarvet" {
		t.Errorf("Analyzer = %q, want %q", d.Analyzer, "xbarvet")
	}
	if !strings.Contains(d.Message, "missing a reason") {
		t.Errorf("Message = %q, want it to mention a missing reason", d.Message)
	}
	if want := fixtureDir("ignore", "noreason") + "/noreason.go"; d.File != want {
		t.Errorf("File = %q, want %q", d.File, want)
	}
}

// TestResultJSONSchema pins the -json output shape tooling consumers
// parse: top-level keys and the per-diagnostic fields, with
// module-root-relative slash paths.
func TestResultJSONSchema(t *testing.T) {
	res := runOn(t, "depguard", fixtureDir("depguard", "badcli"))
	raw, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, key := range []string{"module", "analyzers", "packages", "diagnostics", "suppressed"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON output missing top-level key %q", key)
		}
	}
	if decoded["module"] != "nanoxbar" {
		t.Errorf("module = %v, want nanoxbar", decoded["module"])
	}
	diags, ok := decoded["diagnostics"].([]any)
	if !ok || len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want a one-element array", decoded["diagnostics"])
	}
	d, ok := diags[0].(map[string]any)
	if !ok {
		t.Fatalf("diagnostic is %T, want an object", diags[0])
	}
	for _, key := range []string{"analyzer", "package", "file", "line", "col", "message"} {
		if _, ok := d[key]; !ok {
			t.Errorf("diagnostic missing key %q", key)
		}
	}
	file, _ := d["file"].(string)
	if !strings.HasPrefix(file, "internal/analysis/testdata/") || strings.Contains(file, "\\") {
		t.Errorf("file = %q, want a module-root-relative slash path", file)
	}
	if d["analyzer"] != "depguard" {
		t.Errorf("analyzer = %v, want depguard", d["analyzer"])
	}
}
