package analysis

import (
	"go/ast"
	"strings"
)

// errTaxonomyScopes are the packages whose errors cross the serving
// boundary: the HTTP layer and the public SDK (both clients). Errors
// born here must carry the apierr taxonomy — a sentinel to errors.Is
// against and a wire code that survives the HTTP round trip — or a
// naked message reaches users as an unclassifiable "internal error".
var errTaxonomyScopes = []string{
	"nanoxbar/internal/httpapi",
	"nanoxbar/pkg/nanoxbar",
}

// httpapiPath scopes the raw-http.Error rule: handler bodies must go
// through the structured {code,message} writers.
const httpapiPath = "nanoxbar/internal/httpapi"

// newErrTaxonomy forbids naked error construction inside boundary
// package function bodies: no errors.New (sentinels belong in
// package-level var blocks), no fmt.Errorf unless it wraps with %w
// (so the taxonomy sentinel stays reachable through errors.Is), and —
// in internal/httpapi — no raw http.Error bodies, which bypass the
// structured {code,message} error shape the clients decode.
func newErrTaxonomy() *Analyzer {
	a := &Analyzer{
		Name: "errtaxonomy",
		Doc:  "boundary packages construct errors via internal/apierr or %w-wrap a sentinel; handlers never write raw http.Error bodies",
	}
	a.Run = func(pass *Pass) {
		inScope := false
		for _, scope := range errTaxonomyScopes {
			inScope = inScope || hasPathPrefix(pass.Pkg.ScopePath, scope)
		}
		if !inScope {
			return
		}
		info := pass.Pkg.Info
		inHTTPAPI := hasPathPrefix(pass.Pkg.ScopePath, httpapiPath)
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name, ok := qualifiedName(info, call.Fun, "errors"); ok && name == "New" {
						pass.Reportf(call.Pos(),
							"errors.New inside a boundary function: construct via internal/apierr or declare a package-level sentinel")
					}
					if name, ok := qualifiedName(info, call.Fun, "fmt"); ok && name == "Errorf" && len(call.Args) > 0 {
						format, isConst := constString(info, call.Args[0])
						switch {
						case !isConst:
							pass.Reportf(call.Pos(),
								"fmt.Errorf with a non-constant format: construct via internal/apierr so the error keeps a taxonomy code")
						case !strings.Contains(format, "%w"):
							pass.Reportf(call.Pos(),
								"fmt.Errorf without %%w strips the taxonomy: wrap a sentinel or construct via internal/apierr")
						}
					}
					if inHTTPAPI {
						if name, ok := qualifiedName(info, call.Fun, "net/http"); ok && name == "Error" {
							pass.Reportf(call.Pos(),
								"raw http.Error body: use the structured {code,message} error writers")
						}
					}
					return true
				})
			}
		}
	}
	return a
}
