package analysis

import "go/ast"

// seededRandScopes are the packages whose random streams must be
// bit-for-bit reproducible from a seed: the scalar-vs-bitsliced
// reference tests, the Monte Carlo error-rate pins, and the warm-cache
// soak comparisons all depend on it. Global math/rand draws share
// process-wide state and destroy that property.
var seededRandScopes = []string{
	"nanoxbar/internal/defect",
	"nanoxbar/internal/redundancy",
	"nanoxbar/internal/engine",
	"nanoxbar/internal/bism",
	"nanoxbar/internal/resilience",
	"nanoxbar/internal/yield",
	"nanoxbar/internal/xrand",
}

// seededRandAllowed is the default-deny allowlist: constructors that
// build an owned, seeded generator, and the type names needed to
// declare one. Everything else reached through the rand package
// qualifier (Intn, Float64, Perm, Shuffle, Seed, Read, N, ...) is a
// draw from — or a mutation of — the shared global stream.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"Rand":       true,
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

// newSeededRand forbids the global math/rand (and math/rand/v2)
// top-level functions in the reproducibility-critical packages; those
// packages draw only from *rand.Rand values built from explicit seeds.
func newSeededRand() *Analyzer {
	a := &Analyzer{
		Name: "seededrand",
		Doc:  "reproducibility-critical packages draw only from seeded *rand.Rand values, never the global math/rand stream",
	}
	a.Run = func(pass *Pass) {
		inScope := false
		for _, scope := range seededRandScopes {
			inScope = inScope || hasPathPrefix(pass.Pkg.ScopePath, scope)
		}
		if !inScope {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				for _, randPath := range []string{"math/rand", "math/rand/v2"} {
					if name, ok := qualifiedName(pass.Pkg.Info, sel, randPath); ok && !seededRandAllowed[name] {
						pass.Reportf(sel.Pos(),
							"global %s.%s breaks seeded reproducibility: draw from a *rand.Rand built with an explicit seed", randPath, name)
					}
				}
				return true
			})
		}
	}
	return a
}
