package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Dir is the package directory, absolute.
	Dir string
	// Path is the import path derived from the module layout (synthetic
	// for testdata fixture packages, which nothing imports).
	Path string
	// ScopePath is the path analyzers use for applicability decisions.
	// It equals Path unless a file carries a //xbarvet:pkgpath
	// directive — fixture packages masquerade as the real package they
	// exercise (e.g. a testdata package declaring itself
	// nanoxbar/internal/defect so seededrand treats it as in scope).
	ScopePath string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
	// TypeErrors collects type-check problems without aborting the
	// load; the driver surfaces them so a broken load cannot silently
	// turn into a clean report.
	TypeErrors []error

	// ignores maps file -> line -> suppression, from //xbarvet:ignore
	// directives. A directive suppresses diagnostics on its own line
	// and, when it stands alone on a line, on the following line.
	ignores map[string]map[int]ignoreDirective
}

// ignoreDirective is one parsed //xbarvet:ignore comment.
type ignoreDirective struct {
	reason     string
	standalone bool // the directive is the only thing on its line
	pos        token.Pos
}

// suppressed reports whether a diagnostic at (file, line) is covered by
// an ignore directive with a reason.
func (p *Package) suppressed(file string, line int) bool {
	byLine := p.ignores[file]
	if byLine == nil {
		return false
	}
	if d, ok := byLine[line]; ok && d.reason != "" {
		return true
	}
	if d, ok := byLine[line-1]; ok && d.reason != "" && d.standalone {
		return true
	}
	return false
}

// Loader parses and type-checks packages of the enclosing module. It is
// stdlib-only: module-internal imports resolve through the loader's own
// cache and everything else through go/importer's source-mode importer,
// which type-checks the standard library from GOROOT sources (no build
// cache or export data needed). Results are memoized per import path,
// so a whole-module load type-checks each package exactly once.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// buildContextOnce pins go/build to a CGO-disabled context before the
// source importer captures it: the pure-Go variants of net and friends
// type-check identically everywhere, while the cgo variants depend on
// the host toolchain.
var buildContextOnce sync.Once

// NewLoader locates the module enclosing startDir ("" = current
// directory) and returns a loader rooted there.
func NewLoader(startDir string) (*Loader, error) {
	if startDir == "" {
		startDir = "."
	}
	root, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", startDir)
		}
		root = parent
	}
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(modData), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	buildContextOnce.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*Package),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns into packages. A pattern is a module-root-
// relative directory ("internal/engine", "./cmd/xbarvet") or a
// recursive form ending in "/..." ("./...", "internal/..."). Recursive
// walks skip testdata, hidden, and underscore directories — fixture
// packages load only when named explicitly. Results are sorted by
// import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walking %s: %w", pat, err)
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hasGoFiles reports whether dir contains at least one non-test .go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if goSource(e) {
			return true
		}
	}
	return false
}

func goSource(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir, memoized by import
// path.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.cache[path] = nil // cycle marker while checking

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Dir:     dir,
		Path:    path,
		Fset:    l.fset,
		ignores: make(map[string]map[int]ignoreDirective),
	}
	for _, e := range entries {
		if !goSource(e) {
			continue
		}
		fp := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fp)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, fp, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		l.scanDirectives(pkg, f, src)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	if pkg.ScopePath == "" {
		pkg.ScopePath = path
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) package even on errors;
	// the collected TypeErrors carry the details.
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Files, pkg.Info)
	l.cache[path] = pkg
	return pkg, nil
}

// scanDirectives records //xbarvet:ignore and //xbarvet:pkgpath
// comments. src is the file's exact source, used to tell a standalone
// directive line from a trailing comment.
func (l *Loader) scanDirectives(pkg *Package, f *ast.File, src []byte) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//xbarvet:")
			if !ok {
				continue
			}
			pos := l.fset.Position(c.Pos())
			switch {
			case strings.HasPrefix(text, "pkgpath"):
				pkg.ScopePath = strings.TrimSpace(strings.TrimPrefix(text, "pkgpath"))
			case strings.HasPrefix(text, "ignore"):
				byLine := pkg.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]ignoreDirective)
					pkg.ignores[pos.Filename] = byLine
				}
				byLine[pos.Line] = ignoreDirective{
					reason:     strings.TrimSpace(strings.TrimPrefix(text, "ignore")),
					standalone: onlyWhitespaceBefore(src, pos.Offset),
					pos:        c.Pos(),
				}
			}
		}
	}
}

// onlyWhitespaceBefore reports whether everything between offset and
// the preceding newline is whitespace.
func onlyWhitespaceBefore(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
		default:
			return false
		}
	}
	return true
}

// loaderImporter adapts the loader as the types.Importer used during
// checking: module-internal paths recurse into the loader's own cache,
// everything else goes to the source-mode standard-library importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module)))
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
