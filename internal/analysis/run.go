package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

// Result is one full suite run, shaped for both the text and -json
// outputs of cmd/xbarvet. The JSON schema is load-bearing for tooling
// consumers and covered by a test; extend it, don't reshape it.
type Result struct {
	// Module is the analyzed module's path.
	Module string `json:"module"`
	// Analyzers lists the analyzers that ran, in order.
	Analyzers []string `json:"analyzers"`
	// Packages is how many packages were analyzed.
	Packages int `json:"packages"`
	// Diagnostics are the surviving findings, sorted by file, line,
	// column, analyzer.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed counts findings silenced by //xbarvet:ignore
	// directives (with reasons); they are dropped, not listed.
	Suppressed int `json:"suppressed"`
	// TypeErrors lists packages that did not type-check cleanly. A
	// non-empty list means the analyzers ran with partial information
	// and the run must not be trusted as a clean bill.
	TypeErrors []string `json:"type_errors,omitempty"`
}

// JSON renders the result as indented JSON.
func (r Result) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Run executes analyzers over pkgs: each analyzer visits each package,
// //xbarvet:ignore directives filter the findings, and an ignore
// directive without a reason is itself reported (under the analyzer
// name "xbarvet") — silent suppressions are the one thing an invariant
// suite must not allow. Paths in diagnostics are relative to the
// loader's module root.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) Result {
	root := l.Root
	// Diagnostics starts non-nil so a clean run marshals as [], not
	// null — JSON consumers iterate without a nil check.
	res := Result{Module: l.Module, Packages: len(pkgs), Diagnostics: []Diagnostic{}}
	for _, a := range analyzers {
		res.Analyzers = append(res.Analyzers, a.Name)
	}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
		}
		for _, err := range pkg.TypeErrors {
			res.TypeErrors = append(res.TypeErrors, err.Error())
		}
		// Reasonless ignores: report at the directive itself.
		for file, byLine := range pkg.ignores {
			for _, dir := range byLine {
				if dir.reason != "" {
					continue
				}
				pos := pkg.Fset.Position(dir.pos)
				raw = append(raw, Diagnostic{
					Analyzer: "xbarvet",
					Package:  pkg.ScopePath,
					File:     file,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  "//xbarvet:ignore directive missing a reason",
				})
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(l, func(d Diagnostic) { raw = append(raw, d) })
		}
	}
	byFile := make(map[string]*Package)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	for _, d := range raw {
		if pkg := byFile[d.File]; pkg != nil && pkg.suppressed(d.File, d.Line) {
			res.Suppressed++
			continue
		}
		if rel, err := filepath.Rel(root, d.File); err == nil {
			d.File = filepath.ToSlash(rel)
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Strings(res.TypeErrors)
	return res
}
