// Fixture: the three ctxfirst violations — misplaced parameter,
// interface method with a trailing context, and a stored context field
// — next to the legal context-first form.
package fixture

import "context"

type job struct {
	name string
	ctx  context.Context // want "context.Context stored in a struct field"
}

type runner interface {
	Run(name string, ctx context.Context) error // want "context.Context must be the first parameter"
	Stop(ctx context.Context) error
}

func do(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

func misordered(name string, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = name
	return ctx.Err()
}

var _ = job{}
var _ runner
var _ = do
var _ = misordered
