// Fixture: a reasonless //xbarvet:ignore — the driver reports the
// directive itself, so silent suppression is impossible. The test for
// this fixture asserts the diagnostic directly (a want comment cannot
// share the directive's line without becoming its reason).
package fixture

func answer() int {
	//xbarvet:ignore
	return 42
}

var _ = answer
