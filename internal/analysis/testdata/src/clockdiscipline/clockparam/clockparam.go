// Fixture: a package outside internal/resilience, where the clock
// discipline applies only to functions that receive a resilience.Clock
// or whose receiver stores one.
package fixture

import (
	"time"

	"nanoxbar/internal/resilience"
)

// free has no Clock in reach: real time is legal here.
func free() time.Time {
	return time.Now()
}

func schedule(clock resilience.Clock) time.Time {
	_ = time.Now() // want "time.Now in clock-disciplined code"
	return clock.Now()
}

type ticker struct {
	clock resilience.Clock
}

func (t *ticker) tick() time.Time {
	time.Sleep(time.Millisecond) // want "time.Sleep in clock-disciplined code"
	return t.clock.Now()
}
