//xbarvet:pkgpath nanoxbar/internal/resilience

// Fixture: code masquerading as internal/resilience, where every real
// clock read is banned package-wide.
package fixture

import (
	"context"
	"time"
)

func now() time.Time {
	return time.Now() // want "time.Now in clock-disciplined code"
}

func wait(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "time.Sleep in clock-disciplined code"
	select {
	case <-time.After(time.Millisecond): // want "time.After in clock-disciplined code"
	case <-ctx.Done():
	}
}

// sanctioned shows the escape hatch: an ignore directive with a reason
// suppresses the finding (counted, not listed).
func sanctioned() time.Time {
	//xbarvet:ignore clockdiscipline: fixture's sanctioned real-time read
	return time.Now()
}
