//xbarvet:pkgpath nanoxbar/cmd/repro

// Fixture: an internal tool (not in the public-only scopes) importing
// internal/ freely — depguard must stay silent.
package fixture

import (
	_ "nanoxbar/internal/gf2"
)
