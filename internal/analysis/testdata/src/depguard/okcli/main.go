//xbarvet:pkgpath nanoxbar/cmd/xbarsize

// Fixture: a public CLI that stays on the stdlib and SDK side of the
// fence — depguard must stay silent.
package fixture

import "fmt"

func main() {
	fmt.Println("ok")
}
