//xbarvet:pkgpath nanoxbar/cmd/xbarsize

// Fixture: a public CLI reaching into internal/ — depguard must fire
// even on a blank import.
package fixture

import (
	_ "nanoxbar/internal/gf2" // want "import of nanoxbar/internal/gf2: examples and public CLIs must use pkg/nanoxbar only"
)
