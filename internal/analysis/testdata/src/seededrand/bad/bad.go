//xbarvet:pkgpath nanoxbar/internal/defect

// Fixture: code masquerading as a reproducibility-critical package.
// Owned seeded generators are legal; the global stream is not.
package fixture

import "math/rand"

func draw() (int, float64) {
	r := rand.New(rand.NewSource(1))
	n := rand.Intn(10)  // want `global math/rand\.Intn breaks seeded reproducibility`
	f := rand.Float64() // want `global math/rand\.Float64 breaks seeded reproducibility`
	return n + r.Intn(3), f
}
