//xbarvet:pkgpath nanoxbar/internal/benchreport

// Fixture: a package outside the reproducibility-critical set — the
// global stream is tolerated there, so seededrand must stay silent.
package fixture

import "math/rand"

func jitter() int {
	return rand.Intn(10)
}
