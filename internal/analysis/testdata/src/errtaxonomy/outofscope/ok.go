//xbarvet:pkgpath nanoxbar/internal/engine

// Fixture: a non-boundary package — error construction is its own
// business, so errtaxonomy must stay silent.
package fixture

import (
	"errors"
	"fmt"
)

func fail(detail string) error {
	if detail == "" {
		return errors.New("empty detail")
	}
	return fmt.Errorf("engine fixture: %s", detail)
}
