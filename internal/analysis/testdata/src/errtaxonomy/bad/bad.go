//xbarvet:pkgpath nanoxbar/internal/httpapi

// Fixture: code masquerading as the HTTP boundary. Package-level
// sentinels and %w wrapping are legal; naked construction and raw
// http.Error bodies are not.
package fixture

import (
	"errors"
	"fmt"
	"net/http"
)

// errSentinel is the sanctioned form: a package-level sentinel.
var errSentinel = errors.New("fixture: sentinel")

func fail(detail string) error {
	if detail == "" {
		return errors.New("empty detail") // want "errors.New inside a boundary function"
	}
	return fmt.Errorf("fixture: %s", detail) // want `fmt\.Errorf without %w strips the taxonomy`
}

func wrap(detail string) error {
	return fmt.Errorf("fixture %s: %w", detail, errSentinel)
}

func failDynamic(format string) error {
	return fmt.Errorf(format) // want "fmt.Errorf with a non-constant format"
}

func reject(w http.ResponseWriter) {
	http.Error(w, "bad", http.StatusBadRequest) // want "raw http.Error body"
}
