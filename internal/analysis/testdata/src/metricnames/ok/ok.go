// Fixture: clean registrations — named constants, correct shape, no
// duplicates — must produce no findings.
package fixture

import "nanoxbar/internal/telemetry"

const (
	metricFixtureRequests = "nanoxbar_fixtureok_requests_total"
	metricFixtureDepth    = "nanoxbar_fixtureok_queue_depth"
	metricFixtureGoHeap   = "go_fixtureok_heap_bytes"
)

func register(reg *telemetry.Registry) {
	reg.CounterFunc(metricFixtureRequests, "requests.", nil)
	reg.GaugeFunc(metricFixtureDepth, "depth.", nil)
	reg.GaugeFunc(metricFixtureGoHeap, "heap.", nil)
}
