// Fixture: every way a metric registration can violate name hygiene —
// inline literal, bad shape, runtime-assembled name, duplicate
// constant — plus forwarder tracing through a thin helper.
package fixture

import "nanoxbar/internal/telemetry"

const (
	metricFixtureOK   = "nanoxbar_fixture_ok_total"
	metricFixtureDupA = "nanoxbar_fixture_dup_total"
	metricFixtureDupB = "nanoxbar_fixture_dup_total"
	metricBadShape    = "nanoxbarFixtureCamelCase"
)

func register(reg *telemetry.Registry, suffix string) {
	reg.CounterFunc(metricFixtureOK, "fine: named const, right shape.", nil)
	reg.CounterFunc("nanoxbar_fixture_inline_total", "literal.", nil) // want `inline metric name literal "nanoxbar_fixture_inline_total"`
	reg.CounterFunc(metricBadShape, "camel case.", nil)               // want "must be nanoxbar_- or go_-prefixed snake_case"
	reg.CounterFunc("nanoxbar_fixture_"+suffix, "assembled.", nil)    // want "must be a named string constant"
	reg.CounterFunc(metricFixtureDupA, "first owner wins.", nil)
	reg.CounterFunc(metricFixtureDupB, "second owner loses.", nil) // want `metric name "nanoxbar_fixture_dup_total" already declared at`
}

// counter forwards its name parameter to a registration call, so the
// analyzer checks counter's call sites instead of the inner call.
func counter(reg *telemetry.Registry, name, help string) {
	reg.CounterFunc(name, help, nil)
}

const metricFixtureFwd = "nanoxbar_fixture_forwarded_total"

func wire(reg *telemetry.Registry) {
	counter(reg, metricFixtureFwd, "forwarded const: fine.")
	counter(reg, "nanoxbar_fixture_fwd_inline_total", "forwarded literal.") // want `inline metric name literal "nanoxbar_fixture_fwd_inline_total"`
}
