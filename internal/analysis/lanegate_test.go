package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes path→content files under a fresh temp root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runLaneGate(root string) []Diagnostic {
	var got []Diagnostic
	newLaneGate().Finish(&Loader{Root: root, Module: "m"}, func(d Diagnostic) {
		got = append(got, d)
	})
	return got
}

func TestLaneGateFlagsMissingBenchmarks(t *testing.T) {
	root := writeTree(t, map[string]string{
		".github/workflows/ci.yml": strings.Join([]string{
			"# the gate regex matches BenchmarkReal and BenchmarkGone",
			"run: go test -bench 'BenchmarkReal|BenchmarkGone'",
		}, "\n"),
		"pkg/a/a_test.go": "package a\n\nfunc BenchmarkReal(b *testing.B) {}\n",
	})
	got := runLaneGate(root)
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (comment + gate line): %v", len(got), got)
	}
	for _, d := range got {
		if d.Analyzer != "lanegate" || !strings.Contains(d.Message, "BenchmarkGone") {
			t.Fatalf("unexpected diagnostic %v", d)
		}
	}
	if got[0].Line != 1 || got[1].Line != 2 {
		t.Fatalf("diagnostic lines %d/%d, want 1/2", got[0].Line, got[1].Line)
	}
}

func TestLaneGateCleanWhenAllDeclared(t *testing.T) {
	root := writeTree(t, map[string]string{
		".github/workflows/ci.yml": "run: go test -bench 'BenchmarkA|BenchmarkB'\n",
		"a_test.go":                "package m\n\nfunc BenchmarkA(b *testing.B) {}\nfunc BenchmarkB(b *testing.B) {}\n",
	})
	if got := runLaneGate(root); len(got) != 0 {
		t.Fatalf("clean tree reported %v", got)
	}
}

func TestLaneGateIgnoresProseAndHiddenDirs(t *testing.T) {
	root := writeTree(t, map[string]string{
		// Lowercase continuation ("benchmarks", "benchmarking") must not
		// parse as a benchmark name.
		".github/workflows/ci.yml": "# run the benchmarks; Benchmarking is lowercase-continued\nrun: go test -bench 'BenchmarkHidden'\n",
		// Declarations inside testdata or hidden dirs do not count.
		"testdata/x_test.go": "package x\n\nfunc BenchmarkHidden(b *testing.B) {}\n",
	})
	got := runLaneGate(root)
	if len(got) != 1 || !strings.Contains(got[0].Message, "BenchmarkHidden") {
		t.Fatalf("got %v, want exactly one BenchmarkHidden finding", got)
	}
}

func TestLaneGateFlagsUnknownSoakBlocks(t *testing.T) {
	root := writeTree(t, map[string]string{
		".github/workflows/ci.yml": strings.Join([]string{
			"run: benchjson -compare base.json -against soak.json -only 'Soak/cluster'",
			"run: benchjson -compare base.json -against soak.json -only 'Soak/ghost'",
		}, "\n"),
		"cmd/xbarload/cluster.go": "package main\n\nconst a = \"Soak/cluster\"\nconst b = \"Soak/cluster/p99\"\n",
	})
	got := runLaneGate(root)
	if len(got) != 1 || !strings.Contains(got[0].Message, "Soak/ghost") {
		t.Fatalf("got %v, want exactly one Soak/ghost finding", got)
	}
	if got[0].Line != 2 {
		t.Fatalf("diagnostic line %d, want 2", got[0].Line)
	}
}

// TestLaneGateSoakSubBlockDeclared: a gate naming the deeper
// Soak/cluster/p99 block resolves against the same literal scan.
func TestLaneGateSoakSubBlockDeclared(t *testing.T) {
	root := writeTree(t, map[string]string{
		".github/workflows/ci.yml": "# gates Soak/cluster/p99 too\n",
		"cmd/xbarload/cluster.go":  "package main\n\nconst b = \"Soak/cluster/p99\"\n",
	})
	if got := runLaneGate(root); len(got) != 0 {
		t.Fatalf("declared soak sub-block reported %v", got)
	}
}

func TestLaneGateNoWorkflowsIsClean(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a_test.go": "package m\n\nfunc BenchmarkA(b *testing.B) {}\n",
	})
	if got := runLaneGate(root); len(got) != 0 {
		t.Fatalf("tree without workflows reported %v", got)
	}
}

// TestLaneGateLiveRepo runs the gate over this repository itself: the
// CI workflow must only name benchmarks that exist.
func TestLaneGateLiveRepo(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, ".github", "workflows")); err != nil {
		t.Skip("no workflows in checkout")
	}
	if got := runLaneGate(root); len(got) != 0 {
		t.Fatalf("live CI workflow names undeclared benchmarks: %v", got)
	}
}
