package analysis

import "strconv"

// publicOnlyScopes are the trees that must program exclusively against
// the public SDK: the runnable examples and the user-facing CLIs. They
// are the API-compatibility canary — if pkg/nanoxbar loses surface they
// need, they stop compiling; if anyone reaches back into internal/ from
// them, this analyzer fires.
//
// The serving daemon (cmd/xbarserverd), the experiment reproducers
// (cmd/repro, cmd/benchjson), the soak driver (cmd/xbarload), and the
// analyzer driver (cmd/xbarvet) are the module's own plumbing and may
// use internal packages.
var publicOnlyScopes = []string{
	"nanoxbar/examples",
	"nanoxbar/cmd/xbarsize",
	"nanoxbar/cmd/latsynth",
	"nanoxbar/cmd/faultsim",
}

// newDepguard checks that public-only trees never import
// nanoxbar/internal/...: external users could not build that code, so
// it would be a broken advertisement of the SDK.
func newDepguard() *Analyzer {
	a := &Analyzer{
		Name: "depguard",
		Doc:  "examples and public CLIs import only pkg/nanoxbar, never internal/...",
	}
	a.Run = func(pass *Pass) {
		inScope := false
		for _, scope := range publicOnlyScopes {
			inScope = inScope || hasPathPrefix(pass.Pkg.ScopePath, scope)
		}
		if !inScope {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if hasPathPrefix(p, "nanoxbar/internal") {
					pass.Reportf(imp.Pos(),
						"import of %s: examples and public CLIs must use pkg/nanoxbar only", p)
				}
			}
		}
	}
	return a
}
