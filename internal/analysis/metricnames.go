package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// telemetryPath is the metrics substrate. Its own registration calls
// are exempt: the go_* runtime families there are driven by a
// declarative runtime/metrics table, not per-site constants.
const telemetryPath = "nanoxbar/internal/telemetry"

// registerMethods are the telemetry.Registry entry points whose first
// argument is a metric family name.
var registerMethods = map[string]bool{
	"Counter":          true,
	"Gauge":            true,
	"Histogram":        true,
	"CounterFunc":      true,
	"GaugeFunc":        true,
	"Collect":          true,
	"CollectHistogram": true,
}

// metricNameRe is the required shape: nanoxbar_ (project families) or
// go_ (runtime families) prefix, snake_case throughout.
var metricNameRe = regexp.MustCompile(`^(nanoxbar|go)_[a-z0-9]+(_[a-z0-9]+)*$`)

// newMetricNames enforces metric-name hygiene at every
// telemetry.Registry registration site: the name must be a named
// string constant (greppable, not assembled at runtime) whose value is
// nanoxbar_/go_-prefixed snake_case, and no two distinct constant
// declarations in the repo may carry the same name — every family has
// exactly one owner, so registries merged at serve time cannot collide.
//
// Thin helpers that forward a name parameter to a registration call
// (the engine's counter/cacheFamily closures) are traced one level: the
// helper's call sites are checked instead of its forwarding call.
func newMetricNames() *Analyzer {
	// seen maps metric name -> position of the constant declaration
	// that introduced it, across every package of the run.
	seen := make(map[string]string)
	a := &Analyzer{
		Name: "metricnames",
		Doc:  "telemetry registrations use unique nanoxbar_/go_-prefixed snake_case name constants",
	}
	a.Run = func(pass *Pass) {
		if hasPathPrefix(pass.Pkg.ScopePath, telemetryPath) {
			return
		}
		info := pass.Pkg.Info
		checkName := func(e ast.Expr) {
			value, isConst := constString(info, e)
			if !isConst {
				pass.Reportf(e.Pos(), "metric name must be a named string constant, not a runtime value")
				return
			}
			if !metricNameRe.MatchString(value) {
				pass.Reportf(e.Pos(), "metric name %q must be nanoxbar_- or go_-prefixed snake_case", value)
				return
			}
			obj := constObject(info, e)
			if obj == nil {
				pass.Reportf(e.Pos(), "inline metric name literal %q: promote it to a named const", value)
				return
			}
			declPos := pass.Pkg.Fset.Position(obj.Pos()).String()
			if prev, ok := seen[value]; ok && prev != declPos {
				pass.Reportf(e.Pos(), "metric name %q already declared at %s: reuse that constant or pick a distinct name", value, prev)
				return
			}
			seen[value] = declPos
		}

		forwarders, exempt := findForwarders(info, pass.Pkg.Files)
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isRegisterCall(info, call) && len(call.Args) > 0:
					if !exempt[call.Pos()] {
						checkName(call.Args[0])
					}
				default:
					if idx, ok := forwarders[calleeObject(info, call)]; ok && idx < len(call.Args) {
						checkName(call.Args[idx])
					}
				}
				return true
			})
		}
	}
	return a
}

// isRegisterCall reports whether call invokes a registration method on
// telemetry.Registry.
func isRegisterCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registerMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), telemetryPath, "Registry")
}

// calleeObject resolves the called function's object for plain and
// selector callees.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// findForwarders locates functions (declarations and func literals
// bound by := or var) that pass one of their own string parameters as
// the name argument of a registration call. It returns the forwarder
// objects with the parameter index to check at call sites, plus the
// forwarding calls themselves, which are exempt from the direct check.
func findForwarders(info *types.Info, files []*ast.File) (map[types.Object]int, map[token.Pos]bool) {
	forwarders := make(map[types.Object]int)
	exempt := make(map[token.Pos]bool)
	analyze := func(obj types.Object, ft *ast.FuncType, body *ast.BlockStmt) {
		if obj == nil || ft.Params == nil || body == nil {
			return
		}
		paramIdx := make(map[types.Object]int)
		idx := 0
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if def, ok := info.Defs[name]; ok {
					paramIdx[def] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegisterCall(info, call) || len(call.Args) == 0 {
				return true
			}
			arg, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return true
			}
			if i, ok := paramIdx[info.Uses[arg]]; ok {
				forwarders[obj] = i
				exempt[call.Pos()] = true
			}
			return true
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				analyze(info.Defs[n.Name], n.Type, n.Body)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						analyze(info.Defs[id], lit.Type, lit.Body)
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					lit, ok := v.(*ast.FuncLit)
					if !ok || i >= len(n.Names) {
						continue
					}
					analyze(info.Defs[n.Names[i]], lit.Type, lit.Body)
				}
			}
			return true
		})
	}
	return forwarders, exempt
}

// constObject returns the named constant an expression refers to, nil
// for literals and other constant expressions.
func constObject(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	return c
}
