package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader is one loader for the whole test binary: the source
// importer type-checks each stdlib package once, so fixture loads after
// the first are cheap.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

func loader(t *testing.T) *Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// fixtureDir names a fixture package directory, module-root-relative.
func fixtureDir(analyzer, sub string) string {
	return "internal/analysis/testdata/src/" + analyzer + "/" + sub
}

// runOn loads the fixture dirs and runs the named analyzer (all of them
// when name is "") over the result. Fixtures must type-check: a fixture
// that does not compile would let every analyzer pass vacuously.
func runOn(t *testing.T, name string, dirs ...string) Result {
	t.Helper()
	l := loader(t)
	pkgs, err := l.Load(dirs...)
	if err != nil {
		t.Fatalf("Load(%v): %v", dirs, err)
	}
	var as []*Analyzer
	for _, a := range Analyzers() {
		if name == "" || a.Name == name {
			as = append(as, a)
		}
	}
	if len(as) == 0 {
		t.Fatalf("no analyzer named %q in Analyzers()", name)
	}
	res := Run(l, pkgs, as)
	if len(res.TypeErrors) > 0 {
		t.Fatalf("fixture type errors: %v", res.TypeErrors)
	}
	return res
}

// want is one `// want "regexp"` expectation parsed from a fixture.
type want struct {
	key     string // file:line
	re      *regexp.Regexp
	matched bool
}

// wantArgRe extracts the quoted arguments of a want comment; both
// interpreted and raw (backquoted) Go string forms are accepted.
var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants collects the want expectations from every fixture file in
// dirs, keyed the way diagnostics are positioned: module-root-relative
// slash path and line number.
func parseWants(t *testing.T, dirs ...string) []*want {
	t.Helper()
	l := loader(t)
	var wants []*want
	for _, dir := range dirs {
		abs := filepath.Join(l.Root, filepath.FromSlash(dir))
		entries, err := os.ReadDir(abs)
		if err != nil {
			t.Fatalf("reading fixture dir %s: %v", dir, err)
		}
		for _, e := range entries {
			if !goSource(e) {
				continue
			}
			data, err := os.ReadFile(filepath.Join(abs, e.Name()))
			if err != nil {
				t.Fatalf("reading fixture %s: %v", e.Name(), err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				_, rest, ok := strings.Cut(line, "// want ")
				if !ok {
					continue
				}
				args := wantArgRe.FindAllString(rest, -1)
				if len(args) == 0 {
					t.Fatalf("%s/%s:%d: want comment with no quoted regexp", dir, e.Name(), i+1)
				}
				for _, arg := range args {
					pat, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s/%s:%d: unquoting %s: %v", dir, e.Name(), i+1, arg, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s/%s:%d: compiling %q: %v", dir, e.Name(), i+1, pat, err)
					}
					wants = append(wants, &want{
						key: fmt.Sprintf("%s/%s:%d", dir, e.Name(), i+1),
						re:  re,
					})
				}
			}
		}
	}
	return wants
}

// checkWants diffs the run's diagnostics against the fixtures' want
// comments: every diagnostic must match an expectation at its exact
// file and line, and every expectation must be consumed — so a disabled
// or broken analyzer fails the test from both directions.
func checkWants(t *testing.T, res Result, dirs ...string) {
	t.Helper()
	wants := parseWants(t, dirs...)
	byKey := make(map[string][]*want)
	for _, w := range wants {
		byKey[w.key] = append(byKey[w.key], w)
	}
	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := false
		for _, w := range byKey[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("expected diagnostic not reported at %s: %s", w.key, w.re)
		}
	}
}
