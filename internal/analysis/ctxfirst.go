package analysis

import "go/ast"

// newCtxFirst enforces the SDK's context conventions module-wide:
// every function or method that takes a context.Context takes it as
// the first parameter (matching pkg/nanoxbar's context-first surface
// and the standard library convention), interface methods included,
// and no struct stores a context.Context field — contexts are
// call-scoped values, and a stored one outlives its cancellation
// semantics. Queued-work structs that must carry their submitter's
// context document it with an explicit //xbarvet:ignore.
func newCtxFirst() *Analyzer {
	a := &Analyzer{
		Name: "ctxfirst",
		Doc:  "context.Context is always the first parameter and never a struct field",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		isCtx := func(e ast.Expr) bool {
			tv, ok := info.Types[e]
			return ok && tv.Type != nil && isNamedType(tv.Type, "context", "Context")
		}
		checkParams := func(params *ast.FieldList) {
			if params == nil {
				return
			}
			idx := 0
			for _, field := range params.List {
				n := len(field.Names)
				if n == 0 {
					n = 1
				}
				if isCtx(field.Type) && idx > 0 {
					pass.Reportf(field.Pos(),
						"context.Context must be the first parameter")
				}
				idx += n
			}
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					checkParams(n.Type.Params)
				case *ast.InterfaceType:
					for _, m := range n.Methods.List {
						if ft, ok := m.Type.(*ast.FuncType); ok {
							checkParams(ft.Params)
						}
					}
				case *ast.StructType:
					for _, field := range n.Fields.List {
						if isCtx(field.Type) {
							pass.Reportf(field.Pos(),
								"context.Context stored in a struct field: pass it per call instead")
						}
					}
				}
				return true
			})
		}
	}
	return a
}
