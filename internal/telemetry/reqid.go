package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Request-ID propagation. A request ID is minted at ingress (or honored
// from the caller's X-Request-ID header), carried through context into
// engine jobs, echoed on responses and v2 stream frames, and stamped on
// every structured log line — one string ties a client retry, a server
// log, and a metrics anomaly together.

// ctxKey is the private context key type for request IDs.
type ctxKey struct{}

// WithRequestID returns a context carrying id. An empty id returns ctx
// unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// NewRequestID mints a 16-hex-character random ID.
func NewRequestID() string {
	var b [8]byte
	// crypto/rand.Read never fails on supported platforms (it aborts
	// the process instead); the error return is vestigial.
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen bounds an accepted client-supplied ID: long enough
// for a UUID or a W3C trace ID, short enough that a hostile header
// cannot bloat every log line and stream frame.
const maxRequestIDLen = 64

// SanitizeRequestID validates a client-supplied request ID: at most 64
// bytes of printable ASCII excluding '"' and '\' (so it can be embedded
// in JSON logs and exposition labels without escaping surprises).
// Anything else returns "", telling the caller to mint a fresh ID.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x21 || c > 0x7e || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}
