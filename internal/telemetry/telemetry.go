// Package telemetry is the stdlib-only metrics and tracing substrate of
// the nanoxbar serving stack: atomic counters and gauges, lock-free
// log-spaced latency histograms, a registry that renders the Prometheus
// text exposition format (served at GET /metrics by internal/httpapi),
// and the request-ID context plumbing used by the structured request
// logs.
//
// Design constraints, in order:
//
//  1. Observation is the hot path. Counter.Add and Histogram.Observe
//     are a handful of atomic operations with no locks, no maps, and no
//     allocations — cheap enough to sit inside the per-die mapping loop
//     (~3µs/die), where a mutex or a label-lookup map would show up.
//  2. Exposition is the cold path. WriteText may take locks, walk
//     closures, and format floats; it runs once per scrape.
//  3. No dependencies. The exposition format is plain text; a
//     Prometheus client library would be the only external dependency
//     in the module, for a format a few hundred lines render and parse.
//
// Metrics are registered once at construction time with their full
// label set pre-rendered (labels are static — per-kind, per-stage,
// per-endpoint — never per-request), then observed through the returned
// handle. Scrape-time values (pool sizes, per-shard cache counters,
// runtime stats) register closures instead, sampled only when /metrics
// is hit.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types, as rendered on # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use, but counters are normally obtained from Registry.Counter so
// they render on /metrics.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// series is one labeled sample of a family, valued at scrape time.
// Exactly one of ctr/gauge/hist/value is set; ctr and gauge double as
// the handles returned on idempotent re-registration.
type series struct {
	labels string // pre-rendered `k="v",...` or ""
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	value  func() float64 // CounterFunc/GaugeFunc closure
}

// sample reads the series' current value (histograms render
// themselves and never come through here).
func (s *series) sample() float64 {
	switch {
	case s.ctr != nil:
		return float64(s.ctr.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	default:
		return s.value()
	}
}

// family groups the series of one metric name under a single
// # HELP/# TYPE header, as the exposition format requires.
type family struct {
	name, help, typ string
	series          []*series
	// collect, when non-nil, emits dynamically labeled samples at
	// scrape time (e.g. one per cache shard); static series render
	// first, then collected ones.
	collect func(emit func(labels string, v float64))
	// collectHist, when non-nil, snapshots an externally maintained
	// histogram at scrape time (the runtime GC pause distribution):
	// finite upper bounds in seconds, per-bucket counts with one extra
	// overflow bucket, and the sum in seconds.
	collectHist func() (bounds []float64, counts []uint64, sum float64, ok bool)
}

// Registry holds metric families in registration order and renders
// them as Prometheus text exposition format 0.0.4. All methods are safe
// for concurrent use; registration is idempotent — re-registering a
// name+labels pair returns the existing handle instead of duplicating
// the series.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor finds or creates the family for name. The first
// registration fixes help and type; later ones must agree (mismatches
// panic: they are wiring bugs, not runtime conditions).
func (r *Registry) familyFor(name, help, typ string) *family {
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: %s registered as both %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// findSeries returns the existing series with the rendered label set,
// or nil.
func (f *family) findSeries(labels string) *series {
	for _, s := range f.series {
		if s.labels == labels {
			return s
		}
	}
	return nil
}

// Counter registers (or returns the existing) counter series. Labels
// are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeCounter)
	if s := f.findSeries(ls); s != nil {
		return s.ctr
	}
	c := &Counter{}
	f.series = append(f.series, &series{labels: ls, ctr: c})
	return c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeGauge)
	if s := f.findSeries(ls); s != nil {
		return s.gauge
	}
	g := &Gauge{}
	f.series = append(f.series, &series{labels: ls, gauge: g})
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotone counts that already live elsewhere as atomics
// (engine request counters, lattice evaluation totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.registerFunc(name, help, typeCounter, fn, labels)
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.registerFunc(name, help, typeGauge, fn, labels)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labels []string) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typ)
	if f.findSeries(ls) != nil {
		return
	}
	f.series = append(f.series, &series{labels: ls, value: fn})
}

// Collect registers a whole family whose samples are produced at scrape
// time with dynamic labels (e.g. one sample per cache shard). typ is
// "counter" or "gauge".
func (r *Registry) Collect(name, help, typ string, collect func(emit func(labels string, v float64))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typ)
	f.collect = collect
}

// CollectHistogram registers a histogram family whose buckets are
// snapshotted from fn at scrape time. fn returns finite upper bounds in
// seconds, per-bucket counts carrying one extra overflow bucket
// (len(counts) == len(bounds)+1), and the sum in seconds; ok=false
// skips the family for this scrape.
func (r *Registry) CollectHistogram(name, help string, fn func() (bounds []float64, counts []uint64, sum float64, ok bool)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeHistogram)
	f.collectHist = fn
}

// Histogram registers (or returns the existing) log-spaced latency
// histogram series. See histogram.go for the bucket layout.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeHistogram)
	if s := f.findSeries(ls); s != nil {
		return s.hist
	}
	h := newHistogram()
	f.series = append(f.series, &series{labels: ls, hist: h})
	return h
}

// Label renders one k="v" pair for Collect emitters, escaping the value
// per the exposition format.
func Label(k, v string) string {
	var b strings.Builder
	appendLabel(&b, k, v)
	return b.String()
}

// renderLabels turns alternating key, value pairs into the canonical
// `k1="v1",k2="v2"` form (sorted by key so the same logical label set
// always hits the same series).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: odd label list (want key, value pairs)")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		appendLabel(&b, p.k, p.v)
	}
	return b.String()
}

func appendLabel(b *strings.Builder, k, v string) {
	b.WriteString(k)
	b.WriteString(`="`)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// WriteText renders every family in registration order as Prometheus
// text exposition format 0.0.4.
func (r *Registry) WriteText(w io.Writer) error {
	// Snapshot the family list under the lock, render outside it:
	// family series slices are append-only and samples are atomics or
	// closures safe to call concurrently.
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(strings.ReplaceAll(f.help, "\n", " "))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range f.series {
			if s.hist != nil {
				s.hist.writeText(&b, f.name, s.labels)
				continue
			}
			writeSample(&b, f.name, "", s.labels, s.sample())
		}
		if f.collect != nil {
			f.collect(func(labels string, v float64) {
				writeSample(&b, f.name, "", labels, v)
			})
		}
		if f.collectHist != nil {
			if bounds, counts, sum, ok := f.collectHist(); ok && len(counts) == len(bounds)+1 {
				var cum uint64
				for i, bound := range bounds {
					cum += counts[i]
					var le strings.Builder
					appendLabel(&le, "le", formatValue(bound))
					writeBucket(&b, f.name, "", le.String(), cum)
				}
				cum += counts[len(bounds)]
				writeBucket(&b, f.name, "", `le="+Inf"`, cum)
				writeSample(&b, f.name, "_sum", "", sum)
				writeSample(&b, f.name, "_count", "", float64(cum))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample renders one `name{labels} value` line. suffix is appended
// to the name (histogram _bucket/_sum/_count); extraLabel, when
// non-empty, is appended after labels (the le="..." pair).
func writeSample(b *strings.Builder, name, suffix, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
