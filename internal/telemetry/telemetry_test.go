package telemetry

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "Ops.", "kind", "map")
	c.Add(3)
	g := reg.Gauge("test_inflight", "In flight.")
	g.Set(2)
	g.Dec()
	reg.GaugeFunc("test_sampled", "Sampled.", func() float64 { return 7.5 })

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Ops.\n# TYPE test_ops_total counter\n",
		`test_ops_total{kind="map"} 3` + "\n",
		"# TYPE test_inflight gauge\ntest_inflight 1\n",
		"test_sampled 7.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "x", "k", "v")
	b := reg.Counter("dup_total", "x", "k", "v")
	if a != b {
		t.Fatal("re-registering the same counter returned a new handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles diverged")
	}
	// Same name, different labels: distinct series, same family.
	c := reg.Counter("dup_total", "x", "k", "w")
	if c == a {
		t.Fatal("different labels returned the same series")
	}
	// Label order must not matter.
	h1 := reg.Histogram("dup_hist", "x", "a", "1", "b", "2")
	h2 := reg.Histogram("dup_hist", "x", "b", "2", "a", "1")
	if h1 != h2 {
		t.Fatal("label order produced distinct series")
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 0},
		{128, 0}, // le = 2^7 inclusive
		{129, 1}, // first value above 2^7
		{256, 1}, // le = 2^8 inclusive
		{257, 2},
		{1 << 36, numBuckets - 1},
		{1<<36 + 1, numBuckets}, // overflow
		{^uint64(0), numBuckets},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.ns); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

func TestHistogramObserveAndRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "Latency.", "stage", "map")
	h.Observe(100 * time.Nanosecond) // bucket 0
	h.Observe(200 * time.Nanosecond) // bucket 1
	h.Observe(time.Hour)             // overflow
	h.Observe(-time.Second)          // clamped to 0, bucket 0

	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	wantSum := (100*time.Nanosecond + 200*time.Nanosecond + time.Hour).Seconds()
	if math.Abs(h.Sum()-wantSum) > 1e-12 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, b.String())
	}
	hs, ok := exp.Histogram("test_latency_seconds", map[string]string{"stage": "map"})
	if !ok {
		t.Fatalf("histogram not found in:\n%s", b.String())
	}
	if hs.Count != 4 || hs.Inf != 4 {
		t.Fatalf("parsed count = %d / inf %d, want 4", hs.Count, hs.Inf)
	}
	if len(hs.Bounds) != numBuckets {
		t.Fatalf("parsed %d finite buckets, want %d", len(hs.Bounds), numBuckets)
	}
	// Cumulative counts must be monotone and match the observations:
	// two ≤ 128ns, three ≤ 256ns.
	if hs.Cum[0] != 2 || hs.Cum[1] != 3 {
		t.Fatalf("cumulative buckets %v, want [2 3 ...]", hs.Cum[:3])
	}
	for i := 1; i < len(hs.Cum); i++ {
		if hs.Cum[i] < hs.Cum[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, hs.Cum[i-1:i+1])
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_conc_seconds", "x")
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Nanosecond)
				if i%500 == 0 {
					var b strings.Builder
					_ = reg.WriteText(&b) // scrape under fire
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*perG)
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_alloc_seconds", "x")
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Microsecond) }); allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}

func TestQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_q_seconds", "x")
	// 1000 observations uniform over (0, 100µs].
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i*100) * time.Nanosecond)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := exp.Histogram("test_q_seconds", nil)
	// With log2 buckets the interpolation error is bounded by a factor
	// of 2; assert the quantiles land within their true bucket.
	p50 := hs.Quantile(0.5)
	if p50 < 25e-6 || p50 > 100e-6 {
		t.Fatalf("p50 = %v, want ~50µs within one bucket", p50)
	}
	p99 := hs.Quantile(0.99)
	if p99 < 50e-6 || p99 > 200e-6 {
		t.Fatalf("p99 = %v, want ~99µs within one bucket", p99)
	}
	if q := (&HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_delta_seconds", "x")
	scrape := func() *HistogramSnapshot {
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		exp, err := ParseExposition(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		hs, ok := exp.Histogram("test_delta_seconds", nil)
		if !ok {
			t.Fatal("histogram missing")
		}
		return hs
	}
	h.Observe(time.Microsecond)
	before := scrape()
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	d, ok := scrape().Sub(before)
	if !ok {
		t.Fatal("bounds mismatch across scrapes")
	}
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	wantSum := (time.Millisecond + 2*time.Millisecond).Seconds()
	if math.Abs(d.Sum-wantSum) > 1e-12 {
		t.Fatalf("delta sum = %v, want %v", d.Sum, wantSum)
	}
}

func TestCollectFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.Collect("test_shard_hits_total", "Per shard.", "counter", func(emit func(string, float64)) {
		emit(Label("shard", "0"), 5)
		emit(Label("shard", "1"), 7)
	})
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("test_shard_hits_total", map[string]string{"shard": "1"}); !ok || v != 7 {
		t.Fatalf("shard 1 = %v (found %v), want 7", v, ok)
	}
}

func TestGoMetricsRegistered(t *testing.T) {
	reg := NewRegistry()
	RegisterGoMetrics(reg)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("runtime metrics do not parse: %v\n%s", err, b.String())
	}
	if v, ok := exp.Value("go_goroutines", nil); !ok || v < 1 {
		t.Fatalf("go_goroutines = %v (found %v), want >= 1", v, ok)
	}
	if v, ok := exp.Value("go_heap_objects_bytes", nil); !ok || v <= 0 {
		t.Fatalf("go_heap_objects_bytes = %v (found %v), want > 0", v, ok)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context carries an ID")
	}
	ctx = WithRequestID(ctx, "abc-123")
	if RequestID(ctx) != "abc-123" {
		t.Fatal("ID not carried")
	}
	if WithRequestID(ctx, "") != ctx {
		t.Fatal("empty ID should be a no-op")
	}
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("NewRequestID: %q, %q", a, b)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := map[string]string{
		"abc-123":                              "abc-123",
		"550e8400-e29b-41d4-a716-446655440000": "550e8400-e29b-41d4-a716-446655440000",
		"":                                     "",
		"has space":                            "",
		"quote\"in":                            "",
		"back\\slash":                          "",
		"new\nline":                            "",
		strings.Repeat("x", 65):                "",
		strings.Repeat("x", 64):                strings.Repeat("x", 64),
	}
	for in, want := range cases {
		if got := SanitizeRequestID(in); got != want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}
