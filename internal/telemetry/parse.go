package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-exposition parser. Two consumers: the
// httpapi round-trip test (asserting /metrics output is well-formed)
// and cmd/xbarload (scraping the server before and after a soak to
// embed metric deltas in its report). It parses the subset WriteText
// emits — HELP/TYPE comments and `name{labels} value` samples — which
// is also the subset any conforming exposition uses.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string // metric name as written, including _bucket/_sum/_count suffixes
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed scrape.
type Exposition struct {
	Samples []Sample
	Types   map[string]string // family name → counter|gauge|histogram
	Help    map[string]string
}

// ParseExposition reads Prometheus text format 0.0.4. It returns an
// error on structurally invalid lines (bad label syntax, unparsable
// values), making it usable as a format validator.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		typ := fields[3]
		if typ != typeCounter && typ != typeGauge && typ != typeHistogram &&
			typ != "summary" && typ != "untyped" {
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := e.Types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s (family split across groups)", fields[2])
		}
		e.Types[fields[2]] = typ
	case "HELP":
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		e.Help[fields[2]] = help
	}
	return nil
}

// parseSample parses `name{k="v",...} value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value on sample line %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++ // skip escaped char
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		if s.Labels, err = parseLabels(rest[1:end]); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; WriteText never emits one, but
	// accept it for generality.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseFloat(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return nil, fmt.Errorf("bad label pair near %q", body)
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Value returns the sample value for name with exactly the given
// labels (nil matches the unlabeled series), and whether it was found.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// HistogramSnapshot is a reconstructed histogram series: sorted finite
// upper bounds (seconds) with cumulative counts, plus sum and count.
type HistogramSnapshot struct {
	Bounds []float64 // finite le bounds, ascending
	Cum    []uint64  // cumulative counts per bound
	Inf    uint64    // cumulative count at +Inf (== Count)
	Sum    float64
	Count  uint64
}

// Histogram reconstructs the histogram series of name whose non-le
// labels equal labels.
func (e *Exposition) Histogram(name string, labels map[string]string) (*HistogramSnapshot, bool) {
	match := func(s Sample, withLE bool) bool {
		want := len(labels)
		if withLE {
			want++
		}
		if len(s.Labels) != want {
			return false
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				return false
			}
		}
		return true
	}
	h := &HistogramSnapshot{}
	type bkt struct {
		bound float64
		cum   uint64
	}
	var bkts []bkt
	found := false
	for _, s := range e.Samples {
		switch s.Name {
		case name + "_bucket":
			if !match(s, true) {
				continue
			}
			le, err := parseFloat(s.Labels["le"])
			if err != nil {
				continue
			}
			found = true
			if math.IsInf(le, 0) {
				h.Inf = uint64(s.Value)
			} else {
				bkts = append(bkts, bkt{le, uint64(s.Value)})
			}
		case name + "_sum":
			if match(s, false) {
				h.Sum = s.Value
			}
		case name + "_count":
			if match(s, false) {
				h.Count = uint64(s.Value)
			}
		}
	}
	if !found {
		return nil, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].bound < bkts[j].bound })
	for _, b := range bkts {
		h.Bounds = append(h.Bounds, b.bound)
		h.Cum = append(h.Cum, b.cum)
	}
	return h, true
}

// Sub returns a snapshot of the observations between earlier and h
// (h minus earlier, bucket-wise). Bounds must match; mismatches return
// false.
func (h *HistogramSnapshot) Sub(earlier *HistogramSnapshot) (*HistogramSnapshot, bool) {
	if earlier == nil {
		return h, true
	}
	if len(h.Bounds) != len(earlier.Bounds) {
		return nil, false
	}
	d := &HistogramSnapshot{
		Bounds: h.Bounds,
		Cum:    make([]uint64, len(h.Cum)),
		Inf:    h.Inf - earlier.Inf,
		Sum:    h.Sum - earlier.Sum,
		Count:  h.Count - earlier.Count,
	}
	for i := range h.Cum {
		if h.Bounds[i] != earlier.Bounds[i] {
			return nil, false
		}
		d.Cum[i] = h.Cum[i] - earlier.Cum[i]
	}
	return d, true
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket, the same estimate Prometheus's
// histogram_quantile computes. Returns 0 for an empty histogram; a
// quantile landing in the overflow bucket returns the largest finite
// bound (a lower bound on the true value).
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	total := h.Inf
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var prevCum uint64
	prevBound := 0.0
	for i, cum := range h.Cum {
		if float64(cum) >= rank {
			inBucket := cum - prevCum
			if inBucket == 0 {
				return h.Bounds[i]
			}
			frac := (rank - float64(prevCum)) / float64(inBucket)
			return prevBound + frac*(h.Bounds[i]-prevBound)
		}
		prevCum, prevBound = cum, h.Bounds[i]
	}
	if len(h.Bounds) > 0 {
		return h.Bounds[len(h.Bounds)-1]
	}
	return 0
}
