package telemetry

import (
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed log2-spaced upper bounds from
// 2^histMinShift ns (128ns) to 2^histMaxShift ns (~68.7s), one bucket
// per power of two, plus an overflow (+Inf) bucket. Thirty buckets span
// nine decades — wide enough for everything from a cache-hit lookup
// (hundreds of ns) to a hundred-thousand-die yield sweep (tens of
// seconds) — and the power-of-two spacing makes bucket selection a
// bits.Len64, not a search over bounds.
const (
	histMinShift = 7  // smallest finite bound: 2^7 ns = 128ns
	histMaxShift = 36 // largest finite bound: 2^36 ns ≈ 68.7s
	numBuckets   = histMaxShift - histMinShift + 1
)

// bucketLE holds the pre-formatted `le="..."` label (bounds in seconds,
// the Prometheus convention) for every finite bucket, rendered once at
// package init so scrapes don't re-format floats per series.
var bucketLE = func() [numBuckets]string {
	var les [numBuckets]string
	for i := range les {
		bound := float64(uint64(1)<<(histMinShift+i)) / 1e9
		var b strings.Builder
		appendLabel(&b, "le", formatValue(bound))
		les[i] = b.String()
	}
	return les
}()

// bucketBound returns the upper bound of finite bucket i, in seconds.
func bucketBound(i int) float64 {
	return float64(uint64(1)<<(histMinShift+i)) / 1e9
}

// Histogram is a lock-free fixed-bucket latency histogram. Observe is
// two atomic adds plus a bits.Len64 — no locks, no allocation — so it
// can sit on the per-die mapping path. Obtain instances from
// Registry.Histogram.
type Histogram struct {
	// counts are per-bucket (not cumulative; cumulation happens at
	// render time). Index numBuckets is the overflow (+Inf) bucket.
	counts [numBuckets + 1]atomic.Uint64
	// sumNs accumulates observed nanoseconds; rendered as seconds.
	sumNs atomic.Uint64
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a nanosecond value onto its bucket: the first bucket
// whose upper bound 2^k satisfies v ≤ 2^k (le is inclusive, matching
// Prometheus semantics).
func bucketIndex(ns uint64) int {
	if ns <= 1<<histMinShift {
		return 0
	}
	// ceil(log2(ns)) for ns > 2^histMinShift: bits.Len64(ns-1) is the
	// exponent of the smallest power of two ≥ ns.
	i := bits.Len64(ns-1) - histMinShift
	if i > numBuckets {
		return numBuckets // overflow bucket
	}
	return i
}

// Observe records one duration. Negative durations (clock steps) count
// into the smallest bucket rather than corrupting the sum.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.sumNs.Add(ns)
}

// Since is shorthand for Observe(time.Since(start)).
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed durations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// snapshot loads the per-bucket counts and the sum. The counts are a
// best-effort consistent view: concurrent Observes may land between
// bucket loads, which only skews a scrape by in-flight observations.
func (h *Histogram) snapshot() (counts [numBuckets + 1]uint64, sumNs uint64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sumNs.Load()
}

// writeText renders the series in Prometheus histogram form: cumulative
// _bucket lines per le bound, then _sum and _count.
func (h *Histogram) writeText(b *strings.Builder, name, labels string) {
	counts, sumNs := h.snapshot()
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += counts[i]
		writeBucket(b, name, labels, bucketLE[i], cum)
	}
	cum += counts[numBuckets]
	writeBucket(b, name, labels, `le="+Inf"`, cum)
	writeSample(b, name, "_sum", labels, float64(sumNs)/1e9)
	writeSample(b, name, "_count", labels, float64(cum))
}

// writeBucket renders one cumulative bucket line, merging the le label
// into the series labels.
func writeBucket(b *strings.Builder, name, labels, le string, cum uint64) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	if labels != "" {
		b.WriteString(labels)
		b.WriteByte(',')
	}
	b.WriteString(le)
	b.WriteString("} ")
	b.WriteString(formatValue(float64(cum)))
	b.WriteByte('\n')
}
