package telemetry

import (
	"math"
	"runtime/metrics"
)

// Go runtime observability, sampled from runtime/metrics at scrape
// time. The sampled set is small and fixed: the quantities an operator
// watches to tell "the engine is slow" from "the process is unhealthy"
// — goroutine count (leak detection), live heap (cache sizing), GC
// cycle count, and the stop-the-world pause distribution.
var runtimeSamples = []struct {
	name string // runtime/metrics key
	fam  string // exposition family name
	help string
	typ  string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Number of live goroutines.", typeGauge},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of live heap objects.", typeGauge},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "All memory mapped by the Go runtime.", typeGauge},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles.", typeCounter},
	{"/sched/pauses/total/gc:seconds", "go_gc_pause_seconds", "Distribution of stop-the-world GC pause latencies.", typeHistogram},
}

// RegisterGoMetrics registers the runtime families onto reg. Metrics
// the running toolchain does not support are skipped rather than
// rendered as zeros.
func RegisterGoMetrics(reg *Registry) {
	descs := metrics.All()
	supported := make(map[string]metrics.ValueKind, len(descs))
	for _, d := range descs {
		supported[d.Name] = d.Kind
	}
	for _, rs := range runtimeSamples {
		kind, ok := supported[rs.name]
		if !ok || kind == metrics.KindBad {
			continue
		}
		name := rs.name // capture per iteration
		switch rs.typ {
		case typeHistogram:
			reg.CollectHistogram(rs.fam, rs.help, runtimeHistogram(name))
		case typeCounter:
			reg.CounterFunc(rs.fam, rs.help, runtimeValue(name))
		default:
			reg.GaugeFunc(rs.fam, rs.help, runtimeValue(name))
		}
	}
}

// runtimeValue samples one scalar runtime metric.
func runtimeValue(name string) func() float64 {
	return func() float64 {
		sample := []metrics.Sample{{Name: name}}
		metrics.Read(sample)
		switch sample[0].Value.Kind() {
		case metrics.KindUint64:
			return float64(sample[0].Value.Uint64())
		case metrics.KindFloat64:
			return sample[0].Value.Float64()
		}
		return 0
	}
}

// runtimeHistogram snapshots a runtime Float64Histogram into the
// CollectHistogram shape. The runtime's own buckets are used as-is
// (they are already log-spaced); the sum is approximated from bucket
// midpoints, since the runtime does not track an exact one.
func runtimeHistogram(name string) func() ([]float64, []uint64, float64, bool) {
	return func() ([]float64, []uint64, float64, bool) {
		sample := []metrics.Sample{{Name: name}}
		metrics.Read(sample)
		if sample[0].Value.Kind() != metrics.KindFloat64Histogram {
			return nil, nil, 0, false
		}
		h := sample[0].Value.Float64Histogram()
		if h == nil || len(h.Buckets) != len(h.Counts)+1 {
			return nil, nil, 0, false
		}
		var bounds []float64
		counts := make([]uint64, 0, len(h.Counts)+1)
		var sum float64
		var overflow uint64
		for i, n := range h.Counts {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			mid := (lo + hi) / 2
			if math.IsInf(lo, -1) {
				mid = hi
			}
			if math.IsInf(hi, 1) {
				mid = lo
			}
			sum += float64(n) * mid
			if math.IsInf(hi, 1) {
				overflow += n
				continue
			}
			bounds = append(bounds, hi)
			counts = append(counts, n)
		}
		counts = append(counts, overflow)
		return bounds, counts, sum, true
	}
}
