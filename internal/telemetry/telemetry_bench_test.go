package telemetry

import (
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkHistogramObserve pins the cost of the hot-path observation:
// it sits inside the per-die mapping loop (~3µs/die), so it must stay
// in the tens of nanoseconds with zero allocations. Gated in CI via
// cmd/benchjson.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_latency_seconds", "x", "kind", "map")
	d := 3127 * time.Nanosecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

// BenchmarkHistogramObserveParallel measures contention across
// GOMAXPROCS observers sharing one histogram — the yield-sweep shape,
// where every worker's die observations land in the same series.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_parallel_seconds", "x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 3127 * time.Nanosecond
		for pb.Next() {
			h.Observe(d)
		}
	})
}

// BenchmarkCounterAdd pins the counter hot path.
func BenchmarkCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_ops_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkWriteText measures a full scrape over a registry shaped like
// the production one (a dozen histograms, a few dozen scalar series) —
// the cold path, but it runs on every /metrics poll.
func BenchmarkWriteText(b *testing.B) {
	reg := NewRegistry()
	for _, kind := range []string{"synthesize", "compare", "map", "yield"} {
		h := reg.Histogram("bench_request_seconds", "x", "kind", kind)
		for i := 0; i < 1000; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
	}
	for _, stage := range []string{"queue_wait", "cache_lookup", "synthesize", "die_map"} {
		reg.Histogram("bench_stage_seconds", "x", "stage", stage).Observe(time.Millisecond)
	}
	var n atomic.Uint64
	for i := 0; i < 32; i++ {
		reg.CounterFunc("bench_sampled_total", "x", func() float64 { return float64(n.Load()) },
			"shard", string(rune('a'+i)))
	}
	RegisterGoMetrics(reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
