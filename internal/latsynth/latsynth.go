// Package latsynth synthesizes four-terminal switching lattices for
// Boolean functions, implementing the methods compared in Section III-B
// of the DATE'17 paper:
//
//   - the Altun–Riedel dual-based construction ([2],[3] in the paper):
//     columns from an SOP cover of f, rows from an SOP cover of the dual
//     f^D, each crosspoint holding a literal shared by its row and
//     column products — giving the Fig. 5 size #products(f^D) ×
//     #products(f);
//   - a bounded exhaustive optimal search (the stand-in for the
//     SAT-based optimal synthesis of Gange–Søndergaard–Stuckey, [9]);
//   - a row/column post-reduction pass;
//   - a naive OR-of-columns SOP construction used as a baseline.
package latsynth

import (
	"fmt"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/isop"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/qm"
	"nanoxbar/internal/truthtab"
)

// CellChoice selects how the dual method picks one of the shared
// literals for a crosspoint.
type CellChoice int

// Cell literal selection heuristics.
const (
	// FirstCommon takes the lowest-indexed shared literal.
	FirstCommon CellChoice = iota
	// MostFrequent takes the shared literal occurring in the most
	// candidate sets across the grid, which tends to help the
	// post-reduction pass merge rows and columns.
	MostFrequent
)

// Options configure synthesis.
type Options struct {
	// Exact requests exact minimum SOP covers (Quine–McCluskey) for f
	// and f^D. When false, or when QM exceeds its limits, the
	// irredundant Minato–Morreale covers are used instead.
	Exact bool
	// QM bounds the exact minimizer effort.
	QM qm.Options
	// Cells selects the crosspoint literal heuristic.
	Cells CellChoice
	// PostReduce runs the row/column deletion pass after construction.
	PostReduce bool
	// PostReduceMaxArea skips post-reduction on lattices larger than
	// this (each deletion trial re-verifies the whole function, which
	// is quadratic in area; 0 means the default of 1200).
	PostReduceMaxArea int
}

// DefaultOptions are the settings used by the paper-reproduction
// benches: exact covers where affordable, frequency-based cell choice,
// post-reduction on.
func DefaultOptions() Options {
	return Options{Exact: true, QM: qm.DefaultOptions(), Cells: MostFrequent, PostReduce: true}
}

// postReduceLimit resolves the PostReduceMaxArea default.
func (o Options) postReduceLimit() int {
	if o.PostReduceMaxArea > 0 {
		return o.PostReduceMaxArea
	}
	return 1200
}

// Result carries a synthesized lattice and its provenance.
type Result struct {
	Lattice   *lattice.Lattice
	FCover    cube.Cover // SOP of f used for columns
	DualCover cube.Cover // SOP of f^D used for rows
	Method    string
	ExactSOP  bool // covers are exact minimum SOPs
}

// Area returns the lattice area R·C.
func (r *Result) Area() int { return r.Lattice.Area() }

// Covers computes SOP covers for f and f^D per the options; exact when
// requested and affordable, otherwise irredundant.
func Covers(f truthtab.TT, opts Options) (fc, dc cube.Cover, exact bool) {
	fd := f.Dual()
	if opts.Exact {
		c1, err1 := qm.MinimizeTT(f, opts.QM)
		c2, err2 := qm.MinimizeTT(fd, opts.QM)
		if err1 == nil && err2 == nil {
			return c1, c2, true
		}
	}
	return isop.OfTT(f), isop.OfTT(fd), false
}

// DualMethod synthesizes a lattice with the Altun–Riedel construction.
// The resulting size is #products(f^D) rows × #products(f) columns
// before post-reduction (the paper's Fig. 5 formula).
func DualMethod(f truthtab.TT, opts Options) (*Result, error) {
	if f.IsZero() {
		return &Result{Lattice: lattice.Constant(false), Method: "dual"}, nil
	}
	if f.IsOne() {
		return &Result{Lattice: lattice.Constant(true), Method: "dual"}, nil
	}
	fc, dc, exact := Covers(f, opts)
	l, err := BuildDualGrid(fc, dc, opts.Cells)
	if err != nil {
		return nil, err
	}
	if !l.ImplementsFast(f) {
		// The construction is proven correct for implicant covers of f
		// and f^D; reaching this indicates a bug upstream.
		return nil, fmt.Errorf("latsynth: dual-method lattice does not implement f (f=%v)", f)
	}
	if opts.PostReduce && l.Area() <= opts.postReduceLimit() {
		l = PostReduce(l, f)
	}
	return &Result{Lattice: l, FCover: fc, DualCover: dc, Method: "dual", ExactSOP: exact}, nil
}

// BuildDualGrid assembles the dual-method grid from covers of f
// (columns) and f^D (rows). Every row product and column product must
// share a literal; by the implicant-sharing lemma this always holds when
// fc covers f with implicants of f and dc covers f^D with implicants of
// f^D.
func BuildDualGrid(fc, dc cube.Cover, choice CellChoice) (*lattice.Lattice, error) {
	if len(fc) == 0 || len(dc) == 0 {
		return nil, fmt.Errorf("latsynth: empty cover")
	}
	rows, cols := len(dc), len(fc)
	common := make([]cube.Cube, rows*cols)
	freq := make(map[cube.Lit]int)
	for i, q := range dc {
		for j, p := range fc {
			sh := q.CommonLiterals(p)
			if sh.IsUniverse() {
				return nil, fmt.Errorf("latsynth: products %v and %v share no literal", p, q)
			}
			common[i*cols+j] = sh
			for _, lit := range sh.Literals() {
				freq[lit]++
			}
		}
	}
	l := lattice.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			cands := common[i*cols+j].Literals()
			pick := cands[0]
			if choice == MostFrequent {
				for _, cand := range cands[1:] {
					if freq[cand] > freq[pick] {
						pick = cand
					}
				}
			}
			l.Set(i, j, lattice.Lit(pick.Var, pick.Neg))
		}
	}
	return l, nil
}

// PostReduce repeatedly deletes any single row or column whose removal
// leaves the lattice still implementing f, until no deletion applies.
// Deleting a wire is always physically realizable, so this is a safe
// area optimization. Each deletion trial re-verifies the function
// through one shared bit-parallel evaluator, which exits on the first
// mismatching 64-assignment word — the common case, since most
// deletions break the function.
func PostReduce(l *lattice.Lattice, f truthtab.TT) *lattice.Lattice {
	ev := lattice.NewEvaluator()
	cur := l
	for {
		improved := false
		if cur.R > 1 {
			for i := 0; i < cur.R; i++ {
				cand := deleteRow(cur, i)
				if ev.Implements(cand, f) {
					cur = cand
					improved = true
					break
				}
			}
		}
		if !improved && cur.C > 1 {
			for j := 0; j < cur.C; j++ {
				cand := deleteCol(cur, j)
				if ev.Implements(cand, f) {
					cur = cand
					improved = true
					break
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

func deleteRow(l *lattice.Lattice, row int) *lattice.Lattice {
	out := lattice.New(l.R-1, l.C)
	for i, oi := 0, 0; i < l.R; i++ {
		if i == row {
			continue
		}
		for j := 0; j < l.C; j++ {
			out.Set(oi, j, l.At(i, j))
		}
		oi++
	}
	return out
}

func deleteCol(l *lattice.Lattice, col int) *lattice.Lattice {
	out := lattice.New(l.R, l.C-1)
	for i := 0; i < l.R; i++ {
		for j, oj := 0, 0; j < l.C; j++ {
			if j == col {
				continue
			}
			out.Set(i, oj, l.At(i, j))
			oj++
		}
	}
	return out
}

// SOPBaseline builds the naive composition lattice: the OR of one
// column lattice per product of the cover. It is correct for any cover
// and serves as the "no dual information" baseline.
func SOPBaseline(f truthtab.TT, opts Options) (*Result, error) {
	if f.IsZero() {
		return &Result{Lattice: lattice.Constant(false), Method: "sop-or"}, nil
	}
	if f.IsOne() {
		return &Result{Lattice: lattice.Constant(true), Method: "sop-or"}, nil
	}
	fc, _, exact := Covers(f, opts)
	ls := make([]*lattice.Lattice, len(fc))
	for i, c := range fc {
		ls[i] = lattice.FromCube(c)
	}
	l := lattice.OrAll(ls...)
	if !l.ImplementsFast(f) {
		return nil, fmt.Errorf("latsynth: SOP baseline lattice incorrect")
	}
	return &Result{Lattice: l, FCover: fc, Method: "sop-or", ExactSOP: exact}, nil
}
