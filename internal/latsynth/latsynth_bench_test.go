package latsynth

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/truthtab"
)

func benchTT(n int, seed int64) truthtab.TT {
	rng := rand.New(rand.NewSource(seed))
	f := truthtab.New(n)
	for a := uint64(0); a < f.Size(); a++ {
		if rng.Intn(2) == 1 {
			f.SetBit(a, true)
		}
	}
	return f
}

// BenchmarkDualMethod6Var runs the full dual-method synthesis —
// covers, grid, verification, post-reduction — on a dense random
// 6-variable function. PostReduce deletion trials dominate, so this
// tracks the bit-parallel Implements path end to end.
func BenchmarkDualMethod6Var(b *testing.B) {
	f := benchTT(6, 9)
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		if _, err := DualMethod(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPostReduce6Var isolates the deletion pass on the unreduced
// dual-method grid.
func BenchmarkPostReduce6Var(b *testing.B) {
	f := benchTT(6, 9)
	opts := DefaultOptions()
	opts.PostReduce = false
	res, err := DualMethod(f, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PostReduce(res.Lattice, f)
	}
}

// BenchmarkOptimal3Var runs the bounded-optimal backtracking search,
// whose per-node feasibility prune is the bit-parallel FeasiblePartial.
func BenchmarkOptimal3Var(b *testing.B) {
	f := benchTT(3, 5)
	opts := DefaultOptimalOptions()
	for i := 0; i < b.N; i++ {
		if _, done := Optimal(f, opts); !done {
			b.Fatal("optimal search did not complete")
		}
	}
}
