package latsynth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nanoxbar/internal/bexpr"
	"nanoxbar/internal/cube"
	"nanoxbar/internal/truthtab"
)

func tt(t *testing.T, s string) truthtab.TT {
	t.Helper()
	f, _, err := bexpr.ParseTT(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randTT(n int, rng *rand.Rand) truthtab.TT {
	f := truthtab.New(n)
	for a := uint64(0); a < f.Size(); a++ {
		if rng.Intn(2) == 1 {
			f.SetBit(a, true)
		}
	}
	return f
}

func TestPaperRunningExample(t *testing.T) {
	// §III-B: f = x1x2 + x1'x2' with dual x1x2' + x1'x2 must give a
	// 2×2 lattice (Fig. 5 example).
	f := tt(t, "x1x2 + x1'x2'")
	opts := DefaultOptions()
	opts.PostReduce = false
	res, err := DualMethod(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lattice.R != 2 || res.Lattice.C != 2 {
		t.Fatalf("size %d×%d, want 2×2\n%v", res.Lattice.R, res.Lattice.C, res.Lattice)
	}
	if !res.Lattice.Implements(f) {
		t.Fatal("lattice incorrect")
	}
	if len(res.FCover) != 2 || len(res.DualCover) != 2 {
		t.Fatalf("covers %d,%d", len(res.FCover), len(res.DualCover))
	}
}

func TestDualMethodCorrectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := DefaultOptions()
	for i := 0; i < 120; i++ {
		n := 1 + rng.Intn(5)
		f := randTT(n, rng)
		res, err := DualMethod(f, opts)
		if err != nil {
			t.Fatalf("n=%d f=%v: %v", n, f, err)
		}
		if !res.Lattice.Implements(f) {
			t.Fatalf("lattice wrong for %v", f)
		}
	}
}

func TestDualMethodDualReading(t *testing.T) {
	// The synthesized lattice must compute f^D left-to-right.
	rng := rand.New(rand.NewSource(2))
	opts := DefaultOptions()
	opts.PostReduce = false
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(4)
		f := randTT(n, rng)
		if f.IsZero() || f.IsOne() {
			continue
		}
		res, err := DualMethod(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Lattice.DualFunction(n).Equal(f.Dual()) {
			t.Fatalf("dual reading wrong for %v\n%v", f, res.Lattice)
		}
	}
}

func TestFig5SizeFormula(t *testing.T) {
	// Size before post-reduction is exactly #products(f^D) × #products(f).
	rng := rand.New(rand.NewSource(3))
	opts := DefaultOptions()
	opts.PostReduce = false
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		if f.IsZero() || f.IsOne() {
			continue
		}
		res, err := DualMethod(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lattice.R != len(res.DualCover) || res.Lattice.C != len(res.FCover) {
			t.Fatalf("shape %d×%d vs covers %d,%d",
				res.Lattice.R, res.Lattice.C, len(res.DualCover), len(res.FCover))
		}
	}
}

func TestConstants(t *testing.T) {
	opts := DefaultOptions()
	for _, f := range []truthtab.TT{truthtab.Zero(3), truthtab.One(3)} {
		res, err := DualMethod(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Lattice.Implements(f) || res.Area() != 1 {
			t.Fatalf("constant lattice area %d", res.Area())
		}
	}
}

func TestSingleProductAndClause(t *testing.T) {
	opts := DefaultOptions()
	opts.PostReduce = false
	// Product: x1x2x3 → 3×1 column.
	f := tt(t, "x1x2x3")
	res, err := DualMethod(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lattice.R != 3 || res.Lattice.C != 1 {
		t.Fatalf("product lattice %d×%d", res.Lattice.R, res.Lattice.C)
	}
	// Clause: x1+x2+x3 → 1×3 row.
	g := tt(t, "x1 + x2 + x3")
	res, err = DualMethod(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lattice.R != 1 || res.Lattice.C != 3 {
		t.Fatalf("clause lattice %d×%d", res.Lattice.R, res.Lattice.C)
	}
}

func TestCellHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		for _, ch := range []CellChoice{FirstCommon, MostFrequent} {
			opts := DefaultOptions()
			opts.Cells = ch
			res, err := DualMethod(f, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Lattice.Implements(f) {
				t.Fatalf("heuristic %d wrong for %v", ch, f)
			}
		}
	}
}

func TestPostReduceNeverBreaks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := DefaultOptions()
	opts.PostReduce = true
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(4)
		f := randTT(n, rng)
		res, err := DualMethod(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Lattice.Implements(f) {
			t.Fatalf("post-reduced lattice wrong for %v", f)
		}
	}
}

func TestPostReduceShrinksOrKeeps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := DefaultOptions()
	base.PostReduce = false
	red := DefaultOptions()
	red.PostReduce = true
	smaller := 0
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		r0, err := DualMethod(f, base)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := DualMethod(f, red)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Area() > r0.Area() {
			t.Fatalf("post-reduce grew area %d→%d", r0.Area(), r1.Area())
		}
		if r1.Area() < r0.Area() {
			smaller++
		}
	}
	if smaller == 0 {
		t.Log("post-reduce never improved on this sample (acceptable but unusual)")
	}
}

func TestSOPBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opts := DefaultOptions()
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(4)
		f := randTT(n, rng)
		res, err := SOPBaseline(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Lattice.Implements(f) {
			t.Fatalf("baseline wrong for %v", f)
		}
	}
}

func TestISOPFallbackForLargerN(t *testing.T) {
	// Exact QM is limited to opts.QM.MaxVars; beyond it the dual
	// method must silently fall back to ISOP covers and stay correct.
	rng := rand.New(rand.NewSource(8))
	opts := DefaultOptions()
	opts.QM.MaxVars = 4
	opts.PostReduce = false
	f := randTT(6, rng)
	res, err := DualMethod(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactSOP {
		t.Fatal("expected ISOP fallback")
	}
	if !res.Lattice.Implements(f) {
		t.Fatal("fallback lattice wrong")
	}
}

func TestOptimalKnownSizes(t *testing.T) {
	o := DefaultOptimalOptions()
	// Single literal: 1×1.
	l, done := Optimal(tt(t, "x1"), o)
	if !done || l == nil || l.Area() != 1 {
		t.Fatalf("optimal(x1): area %v", l)
	}
	// x1x2: 2 cells minimum.
	l, done = Optimal(tt(t, "x1x2"), o)
	if !done || l == nil || l.Area() != 2 {
		t.Fatalf("optimal(x1x2) area = %d", l.Area())
	}
	// XNOR needs 4 cells (2×2).
	l, done = Optimal(tt(t, "x1x2 + x1'x2'"), o)
	if !done || l == nil || l.Area() != 4 {
		t.Fatalf("optimal(xnor) area = %d", l.Area())
	}
}

func TestOptimalNeverWorseThanDual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dOpts := DefaultOptions()
	oOpts := DefaultOptimalOptions()
	oOpts.MaxArea = 6
	for i := 0; i < 25; i++ {
		n := 2 + rng.Intn(2) // n in 2..3
		f := randTT(n, rng)
		dres, err := DualMethod(f, dOpts)
		if err != nil {
			t.Fatal(err)
		}
		l, done := Optimal(f, oOpts)
		if !done {
			continue // budget exhausted: no claim
		}
		if l == nil {
			// No lattice within MaxArea; the dual method must then
			// also exceed it.
			if dres.Area() <= oOpts.MaxArea {
				t.Fatalf("search missed a lattice of area %d for %v", dres.Area(), f)
			}
			continue
		}
		if !l.Implements(f) {
			t.Fatalf("optimal lattice wrong for %v", f)
		}
		if dres.Area() < l.Area() {
			t.Fatalf("dual method (%d) beat 'optimal' (%d) for %v", dres.Area(), l.Area(), f)
		}
	}
}

func TestQuickDualMethod(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(10))}
	opts := DefaultOptions()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		f := randTT(n, rng)
		res, err := DualMethod(f, opts)
		if err != nil {
			return false
		}
		return res.Lattice.Implements(f)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDualGridSharingViolation(t *testing.T) {
	// Covers that are not implicant covers of dual pairs can violate
	// the sharing lemma; the builder must reject them.
	fc := cube.Cover{{Pos: 0b01}} // x1
	dc := cube.Cover{{Pos: 0b10}} // x2 — shares nothing
	if _, err := BuildDualGrid(fc, dc, FirstCommon); err == nil {
		t.Fatal("expected sharing violation error")
	}
}

func TestFig4SynthesisComparison(t *testing.T) {
	// The paper's Fig. 4 function: dual-method size is P(fD)×P(f) =
	// rows×4; the hand lattice is 3×2 = 6. Verify our synthesis gives a
	// correct lattice and report sizes.
	f := tt(t, "x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6")
	res, err := DualMethod(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lattice.Implements(f) {
		t.Fatal("Fig.4 synthesis incorrect")
	}
	if len(res.FCover) != 4 {
		t.Fatalf("Fig.4 f-cover has %d products, want 4", len(res.FCover))
	}
	t.Logf("Fig.4 function: dual-method %d×%d (area %d) vs hand lattice 3×2 (area 6)",
		res.Lattice.R, res.Lattice.C, res.Area())
}
