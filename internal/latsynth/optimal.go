package latsynth

import (
	"context"

	"nanoxbar/internal/lattice"
	"nanoxbar/internal/truthtab"
)

// OptimalOptions bound the exhaustive optimal lattice search.
type OptimalOptions struct {
	MaxArea        int  // largest lattice area to try (default 9)
	NodeBudget     int  // backtracking node limit (default 2_000_000)
	AllowConstants bool // permit Const0/Const1 sites (default true)
}

// DefaultOptimalOptions are tuned so functions of up to four support
// variables finish interactively.
func DefaultOptimalOptions() OptimalOptions {
	return OptimalOptions{MaxArea: 9, NodeBudget: 2_000_000, AllowConstants: true}
}

// Optimal searches for a minimum-area lattice implementing f by
// iterative deepening on the area and backtracking over site
// assignments, pruning with monotone partial evaluations:
//
//   - if f(a)=1 yet no top-bottom path exists even with every unfilled
//     site conducting, no completion can work;
//   - if f(a)=0 yet a path exists using only definitely-conducting
//     sites, no completion can work.
//
// It is the repository's stand-in for the SAT-based optimal synthesis of
// reference [9]. The boolean result reports whether the search completed
// within budget; when true and the lattice is non-nil, the lattice has
// provably minimum area among shapes up to MaxArea.
func Optimal(f truthtab.TT, opts OptimalOptions) (*lattice.Lattice, bool) {
	return OptimalCtx(context.Background(), f, opts)
}

// OptimalCtx is Optimal with cancellation: the backtracking search
// checks the context every cancelCheckNodes expanded nodes, so a
// canceled caller abandons the search promptly (the boolean result is
// false, as for a budget exhaustion).
func OptimalCtx(ctx context.Context, f truthtab.TT, opts OptimalOptions) (*lattice.Lattice, bool) {
	if f.IsZero() {
		return lattice.Constant(false), true
	}
	if f.IsOne() {
		return lattice.Constant(true), true
	}
	n := f.NumVars()
	var cands []lattice.Site
	for v := 0; v < n; v++ {
		if f.DependsOn(v) {
			cands = append(cands, lattice.Lit(v, false), lattice.Lit(v, true))
		}
	}
	if opts.AllowConstants {
		cands = append(cands, lattice.Site{Kind: lattice.Const0}, lattice.Site{Kind: lattice.Const1})
	}
	budget := opts.NodeBudget
	ev := lattice.NewEvaluator() // shared scratch across all candidate shapes
	for area := 1; area <= opts.MaxArea; area++ {
		for r := 1; r <= area; r++ {
			if area%r != 0 {
				continue
			}
			c := area / r
			s := &optSearch{f: f, n: n, cands: cands, budget: &budget, ev: ev, ctx: ctx}
			if got := s.run(r, c); got != nil {
				return got, true
			}
			if budget <= 0 || s.canceled {
				return nil, false
			}
		}
	}
	return nil, true
}

// cancelCheckNodes is how many dfs nodes run between context checks: a
// power of two so the check is a mask, frequent enough that a canceled
// optimal search stops within microseconds.
const cancelCheckNodes = 4096

type optSearch struct {
	f      truthtab.TT
	n      int
	cands  []lattice.Site
	budget *int
	ev     *lattice.Evaluator
	l      *lattice.Lattice
	filled int
	// The search struct lives for exactly one OptimalCtx call and the
	// recursive dfs reads the context every cancelCheckNodes nodes;
	// threading ctx through every frame would buy nothing.
	//xbarvet:ignore ctxfirst: single-call search state, not a retained context
	ctx      context.Context
	nodes    int
	canceled bool
}

func (s *optSearch) run(r, c int) *lattice.Lattice {
	s.l = lattice.New(r, c)
	s.filled = 0
	if s.dfs() {
		return s.l
	}
	return nil
}

// dfs fills sites row-major; returns true when a full assignment
// implements f.
func (s *optSearch) dfs() bool {
	if *s.budget <= 0 || s.canceled {
		return false
	}
	*s.budget--
	s.nodes++
	if s.nodes&(cancelCheckNodes-1) == 0 && s.ctx.Err() != nil {
		s.canceled = true
		return false
	}
	if s.filled == s.l.R*s.l.C {
		return s.ev.Implements(s.l, s.f)
	}
	r, c := s.filled/s.l.C, s.filled%s.l.C
	for _, cand := range s.cands {
		s.l.Set(r, c, cand)
		s.filled++
		if s.feasible() && s.dfs() {
			return true
		}
		s.filled--
	}
	s.l.Set(r, c, lattice.Site{Kind: lattice.Const0})
	return false
}

// feasible applies the two monotone prunes to the current partial fill
// in one bit-parallel pass: with unfilled sites conducting the lattice
// must still cover f, with unfilled sites blocking it must stay within
// f (lattice.Evaluator.FeasiblePartial evaluates all 2^n assignments
// 64 at a time instead of one BFS per assignment).
func (s *optSearch) feasible() bool {
	return s.ev.FeasiblePartial(s.l, s.filled, s.f)
}
