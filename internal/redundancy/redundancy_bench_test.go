package redundancy

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/truthtab"
)

func benchLattice(b *testing.B) *lattice.Lattice {
	b.Helper()
	f := truthtab.FromFunc(3, func(a uint64) bool {
		return a&1+a>>1&1+a>>2&1 >= 2
	})
	res, err := latsynth.DualMethod(f, latsynth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return res.Lattice
}

// BenchmarkErrorRates is the CI-gated transient Monte Carlo number:
// TMR error estimation, 4096 trials packed 64 per word.
func BenchmarkErrorRates(b *testing.B) {
	l := benchLattice(b)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ErrorRates(l, 3, 3, 0.01, 4096, rng)
	}
}

// BenchmarkErrorRatesScalar is the retained one-trial-per-walk
// reference.
func BenchmarkErrorRatesScalar(b *testing.B) {
	l := benchLattice(b)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ErrorRatesScalar(l, 3, 3, 0.01, 4096, rng)
	}
}

func BenchmarkTransientEval64(b *testing.B) {
	l := benchLattice(b)
	rng := rand.New(rand.NewSource(2))
	mc := NewMC()
	var a [64]uint64
	for i := range a {
		a[i] = rng.Uint64() % 8
	}
	mc.Load(l, &a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.TransientEval64(0.01, rng)
	}
}

func BenchmarkLifetime(b *testing.B) {
	l := benchLattice(b)
	p := LifetimeParams{
		ChipN: 48, FaultsPerEp: 1.0, Epochs: 400,
		RetestEvery: 2, RemapBudget: 200, Seed: 11,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lifetime(l, 3, p)
	}
}
