// Package redundancy implements the runtime ("lifetime") fault
// tolerance of the paper's Section IV: transient-error masking through
// modular redundancy, and permanent-fault repair through periodic
// retest plus self-remapping — "fault tolerance to ensure the lifetime
// reliability (for errors during normal operation)".
//
// Transient faults flip individual switch states for a single
// evaluation; permanent faults accumulate over the chip's lifetime.
// Both are modeled on the lattice implementation: the abundance of
// programmable crossbar resources (the property the paper proposes to
// exploit) pays for R-fold modular redundancy with majority voting,
// and for spare area that the greedy self-mapping can migrate onto
// when a permanent fault lands inside the active region.
//
// The Monte Carlo machinery is bit-parallel: an MC packs 64 independent
// trials into each uint64 — per-site conduction masks over 64 random
// assignments, upset masks drawn with the defect package's sparse
// geometric-gap sampler, percolation through the shared word-wide
// engine of internal/lattice, and N-modular majority votes taken with
// bit-sliced counters — so ErrorRates costs one percolation per 64
// trials instead of one graph walk per trial.
package redundancy

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"nanoxbar/internal/bitlane"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/lattice"
)

// TransientEval evaluates the lattice at assignment a with each site's
// switch state flipped independently with probability p — the
// single-evaluation transient upset model. This is the retained scalar
// reference; the hot path is MC.TransientEval64.
func TransientEval(l *lattice.Lattice, a uint64, p float64, rng *rand.Rand) bool {
	flipped := make([]bool, l.R*l.C)
	any := false
	for i := range flipped {
		if rng.Float64() < p {
			flipped[i] = true
			any = true
		}
	}
	if !any {
		return l.Eval(a)
	}
	return evalFlipped(l, a, flipped)
}

// evalFlipped runs the top-bottom connectivity with chosen sites
// inverted.
func evalFlipped(l *lattice.Lattice, a uint64, flipped []bool) bool {
	on := make([]bool, l.R*l.C)
	for i := range on {
		on[i] = l.At(i/l.C, i%l.C).On(a) != flipped[i]
	}
	stack := make([]int, 0, l.C)
	seen := make([]bool, l.R*l.C)
	for c := 0; c < l.C; c++ {
		if on[c] {
			stack = append(stack, c)
			seen[c] = true
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r, c := cur/l.C, cur%l.C
		if r == l.R-1 {
			return true
		}
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= l.R || nc < 0 || nc >= l.C {
				continue
			}
			ni := nr*l.C + nc
			if on[ni] && !seen[ni] {
				seen[ni] = true
				stack = append(stack, ni)
			}
		}
	}
	return false
}

// MC is a reusable bit-parallel transient Monte Carlo evaluator: 64
// independent trials per uint64 lane. Load the lattice with a batch of
// 64 assignments, then evaluate fault-free (Eval64) or under
// independent per-site upsets (TransientEval64) — each call is one
// word-wide percolation. An MC is not safe for concurrent use; give
// each goroutine its own.
type MC struct {
	r, c    int
	ev      lattice.Evaluator
	base    []uint64 // per-site fault-free conduction masks
	on      []uint64 // per-site masks with upsets applied
	varBits [64]uint64
}

// NewMC returns an empty evaluator; scratch grows to the largest
// lattice seen.
func NewMC() *MC { return &MC{} }

// Load prepares per-site conduction masks of l over the 64 assignments
// in a: bit t of site (r,c)'s mask is l.At(r,c).On(a[t]).
func (mc *MC) Load(l *lattice.Lattice, a *[64]uint64) {
	mc.r, mc.c = l.R, l.C
	sites := l.R * l.C
	if cap(mc.base) < sites {
		mc.base = make([]uint64, sites)
		mc.on = make([]uint64, sites)
	}
	mc.base = mc.base[:sites]
	mc.on = mc.on[:sites]
	// One shot transposes assignment-major words into variable-major
	// lane words: varBits[v] bit t = a[t] bit v. The shared 64×64 block
	// transpose costs a few hundred word ops — cheaper than the 64-step
	// scalar gather it replaces even when only two variables occur.
	mc.varBits = *a
	bitlane.Transpose64(&mc.varBits)
	for r := 0; r < l.R; r++ {
		for c := 0; c < l.C; c++ {
			s := l.At(r, c)
			var m uint64
			switch s.Kind {
			case lattice.Const0:
			case lattice.Const1:
				m = ^uint64(0)
			default:
				m = mc.varBits[uint(s.Var)]
				if s.Neg {
					m = ^m
				}
			}
			mc.base[r*l.C+c] = m
		}
	}
}

// Eval64 returns the fault-free evaluation of the loaded assignments:
// bit t is l.Eval(a[t]).
func (mc *MC) Eval64() uint64 {
	return mc.ev.PercolateMasks(mc.r, mc.c, mc.base)
}

// TransientEval64 evaluates one batch of 64 independent transient-upset
// trials over the loaded assignments: every (site, trial) switch state
// flips independently with probability p — upset bits drawn by the
// sparse sampler over the sites×64 lane space — and bit t of the result
// is the trial-t output.
func (mc *MC) TransientEval64(p float64, rng *rand.Rand) uint64 {
	copy(mc.on, mc.base)
	on := mc.on
	defect.VisitBernoulli(rng, p, len(on)*64, func(i int) {
		on[i>>6] ^= 1 << uint(i&63)
	})
	return mc.ev.PercolateMasks(mc.r, mc.c, on)
}

// TransientEval64 is the one-shot convenience over MC: 64 trials of l
// at assignments a under upset probability p.
func TransientEval64(l *lattice.Lattice, a *[64]uint64, p float64, rng *rand.Rand) uint64 {
	mc := NewMC()
	mc.Load(l, a)
	return mc.TransientEval64(p, rng)
}

// NMR is an N-modular-redundant lattice: R copies whose outputs feed a
// majority voter (the voter itself is assumed reliable, the standard
// TMR assumption — see DESIGN.md).
type NMR struct {
	Copies []*lattice.Lattice
}

// NewNMR replicates the lattice n times (n odd).
func NewNMR(l *lattice.Lattice, n int) *NMR {
	if n < 1 || n%2 == 0 {
		panic(fmt.Sprintf("redundancy: modular redundancy needs odd n, got %d", n))
	}
	copies := make([]*lattice.Lattice, n)
	for i := range copies {
		copies[i] = l.Clone()
	}
	return &NMR{Copies: copies}
}

// Area returns the total crosspoint cost of the redundant system.
func (m *NMR) Area() int {
	a := 0
	for _, c := range m.Copies {
		a += c.Area()
	}
	return a
}

// EvalTransient evaluates all copies under independent transient upsets
// and returns the majority vote (scalar reference path).
func (m *NMR) EvalTransient(a uint64, p float64, rng *rand.Rand) bool {
	ones := 0
	for _, c := range m.Copies {
		if TransientEval(c, a, p, rng) {
			ones++
		}
	}
	return ones*2 > len(m.Copies)
}

// maxNMR bounds the bit-sliced vote counter (7 slices count to 127).
const maxNMR = 127

// majorityGE returns the per-lane indicator of cnt ≥ n/2+1 for a
// bit-sliced counter over n votes: ripple-carry addition of the
// constant 2^m - threshold, whose carry out of bit m-1 is exactly the
// comparison.
func majorityGE(cnt []uint64, n int) uint64 {
	t := n/2 + 1
	m := bits.Len(uint(n))
	k := uint64(1)<<uint(m) - uint64(t)
	var carry uint64
	for j := 0; j < m; j++ {
		var kj uint64
		if k>>uint(j)&1 == 1 {
			kj = ^uint64(0)
		}
		carry = cnt[j]&kj | cnt[j]&carry | kj&carry
	}
	return carry
}

// ErrorRates Monte-Carlo estimates the per-evaluation output error
// probability of the bare lattice and of its n-modular version under
// transient upset probability p, over random on/off assignments of an
// nVars-variable function. Trials run 64 to the word: each batch draws
// 64 random assignments, evaluates them fault-free for the reference,
// once upset for the bare estimate, and nmr more times for the
// majority-voted estimate, with the votes accumulated in bit-sliced
// counters.
func ErrorRates(l *lattice.Lattice, nVars int, nmr int, p float64, trials int, rng *rand.Rand) (bare, protected float64) {
	if nmr < 1 || nmr%2 == 0 {
		panic(fmt.Sprintf("redundancy: modular redundancy needs odd n, got %d", nmr))
	}
	if nmr > maxNMR {
		panic(fmt.Sprintf("redundancy: modular redundancy n %d exceeds %d", nmr, maxNMR))
	}
	if trials < 1 {
		return 0, 0
	}
	mc := NewMC()
	size := uint64(1) << uint(nVars)
	var a [64]uint64
	bareErr, protErr := 0, 0
	for done := 0; done < trials; done += 64 {
		lanes := trials - done
		laneMask := ^uint64(0)
		if lanes < 64 {
			laneMask = uint64(1)<<uint(lanes) - 1
		}
		for t := range a {
			a[t] = rng.Uint64() % size
		}
		mc.Load(l, &a)
		want := mc.Eval64()
		bareErr += bits.OnesCount64((mc.TransientEval64(p, rng) ^ want) & laneMask)
		var cnt [7]uint64
		for k := 0; k < nmr; k++ {
			carry := mc.TransientEval64(p, rng)
			for j := 0; carry != 0; j++ {
				nc := cnt[j] & carry
				cnt[j] ^= carry
				carry = nc
			}
		}
		protErr += bits.OnesCount64((majorityGE(cnt[:], nmr) ^ want) & laneMask)
	}
	return float64(bareErr) / float64(trials), float64(protErr) / float64(trials)
}

// ErrorRatesScalar is the retained scalar reference for ErrorRates: one
// graph walk per trial and per redundant copy. The property tests pin
// the bit-parallel path against it; it is not used on serving paths.
func ErrorRatesScalar(l *lattice.Lattice, nVars int, nmr int, p float64, trials int, rng *rand.Rand) (bare, protected float64) {
	m := NewNMR(l, nmr)
	bareErr, protErr := 0, 0
	size := uint64(1) << uint(nVars)
	for t := 0; t < trials; t++ {
		a := rng.Uint64() % size
		want := l.Eval(a)
		if TransientEval(l, a, p, rng) != want {
			bareErr++
		}
		if m.EvalTransient(a, p, rng) != want {
			protErr++
		}
	}
	return float64(bareErr) / float64(trials), float64(protErr) / float64(trials)
}

// LifetimeParams configure the permanent-fault aging simulation.
type LifetimeParams struct {
	ChipN       int     // physical array dimension
	FaultsPerEp float64 // expected new permanent stuck faults per epoch
	Epochs      int     // simulated lifetime length
	RetestEvery int     // self-test period (epochs); 0 disables repair
	RemapBudget int     // configurations the self-repair may try
	Seed        int64
}

// LifetimeResult reports an aging run.
type LifetimeResult struct {
	EpochsAlive int  // epochs the system produced correct outputs
	Remaps      int  // successful self-repairs
	DiedOfChip  bool // chip exhausted (no healthy region left)
}

// Lifetime ages a chip carrying the given logical lattice: each epoch
// sprinkles Poisson-distributed permanent stuck faults on random
// crosspoints; the lattice occupies a region chosen by the self-mapper.
// Without retest (RetestEvery 0) the system dies at the first fault
// that lands inside its active, function-relevant sites; with periodic
// retest the repair controller detects the hit and migrates the
// lattice to a healthy region, extending the lifetime until the chip
// runs out of clean area.
//
// The permanent-fault state is a row-major bitset and the lattice's
// function-relevant sites are per-row need masks, so a region health
// check is a handful of shifted word intersections instead of an R×C
// site walk — the region scan after every epoch, and the full-chip
// placement scan after every hit, both ride on it. The fault stream is
// drawn exactly as the scalar version drew it, so results are
// bit-for-bit reproducible across the representations for a given seed.
func Lifetime(l *lattice.Lattice, nVars int, p LifetimeParams) LifetimeResult {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.ChipN < l.R || p.ChipN < l.C {
		panic("redundancy: chip smaller than lattice")
	}
	// Permanent fault state: bit set = crosspoint dead (stuck). W words
	// per chip row.
	W := (p.ChipN + 63) >> 6
	dead := make([]uint64, p.ChipN*W)
	// Need masks: bit j of needs[i*wl+j>>6] set iff lattice site (i,j)
	// requires a live crosspoint (constant-0 sites need no programmable
	// switch).
	wl := (l.C + 63) >> 6
	needs := make([]uint64, l.R*wl)
	for i := 0; i < l.R; i++ {
		for j := 0; j < l.C; j++ {
			if l.At(i, j).Kind != lattice.Const0 {
				needs[i*wl+j>>6] |= 1 << uint(j&63)
			}
		}
	}
	regionHealthy := func(rowOff, colOff int) bool {
		s, base := uint(colOff&63), colOff>>6
		for i := 0; i < l.R; i++ {
			drow := dead[(rowOff+i)*W : (rowOff+i+1)*W]
			for k := 0; k < wl; k++ {
				win := drow[base+k] >> s
				if s != 0 && base+k+1 < W {
					win |= drow[base+k+1] << (64 - s)
				}
				if win&needs[i*wl+k] != 0 {
					return false
				}
			}
		}
		return true
	}
	// Current placement.
	rowOff, colOff := 0, 0
	place := func() bool {
		// Greedy scan for a region whose used sites are healthy.
		for ro := 0; ro+l.R <= p.ChipN; ro++ {
			for co := 0; co+l.C <= p.ChipN; co++ {
				if regionHealthy(ro, co) {
					rowOff, colOff = ro, co
					return true
				}
			}
		}
		return false
	}
	if !place() {
		return LifetimeResult{DiedOfChip: true}
	}
	var res LifetimeResult
	poisson := func(lambda float64) int {
		// Knuth's method; lambda is small in the sweeps used here.
		threshold := math.Exp(-lambda)
		L := 1.0
		for k := 0; ; k++ {
			L *= rng.Float64()
			if L < threshold {
				return k
			}
		}
	}
	for ep := 0; ep < p.Epochs; ep++ {
		for k := poisson(p.FaultsPerEp); k > 0; k-- {
			idx := rng.Intn(p.ChipN * p.ChipN)
			r, c := idx/p.ChipN, idx%p.ChipN
			dead[r*W+c>>6] |= 1 << uint(c&63)
		}
		if regionHealthy(rowOff, colOff) {
			res.EpochsAlive++
			continue
		}
		// Fault inside the active region. Without retest the system
		// silently fails from here on; with retest, repair at the next
		// test epoch.
		if p.RetestEvery == 0 {
			return res
		}
		if (ep+1)%p.RetestEvery != 0 {
			continue // fault latent until the next scheduled test
		}
		if !place() {
			res.DiedOfChip = true
			return res
		}
		res.Remaps++
		res.EpochsAlive++
	}
	return res
}
