// Package redundancy implements the runtime ("lifetime") fault
// tolerance of the paper's Section IV: transient-error masking through
// modular redundancy, and permanent-fault repair through periodic
// retest plus self-remapping — "fault tolerance to ensure the lifetime
// reliability (for errors during normal operation)".
//
// Transient faults flip individual switch states for a single
// evaluation; permanent faults accumulate over the chip's lifetime.
// Both are modeled on the lattice implementation: the abundance of
// programmable crossbar resources (the property the paper proposes to
// exploit) pays for R-fold modular redundancy with majority voting,
// and for spare area that the greedy self-mapping can migrate onto
// when a permanent fault lands inside the active region.
package redundancy

import (
	"fmt"
	"math"
	"math/rand"

	"nanoxbar/internal/lattice"
)

// TransientEval evaluates the lattice at assignment a with each site's
// switch state flipped independently with probability p — the
// single-evaluation transient upset model.
func TransientEval(l *lattice.Lattice, a uint64, p float64, rng *rand.Rand) bool {
	flipped := make([]bool, l.R*l.C)
	any := false
	for i := range flipped {
		if rng.Float64() < p {
			flipped[i] = true
			any = true
		}
	}
	if !any {
		return l.Eval(a)
	}
	return evalFlipped(l, a, flipped)
}

// evalFlipped runs the top-bottom connectivity with chosen sites
// inverted.
func evalFlipped(l *lattice.Lattice, a uint64, flipped []bool) bool {
	on := make([]bool, l.R*l.C)
	for i := range on {
		on[i] = l.At(i/l.C, i%l.C).On(a) != flipped[i]
	}
	stack := make([]int, 0, l.C)
	seen := make([]bool, l.R*l.C)
	for c := 0; c < l.C; c++ {
		if on[c] {
			stack = append(stack, c)
			seen[c] = true
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r, c := cur/l.C, cur%l.C
		if r == l.R-1 {
			return true
		}
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= l.R || nc < 0 || nc >= l.C {
				continue
			}
			ni := nr*l.C + nc
			if on[ni] && !seen[ni] {
				seen[ni] = true
				stack = append(stack, ni)
			}
		}
	}
	return false
}

// NMR is an N-modular-redundant lattice: R copies whose outputs feed a
// majority voter (the voter itself is assumed reliable, the standard
// TMR assumption — see DESIGN.md).
type NMR struct {
	Copies []*lattice.Lattice
}

// NewNMR replicates the lattice n times (n odd).
func NewNMR(l *lattice.Lattice, n int) *NMR {
	if n < 1 || n%2 == 0 {
		panic(fmt.Sprintf("redundancy: modular redundancy needs odd n, got %d", n))
	}
	copies := make([]*lattice.Lattice, n)
	for i := range copies {
		copies[i] = l.Clone()
	}
	return &NMR{Copies: copies}
}

// Area returns the total crosspoint cost of the redundant system.
func (m *NMR) Area() int {
	a := 0
	for _, c := range m.Copies {
		a += c.Area()
	}
	return a
}

// EvalTransient evaluates all copies under independent transient upsets
// and returns the majority vote.
func (m *NMR) EvalTransient(a uint64, p float64, rng *rand.Rand) bool {
	ones := 0
	for _, c := range m.Copies {
		if TransientEval(c, a, p, rng) {
			ones++
		}
	}
	return ones*2 > len(m.Copies)
}

// ErrorRates Monte-Carlo estimates the per-evaluation output error
// probability of the bare lattice and of its n-modular version under
// transient upset probability p, over random on/off assignments of an
// nVars-variable function.
func ErrorRates(l *lattice.Lattice, nVars int, nmr int, p float64, trials int, rng *rand.Rand) (bare, protected float64) {
	m := NewNMR(l, nmr)
	bareErr, protErr := 0, 0
	size := uint64(1) << uint(nVars)
	for t := 0; t < trials; t++ {
		a := rng.Uint64() % size
		want := l.Eval(a)
		if TransientEval(l, a, p, rng) != want {
			bareErr++
		}
		if m.EvalTransient(a, p, rng) != want {
			protErr++
		}
	}
	return float64(bareErr) / float64(trials), float64(protErr) / float64(trials)
}

// LifetimeParams configure the permanent-fault aging simulation.
type LifetimeParams struct {
	ChipN       int     // physical array dimension
	FaultsPerEp float64 // expected new permanent stuck faults per epoch
	Epochs      int     // simulated lifetime length
	RetestEvery int     // self-test period (epochs); 0 disables repair
	RemapBudget int     // configurations the self-repair may try
	Seed        int64
}

// LifetimeResult reports an aging run.
type LifetimeResult struct {
	EpochsAlive int  // epochs the system produced correct outputs
	Remaps      int  // successful self-repairs
	DiedOfChip  bool // chip exhausted (no healthy region left)
}

// Lifetime ages a chip carrying the given logical lattice: each epoch
// sprinkles Poisson-distributed permanent stuck faults on random
// crosspoints; the lattice occupies a region chosen by the self-mapper.
// Without retest (RetestEvery 0) the system dies at the first fault
// that lands inside its active, function-relevant sites; with periodic
// retest the repair controller detects the hit and migrates the
// lattice to a healthy region, extending the lifetime until the chip
// runs out of clean area.
func Lifetime(l *lattice.Lattice, nVars int, p LifetimeParams) LifetimeResult {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.ChipN < l.R || p.ChipN < l.C {
		panic("redundancy: chip smaller than lattice")
	}
	// Permanent fault state: true = crosspoint dead (stuck).
	dead := make([]bool, p.ChipN*p.ChipN)
	// Current placement.
	rowOff, colOff := 0, 0
	place := func() bool {
		// Greedy scan for a region whose used sites are healthy.
		for ro := 0; ro+l.R <= p.ChipN; ro++ {
			for co := 0; co+l.C <= p.ChipN; co++ {
				if regionHealthy(l, dead, p.ChipN, ro, co) {
					rowOff, colOff = ro, co
					return true
				}
			}
		}
		return false
	}
	if !place() {
		return LifetimeResult{DiedOfChip: true}
	}
	var res LifetimeResult
	poisson := func(lambda float64) int {
		// Knuth's method; lambda is small in the sweeps used here.
		threshold := math.Exp(-lambda)
		L := 1.0
		for k := 0; ; k++ {
			L *= rng.Float64()
			if L < threshold {
				return k
			}
		}
	}
	for ep := 0; ep < p.Epochs; ep++ {
		for k := poisson(p.FaultsPerEp); k > 0; k-- {
			dead[rng.Intn(len(dead))] = true
		}
		healthy := regionHealthy(l, dead, p.ChipN, rowOff, colOff)
		if healthy {
			res.EpochsAlive++
			continue
		}
		// Fault inside the active region. Without retest the system
		// silently fails from here on; with retest, repair at the next
		// test epoch.
		if p.RetestEvery == 0 {
			return res
		}
		if (ep+1)%p.RetestEvery != 0 {
			continue // fault latent until the next scheduled test
		}
		if !place() {
			res.DiedOfChip = true
			return res
		}
		res.Remaps++
		res.EpochsAlive++
	}
	return res
}

// regionHealthy reports whether every function-relevant site of the
// lattice maps onto a live crosspoint (constant-0 sites need no
// programmable switch).
func regionHealthy(l *lattice.Lattice, dead []bool, chipN, rowOff, colOff int) bool {
	for i := 0; i < l.R; i++ {
		for j := 0; j < l.C; j++ {
			if l.At(i, j).Kind == lattice.Const0 {
				continue
			}
			if dead[(rowOff+i)*chipN+colOff+j] {
				return false
			}
		}
	}
	return true
}
