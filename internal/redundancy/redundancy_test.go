package redundancy

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/truthtab"
)

func maj3Lattice(t *testing.T) *lattice.Lattice {
	t.Helper()
	f := truthtab.FromFunc(3, func(a uint64) bool {
		return a&1+a>>1&1+a>>2&1 >= 2
	})
	res, err := latsynth.DualMethod(f, latsynth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Lattice
}

func TestTransientEvalZeroUpsetMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := maj3Lattice(t)
	for a := uint64(0); a < 8; a++ {
		if TransientEval(l, a, 0, rng) != l.Eval(a) {
			t.Fatal("p=0 transient eval diverges")
		}
	}
}

func TestTransientEvalCertainUpset(t *testing.T) {
	// p=1 flips every site: a single always-on cell becomes always-off.
	rng := rand.New(rand.NewSource(2))
	l := lattice.Constant(true)
	if TransientEval(l, 0, 1, rng) {
		t.Fatal("total upset should break the constant-1 lattice")
	}
}

func TestNMRValidation(t *testing.T) {
	l := maj3Lattice(t)
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewNMR(l, 2) })
	mustPanic(func() { NewNMR(l, 0) })
	m := NewNMR(l, 3)
	if m.Area() != 3*l.Area() {
		t.Fatal("NMR area accounting")
	}
}

func TestTMRSuppressesTransients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := maj3Lattice(t)
	bare, prot := ErrorRates(l, 3, 3, 0.01, 4000, rng)
	if bare == 0 {
		t.Fatal("upsets never produced a bare error; model inert")
	}
	if prot >= bare {
		t.Fatalf("TMR error rate %v not below bare %v", prot, bare)
	}
	// For small ε, TMR error ≈ 3ε² ≪ ε: expect at least ~3× better.
	if prot*3 > bare {
		t.Fatalf("TMR suppression too weak: %v vs %v", prot, bare)
	}
}

func TestFiveMRBeatsTMRAtHighUpset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := maj3Lattice(t)
	_, tmr := ErrorRates(l, 3, 3, 0.05, 6000, rng)
	_, fmr := ErrorRates(l, 3, 5, 0.05, 6000, rng)
	if fmr > tmr*1.2 {
		t.Fatalf("5-MR (%v) should not be clearly worse than TMR (%v)", fmr, tmr)
	}
}

func TestLifetimeNoFaultsRunsForever(t *testing.T) {
	l := maj3Lattice(t)
	res := Lifetime(l, 3, LifetimeParams{
		ChipN: 16, FaultsPerEp: 0, Epochs: 50, RetestEvery: 5, RemapBudget: 100, Seed: 1,
	})
	if res.EpochsAlive != 50 || res.Remaps != 0 || res.DiedOfChip {
		t.Fatalf("clean chip lifetime: %+v", res)
	}
}

func TestLifetimeRepairExtendsLife(t *testing.T) {
	l := maj3Lattice(t)
	base := LifetimeParams{
		ChipN: 24, FaultsPerEp: 1.0, Epochs: 400, RemapBudget: 200,
	}
	var aliveNoRepair, aliveRepair int
	trials := 15
	for s := int64(0); s < int64(trials); s++ {
		p := base
		p.Seed = s
		p.RetestEvery = 0
		aliveNoRepair += Lifetime(l, 3, p).EpochsAlive
		p.RetestEvery = 2
		aliveRepair += Lifetime(l, 3, p).EpochsAlive
	}
	if aliveRepair <= aliveNoRepair {
		t.Fatalf("repair did not extend lifetime: %d vs %d", aliveRepair, aliveNoRepair)
	}
	// The paper's point: reconfigurability buys substantial lifetime.
	if float64(aliveRepair) < 2*float64(aliveNoRepair) {
		t.Fatalf("lifetime extension too small: %d vs %d", aliveRepair, aliveNoRepair)
	}
}

func TestLifetimeEventuallyDies(t *testing.T) {
	l := maj3Lattice(t)
	res := Lifetime(l, 3, LifetimeParams{
		ChipN: 8, FaultsPerEp: 6, Epochs: 3000, RetestEvery: 1, RemapBudget: 50, Seed: 7,
	})
	if !res.DiedOfChip && res.EpochsAlive == 3000 {
		t.Fatal("saturated chip should eventually exhaust healthy regions")
	}
}

func TestLifetimePanicsOnTinyChip(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := maj3Lattice(t)
	Lifetime(l, 3, LifetimeParams{ChipN: 1, Epochs: 1})
}
