package redundancy

import (
	"math"
	"math/rand"
	"testing"

	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/truthtab"
)

func maj3Lattice(t *testing.T) *lattice.Lattice {
	t.Helper()
	f := truthtab.FromFunc(3, func(a uint64) bool {
		return a&1+a>>1&1+a>>2&1 >= 2
	})
	res, err := latsynth.DualMethod(f, latsynth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Lattice
}

func TestTransientEvalZeroUpsetMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := maj3Lattice(t)
	for a := uint64(0); a < 8; a++ {
		if TransientEval(l, a, 0, rng) != l.Eval(a) {
			t.Fatal("p=0 transient eval diverges")
		}
	}
}

func TestTransientEvalCertainUpset(t *testing.T) {
	// p=1 flips every site: a single always-on cell becomes always-off.
	rng := rand.New(rand.NewSource(2))
	l := lattice.Constant(true)
	if TransientEval(l, 0, 1, rng) {
		t.Fatal("total upset should break the constant-1 lattice")
	}
}

func TestNMRValidation(t *testing.T) {
	l := maj3Lattice(t)
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewNMR(l, 2) })
	mustPanic(func() { NewNMR(l, 0) })
	m := NewNMR(l, 3)
	if m.Area() != 3*l.Area() {
		t.Fatal("NMR area accounting")
	}
}

func TestTMRSuppressesTransients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := maj3Lattice(t)
	bare, prot := ErrorRates(l, 3, 3, 0.01, 4000, rng)
	if bare == 0 {
		t.Fatal("upsets never produced a bare error; model inert")
	}
	if prot >= bare {
		t.Fatalf("TMR error rate %v not below bare %v", prot, bare)
	}
	// For small ε, TMR error ≈ 3ε² ≪ ε: expect at least ~3× better.
	if prot*3 > bare {
		t.Fatalf("TMR suppression too weak: %v vs %v", prot, bare)
	}
}

func TestFiveMRBeatsTMRAtHighUpset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := maj3Lattice(t)
	_, tmr := ErrorRates(l, 3, 3, 0.05, 6000, rng)
	_, fmr := ErrorRates(l, 3, 5, 0.05, 6000, rng)
	if fmr > tmr*1.2 {
		t.Fatalf("5-MR (%v) should not be clearly worse than TMR (%v)", fmr, tmr)
	}
}

func TestLifetimeNoFaultsRunsForever(t *testing.T) {
	l := maj3Lattice(t)
	res := Lifetime(l, 3, LifetimeParams{
		ChipN: 16, FaultsPerEp: 0, Epochs: 50, RetestEvery: 5, RemapBudget: 100, Seed: 1,
	})
	if res.EpochsAlive != 50 || res.Remaps != 0 || res.DiedOfChip {
		t.Fatalf("clean chip lifetime: %+v", res)
	}
}

func TestLifetimeRepairExtendsLife(t *testing.T) {
	l := maj3Lattice(t)
	base := LifetimeParams{
		ChipN: 24, FaultsPerEp: 1.0, Epochs: 400, RemapBudget: 200,
	}
	var aliveNoRepair, aliveRepair int
	trials := 15
	for s := int64(0); s < int64(trials); s++ {
		p := base
		p.Seed = s
		p.RetestEvery = 0
		aliveNoRepair += Lifetime(l, 3, p).EpochsAlive
		p.RetestEvery = 2
		aliveRepair += Lifetime(l, 3, p).EpochsAlive
	}
	if aliveRepair <= aliveNoRepair {
		t.Fatalf("repair did not extend lifetime: %d vs %d", aliveRepair, aliveNoRepair)
	}
	// The paper's point: reconfigurability buys substantial lifetime.
	if float64(aliveRepair) < 2*float64(aliveNoRepair) {
		t.Fatalf("lifetime extension too small: %d vs %d", aliveRepair, aliveNoRepair)
	}
}

func TestLifetimeEventuallyDies(t *testing.T) {
	l := maj3Lattice(t)
	res := Lifetime(l, 3, LifetimeParams{
		ChipN: 8, FaultsPerEp: 6, Epochs: 3000, RetestEvery: 1, RemapBudget: 50, Seed: 7,
	})
	if !res.DiedOfChip && res.EpochsAlive == 3000 {
		t.Fatal("saturated chip should eventually exhaust healthy regions")
	}
}

// TestTransientEval64ZeroUpsetMatchesEval pins the packed evaluator
// bit-for-bit against the scalar lattice evaluation when no upsets are
// drawn: every lane must equal l.Eval of its assignment.
func TestTransientEval64ZeroUpsetMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := maj3Lattice(t)
	var a [64]uint64
	for trial := 0; trial < 10; trial++ {
		for i := range a {
			a[i] = rng.Uint64() % 8
		}
		got := TransientEval64(l, &a, 0, rng)
		mc := NewMC()
		mc.Load(l, &a)
		if ev := mc.Eval64(); ev != got {
			t.Fatalf("Eval64 %#x != TransientEval64(p=0) %#x", ev, got)
		}
		for i := range a {
			if got>>uint(i)&1 == 1 != l.Eval(a[i]) {
				t.Fatalf("lane %d (a=%d) diverges from scalar Eval", i, a[i])
			}
		}
	}
}

// TestTransientEval64CertainUpset mirrors the scalar certain-upset
// test: p=1 flips every site of the constant-1 lattice in every lane.
func TestTransientEval64CertainUpset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := lattice.Constant(true)
	var a [64]uint64
	if got := TransientEval64(l, &a, 1, rng); got != 0 {
		t.Fatalf("total upset should break the constant-1 lattice in all lanes, got %#x", got)
	}
}

// TestTransientEval64MatchesScalarStatistically compares the upset
// error rate estimated by the packed path against the retained scalar
// path: the resampled RNG stream means individual trials differ, so the
// pin is statistical — estimates over many trials must agree within
// Monte Carlo tolerance.
func TestTransientEval64MatchesScalarStatistically(t *testing.T) {
	l := maj3Lattice(t)
	const p = 0.02
	const trials = 64 * 150
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(1007))

	mc := NewMC()
	var a [64]uint64
	packedErr := 0
	for done := 0; done < trials; done += 64 {
		for i := range a {
			a[i] = rngA.Uint64() % 8
		}
		mc.Load(l, &a)
		want := mc.Eval64()
		packedErr += popcount(mc.TransientEval64(p, rngA) ^ want)
	}
	scalarErr := 0
	for i := 0; i < trials; i++ {
		av := rngB.Uint64() % 8
		if TransientEval(l, av, p, rngB) != l.Eval(av) {
			scalarErr++
		}
	}
	pe, se := float64(packedErr)/trials, float64(scalarErr)/trials
	if diff := pe - se; diff > 0.02 || diff < -0.02 {
		t.Fatalf("packed error rate %.4f vs scalar %.4f diverge", pe, se)
	}
	if packedErr == 0 {
		t.Fatal("packed model inert: no upset errors at p=0.02")
	}
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// TestErrorRatesMatchesScalarReference pins the word-wide ErrorRates
// against the retained one-trial-at-a-time reference, statistically.
func TestErrorRatesMatchesScalarReference(t *testing.T) {
	l := maj3Lattice(t)
	const trials = 6000
	for _, nmr := range []int{3, 5} {
		bareF, protF := ErrorRates(l, 3, nmr, 0.03, trials, rand.New(rand.NewSource(8)))
		bareS, protS := ErrorRatesScalar(l, 3, nmr, 0.03, trials, rand.New(rand.NewSource(1008)))
		near := func(a, b float64) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d <= 0.02
		}
		if !near(bareF, bareS) || !near(protF, protS) {
			t.Fatalf("nmr=%d: fast (%.4f,%.4f) vs scalar (%.4f,%.4f) diverge",
				nmr, bareF, protF, bareS, protS)
		}
		if protF >= bareF {
			t.Fatalf("nmr=%d: protection (%.4f) not below bare (%.4f)", nmr, protF, bareF)
		}
	}
}

// TestMajorityGE exhausts the bit-sliced vote comparator against
// integer arithmetic for every vote count of small odd panels.
func TestMajorityGE(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7, 9, 15} {
		for votes := 0; votes <= n; votes++ {
			// Lane 0 carries `votes` votes; lane 1 carries n (all).
			var cnt [7]uint64
			add := func(mask uint64) {
				carry := mask
				for j := 0; carry != 0; j++ {
					nc := cnt[j] & carry
					cnt[j] ^= carry
					carry = nc
				}
			}
			for k := 0; k < votes; k++ {
				add(0b01)
			}
			for k := 0; k < n; k++ {
				add(0b10)
			}
			got := majorityGE(cnt[:], n)
			wantLane0 := votes >= n/2+1
			if (got&1 == 1) != wantLane0 {
				t.Fatalf("n=%d votes=%d: majorityGE lane0 %v, want %v", n, votes, got&1 == 1, wantLane0)
			}
			if got>>1&1 != 1 {
				t.Fatalf("n=%d: unanimous lane must pass majority", n)
			}
		}
	}
}

// lifetimeScalarReference is the pre-bitset Lifetime implementation
// (bool-array fault state, per-site region walk), kept in the tests to
// pin the mask-based rewrite bit-for-bit: both consume the identical
// RNG stream, so results must match exactly.
func lifetimeScalarReference(l *lattice.Lattice, p LifetimeParams) LifetimeResult {
	rng := rand.New(rand.NewSource(p.Seed))
	dead := make([]bool, p.ChipN*p.ChipN)
	regionHealthy := func(rowOff, colOff int) bool {
		for i := 0; i < l.R; i++ {
			for j := 0; j < l.C; j++ {
				if l.At(i, j).Kind == lattice.Const0 {
					continue
				}
				if dead[(rowOff+i)*p.ChipN+colOff+j] {
					return false
				}
			}
		}
		return true
	}
	rowOff, colOff := 0, 0
	place := func() bool {
		for ro := 0; ro+l.R <= p.ChipN; ro++ {
			for co := 0; co+l.C <= p.ChipN; co++ {
				if regionHealthy(ro, co) {
					rowOff, colOff = ro, co
					return true
				}
			}
		}
		return false
	}
	if !place() {
		return LifetimeResult{DiedOfChip: true}
	}
	var res LifetimeResult
	poisson := func(lambda float64) int {
		threshold := math.Exp(-lambda)
		L := 1.0
		for k := 0; ; k++ {
			L *= rng.Float64()
			if L < threshold {
				return k
			}
		}
	}
	for ep := 0; ep < p.Epochs; ep++ {
		for k := poisson(p.FaultsPerEp); k > 0; k-- {
			dead[rng.Intn(len(dead))] = true
		}
		if regionHealthy(rowOff, colOff) {
			res.EpochsAlive++
			continue
		}
		if p.RetestEvery == 0 {
			return res
		}
		if (ep+1)%p.RetestEvery != 0 {
			continue
		}
		if !place() {
			res.DiedOfChip = true
			return res
		}
		res.Remaps++
		res.EpochsAlive++
	}
	return res
}

// TestLifetimeMatchesScalarReference: the mask-based aging simulation
// must reproduce the scalar reference exactly for identical seeds.
func TestLifetimeMatchesScalarReference(t *testing.T) {
	l := maj3Lattice(t)
	for seed := int64(0); seed < 12; seed++ {
		for _, retest := range []int{0, 2, 5} {
			p := LifetimeParams{
				ChipN: 17, FaultsPerEp: 1.5, Epochs: 200,
				RetestEvery: retest, RemapBudget: 100, Seed: seed,
			}
			got := Lifetime(l, 3, p)
			want := lifetimeScalarReference(l, p)
			if got != want {
				t.Fatalf("seed %d retest %d: mask %+v vs scalar %+v", seed, retest, got, want)
			}
		}
	}
}

func TestLifetimePanicsOnTinyChip(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := maj3Lattice(t)
	Lifetime(l, 3, LifetimeParams{ChipN: 1, Epochs: 1})
}
