package httpapi

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/telemetry"
	"nanoxbar/pkg/nanoxbar"
)

// TestMetricsEndpoint drives traffic through the API and asserts that
// GET /metrics serves a parseable Prometheus exposition covering the
// request, stage, cache, fault, HTTP, and runtime families.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)

	// Two synthesize calls of the same function (miss then hit), one
	// per-chip map: populates request histograms, cache counters, and
	// the fault path.
	for i := 0; i < 2; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/synthesize", engine.Request{
			Kind: engine.KindSynthesize, Function: engine.FunctionSpec{Name: "maj3"},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("synthesize status %d", resp.StatusCode)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/map", engine.Request{
		Kind: engine.KindMap, Function: engine.FunctionSpec{Name: "maj3"},
		Seed: 7, Density: 0.03,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("content type %q, want %q", ct, metricsContentType)
	}
	exp, err := telemetry.ParseExposition(mresp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v", err)
	}

	// Request latency histograms by kind.
	for kind, wantCount := range map[string]uint64{"synthesize": 2, "map": 1} {
		h, ok := exp.Histogram("nanoxbar_request_duration_seconds", map[string]string{"kind": kind})
		if !ok {
			t.Fatalf("no request duration histogram for kind %q", kind)
		}
		if h.Count != wantCount {
			t.Errorf("request_duration{kind=%q} count = %d, want %d", kind, h.Count, wantCount)
		}
	}
	// Stage histograms: one cold synthesis, one cache hit (the second
	// synthesize; the map resolves through the same key), one die map.
	for stage, min := range map[string]uint64{"synthesize": 1, "cache_lookup": 1, "die_map": 1, "queue_wait": 3} {
		h, ok := exp.Histogram("nanoxbar_stage_duration_seconds", map[string]string{"stage": stage})
		if !ok {
			t.Fatalf("no stage histogram for %q", stage)
		}
		if h.Count < min {
			t.Errorf("stage_duration{stage=%q} count = %d, want >= %d", stage, h.Count, min)
		}
	}
	// Counter families mirrored from engine atomics and cache shards.
	sumFamily := func(name string) (total float64) {
		for _, s := range exp.Samples {
			if s.Name == name {
				total += s.Value
			}
		}
		return total
	}
	if v := sumFamily("nanoxbar_cache_hits_total"); v < 2 {
		t.Errorf("cache hits = %v, want >= 2", v)
	}
	if v := sumFamily("nanoxbar_cache_misses_total"); v < 1 {
		t.Errorf("cache misses = %v, want >= 1", v)
	}
	if v, ok := exp.Value("nanoxbar_dies_mapped_total", nil); !ok || v != 1 {
		t.Errorf("dies mapped = %v (found %v), want 1", v, ok)
	}
	if v, ok := exp.Value("nanoxbar_requests_total", map[string]string{"kind": "synthesize"}); !ok || v != 2 {
		t.Errorf("requests_total{synthesize} = %v (found %v), want 2", v, ok)
	}
	// HTTP-layer families: route-labeled latency and status counters.
	if _, ok := exp.Histogram("nanoxbar_http_request_duration_seconds", map[string]string{"path": "/v1/map"}); !ok {
		t.Error("no HTTP duration histogram for /v1/map")
	}
	if v, ok := exp.Value("nanoxbar_http_requests_total", map[string]string{"path": "/v1/synthesize", "status": "200"}); !ok || v != 2 {
		t.Errorf("http_requests_total{/v1/synthesize,200} = %v (found %v), want 2", v, ok)
	}
	// Runtime + server identity families.
	if v, ok := exp.Value("go_goroutines", nil); !ok || v < 1 {
		t.Errorf("go_goroutines = %v (found %v), want >= 1", v, ok)
	}
	if v, ok := exp.Value("nanoxbar_uptime_seconds", nil); !ok || v < 0 {
		t.Errorf("uptime = %v (found %v)", v, ok)
	}
	found := false
	for _, s := range exp.Samples {
		if s.Name == "nanoxbar_build_info" {
			found = true
			if s.Value != 1 || s.Labels["go_version"] == "" {
				t.Errorf("build_info sample %+v", s)
			}
		}
	}
	if !found {
		t.Error("no nanoxbar_build_info sample")
	}
}

// TestReadOnlyEndpointsRejectNonGET: /healthz, /stats, and /metrics
// answer non-GET methods with a structured 405.
func TestReadOnlyEndpointsRejectNonGET(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/healthz", "/stats", "/metrics"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var er nanoxbar.ErrorResponse
			err = json.NewDecoder(resp.Body).Decode(&er)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if err != nil || er.Error.Code != apierr.CodeBadSpec || er.Error.Message == "" {
				t.Errorf("%s %s: error body %+v (err %v)", method, path, er, err)
			}
		}
	}
}

// TestHealthzUptimeAndBuild: the health probe identifies the process.
func TestHealthzUptimeAndBuild(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.UptimeSeconds < 0 {
		t.Fatalf("uptime_seconds = %v, want >= 0", body.UptimeSeconds)
	}
	if body.Build.GoVersion == "" {
		t.Fatalf("build info missing go_version: %+v", body.Build)
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newLoggedServer builds a server whose access logs AND engine request
// logs land in the returned buffer, at debug level.
func newLoggedServer(t *testing.T) (*httptest.Server, *syncBuffer) {
	t.Helper()
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	eng := engine.New(engine.Config{Workers: 4, CacheSize: 64, Logger: logger})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(New(eng, WithLogger(logger)))
	t.Cleanup(ts.Close)
	return ts, buf
}

// TestRequestIDPropagation: a client-supplied X-Request-ID is echoed on
// the response and lands in both the HTTP access log and the engine's
// per-request log; absent (or invalid) IDs are replaced by minted ones.
func TestRequestIDPropagation(t *testing.T) {
	ts, logs := newLoggedServer(t)
	const id = "conformance-trace-0042"

	body := strings.NewReader(`{"kind":"synthesize","function":{"name":"maj3"}}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Fatalf("echoed request ID %q, want %q", got, id)
	}
	logged := logs.String()
	if n := strings.Count(logged, id); n < 2 {
		// Once in the access log, once in the engine's debug line.
		t.Fatalf("request ID appears %d times in logs, want >= 2:\n%s", n, logged)
	}

	// No header → a 16-hex-char ID is minted and echoed.
	resp2, err := http.Post(ts.URL+"/v1/synthesize", "application/json",
		strings.NewReader(`{"kind":"synthesize","function":{"name":"maj3"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	minted := resp2.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Fatalf("minted request ID %q, want 16 hex chars", minted)
	}

	// An invalid header (embedded space) is discarded, not echoed.
	req3, err := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req3.Header.Set("X-Request-ID", "has spaces in it")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); got == "has spaces in it" || got == "" {
		t.Fatalf("invalid ID handling: echoed %q, want a minted replacement", got)
	}
}

// TestV2StreamFramesCarryRequestID: every NDJSON frame of a /v2/jobs
// stream carries the request ID, including per-die and done events.
func TestV2StreamFramesCarryRequestID(t *testing.T) {
	ts := newTestServer(t)
	const id = "stream-trace-7"

	payload := `{"stream_dies":true,"requests":[{"kind":"yield","function":{"name":"maj3"},"chips":3,"seed":1,"density":0.02}]}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/jobs", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", id)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Fatalf("echoed request ID %q, want %q", got, id)
	}
	dec := json.NewDecoder(resp.Body)
	frames := 0
	for dec.More() {
		var ev nanoxbar.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		frames++
		if ev.RequestID != id {
			t.Fatalf("frame %d (%s) request_id %q, want %q", frames, ev.Type, ev.RequestID, id)
		}
	}
	if frames < 5 { // 3 die + 1 result + 1 done
		t.Fatalf("saw %d frames, want >= 5", frames)
	}
}

// TestMetricsRoundTripThroughParser: the full exposition re-renders
// consistently — every histogram family is internally cumulative and
// every TYPE line is unique (ParseExposition enforces both).
func TestMetricsRoundTripThroughParser(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2, CacheSize: 16})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)

	// A little traffic so histograms are non-empty.
	if res := eng.Do(engine.Request{Kind: engine.KindYield, Function: engine.FunctionSpec{Name: "maj3"}, Chips: 2, Seed: 3, Density: 0.02}); !res.Ok() {
		t.Fatalf("yield failed: %v", res.Error)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for name, typ := range exp.Types {
		if typ != "histogram" {
			continue
		}
		h, ok := exp.Histogram(name, histogramLabelsFor(exp, name))
		if !ok {
			continue
		}
		if h.Inf != h.Count {
			t.Errorf("%s: +Inf bucket %d != count %d", name, h.Inf, h.Count)
		}
	}
}

// histogramLabelsFor finds the non-le labels of the first bucket sample
// of family name, so the round-trip test can reconstruct one series per
// family without hardcoding the label schema.
func histogramLabelsFor(exp *telemetry.Exposition, name string) map[string]string {
	for _, s := range exp.Samples {
		if s.Name != name+"_bucket" {
			continue
		}
		labels := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		return labels
	}
	return nil
}
