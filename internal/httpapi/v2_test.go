package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/engine"
	"nanoxbar/pkg/nanoxbar"
)

// readEvents posts a jobs body and parses the full NDJSON stream.
func readEvents(t *testing.T, url string, body any) (int, []nanoxbar.Event) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v2/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		// Re-encode the error body as a single pseudo-event for callers
		// asserting on failures.
		var er nanoxbar.ErrorResponse
		if err := json.Unmarshal(buf.Bytes(), &er); err != nil {
			t.Fatalf("status %d with unparsable error body %q", resp.StatusCode, buf.String())
		}
		return resp.StatusCode, []nanoxbar.Event{{Type: nanoxbar.EventError, Error: &er.Error}}
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	var evs []nanoxbar.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev nanoxbar.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, evs
}

func TestV2JobsBatchStreaming(t *testing.T) {
	ts := newTestServer(t)
	var jobs nanoxbar.JobsRequest
	for i := 0; i < 20; i++ {
		jobs.Requests = append(jobs.Requests, engine.Request{
			Kind: engine.KindMap, Function: engine.FunctionSpec{Name: "maj3"},
			Density: 0.05, Seed: int64(i),
		})
	}
	code, evs := readEvents(t, ts.URL, jobs)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if last := evs[len(evs)-1]; last.Type != nanoxbar.EventDone ||
		last.Done == nil || last.Done.Results != 20 || last.Done.Errors != 0 {
		t.Fatalf("bad done event: %+v", evs[len(evs)-1])
	}
	seen := make(map[int]bool)
	for _, ev := range evs[:len(evs)-1] {
		if ev.Type != nanoxbar.EventResult || ev.Result == nil || ev.Result.Map == nil {
			t.Fatalf("unexpected event %+v", ev)
		}
		if seen[ev.Index] {
			t.Fatalf("request %d resolved twice", ev.Index)
		}
		seen[ev.Index] = true
	}
	if len(seen) != 20 {
		t.Fatalf("resolved %d of 20 requests", len(seen))
	}
}

func TestV2JobsDieStreaming(t *testing.T) {
	ts := newTestServer(t)
	const chips = 16
	code, evs := readEvents(t, ts.URL, nanoxbar.JobsRequest{
		StreamDies: true,
		Requests: []engine.Request{{
			Kind: engine.KindYield, Function: engine.FunctionSpec{Name: "maj3"},
			Density: 0.04, Chips: chips, Seed: 11,
		}},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	dies, results := 0, 0
	dieSeen := make(map[int]bool)
	for _, ev := range evs {
		switch ev.Type {
		case nanoxbar.EventDie:
			dies++
			if ev.DieMap == nil || ev.DieError != nil {
				t.Fatalf("bad die event %+v", ev)
			}
			dieSeen[ev.Die] = true
		case nanoxbar.EventResult:
			results++
			if ev.Result.Yield == nil || ev.Result.Yield.Chips != chips {
				t.Fatalf("bad yield result %+v", ev.Result)
			}
		}
	}
	if dies != chips || len(dieSeen) != chips {
		t.Fatalf("streamed %d die events (%d distinct), want %d", dies, len(dieSeen), chips)
	}
	if results != 1 {
		t.Fatalf("got %d result events, want 1", results)
	}
}

// TestV2JobsErrorEvents: request-level failures arrive as typed error
// events without disturbing the rest of the stream.
func TestV2JobsErrorEvents(t *testing.T) {
	ts := newTestServer(t)
	code, evs := readEvents(t, ts.URL, nanoxbar.JobsRequest{Requests: []engine.Request{
		{Kind: engine.KindSynthesize, Function: engine.FunctionSpec{Name: "maj3"}},
		{Kind: engine.KindSynthesize, Function: engine.FunctionSpec{Name: "not-a-benchmark"}},
	}})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var okEv, errEv *nanoxbar.Event
	for i := range evs {
		switch evs[i].Type {
		case nanoxbar.EventResult:
			okEv = &evs[i]
		case nanoxbar.EventError:
			errEv = &evs[i]
		}
	}
	if okEv == nil || okEv.Index != 0 || okEv.Result.Synthesis == nil {
		t.Fatalf("missing success event: %+v", okEv)
	}
	if errEv == nil || errEv.Index != 1 || errEv.Error == nil {
		t.Fatalf("missing error event: %+v", errEv)
	}
	if errEv.Error.Code != apierr.CodeBadSpec {
		t.Fatalf("error code %q, want %q", errEv.Error.Code, apierr.CodeBadSpec)
	}
	if evs[len(evs)-1].Done.Errors != 1 {
		t.Fatalf("done.errors = %d, want 1", evs[len(evs)-1].Done.Errors)
	}
}

// TestV2StatusMapping is the HTTP half of the taxonomy contract for
// body-level failures: each gets a structured error with the right
// status and code.
func TestV2StatusMapping(t *testing.T) {
	ts := newTestServer(t)

	post := func(body string) (int, nanoxbar.ErrorResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er nanoxbar.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("unparsable error body: %v", err)
		}
		return resp.StatusCode, er
	}

	if code, er := post(`{nope`); code != http.StatusBadRequest || er.Error.Code != apierr.CodeBadSpec {
		t.Fatalf("malformed body: %d %+v", code, er)
	}
	if code, er := post(`{"requests":[]}`); code != http.StatusBadRequest || er.Error.Code != apierr.CodeBadSpec {
		t.Fatalf("empty jobs: %d %+v", code, er)
	}
	// Oversized batch count.
	var big bytes.Buffer
	big.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatchSize; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteString(`{"kind":"synthesize","function":{"name":"maj3"}}`)
	}
	big.WriteString(`]}`)
	if code, er := post(big.String()); code != http.StatusRequestEntityTooLarge || er.Error.Code != apierr.CodeBadSpec {
		t.Fatalf("oversized batch: %d %+v", code, er)
	}
	// GET is rejected with a structured error too.
	resp, err := http.Get(ts.URL + "/v2/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
	var er nanoxbar.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error.Code != apierr.CodeBadSpec {
		t.Fatalf("GET error body: %+v (err %v)", er, err)
	}
}

// TestV1StructuredErrors: the v1 adapters now carry taxonomy codes in
// both transport-level and engine-level failures.
func TestV1StructuredErrors(t *testing.T) {
	ts := newTestServer(t)

	// Empty batch → structured 400 with a code.
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ae struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || ae.Code != apierr.CodeBadSpec || ae.Error == "" {
		t.Fatalf("empty batch: status %d body %+v", resp.StatusCode, ae)
	}

	// Oversized body → 413 with a code (MaxBytesReader satellite).
	huge := `{"requests":[{"kind":"map","function":{"expr":"` + strings.Repeat("x", maxBodyBytes+1024) + `"}}]}`
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || ae.Code != apierr.CodeBadSpec {
		t.Fatalf("oversized body: status %d body %+v", resp.StatusCode, ae)
	}

	// Engine-level failure keeps the v1 422 shape but now carries the
	// machine-readable code.
	resp, err = http.Post(ts.URL+"/v1/map", "application/json",
		strings.NewReader(`{"function":{"name":"no-such-benchmark"}}`))
	if err != nil {
		t.Fatal(err)
	}
	var res engine.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || res.Code != apierr.CodeBadSpec {
		t.Fatalf("engine failure: status %d result %+v", resp.StatusCode, res)
	}
}
