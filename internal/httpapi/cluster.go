package httpapi

import (
	"net/http"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/cluster"
)

// WithCluster joins the server to a cluster node: it mounts the
// node-to-node peer routes (cache fill and snapshot shipping) behind
// the same instrument/protect middleware as the public work routes,
// enables ownership-based forwarding of synthesis requests, and adds
// the cluster block to /healthz and /stats. The /healthz block doubles
// as the heartbeat payload peers probe — its leaving flag is how a
// draining node de-registers from sibling rings.
func WithCluster(n *cluster.Node) Option {
	return func(s *Server) {
		if n == nil {
			return
		}
		s.cluster = n
		peer := func(path string, h http.HandlerFunc) {
			s.mux.HandleFunc(path, s.instrument(path, s.protect(h)))
		}
		peer(cluster.FillPath, requireGET(s.handlePeerFill))
		peer(cluster.SnapshotPath, requireGET(s.handlePeerSnapshot))
	}
}

// handlePeerFill serves one cached implementation by cache key as a
// one-entry cachestore stream: 200 with the entry on a hit, 204 on a
// miss. The lookup is a non-blocking peek — a sibling's fill must
// never wait behind this node's in-flight synthesis of the same key,
// and must not distort local hit-rate accounting.
func (s *Server) handlePeerFill(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, apierr.CodeBadSpec, "missing key parameter")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	ok, err := cluster.WriteFill(s.eng, w, key)
	if err != nil {
		// The stream already started; the peer's cachestore.Read fails
		// structurally and treats it as a miss. Just log.
		s.logger.Warn("peer fill stream failed", "err", err)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
	}
}

// handlePeerSnapshot streams the whole cache as a versioned snapshot,
// the same format the disk persistence writes. A receiver whose
// transfer is cut mid-stream fails the snapshot's header-count
// validation and cold-starts clean rather than half-loaded.
func (s *Server) handlePeerSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := s.eng.WriteCacheSnapshot(w); err != nil {
		s.logger.Warn("peer snapshot stream failed", "err", err)
	}
}
