package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/engine"
)

// protectedServer builds a server with a tiny concurrency limit and a
// handle on the Server for drain control.
func protectedServer(t *testing.T, opts ...Option) (*httptest.Server, *Server) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, CacheSize: 16})
	t.Cleanup(eng.Close)
	srv := New(eng, opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// slowSweep is a yield body big enough to hold a worker for the whole
// test: 100k dies on oversized chips. Holders run it under a
// cancellable context so tests can release the slot deterministically.
const slowSweep = `{"kind":"yield","function":{"name":"maj5"},"chips":100000,"chip_size":48,"density":0.4,"seed":1}`

// startHolder posts slowSweep on its own context and returns a stop
// function that cancels it and waits for the connection to unwind.
func startHolder(t *testing.T, url string) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ctx.Err() == nil {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/map",
				strings.NewReader(slowSweep))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return // canceled mid-flight: the slot was held until now
			}
			shed := resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusServiceUnavailable
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if !shed {
				return
			}
			// A concurrent probe owned the slot (or queue) when this
			// request arrived and it was shed; try again until it sticks.
			time.Sleep(time.Millisecond)
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}

func TestShedReturns429WithRetryAfter(t *testing.T) {
	ts, _ := protectedServer(t, WithLimits(1, 0))
	stop := startHolder(t, ts.URL)
	defer stop()

	// Poll until the holder owns the slot and our probe sheds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("never observed a 429")
		}
		resp, body := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{
			"kind": "synthesize", "function": map[string]string{"tt": "2:0x6"},
		})
		if resp.StatusCode == http.StatusOK {
			time.Sleep(time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Fatal("429 without Retry-After")
		}
		var ae apiError
		if err := json.Unmarshal(body, &ae); err != nil || ae.Code != apierr.CodeOverloaded {
			t.Fatalf("shed body = %s (err %v), want code %q", body, err, apierr.CodeOverloaded)
		}
		break
	}
	stop()

	// With the holder gone the slot frees as soon as its handler
	// unwinds; poll until requests flow again.
	waitFor(t, "post-shed recovery", func() bool {
		resp, _ := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{
			"kind": "synthesize", "function": map[string]string{"tt": "2:0x6"},
		})
		return resp.StatusCode == http.StatusOK
	})
}

func TestDrainRejectsWorkKeepsOps(t *testing.T) {
	ts, srv := protectedServer(t)
	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	resp, body := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{
		"kind": "synthesize", "function": map[string]string{"tt": "2:0x6"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining work route status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After")
	}
	var ae apiError
	if err := json.Unmarshal(body, &ae); err != nil || ae.Code != apierr.CodeUnavailable {
		t.Fatalf("drain body = %s, want code %q", body, apierr.CodeUnavailable)
	}

	for _, path := range []string{"/healthz", "/stats", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s while draining: %v", path, err)
		}
		_, _ = io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while draining = %d, want 200", path, r.StatusCode)
		}
	}
}

func TestDeadlineHeaderBoundsRequest(t *testing.T) {
	ts, _ := protectedServer(t)
	// A 1ms budget cannot cover a 2000-die yield sweep: the request
	// must come back canceled (deadline exceeded server-side), not hang.
	body := `{"kind":"yield","function":{"name":"maj5"},"chips":2000,"seed":1}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/map", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var res engine.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("bad body %s: %v", raw, err)
	}
	if res.Ok() {
		t.Fatal("1ms-budget sweep succeeded — deadline header ignored")
	}
	if res.Code != apierr.CodeCanceled {
		t.Fatalf("code = %q, want %q (body %s)", res.Code, apierr.CodeCanceled, raw)
	}
}

func TestPanicRecoveryReturns500WithRequestID(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1, CacheSize: 8})
	t.Cleanup(eng.Close)
	srv := New(eng)
	// Mount a panicking route through the same middleware chain.
	srv.mux.HandleFunc("/boom", srv.instrument("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("500 without X-Request-ID")
	}
	var ae apiError
	if err := json.Unmarshal(body, &ae); err != nil || ae.Code != apierr.CodeInternal {
		t.Fatalf("panic body = %s, want internal code", body)
	}
	if !bytes.Contains(body, []byte(id)) {
		t.Fatalf("panic body %s does not reference request ID %s", body, id)
	}
	if srv.panics.Load() != 1 {
		t.Fatalf("panics counter = %d, want 1", srv.panics.Load())
	}
	// The server survives: a normal request still works.
	resp2, _ := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{
		"kind": "synthesize", "function": map[string]string{"tt": "2:0x6"},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d", resp2.StatusCode)
	}
}

// waitFor polls cond until true or the deadline, failing the test on
// timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOverloadedResultMapsTo429(t *testing.T) {
	// Engine-level shed (queue saturation) must surface as HTTP 429,
	// not the blanket 422.
	eng := engine.New(engine.Config{Workers: 1, CacheSize: 8, QueueDepth: 1, MaxQueueWait: 50 * time.Millisecond})
	t.Cleanup(eng.Close)
	srv := New(eng)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Saturate in sequence so neither holder sheds: the first sweep
	// must own the worker before the second fills the one queue slot.
	stop1 := startHolder(t, ts.URL)
	defer stop1()
	waitFor(t, "worker pickup", func() bool { return eng.Stats().Requests >= 1 })
	stop2 := startHolder(t, ts.URL)
	defer stop2()
	waitFor(t, "queue occupancy", func() bool { return eng.Stats().QueuedJobs == 1 })

	resp, body := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{
		"kind": "synthesize", "function": map[string]string{"tt": "2:0x6"},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	var res engine.Result
	if err := json.Unmarshal(body, &res); err != nil || res.Code != apierr.CodeOverloaded {
		t.Fatalf("shed result body = %s, want code %q", body, apierr.CodeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if eng.Stats().Shed != 1 {
		t.Fatalf("engine shed counter = %d, want 1", eng.Stats().Shed)
	}
}
