// Ingress observability: the per-route middleware (request-ID
// honor/mint/echo, latency and status metrics, access log), the
// GET /metrics exposition endpoint, and the build-info plumbing shared
// by /metrics and /healthz.
package httpapi

import (
	"bytes"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/telemetry"
)

// Metric family names registered by the HTTP layer. Named constants so
// the metricnames analyzer (cmd/xbarvet) can verify shape and repo-wide
// uniqueness at the declaration.
const (
	metricHTTPRequestDuration = "nanoxbar_http_request_duration_seconds"
	metricHTTPRequestsTotal   = "nanoxbar_http_requests_total"
	metricUptimeSeconds       = "nanoxbar_uptime_seconds"
	metricHTTPPanics          = "nanoxbar_http_panics_total"
	metricHTTPDrainRejects    = "nanoxbar_http_drain_rejects_total"
	metricHTTPDraining        = "nanoxbar_http_draining"
	metricBuildInfo           = "nanoxbar_build_info"
)

// statusWriter captures the response status for metrics and access logs
// while passing Flush through — the v2 NDJSON stream type-asserts its
// writer to http.Flusher, so swallowing it would buffer the stream.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps a route handler with the ingress middleware. Every
// request gets a request ID — the client's X-Request-ID when it passes
// telemetry.SanitizeRequestID, a freshly minted one otherwise — carried
// in the context (so engine logs and v2 stream frames can echo it) and
// on the response header. The path label is the mux pattern, not the
// raw URL, so metric cardinality stays bounded by the route table.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	dur := s.reg.Histogram(metricHTTPRequestDuration,
		"HTTP request latency by route, including streaming time.", "path", path)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := telemetry.SanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = telemetry.NewRequestID()
		}
		r = r.WithContext(telemetry.WithRequestID(r.Context(), id))
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		func() {
			// Panic recovery sits inside the middleware so the 500 is
			// still counted, logged, and tagged with the request ID by
			// the code below.
			defer s.recoverPanic(sw, r)
			h(sw, r)
		}()
		status := sw.code
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		dur.Observe(elapsed)
		s.reg.Counter(metricHTTPRequestsTotal,
			"HTTP requests by route and status.",
			"path", path, "status", strconv.Itoa(status)).Inc()
		if s.logger.Enabled(r.Context(), slog.LevelInfo) {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("path", path),
				slog.Int("status", status),
				slog.Duration("duration", elapsed),
				slog.String("request_id", id))
		}
	}
}

// requireGET rejects non-GET methods with a structured 405 in the v2
// error shape, shared by the three read-only endpoints.
func requireGET(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			v2Error(w, http.StatusMethodNotAllowed, apierr.CodeBadSpec, "use GET")
			return
		}
		h(w, r)
	}
}

// metricsContentType is the Prometheus text exposition content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics renders the engine registry (which the server's own
// HTTP families are registered on) as Prometheus text.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.reg.WriteText(&buf); err != nil {
		v2Error(w, http.StatusInternalServerError, apierr.CodeInternal, "rendering metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", metricsContentType)
	_, _ = w.Write(buf.Bytes())
}

// buildDetails is the build identity reported by /healthz and the
// nanoxbar_build_info metric.
type buildDetails struct {
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
}

// buildInfo reads the module version, VCS revision, and Go version from
// the binary once.
var buildInfo = sync.OnceValue(func() buildDetails {
	b := buildDetails{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		b.Version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			b.Revision = kv.Value
		}
	}
	return b
})

// registerServerMetrics adds the server-level families to the engine
// registry: process uptime and the constant build-info gauge (value 1,
// identity in the labels — the Prometheus idiom for build metadata).
func (s *Server) registerServerMetrics() {
	s.reg.GaugeFunc(metricUptimeSeconds, "Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.CounterFunc(metricHTTPPanics,
		"Handler panics converted into 500s by the recovery middleware.",
		func() float64 { return float64(s.panics.Load()) })
	s.reg.CounterFunc(metricHTTPDrainRejects,
		"Work requests rejected 503 while the server drained for shutdown.",
		func() float64 { return float64(s.drainRejects.Load()) })
	s.reg.GaugeFunc(metricHTTPDraining,
		"1 while the server is draining for shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	bi := buildInfo()
	s.reg.GaugeFunc(metricBuildInfo, "Build identity; value is always 1.",
		func() float64 { return 1 },
		"version", bi.Version, "go_version", bi.GoVersion, "revision", bi.Revision)
}
