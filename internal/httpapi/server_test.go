package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"nanoxbar/internal/engine"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 4, CacheSize: 64})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Status != "ok" {
		t.Fatalf("healthz body %+v (err %v)", body, err)
	}
	if body.Cache.Shards < 1 {
		t.Fatalf("healthz cache.shards = %d, want >= 1", body.Cache.Shards)
	}
	if body.Cache.Entries != 0 || body.Cache.LoadedFromSnapshot != 0 {
		t.Fatalf("cold server reports cache %+v, want empty", body.Cache)
	}
	if body.Fault.DiesMapped != 0 || body.Fault.DefectMapsGenerated != 0 || body.Fault.MeanMapAttempts != 0 {
		t.Fatalf("cold server reports fault work %+v, want zeros", body.Fault)
	}
}

// TestFaultCountersReported drives map and yield requests and checks
// the fault-path counters surface consistently on /healthz and /stats.
func TestFaultCountersReported(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/map", engine.Request{
		Kind:     engine.KindMap,
		Function: engine.FunctionSpec{Name: "maj3"},
		Density:  0.02,
		Seed:     1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d", resp.StatusCode)
	}
	const chips = 7
	resp, _ = postJSON(t, ts.URL+"/v1/map", engine.Request{
		Kind:     engine.KindYield,
		Function: engine.FunctionSpec{Name: "maj3"},
		Density:  0.02,
		Chips:    chips,
		Seed:     2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("yield status %d", resp.StatusCode)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health healthResponse
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if want := uint64(1 + chips); health.Fault.DiesMapped != want {
		t.Fatalf("healthz dies_mapped = %d, want %d", health.Fault.DiesMapped, want)
	}
	if health.Fault.DefectMapsGenerated != uint64(1+chips) {
		t.Fatalf("healthz defect_maps_generated = %d, want %d", health.Fault.DefectMapsGenerated, 1+chips)
	}
	if health.Fault.MeanMapAttempts < 1 {
		t.Fatalf("healthz mean_map_attempts = %v, want >= 1", health.Fault.MeanMapAttempts)
	}
	// Every yield die resolved either on the fast candidate schedule or
	// by scalar demotion; the KindMap die counts in neither bucket.
	if health.Fault.DiesCheckedFast+health.Fault.DiesDemotedScalar != chips {
		t.Fatalf("healthz dies_checked_fast %d + dies_demoted_scalar %d, want sum %d",
			health.Fault.DiesCheckedFast, health.Fault.DiesDemotedScalar, chips)
	}

	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats engine.Stats
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.DiesMapped != health.Fault.DiesMapped ||
		stats.DefectMapsGenerated != health.Fault.DefectMapsGenerated ||
		stats.MeanMapAttempts != health.Fault.MeanMapAttempts ||
		stats.DiesCheckedFast != health.Fault.DiesCheckedFast ||
		stats.DiesDemotedScalar != health.Fault.DiesDemotedScalar {
		t.Fatalf("stats fault counters %+v disagree with healthz %+v", stats, health.Fault)
	}
	if stats.MapAttempts < stats.DiesMapped {
		t.Fatalf("map_attempts_total %d below dies_mapped %d", stats.MapAttempts, stats.DiesMapped)
	}
}

// TestHealthzAndStatsReportPersistence covers the warm-restart
// observability: after seeding the engine from a snapshot, /healthz and
// /stats must both report the shard count, entry count, and how many
// entries came from the snapshot.
func TestHealthzAndStatsReportPersistence(t *testing.T) {
	// Warm engine: synthesize, snapshot, reload into a fresh engine.
	warm := engine.New(engine.Config{Workers: 2, CacheSize: 64, CacheShards: 8})
	if res := warm.Do(engine.Request{Kind: engine.KindSynthesize, Function: engine.FunctionSpec{Name: "maj3"}}); !res.Ok() {
		t.Fatalf("warmup: %s", res.Error)
	}
	var snap bytes.Buffer
	n, err := warm.WriteCacheSnapshot(&snap)
	warm.Close()
	if err != nil || n != 1 {
		t.Fatalf("snapshot: n=%d err=%v", n, err)
	}

	eng := engine.New(engine.Config{Workers: 2, CacheSize: 64, CacheShards: 8})
	t.Cleanup(eng.Close)
	if loaded, err := eng.ReadCacheSnapshot(&snap); err != nil || loaded != 1 {
		t.Fatalf("load: loaded=%d err=%v", loaded, err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthResponse
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := healthCache{Shards: 8, Entries: 1, LoadedFromSnapshot: 1}
	if health.Cache != want {
		t.Fatalf("healthz cache %+v, want %+v", health.Cache, want)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st engine.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheShards != 8 || st.CacheEntries != 1 || st.CacheLoaded != 1 {
		t.Fatalf("stats shards=%d entries=%d loaded=%d, want 8/1/1", st.CacheShards, st.CacheEntries, st.CacheLoaded)
	}
	// The loaded entry must serve as a hit, with no synthesis run.
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", engine.Request{
		Function: engine.FunctionSpec{Name: "maj3"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize status %d: %s", resp.StatusCode, body)
	}
	var res engine.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Synthesis == nil || !res.Synthesis.CacheHit {
		t.Fatalf("warm-loaded function was not a cache hit: %s", body)
	}
}

func TestSynthesizeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/synthesize", engine.Request{
		Function: engine.FunctionSpec{Expr: "x1x2 + x1'x2'"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res engine.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Synthesis == nil || res.Synthesis.Area == 0 {
		t.Fatalf("bad synthesis result: %s", body)
	}
	if res.Synthesis.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	// Same function again: must hit.
	_, body = postJSON(t, ts.URL+"/v1/synthesize", engine.Request{
		Function: engine.FunctionSpec{Expr: "x1x2 + x1'x2'"},
	})
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Synthesis.CacheHit {
		t.Fatal("second request missed the cache")
	}
	// Compare rides the same endpoint.
	resp, body = postJSON(t, ts.URL+"/v1/synthesize", engine.Request{
		Kind:     engine.KindCompare,
		Function: engine.FunctionSpec{Name: "maj3"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil || res.Compare == nil {
		t.Fatalf("bad compare result (err %v): %s", err, body)
	}
	// Map requests are rejected here.
	resp, _ = postJSON(t, ts.URL+"/v1/synthesize", engine.Request{
		Kind:     engine.KindMap,
		Function: engine.FunctionSpec{Name: "maj3"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("map on /v1/synthesize: status %d, want 400", resp.StatusCode)
	}
}

func TestMapEndpointValidation(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/map", engine.Request{
		Function: engine.FunctionSpec{Name: "maj3"},
		Density:  0.05,
		Seed:     1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res engine.Result
	if err := json.Unmarshal(body, &res); err != nil || res.Map == nil {
		t.Fatalf("bad map result (err %v): %s", err, body)
	}
	// Engine-level failures surface as 422 with the error in the body.
	resp, body = postJSON(t, ts.URL+"/v1/map", engine.Request{
		Function: engine.FunctionSpec{Name: "no-such-benchmark"},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil || res.Error == "" {
		t.Fatalf("missing error detail: %s", body)
	}
	// Malformed JSON is a 400.
	r, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", r.StatusCode)
	}
	// GET is not allowed.
	g, err := http.Get(ts.URL + "/v1/map")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/map: status %d, want 405", g.StatusCode)
	}
}

// TestBatchHundredChipsOneMiss is the acceptance scenario end to end
// over HTTP: 100 per-chip mapping requests for one function, exactly
// one underlying synthesis, deterministic results for fixed seeds.
func TestBatchHundredChipsOneMiss(t *testing.T) {
	ts := newTestServer(t)
	var batch struct {
		Requests []engine.Request `json:"requests"`
	}
	for i := 0; i < 100; i++ {
		batch.Requests = append(batch.Requests, engine.Request{
			Kind:     engine.KindMap,
			Function: engine.FunctionSpec{Name: "maj3"},
			Density:  0.05,
			Seed:     int64(i),
		})
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []engine.Result `json:"results"`
		Errors  int             `json:"errors"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 100 || out.Errors != 0 {
		t.Fatalf("got %d results, %d errors", len(out.Results), out.Errors)
	}
	for i, r := range out.Results {
		if r.Map == nil {
			t.Fatalf("result %d has no map payload: %+v", i, r)
		}
	}

	// /stats must report exactly one synthesis and 99 cache hits.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st engine.Stats
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SynthCalls != 1 || st.CacheMisses != 1 || st.CacheHits != 99 {
		t.Fatalf("stats synth=%d miss=%d hit=%d, want 1/1/99", st.SynthCalls, st.CacheMisses, st.CacheHits)
	}
	if st.Fingerprint == "" {
		t.Fatal("stats missing implementation fingerprint")
	}

	// Determinism: a fresh server given the same batch returns the
	// same results.
	ts2 := newTestServer(t)
	_, body2 := postJSON(t, ts2.URL+"/v1/batch", batch)
	var out2 struct {
		Results []engine.Result `json:"results"`
		Errors  int             `json:"errors"`
	}
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	for i := range out.Results {
		a, _ := json.Marshal(out.Results[i])
		b, _ := json.Marshal(out2.Results[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("result %d differs across servers:\n%s\n%s", i, a, b)
		}
	}
}

// TestPprofOptIn checks /debug/pprof/ is mounted only behind the
// -pprof flag, and that /stats carries the lattice evaluation counters.
func TestPprofOptIn(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag: status %d, want 404", resp.StatusCode)
	}

	eng := engine.New(engine.Config{Workers: 2, CacheSize: 8})
	t.Cleanup(eng.Close)
	tsp := httptest.NewServer(New(eng, WithPprof()))
	t.Cleanup(tsp.Close)
	resp, err = http.Get(tsp.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d, want 200", resp.StatusCode)
	}

	// A lattice synthesis must move the process-wide evaluation
	// counters surfaced in /stats. The counters are cumulative across
	// the whole test binary, so assert on the delta around this
	// request, not on being nonzero.
	getStats := func() engine.Stats {
		t.Helper()
		sr, err := http.Get(tsp.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer sr.Body.Close()
		var st engine.Stats
		if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	before := getStats()
	postJSON(t, tsp.URL+"/v1/synthesize", engine.Request{
		Function: engine.FunctionSpec{Expr: "x1x2 + x2x3 + x1x3"},
	})
	after := getStats()
	if after.Evaluation.FastImplements <= before.Evaluation.FastImplements ||
		after.Evaluation.WordBlocks <= before.Evaluation.WordBlocks {
		t.Fatalf("stats evaluation counters did not advance: before %+v after %+v",
			before.Evaluation, after.Evaluation)
	}
}

func TestBatchLimits(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/batch", map[string]any{"requests": []engine.Request{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	big := make([]engine.Request, maxBatchSize+1)
	for i := range big {
		big[i] = engine.Request{Kind: engine.KindSynthesize, Function: engine.FunctionSpec{Name: "maj3"}}
	}
	resp, _ = postJSON(t, ts.URL+"/v1/batch", map[string]any{"requests": big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", resp.StatusCode)
	}
}

func TestBatchMixedKindsAndDefaulting(t *testing.T) {
	ts := newTestServer(t)
	batch := map[string]any{"requests": []engine.Request{
		{Kind: engine.KindSynthesize, Function: engine.FunctionSpec{Name: "maj3"}},
		{Function: engine.FunctionSpec{Name: "maj3"}, Density: 0.05, Seed: 3}, // kind defaults to map
		{Kind: engine.KindYield, Function: engine.FunctionSpec{Name: "maj3"}, Density: 0.03, Chips: 10, ChipSize: 16, Seed: 4},
		{Kind: engine.KindMap, Function: engine.FunctionSpec{Name: "not-a-benchmark"}},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []engine.Result `json:"results"`
		Errors  int             `json:"errors"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 1 {
		t.Fatalf("errors=%d, want 1: %s", out.Errors, body)
	}
	if out.Results[0].Synthesis == nil || out.Results[1].Map == nil || out.Results[2].Yield == nil {
		t.Fatalf("payloads out of order: %s", body)
	}
	if out.Results[3].Error == "" {
		t.Fatal("failed request lost its error")
	}
	if fmt.Sprintf("%v", out.Results[2].Yield.Chips) != "10" {
		t.Fatalf("yield chips %v, want 10", out.Results[2].Yield.Chips)
	}
}
