// Server protection: the shed/drain/deadline middleware on the work
// routes and the panic-recovery wrapper on every route. Together they
// bound what one bad client or one load spike can do — requests beyond
// the concurrency limit get a typed 429 with a Retry-After instead of
// queueing unboundedly, a draining server answers 503 while in-flight
// streams complete, and a handler panic costs one 500 (traceable by
// request ID) instead of the process.
package httpapi

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/resilience"
	"nanoxbar/internal/telemetry"
)

// deadlineHeader carries the client's remaining per-request budget in
// milliseconds. The server turns it into a context deadline so queue
// wait, synthesis, and streaming all observe the same budget the client
// is actually willing to wait.
const deadlineHeader = "X-Deadline-Ms"

// maxDeadline caps client-supplied budgets so a forged header cannot
// pin server resources for hours.
const maxDeadline = 10 * time.Minute

// shedRetryAfter is the Retry-After hint on 429/503 responses: long
// enough to let a load spike pass, short enough that a well-behaved
// retrying client recovers quickly.
const shedRetryAfter = 1 * time.Second

// Metric family names of the optional concurrency limiter.
const (
	metricHTTPShed            = "nanoxbar_http_shed_total"
	metricHTTPAdmitted        = "nanoxbar_http_admitted_total"
	metricHTTPLimitedInflight = "nanoxbar_http_limited_inflight"
)

// WithLimits bounds concurrent work requests (the /v1/* and /v2/jobs
// routes; ops routes are exempt so health checks and metric scrapes
// survive overload). A request that cannot get a slot within maxWait is
// shed with a structured 429 and a Retry-After header. maxConcurrent
// <= 0 leaves the server unlimited.
func WithLimits(maxConcurrent int, maxWait time.Duration) Option {
	return func(s *Server) {
		if maxConcurrent > 0 {
			s.limiter = resilience.NewLimiter(maxConcurrent, maxWait)
			s.reg.CounterFunc(metricHTTPShed,
				"Work requests rejected 429 at the concurrency limit.",
				func() float64 { return float64(s.limiter.Shed()) })
			s.reg.CounterFunc(metricHTTPAdmitted,
				"Work requests admitted through the concurrency limit.",
				func() float64 { return float64(s.limiter.Admitted()) })
			s.reg.GaugeFunc(metricHTTPLimitedInflight,
				"Work requests currently holding a concurrency slot.",
				func() float64 { return float64(s.limiter.Inflight()) })
		}
	}
}

// Drain puts the server into drain mode: work routes answer 503
// (code "unavailable") while requests already in flight — including
// open NDJSON streams — run to completion. Ops routes keep serving so
// orchestrators can watch the drain. Safe to call more than once.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// setRetryAfter stamps the Retry-After hint (whole seconds, minimum 1 —
// the header has no sub-second form).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// protect wraps a work-route handler with drain rejection, deadline
// extraction, and load shedding, in that order: a draining server
// answers before burning a concurrency slot, and the deadline starts
// covering the shed wait itself.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.drainRejects.Add(1)
			setRetryAfter(w, shedRetryAfter)
			writeError(w, http.StatusServiceUnavailable, apierr.CodeUnavailable,
				"server is draining for shutdown")
			return
		}
		if ms := r.Header.Get(deadlineHeader); ms != "" {
			if n, err := strconv.ParseInt(ms, 10, 64); err == nil && n > 0 {
				d := time.Duration(n) * time.Millisecond
				if d > maxDeadline {
					d = maxDeadline
				}
				ctx, cancel := context.WithTimeout(r.Context(), d)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		if s.limiter != nil {
			if err := s.limiter.Acquire(r.Context()); err != nil {
				if errors.Is(err, resilience.ErrLimited) {
					setRetryAfter(w, shedRetryAfter)
					writeError(w, http.StatusTooManyRequests, apierr.CodeOverloaded,
						"concurrency limit %d saturated", s.limiter.Cap())
					return
				}
				// The client gave up while waiting for a slot; it will
				// never read the body, but 499-style accounting still
				// wants a status.
				writeError(w, http.StatusServiceUnavailable, apierr.CodeCanceled,
					"client canceled while awaiting admission")
				return
			}
			defer s.limiter.Release()
		}
		h(w, r)
	}
}

// recoverPanic converts a handler panic into a 500 (when the response
// has not started) plus a counted, request-ID-tagged error log — one
// bad request must not take down the daemon or go unnoticed.
func (s *Server) recoverPanic(w *statusWriter, r *http.Request) {
	rec := recover()
	if rec == nil {
		return
	}
	s.panics.Add(1)
	id := telemetry.RequestID(r.Context())
	s.logger.LogAttrs(r.Context(), slog.LevelError, "http handler panic",
		slog.String("path", r.URL.Path),
		slog.String("request_id", id),
		slog.Any("panic", rec),
		slog.String("stack", string(debug.Stack())))
	if w.code == 0 {
		writeError(w, http.StatusInternalServerError, apierr.CodeInternal,
			"internal error (request %s)", id)
	}
	// Headers already sent (e.g. mid-stream): nothing more to write;
	// the connection closes and the client sees a truncated stream.
}

// statusForResult maps a failed engine result onto its HTTP status:
// overload is 429 (retryable, with a hint), unavailability 503, and
// everything else the legacy 422. Success never reaches here.
func statusForResult(w http.ResponseWriter, res engine.Result) int {
	err := res.TypedErr()
	switch {
	case errors.Is(err, apierr.ErrOverloaded):
		setRetryAfter(w, shedRetryAfter)
		return http.StatusTooManyRequests
	case errors.Is(err, apierr.ErrUnavailable):
		setRetryAfter(w, shedRetryAfter)
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}
