package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/cluster"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/telemetry"
	"nanoxbar/pkg/nanoxbar"
)

// The v2 API: POST /v2/jobs takes a nanoxbar.JobsRequest and responds
// with an NDJSON event stream (nanoxbar.Event per line). Results are
// flushed the moment their worker finishes — completion order, not
// submission order — so a batch of per-chip mappings streams back
// while slower yield sweeps still run, and with stream_dies a yield
// request emits one event per die. The request context is threaded
// into the engine: a dropped connection cancels queued requests and
// stops in-flight sweeps at the next die boundary.

// v2Error writes a structured non-streaming error body
// ({"error":{code,message}}) for failures that precede the stream.
func v2Error(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, nanoxbar.ErrorResponse{Error: nanoxbar.WireError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// eventStream serializes NDJSON events onto one response, flushing
// after every line so clients observe results as they complete. Every
// frame is stamped with the stream's request ID, so a single frame
// fished out of a log pipeline still names the request it belongs to.
type eventStream struct {
	mu    sync.Mutex
	enc   *json.Encoder
	fl    http.Flusher
	reqID string
	err   bool // a write failed (client gone); drop further events
}

func newEventStream(w http.ResponseWriter, reqID string) *eventStream {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	fl, _ := w.(http.Flusher)
	return &eventStream{enc: enc, fl: fl, reqID: reqID}
}

func (es *eventStream) send(ev nanoxbar.Event) {
	ev.RequestID = es.reqID
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.err {
		return
	}
	if err := es.enc.Encode(ev); err != nil {
		es.err = true
		return
	}
	if es.fl != nil {
		es.fl.Flush()
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		v2Error(w, http.StatusMethodNotAllowed, apierr.CodeBadSpec, "use POST")
		return
	}
	var jobs nanoxbar.JobsRequest
	if err := decodeBody(w, r, &jobs); err != nil {
		status, code, msg := classifyDecodeError(err)
		v2Error(w, status, code, "%s", msg)
		return
	}
	if len(jobs.Requests) == 0 {
		v2Error(w, http.StatusBadRequest, apierr.CodeBadSpec, "empty jobs request")
		return
	}
	if len(jobs.Requests) > maxBatchSize {
		v2Error(w, http.StatusRequestEntityTooLarge, apierr.CodeBadSpec,
			"batch of %d exceeds limit %d", len(jobs.Requests), maxBatchSize)
		return
	}
	for i := range jobs.Requests {
		if jobs.Requests[i].Kind == "" {
			jobs.Requests[i].Kind = engine.KindMap
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	es := newEventStream(w, telemetry.RequestID(r.Context()))

	var errs int
	var errMu sync.Mutex
	emit := func(i int, res engine.Result) {
		if err := res.TypedErr(); err != nil {
			errMu.Lock()
			errs++
			errMu.Unlock()
			es.send(nanoxbar.Event{Type: nanoxbar.EventError, Index: i, Error: nanoxbar.WireErrorFrom(err)})
			return
		}
		es.send(nanoxbar.Event{Type: nanoxbar.EventResult, Index: i, Result: &res})
	}

	// Cluster routing: synthesis requests in the batch take the same
	// forward → failover → local-degrade ladder as /v1/synthesize, each
	// on its own goroutine so a slow forward never stalls the local
	// stream. Indices into the original batch are preserved, so frames
	// interleave transparently. Everything else — and every request on
	// an already-forwarded stream (loop marker) — runs locally.
	submit := jobs.Requests
	orig := make([]int, len(jobs.Requests))
	for i := range orig {
		orig[i] = i
	}
	var routeWG sync.WaitGroup
	if s.cluster != nil && r.Header.Get(cluster.ForwardedHeader) == "" {
		submit = submit[:0:0]
		orig = orig[:0]
		for i, req := range jobs.Requests {
			if req.Kind != engine.KindSynthesize {
				submit = append(submit, req)
				orig = append(orig, i)
				continue
			}
			routeWG.Add(1)
			go func(i int, req engine.Request) {
				defer routeWG.Done()
				res, handled := s.cluster.RouteSynthesize(r.Context(), req)
				if !handled {
					res = s.eng.DoCtx(r.Context(), req)
				}
				emit(i, res)
			}(i, req)
		}
	}

	var onDie func(req, die int, mr *engine.MapResult, err error)
	if jobs.StreamDies {
		onDie = func(req, die int, mr *engine.MapResult, err error) {
			es.send(nanoxbar.Event{
				Type: nanoxbar.EventDie, Index: orig[req], Die: die,
				DieMap: mr, DieError: nanoxbar.WireErrorFrom(err),
			})
		}
	}
	if len(submit) > 0 {
		s.eng.SubmitStream(r.Context(), submit, func(i int, res engine.Result) {
			emit(orig[i], res)
		}, onDie)
	}
	routeWG.Wait()

	es.send(nanoxbar.Event{Type: nanoxbar.EventDone, Done: &nanoxbar.JobsSummary{
		Results: len(jobs.Requests), Errors: errs,
	}})
}
