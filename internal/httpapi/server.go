// Package httpapi routes the nanoxbar serving engine over HTTP. It
// hosts both API generations:
//
//   - v1 (POST /v1/synthesize, /v1/map, /v1/batch): request/response
//     JSON, results buffered in submission order. The handlers are
//     thin adapters over the typed engine layer; errors carry the
//     machine-readable taxonomy code alongside the legacy message.
//   - v2 (POST /v2/jobs): one endpoint for every request kind,
//     responding with an NDJSON event stream flushed as workers
//     finish (v2.go).
//
// The package is importable (unlike cmd/xbarserverd's main) so tests
// and benchmarks can mount the exact production handler on httptest
// servers.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/cluster"
	"nanoxbar/internal/engine"
	"nanoxbar/internal/resilience"
	"nanoxbar/internal/telemetry"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is
// a batch of map requests with explicit defect maps, well under this.
const maxBodyBytes = 16 << 20

// maxBatchSize bounds one batch submission (v1 batch and v2 jobs).
// Larger workloads should be split client-side so a single request
// cannot monopolize the pool.
const maxBatchSize = 10000

// Server routes the HTTP API onto an engine.
type Server struct {
	eng    *engine.Engine
	mux    *http.ServeMux
	reg    *telemetry.Registry
	logger *slog.Logger
	start  time.Time

	// Protection state (protect.go): the optional work-route
	// concurrency limiter, the drain flag, and the panic/drain
	// counters.
	limiter      *resilience.Limiter
	draining     atomic.Bool
	panics       atomic.Uint64
	drainRejects atomic.Uint64

	// cluster, when joined via WithCluster, adds peer routes,
	// ownership-based forwarding, and the cluster health/stats blocks.
	cluster *cluster.Node
}

// New builds the production handler over eng. Every route is wrapped in
// the ingress middleware (request-ID propagation, per-route metrics,
// access log — see telemetry.go); the server's HTTP metric families
// join the engine's registry so GET /metrics is one scrape.
func New(eng *engine.Engine, opts ...Option) *Server {
	s := &Server{
		eng:    eng,
		mux:    http.NewServeMux(),
		reg:    eng.Registry(),
		logger: slog.New(slog.DiscardHandler),
		start:  time.Now(),
	}
	handle := func(path string, h http.HandlerFunc) {
		s.mux.HandleFunc(path, s.instrument(path, h))
	}
	// Work routes additionally pass the protection middleware
	// (protect.go): drain rejection, deadline-header extraction, and
	// the optional concurrency limit. Ops routes stay unprotected so
	// health checks and metric scrapes survive overload and drain.
	handleWork := func(path string, h http.HandlerFunc) {
		handle(path, s.protect(h))
	}
	handleWork("/v1/synthesize", s.handleSingle(engine.KindSynthesize, engine.KindCompare))
	handleWork("/v1/map", s.handleSingle(engine.KindMap, engine.KindYield))
	handleWork("/v1/batch", s.handleBatch)
	handleWork("/v2/jobs", s.handleJobs)
	handle("/healthz", requireGET(s.handleHealthz))
	handle("/stats", requireGET(s.handleStats))
	handle("/metrics", requireGET(s.handleMetrics))
	s.registerServerMetrics()
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Option configures the server.
type Option func(*Server)

// WithLogger routes the server's structured access logs (and anything
// the middleware logs) to l. Default: discard.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithPprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default: the profiler exposes internals and
// costs CPU while sampling, so it is opt-in via the -pprof flag.
func WithPprof() Option {
	return func(s *Server) {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// apiError is the v1 error body: the legacy message plus the taxonomy
// code so v1 clients can migrate to machine-readable handling without
// switching endpoints.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Code: code})
}

// decodeBody parses a JSON body into dst with a size bound. The error
// distinguishes oversized bodies so callers can return 413.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// classifyDecodeError maps a decodeBody failure onto (status, code,
// message): oversized bodies are 413, everything else a 400. Shared by
// the v1 and v2 error writers so the two API generations cannot drift
// in status mapping.
func classifyDecodeError(err error) (status int, code, msg string) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge, apierr.CodeBadSpec,
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)
	}
	return http.StatusBadRequest, apierr.CodeBadSpec, fmt.Sprintf("bad request body: %v", err)
}

// writeDecodeError renders a decodeBody failure in the v1 body shape.
func writeDecodeError(w http.ResponseWriter, err error) {
	status, code, msg := classifyDecodeError(err)
	writeError(w, status, code, "%s", msg)
}

// handleSingle serves one-request endpoints. The first kind is the
// default when the body leaves kind empty; a request naming any other
// kind than the allowed ones is rejected, keeping each endpoint's
// latency profile predictable.
func (s *Server) handleSingle(def engine.Kind, also ...engine.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, apierr.CodeBadSpec, "use POST")
			return
		}
		var req engine.Request
		if err := decodeBody(w, r, &req); err != nil {
			writeDecodeError(w, err)
			return
		}
		if req.Kind == "" {
			req.Kind = def
		}
		allowed := req.Kind == def
		for _, k := range also {
			allowed = allowed || req.Kind == k
		}
		if !allowed {
			writeError(w, http.StatusBadRequest, apierr.CodeBadSpec, "kind %q not served by %s", req.Kind, r.URL.Path)
			return
		}
		// Cluster routing: a synthesis request whose cache key another
		// node owns is forwarded there (once — the marker header stops
		// forwarding loops under transiently disagreeing ring views).
		// handled=false covers every local-serving outcome, including
		// the typed local-degrade terminal of the failover ladder.
		if s.cluster != nil && r.Header.Get(cluster.ForwardedHeader) == "" {
			if res, handled := s.cluster.RouteSynthesize(r.Context(), req); handled {
				if !res.Ok() {
					writeJSON(w, statusForResult(w, res), res)
					return
				}
				writeJSON(w, http.StatusOK, res)
				return
			}
		}
		res := s.eng.DoCtx(r.Context(), req)
		if !res.Ok() {
			writeJSON(w, statusForResult(w, res), res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// batchRequest is the /v1/batch body.
type batchRequest struct {
	Requests []engine.Request `json:"requests"`
}

// batchResponse mirrors the submission order.
type batchResponse struct {
	Results []engine.Result `json:"results"`
	Errors  int             `json:"errors"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, apierr.CodeBadSpec, "use POST")
		return
	}
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, apierr.CodeBadSpec, "empty batch")
		return
	}
	if len(req.Requests) > maxBatchSize {
		writeError(w, http.StatusRequestEntityTooLarge, apierr.CodeBadSpec,
			"batch of %d exceeds limit %d", len(req.Requests), maxBatchSize)
		return
	}
	// Default empty kinds to per-chip mapping, the expected bulk load.
	for i := range req.Requests {
		if req.Requests[i].Kind == "" {
			req.Requests[i].Kind = engine.KindMap
		}
	}
	results := s.eng.SubmitBatchCtx(r.Context(), req.Requests)
	resp := batchResponse{Results: results}
	for _, res := range results {
		if !res.Ok() {
			resp.Errors++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthCache is the cache summary embedded in /healthz: enough for an
// operator (or orchestrator probe) to tell a warm restart from a cold
// one without pulling the full /stats counter dump.
type healthCache struct {
	Shards             int    `json:"shards"`
	Entries            int    `json:"entries"`
	LoadedFromSnapshot uint64 `json:"loaded_from_snapshot"`
}

// healthFault summarizes the fault-tolerance path: how many dies the
// self-mapper has placed, how many defect maps were drawn, and the mean
// self-mapping attempts per die — the number that moves first when a
// density or chip-size change makes repair expensive.
type healthFault struct {
	DiesMapped          uint64  `json:"dies_mapped"`
	DefectMapsGenerated uint64  `json:"defect_maps_generated"`
	MeanMapAttempts     float64 `json:"mean_map_attempts"`
	// Lane-path split of yield-sweep dies: resolved by the word-parallel
	// candidate schedule vs demoted to the scalar mapper.
	DiesCheckedFast   uint64 `json:"dies_checked_fast"`
	DiesDemotedScalar uint64 `json:"dies_demoted_scalar"`
}

type healthResponse struct {
	Status string `json:"status"`
	// UptimeSeconds and Build identify the process: an orchestrator
	// probe can tell a restart (uptime reset) or a version skew from the
	// health check alone.
	UptimeSeconds float64      `json:"uptime_seconds"`
	Build         buildDetails `json:"build"`
	Cache         healthCache  `json:"cache"`
	Fault         healthFault  `json:"fault"`
	// Cluster is present when the node serves in cluster mode. It is
	// also the heartbeat payload: peers probe /healthz and read the
	// membership view and the leaving flag from here.
	Cluster *cluster.Status `json:"cluster,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	resp := healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         buildInfo(),
		Cache: healthCache{
			Shards:             st.CacheShards,
			Entries:            st.CacheEntries,
			LoadedFromSnapshot: st.CacheLoaded,
		},
		Fault: healthFault{
			DiesMapped:          st.DiesMapped,
			DefectMapsGenerated: st.DefectMapsGenerated,
			MeanMapAttempts:     st.MeanMapAttempts,
			DiesCheckedFast:     st.DiesCheckedFast,
			DiesDemotedScalar:   st.DiesDemotedScalar,
		},
	}
	if s.cluster != nil {
		cs := s.cluster.Status()
		resp.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterStats is /stats in cluster mode: the engine counters plus the
// node's ring/membership/forwarding block.
type clusterStats struct {
	engine.Stats
	Cluster cluster.Status `json:"cluster"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusOK, clusterStats{Stats: st, Cluster: s.cluster.Status()})
}
