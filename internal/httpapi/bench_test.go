package httpapi

import (
	"context"
	"net/http/httptest"
	"testing"

	"nanoxbar/internal/engine"
	"nanoxbar/pkg/nanoxbar"
	"nanoxbar/pkg/nanoxbar/client"
)

// The serving-path benchmarks: full client/server round trips through
// an in-process httptest server — JSON encode, HTTP, NDJSON stream
// decode — so the overhead of the v2 protocol itself shows up in
// BENCH_lattice.json next to the raw engine numbers.

func newBenchClient(b *testing.B) *client.Client {
	b.Helper()
	eng := engine.New(engine.Config{Workers: 4, CacheSize: 256})
	b.Cleanup(eng.Close)
	ts := httptest.NewServer(New(eng))
	b.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	b.Cleanup(func() { cl.Close() })
	return cl
}

// BenchmarkV2RoundTripSynthesizeHit is the hot serving case: the
// synthesis result is cached server-side, so the measured cost is the
// protocol round trip.
func BenchmarkV2RoundTripSynthesizeHit(b *testing.B) {
	cl := newBenchClient(b)
	ctx := context.Background()
	if _, err := cl.Synthesize(ctx, nanoxbar.Func("maj3")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Synthesize(ctx, nanoxbar.Func("maj3")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkV2RoundTripMap is the expected bulk load: one per-chip
// mapping per request against a cached synthesis.
func BenchmarkV2RoundTripMap(b *testing.B) {
	cl := newBenchClient(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cl.Map(ctx, nanoxbar.Func("maj3"),
			nanoxbar.WithDensity(0.05), nanoxbar.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkV2YieldStream measures NDJSON die streaming throughput: one
// 64-die sweep per iteration, every die flushed as its own event.
func BenchmarkV2YieldStream(b *testing.B) {
	cl := newBenchClient(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dies := 0
		_, err := cl.YieldSweep(ctx, nanoxbar.Func("maj3"),
			nanoxbar.WithChips(64), nanoxbar.WithDensity(0.04), nanoxbar.WithSeed(int64(i)),
			nanoxbar.OnDie(func(nanoxbar.Die) { dies++ }))
		if err != nil {
			b.Fatal(err)
		}
		if dies != 64 {
			b.Fatalf("streamed %d dies, want 64", dies)
		}
	}
}
