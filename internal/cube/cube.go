// Package cube implements cubes (product terms) and covers (sums of
// products) over up to 64 Boolean variables, together with the cube
// algebra needed by the two-level minimizers and the lattice synthesizer:
// containment, intersection, shared literals, absorption, and conversions
// to and from truth tables.
//
// A cube stores its literals in two bit masks: bit v of Pos means the
// positive literal x_v occurs, bit v of Neg means the complemented
// literal x_v' occurs. The empty cube (no literals) is the constant-1
// product; a cube with Pos∧Neg ≠ 0 is contradictory (constant 0).
package cube

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"nanoxbar/internal/truthtab"
)

// Cube is a product of literals over variables 0..63.
type Cube struct {
	Pos uint64 // variables appearing as positive literals
	Neg uint64 // variables appearing as complemented literals
}

// Universe is the empty product, the constant-1 cube.
var Universe = Cube{}

// FromLiteral returns the single-literal cube x_v or x_v'.
func FromLiteral(v int, neg bool) Cube {
	if neg {
		return Cube{Neg: 1 << uint(v)}
	}
	return Cube{Pos: 1 << uint(v)}
}

// IsContradiction reports whether the cube contains both x_v and x_v'.
func (c Cube) IsContradiction() bool { return c.Pos&c.Neg != 0 }

// IsUniverse reports whether the cube has no literals (constant 1).
func (c Cube) IsUniverse() bool { return c.Pos == 0 && c.Neg == 0 }

// NumLiterals returns the number of literals in the cube.
func (c Cube) NumLiterals() int {
	return bits.OnesCount64(c.Pos) + bits.OnesCount64(c.Neg)
}

// HasLiteral reports whether literal (v, neg) occurs in c.
func (c Cube) HasLiteral(v int, neg bool) bool {
	if neg {
		return c.Neg>>uint(v)&1 == 1
	}
	return c.Pos>>uint(v)&1 == 1
}

// Eval reports whether the cube is satisfied by assignment a (bit v of a
// is the value of variable v).
func (c Cube) Eval(a uint64) bool {
	return c.Pos&^a == 0 && c.Neg&a == 0
}

// Contains reports whether c ⊇ d as sets of minterms, i.e. every literal
// of c also occurs in d.
func (c Cube) Contains(d Cube) bool {
	return c.Pos&^d.Pos == 0 && c.Neg&^d.Neg == 0
}

// Intersect returns the conjunction of two cubes and whether it is
// non-contradictory.
func (c Cube) Intersect(d Cube) (Cube, bool) {
	r := Cube{Pos: c.Pos | d.Pos, Neg: c.Neg | d.Neg}
	return r, !r.IsContradiction()
}

// CommonLiterals returns the literals shared by c and d as a cube.
func (c Cube) CommonLiterals(d Cube) Cube {
	return Cube{Pos: c.Pos & d.Pos, Neg: c.Neg & d.Neg}
}

// Literals returns the cube's literals as (variable, negated) pairs in
// ascending variable order.
func (c Cube) Literals() []Lit {
	var ls []Lit
	for v := 0; v < 64; v++ {
		if c.Pos>>uint(v)&1 == 1 {
			ls = append(ls, Lit{Var: v})
		}
		if c.Neg>>uint(v)&1 == 1 {
			ls = append(ls, Lit{Var: v, Neg: true})
		}
	}
	return ls
}

// Lit is a single literal: variable index plus polarity.
type Lit struct {
	Var int
	Neg bool
}

// String renders a literal in paper notation: x1, x3', … (1-indexed).
func (l Lit) String() string {
	if l.Neg {
		return fmt.Sprintf("x%d'", l.Var+1)
	}
	return fmt.Sprintf("x%d", l.Var+1)
}

// ToTT expands the cube to an n-variable truth table.
func (c Cube) ToTT(n int) truthtab.TT {
	if c.IsContradiction() {
		return truthtab.Zero(n)
	}
	t := truthtab.One(n)
	for v := 0; v < n; v++ {
		if c.Pos>>uint(v)&1 == 1 {
			t = t.And(truthtab.Var(n, v))
		}
		if c.Neg>>uint(v)&1 == 1 {
			t = t.And(truthtab.Var(n, v).Not())
		}
	}
	return t
}

// String renders the cube in paper notation, e.g. "x1x2'" ("1" for the
// universe, "0" for a contradiction).
func (c Cube) String() string {
	if c.IsContradiction() {
		return "0"
	}
	if c.IsUniverse() {
		return "1"
	}
	var sb strings.Builder
	for _, l := range c.Literals() {
		sb.WriteString(l.String())
	}
	return sb.String()
}

// Cover is a sum of products.
type Cover []Cube

// Eval reports the cover's value at assignment a.
func (cv Cover) Eval(a uint64) bool {
	for _, c := range cv {
		if c.Eval(a) {
			return true
		}
	}
	return false
}

// ToTT expands the cover to an n-variable truth table.
func (cv Cover) ToTT(n int) truthtab.TT {
	t := truthtab.Zero(n)
	for _, c := range cv {
		t = t.Or(c.ToTT(n))
	}
	return t
}

// NumProducts returns the number of cubes (SOP products).
func (cv Cover) NumProducts() int { return len(cv) }

// TotalLiterals returns the summed literal count across all cubes.
func (cv Cover) TotalLiterals() int {
	n := 0
	for _, c := range cv {
		n += c.NumLiterals()
	}
	return n
}

// DistinctLiterals returns the number of distinct literals appearing in
// the cover, counting x_v and x_v' separately. This is the "number of
// literals in f" of the paper's Fig. 3 size formulas.
func (cv Cover) DistinctLiterals() int {
	var pos, neg uint64
	for _, c := range cv {
		pos |= c.Pos
		neg |= c.Neg
	}
	return bits.OnesCount64(pos) + bits.OnesCount64(neg)
}

// LiteralMasks returns the union of positive and negative literal masks.
func (cv Cover) LiteralMasks() (pos, neg uint64) {
	for _, c := range cv {
		pos |= c.Pos
		neg |= c.Neg
	}
	return pos, neg
}

// Support returns the variables used by the cover, ascending.
func (cv Cover) Support() []int {
	pos, neg := cv.LiteralMasks()
	m := pos | neg
	var s []int
	for v := 0; v < 64; v++ {
		if m>>uint(v)&1 == 1 {
			s = append(s, v)
		}
	}
	return s
}

// Clone returns an independent copy of the cover.
func (cv Cover) Clone() Cover {
	r := make(Cover, len(cv))
	copy(r, cv)
	return r
}

// Absorb removes cubes contained in another cube of the cover
// (single-cube containment) and exact duplicates. The result is sorted.
func (cv Cover) Absorb() Cover {
	var r Cover
	for i, c := range cv {
		if c.IsContradiction() {
			continue
		}
		absorbed := false
		for j, d := range cv {
			if i == j || d.IsContradiction() {
				continue
			}
			if d.Contains(c) && (!c.Contains(d) || j < i) {
				// c is strictly inside d, or duplicate kept once.
				absorbed = true
				break
			}
		}
		if !absorbed {
			r = append(r, c)
		}
	}
	r.Sort()
	return r
}

// Sort orders cubes deterministically (by Pos, then Neg).
func (cv Cover) Sort() {
	sort.Slice(cv, func(i, j int) bool {
		if cv[i].Pos != cv[j].Pos {
			return cv[i].Pos < cv[j].Pos
		}
		return cv[i].Neg < cv[j].Neg
	})
}

// String renders the cover in paper notation, e.g. "x1x2 + x1'x2'".
func (cv Cover) String() string {
	if len(cv) == 0 {
		return "0"
	}
	parts := make([]string, len(cv))
	for i, c := range cv {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}

// FromTTMinterms returns the canonical minterm cover of a truth table:
// one full cube per on-set minterm.
func FromTTMinterms(t truthtab.TT) Cover {
	n := t.NumVars()
	var cv Cover
	t.ForEachMinterm(func(a uint64) {
		var c Cube
		for v := 0; v < n; v++ {
			if a>>uint(v)&1 == 1 {
				c.Pos |= 1 << uint(v)
			} else {
				c.Neg |= 1 << uint(v)
			}
		}
		cv = append(cv, c)
	})
	return cv
}

// IsImplicant reports whether cube c implies the function f (every
// minterm of c is in f's on-set).
func IsImplicant(c Cube, f truthtab.TT) bool {
	return c.ToTT(f.NumVars()).Implies(f)
}

// IsCoverOf reports whether the cover equals f exactly.
func IsCoverOf(cv Cover, f truthtab.TT) bool {
	return cv.ToTT(f.NumVars()).Equal(f)
}
