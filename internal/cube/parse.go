package cube

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// ParseSOP parses a sum-of-products expression in paper notation into a
// cover. Products are separated by '+'; literals are x<k> (1-indexed)
// optionally followed by ' for complementation; '*' and whitespace
// between literals are ignored. The strings "0" and "1" denote the empty
// cover and the universe cube. Examples:
//
//	x1x2 + x1'x2'
//	x1 * x2' + x3
func ParseSOP(s string) (Cover, int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, 0, fmt.Errorf("cube: empty expression")
	}
	if s == "0" {
		return Cover{}, 0, nil
	}
	if s == "1" {
		return Cover{Universe}, 0, nil
	}
	maxVar := 0
	var cv Cover
	for _, prod := range strings.Split(s, "+") {
		prod = strings.TrimSpace(prod)
		if prod == "" {
			return nil, 0, fmt.Errorf("cube: empty product in %q", s)
		}
		c, hi, err := parseProduct(prod)
		if err != nil {
			return nil, 0, err
		}
		if hi > maxVar {
			maxVar = hi
		}
		cv = append(cv, c)
	}
	return cv, maxVar, nil
}

func parseProduct(s string) (Cube, int, error) {
	var c Cube
	maxVar := 0
	i := 0
	for i < len(s) {
		switch {
		case s[i] == ' ' || s[i] == '\t' || s[i] == '*' || s[i] == '.':
			i++
		case s[i] == 'x' || s[i] == 'X':
			i++
			j := i
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j == i {
				return Cube{}, 0, fmt.Errorf("cube: missing variable index at %q", s[i:])
			}
			idx, err := strconv.Atoi(s[i:j])
			if err != nil || idx < 1 || idx > 64 {
				return Cube{}, 0, fmt.Errorf("cube: bad variable index %q", s[i:j])
			}
			i = j
			neg := false
			if i < len(s) && s[i] == '\'' {
				neg = true
				i++
			}
			v := idx - 1 // 1-indexed notation, 0-indexed storage
			if c.HasLiteral(v, !neg) {
				return Cube{}, 0, fmt.Errorf("cube: contradictory literal x%d in %q", idx, s)
			}
			if neg {
				c.Neg |= 1 << uint(v)
			} else {
				c.Pos |= 1 << uint(v)
			}
			if idx > maxVar {
				maxVar = idx
			}
		default:
			return Cube{}, 0, fmt.Errorf("cube: unexpected character %q in product %q", s[i], s)
		}
	}
	if c.IsUniverse() {
		return Cube{}, 0, fmt.Errorf("cube: product %q has no literals", s)
	}
	return c, maxVar, nil
}

// PLA is a parsed multi-output PLA description (espresso-style).
type PLA struct {
	Inputs  int
	Outputs int
	Names   []string // optional output names (.ob), may be nil
	Covers  []Cover  // one ON-set cover per output
}

// ParsePLA parses an espresso-format PLA: ".i", ".o", optional ".p",
// ".ilb"/".ob" (names), cube rows of input part over {0,1,-} and output
// part over {0,1,-,~} (only '1' contributes to the ON-set; type f/fr
// files therefore parse correctly for ON-set purposes), terminated by
// optional ".e".
func ParsePLA(text string) (*PLA, error) {
	p := &PLA{Inputs: -1, Outputs: -1}
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if strings.HasPrefix(s, ".") {
			fields := strings.Fields(s)
			switch fields[0] {
			case ".i":
				if len(fields) != 2 {
					return nil, fmt.Errorf("pla line %d: malformed .i", line)
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 1 || n > 64 {
					return nil, fmt.Errorf("pla line %d: bad input count", line)
				}
				p.Inputs = n
			case ".o":
				if len(fields) != 2 {
					return nil, fmt.Errorf("pla line %d: malformed .o", line)
				}
				m, err := strconv.Atoi(fields[1])
				if err != nil || m < 1 {
					return nil, fmt.Errorf("pla line %d: bad output count", line)
				}
				p.Outputs = m
				p.Covers = make([]Cover, m)
			case ".ob":
				p.Names = fields[1:]
			case ".p", ".ilb", ".type", ".e", ".end":
				// informational / terminator
			default:
				return nil, fmt.Errorf("pla line %d: unknown directive %s", line, fields[0])
			}
			continue
		}
		if p.Inputs < 0 || p.Outputs < 0 {
			return nil, fmt.Errorf("pla line %d: cube before .i/.o", line)
		}
		fields := strings.Fields(s)
		var in, out string
		switch len(fields) {
		case 2:
			in, out = fields[0], fields[1]
		case 1:
			if len(fields[0]) != p.Inputs+p.Outputs {
				return nil, fmt.Errorf("pla line %d: cube width %d != %d", line, len(fields[0]), p.Inputs+p.Outputs)
			}
			in, out = fields[0][:p.Inputs], fields[0][p.Inputs:]
		default:
			return nil, fmt.Errorf("pla line %d: malformed cube row", line)
		}
		if len(in) != p.Inputs || len(out) != p.Outputs {
			return nil, fmt.Errorf("pla line %d: cube part widths (%d,%d) want (%d,%d)", line, len(in), len(out), p.Inputs, p.Outputs)
		}
		var c Cube
		for v := 0; v < p.Inputs; v++ {
			switch in[v] {
			case '1':
				c.Pos |= 1 << uint(v)
			case '0':
				c.Neg |= 1 << uint(v)
			case '-', '2':
				// don't care: variable absent
			default:
				return nil, fmt.Errorf("pla line %d: bad input char %q", line, in[v])
			}
		}
		for o := 0; o < p.Outputs; o++ {
			switch out[o] {
			case '1', '4':
				p.Covers[o] = append(p.Covers[o], c)
			case '0', '-', '~', '2', '3':
				// off-set / don't-care rows ignored for ON-set covers
			default:
				return nil, fmt.Errorf("pla line %d: bad output char %q", line, out[o])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Inputs < 0 || p.Outputs < 0 {
		return nil, fmt.Errorf("pla: missing .i or .o")
	}
	return p, nil
}

// FormatPLA renders a single-output cover as an espresso-format PLA.
func FormatPLA(cv Cover, inputs int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".i %d\n.o 1\n.p %d\n", inputs, len(cv))
	for _, c := range cv {
		for v := 0; v < inputs; v++ {
			switch {
			case c.Pos>>uint(v)&1 == 1:
				sb.WriteByte('1')
			case c.Neg>>uint(v)&1 == 1:
				sb.WriteByte('0')
			default:
				sb.WriteByte('-')
			}
		}
		sb.WriteString(" 1\n")
	}
	sb.WriteString(".e\n")
	return sb.String()
}
