package cube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nanoxbar/internal/truthtab"
)

func TestCubeBasics(t *testing.T) {
	c := Cube{Pos: 0b001, Neg: 0b010} // x1·x2'
	if c.IsContradiction() || c.IsUniverse() {
		t.Fatal("classification wrong")
	}
	if c.NumLiterals() != 2 {
		t.Fatalf("literals = %d", c.NumLiterals())
	}
	if c.String() != "x1x2'" {
		t.Fatalf("String = %q", c.String())
	}
	if !c.Eval(0b001) || c.Eval(0b011) || c.Eval(0b000) {
		t.Fatal("Eval wrong")
	}
	bad := Cube{Pos: 1, Neg: 1}
	if !bad.IsContradiction() || bad.String() != "0" {
		t.Fatal("contradiction handling")
	}
	if Universe.String() != "1" || !Universe.Eval(12345) {
		t.Fatal("universe handling")
	}
}

func TestFromLiteral(t *testing.T) {
	if FromLiteral(2, false).String() != "x3" {
		t.Fatal("positive literal")
	}
	if FromLiteral(0, true).String() != "x1'" {
		t.Fatal("negative literal")
	}
}

func TestContainment(t *testing.T) {
	x1 := Cube{Pos: 0b01}
	x1x2 := Cube{Pos: 0b11}
	if !x1.Contains(x1x2) {
		t.Fatal("x1 should contain x1x2")
	}
	if x1x2.Contains(x1) {
		t.Fatal("x1x2 should not contain x1")
	}
	if !Universe.Contains(x1) {
		t.Fatal("universe contains everything")
	}
	// Containment agrees with truth tables.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 4
		c := randCube(n, rng)
		d := randCube(n, rng)
		if c.IsContradiction() || d.IsContradiction() {
			continue
		}
		want := d.ToTT(n).Implies(c.ToTT(n))
		if c.Contains(d) != want {
			t.Fatalf("Contains(%v,%v) = %v want %v", c, d, c.Contains(d), want)
		}
	}
}

func randCube(n int, rng *rand.Rand) Cube {
	var c Cube
	for v := 0; v < n; v++ {
		switch rng.Intn(3) {
		case 0:
			c.Pos |= 1 << uint(v)
		case 1:
			c.Neg |= 1 << uint(v)
		}
	}
	return c
}

func TestIntersect(t *testing.T) {
	a := Cube{Pos: 0b01} // x1
	b := Cube{Neg: 0b01} // x1'
	if _, ok := a.Intersect(b); ok {
		t.Fatal("x1 ∧ x1' should be contradictory")
	}
	c, ok := a.Intersect(Cube{Pos: 0b10})
	if !ok || c.String() != "x1x2" {
		t.Fatalf("intersect = %v", c)
	}
	// Intersection agrees with truth-table AND.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		n := 4
		x, y := randCube(n, rng), randCube(n, rng)
		z, ok := x.Intersect(y)
		want := x.ToTT(n).And(y.ToTT(n))
		if ok {
			if !z.ToTT(n).Equal(want) {
				t.Fatal("intersection truth table mismatch")
			}
		} else if !want.IsZero() {
			t.Fatal("claimed contradiction but AND nonzero")
		}
	}
}

func TestCommonLiterals(t *testing.T) {
	a := Cube{Pos: 0b011, Neg: 0b100} // x1x2x3'
	b := Cube{Pos: 0b001, Neg: 0b110} // x1x2'x3'
	common := a.CommonLiterals(b)
	if common.String() != "x1x3'" {
		t.Fatalf("common = %v", common)
	}
}

func TestCoverEvalAndTT(t *testing.T) {
	cv, n, err := ParseSOP("x1x2 + x1'x2'")
	if err != nil || n != 2 {
		t.Fatalf("parse: %v n=%d", err, n)
	}
	tt := cv.ToTT(2)
	want := truthtab.FromMinterms(2, []uint64{0, 3}) // XNOR
	if !tt.Equal(want) {
		t.Fatalf("tt = %v", tt)
	}
	if cv.NumProducts() != 2 || cv.TotalLiterals() != 4 || cv.DistinctLiterals() != 4 {
		t.Fatalf("counts: p=%d tl=%d dl=%d", cv.NumProducts(), cv.TotalLiterals(), cv.DistinctLiterals())
	}
}

func TestPaperExampleCounts(t *testing.T) {
	// §III-A running example: f = x1x2 + x1'x2' has 4 literals, 2
	// products; its dual x1x2' + x1'x2 has 2 products.
	f, _, err := ParseSOP("x1x2 + x1'x2'")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumProducts() != 2 || f.DistinctLiterals() != 4 {
		t.Fatal("paper example counts wrong")
	}
	fd, _, err := ParseSOP("x1x2' + x1'x2")
	if err != nil {
		t.Fatal(err)
	}
	if !fd.ToTT(2).Equal(f.ToTT(2).Dual()) {
		t.Fatal("stated dual is not the dual")
	}
}

func TestAbsorb(t *testing.T) {
	cv, _, _ := ParseSOP("x1 + x1x2 + x3x4 + x3x4")
	r := cv.Absorb()
	if r.NumProducts() != 2 {
		t.Fatalf("absorbed cover = %v", r)
	}
	if !r.ToTT(4).Equal(cv.ToTT(4)) {
		t.Fatal("absorption changed the function")
	}
}

func TestAbsorbQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(3))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		cv := make(Cover, rng.Intn(8))
		for i := range cv {
			cv[i] = randCube(n, rng)
		}
		return cv.Absorb().ToTT(n).Equal(cv.ToTT(n))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFromTTMintermsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(6)
		f := truthtab.New(n)
		for a := uint64(0); a < f.Size(); a++ {
			if rng.Intn(2) == 1 {
				f.SetBit(a, true)
			}
		}
		cv := FromTTMinterms(f)
		if !IsCoverOf(cv, f) {
			t.Fatal("minterm cover mismatch")
		}
		for _, c := range cv {
			if !IsImplicant(c, f) {
				t.Fatal("minterm cube not an implicant")
			}
		}
	}
}

func TestParseSOPErrors(t *testing.T) {
	bad := []string{"", "x", "x0", "y1", "x1 +", "x1x1'", "x1 & x2", "x65"}
	for _, s := range bad {
		if _, _, err := ParseSOP(s); err == nil {
			t.Fatalf("ParseSOP(%q) should fail", s)
		}
	}
}

func TestParseSOPConstants(t *testing.T) {
	cv, _, err := ParseSOP("0")
	if err != nil || len(cv) != 0 {
		t.Fatal("parse 0")
	}
	cv, _, err = ParseSOP("1")
	if err != nil || len(cv) != 1 || !cv[0].IsUniverse() {
		t.Fatal("parse 1")
	}
}

func TestParseSOPFormats(t *testing.T) {
	forms := []string{"x1x2' + x3", "x1*x2' + x3", "X1 X2' + X3", " x1 . x2' + x3 "}
	var ref Cover
	for i, s := range forms {
		cv, n, err := ParseSOP(s)
		if err != nil {
			t.Fatalf("form %q: %v", s, err)
		}
		if n != 3 {
			t.Fatalf("maxvar = %d", n)
		}
		if i == 0 {
			ref = cv
			continue
		}
		if !cv.ToTT(3).Equal(ref.ToTT(3)) {
			t.Fatalf("form %q differs", s)
		}
	}
}

func TestCoverString(t *testing.T) {
	cv, _, _ := ParseSOP("x1x2 + x1'x2'")
	cv.Sort()
	if cv.String() != "x1'x2' + x1x2" && cv.String() != "x1x2 + x1'x2'" {
		t.Fatalf("String = %q", cv.String())
	}
	if (Cover{}).String() != "0" {
		t.Fatal("empty cover string")
	}
}

func TestPLAParseAndFormat(t *testing.T) {
	text := `# two-output demo
.i 3
.o 2
.p 3
11- 10
0-1 01
1-1 11
.e
`
	p, err := ParsePLA(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Inputs != 3 || p.Outputs != 2 {
		t.Fatalf("header: %+v", p)
	}
	if len(p.Covers[0]) != 2 || len(p.Covers[1]) != 2 {
		t.Fatalf("cover sizes %d,%d", len(p.Covers[0]), len(p.Covers[1]))
	}
	f0 := p.Covers[0].ToTT(3)
	want0, _, _ := ParseSOP("x1x2 + x1x3")
	if !f0.Equal(want0.ToTT(3)) {
		t.Fatal("output 0 function wrong")
	}
	// Round-trip output 1 through FormatPLA.
	text1 := FormatPLA(p.Covers[1], 3)
	p1, err := ParsePLA(text1)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Covers[0].ToTT(3).Equal(p.Covers[1].ToTT(3)) {
		t.Fatal("PLA round trip changed the function")
	}
}

func TestPLAConcatenatedRow(t *testing.T) {
	p, err := ParsePLA(".i 2\n.o 1\n111\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Covers[0]) != 1 || p.Covers[0][0].String() != "x1x2" {
		t.Fatalf("cover = %v", p.Covers[0])
	}
}

func TestPLAErrors(t *testing.T) {
	bad := []string{
		"11 1",                // cube before .i/.o
		".i 2\n.o 1\n113 1\n", // bad input char
		".i 2\n.o 1\n11 9\n",  // bad output char
		".i 2\n.o 1\n111 1\n", // width mismatch
		".i x\n.o 1\n",        // bad .i
		".i 2\n.foo\n",        // unknown directive
		"",                    // empty
	}
	for _, s := range bad {
		if _, err := ParsePLA(s); err == nil {
			t.Fatalf("ParsePLA(%q) should fail", s)
		}
	}
}

func TestSupport(t *testing.T) {
	cv, _, _ := ParseSOP("x1x5' + x3")
	sup := cv.Support()
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 2 || sup[2] != 4 {
		t.Fatalf("support = %v", sup)
	}
}
