package lattice

import (
	"math/rand"
	"testing"
)

func benchLattice(r, c, n int, seed int64) *Lattice {
	rng := rand.New(rand.NewSource(seed))
	l := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			l.Set(i, j, Lit(rng.Intn(n), rng.Intn(2) == 1))
		}
	}
	return l
}

func BenchmarkEval8x8(b *testing.B) {
	l := benchLattice(8, 8, 6, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Eval(uint64(i) & 63)
	}
}

func BenchmarkEvalDual8x8(b *testing.B) {
	l := benchLattice(8, 8, 6, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.EvalDual(uint64(i) & 63)
	}
}

func BenchmarkFunction6Var(b *testing.B) {
	l := benchLattice(6, 6, 6, 3)
	for i := 0; i < b.N; i++ {
		l.Function(6)
	}
}

// BenchmarkEvalFast8x8 is the zero-alloc scalar path: same BFS as
// BenchmarkEval8x8 with the evaluator's reused scratch.
func BenchmarkEvalFast8x8(b *testing.B) {
	l := benchLattice(8, 8, 6, 1)
	ev := NewEvaluator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Eval(l, uint64(i)&63)
	}
}

// BenchmarkFunctionFast6Var is the bit-parallel counterpart of
// BenchmarkFunction6Var: one 64-wide frontier percolation instead of 64
// BFS passes.
func BenchmarkFunctionFast6Var(b *testing.B) {
	l := benchLattice(6, 6, 6, 3)
	for i := 0; i < b.N; i++ {
		l.FunctionFast(6)
	}
}

// BenchmarkEvaluatorWords6Var is the steady-state evaluator loop —
// result words land in reused scratch, so this must run at 0 allocs/op.
func BenchmarkEvaluatorWords6Var(b *testing.B) {
	l := benchLattice(6, 6, 6, 3)
	ev := NewEvaluator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.FunctionWords(l, 6)
	}
}

// BenchmarkFunction8Var / BenchmarkFunctionFast8Var measure a
// multi-word (2^8 assignments = 4 words) expansion.
func BenchmarkFunction8Var(b *testing.B) {
	l := benchLattice(8, 8, 8, 6)
	for i := 0; i < b.N; i++ {
		l.Function(8)
	}
}

func BenchmarkFunctionFast8Var(b *testing.B) {
	l := benchLattice(8, 8, 8, 6)
	for i := 0; i < b.N; i++ {
		l.FunctionFast(8)
	}
}

// BenchmarkImplementsScalar6Var / BenchmarkImplementsFast6Var measure
// the verification check PostReduce issues per deletion trial, on a
// succeeding (worst-case: no early exit) instance.
func BenchmarkImplementsScalar6Var(b *testing.B) {
	l := benchLattice(6, 6, 6, 3)
	f := l.Function(6)
	for i := 0; i < b.N; i++ {
		l.Implements(f)
	}
}

func BenchmarkImplementsFast6Var(b *testing.B) {
	l := benchLattice(6, 6, 6, 3)
	f := l.Function(6)
	ev := NewEvaluator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Implements(l, f)
	}
}

func BenchmarkDualFunctionFast6Var(b *testing.B) {
	l := benchLattice(6, 6, 6, 2)
	for i := 0; i < b.N; i++ {
		l.DualFunctionFast(6)
	}
}

func BenchmarkOrCompose(b *testing.B) {
	x := benchLattice(4, 4, 4, 4)
	y := benchLattice(3, 5, 4, 5)
	for i := 0; i < b.N; i++ {
		Or(x, y)
	}
}
