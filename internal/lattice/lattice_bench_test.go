package lattice

import (
	"math/rand"
	"testing"
)

func benchLattice(r, c, n int, seed int64) *Lattice {
	rng := rand.New(rand.NewSource(seed))
	l := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			l.Set(i, j, Lit(rng.Intn(n), rng.Intn(2) == 1))
		}
	}
	return l
}

func BenchmarkEval8x8(b *testing.B) {
	l := benchLattice(8, 8, 6, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Eval(uint64(i) & 63)
	}
}

func BenchmarkEvalDual8x8(b *testing.B) {
	l := benchLattice(8, 8, 6, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.EvalDual(uint64(i) & 63)
	}
}

func BenchmarkFunction6Var(b *testing.B) {
	l := benchLattice(6, 6, 6, 3)
	for i := 0; i < b.N; i++ {
		l.Function(6)
	}
}

func BenchmarkOrCompose(b *testing.B) {
	x := benchLattice(4, 4, 4, 4)
	y := benchLattice(3, 5, 4, 5)
	for i := 0; i < b.N; i++ {
		Or(x, y)
	}
}
