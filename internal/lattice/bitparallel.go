// Bit-parallel lattice evaluation.
//
// The scalar Eval walks one assignment at a time: a BFS over conducting
// sites per assignment, 2^n BFS passes to expand a function. Every hot
// loop in the repository — dual-method verification, PostReduce
// deletion trials, the bounded-optimal search, the serving engine —
// bottoms out there. The Evaluator below replaces that with truthtable
// word parallelism: each site's conduction over 64 consecutive
// assignments is a single uint64 "on-mask" (a literal site's mask is
// just the variable's truthtab bit pattern), and the top-to-bottom
// percolation becomes word-wide frontier propagation
//
//	reach[site] |= OR(reach[neighbors]) & on[site]
//
// iterated to fixpoint, so one sweep pass evaluates 64 assignments at
// once. Sweeps alternate direction (top-left→bottom-right, then
// reversed) Gauss–Seidel style; a full sweep with no change certifies
// the least fixpoint, and the reached set only grows, which gives
// Implements an early exit the moment the function overshoots its
// target on any word.

package lattice

import (
	"sync"
	"sync/atomic"

	"nanoxbar/internal/truthtab"
)

// varPattern[v] is the truth-table word pattern of variable v for
// v < 6: bit a of the pattern is bit v of assignment a. Variables ≥ 6
// are constant across a 64-assignment word and select whole words by
// word index instead.
var varPattern = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// numWords returns ceil(2^n / 64) with a one-word minimum, matching the
// truthtab Words layout.
func numWords(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// validMask returns the valid-assignment mask of a word for n
// variables (all 64 bits from n ≥ 6 up).
func validMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return uint64(1)<<(1<<n) - 1
}

// onMask returns the site's conduction mask over word block wi: bit a
// is s.On(wi<<6 | a), restricted to vm.
func onMask(s Site, wi int, vm uint64) uint64 {
	switch s.Kind {
	case Const0:
		return 0
	case Const1:
		return vm
	}
	if s.Var < 6 {
		p := varPattern[s.Var]
		if s.Neg {
			p = ^p
		}
		return p & vm
	}
	if ((wi>>(s.Var-6))&1 == 1) != s.Neg {
		return vm
	}
	return 0
}

// dualOnMask is onMask for the dual (left-to-right, 8-connected)
// reading: bit a is ¬s.On(¬a). For a literal that coincides with
// s.On(a); constants swap roles.
func dualOnMask(s Site, wi int, vm uint64) uint64 {
	switch s.Kind {
	case Const0:
		return vm
	case Const1:
		return 0
	}
	return onMask(s, wi, vm)
}

// Evaluation counters, exported through CounterSnapshot for the serving
// daemon's /stats endpoint.
var (
	ctrScalarEvals    atomic.Uint64
	ctrFastFunctions  atomic.Uint64
	ctrFastImplements atomic.Uint64
	ctrWordBlocks     atomic.Uint64
)

// Counters is a point-in-time snapshot of the process-wide lattice
// evaluation counters.
type Counters struct {
	ScalarEvals    uint64 `json:"scalar_evals"`     // assignments walked by scalar expansions and Evaluator.Eval/EvalDual
	FastFunctions  uint64 `json:"fast_functions"`   // bit-parallel function expansions
	FastImplements uint64 `json:"fast_implements"`  // bit-parallel Implements/feasibility checks
	WordBlocks     uint64 `json:"fast_word_blocks"` // 64-assignment word blocks percolated
}

// CounterSnapshot returns the current evaluation counters.
func CounterSnapshot() Counters {
	return Counters{
		ScalarEvals:    ctrScalarEvals.Load(),
		FastFunctions:  ctrFastFunctions.Load(),
		FastImplements: ctrFastImplements.Load(),
		WordBlocks:     ctrWordBlocks.Load(),
	}
}

// Evaluator runs bit-parallel (and zero-alloc scalar) lattice
// evaluations with reusable scratch. The zero value is ready to use;
// scratch grows to the largest lattice seen and is reused across calls.
// An Evaluator is not safe for concurrent use — give each goroutine its
// own, or use the pooled Lattice.FunctionFast/ImplementsFast wrappers.
type Evaluator struct {
	onw   []uint64 // per-site on-masks of the current word block
	reach []uint64 // per-site reached-from-source masks
	fn    []uint64 // FunctionWords result buffer

	// Scalar scratch (zero-alloc Eval/EvalDual).
	sOn      []bool
	sVisited []bool
	sStack   []int32
}

// NewEvaluator returns an empty evaluator.
func NewEvaluator() *Evaluator { return &Evaluator{} }

func (e *Evaluator) grow(sites int) {
	if len(e.onw) < sites {
		e.onw = make([]uint64, sites)
		e.reach = make([]uint64, sites)
	}
}

// buildOnWord fills e.onw for word block wi. Sites at index ≥ filled
// (a partial fill during the optimal search) get fillMask instead of
// their own mask; full evaluations pass filled = len(sites).
func (e *Evaluator) buildOnWord(l *Lattice, wi int, vm uint64, dual bool, filled int, fillMask uint64) {
	onw := e.onw[:len(l.sites)]
	for i, s := range l.sites {
		if i >= filled {
			onw[i] = fillMask
			continue
		}
		if dual {
			onw[i] = dualOnMask(s, wi, vm)
		} else {
			onw[i] = onMask(s, wi, vm)
		}
	}
}

// runWord percolates one word block to fixpoint over e.onw and returns
// the sink mask: bit a set iff a source-to-sink path of conducting
// sites exists under assignment (wi<<6 | a). Normal mode percolates top
// row → bottom row over 4-connected sites; dual mode left column →
// right column over 8-connected sites. When bounded, iteration aborts
// with ok=false as soon as the sink mask leaves limit (reach only
// grows, so any excess is permanent).
func (e *Evaluator) runWord(R, C int, dual, bounded bool, limit uint64) (sink uint64, ok bool) {
	sites := R * C
	onw, reach := e.onw[:sites], e.reach[:sites]
	for i := range reach {
		reach[i] = 0
	}
	// Seed the source plate.
	if dual {
		for i := 0; i < sites; i += C {
			reach[i] = onw[i]
		}
	} else {
		copy(reach, onw[:C])
	}
	sinkOr := func() uint64 {
		var s uint64
		if dual {
			for i := C - 1; i < sites; i += C {
				s |= reach[i]
			}
		} else {
			for i := sites - C; i < sites; i++ {
				s |= reach[i]
			}
		}
		return s
	}
	// Gauss–Seidel sweeps with in-place updates, alternating direction:
	// a forward (top-left→bottom-right) sweep propagates down/rightward
	// chains in one pass, a backward sweep the up/leftward ones, so the
	// sweep count tracks the number of direction reversals in the
	// longest percolation path rather than its length. A complete sweep
	// with no change certifies the fixpoint in either direction.
	for forward := true; ; forward = !forward {
		changed := false
		if forward {
			for r := 0; r < R; r++ {
				for i := r * C; i < (r+1)*C; i++ {
					o := onw[i]
					if o == 0 {
						continue
					}
					c := i - r*C
					acc := reach[i]
					if r > 0 {
						acc |= reach[i-C]
					}
					if r < R-1 {
						acc |= reach[i+C]
					}
					if c > 0 {
						acc |= reach[i-1]
					}
					if c < C-1 {
						acc |= reach[i+1]
					}
					if dual {
						acc |= gatherDiag(reach, i, r, c, R, C)
					}
					if acc &= o; acc != reach[i] {
						reach[i] = acc
						changed = true
					}
				}
			}
		} else {
			for r := R - 1; r >= 0; r-- {
				for i := (r+1)*C - 1; i >= r*C; i-- {
					o := onw[i]
					if o == 0 {
						continue
					}
					c := i - r*C
					acc := reach[i]
					if r > 0 {
						acc |= reach[i-C]
					}
					if r < R-1 {
						acc |= reach[i+C]
					}
					if c > 0 {
						acc |= reach[i-1]
					}
					if c < C-1 {
						acc |= reach[i+1]
					}
					if dual {
						acc |= gatherDiag(reach, i, r, c, R, C)
					}
					if acc &= o; acc != reach[i] {
						reach[i] = acc
						changed = true
					}
				}
			}
		}
		if !changed {
			return sinkOr(), true
		}
		if bounded {
			if s := sinkOr(); s&^limit != 0 {
				return s, false
			}
		}
	}
}

// gatherDiag ORs the four diagonal neighbors (8-connected dual mode).
func gatherDiag(reach []uint64, i, r, c, R, C int) uint64 {
	var acc uint64
	if r > 0 {
		if c > 0 {
			acc |= reach[i-C-1]
		}
		if c < C-1 {
			acc |= reach[i-C+1]
		}
	}
	if r < R-1 {
		if c > 0 {
			acc |= reach[i+C-1]
		}
		if c < C-1 {
			acc |= reach[i+C+1]
		}
	}
	return acc
}

// functionWords expands the (dual=false: top-to-bottom, dual=true:
// left-to-right) function over n variables into e.fn and returns it.
// The slice is the evaluator's internal buffer, valid until the next
// call on e.
func (e *Evaluator) functionWords(l *Lattice, n int, dual bool) []uint64 {
	ctrFastFunctions.Add(1)
	e.grow(len(l.sites))
	W, vm := numWords(n), validMask(n)
	if len(e.fn) < W {
		e.fn = make([]uint64, W)
	}
	fn := e.fn[:W]
	for wi := 0; wi < W; wi++ {
		e.buildOnWord(l, wi, vm, dual, len(l.sites), 0)
		fn[wi], _ = e.runWord(l.R, l.C, dual, false, 0)
	}
	// One batched counter update per expansion, not per word block:
	// these are process-wide atomics, and per-block increments would
	// bounce their cache line across the engine's worker pool.
	ctrWordBlocks.Add(uint64(W))
	return fn
}

// FunctionWords computes the top-to-bottom function of l over n
// variables in the truthtab Words layout. The returned slice aliases
// the evaluator's scratch: valid until the next call on e.
func (e *Evaluator) FunctionWords(l *Lattice, n int) []uint64 {
	return e.functionWords(l, n, false)
}

// Function is the bit-parallel equivalent of Lattice.Function.
func (e *Evaluator) Function(l *Lattice, n int) truthtab.TT {
	t, _ := truthtab.FromWords(n, e.functionWords(l, n, false))
	return t
}

// DualFunction is the bit-parallel equivalent of Lattice.DualFunction.
func (e *Evaluator) DualFunction(l *Lattice, n int) truthtab.TT {
	t, _ := truthtab.FromWords(n, e.functionWords(l, n, true))
	return t
}

// Implements reports whether l computes f top-to-bottom. It proceeds
// word block by word block and exits on the first mismatching word —
// inside a block as soon as the reached set overshoots f (reach only
// grows), or at the block's fixpoint when it undershoots — which makes
// the failing trials of PostReduce cheap.
func (e *Evaluator) Implements(l *Lattice, f truthtab.TT) bool {
	ctrFastImplements.Add(1)
	e.grow(len(l.sites))
	n := f.NumVars()
	W, vm := numWords(n), validMask(n)
	for wi := 0; wi < W; wi++ {
		fw := f.Word(wi)
		e.buildOnWord(l, wi, vm, false, len(l.sites), 0)
		sink, ok := e.runWord(l.R, l.C, false, true, fw)
		if !ok || sink != fw {
			ctrWordBlocks.Add(uint64(wi + 1))
			return false
		}
	}
	ctrWordBlocks.Add(uint64(W))
	return true
}

// FeasiblePartial applies the optimal search's two monotone prunes to a
// partial fill — sites at index ≥ filled are undecided — in one
// bit-parallel pass per word block: with undecided sites conducting the
// lattice must still cover f (else no completion can add the missing
// paths), and with undecided sites blocking it must stay within f (else
// no completion can remove the excess ones).
func (e *Evaluator) FeasiblePartial(l *Lattice, filled int, f truthtab.TT) bool {
	ctrFastImplements.Add(1)
	e.grow(len(l.sites))
	n := f.NumVars()
	W, vm := numWords(n), validMask(n)
	blocks := uint64(0)
	defer func() { ctrWordBlocks.Add(blocks) }()
	for wi := 0; wi < W; wi++ {
		fw := f.Word(wi)
		if fw != 0 {
			e.buildOnWord(l, wi, vm, false, filled, vm)
			opt, _ := e.runWord(l.R, l.C, false, false, 0)
			blocks++
			if fw&^opt != 0 {
				return false
			}
		}
		if fw != vm {
			e.buildOnWord(l, wi, vm, false, filled, 0)
			blocks++
			if sink, ok := e.runWord(l.R, l.C, false, true, fw); !ok || sink&^fw != 0 {
				return false
			}
		}
	}
	return true
}

// PercolateMasks percolates one word of caller-supplied per-site
// conduction masks (row-major, R*C words, bit t = site conducts in
// trial t) to fixpoint — top row to bottom row, 4-connected — and
// returns the sink mask: bit t set iff a source-to-sink path of
// conducting sites exists in trial t. This is the entry point for
// callers whose 64 lanes are not consecutive truth-table assignments,
// such as redundancy's packed Monte Carlo trials; on is copied into the
// evaluator's scratch and not modified.
func (e *Evaluator) PercolateMasks(R, C int, on []uint64) uint64 {
	if len(on) != R*C {
		panic("lattice: PercolateMasks needs R*C site masks")
	}
	e.grow(len(on))
	copy(e.onw[:len(on)], on)
	sink, _ := e.runWord(R, C, false, false, 0)
	ctrWordBlocks.Add(1)
	return sink
}

func (e *Evaluator) growScalar(sites int) {
	if len(e.sOn) < sites {
		e.sOn = make([]bool, sites)
		e.sVisited = make([]bool, sites)
	}
	if cap(e.sStack) < sites {
		e.sStack = make([]int32, 0, sites)
	}
}

// Eval is a zero-alloc scalar equivalent of Lattice.Eval backed by the
// evaluator's scratch.
func (e *Evaluator) Eval(l *Lattice, a uint64) bool {
	ctrScalarEvals.Add(1)
	e.growScalar(len(l.sites))
	on := e.sOn[:len(l.sites)]
	for i, s := range l.sites {
		on[i] = s.On(a)
	}
	return e.percolateScalar(l.R, l.C, false)
}

// EvalDual is a zero-alloc scalar equivalent of Lattice.EvalDual.
func (e *Evaluator) EvalDual(l *Lattice, a uint64) bool {
	ctrScalarEvals.Add(1)
	e.growScalar(len(l.sites))
	on := e.sOn[:len(l.sites)]
	for i, s := range l.sites {
		on[i] = !s.On(^a)
	}
	return e.percolateScalar(l.R, l.C, true)
}

// percolateScalar runs the single-assignment DFS over e.sOn.
func (e *Evaluator) percolateScalar(R, C int, dual bool) bool {
	sites := R * C
	on, visited := e.sOn[:sites], e.sVisited[:sites]
	for i := range visited {
		visited[i] = false
	}
	stack := e.sStack[:0]
	if dual {
		for i := 0; i < sites; i += C {
			if on[i] {
				stack = append(stack, int32(i))
				visited[i] = true
			}
		}
	} else {
		for i := 0; i < C; i++ {
			if on[i] {
				stack = append(stack, int32(i))
				visited[i] = true
			}
		}
	}
	for len(stack) > 0 {
		cur := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		r, c := cur/C, cur%C
		if dual && c == C-1 || !dual && r == R-1 {
			e.sStack = stack[:0]
			return true
		}
		lo, hi := 0, 0 // row offsets: 4-conn visits (±1,0),(0,±1); 8-conn all
		if dual {
			lo, hi = -1, 1
		}
		for dr := -1; dr <= 1; dr++ {
			nr := r + dr
			if nr < 0 || nr >= R {
				continue
			}
			dlo, dhi := lo, hi
			if dr == 0 {
				dlo, dhi = -1, 1
			} else if !dual {
				dlo, dhi = 0, 0
			}
			for dc := dlo; dc <= dhi; dc++ {
				if dr == 0 && dc == 0 {
					continue
				}
				nc := c + dc
				if nc < 0 || nc >= C {
					continue
				}
				ni := nr*C + nc
				if on[ni] && !visited[ni] {
					visited[ni] = true
					stack = append(stack, int32(ni))
				}
			}
		}
	}
	e.sStack = stack[:0]
	return false
}

// evalPool backs the pooled convenience wrappers so call sites that
// cannot hold an Evaluator still skip per-call scratch allocation.
var evalPool = sync.Pool{New: func() any { return NewEvaluator() }}

// FunctionFast is Function via a pooled bit-parallel evaluator:
// identical result, one frontier percolation per 64 assignments instead
// of one BFS per assignment.
func (l *Lattice) FunctionFast(n int) truthtab.TT {
	e := evalPool.Get().(*Evaluator)
	t := e.Function(l, n)
	evalPool.Put(e)
	return t
}

// DualFunctionFast is DualFunction via a pooled bit-parallel evaluator.
func (l *Lattice) DualFunctionFast(n int) truthtab.TT {
	e := evalPool.Get().(*Evaluator)
	t := e.DualFunction(l, n)
	evalPool.Put(e)
	return t
}

// ImplementsFast is Implements via a pooled bit-parallel evaluator,
// with early exit on the first mismatching word.
func (l *Lattice) ImplementsFast(f truthtab.TT) bool {
	e := evalPool.Get().(*Evaluator)
	ok := e.Implements(l, f)
	evalPool.Put(e)
	return ok
}
