package lattice

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/truthtab"
)

// fig4 builds the paper's Fig. 4 lattice: 3 rows × 2 columns, first
// column x1,x2,x3, second column x4,x5,x6.
func fig4() *Lattice {
	l := New(3, 2)
	l.Set(0, 0, Lit(0, false))
	l.Set(1, 0, Lit(1, false))
	l.Set(2, 0, Lit(2, false))
	l.Set(0, 1, Lit(3, false))
	l.Set(1, 1, Lit(4, false))
	l.Set(2, 1, Lit(5, false))
	return l
}

func fig4Function(t *testing.T) truthtab.TT {
	t.Helper()
	cv, _, err := cube.ParseSOP("x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6")
	if err != nil {
		t.Fatal(err)
	}
	return cv.ToTT(6)
}

func TestFig4Lattice(t *testing.T) {
	l := fig4()
	want := fig4Function(t)
	if !l.Implements(want) {
		t.Fatalf("Fig.4 lattice computes %v, want %v", l.Function(6), want)
	}
}

func TestFig4Paths(t *testing.T) {
	l := fig4()
	paths, err := l.Paths(10000)
	if err != nil {
		t.Fatal(err)
	}
	// After absorption exactly the caption's four products remain.
	if len(paths) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	if !paths.ToTT(6).Equal(fig4Function(t)) {
		t.Fatal("path cover differs from lattice function")
	}
}

func TestSiteOn(t *testing.T) {
	if (Site{Kind: Const0}).On(0xff) || !(Site{Kind: Const1}).On(0) {
		t.Fatal("constant sites")
	}
	s := Lit(2, false)
	if !s.On(0b100) || s.On(0b011) {
		t.Fatal("positive literal")
	}
	ns := Lit(2, true)
	if ns.On(0b100) || !ns.On(0b011) {
		t.Fatal("negative literal")
	}
}

func TestSingleSiteLattices(t *testing.T) {
	l := Constant(true)
	if !l.Function(1).IsOne() {
		t.Fatal("constant-1 lattice")
	}
	if !l.DualFunction(1).IsZero() {
		t.Fatal("dual of constant 1 must be 0")
	}
	z := Constant(false)
	if !z.Function(1).IsZero() {
		t.Fatal("constant-0 lattice")
	}
	if !z.DualFunction(1).IsOne() {
		t.Fatal("dual of constant 0 must be 1")
	}
	x := New(1, 1)
	x.Set(0, 0, Lit(0, false))
	if !x.Function(1).Equal(truthtab.Var(1, 0)) {
		t.Fatal("1×1 literal lattice")
	}
	if !x.DualFunction(1).Equal(truthtab.Var(1, 0)) {
		t.Fatal("dual of x is x")
	}
}

func TestColumnIsAnd(t *testing.T) {
	// Column of x1,x2,x3 computes the product.
	l := New(3, 1)
	for i := 0; i < 3; i++ {
		l.Set(i, 0, Lit(i, false))
	}
	want := truthtab.Var(3, 0).And(truthtab.Var(3, 1)).And(truthtab.Var(3, 2))
	if !l.Implements(want) {
		t.Fatal("column lattice is not AND")
	}
}

func TestRowIsOr(t *testing.T) {
	l := New(1, 3)
	for j := 0; j < 3; j++ {
		l.Set(0, j, Lit(j, false))
	}
	want := truthtab.Var(3, 0).Or(truthtab.Var(3, 1)).Or(truthtab.Var(3, 2))
	if !l.Implements(want) {
		t.Fatal("row lattice is not OR")
	}
}

func Test2x2AllDistinct(t *testing.T) {
	// [x1 x2; x3 x4]: f = x1x3 + x2x4 (zigzags absorbed).
	l := New(2, 2)
	l.Set(0, 0, Lit(0, false))
	l.Set(0, 1, Lit(1, false))
	l.Set(1, 0, Lit(2, false))
	l.Set(1, 1, Lit(3, false))
	want, _, _ := cube.ParseSOP("x1x3 + x2x4")
	if !l.Implements(want.ToTT(4)) {
		t.Fatalf("2x2 function = %v", l.Function(4))
	}
	// Dual reading must include the 8-connected diagonals:
	// (x1+x3)(x2+x4) = x1x2 + x1x4 + x2x3 + x3x4.
	wantD, _, _ := cube.ParseSOP("x1x2 + x1x4 + x2x3 + x3x4")
	if !l.DualFunction(4).Equal(wantD.ToTT(4)) {
		t.Fatalf("2x2 dual = %v", l.DualFunction(4))
	}
}

func randLattice(r, c, n int, rng *rand.Rand) *Lattice {
	l := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			switch rng.Intn(8) {
			case 0:
				l.Set(i, j, Site{Kind: Const0})
			case 1:
				l.Set(i, j, Site{Kind: Const1})
			default:
				l.Set(i, j, Lit(rng.Intn(n), rng.Intn(2) == 1))
			}
		}
	}
	return l
}

func TestDualityProperty(t *testing.T) {
	// For arbitrary lattices (constants included): the LR 8-connected
	// reading equals the Boolean dual of the TB function.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 150; i++ {
		n := 1 + rng.Intn(4)
		l := randLattice(1+rng.Intn(4), 1+rng.Intn(4), n, rng)
		if !l.DualFunction(n).Equal(l.Function(n).Dual()) {
			t.Fatalf("duality violated for lattice\n%v", l)
		}
	}
}

func TestPathsMatchFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(4)
		l := randLattice(1+rng.Intn(3), 1+rng.Intn(3), n, rng)
		paths, err := l.Paths(100000)
		if err != nil {
			t.Fatal(err)
		}
		if !paths.ToTT(n).Equal(l.Function(n)) {
			t.Fatalf("paths %v != function for\n%v", paths, l)
		}
	}
}

func TestPathsLimit(t *testing.T) {
	// A dense all-Const1 lattice has exponentially many simple paths.
	l := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			l.Set(i, j, Site{Kind: Const1})
		}
	}
	if _, err := l.Paths(3); err == nil {
		t.Fatal("expected limit error")
	}
}

func TestOrComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(4)
		a := randLattice(1+rng.Intn(3), 1+rng.Intn(3), n, rng)
		b := randLattice(1+rng.Intn(3), 1+rng.Intn(3), n, rng)
		or := Or(a, b)
		want := a.Function(n).Or(b.Function(n))
		if !or.Implements(want) {
			t.Fatalf("Or composition wrong:\nA=\n%vB=\n%vOr=\n%v", a, b, or)
		}
		if or.R != max(a.R, b.R) || or.C != a.C+1+b.C {
			t.Fatalf("Or shape %d×%d", or.R, or.C)
		}
	}
}

func TestAndComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(4)
		a := randLattice(1+rng.Intn(3), 1+rng.Intn(3), n, rng)
		b := randLattice(1+rng.Intn(3), 1+rng.Intn(3), n, rng)
		and := And(a, b)
		want := a.Function(n).And(b.Function(n))
		if !and.Implements(want) {
			t.Fatalf("And composition wrong:\nA=\n%vB=\n%vAnd=\n%v", a, b, and)
		}
		if and.C != max(a.C, b.C) || and.R != a.R+1+b.R {
			t.Fatalf("And shape %d×%d", and.R, and.C)
		}
	}
}

func TestFromCube(t *testing.T) {
	c := cube.Cube{Pos: 0b101, Neg: 0b010} // x1x2'x3
	l := FromCube(c)
	if l.R != 3 || l.C != 1 {
		t.Fatalf("shape %d×%d", l.R, l.C)
	}
	if !l.Implements(c.ToTT(3)) {
		t.Fatal("FromCube function wrong")
	}
	u := FromCube(cube.Universe)
	if !u.Function(1).IsOne() {
		t.Fatal("universe cube lattice")
	}
	bad := FromCube(cube.Cube{Pos: 1, Neg: 1})
	if !bad.Function(1).IsZero() {
		t.Fatal("contradiction cube lattice")
	}
}

func TestOrAllAndAll(t *testing.T) {
	n := 3
	ls := make([]*Lattice, n)
	for i := range ls {
		ls[i] = FromCube(cube.FromLiteral(i, false))
	}
	or := OrAll(ls...)
	if !or.Implements(truthtab.Var(n, 0).Or(truthtab.Var(n, 1)).Or(truthtab.Var(n, 2))) {
		t.Fatal("OrAll wrong")
	}
	and := AndAll(ls...)
	if !and.Implements(truthtab.Var(n, 0).And(truthtab.Var(n, 1)).And(truthtab.Var(n, 2))) {
		t.Fatal("AndAll wrong")
	}
}

func TestQuickComposition(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(5))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		a := randLattice(1+rng.Intn(2), 1+rng.Intn(3), n, rng)
		b := randLattice(1+rng.Intn(3), 1+rng.Intn(2), n, rng)
		fa, fb := a.Function(n), b.Function(n)
		return Or(a, b).Implements(fa.Or(fb)) && And(a, b).Implements(fa.And(fb))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := fig4().String()
	if !strings.Contains(s, "TOP") || !strings.Contains(s, "BOTTOM") {
		t.Fatal("missing plate markers")
	}
	if !strings.Contains(s, "x1") || !strings.Contains(s, "x6") {
		t.Fatalf("missing sites:\n%s", s)
	}
}

func TestMaxVar(t *testing.T) {
	if fig4().MaxVar() != 6 {
		t.Fatal("MaxVar")
	}
	if Constant(true).MaxVar() != 0 {
		t.Fatal("MaxVar of constant")
	}
}

func TestCloneIndependent(t *testing.T) {
	l := fig4()
	c := l.Clone()
	c.Set(0, 0, Site{Kind: Const0})
	if l.At(0, 0).Kind == Const0 {
		t.Fatal("clone aliases original")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 3)
}
