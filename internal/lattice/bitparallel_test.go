package lattice

import (
	"math/rand"
	"sync"
	"testing"

	"nanoxbar/internal/truthtab"
)

// randomLattice draws an R×C lattice mixing literals over n variables
// with occasional constants.
func randomLattice(rng *rand.Rand, r, c, n int) *Lattice {
	l := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			switch rng.Intn(10) {
			case 0:
				l.Set(i, j, Site{Kind: Const0})
			case 1:
				l.Set(i, j, Site{Kind: Const1})
			default:
				l.Set(i, j, Lit(rng.Intn(n), rng.Intn(2) == 1))
			}
		}
	}
	return l
}

// TestBitParallelAgreesWithScalar is the core property test: on
// randomized lattices the bit-parallel Function/DualFunction/Implements
// and the zero-alloc scalar Eval/EvalDual must agree with the
// reference per-assignment BFS, across word-boundary variable counts
// (n = 6 is one exact word, n = 7..8 multi-word, n < 6 a partial word).
func TestBitParallelAgreesWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ev := NewEvaluator() // deliberately shared across sizes: scratch must reset
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		l := randomLattice(rng, 1+rng.Intn(5), 1+rng.Intn(5), n)
		want := l.Function(n)
		wantD := l.DualFunction(n)

		if got := l.FunctionFast(n); !got.Equal(want) {
			t.Fatalf("trial %d: FunctionFast = %v, want %v for\n%v", trial, got, want, l)
		}
		if got := ev.Function(l, n); !got.Equal(want) {
			t.Fatalf("trial %d: Evaluator.Function = %v, want %v for\n%v", trial, got, want, l)
		}
		if got := l.DualFunctionFast(n); !got.Equal(wantD) {
			t.Fatalf("trial %d: DualFunctionFast = %v, want %v for\n%v", trial, got, wantD, l)
		}
		if got := ev.DualFunction(l, n); !got.Equal(wantD) {
			t.Fatalf("trial %d: Evaluator.DualFunction = %v, want %v for\n%v", trial, got, wantD, l)
		}
		if !l.ImplementsFast(want) || !ev.Implements(l, want) {
			t.Fatalf("trial %d: ImplementsFast rejects the lattice's own function\n%v", trial, l)
		}
		// Perturbing any one minterm must be detected.
		flip := want.Clone()
		a := rng.Uint64() & (want.Size() - 1)
		flip.SetBit(a, !flip.Bit(a))
		if l.ImplementsFast(flip) || ev.Implements(l, flip) {
			t.Fatalf("trial %d: ImplementsFast accepts a perturbed function", trial)
		}
		for a := uint64(0); a < want.Size(); a++ {
			if got := ev.Eval(l, a); got != want.Bit(a) {
				t.Fatalf("trial %d: Evaluator.Eval(%d) = %v, want %v", trial, a, got, want.Bit(a))
			}
			if got := ev.EvalDual(l, a); got != wantD.Bit(a) {
				t.Fatalf("trial %d: Evaluator.EvalDual(%d) = %v, want %v", trial, a, got, wantD.Bit(a))
			}
		}
	}
}

// TestBitParallelFixtures pins the fast path to the repository's seed
// fixtures.
func TestBitParallelFixtures(t *testing.T) {
	l := fig4()
	want := fig4Function(t)
	if !l.ImplementsFast(want) {
		t.Fatalf("Fig.4 lattice: ImplementsFast = false; FunctionFast = %v, want %v", l.FunctionFast(6), want)
	}
	if !l.DualFunctionFast(6).Equal(want.Dual()) {
		t.Fatal("Fig.4 lattice: DualFunctionFast differs from the dual of its function")
	}

	one := Constant(true)
	if !one.FunctionFast(1).IsOne() || !one.DualFunctionFast(1).IsZero() {
		t.Fatal("constant-1 lattice fast evaluation")
	}
	zero := Constant(false)
	if !zero.FunctionFast(1).IsZero() || !zero.DualFunctionFast(1).IsOne() {
		t.Fatal("constant-0 lattice fast evaluation")
	}
	x := New(1, 1)
	x.Set(0, 0, Lit(0, false))
	if !x.FunctionFast(1).Equal(truthtab.Var(1, 0)) || !x.DualFunctionFast(1).Equal(truthtab.Var(1, 0)) {
		t.Fatal("single-literal lattice fast evaluation")
	}
}

// TestBitParallelComposition checks the fast path against the
// Altun–Riedel composition rules, whose correctness the scalar tests
// already establish.
func TestBitParallelComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 5
	for trial := 0; trial < 50; trial++ {
		a := randomLattice(rng, 1+rng.Intn(3), 1+rng.Intn(3), n)
		b := randomLattice(rng, 1+rng.Intn(3), 1+rng.Intn(3), n)
		or, and := Or(a, b), And(a, b)
		if !or.FunctionFast(n).Equal(a.FunctionFast(n).Or(b.FunctionFast(n))) {
			t.Fatalf("trial %d: Or composition under FunctionFast", trial)
		}
		if !and.FunctionFast(n).Equal(a.FunctionFast(n).And(b.FunctionFast(n))) {
			t.Fatalf("trial %d: And composition under FunctionFast", trial)
		}
	}
}

// TestFeasiblePartial cross-checks the bit-parallel prune against the
// definitionally correct construction: filling the undecided sites with
// Const1 (optimistic) / Const0 (pessimistic) and evaluating.
func TestFeasiblePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ev := NewEvaluator()
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		R, C := 1+rng.Intn(4), 1+rng.Intn(4)
		l := randomLattice(rng, R, C, n)
		f := randomLattice(rng, 1+rng.Intn(4), 1+rng.Intn(4), n).Function(n)
		filled := rng.Intn(R*C + 1)

		opt, pess := l.Clone(), l.Clone()
		for i := filled; i < R*C; i++ {
			opt.Set(i/C, i%C, Site{Kind: Const1})
			pess.Set(i/C, i%C, Site{Kind: Const0})
		}
		want := f.Implies(opt.Function(n)) && pess.Function(n).Implies(f)
		if got := ev.FeasiblePartial(l, filled, f); got != want {
			t.Fatalf("trial %d: FeasiblePartial = %v, want %v (filled %d of %d×%d)", trial, got, want, filled, R, C)
		}
	}
}

// TestEvaluatorConcurrentPools exercises the pooled wrappers from many
// goroutines so the race detector can see any scratch sharing.
func TestEvaluatorConcurrentPools(t *testing.T) {
	l := fig4()
	want := fig4Function(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				rl := randomLattice(rng, 1+rng.Intn(4), 1+rng.Intn(4), 4)
				if !rl.FunctionFast(4).Equal(rl.Function(4)) {
					t.Error("concurrent FunctionFast mismatch")
					return
				}
				if !l.ImplementsFast(want) {
					t.Error("concurrent ImplementsFast mismatch")
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestCounterSnapshot checks the evaluation counters move.
func TestCounterSnapshot(t *testing.T) {
	before := CounterSnapshot()
	l := fig4()
	l.FunctionFast(6)
	l.ImplementsFast(fig4Function(t))
	NewEvaluator().Eval(l, 0)
	after := CounterSnapshot()
	if after.FastFunctions <= before.FastFunctions ||
		after.FastImplements <= before.FastImplements ||
		after.ScalarEvals <= before.ScalarEvals ||
		after.WordBlocks <= before.WordBlocks {
		t.Fatalf("counters did not advance: before %+v after %+v", before, after)
	}
}
