// Package lattice models four-terminal switch networks ("switching
// lattices") as introduced by Altun and Riedel and used throughout
// Section III-B of the DATE'17 paper.
//
// A lattice is an R×C grid of sites. Each site carries a literal (or a
// constant) controlling a four-terminal switch: when the literal
// evaluates to 1 all four terminals of the site are mutually connected,
// otherwise they are disconnected. The lattice computes
//
//   - its function f between the TOP and BOTTOM plates: f(a) = 1 iff a
//     4-connected path of conducting sites joins the top row to the
//     bottom row, and
//   - the dual function f^D between the LEFT and RIGHT plates: by planar
//     duality, f^D(a) = 1 iff an 8-connected path of conducting sites
//     joins the leftmost column to the rightmost column.
//
// The OR/AND composition rules of Altun–Riedel (padding column of 0s,
// padding row of 1s) are provided as structural operations; they are the
// building blocks of the P-circuit and D-reducible preprocessing.
package lattice

import (
	"fmt"
	"strings"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/truthtab"
)

// SiteKind discriminates lattice site contents.
type SiteKind uint8

// Site kinds: a constant-0 (never conducting), constant-1 (always
// conducting), or literal-controlled switch.
const (
	Const0 SiteKind = iota
	Const1
	LiteralSite
)

// Site is one crosspoint of the lattice.
type Site struct {
	Kind SiteKind
	Var  int  // valid when Kind == LiteralSite
	Neg  bool // complemented literal
}

// Lit builds a literal site.
func Lit(v int, neg bool) Site { return Site{Kind: LiteralSite, Var: v, Neg: neg} }

// On reports whether the site conducts under assignment a.
func (s Site) On(a uint64) bool {
	switch s.Kind {
	case Const0:
		return false
	case Const1:
		return true
	default:
		v := a>>uint(s.Var)&1 == 1
		return v != s.Neg
	}
}

// String renders the site in paper notation ("0", "1", "x3", "x3'").
func (s Site) String() string {
	switch s.Kind {
	case Const0:
		return "0"
	case Const1:
		return "1"
	default:
		return cube.Lit{Var: s.Var, Neg: s.Neg}.String()
	}
}

// Lattice is an R×C four-terminal switching array.
type Lattice struct {
	R, C  int
	sites []Site // row-major
}

// New returns an R×C lattice of constant-0 sites.
func New(r, c int) *Lattice {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("lattice: invalid shape %d×%d", r, c))
	}
	return &Lattice{R: r, C: c, sites: make([]Site, r*c)}
}

// At returns the site at row r, column c (0-indexed, row 0 on top).
func (l *Lattice) At(r, c int) Site { return l.sites[r*l.C+c] }

// Set assigns the site at row r, column c.
func (l *Lattice) Set(r, c int, s Site) { l.sites[r*l.C+c] = s }

// Area returns R·C, the paper's cost measure for lattices.
func (l *Lattice) Area() int { return l.R * l.C }

// Clone returns an independent copy.
func (l *Lattice) Clone() *Lattice {
	c := New(l.R, l.C)
	copy(c.sites, l.sites)
	return c
}

// Eval computes the top-to-bottom function at assignment a using BFS
// over 4-connected conducting sites.
func (l *Lattice) Eval(a uint64) bool {
	on := make([]bool, len(l.sites))
	for i, s := range l.sites {
		on[i] = s.On(a)
	}
	// Seed with conducting top-row sites.
	queue := make([]int, 0, l.C)
	visited := make([]bool, len(l.sites))
	for c := 0; c < l.C; c++ {
		if on[c] {
			queue = append(queue, c)
			visited[c] = true
		}
	}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		r, c := cur/l.C, cur%l.C
		if r == l.R-1 {
			return true
		}
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= l.R || nc < 0 || nc >= l.C {
				continue
			}
			ni := nr*l.C + nc
			if on[ni] && !visited[ni] {
				visited[ni] = true
				queue = append(queue, ni)
			}
		}
	}
	return false
}

// EvalDual computes the left-to-right dual reading: EvalDual(a) =
// ¬Eval(¬a) = f^D(a). By the planar (matching-lattice) duality of site
// percolation, a 4-connected top-bottom path of conducting sites exists
// exactly when no 8-connected left-right path of non-conducting sites
// does; evaluating the latter at the complemented assignment yields the
// dual. For literal sites "non-conducting under ¬a" coincides with
// "conducting under a"; Const1 sites never participate (dual of 1 is 0)
// and Const0 sites always do.
func (l *Lattice) EvalDual(a uint64) bool {
	on := make([]bool, len(l.sites))
	for i, s := range l.sites {
		on[i] = !s.On(^a)
	}
	queue := make([]int, 0, l.R)
	visited := make([]bool, len(l.sites))
	for r := 0; r < l.R; r++ {
		i := r * l.C
		if on[i] {
			queue = append(queue, i)
			visited[i] = true
		}
	}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		r, c := cur/l.C, cur%l.C
		if c == l.C-1 {
			return true
		}
		for dr := -1; dr <= 1; dr++ {
			for dc := -1; dc <= 1; dc++ {
				if dr == 0 && dc == 0 {
					continue
				}
				nr, nc := r+dr, c+dc
				if nr < 0 || nr >= l.R || nc < 0 || nc >= l.C {
					continue
				}
				ni := nr*l.C + nc
				if on[ni] && !visited[ni] {
					visited[ni] = true
					queue = append(queue, ni)
				}
			}
		}
	}
	return false
}

// Function expands the top-to-bottom function over n variables.
func (l *Lattice) Function(n int) truthtab.TT {
	t := truthtab.New(n)
	for a := uint64(0); a < t.Size(); a++ {
		if l.Eval(a) {
			t.SetBit(a, true)
		}
	}
	// One batched counter update per expansion (see functionWords).
	ctrScalarEvals.Add(t.Size())
	return t
}

// DualFunction expands the left-to-right dual reading over n variables.
func (l *Lattice) DualFunction(n int) truthtab.TT {
	t := truthtab.New(n)
	for a := uint64(0); a < t.Size(); a++ {
		if l.EvalDual(a) {
			t.SetBit(a, true)
		}
	}
	ctrScalarEvals.Add(t.Size())
	return t
}

// Implements reports whether the lattice computes f top-to-bottom.
func (l *Lattice) Implements(f truthtab.TT) bool {
	return l.Function(f.NumVars()).Equal(f)
}

// MaxVar returns one past the highest variable index used (0 if none).
func (l *Lattice) MaxVar() int {
	n := 0
	for _, s := range l.sites {
		if s.Kind == LiteralSite && s.Var+1 > n {
			n = s.Var + 1
		}
	}
	return n
}

// Paths enumerates the products of the simple top-to-bottom paths, after
// absorption, as a cover. Enumeration stops with an error once more than
// limit simple paths have been visited (path counts grow exponentially
// with lattice size). The OR of the returned products is the lattice
// function.
func (l *Lattice) Paths(limit int) (cube.Cover, error) {
	var out cube.Cover
	seen := make(map[cube.Cube]bool)
	visited := make([]bool, len(l.sites))
	count := 0
	var dfs func(idx int, cur cube.Cube, ok bool) error
	dfs = func(idx int, cur cube.Cube, ok bool) error {
		if !ok {
			return nil
		}
		r, c := idx/l.C, idx%l.C
		if r == l.R-1 {
			count++
			if count > limit {
				return fmt.Errorf("lattice: more than %d simple paths", limit)
			}
			if !seen[cur] {
				seen[cur] = true
				out = append(out, cur)
			}
			// Paths may continue sideways along the bottom row, but any
			// extension only adds literals, so the shorter product
			// absorbs it. Stop here.
			return nil
		}
		visited[idx] = true
		defer func() { visited[idx] = false }()
		for _, d := range [4][2]int{{1, 0}, {0, -1}, {0, 1}, {-1, 0}} {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= l.R || nc < 0 || nc >= l.C {
				continue
			}
			ni := nr*l.C + nc
			if visited[ni] {
				continue
			}
			nxt, ok := extendProduct(cur, l.sites[ni])
			if !ok {
				continue
			}
			if err := dfs(ni, nxt, true); err != nil {
				return err
			}
		}
		return nil
	}
	for c := 0; c < l.C; c++ {
		cur, ok := extendProduct(cube.Universe, l.sites[c])
		if !ok {
			continue
		}
		if err := dfs(c, cur, true); err != nil {
			return nil, err
		}
	}
	return out.Absorb(), nil
}

// extendProduct conjoins a site's literal onto a path product. The
// second result is false when the path dies (Const0 or contradiction).
func extendProduct(c cube.Cube, s Site) (cube.Cube, bool) {
	switch s.Kind {
	case Const0:
		return cube.Cube{}, false
	case Const1:
		return c, true
	default:
		return c.Intersect(cube.FromLiteral(s.Var, s.Neg))
	}
}

// String renders the lattice as an aligned ASCII grid with TOP/BOTTOM
// plate markers, mirroring the paper's Fig. 4 drawing style.
func (l *Lattice) String() string {
	width := 1
	cells := make([]string, len(l.sites))
	for i, s := range l.sites {
		cells[i] = s.String()
		if len(cells[i]) > width {
			width = len(cells[i])
		}
	}
	var sb strings.Builder
	rowLen := l.C*(width+1) + 1
	sb.WriteString(center("TOP", rowLen) + "\n")
	for r := 0; r < l.R; r++ {
		for c := 0; c < l.C; c++ {
			fmt.Fprintf(&sb, " %-*s", width, cells[r*l.C+c])
		}
		sb.WriteString("\n")
	}
	sb.WriteString(center("BOTTOM", rowLen) + "\n")
	return sb.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// --- composition rules (Altun–Riedel) ---

// FromCube returns the k×1 column lattice computing a product of k
// literals (a 1×1 constant-1 lattice for the universe cube).
func FromCube(c cube.Cube) *Lattice {
	if c.IsContradiction() {
		l := New(1, 1)
		l.Set(0, 0, Site{Kind: Const0})
		return l
	}
	lits := c.Literals()
	if len(lits) == 0 {
		l := New(1, 1)
		l.Set(0, 0, Site{Kind: Const1})
		return l
	}
	l := New(len(lits), 1)
	for i, lit := range lits {
		l.Set(i, 0, Lit(lit.Var, lit.Neg))
	}
	return l
}

// Constant returns a 1×1 lattice computing the constant b.
func Constant(b bool) *Lattice {
	l := New(1, 1)
	if b {
		l.Set(0, 0, Site{Kind: Const1})
	}
	return l
}

// Or composes two lattices side by side with a separating column of 0s;
// the shorter operand is padded at the bottom with rows of 1s. The
// result computes f ∨ g.
func Or(a, b *Lattice) *Lattice {
	r := a.R
	if b.R > r {
		r = b.R
	}
	out := New(r, a.C+1+b.C)
	// Separator column stays Const0 (zero value).
	blit := func(dst *Lattice, src *Lattice, colOff int) {
		for i := 0; i < r; i++ {
			for j := 0; j < src.C; j++ {
				if i < src.R {
					dst.Set(i, colOff+j, src.At(i, j))
				} else {
					dst.Set(i, colOff+j, Site{Kind: Const1})
				}
			}
		}
	}
	blit(out, a, 0)
	blit(out, b, a.C+1)
	return out
}

// And composes two lattices stacked with a separating row of 1s; the
// narrower operand is padded at the right with columns of 0s. The result
// computes f ∧ g.
func And(a, b *Lattice) *Lattice {
	c := a.C
	if b.C > c {
		c = b.C
	}
	out := New(a.R+1+b.R, c)
	for j := 0; j < c; j++ {
		out.Set(a.R, j, Site{Kind: Const1})
	}
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.Set(i, j, a.At(i, j))
		}
	}
	for i := 0; i < b.R; i++ {
		for j := 0; j < b.C; j++ {
			out.Set(a.R+1+i, j, b.At(i, j))
		}
	}
	return out
}

// OrAll folds Or over one or more lattices.
func OrAll(ls ...*Lattice) *Lattice {
	if len(ls) == 0 {
		panic("lattice: OrAll of nothing")
	}
	out := ls[0]
	for _, l := range ls[1:] {
		out = Or(out, l)
	}
	return out
}

// AndAll folds And over one or more lattices.
func AndAll(ls ...*Lattice) *Lattice {
	if len(ls) == 0 {
		panic("lattice: AndAll of nothing")
	}
	out := ls[0]
	for _, l := range ls[1:] {
		out = And(out, l)
	}
	return out
}
