// Package yield is the bit-sliced multi-die yield engine: it answers
// "what fraction of fabricated dies can realize this application?" by
// processing dies 64 at a time in lane-word form instead of one scalar
// defect map at a time.
//
// The paper's yield question (Section IV's defect-aware mapping story)
// is embarrassingly parallel across dies, and PR 5 already made the
// per-die primitives bit-parallel along the column axis. This package
// applies the remaining 64x axis — the same 64-lanes-per-word trick the
// redundancy engine uses for Monte Carlo trials — across dies:
//
//  1. Draw. A worker draws a group of 64 dies' defect planes directly
//     into defect.LanePlanes lane words (die-major transposed layout),
//     one seeded stream per die, bit-for-bit the stream RandomInto
//     would have produced for the same die seed.
//  2. Fast check. A fixed schedule of disjoint block-diagonal candidate
//     mappings (candidate k places the application at rows/cols k·appR,
//     k·appC) is probed with bism.CheckLanes — one BIST session per
//     candidate covering all 64 dies at once as word intersections. A
//     die passing candidate k is done: it took k+1 configurations and
//     k+1 BIST calls, and its mapping is the shared candidate.
//  3. Demote. Only dies failing every candidate fall back to the
//     retained scalar path: reseed the die's stream, redraw its map
//     with RandomInto (identical bits, and it leaves the RNG exactly
//     where the lane draw did), and run the requested bism mapper with
//     its full greedy/hybrid repair machinery.
//
// Because the candidates are disjoint, their failure events are
// independent under uniform defects, so the demotion rate falls
// geometrically with the schedule length and almost every die resolves
// in step 2. ScalarRunner executes the identical per-die algorithm with
// scalar checks; the property suite pins the two runners bit-for-bit
// equal — mappings, stats, and success flags — across word boundaries
// and degenerate defect densities.
package yield

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"nanoxbar/internal/bism"
	"nanoxbar/internal/bitlane"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/xrand"
)

// Spec is one yield sweep: map Dies random ChipSize×ChipSize dies drawn
// from Params, placing App through Scheme when the fast path demotes.
type Spec struct {
	// App is the application to place (shared, read-only).
	App *bism.App
	// Scheme maps demoted dies — the scalar mapper with repair.
	Scheme bism.Mapper
	// ChipSize is the square die side.
	ChipSize int
	// Params draws each die's defects.
	Params defect.Params
	// Dies is the sweep size.
	Dies int
	// Seed derives per-die streams via xrand.SubSeed(Seed, die).
	Seed int64
	// MaxAttempts bounds the demoted mapper's configurations per die.
	MaxAttempts int
	// Parallel bounds worker goroutines (default 1). Results do not
	// depend on it: every die's outcome is a function of its seed only.
	Parallel int
}

// validate rejects specs the runners cannot execute.
func (s Spec) validate() error {
	switch {
	case s.App == nil:
		return fmt.Errorf("yield: nil application")
	case s.Scheme == nil:
		return fmt.Errorf("yield: nil mapping scheme")
	case s.ChipSize < s.App.R || s.ChipSize < s.App.C:
		return fmt.Errorf("yield: %d×%d application exceeds chip size %d", s.App.R, s.App.C, s.ChipSize)
	case s.Dies < 0:
		return fmt.Errorf("yield: negative die count %d", s.Dies)
	case s.MaxAttempts < 1:
		return fmt.Errorf("yield: max attempts %d < 1", s.MaxAttempts)
	}
	return nil
}

func (s Spec) parallel() int {
	if s.Parallel < 1 {
		return 1
	}
	return s.Parallel
}

// DieResult is one die's outcome.
type DieResult struct {
	// Die is the die index in [0, Spec.Dies).
	Die int
	// Mapping is the successful placement, nil on failure. Fast dies
	// share the schedule's candidate mapping: treat it as read-only.
	Mapping *bism.Mapping
	// Stats is the self-mapping effort, fast-path probes included.
	Stats bism.Stats
	// Fast reports the die resolved on the candidate schedule without
	// scalar demotion.
	Fast bool
	// Err is set when the die could not be processed at all (a panic in
	// the mapper); Mapping and Stats are then meaningless.
	Err error
}

// Runner executes yield sweeps. Run invokes emit exactly once per die
// (serialized, completion order across groups, die order within one
// worker's group) and returns early with ctx.Err() when canceled —
// dies not yet started are then never emitted.
type Runner interface {
	Name() string
	Run(ctx context.Context, spec Spec, emit func(DieResult)) error
}

// maxCandidates caps the fast-path probe schedule. Eight disjoint
// candidates drive the expected demotion rate to p_fail^8 while keeping
// the schedule (and the BIST-call count of the unluckiest fast die)
// small; past that the scalar mapper's diagnosis-guided repair is the
// better spend.
const maxCandidates = 8

// candidateCount is the schedule length for an app on an n-chip: as
// many disjoint block placements as fit, capped.
func candidateCount(app *bism.App, n int) int {
	k := n / app.R
	if c := n / app.C; c < k {
		k = c
	}
	if k > maxCandidates {
		k = maxCandidates
	}
	return k
}

// candidateMappings materializes the schedule: candidate k occupies
// rows [k·appR, (k+1)·appR) and cols [k·appC, (k+1)·appC). Disjoint by
// construction, so failure events on distinct candidates touch
// disjoint chip resources.
func candidateMappings(app *bism.App, n int) []*bism.Mapping {
	cands := make([]*bism.Mapping, candidateCount(app, n))
	for k := range cands {
		m := &bism.Mapping{Rows: make([]int, app.R), Cols: make([]int, app.C)}
		for i := range m.Rows {
			m.Rows[i] = k*app.R + i
		}
		for j := range m.Cols {
			m.Cols[j] = k*app.C + j
		}
		cands[k] = m
	}
	return cands
}

// fastStats is the effort of a die that passed candidate k: one
// configuration and one BIST session per candidate probed.
func fastStats(k int) bism.Stats {
	return bism.Stats{Configs: k + 1, BISTCalls: k + 1, Success: true}
}

// LaneRunner is the bit-sliced production path.
type LaneRunner struct{}

// Name implements Runner.
func (LaneRunner) Name() string { return "lane64" }

// Run implements Runner: groups of 64 dies are drawn into lane planes
// and probed per candidate as single word-kernel BIST sessions; only
// failing lanes touch the scalar mapper.
func (LaneRunner) Run(ctx context.Context, spec Spec, emit func(DieResult)) error {
	if err := spec.validate(); err != nil {
		return err
	}
	par := spec.parallel()
	// Groups default to the full 64-die word. A small sweep on a wide
	// worker pool would strand most workers (64 dies is ONE group), so
	// shrink the group size until every worker has a group; outcomes are
	// per-die seeded, so the partition cannot change them. The floor
	// keeps the per-group candidate scans amortized over enough lanes.
	groupSize := 64
	if g := (spec.Dies + 63) / 64; g < par {
		groupSize = (spec.Dies + par - 1) / par
		if groupSize < 8 {
			groupSize = 8
		}
	}
	groups := (spec.Dies + groupSize - 1) / groupSize
	if par > groups {
		par = groups
	}
	cands := candidateMappings(spec.App, spec.ChipSize)
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		emitMu sync.Mutex
	)
	done := ctx.Done()
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			// Per-worker scratch, reused across every group the worker
			// pulls from the shared counter: the lane planes, one scalar
			// map for demotions, the reseedable die stream, and the
			// per-group result buffer.
			lp := defect.NewLanePlanes(spec.ChipSize, spec.ChipSize)
			chip := defect.NewMap(spec.ChipSize, spec.ChipSize)
			src, rng := xrand.New()
			var out [64]DieResult
			for {
				// The group boundary is the cancellation point: a sweep
				// canceled mid-flight stops drawing new groups; the
				// group being processed finishes.
				select {
				case <-done:
					return
				default:
				}
				g := int(next.Add(1)) - 1
				if g >= groups {
					return
				}
				die0 := g * groupSize
				lanes := spec.Dies - die0
				if lanes > groupSize {
					lanes = groupSize
				}
				runLaneGroup(spec, cands, die0, lanes, lp, chip, src, rng, &out)
				emitMu.Lock()
				for l := 0; l < lanes; l++ {
					emit(out[l])
				}
				emitMu.Unlock()
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// runLaneGroup processes dies [die0, die0+lanes) into out[0:lanes]. A
// panic anywhere in the group (defect draw, lane check, demoted mapper)
// becomes an Err on every die of the group rather than unwinding the
// worker goroutine.
func runLaneGroup(spec Spec, cands []*bism.Mapping, die0, lanes int, lp *defect.LanePlanes, chip *defect.Map, src *xrand.SplitMix, rng *rand.Rand, out *[64]DieResult) {
	defer func() {
		if r := recover(); r != nil {
			for l := 0; l < lanes; l++ {
				out[l] = DieResult{Die: die0 + l, Err: fmt.Errorf("yield: panic mapping die group at %d: %v", die0, r)}
			}
		}
	}()
	lp.Reset()
	for l := 0; l < lanes; l++ {
		src.Seed(xrand.SubSeed(spec.Seed, die0+l))
		lp.DrawLane(l, spec.Params, rng)
	}
	pending := bitlane.Mask(lanes)
	for k, cand := range cands {
		if pending == 0 {
			break
		}
		failed := bism.CheckLanes(spec.App, lp, k*spec.App.R, k*spec.App.C, pending)
		passed := pending &^ failed
		pending &= failed
		for p := passed; p != 0; p &= p - 1 {
			l := bits.TrailingZeros64(p)
			out[l] = DieResult{Die: die0 + l, Mapping: cand, Stats: fastStats(k), Fast: true}
		}
	}
	// Demote the lanes no candidate fit: replay the die scalar-side.
	for p := pending; p != 0; p &= p - 1 {
		l := bits.TrailingZeros64(p)
		die := die0 + l
		src.Seed(xrand.SubSeed(spec.Seed, die))
		defect.RandomInto(chip, spec.Params, rng)
		m, st := spec.Scheme.Map(bism.NewChip(chip), spec.App, spec.MaxAttempts, rng)
		st.Configs += len(cands)
		st.BISTCalls += len(cands)
		out[l] = DieResult{Die: die, Mapping: m, Stats: st}
	}
}

// ScalarRunner is the retained reference path: the identical per-die
// algorithm — same seeds, same candidate schedule, same demotion — with
// every check running on one scalar defect map. The property suite
// holds LaneRunner bit-for-bit to this.
type ScalarRunner struct{}

// Name implements Runner.
func (ScalarRunner) Name() string { return "scalar" }

// Run implements Runner.
func (ScalarRunner) Run(ctx context.Context, spec Spec, emit func(DieResult)) error {
	if err := spec.validate(); err != nil {
		return err
	}
	par := spec.parallel()
	if par > spec.Dies {
		par = spec.Dies
	}
	cands := candidateMappings(spec.App, spec.ChipSize)
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		emitMu sync.Mutex
	)
	done := ctx.Done()
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			chip := defect.NewMap(spec.ChipSize, spec.ChipSize)
			src, rng := xrand.New()
			for {
				select {
				case <-done:
					return
				default:
				}
				die := int(next.Add(1)) - 1
				if die >= spec.Dies {
					return
				}
				dr := runScalarDie(spec, cands, die, chip, src, rng)
				emitMu.Lock()
				emit(dr)
				emitMu.Unlock()
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// runScalarDie executes the per-die algorithm on scalar state.
func runScalarDie(spec Spec, cands []*bism.Mapping, die int, chip *defect.Map, src *xrand.SplitMix, rng *rand.Rand) (dr DieResult) {
	defer func() {
		if r := recover(); r != nil {
			dr = DieResult{Die: die, Err: fmt.Errorf("yield: panic mapping die %d: %v", die, r)}
		}
	}()
	src.Seed(xrand.SubSeed(spec.Seed, die))
	defect.RandomInto(chip, spec.Params, rng)
	ch := bism.NewChip(chip)
	for k, cand := range cands {
		if bism.Validate(ch, spec.App, cand) {
			return DieResult{Die: die, Mapping: cand, Stats: fastStats(k), Fast: true}
		}
	}
	m, st := spec.Scheme.Map(ch, spec.App, spec.MaxAttempts, rng)
	st.Configs += len(cands)
	st.BISTCalls += len(cands)
	return DieResult{Die: die, Mapping: m, Stats: st}
}
