package yield

import (
	"context"
	"math/rand"
	"testing"

	"nanoxbar/internal/bism"
	"nanoxbar/internal/defect"
)

// benchSpec mirrors the engine's yield-sweep workload — 64×64 dies at
// 2% crosspoint density under the greedy mapper — sized to one full
// lane group per iteration.
func benchSpec(b *testing.B) Spec {
	b.Helper()
	return Spec{
		App:    bism.RandomApp(4, 6, 0.5, rand.New(rand.NewSource(17))),
		Scheme: bism.Greedy{}, ChipSize: 64,
		Params: defect.UniformCrosspoint(0.02),
		Dies:   64, Seed: 42, MaxAttempts: 200,
		Parallel: 1, // single-threaded: the CI gate must not depend on core count
	}
}

// BenchmarkYieldLane64 is the CI-gated number: one 64-die lane group
// per op on a single worker — draw 64 defect planes into lane words,
// probe the candidate schedule as word intersections, demote the few
// failing lanes to the scalar mapper. Core-count independent by
// construction, unlike the parallel engine sweep it feeds.
func BenchmarkYieldLane64(b *testing.B) {
	spec := benchSpec(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok := 0
		if err := (LaneRunner{}).Run(ctx, spec, func(dr DieResult) {
			if dr.Stats.Success {
				ok++
			}
		}); err != nil {
			b.Fatal(err)
		}
		if ok == 0 {
			b.Fatal("no die mapped")
		}
	}
}

// BenchmarkYieldScalar64 is the retained reference path on the same
// workload — the before side of the lane speedup.
func BenchmarkYieldScalar64(b *testing.B) {
	spec := benchSpec(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok := 0
		if err := (ScalarRunner{}).Run(ctx, spec, func(dr DieResult) {
			if dr.Stats.Success {
				ok++
			}
		}); err != nil {
			b.Fatal(err)
		}
		if ok == 0 {
			b.Fatal("no die mapped")
		}
	}
}
