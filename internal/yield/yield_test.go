package yield

import (
	"context"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"nanoxbar/internal/bism"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/xrand"
)

// testApp is a fixed mid-density application; seeded so every test run
// sees the same footprint.
func testApp(tb testing.TB) *bism.App {
	tb.Helper()
	return bism.RandomApp(4, 6, 0.5, rand.New(rand.NewSource(17)))
}

// collect runs r over spec and returns results indexed by die,
// verifying emit fires exactly once per die.
func collect(tb testing.TB, r Runner, spec Spec) []DieResult {
	tb.Helper()
	out := make([]DieResult, spec.Dies)
	seen := make([]bool, spec.Dies)
	// emit runs on worker goroutines: Errorf only (Fatalf would Goexit a
	// worker and deadlock the runner's WaitGroup).
	err := r.Run(context.Background(), spec, func(dr DieResult) {
		if dr.Die < 0 || dr.Die >= spec.Dies {
			tb.Errorf("%s emitted die %d outside [0,%d)", r.Name(), dr.Die, spec.Dies)
			return
		}
		if seen[dr.Die] {
			tb.Errorf("%s emitted die %d twice", r.Name(), dr.Die)
		}
		seen[dr.Die] = true
		out[dr.Die] = dr
	})
	if err != nil {
		tb.Fatalf("%s: %v", r.Name(), err)
	}
	if tb.Failed() {
		tb.FailNow()
	}
	for die, ok := range seen {
		if !ok {
			tb.Fatalf("%s never emitted die %d", r.Name(), die)
		}
	}
	return out
}

func sameMapping(a, b *bism.Mapping) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || reflect.DeepEqual(*a, *b)
}

// TestLaneMatchesScalarBitForBit is the tentpole contract: the lane
// path equals the retained scalar reference die for die — mapping,
// stats, fast flag — across die counts that are not multiples of 64
// (tail-lane masking), all-defective and zero-defect planes, every
// mapping scheme, and both serial and parallel execution.
func TestLaneMatchesScalarBitForBit(t *testing.T) {
	app := testApp(t)
	schemes := []bism.Mapper{bism.Greedy{}, bism.Blind{}, bism.Hybrid{}}
	densities := []float64{0, 0.03, 1.0}
	dieCounts := []int{1, 63, 64, 65, 130}
	for _, scheme := range schemes {
		for _, density := range densities {
			for _, dies := range dieCounts {
				for _, par := range []int{1, 4} {
					spec := Spec{
						App: app, Scheme: scheme, ChipSize: 48,
						Params: defect.UniformCrosspoint(density),
						Dies:   dies, Seed: 99, MaxAttempts: 50, Parallel: par,
					}
					lane := collect(t, LaneRunner{}, spec)
					scalar := collect(t, ScalarRunner{}, spec)
					for die := range lane {
						l, s := lane[die], scalar[die]
						if l.Err != nil || s.Err != nil {
							t.Fatalf("%s d=%v dies=%d par=%d die %d: unexpected errors %v / %v",
								scheme.Name(), density, dies, par, die, l.Err, s.Err)
						}
						if l.Fast != s.Fast || !reflect.DeepEqual(l.Stats, s.Stats) || !sameMapping(l.Mapping, s.Mapping) {
							t.Fatalf("%s d=%v dies=%d par=%d die %d: lane %+v != scalar %+v",
								scheme.Name(), density, dies, par, die, l, s)
						}
					}
				}
			}
		}
	}
}

// TestWireFaultDensitiesAgree extends the equivalence over wire faults
// and clustered maps, which exercise the bridge/broken lane planes.
func TestWireFaultDensitiesAgree(t *testing.T) {
	app := testApp(t)
	params := []defect.Params{
		{PStuckOpen: 0.01, PStuckClosed: 0.01, PRowBreak: 0.05, PColBreak: 0.05,
			PRowBridge: 0.05, PColBridge: 0.05},
		{PStuckOpen: 0.01, Clustered: true, ClusterCount: 2, ClusterRadius: 5, ClusterBoost: 20},
	}
	for pi, p := range params {
		spec := Spec{
			App: app, Scheme: bism.Greedy{}, ChipSize: 70,
			Params: p, Dies: 100, Seed: 3, MaxAttempts: 40, Parallel: 2,
		}
		lane := collect(t, LaneRunner{}, spec)
		scalar := collect(t, ScalarRunner{}, spec)
		for die := range lane {
			l, s := lane[die], scalar[die]
			if l.Fast != s.Fast || !reflect.DeepEqual(l.Stats, s.Stats) || !sameMapping(l.Mapping, s.Mapping) {
				t.Fatalf("params[%d] die %d: lane %+v != scalar %+v", pi, die, l, s)
			}
		}
	}
}

// TestZeroDefectAllFast checks the fast path's best case: defect-free
// dies all pass the first candidate with exactly one BIST session.
func TestZeroDefectAllFast(t *testing.T) {
	app := testApp(t)
	spec := Spec{
		App: app, Scheme: bism.Greedy{}, ChipSize: 48,
		Dies: 130, Seed: 1, MaxAttempts: 10, Parallel: 3,
	}
	for _, dr := range collect(t, LaneRunner{}, spec) {
		if !dr.Fast || !dr.Stats.Success || dr.Stats.Configs != 1 || dr.Stats.BISTCalls != 1 {
			t.Fatalf("defect-free die %d: %+v, want fast single-probe success", dr.Die, dr)
		}
		if dr.Mapping == nil {
			t.Fatalf("defect-free die %d: nil mapping", dr.Die)
		}
	}
}

// TestFastMappingsValidate spot-checks that fast-path mappings really
// place the application on the die they were reported for.
func TestFastMappingsValidate(t *testing.T) {
	app := testApp(t)
	spec := Spec{
		App: app, Scheme: bism.Greedy{}, ChipSize: 48,
		Params: defect.UniformCrosspoint(0.05),
		Dies:   64, Seed: 12, MaxAttempts: 50, Parallel: 1,
	}
	chip := defect.NewMap(48, 48)
	src, rng := xrand.New()
	for _, dr := range collect(t, LaneRunner{}, spec) {
		if dr.Stats.Success {
			src.Seed(xrand.SubSeed(spec.Seed, dr.Die))
			defect.RandomInto(chip, spec.Params, rng)
			if !bism.Validate(bism.NewChip(chip), app, dr.Mapping) {
				t.Fatalf("die %d: reported mapping fails validation (fast=%v)", dr.Die, dr.Fast)
			}
		}
	}
}

// TestSpecValidation checks unrunnable specs are rejected up front.
func TestSpecValidation(t *testing.T) {
	app := testApp(t)
	good := Spec{App: app, Scheme: bism.Greedy{}, ChipSize: 48, Dies: 1, MaxAttempts: 1}
	bad := []Spec{
		{},
		{App: app, ChipSize: 48, Dies: 1, MaxAttempts: 1},
		{App: app, Scheme: bism.Greedy{}, ChipSize: 3, Dies: 1, MaxAttempts: 1},
		{App: app, Scheme: bism.Greedy{}, ChipSize: 48, Dies: -1, MaxAttempts: 1},
		{App: app, Scheme: bism.Greedy{}, ChipSize: 48, Dies: 1},
	}
	for _, r := range []Runner{LaneRunner{}, ScalarRunner{}} {
		if err := r.Run(context.Background(), good, func(DieResult) {}); err != nil {
			t.Fatalf("%s rejected a valid spec: %v", r.Name(), err)
		}
		for i, spec := range bad {
			if err := r.Run(context.Background(), spec, func(DieResult) {}); err == nil {
				t.Fatalf("%s accepted bad spec %d", r.Name(), i)
			}
		}
	}
}

// TestCancellationStopsAtGroupBoundary checks a canceled sweep returns
// the context error without emitting the remaining dies.
func TestCancellationStopsAtGroupBoundary(t *testing.T) {
	app := testApp(t)
	spec := Spec{
		App: app, Scheme: bism.Greedy{}, ChipSize: 64,
		Params: defect.UniformCrosspoint(0.02),
		Dies:   50_000, Seed: 5, MaxAttempts: 50, Parallel: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int64
	err := LaneRunner{}.Run(ctx, spec, func(DieResult) {
		if emitted.Add(1) == 3 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if n := emitted.Load(); n == 0 || n >= int64(spec.Dies) {
		t.Fatalf("canceled sweep emitted %d of %d dies", n, spec.Dies)
	}
}

// panicMapper stands in for a buggy scheme: demotion must surface the
// panic as per-die errors, not kill the worker goroutine.
type panicMapper struct{}

func (panicMapper) Name() string { return "panic" }
func (panicMapper) Map(*bism.Chip, *bism.App, int, *rand.Rand) (*bism.Mapping, bism.Stats) {
	panic("boom")
}

func TestMapperPanicBecomesDieErrors(t *testing.T) {
	app := testApp(t)
	spec := Spec{
		App: app, Scheme: panicMapper{}, ChipSize: 48,
		Params: defect.UniformCrosspoint(1.0), // all dies demote
		Dies:   70, Seed: 8, MaxAttempts: 5, Parallel: 2,
	}
	for _, r := range []Runner{LaneRunner{}, ScalarRunner{}} {
		count := 0
		err := r.Run(context.Background(), spec, func(dr DieResult) {
			count++
			if dr.Err == nil {
				t.Errorf("%s die %d: expected an error from the panicking mapper", r.Name(), dr.Die)
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if count != spec.Dies {
			t.Fatalf("%s emitted %d of %d dies", r.Name(), count, spec.Dies)
		}
	}
}
