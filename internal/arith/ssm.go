package arith

import (
	"fmt"
	"math/bits"

	"nanoxbar/internal/isop"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/qm"
	"nanoxbar/internal/truthtab"
)

// MooreSpec describes a Moore machine: Next[s][in] is the successor of
// state s on input symbol in (inputs are InBits-wide symbols), Out[s]
// the state's output bit. State 0 is the reset state.
type MooreSpec struct {
	NumStates int
	InBits    int
	Next      [][]int
	Out       []bool
}

// Validate checks spec consistency.
func (sp *MooreSpec) Validate() error {
	if sp.NumStates < 1 || sp.InBits < 0 || sp.InBits > 8 {
		return fmt.Errorf("arith: bad SSM shape (%d states, %d input bits)", sp.NumStates, sp.InBits)
	}
	if len(sp.Next) != sp.NumStates || len(sp.Out) != sp.NumStates {
		return fmt.Errorf("arith: table sizes do not match state count")
	}
	for s, row := range sp.Next {
		if len(row) != 1<<uint(sp.InBits) {
			return fmt.Errorf("arith: state %d has %d transitions, want %d", s, len(row), 1<<uint(sp.InBits))
		}
		for _, t := range row {
			if t < 0 || t >= sp.NumStates {
				return fmt.Errorf("arith: state %d transitions to invalid %d", s, t)
			}
		}
	}
	return nil
}

// StateBits returns the register width ⌈log2(NumStates)⌉.
func (sp *MooreSpec) StateBits() int {
	if sp.NumStates <= 1 {
		return 1
	}
	return bits.Len(uint(sp.NumStates - 1))
}

// SSM is a synthesized synchronous state machine: lattices for every
// next-state bit and for the output, plus a behavioral D-flip-flop state
// register (the crossbar memory elements of the paper's objective 3 are
// modeled behaviorally; see DESIGN.md).
type SSM struct {
	Spec      *MooreSpec
	NextBits  []*lattice.Lattice // over stateBits+InBits variables
	OutBit    *lattice.Lattice   // over stateBits variables
	state     int
	stateBits int
}

// SynthesizeSSM builds the machine's combinational logic on lattices.
// Unreachable state codes become don't-cares for the minimizers.
func SynthesizeSSM(sp *MooreSpec, opts latsynth.Options) (*SSM, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sb := sp.StateBits()
	nVars := sb + sp.InBits
	stateMask := uint64(1)<<uint(sb) - 1
	valid := truthtab.FromFunc(nVars, func(a uint64) bool {
		return int(a&stateMask) < sp.NumStates
	})
	dc := valid.Not()
	m := &SSM{Spec: sp, stateBits: sb}
	for b := 0; b < sb; b++ {
		on := truthtab.FromFunc(nVars, func(a uint64) bool {
			s := int(a & stateMask)
			if s >= sp.NumStates {
				return false
			}
			in := int(a >> uint(sb))
			return sp.Next[s][in]>>uint(b)&1 == 1
		})
		g := flexibleCover(on, dc, opts)
		res, err := latsynth.DualMethod(g, opts)
		if err != nil {
			return nil, err
		}
		m.NextBits = append(m.NextBits, res.Lattice)
	}
	outOn := truthtab.FromFunc(sb, func(a uint64) bool {
		return int(a) < sp.NumStates && sp.Out[a]
	})
	outDC := truthtab.FromFunc(sb, func(a uint64) bool { return int(a) >= sp.NumStates })
	g := flexibleCover(outOn, outDC, opts)
	res, err := latsynth.DualMethod(g, opts)
	if err != nil {
		return nil, err
	}
	m.OutBit = res.Lattice
	return m, nil
}

// flexibleCover picks a function in [on, on∨dc] with a small cover.
func flexibleCover(on, dc truthtab.TT, opts latsynth.Options) truthtab.TT {
	if opts.Exact {
		if cov, err := qm.Minimize(on, dc, opts.QM); err == nil {
			return cov.ToTT(on.NumVars())
		}
	}
	return isop.Cover(on, on.Or(dc)).ToTT(on.NumVars())
}

// Reset returns the machine to state 0.
func (m *SSM) Reset() { m.state = 0 }

// State returns the current state.
func (m *SSM) State() int { return m.state }

// Output returns the Moore output of the current state, evaluated on
// the output lattice.
func (m *SSM) Output() bool {
	return m.OutBit.Eval(uint64(m.state))
}

// Step advances one clock with the given input symbol, evaluating the
// next-state lattices, and returns the new state's output.
func (m *SSM) Step(in uint64) bool {
	a := uint64(m.state) | in<<uint(m.stateBits)
	next := 0
	for b, l := range m.NextBits {
		if l.Eval(a) {
			next |= 1 << uint(b)
		}
	}
	m.state = next
	return m.Output()
}

// Run resets the machine and feeds the input sequence, returning the
// output trace (one sample per clock, after each step).
func (m *SSM) Run(inputs []uint64) []bool {
	m.Reset()
	out := make([]bool, len(inputs))
	for i, in := range inputs {
		out[i] = m.Step(in)
	}
	return out
}

// TotalArea sums the lattice areas of the machine's logic.
func (m *SSM) TotalArea() int {
	area := m.OutBit.Area()
	for _, l := range m.NextBits {
		area += l.Area()
	}
	return area
}

// ReferenceRun simulates the spec directly (no lattices): the golden
// model for equivalence tests.
func (sp *MooreSpec) ReferenceRun(inputs []uint64) []bool {
	s := 0
	out := make([]bool, len(inputs))
	for i, in := range inputs {
		s = sp.Next[s][in]
		out[i] = sp.Out[s]
	}
	return out
}

// SequenceDetector101 is the classic "detect 101" Moore machine used by
// the examples: output 1 exactly after seeing the pattern 1,0,1.
func SequenceDetector101() *MooreSpec {
	// States: 0 = idle, 1 = saw 1, 2 = saw 10, 3 = saw 101 (accept).
	return &MooreSpec{
		NumStates: 4,
		InBits:    1,
		Next: [][]int{
			{0, 1}, // idle: on 0 stay, on 1 → saw1
			{2, 1}, // saw1: on 0 → saw10, on 1 stay
			{0, 3}, // saw10: on 0 → idle, on 1 → accept
			{2, 1}, // accept: overlapping matches: on 0 → saw10, on 1 → saw1
		},
		Out: []bool{false, false, false, true},
	}
}
