package arith

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/truthtab"
)

var opts = latsynth.DefaultOptions()

func TestNetworkSingleNode(t *testing.T) {
	nw := NewNetwork(2)
	and2 := truthtab.Var(2, 0).And(truthtab.Var(2, 1))
	s := nw.AddNode(synthLattice(and2, opts), []Signal{0, 1})
	nw.Outputs = []Signal{s}
	for a := uint64(0); a < 4; a++ {
		want := a == 3
		if nw.Eval(a)[0] != want {
			t.Fatalf("and node wrong at %b", a)
		}
	}
}

func TestNetworkChaining(t *testing.T) {
	// (x0 AND x1) OR x2 via two nodes.
	nw := NewNetwork(3)
	and2 := truthtab.Var(2, 0).And(truthtab.Var(2, 1))
	or2 := truthtab.Var(2, 0).Or(truthtab.Var(2, 1))
	s1 := nw.AddNode(synthLattice(and2, opts), []Signal{0, 1})
	s2 := nw.AddNode(synthLattice(or2, opts), []Signal{s1, 2})
	nw.Outputs = []Signal{s2}
	for a := uint64(0); a < 8; a++ {
		want := (a&3 == 3) || a>>2&1 == 1
		if nw.Eval(a)[0] != want {
			t.Fatalf("chained network wrong at %b", a)
		}
	}
}

func TestRippleAdderExhaustiveSmall(t *testing.T) {
	for n := 1; n <= 4; n++ {
		nw := RippleAdder(n, opts)
		if len(nw.Outputs) != n+1 {
			t.Fatalf("adder outputs = %d", len(nw.Outputs))
		}
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				if got := AddUint(nw, n, a, b); got != a+b {
					t.Fatalf("%d-bit adder: %d+%d = %d", n, a, b, got)
				}
			}
		}
	}
}

func TestRippleAdderRandomWide(t *testing.T) {
	n := 8
	nw := RippleAdder(n, opts)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := rng.Uint64() & 0xff
		b := rng.Uint64() & 0xff
		if got := AddUint(nw, n, a, b); got != a+b {
			t.Fatalf("8-bit adder: %d+%d = %d", a, b, got)
		}
	}
}

func TestAdderAreaLinear(t *testing.T) {
	// Ripple structure must scale linearly (≈ per-bit cost), unlike a
	// flat single-lattice high bit which explodes.
	a2 := RippleAdder(2, opts).TotalArea()
	a8 := RippleAdder(8, opts).TotalArea()
	if a8 > 5*a2*4 { // generous linearity envelope
		t.Fatalf("adder area grows superlinearly: %d → %d", a2, a8)
	}
	if RippleAdder(4, opts).NumLattices() != 2+3*2 {
		t.Fatal("expected 2 half-adder + 6 full-adder lattices")
	}
}

func TestComparatorExhaustive(t *testing.T) {
	for n := 1; n <= 4; n++ {
		nw := Comparator(n, opts)
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				if got := GreaterUint(nw, n, a, b); got != (a > b) {
					t.Fatalf("%d-bit comparator: %d>%d = %v", n, a, b, got)
				}
			}
		}
	}
}

func TestQuickAdder(t *testing.T) {
	n := 6
	nw := RippleAdder(n, opts)
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	prop := func(a, b uint64) bool {
		a &= 63
		b &= 63
		return AddUint(nw, n, a, b) == a+b
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkValidation(t *testing.T) {
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	nw := NewNetwork(2)
	l := synthLattice(truthtab.Var(2, 0).And(truthtab.Var(2, 1)), opts)
	mustPanic(func() { nw.AddNode(l, []Signal{0}) })     // too few inputs
	mustPanic(func() { nw.AddNode(l, []Signal{0, 5}) })  // forward reference
	mustPanic(func() { nw.AddNode(l, []Signal{0, -1}) }) // negative
	mustPanic(func() { RippleAdder(0, opts) })
	mustPanic(func() { Comparator(0, opts) })
}

func TestSSM101Detector(t *testing.T) {
	spec := SequenceDetector101()
	m, err := SynthesizeSSM(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	in := []uint64{1, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1}
	got := m.Run(in)
	want := spec.ReferenceRun(in)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: lattice SSM %v, reference %v", i, got, want)
		}
	}
	// Overlap check: 10101 fires at positions 2 and 4.
	got = m.Run([]uint64{1, 0, 1, 0, 1})
	if !got[2] || !got[4] || got[0] || got[1] || got[3] {
		t.Fatalf("overlap handling wrong: %v", got)
	}
}

func TestSSMEquivalenceRandomMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		states := 2 + rng.Intn(5)
		inBits := 1 + rng.Intn(2)
		spec := &MooreSpec{NumStates: states, InBits: inBits}
		for s := 0; s < states; s++ {
			row := make([]int, 1<<uint(inBits))
			for i := range row {
				row[i] = rng.Intn(states)
			}
			spec.Next = append(spec.Next, row)
			spec.Out = append(spec.Out, rng.Intn(2) == 1)
		}
		m, err := SynthesizeSSM(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]uint64, 64)
		for i := range in {
			in[i] = uint64(rng.Intn(1 << uint(inBits)))
		}
		got := m.Run(in)
		want := spec.ReferenceRun(in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("machine %d diverges at step %d", trial, i)
			}
		}
	}
}

func TestSSMValidation(t *testing.T) {
	bad := &MooreSpec{NumStates: 2, InBits: 1, Next: [][]int{{0, 5}, {0, 0}}, Out: []bool{false, true}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid transition accepted")
	}
	short := &MooreSpec{NumStates: 2, InBits: 1, Next: [][]int{{0}}, Out: []bool{false}}
	if err := short.Validate(); err == nil {
		t.Fatal("short table accepted")
	}
	if _, err := SynthesizeSSM(bad, opts); err == nil {
		t.Fatal("synthesize must reject invalid spec")
	}
}

func TestSSMAreaReported(t *testing.T) {
	m, err := SynthesizeSSM(SequenceDetector101(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalArea() <= 0 {
		t.Fatal("area must be positive")
	}
	if len(m.NextBits) != 2 {
		t.Fatalf("4-state machine needs 2 next-state lattices, got %d", len(m.NextBits))
	}
}

func TestSSMStepAndReset(t *testing.T) {
	m, err := SynthesizeSSM(SequenceDetector101(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m.Step(1)
	m.Step(0)
	out := m.Step(1)
	if !out || m.State() != 3 {
		t.Fatalf("after 101: state %d out %v", m.State(), out)
	}
	m.Reset()
	if m.State() != 0 || m.Output() {
		t.Fatal("reset failed")
	}
}

// Guard: lattice networks reject mismatched lattices at evaluation
// boundaries — an all-constant lattice still works.
func TestConstantLatticeInNetwork(t *testing.T) {
	nw := NewNetwork(1)
	s := nw.AddNode(lattice.Constant(true), []Signal{})
	nw.Outputs = []Signal{s}
	if !nw.Eval(0)[0] {
		t.Fatal("constant node")
	}
}
