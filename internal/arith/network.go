// Package arith implements the paper's future-work package (Section V,
// objectives 3 and 4): arithmetic elements built from four-terminal
// switching lattices, multi-level lattice networks, and a synchronous
// state machine (SSM) whose combinational logic is synthesized onto
// crossbar arrays and driven by a clocked state register.
//
// A single lattice can only compute one SOP-structured function of its
// literal inputs; arithmetic circuits (ripple adders, comparators) need
// intermediate signals, so the package introduces lattice networks:
// DAGs whose nodes are lattices and whose edges wire node outputs to the
// literal inputs of later nodes — the crossbar analogue of a standard
// multi-level netlist.
package arith

import (
	"fmt"

	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/truthtab"
)

// Signal identifies a wire in a lattice network: primary inputs come
// first (0 … NumPI-1), then one output per node in insertion order.
type Signal int

// Node is one lattice in a network. The lattice's variable v is driven
// by Inputs[v].
type Node struct {
	L      *lattice.Lattice
	Inputs []Signal
}

// Network is a DAG of lattices.
type Network struct {
	NumPI   int
	Nodes   []Node
	Outputs []Signal
}

// NewNetwork creates a network with n primary inputs.
func NewNetwork(n int) *Network {
	if n < 0 || n > 63 {
		panic(fmt.Sprintf("arith: bad primary input count %d", n))
	}
	return &Network{NumPI: n}
}

// AddNode appends a lattice node; inputs[v] drives lattice variable v.
// Inputs must reference primary inputs or earlier nodes (no cycles).
func (nw *Network) AddNode(l *lattice.Lattice, inputs []Signal) Signal {
	if len(inputs) < l.MaxVar() {
		panic(fmt.Sprintf("arith: node needs %d inputs, got %d", l.MaxVar(), len(inputs)))
	}
	limit := Signal(nw.NumPI + len(nw.Nodes))
	for _, s := range inputs {
		if s < 0 || s >= limit {
			panic(fmt.Sprintf("arith: input signal %d out of range (limit %d)", s, limit))
		}
	}
	nw.Nodes = append(nw.Nodes, Node{L: l, Inputs: inputs})
	return limit
}

// Eval computes all signal values for a primary-input assignment (bit i
// of a = PI i) and returns the output values.
func (nw *Network) Eval(a uint64) []bool {
	vals := make([]bool, nw.NumPI+len(nw.Nodes))
	for i := 0; i < nw.NumPI; i++ {
		vals[i] = a>>uint(i)&1 == 1
	}
	for k, nd := range nw.Nodes {
		var local uint64
		for v, s := range nd.Inputs {
			if vals[s] {
				local |= 1 << uint(v)
			}
		}
		vals[nw.NumPI+k] = nd.L.Eval(local)
	}
	out := make([]bool, len(nw.Outputs))
	for i, s := range nw.Outputs {
		out[i] = vals[s]
	}
	return out
}

// TotalArea sums the area of every lattice in the network, the cost
// measure for multi-level crossbar circuits.
func (nw *Network) TotalArea() int {
	area := 0
	for _, nd := range nw.Nodes {
		area += nd.L.Area()
	}
	return area
}

// NumLattices returns the node count.
func (nw *Network) NumLattices() int { return len(nw.Nodes) }

// synthLattice builds a lattice for a small helper function.
func synthLattice(f truthtab.TT, opts latsynth.Options) *lattice.Lattice {
	res, err := latsynth.DualMethod(f, opts)
	if err != nil {
		panic(fmt.Sprintf("arith: internal synthesis failed: %v", err))
	}
	return res.Lattice
}

// maj3TT and xor3TT are the full-adder component functions.
func maj3TT() truthtab.TT {
	return truthtab.FromFunc(3, func(a uint64) bool {
		return a&1+a>>1&1+a>>2&1 >= 2
	})
}

func xor3TT() truthtab.TT {
	return truthtab.FromFunc(3, func(a uint64) bool {
		return (a&1+a>>1&1+a>>2&1)%2 == 1
	})
}

// AddFullAdder wires a 1-bit full adder (two lattices: 3-input parity
// for sum, 3-input majority for carry) and returns (sum, carry).
func (nw *Network) AddFullAdder(a, b, cin Signal, opts latsynth.Options) (Signal, Signal) {
	sum := nw.AddNode(synthLattice(xor3TT(), opts), []Signal{a, b, cin})
	carry := nw.AddNode(synthLattice(maj3TT(), opts), []Signal{a, b, cin})
	return sum, carry
}

// RippleAdder builds an n-bit ripple-carry adder network: primary inputs
// a0..a(n-1), b0..b(n-1) (a at signals 0..n-1, b at n..2n-1); outputs
// are the n sum bits followed by the carry-out.
func RippleAdder(n int, opts latsynth.Options) *Network {
	if n < 1 {
		panic("arith: adder width must be positive")
	}
	nw := NewNetwork(2 * n)
	// Half adder for bit 0: sum = a⊕b (2-var parity), carry = ab.
	xor2 := truthtab.Var(2, 0).Xor(truthtab.Var(2, 1))
	and2 := truthtab.Var(2, 0).And(truthtab.Var(2, 1))
	sum0 := nw.AddNode(synthLattice(xor2, opts), []Signal{0, Signal(n)})
	carry := nw.AddNode(synthLattice(and2, opts), []Signal{0, Signal(n)})
	nw.Outputs = append(nw.Outputs, sum0)
	for i := 1; i < n; i++ {
		s, c := nw.AddFullAdder(Signal(i), Signal(n+i), carry, opts)
		nw.Outputs = append(nw.Outputs, s)
		carry = c
	}
	nw.Outputs = append(nw.Outputs, carry)
	return nw
}

// AddUint interprets the adder network on concrete operands and returns
// the numeric sum (reference-checked in tests).
func AddUint(nw *Network, n int, a, b uint64) uint64 {
	assign := (a & (1<<uint(n) - 1)) | (b&(1<<uint(n)-1))<<uint(n)
	out := nw.Eval(assign)
	var s uint64
	for i, bit := range out {
		if bit {
			s |= 1 << uint(i)
		}
	}
	return s
}

// Comparator builds an n-bit magnitude comparator network computing
// a > b, with a at signals 0..n-1 and b at n..2n-1 (LSB first). It
// ripples from the LSB: gt_{i} = a_i·b_i' + (a_i⊕b_i)'·gt_{i-1}.
func Comparator(n int, opts latsynth.Options) *Network {
	if n < 1 {
		panic("arith: comparator width must be positive")
	}
	nw := NewNetwork(2 * n)
	// gt0 = a0·b0'
	gtTT := truthtab.Var(2, 0).And(truthtab.Var(2, 1).Not())
	gt := nw.AddNode(synthLattice(gtTT, opts), []Signal{0, Signal(n)})
	// step(a,b,prev) = a·b' + (a XNOR b)·prev
	step := truthtab.FromFunc(3, func(x uint64) bool {
		ai, bi, prev := x&1 == 1, x>>1&1 == 1, x>>2&1 == 1
		if ai != bi {
			return ai
		}
		return prev
	})
	for i := 1; i < n; i++ {
		gt = nw.AddNode(synthLattice(step, opts), []Signal{Signal(i), Signal(n + i), gt})
	}
	nw.Outputs = []Signal{gt}
	return nw
}

// GreaterUint evaluates the comparator on concrete operands.
func GreaterUint(nw *Network, n int, a, b uint64) bool {
	assign := (a & (1<<uint(n) - 1)) | (b&(1<<uint(n)-1))<<uint(n)
	return nw.Eval(assign)[0]
}
