package defect

import (
	"math/rand"
	"testing"
)

// BenchmarkDefectRandom is the CI-gated defect-map generation number:
// sparse geometric-gap sampling at a realistic 1% density. Compare
// BenchmarkDefectRandomScalar for the retained per-crosspoint reference.
func BenchmarkDefectRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMap(64, 64)
	p := UniformCrosspoint(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomInto(m, p, rng)
	}
}

func BenchmarkDefectRandomScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := UniformCrosspoint(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomScalar(64, 64, p, rng)
	}
}

func BenchmarkDefectRandom256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMap(256, 256)
	p := UniformCrosspoint(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomInto(m, p, rng)
	}
}

func BenchmarkDefectRandomClustered(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMap(64, 64)
	p := UniformCrosspoint(0.01)
	p.Clustered = true
	p.ClusterCount = 3
	p.ClusterRadius = 5
	p.ClusterBoost = 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomInto(m, p, rng)
	}
}

func BenchmarkAnyDefect(b *testing.B) {
	m := NewMap(64, 64)
	m.Set(63, 63, StuckOpen) // worst case: single defect at the end
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !m.AnyDefect() {
			b.Fatal("defect lost")
		}
	}
}
