package defect

import (
	"math/rand"
	"reflect"
	"testing"
)

// laneTestParams are the draw distributions the lane/scalar equivalence
// is pinned over: empty, uniform, saturated, wire faults only,
// everything at once, and a clustered map.
func laneTestParams() map[string]Params {
	return map[string]Params{
		"zero":      {},
		"uniform3%": UniformCrosspoint(0.03),
		"dense":     UniformCrosspoint(1.0),
		"wires": {
			PRowBreak: 0.05, PColBreak: 0.05,
			PRowBridge: 0.04, PColBridge: 0.04,
		},
		"everything": {
			PStuckOpen: 0.02, PStuckClosed: 0.01,
			PRowBreak: 0.03, PColBreak: 0.02,
			PRowBridge: 0.02, PColBridge: 0.03,
		},
		"clustered": {
			PStuckOpen: 0.01, PStuckClosed: 0.005,
			Clustered: true, ClusterCount: 3, ClusterRadius: 4, ClusterBoost: 12,
		},
	}
}

// TestDrawLaneMatchesRandomInto is the lane-draw contract: for the same
// seed, DrawLane fills a lane bit-for-bit identically to RandomInto on
// a scalar map, and leaves the RNG in the identical state — which is
// what lets the yield engine's demotion path reseed and replay a
// failing lane as a scalar map.
func TestDrawLaneMatchesRandomInto(t *testing.T) {
	shapes := [][2]int{{1, 1}, {5, 9}, {64, 64}, {70, 3}}
	for name, p := range laneTestParams() {
		for _, shape := range shapes {
			r, c := shape[0], shape[1]
			lp := NewLanePlanes(r, c)
			lp.Reset()
			got := NewMap(r, c)
			want := NewMap(r, c)
			for lane := 0; lane < 64; lane += 13 {
				seed := int64(1000*lane) + int64(r*31+c)
				laneSrc := rand.NewSource(seed)
				laneRng := rand.New(laneSrc)
				lp.DrawLane(lane, p, laneRng)

				refSrc := rand.NewSource(seed)
				refRng := rand.New(refSrc)
				RandomInto(want, p, refRng)

				lp.ExtractLane(got, lane)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s %dx%d lane %d: lane draw differs from RandomInto\nlane:\n%s\nscalar:\n%s",
						name, r, c, lane, got, want)
				}
				if laneRng.Uint64() != refRng.Uint64() {
					t.Fatalf("%s %dx%d lane %d: RNG states diverge after draw", name, r, c, lane)
				}
			}
		}
	}
}

// TestDrawLaneLanesIndependent checks lanes don't bleed into each
// other: drawing lanes A and B into one group gives each lane exactly
// its own die.
func TestDrawLaneLanesIndependent(t *testing.T) {
	p := UniformCrosspoint(0.05)
	p.PRowBreak, p.PColBridge = 0.05, 0.05
	lp := NewLanePlanes(20, 20)
	lp.Reset()
	src := rand.NewSource(7)
	rng := rand.New(src)
	for lane := 0; lane < 64; lane++ {
		src.Seed(int64(lane) * 77)
		lp.DrawLane(lane, p, rng)
	}
	got := NewMap(20, 20)
	want := NewMap(20, 20)
	for lane := 0; lane < 64; lane++ {
		src.Seed(int64(lane) * 77)
		RandomInto(want, p, rng)
		lp.ExtractLane(got, lane)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("lane %d polluted by sibling draws", lane)
		}
	}
}

// TestLanePlanesReset checks a reused group starts clean.
func TestLanePlanesReset(t *testing.T) {
	lp := NewLanePlanes(8, 8)
	rng := rand.New(rand.NewSource(3))
	lp.DrawLane(5, UniformCrosspoint(1.0), rng)
	lp.Reset()
	m := NewMap(8, 8)
	for lane := 0; lane < 64; lane++ {
		lp.ExtractLane(m, lane)
		if m.AnyDefect() {
			t.Fatalf("lane %d dirty after Reset", lane)
		}
	}
}

func BenchmarkDrawLaneGroup64(b *testing.B) {
	// One full 64-die lane group of 64×64 dies at the yield sweep's 2%
	// density: the draw half of the lane yield engine's per-group cost.
	p := UniformCrosspoint(0.02)
	lp := NewLanePlanes(64, 64)
	src := rand.NewSource(42)
	rng := rand.New(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp.Reset()
		for lane := 0; lane < 64; lane++ {
			src.Seed(int64(i*64 + lane))
			lp.DrawLane(lane, p, rng)
		}
	}
}
