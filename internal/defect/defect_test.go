package defect

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewMapClean(t *testing.T) {
	m := NewMap(4, 5)
	if m.AnyDefect() || m.CountCrosspointDefects() != 0 {
		t.Fatal("fresh map must be clean")
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if !m.CrosspointHealthy(r, c) {
				t.Fatal("fresh crosspoint unhealthy")
			}
		}
	}
}

func TestSetAndHealth(t *testing.T) {
	m := NewMap(3, 3)
	m.Set(1, 2, StuckOpen)
	if m.At(1, 2) != StuckOpen || m.CrosspointHealthy(1, 2) {
		t.Fatal("stuck-open not recorded")
	}
	if !m.AnyDefect() || m.CountCrosspointDefects() != 1 {
		t.Fatal("counts wrong")
	}
	m.Set(1, 2, StuckClosed)
	if m.At(1, 2) != StuckClosed || m.CountCrosspointDefects() != 1 {
		t.Fatal("overwrite must replace, not accumulate")
	}
	m.Set(1, 2, None)
	if m.At(1, 2) != None || m.AnyDefect() {
		t.Fatal("clearing a crosspoint must clean the map")
	}
	m2 := NewMap(3, 3)
	m2.SetRowBroken(0, true)
	if m2.CrosspointHealthy(0, 1) || !m2.AnyDefect() {
		t.Fatal("broken row must poison its crosspoints")
	}
	if m2.CrosspointHealthy(1, 1) == false {
		t.Fatal("other rows unaffected")
	}
}

// TestBitsetMatchesShadowModel drives the bitset map and a naive
// shadow model through an identical random operation stream and
// requires every observable to agree — the representation-equivalence
// property test for the word-plane rewrite.
func TestBitsetMatchesShadowModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		R, C := 1+rng.Intn(70), 1+rng.Intn(70)
		m := NewMap(R, C)
		shadow := struct {
			points         []Kind
			rowBrk, colBrk []bool
			rowBrg, colBrg []bool
		}{
			points: make([]Kind, R*C),
			rowBrk: make([]bool, R), colBrk: make([]bool, C),
			rowBrg: make([]bool, R), colBrg: make([]bool, C),
		}
		for op := 0; op < 500; op++ {
			r, c := rng.Intn(R), rng.Intn(C)
			switch rng.Intn(6) {
			case 0:
				k := Kind(rng.Intn(3))
				m.Set(r, c, k)
				shadow.points[r*C+c] = k
			case 1:
				v := rng.Intn(2) == 0
				m.SetRowBroken(r, v)
				shadow.rowBrk[r] = v
			case 2:
				v := rng.Intn(2) == 0
				m.SetColBroken(c, v)
				shadow.colBrk[c] = v
			case 3:
				if r < R-1 {
					v := rng.Intn(2) == 0
					m.SetRowBridge(r, v)
					shadow.rowBrg[r] = v
				}
			case 4:
				if c < C-1 {
					v := rng.Intn(2) == 0
					m.SetColBridge(c, v)
					shadow.colBrg[c] = v
				}
			case 5:
				if m.At(r, c) != shadow.points[r*C+c] {
					t.Fatalf("At(%d,%d) diverged", r, c)
				}
			}
		}
		count, any := 0, false
		for i, k := range shadow.points {
			if k != None {
				count++
				any = true
			}
			if got := m.At(i/C, i%C); got != k {
				t.Fatalf("trial %d: At(%d,%d)=%v want %v", trial, i/C, i%C, got, k)
			}
			wantHealthy := k == None && !shadow.rowBrk[i/C] && !shadow.colBrk[i%C]
			if m.CrosspointHealthy(i/C, i%C) != wantHealthy {
				t.Fatalf("trial %d: CrosspointHealthy(%d,%d) diverged", trial, i/C, i%C)
			}
		}
		for r := 0; r < R; r++ {
			any = any || shadow.rowBrk[r] || shadow.rowBrg[r]
			if m.RowBroken(r) != shadow.rowBrk[r] {
				t.Fatal("RowBroken diverged")
			}
			if r < R-1 && m.RowBridge(r) != shadow.rowBrg[r] {
				t.Fatal("RowBridge diverged")
			}
		}
		for c := 0; c < C; c++ {
			any = any || shadow.colBrk[c] || shadow.colBrg[c]
			if m.ColBroken(c) != shadow.colBrk[c] {
				t.Fatal("ColBroken diverged")
			}
			if c < C-1 && m.ColBridge(c) != shadow.colBrg[c] {
				t.Fatal("ColBridge diverged")
			}
		}
		if m.CountCrosspointDefects() != count {
			t.Fatalf("trial %d: count %d want %d", trial, m.CountCrosspointDefects(), count)
		}
		if m.AnyDefect() != any {
			t.Fatalf("trial %d: AnyDefect %v want %v", trial, m.AnyDefect(), any)
		}
	}
}

// TestPlaneWordInvariants checks the all-zero-beyond-C invariant the
// mask intersections in bism rely on, at awkward widths around word
// boundaries.
func TestPlaneWordInvariants(t *testing.T) {
	for _, c := range []int{1, 63, 64, 65, 127, 128, 129} {
		m := NewMap(3, c)
		for ci := 0; ci < c; ci++ {
			m.Set(1, ci, StuckOpen)
			m.Set(2, ci, StuckClosed)
		}
		validLast := ^uint64(0)
		if c&63 != 0 {
			validLast = uint64(1)<<uint(c&63) - 1
		}
		for r := 0; r < 3; r++ {
			for _, plane := range [][]uint64{m.OpenRow(r), m.ClosedRow(r)} {
				if len(plane) != m.WordsPerRow() {
					t.Fatalf("c=%d: row plane has %d words, want %d", c, len(plane), m.WordsPerRow())
				}
				if last := plane[len(plane)-1]; last&^validLast != 0 {
					t.Fatalf("c=%d: bits beyond C set in last word: %#x", c, last)
				}
			}
		}
		if m.CountCrosspointDefects() != 2*c {
			t.Fatalf("c=%d: count %d want %d", c, m.CountCrosspointDefects(), 2*c)
		}
	}
}

func TestRandomDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	m := Random(n, n, UniformCrosspoint(0.1), rng)
	d := m.CountCrosspointDefects()
	// Expect ~410 of 4096; allow wide slack.
	if d < 250 || d > 600 {
		t.Fatalf("defect count %d implausible for p=0.1", d)
	}
	// Stuck-open should dominate 80/20.
	open := 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if m.At(r, c) == StuckOpen {
				open++
			}
		}
	}
	if float64(open)/float64(d) < 0.6 {
		t.Fatalf("open fraction %d/%d too low", open, d)
	}
}

// TestSparseMatchesScalarStatistically pins the sparse sampler against
// the retained scalar reference: over many seeded dies, mean crosspoint
// and wire defect counts must agree within Monte Carlo tolerance, for
// both uniform and clustered parameters.
func TestSparseMatchesScalarStatistically(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"uniform2%", UniformCrosspoint(0.02)},
		{"uniform20%", UniformCrosspoint(0.20)},
		{"wires", Params{PStuckOpen: 0.01, PRowBreak: 0.05, PColBreak: 0.05, PRowBridge: 0.03, PColBridge: 0.03}},
		{"clustered", func() Params {
			p := UniformCrosspoint(0.01)
			p.Clustered = true
			p.ClusterCount = 3
			p.ClusterRadius = 5
			p.ClusterBoost = 20
			return p
		}()},
	}
	const n, trials = 48, 60
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rngA := rand.New(rand.NewSource(9))
			rngB := rand.New(rand.NewSource(10009))
			sparsePts, scalarPts := 0, 0
			sparseWires, scalarWires := 0, 0
			countWires := func(m *Map) int {
				w := 0
				for r := 0; r < n; r++ {
					if m.RowBroken(r) {
						w++
					}
					if r < n-1 && m.RowBridge(r) {
						w++
					}
				}
				for c := 0; c < n; c++ {
					if m.ColBroken(c) {
						w++
					}
					if c < n-1 && m.ColBridge(c) {
						w++
					}
				}
				return w
			}
			for i := 0; i < trials; i++ {
				a := Random(n, n, tc.p, rngA)
				b := RandomScalar(n, n, tc.p, rngB)
				sparsePts += a.CountCrosspointDefects()
				scalarPts += b.CountCrosspointDefects()
				sparseWires += countWires(a)
				scalarWires += countWires(b)
			}
			// Counts are sums of thousands of Bernoulli draws; a 25%
			// relative band is > 5 sigma for every case above.
			near := func(got, want int) bool {
				g, w := float64(got), float64(want)
				return math.Abs(g-w) <= 0.25*math.Max(w, 40)
			}
			if !near(sparsePts, scalarPts) {
				t.Fatalf("crosspoint defects diverge: sparse %d vs scalar %d", sparsePts, scalarPts)
			}
			if !near(sparseWires, scalarWires) {
				t.Fatalf("wire defects diverge: sparse %d vs scalar %d", sparseWires, scalarWires)
			}
		})
	}
}

// TestSparseSamplerChiSquare checks positional uniformity of the skip
// sampler with fixed seeds: defect positions bucketed into 8 strata of
// the flat site index must be compatible with a uniform distribution
// (the classic failure mode of a wrong gap formula is bias toward low
// or high indices).
func TestSparseSamplerChiSquare(t *testing.T) {
	const n, trials, strata = 64, 80, 8
	rng := rand.New(rand.NewSource(1234))
	var buckets [strata]int
	total := 0
	for i := 0; i < trials; i++ {
		m := Random(n, n, UniformCrosspoint(0.05), rng)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if m.At(r, c) != None {
					buckets[(r*n+c)*strata/(n*n)]++
					total++
				}
			}
		}
	}
	if total < 10000 {
		t.Fatalf("sampler produced only %d defects; expected ~16k", total)
	}
	exp := float64(total) / strata
	chi2 := 0.0
	for _, b := range buckets {
		d := float64(b) - exp
		chi2 += d * d / exp
	}
	// 7 degrees of freedom: P(chi2 > 24.3) ≈ 0.001. Fixed seeds make
	// this deterministic, not flaky.
	if chi2 > 24.3 {
		t.Fatalf("chi-square %.1f over strata %v (exp %.0f each): sampler positionally biased", chi2, buckets, exp)
	}
}

// TestVisitBernoulliExtremes covers the degenerate probabilities.
func TestVisitBernoulliExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	calls := 0
	VisitBernoulli(rng, 0, 100, func(int) { calls++ })
	if calls != 0 {
		t.Fatal("p=0 must visit nothing")
	}
	VisitBernoulli(rng, 1, 100, func(i int) {
		if i != calls {
			t.Fatal("p=1 must visit in order")
		}
		calls++
	})
	if calls != 100 {
		t.Fatal("p=1 must visit everything")
	}
	VisitBernoulli(rng, 0.5, 0, func(int) { t.Fatal("n=0 must visit nothing") })
	// Indices stay in range and strictly increase.
	last := -1
	VisitBernoulli(rng, 0.3, 1000, func(i int) {
		if i <= last || i >= 1000 {
			t.Fatalf("bad index %d after %d", i, last)
		}
		last = i
	})
}

func TestRandomZeroDensityClean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Random(16, 16, Params{}, rng)
	if m.AnyDefect() {
		t.Fatal("zero-probability map must be clean")
	}
}

func TestRandomReproducible(t *testing.T) {
	a := Random(8, 8, UniformCrosspoint(0.2), rand.New(rand.NewSource(7)))
	b := Random(8, 8, UniformCrosspoint(0.2), rand.New(rand.NewSource(7)))
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if a.At(r, c) != b.At(r, c) {
				t.Fatal("same seed must give same map")
			}
		}
	}
}

func TestRandomIntoReusesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMap(16, 16)
	RandomInto(m, UniformCrosspoint(0.5), rng)
	if !m.AnyDefect() {
		t.Fatal("dense draw produced no defects")
	}
	RandomInto(m, Params{}, rng)
	if m.AnyDefect() {
		t.Fatal("RandomInto must reset previous defects")
	}
	// A fixed seed gives the same map whether drawn fresh or into scratch.
	a := Random(16, 16, UniformCrosspoint(0.1), rand.New(rand.NewSource(3)))
	RandomInto(m, UniformCrosspoint(0.1), rand.New(rand.NewSource(3)))
	if a.String() != m.String() {
		t.Fatal("RandomInto diverges from Random at equal seed")
	}
}

func TestClusteredConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := UniformCrosspoint(0.01)
	p.Clustered = true
	p.ClusterCount = 2
	p.ClusterRadius = 4
	p.ClusterBoost = 30
	n := 48
	trials := 20
	clustered, uniform := 0, 0
	for i := 0; i < trials; i++ {
		clustered += Random(n, n, p, rng).CountCrosspointDefects()
		uniform += Random(n, n, UniformCrosspoint(0.01), rng).CountCrosspointDefects()
	}
	if clustered <= uniform {
		t.Fatalf("clustering should add local defects: %d vs %d", clustered, uniform)
	}
}

func TestLineDefects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Params{PRowBreak: 1, PColBridge: 1}
	m := Random(4, 4, p, rng)
	for r := 0; r < 4; r++ {
		if !m.RowBroken(r) {
			t.Fatal("row break probability 1 must break all rows")
		}
	}
	for c := 0; c+1 < 4; c++ {
		if !m.ColBridge(c) {
			t.Fatal("col bridge probability 1 must bridge all columns")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMap(2, 2)
	c := m.Clone()
	c.Set(0, 0, StuckClosed)
	c.SetRowBroken(1, true)
	if m.At(0, 0) != None || m.RowBroken(1) {
		t.Fatal("clone aliases original")
	}
}

func TestStringRender(t *testing.T) {
	m := NewMap(2, 3)
	m.Set(0, 1, StuckOpen)
	m.Set(1, 2, StuckClosed)
	m.SetRowBroken(1, true)
	s := m.String()
	if !strings.Contains(s, "o") || !strings.Contains(s, "c") || !strings.Contains(s, "!") {
		t.Fatalf("rendering missing markers:\n%s", s)
	}
}

func TestKindString(t *testing.T) {
	if None.String() != "ok" || StuckOpen.String() != "stuck-open" || StuckClosed.String() != "stuck-closed" {
		t.Fatal("kind strings")
	}
}

func TestNewMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMap(0, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	m := NewMap(4, 4)
	mustPanic(func() { m.At(0, 4) })
	mustPanic(func() { m.Set(4, 0, StuckOpen) })
	mustPanic(func() { m.SetRowBridge(3, true) })
	mustPanic(func() { m.SetColBridge(-1, true) })
}
