package defect

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNewMapClean(t *testing.T) {
	m := NewMap(4, 5)
	if m.AnyDefect() || m.CountCrosspointDefects() != 0 {
		t.Fatal("fresh map must be clean")
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if !m.CrosspointHealthy(r, c) {
				t.Fatal("fresh crosspoint unhealthy")
			}
		}
	}
}

func TestSetAndHealth(t *testing.T) {
	m := NewMap(3, 3)
	m.Set(1, 2, StuckOpen)
	if m.At(1, 2) != StuckOpen || m.CrosspointHealthy(1, 2) {
		t.Fatal("stuck-open not recorded")
	}
	if !m.AnyDefect() || m.CountCrosspointDefects() != 1 {
		t.Fatal("counts wrong")
	}
	m2 := NewMap(3, 3)
	m2.RowBroken[0] = true
	if m2.CrosspointHealthy(0, 1) || !m2.AnyDefect() {
		t.Fatal("broken row must poison its crosspoints")
	}
	if m2.CrosspointHealthy(1, 1) == false {
		t.Fatal("other rows unaffected")
	}
}

func TestRandomDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	m := Random(n, n, UniformCrosspoint(0.1), rng)
	d := m.CountCrosspointDefects()
	// Expect ~410 of 4096; allow wide slack.
	if d < 250 || d > 600 {
		t.Fatalf("defect count %d implausible for p=0.1", d)
	}
	// Stuck-open should dominate 80/20.
	open := 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if m.At(r, c) == StuckOpen {
				open++
			}
		}
	}
	if float64(open)/float64(d) < 0.6 {
		t.Fatalf("open fraction %d/%d too low", open, d)
	}
}

func TestRandomZeroDensityClean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Random(16, 16, Params{}, rng)
	if m.AnyDefect() {
		t.Fatal("zero-probability map must be clean")
	}
}

func TestRandomReproducible(t *testing.T) {
	a := Random(8, 8, UniformCrosspoint(0.2), rand.New(rand.NewSource(7)))
	b := Random(8, 8, UniformCrosspoint(0.2), rand.New(rand.NewSource(7)))
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if a.At(r, c) != b.At(r, c) {
				t.Fatal("same seed must give same map")
			}
		}
	}
}

func TestClusteredConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := UniformCrosspoint(0.01)
	p.Clustered = true
	p.ClusterCount = 2
	p.ClusterRadius = 4
	p.ClusterBoost = 30
	n := 48
	trials := 20
	clustered, uniform := 0, 0
	for i := 0; i < trials; i++ {
		clustered += Random(n, n, p, rng).CountCrosspointDefects()
		uniform += Random(n, n, UniformCrosspoint(0.01), rng).CountCrosspointDefects()
	}
	if clustered <= uniform {
		t.Fatalf("clustering should add local defects: %d vs %d", clustered, uniform)
	}
}

func TestLineDefects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Params{PRowBreak: 1, PColBridge: 1}
	m := Random(4, 4, p, rng)
	for r := 0; r < 4; r++ {
		if !m.RowBroken[r] {
			t.Fatal("row break probability 1 must break all rows")
		}
	}
	for c := 0; c+1 < 4; c++ {
		if !m.ColBridges[c] {
			t.Fatal("col bridge probability 1 must bridge all columns")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMap(2, 2)
	c := m.Clone()
	c.Set(0, 0, StuckClosed)
	c.RowBroken[1] = true
	if m.At(0, 0) != None || m.RowBroken[1] {
		t.Fatal("clone aliases original")
	}
}

func TestStringRender(t *testing.T) {
	m := NewMap(2, 3)
	m.Set(0, 1, StuckOpen)
	m.Set(1, 2, StuckClosed)
	m.RowBroken[1] = true
	s := m.String()
	if !strings.Contains(s, "o") || !strings.Contains(s, "c") || !strings.Contains(s, "!") {
		t.Fatalf("rendering missing markers:\n%s", s)
	}
}

func TestKindString(t *testing.T) {
	if None.String() != "ok" || StuckOpen.String() != "stuck-open" || StuckClosed.String() != "stuck-closed" {
		t.Fatal("kind strings")
	}
}

func TestNewMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMap(0, 1)
}
