// Package defect models fabrication defects of reconfigurable
// nano-crossbar arrays: crosspoints stuck open or stuck closed, broken
// row/column nanowires, and bridges between adjacent wires. Defect maps
// are generated from seeded random distributions — uniform Bernoulli or
// clustered — standing in for the post-fabrication test data the paper's
// flows consume (the repo has no physical chips; see DESIGN.md).
//
// The map is stored as bitset word planes: one []uint64 plane per
// crosspoint defect kind (row-major, WordsPerRow words per row) plus one
// bitset per wire-fault class. The word planes are what makes the
// fault-tolerance hot paths bit-parallel — bism intersects them against
// selection masks 64 columns at a time, and redundancy's lifetime scan
// checks whole regions word-wise — while generation uses sparse
// geometric-gap sampling so a die costs O(defects) random draws instead
// of O(R·C).
package defect

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"strings"
)

// Kind classifies a crosspoint defect.
type Kind uint8

// Crosspoint defect kinds.
const (
	None Kind = iota
	StuckOpen
	StuckClosed
)

func (k Kind) String() string {
	switch k {
	case None:
		return "ok"
	case StuckOpen:
		return "stuck-open"
	case StuckClosed:
		return "stuck-closed"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Map is the defect state of an R×C crossbar, held as bitset word
// planes. A crosspoint (r,c) lives at bit c&63 of word r*WordsPerRow() +
// c>>6 of the per-kind planes; wire faults are one bit per line. Bits
// beyond C in the last word of each row (and beyond the line counts in
// the wire bitsets) are always zero — every mutator maintains that
// invariant, which is what lets the scan helpers (AnyDefect,
// CountCrosspointDefects, the bism mask intersections) operate on whole
// words without masking.
type Map struct {
	R, C int
	w    int      // words per crosspoint-plane row: ceil(C/64)
	open []uint64 // stuck-open plane, R*w words, row-major
	clsd []uint64 // stuck-closed plane, R*w words, row-major

	rowBroken []uint64 // bit r: row wire r broken (ceil(R/64) words)
	colBroken []uint64 // bit c: column wire c broken (ceil(C/64) words)
	rowBridge []uint64 // bit r: bridge between rows r and r+1 (bits 0..R-2)
	colBridge []uint64 // bit c: bridge between cols c and c+1 (bits 0..C-2)
}

// wordsFor returns ceil(n/64) with a one-word minimum.
func wordsFor(n int) int {
	if n < 1 {
		return 1
	}
	return (n + 63) >> 6
}

// NewMap returns a defect-free map.
func NewMap(r, c int) *Map {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("defect: invalid shape %d×%d", r, c))
	}
	w := wordsFor(c)
	return &Map{
		R: r, C: c, w: w,
		open: make([]uint64, r*w), clsd: make([]uint64, r*w),
		rowBroken: make([]uint64, wordsFor(r)), colBroken: make([]uint64, wordsFor(c)),
		rowBridge: make([]uint64, wordsFor(r)), colBridge: make([]uint64, wordsFor(c)),
	}
}

// Reset clears every defect, making the map reusable without
// reallocation (the engine's per-worker die scratch).
func (m *Map) Reset() {
	clearWords(m.open)
	clearWords(m.clsd)
	clearWords(m.rowBroken)
	clearWords(m.colBroken)
	clearWords(m.rowBridge)
	clearWords(m.colBridge)
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

func (m *Map) checkPoint(r, c int) {
	if r < 0 || r >= m.R || c < 0 || c >= m.C {
		panic(fmt.Sprintf("defect: crosspoint (%d,%d) outside %d×%d map", r, c, m.R, m.C))
	}
}

// At returns the crosspoint defect kind.
func (m *Map) At(r, c int) Kind {
	m.checkPoint(r, c)
	i, b := r*m.w+c>>6, uint(c&63)
	if m.open[i]>>b&1 == 1 {
		return StuckOpen
	}
	if m.clsd[i]>>b&1 == 1 {
		return StuckClosed
	}
	return None
}

// Set assigns a crosspoint defect kind.
func (m *Map) Set(r, c int, k Kind) {
	m.checkPoint(r, c)
	i, bit := r*m.w+c>>6, uint64(1)<<uint(c&63)
	m.open[i] &^= bit
	m.clsd[i] &^= bit
	switch k {
	case StuckOpen:
		m.open[i] |= bit
	case StuckClosed:
		m.clsd[i] |= bit
	}
}

func getBit(w []uint64, i int) bool { return w[i>>6]>>uint(i&63)&1 == 1 }
func setBit(w []uint64, i int, v bool) {
	if v {
		w[i>>6] |= 1 << uint(i&63)
	} else {
		w[i>>6] &^= 1 << uint(i&63)
	}
}

// RowBroken reports whether row wire r is broken.
func (m *Map) RowBroken(r int) bool { return getBit(m.rowBroken, r) }

// SetRowBroken marks row wire r broken (or repaired).
func (m *Map) SetRowBroken(r int, v bool) { setBit(m.rowBroken, r, v) }

// ColBroken reports whether column wire c is broken.
func (m *Map) ColBroken(c int) bool { return getBit(m.colBroken, c) }

// SetColBroken marks column wire c broken (or repaired).
func (m *Map) SetColBroken(c int, v bool) { setBit(m.colBroken, c, v) }

// RowBridge reports a bridge between row wires r and r+1.
func (m *Map) RowBridge(r int) bool { return getBit(m.rowBridge, r) }

// SetRowBridge marks a bridge between rows r and r+1.
func (m *Map) SetRowBridge(r int, v bool) {
	if r < 0 || r >= m.R-1 {
		panic(fmt.Sprintf("defect: row bridge %d outside [0,%d)", r, m.R-1))
	}
	setBit(m.rowBridge, r, v)
}

// ColBridge reports a bridge between column wires c and c+1.
func (m *Map) ColBridge(c int) bool { return getBit(m.colBridge, c) }

// SetColBridge marks a bridge between columns c and c+1.
func (m *Map) SetColBridge(c int, v bool) {
	if c < 0 || c >= m.C-1 {
		panic(fmt.Sprintf("defect: col bridge %d outside [0,%d)", c, m.C-1))
	}
	setBit(m.colBridge, c, v)
}

// WordsPerRow returns the word stride of the crosspoint planes.
func (m *Map) WordsPerRow() int { return m.w }

// OpenRow returns the stuck-open plane words of row r (bit c set iff
// crosspoint (r,c) is stuck open). The slice aliases the map: callers
// must treat it as read-only.
func (m *Map) OpenRow(r int) []uint64 { return m.open[r*m.w : (r+1)*m.w] }

// ClosedRow returns the stuck-closed plane words of row r. Read-only.
func (m *Map) ClosedRow(r int) []uint64 { return m.clsd[r*m.w : (r+1)*m.w] }

// RowBrokenWords returns the broken-row bitset (bit r = row r broken).
// Read-only.
func (m *Map) RowBrokenWords() []uint64 { return m.rowBroken }

// ColBrokenWords returns the broken-column bitset. Read-only.
func (m *Map) ColBrokenWords() []uint64 { return m.colBroken }

// RowBridgeWords returns the row-bridge bitset (bit r = bridge between
// rows r and r+1). Read-only.
func (m *Map) RowBridgeWords() []uint64 { return m.rowBridge }

// ColBridgeWords returns the column-bridge bitset. Read-only.
func (m *Map) ColBridgeWords() []uint64 { return m.colBridge }

// CrosspointHealthy reports whether the crosspoint and both of its wires
// are usable (no stuck fault, neither line broken).
func (m *Map) CrosspointHealthy(r, c int) bool {
	return m.At(r, c) == None && !m.RowBroken(r) && !m.ColBroken(c)
}

// CountCrosspointDefects returns the number of defective crosspoints.
func (m *Map) CountCrosspointDefects() int {
	n := 0
	for _, w := range m.open {
		n += bits.OnesCount64(w)
	}
	for _, w := range m.clsd {
		n += bits.OnesCount64(w)
	}
	return n
}

// AnyDefect reports whether the map contains any defect at all. With
// word planes this is a scan for the first nonzero word, exiting
// immediately instead of counting every defect.
func (m *Map) AnyDefect() bool {
	for _, plane := range [6][]uint64{m.open, m.clsd, m.rowBroken, m.colBroken, m.rowBridge, m.colBridge} {
		for _, w := range plane {
			if w != 0 {
				return true
			}
		}
	}
	return false
}

// Clone returns an independent copy.
func (m *Map) Clone() *Map {
	c := NewMap(m.R, m.C)
	copy(c.open, m.open)
	copy(c.clsd, m.clsd)
	copy(c.rowBroken, m.rowBroken)
	copy(c.colBroken, m.colBroken)
	copy(c.rowBridge, m.rowBridge)
	copy(c.colBridge, m.colBridge)
	return c
}

// String renders the crosspoint map ('.', 'o' stuck-open, 'c' stuck-
// closed) with '!' margins marking broken wires.
func (m *Map) String() string {
	var sb strings.Builder
	for r := 0; r < m.R; r++ {
		if m.RowBroken(r) {
			sb.WriteByte('!')
		} else {
			sb.WriteByte(' ')
		}
		for c := 0; c < m.C; c++ {
			switch m.At(r, c) {
			case None:
				sb.WriteByte('.')
			case StuckOpen:
				sb.WriteByte('o')
			case StuckClosed:
				sb.WriteByte('c')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteByte(' ')
	for c := 0; c < m.C; c++ {
		if m.ColBroken(c) {
			sb.WriteByte('!')
		} else {
			sb.WriteByte(' ')
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Params control random defect generation. All probabilities are per
// resource (crosspoint or wire). When Clustered is set, defects
// additionally concentrate around ClusterCount random centers within
// ClusterRadius, multiplying the local crosspoint probability by
// ClusterBoost (capped at 1) — modeling the spatially correlated defect
// distributions the hybrid BISM targets.
type Params struct {
	PStuckOpen   float64
	PStuckClosed float64
	PRowBreak    float64
	PColBreak    float64
	PRowBridge   float64
	PColBridge   float64

	Clustered     bool
	ClusterCount  int
	ClusterRadius int
	ClusterBoost  float64
}

// UniformCrosspoint returns parameters with only crosspoint defects:
// the given total density split 80/20 between stuck-open and
// stuck-closed (open defects dominate in self-assembled crossbars).
func UniformCrosspoint(density float64) Params {
	return Params{PStuckOpen: density * 0.8, PStuckClosed: density * 0.2}
}

// geoGap returns the number of Bernoulli(p) failures before the next
// success — the gap between consecutive defects in skip sampling. A
// geometric deviate is the floor of an exponential one rescaled by the
// rate λ = -log1p(-p): P(gap=k) = e^{-λk}(1-e^{-λ}) = (1-p)^k·p. The
// exponential comes from the ziggurat (ExpFloat64), which is table
// lookups on almost every draw — no math.Log on the hot path, unlike
// the textbook log(1-U)/log(1-p) inversion. invLambda is 1/λ,
// precomputed by the caller since p is constant across a sweep.
func geoGap(rng *rand.Rand, invLambda float64) int {
	// ExpFloat64 ≥ 0 and invLambda > 0, so the product is ≥ 0. Large
	// gaps are capped so callers can add them to indices without
	// overflow.
	g := rng.ExpFloat64() * invLambda
	if g >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// VisitBernoulli calls visit(i) for each i in [0,n) that succeeds an
// independent Bernoulli(p) draw, using geometric-gap (skip) sampling:
// the cost is O(p·n) random draws instead of n, the indices are visited
// in increasing order, and the visited set has exactly the independent
// per-index Bernoulli distribution. This is the shared sparse sampler of
// the fault-tolerance paths: defect maps here, transient-upset masks in
// internal/redundancy.
func VisitBernoulli(rng *rand.Rand, p float64, n int, visit func(i int)) {
	if p <= 0 || n <= 0 {
		return
	}
	if p >= 1 {
		for i := 0; i < n; i++ {
			visit(i)
		}
		return
	}
	invLambda := -1 / math.Log1p(-p)
	for i := geoGap(rng, invLambda); i < n; {
		visit(i)
		g := geoGap(rng, invLambda)
		if i > n-1-g { // i + 1 + g overflow-safe termination
			return
		}
		i += 1 + g
	}
}

// Random draws a defect map.
func Random(r, c int, p Params, rng *rand.Rand) *Map {
	m := NewMap(r, c)
	RandomInto(m, p, rng)
	return m
}

// clusterPt is one cluster center of a clustered draw.
type clusterPt struct{ r, c int }

// drawClusters draws the cluster-center geometry — the shared RNG
// prefix of every die draw, scalar map (RandomInto) and lane plane
// (LanePlanes.DrawLane) alike. Nil when the parameters are unclustered.
func drawClusters(r, c int, p Params, rng *rand.Rand) []clusterPt {
	if !p.Clustered || p.ClusterCount <= 0 {
		return nil
	}
	centers := make([]clusterPt, p.ClusterCount)
	for i := range centers {
		centers[i] = clusterPt{rng.Intn(r), rng.Intn(c)}
	}
	return centers
}

// boostAt returns the local probability multiplier of site (ri,ci):
// ClusterBoost within ClusterRadius (Manhattan) of any center, 1
// elsewhere.
func boostAt(centers []clusterPt, p Params, ri, ci int) float64 {
	for _, ct := range centers {
		dr, dc := ri-ct.r, ci-ct.c
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		if dr+dc <= p.ClusterRadius {
			return p.ClusterBoost
		}
	}
	return 1
}

// envelopeP is the largest per-site total defect probability anywhere
// on the die — the skip sampler's envelope. Sites under the envelope
// are visited sparsely; each visit is thinned to the site's own
// (possibly boosted) stuck-open/stuck-closed split, preserving the
// scalar reference's marginals P(open)=min(pO·b,1),
// P(closed)=min(pO·b+pC·b,1)-min(pO·b,1).
func envelopeP(p Params) float64 {
	boostMax := 1.0
	if p.Clustered && p.ClusterCount > 0 && p.ClusterBoost > 1 {
		boostMax = p.ClusterBoost
	}
	pEnv := minF(p.PStuckOpen*boostMax, 1) + minF(p.PStuckClosed*boostMax, 1)
	if pEnv > 1 {
		pEnv = 1
	}
	return pEnv
}

// RandomInto redraws m in place from p — Random without the allocation,
// for per-worker die scratch. The crosspoint planes are filled by skip
// sampling over the R·C sites: defects arrive at geometric gaps under an
// envelope probability, and (for clustered maps) each arrival is thinned
// to the local site probability, so a 64×64 die at 1% density costs ~40
// random draws instead of 4096. The draw stream differs from the
// retained scalar reference (RandomScalar) — distributions match, exact
// maps for a given seed do not. It is, however, identical draw for draw
// with LanePlanes.DrawLane: the same seed yields the same die through
// either path, which is the contract the lane yield engine's demotion
// path rests on.
func RandomInto(m *Map, p Params, rng *rand.Rand) {
	m.Reset()
	r, c := m.R, m.C
	centers := drawClusters(r, c, p, rng)
	pEnv := envelopeP(p)
	VisitBernoulli(rng, pEnv, r*c, func(i int) {
		ri, ci := i/c, i%c
		b := 1.0
		if centers != nil {
			b = boostAt(centers, p, ri, ci)
		}
		po := minF(p.PStuckOpen*b, 1)
		pc := minF(p.PStuckClosed*b, 1)
		u := rng.Float64() * pEnv
		switch {
		case u < po:
			m.Set(ri, ci, StuckOpen)
		case u < minF(po+pc, 1):
			m.Set(ri, ci, StuckClosed)
		}
	})

	VisitBernoulli(rng, p.PRowBreak, r, func(i int) { setBit(m.rowBroken, i, true) })
	VisitBernoulli(rng, p.PColBreak, c, func(i int) { setBit(m.colBroken, i, true) })
	VisitBernoulli(rng, p.PRowBridge, r-1, func(i int) { setBit(m.rowBridge, i, true) })
	VisitBernoulli(rng, p.PColBridge, c-1, func(i int) { setBit(m.colBridge, i, true) })
}

// RandomScalar is the retained scalar reference generator: one uniform
// draw per crosspoint and per wire, exactly the pre-bitset semantics.
// The property tests pin RandomInto's distributions against it, and the
// benchmarks report the sparse sampler's speedup over it. Not used on
// serving paths.
func RandomScalar(r, c int, p Params, rng *rand.Rand) *Map {
	m := NewMap(r, c)
	boost := func(ri, ci int) float64 { return 1 }
	if p.Clustered && p.ClusterCount > 0 {
		type pt struct{ r, c int }
		centers := make([]pt, p.ClusterCount)
		for i := range centers {
			centers[i] = pt{rng.Intn(r), rng.Intn(c)}
		}
		boost = func(ri, ci int) float64 {
			for _, ct := range centers {
				dr, dc := ri-ct.r, ci-ct.c
				if dr < 0 {
					dr = -dr
				}
				if dc < 0 {
					dc = -dc
				}
				if dr+dc <= p.ClusterRadius {
					return p.ClusterBoost
				}
			}
			return 1
		}
	}
	for ri := 0; ri < r; ri++ {
		for ci := 0; ci < c; ci++ {
			b := boost(ri, ci)
			po := minF(p.PStuckOpen*b, 1)
			pc := minF(p.PStuckClosed*b, 1)
			u := rng.Float64()
			switch {
			case u < po:
				m.Set(ri, ci, StuckOpen)
			case u < po+pc:
				m.Set(ri, ci, StuckClosed)
			}
		}
	}
	for ri := 0; ri < r; ri++ {
		m.SetRowBroken(ri, rng.Float64() < p.PRowBreak)
	}
	for ci := 0; ci < c; ci++ {
		m.SetColBroken(ci, rng.Float64() < p.PColBreak)
	}
	for ri := 0; ri+1 < r; ri++ {
		m.SetRowBridge(ri, rng.Float64() < p.PRowBridge)
	}
	for ci := 0; ci+1 < c; ci++ {
		m.SetColBridge(ci, rng.Float64() < p.PColBridge)
	}
	return m
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
