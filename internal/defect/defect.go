// Package defect models fabrication defects of reconfigurable
// nano-crossbar arrays: crosspoints stuck open or stuck closed, broken
// row/column nanowires, and bridges between adjacent wires. Defect maps
// are generated from seeded random distributions — uniform Bernoulli or
// clustered — standing in for the post-fabrication test data the paper's
// flows consume (the repo has no physical chips; see DESIGN.md).
package defect

import (
	"fmt"
	"math/rand"
	"strings"
)

// Kind classifies a crosspoint defect.
type Kind uint8

// Crosspoint defect kinds.
const (
	None Kind = iota
	StuckOpen
	StuckClosed
)

func (k Kind) String() string {
	switch k {
	case None:
		return "ok"
	case StuckOpen:
		return "stuck-open"
	case StuckClosed:
		return "stuck-closed"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Map is the defect state of an R×C crossbar.
type Map struct {
	R, C       int
	points     []Kind // row-major crosspoint defects
	RowBroken  []bool // broken row wires (len R)
	ColBroken  []bool // broken column wires (len C)
	RowBridges []bool // bridge between rows r and r+1 (len R-1)
	ColBridges []bool // bridge between cols c and c+1 (len C-1)
}

// NewMap returns a defect-free map.
func NewMap(r, c int) *Map {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("defect: invalid shape %d×%d", r, c))
	}
	return &Map{
		R: r, C: c,
		points:    make([]Kind, r*c),
		RowBroken: make([]bool, r), ColBroken: make([]bool, c),
		RowBridges: make([]bool, maxInt(r-1, 0)), ColBridges: make([]bool, maxInt(c-1, 0)),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// At returns the crosspoint defect kind.
func (m *Map) At(r, c int) Kind { return m.points[r*m.C+c] }

// Set assigns a crosspoint defect kind.
func (m *Map) Set(r, c int, k Kind) { m.points[r*m.C+c] = k }

// CrosspointHealthy reports whether the crosspoint and both of its wires
// are usable (no stuck fault, neither line broken).
func (m *Map) CrosspointHealthy(r, c int) bool {
	return m.At(r, c) == None && !m.RowBroken[r] && !m.ColBroken[c]
}

// CountCrosspointDefects returns the number of defective crosspoints.
func (m *Map) CountCrosspointDefects() int {
	n := 0
	for _, k := range m.points {
		if k != None {
			n++
		}
	}
	return n
}

// AnyDefect reports whether the map contains any defect at all.
func (m *Map) AnyDefect() bool {
	if m.CountCrosspointDefects() > 0 {
		return true
	}
	for _, b := range m.RowBroken {
		if b {
			return true
		}
	}
	for _, b := range m.ColBroken {
		if b {
			return true
		}
	}
	for _, b := range m.RowBridges {
		if b {
			return true
		}
	}
	for _, b := range m.ColBridges {
		if b {
			return true
		}
	}
	return false
}

// Clone returns an independent copy.
func (m *Map) Clone() *Map {
	c := NewMap(m.R, m.C)
	copy(c.points, m.points)
	copy(c.RowBroken, m.RowBroken)
	copy(c.ColBroken, m.ColBroken)
	copy(c.RowBridges, m.RowBridges)
	copy(c.ColBridges, m.ColBridges)
	return c
}

// String renders the crosspoint map ('.', 'o' stuck-open, 'c' stuck-
// closed) with '!' margins marking broken wires.
func (m *Map) String() string {
	var sb strings.Builder
	for r := 0; r < m.R; r++ {
		if m.RowBroken[r] {
			sb.WriteByte('!')
		} else {
			sb.WriteByte(' ')
		}
		for c := 0; c < m.C; c++ {
			switch m.At(r, c) {
			case None:
				sb.WriteByte('.')
			case StuckOpen:
				sb.WriteByte('o')
			case StuckClosed:
				sb.WriteByte('c')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteByte(' ')
	for c := 0; c < m.C; c++ {
		if m.ColBroken[c] {
			sb.WriteByte('!')
		} else {
			sb.WriteByte(' ')
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Params control random defect generation. All probabilities are per
// resource (crosspoint or wire). When Clustered is set, defects
// additionally concentrate around ClusterCount random centers within
// ClusterRadius, multiplying the local crosspoint probability by
// ClusterBoost (capped at 1) — modeling the spatially correlated defect
// distributions the hybrid BISM targets.
type Params struct {
	PStuckOpen   float64
	PStuckClosed float64
	PRowBreak    float64
	PColBreak    float64
	PRowBridge   float64
	PColBridge   float64

	Clustered     bool
	ClusterCount  int
	ClusterRadius int
	ClusterBoost  float64
}

// UniformCrosspoint returns parameters with only crosspoint defects:
// the given total density split 80/20 between stuck-open and
// stuck-closed (open defects dominate in self-assembled crossbars).
func UniformCrosspoint(density float64) Params {
	return Params{PStuckOpen: density * 0.8, PStuckClosed: density * 0.2}
}

// Random draws a defect map.
func Random(r, c int, p Params, rng *rand.Rand) *Map {
	m := NewMap(r, c)
	boost := func(ri, ci int) float64 { return 1 }
	if p.Clustered && p.ClusterCount > 0 {
		type pt struct{ r, c int }
		centers := make([]pt, p.ClusterCount)
		for i := range centers {
			centers[i] = pt{rng.Intn(r), rng.Intn(c)}
		}
		boost = func(ri, ci int) float64 {
			for _, ct := range centers {
				dr, dc := ri-ct.r, ci-ct.c
				if dr < 0 {
					dr = -dr
				}
				if dc < 0 {
					dc = -dc
				}
				if dr+dc <= p.ClusterRadius {
					return p.ClusterBoost
				}
			}
			return 1
		}
	}
	for ri := 0; ri < r; ri++ {
		for ci := 0; ci < c; ci++ {
			b := boost(ri, ci)
			po := minF(p.PStuckOpen*b, 1)
			pc := minF(p.PStuckClosed*b, 1)
			u := rng.Float64()
			switch {
			case u < po:
				m.Set(ri, ci, StuckOpen)
			case u < po+pc:
				m.Set(ri, ci, StuckClosed)
			}
		}
	}
	for ri := 0; ri < r; ri++ {
		m.RowBroken[ri] = rng.Float64() < p.PRowBreak
	}
	for ci := 0; ci < c; ci++ {
		m.ColBroken[ci] = rng.Float64() < p.PColBreak
	}
	for ri := 0; ri+1 < r; ri++ {
		m.RowBridges[ri] = rng.Float64() < p.PRowBridge
	}
	for ci := 0; ci+1 < c; ci++ {
		m.ColBridges[ci] = rng.Float64() < p.PColBridge
	}
	return m
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
