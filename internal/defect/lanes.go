package defect

import (
	"fmt"
	"math/rand"
)

// LanePlanes holds the defect state of up to 64 same-shape dies in
// lane-word form: one uint64 per crosspoint site and per wire, with bit
// L belonging to die (lane) L. Where Map is site-bit/die-instance
// (words run along a row of one die), LanePlanes is the transpose —
// die-bit/site-instance — which is what lets the lane yield engine ask
// "which of these 64 dies fail this candidate mapping?" as a handful of
// word ORs instead of 64 separate map walks.
//
// Layout:
//
//   - open/clsd: R·C words, site-major — word r*C+c, bit L set iff die
//     L's crosspoint (r,c) is stuck open / stuck closed.
//   - rowBroken/colBroken: one word per line — word r bit L set iff die
//     L's row wire r is broken.
//   - rowBridge/colBridge: one word per adjacent line pair — word r bit
//     L set iff die L bridges rows r and r+1 (max(R-1,0) words).
//
// A group is filled by Reset followed by one DrawLane per die; lanes
// never drawn stay defect-free (all-zero), so callers must mask results
// to the lanes they actually drew.
type LanePlanes struct {
	R, C int
	open []uint64
	clsd []uint64

	rowBroken []uint64
	colBroken []uint64
	rowBridge []uint64
	colBridge []uint64
}

// NewLanePlanes returns an all-healthy 64-die group of R×C planes.
func NewLanePlanes(r, c int) *LanePlanes {
	if r < 1 || c < 1 {
		panic(fmt.Sprintf("defect: invalid lane shape %d×%d", r, c))
	}
	return &LanePlanes{
		R: r, C: c,
		open: make([]uint64, r*c), clsd: make([]uint64, r*c),
		rowBroken: make([]uint64, r), colBroken: make([]uint64, c),
		rowBridge: make([]uint64, maxI(r-1, 0)), colBridge: make([]uint64, maxI(c-1, 0)),
	}
}

// Reset clears every lane of every plane, making the group reusable
// without reallocation (the lane runner's per-worker scratch).
func (lp *LanePlanes) Reset() {
	clearWords(lp.open)
	clearWords(lp.clsd)
	clearWords(lp.rowBroken)
	clearWords(lp.colBroken)
	clearWords(lp.rowBridge)
	clearWords(lp.colBridge)
}

// DrawLane draws die `lane` into the group from p, using exactly the
// same random stream as RandomInto on a same-shape Map: seed a source
// identically and the lane's plane bits equal the map's, draw for draw
// and bit for bit. That equivalence (pinned by the property tests) is
// what lets the yield engine's demotion path reseed and redraw a
// scalar Map for a failing lane without any state hand-off. The lane
// must be clear (Reset, or never drawn since); DrawLane only ORs bits
// in.
func (lp *LanePlanes) DrawLane(lane int, p Params, rng *rand.Rand) {
	if lane < 0 || lane > 63 {
		panic(fmt.Sprintf("defect: lane %d outside [0,64)", lane))
	}
	bit := uint64(1) << uint(lane)
	r, c := lp.R, lp.C
	centers := drawClusters(r, c, p, rng)
	pEnv := envelopeP(p)
	open, clsd := lp.open, lp.clsd
	VisitBernoulli(rng, pEnv, r*c, func(i int) {
		b := 1.0
		if centers != nil {
			b = boostAt(centers, p, i/c, i%c)
		}
		po := minF(p.PStuckOpen*b, 1)
		pc := minF(p.PStuckClosed*b, 1)
		u := rng.Float64() * pEnv
		switch {
		case u < po:
			open[i] |= bit
		case u < minF(po+pc, 1):
			clsd[i] |= bit
		}
	})

	VisitBernoulli(rng, p.PRowBreak, r, func(i int) { lp.rowBroken[i] |= bit })
	VisitBernoulli(rng, p.PColBreak, c, func(i int) { lp.colBroken[i] |= bit })
	VisitBernoulli(rng, p.PRowBridge, r-1, func(i int) { lp.rowBridge[i] |= bit })
	VisitBernoulli(rng, p.PColBridge, c-1, func(i int) { lp.colBridge[i] |= bit })
}

// OpenWords returns the stuck-open plane, R·C site-major lane words
// (word r*C+c, bit L = die L). The slice aliases the group: read-only.
func (lp *LanePlanes) OpenWords() []uint64 { return lp.open }

// ClosedWords returns the stuck-closed plane. Read-only.
func (lp *LanePlanes) ClosedWords() []uint64 { return lp.clsd }

// RowBrokenWords returns the broken-row plane, one lane word per row.
// Read-only.
func (lp *LanePlanes) RowBrokenWords() []uint64 { return lp.rowBroken }

// ColBrokenWords returns the broken-column plane. Read-only.
func (lp *LanePlanes) ColBrokenWords() []uint64 { return lp.colBroken }

// RowBridgeWords returns the row-bridge plane, one lane word per
// adjacent row pair (word r = bridge between rows r and r+1).
// Read-only.
func (lp *LanePlanes) RowBridgeWords() []uint64 { return lp.rowBridge }

// ColBridgeWords returns the column-bridge plane. Read-only.
func (lp *LanePlanes) ColBridgeWords() []uint64 { return lp.colBridge }

// ExtractLane copies die `lane` out of the group into dst (same shape),
// overwriting it — the test-side bridge between the lane and scalar
// representations.
func (lp *LanePlanes) ExtractLane(dst *Map, lane int) {
	if dst.R != lp.R || dst.C != lp.C {
		panic(fmt.Sprintf("defect: extract %d×%d lane into %d×%d map", lp.R, lp.C, dst.R, dst.C))
	}
	if lane < 0 || lane > 63 {
		panic(fmt.Sprintf("defect: lane %d outside [0,64)", lane))
	}
	bit := uint64(1) << uint(lane)
	dst.Reset()
	for r := 0; r < lp.R; r++ {
		for c := 0; c < lp.C; c++ {
			switch i := r*lp.C + c; {
			case lp.open[i]&bit != 0:
				dst.Set(r, c, StuckOpen)
			case lp.clsd[i]&bit != 0:
				dst.Set(r, c, StuckClosed)
			}
		}
	}
	for r := 0; r < lp.R; r++ {
		dst.SetRowBroken(r, lp.rowBroken[r]&bit != 0)
	}
	for c := 0; c < lp.C; c++ {
		dst.SetColBroken(c, lp.colBroken[c]&bit != 0)
	}
	for r := 0; r+1 < lp.R; r++ {
		dst.SetRowBridge(r, lp.rowBridge[r]&bit != 0)
	}
	for c := 0; c+1 < lp.C; c++ {
		dst.SetColBridge(c, lp.colBridge[c]&bit != 0)
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
