package experiments

import (
	"fmt"
	"math/rand"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/redundancy"
	"nanoxbar/internal/variation"
)

// E10Variation covers the paper's variation-tolerance objective
// (§IV introduction): parametric delay spread of lattice
// implementations, the guard band needed for predictable timing, and
// the gain from variation-aware placement on the reconfigurable array.
func E10Variation() *Report {
	opts := latsynth.DefaultOptions()
	rng := rand.New(rand.NewSource(11))
	specs := []benchfn.Spec{
		benchfn.Majority(3),
		benchfn.PaperExample(),
		benchfn.AdderBit(2, 1),
		benchfn.Mux(2),
	}
	var rows [][]string
	metrics := map[string]float64{}
	for _, s := range specs {
		res, err := latsynth.DualMethod(s.F, opts)
		if err != nil {
			continue
		}
		l := res.Lattice
		for _, sigma := range []float64{0.2, 0.5} {
			mean, p99 := variation.GuardBand(l, s.N(), sigma, 150, 0.99, rng)
			// Placement study on a chip with slack around the lattice.
			var gain float64
			trials := 20
			for t := 0; t < trials; t++ {
				m := variation.Lognormal(l.R+6, l.C+6, sigma, rng)
				best, worst := variation.BestPlacement(l, m, s.N(), 1)
				if worst.Delay > 0 {
					gain += (worst.Delay - best.Delay) / worst.Delay
				}
			}
			gain = 100 * gain / float64(trials)
			rows = append(rows, []string{
				s.Name, fmt.Sprintf("%d×%d", l.R, l.C), fmt.Sprintf("%.1f", sigma),
				fmt.Sprintf("%.2f", mean), fmt.Sprintf("%.2f", p99),
				fmt.Sprintf("%.0f%%", 100*(p99/mean-1)),
				fmt.Sprintf("%.0f%%", gain),
			})
			if s.Name == "maj3" {
				metrics[fmt.Sprintf("p99_over_mean_s%.1f", sigma)] = p99 / mean
				metrics[fmt.Sprintf("placement_gain_s%.1f", sigma)] = gain
			}
		}
	}
	lines := table("function\tlattice\tσ\tmean delay\tp99 delay\tguard band\tplacement gain", rows)
	lines = append(lines, "guard band = extra margin beyond mean; placement gain = worst→best offset improvement")
	return &Report{ID: "E10", Title: "parametric variation tolerance (§IV objective)", Lines: lines, Metrics: metrics}
}

// E11Lifetime covers the paper's lifetime-reliability objective:
// transient-error masking by modular redundancy and permanent-fault
// repair by periodic retest + self-remapping.
func E11Lifetime() *Report {
	opts := latsynth.DefaultOptions()
	rng := rand.New(rand.NewSource(13))
	spec := benchfn.Majority(3)
	res, err := latsynth.DualMethod(spec.F, opts)
	if err != nil {
		return &Report{ID: "E11", Title: "lifetime reliability", Lines: []string{"synthesis failed: " + err.Error()}}
	}
	l := res.Lattice

	// Transient masking sweep.
	var rows [][]string
	metrics := map[string]float64{}
	for _, p := range []float64{0.002, 0.01, 0.05} {
		bare, tmr := redundancy.ErrorRates(l, spec.N(), 3, p, 6000, rng)
		_, fmr := redundancy.ErrorRates(l, spec.N(), 5, p, 6000, rng)
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p),
			fmt.Sprintf("%.4f", bare), fmt.Sprintf("%.4f", tmr), fmt.Sprintf("%.4f", fmr),
			fmt.Sprintf("%d", l.Area()), fmt.Sprintf("%d", 3*l.Area()), fmt.Sprintf("%d", 5*l.Area()),
		})
		if p == 0.01 {
			metrics["bare_err"] = bare
			metrics["tmr_err"] = tmr
		}
	}
	lines := table("upset p\tbare err\tTMR err\t5MR err\tarea\tTMR area\t5MR area", rows)

	// Permanent-fault aging: lifetime with and without self-repair.
	var ageRows [][]string
	for _, period := range []int{0, 8, 2} {
		alive, remaps, trials := 0, 0, 12
		for s := int64(0); s < int64(trials); s++ {
			r := redundancy.Lifetime(l, spec.N(), redundancy.LifetimeParams{
				ChipN: 24, FaultsPerEp: 1.0, Epochs: 400,
				RetestEvery: period, RemapBudget: 200, Seed: 100 + s,
			})
			alive += r.EpochsAlive
			remaps += r.Remaps
		}
		name := "no repair"
		if period > 0 {
			name = fmt.Sprintf("retest every %d", period)
		}
		ageRows = append(ageRows, []string{
			name,
			fmt.Sprintf("%.0f", float64(alive)/float64(trials)),
			fmt.Sprintf("%.1f", float64(remaps)/float64(trials)),
		})
		metrics[fmt.Sprintf("alive_period_%d", period)] = float64(alive) / float64(trials)
	}
	lines = append(lines, "")
	lines = append(lines, table("repair policy\tmean epochs alive (of 400)\tmean remaps", ageRows)...)
	lines = append(lines, "24×24 chip, 1 permanent fault/epoch expected, maj3 lattice migrated by self-repair")
	return &Report{ID: "E11", Title: "lifetime reliability: TMR + retest/remap (§IV objective)", Lines: lines, Metrics: metrics}
}
