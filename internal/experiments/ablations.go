package experiments

import (
	"fmt"
	"math/rand"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/bism"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/latsynth"
)

// AblationSynthesis isolates the synthesis design choices DESIGN.md §5
// calls out: exact vs ISOP covers, the crosspoint literal heuristic,
// and the post-reduction pass. Each row is one benchmark function; each
// column one configuration of the dual-method synthesizer.
func AblationSynthesis() *Report {
	type cfg struct {
		name string
		opts latsynth.Options
	}
	base := latsynth.DefaultOptions()
	noReduce := base
	noReduce.PostReduce = false
	firstCell := base
	firstCell.Cells = latsynth.FirstCommon
	heur := base
	heur.Exact = false
	cfgs := []cfg{
		{"exact+freq+reduce", base},
		{"no-postreduce", noReduce},
		{"first-literal", firstCell},
		{"isop-covers", heur},
	}
	sums := make([]int, len(cfgs))
	var rows [][]string
	count := 0
	for _, s := range benchfn.Suite() {
		if s.N() > 7 {
			continue
		}
		row := []string{s.Name}
		ok := true
		areas := make([]int, len(cfgs))
		for i, c := range cfgs {
			res, err := latsynth.DualMethod(s.F, c.opts)
			if err != nil {
				ok = false
				break
			}
			areas[i] = res.Area()
			row = append(row, fmt.Sprint(res.Area()))
		}
		if !ok {
			continue
		}
		count++
		for i, a := range areas {
			sums[i] += a
		}
		rows = append(rows, row)
	}
	header := "name"
	for _, c := range cfgs {
		header += "\t" + c.name
	}
	lines := table(header, rows)
	totals := "totals"
	for _, s := range sums {
		totals += fmt.Sprintf("\t%d", s)
	}
	lines = append(lines, table(header, [][]string{splitTabs(totals)})[1])
	metrics := map[string]float64{}
	for i, c := range cfgs {
		metrics["area_"+c.name] = float64(sums[i])
	}
	metrics["functions"] = float64(count)
	return &Report{
		ID:      "A1",
		Title:   "synthesis ablations: covers, cell heuristic, post-reduction",
		Lines:   lines,
		Metrics: metrics,
	}
}

func splitTabs(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\t' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

// AblationHybridThreshold sweeps the hybrid BISM blind-retry budget at
// a mid defect density, the knob DESIGN.md §5 highlights: too small
// wastes diagnosis on easy chips, too large degenerates to blind.
func AblationHybridThreshold() *Report {
	rng := rand.New(rand.NewSource(17))
	n, appDim, trials, budget := 32, 8, 80, 300
	density := 0.06
	diagCost := 10.0
	var rows [][]string
	metrics := map[string]float64{}
	for _, bb := range []int{1, 2, 4, 8, 16, 32} {
		m := bism.Hybrid{BlindBudget: bb}
		ok := 0
		cost := 0.0
		for t := 0; t < trials; t++ {
			dm := defect.Random(n, n, defect.UniformCrosspoint(density), rng)
			app := bism.RandomApp(appDim, appDim, 0.5, rng)
			mp, st := m.Map(bism.NewChip(dm), app, budget, rng)
			if mp != nil {
				ok++
			}
			cost += st.Cost(diagCost)
		}
		rows = append(rows, []string{
			fmt.Sprint(bb),
			fmt.Sprintf("%d%%", ok*100/trials),
			fmt.Sprintf("%.1f", cost/float64(trials)),
		})
		metrics[fmt.Sprintf("cost_bb%d", bb)] = cost / float64(trials)
	}
	lines := table("blind budget\tsuccess\tmean cost", rows)
	lines = append(lines, fmt.Sprintf("chip %d×%d, app %d×%d, density %.2f, BISD %.0f× BIST",
		n, n, appDim, appDim, density, diagCost))
	return &Report{
		ID:      "A2",
		Title:   "hybrid BISM blind-budget sweep",
		Lines:   lines,
		Metrics: metrics,
	}
}
