package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestE1PaperAnchors(t *testing.T) {
	r := E1TwoTerminalSizes()
	if r.Metrics["xnor2_diode_area"] != 10 {
		t.Fatalf("xnor2 diode area %v, paper says 2×5", r.Metrics["xnor2_diode_area"])
	}
	if r.Metrics["xnor2_fet_area"] != 16 {
		t.Fatalf("xnor2 FET area %v, paper says 4×4", r.Metrics["xnor2_fet_area"])
	}
}

func TestE2LatticeFavorable(t *testing.T) {
	r := E2FourTerminalComparison()
	wins, total := r.Metrics["lattice_wins"], r.Metrics["total"]
	if total < 10 {
		t.Fatalf("suite too small: %v", total)
	}
	if wins*3 < total*2 {
		t.Fatalf("paper claim violated: lattice smallest only %v/%v", wins, total)
	}
	if r.Metrics["mean_lat_area"] >= r.Metrics["mean_diode_area"] {
		t.Fatal("mean lattice area should beat diode")
	}
}

func TestE3HandLattice(t *testing.T) {
	r := E3Fig4()
	if r.Metrics["correct"] != 1 {
		t.Fatal("Fig.4 hand lattice incorrect")
	}
	if r.Metrics["hand_area"] != 6 {
		t.Fatalf("hand area %v", r.Metrics["hand_area"])
	}
	if r.Metrics["dual_area"] < r.Metrics["hand_area"] {
		t.Fatal("dual method cannot beat the hand lattice here")
	}
}

func TestE4DecompositionHelps(t *testing.T) {
	r := E4PCircuit()
	if r.Metrics["tried_exact"] < 5 {
		t.Fatal("too few functions")
	}
	if r.Metrics["improved_exact"] < 1 {
		t.Fatal("decomposition never improved with exact covers")
	}
	if r.Metrics["improved_isop"] < 1 {
		t.Fatal("decomposition never improved with isop covers")
	}
}

func TestE5DReducibleHelps(t *testing.T) {
	r := E5DReducible()
	if r.Metrics["tried"] < 10 {
		t.Fatal("too few functions")
	}
	// The technique targets functions whose projection is genuinely
	// smaller (large n, low codimension); there it must win nearly
	// always, and the overall family mean must still improve.
	if r.Metrics["big_improved"] < r.Metrics["big_tried"]-1 {
		t.Fatalf("target regime improved only %v/%v", r.Metrics["big_improved"], r.Metrics["big_tried"])
	}
	if r.Metrics["improved"]*3 < r.Metrics["tried"] {
		t.Fatalf("D-reduction improved only %v/%v overall", r.Metrics["improved"], r.Metrics["tried"])
	}
	if r.Metrics["mean_dec"] >= r.Metrics["mean_direct"] {
		t.Fatal("mean decomposed area should improve")
	}
}

func TestE6FullCoverage(t *testing.T) {
	r := E6BIST()
	if r.Metrics["coverage_16"] != 1 {
		t.Fatalf("coverage %v != 100%%", r.Metrics["coverage_16"])
	}
}

func TestE7RegimeSeparation(t *testing.T) {
	p := DefaultE7Params()
	p.Trials = 25 // keep the unit test fast; benches run the full sweep
	r := E7BISM(p)
	// At the lowest density everything succeeds.
	if r.Metrics["blind_ok_0.001"] < 0.9 {
		t.Fatalf("blind at 0.001: %v", r.Metrics["blind_ok_0.001"])
	}
	// At the highest density blind collapses but greedy survives.
	blind := r.Metrics["blind_ok_0.150"]
	greedy := r.Metrics["greedy_ok_0.150"]
	if greedy <= blind {
		t.Fatalf("no regime separation: blind %v greedy %v", blind, greedy)
	}
	// Hybrid close to the better scheme at both ends.
	if r.Metrics["hybrid(4)_ok_0.150"] < greedy-0.25 {
		t.Fatalf("hybrid lost at high density: %v vs %v", r.Metrics["hybrid(4)_ok_0.150"], greedy)
	}
}

func TestE8FlowAdvantage(t *testing.T) {
	p := DefaultE8Params()
	p.Trials = 15
	p.Ns = []int{16, 32}
	r := E8DefectUnaware(p)
	if r.Metrics["cost_advantage"] <= 1 {
		t.Fatalf("defect-unaware flow should win at scale: %v", r.Metrics["cost_advantage"])
	}
	// k degrades with density.
	if r.Metrics["meanK_n32_p0.01"] <= r.Metrics["meanK_n32_p0.20"] {
		t.Fatal("recovered k should fall with density")
	}
}

func TestE9Extension(t *testing.T) {
	r := E9ArithSSM()
	if r.Metrics["ssm_equiv"] != 1 {
		t.Fatal("SSM not equivalent to reference")
	}
	if r.Metrics["adder8_area"] <= r.Metrics["adder2_area"] {
		t.Fatal("adder area must grow with width")
	}
	// Linear-ish growth: 8-bit no more than ~6× the 2-bit cost.
	if r.Metrics["adder8_area"] > 6*r.Metrics["adder2_area"] {
		t.Fatalf("adder area superlinear: %v vs %v", r.Metrics["adder8_area"], r.Metrics["adder2_area"])
	}
}

func TestReportRendering(t *testing.T) {
	r := E3Fig4()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "E3") || !strings.Contains(s, "TOP") {
		t.Fatalf("report rendering:\n%s", s)
	}
}

func TestE10VariationShape(t *testing.T) {
	r := E10Variation()
	// Guard band must widen with sigma and placement must help.
	if r.Metrics["p99_over_mean_s0.5"] <= r.Metrics["p99_over_mean_s0.2"] {
		t.Fatalf("guard band not widening: %v vs %v",
			r.Metrics["p99_over_mean_s0.2"], r.Metrics["p99_over_mean_s0.5"])
	}
	if r.Metrics["placement_gain_s0.5"] <= 0 {
		t.Fatal("variation-aware placement gain must be positive")
	}
}

func TestE11LifetimeShape(t *testing.T) {
	r := E11Lifetime()
	if r.Metrics["tmr_err"] >= r.Metrics["bare_err"] {
		t.Fatalf("TMR must suppress transients: %v vs %v",
			r.Metrics["tmr_err"], r.Metrics["bare_err"])
	}
	// Repair extends lifetime, and more frequent retest extends it more.
	if r.Metrics["alive_period_8"] <= r.Metrics["alive_period_0"] {
		t.Fatal("repair did not extend lifetime")
	}
	if r.Metrics["alive_period_2"] < r.Metrics["alive_period_8"] {
		t.Fatal("more frequent retest should not shorten lifetime")
	}
}

func TestAblationSynthesis(t *testing.T) {
	r := AblationSynthesis()
	if r.Metrics["functions"] < 10 {
		t.Fatal("too few functions in the ablation")
	}
	full := r.Metrics["area_exact+freq+reduce"]
	if full > r.Metrics["area_no-postreduce"] {
		t.Fatal("post-reduction must never grow total area")
	}
	if full > r.Metrics["area_isop-covers"] {
		t.Fatal("exact covers must not lose to ISOP in total area")
	}
}

func TestAblationHybridThreshold(t *testing.T) {
	r := AblationHybridThreshold()
	// The sweep must produce costs for every budget and show the knob
	// matters: at this density with BISD priced at 10× BIST, a tiny
	// blind budget burns expensive diagnoses on chips a few blind
	// retries would clear, so the smallest budget must be the most
	// expensive by a clear margin. (The bb16/bb32 ordering at the cheap
	// end is within trial noise, so the test does not pin it.)
	best, bestKey := 1e18, ""
	for k, v := range r.Metrics {
		if v < best {
			best, bestKey = v, k
		}
	}
	if bestKey == "cost_bb1" {
		t.Fatalf("unexpected: smallest blind budget cheapest (%v)", r.Metrics)
	}
	if r.Metrics["cost_bb1"] < 1.5*best {
		t.Fatalf("blind-budget sweep too flat: bb1 %v vs best %v (%v)",
			r.Metrics["cost_bb1"], best, r.Metrics)
	}
}
