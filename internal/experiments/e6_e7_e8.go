package experiments

import (
	"fmt"
	"math/rand"

	"nanoxbar/internal/bism"
	"nanoxbar/internal/bist"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/dflow"
)

// E6BIST reproduces §IV-A: exhaustive single-fault coverage with a
// size-independent configuration count, and diagnosis with a
// logarithmic configuration count and resource-unique syndromes.
func E6BIST() *Report {
	var rows [][]string
	metrics := map[string]float64{}
	for _, sh := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {32, 32}, {8, 16}, {16, 8}} {
		r, c := sh[0], sh[1]
		det := bist.DetectionSuite(r, c)
		covered, total := det.Coverage()
		diag := bist.DiagnosisSuite(r, c)
		amb := 0
		for _, group := range diag.SyndromeTable() {
			if len(group) > 1 {
				amb++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d×%d", r, c),
			fmt.Sprint(total),
			fmt.Sprintf("%d/%d", covered, total),
			fmt.Sprint(det.NumConfigs()), fmt.Sprint(det.NumVectors()),
			fmt.Sprint(diag.NumConfigs()), fmt.Sprint(bist.LogBound(r, c)),
			fmt.Sprint(amb),
		})
		if r == 16 && c == 16 {
			metrics["coverage_16"] = float64(covered) / float64(total)
			metrics["diag_configs_16"] = float64(diag.NumConfigs())
		}
	}
	lines := table("array\tfaults\tdetected\tdet-cfgs\tdet-vecs\tdiag-cfgs\tlog-bound\tsame-resource-groups", rows)
	lines = append(lines, "detection coverage is exhaustive; diagnosis configurations grow as Θ(log RC)")
	return &Report{ID: "E6", Title: "BIST coverage and logarithmic BISD (§IV-A)", Lines: lines, Metrics: metrics}
}

// E7Params size the BISM Monte Carlo.
type E7Params struct {
	N           int     // chip dimension
	AppDim      int     // application dimension
	AppDensity  float64 // closed-crosspoint density of the application
	Trials      int
	MaxAttempts int
	DiagCost    float64 // BISD session cost relative to BIST
	Densities   []float64
	Seed        int64
}

// DefaultE7Params match the regime sweep in EXPERIMENTS.md.
func DefaultE7Params() E7Params {
	return E7Params{
		N: 32, AppDim: 8, AppDensity: 0.5, Trials: 60, MaxAttempts: 300,
		DiagCost:  10,
		Densities: []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.15},
		Seed:      42,
	}
}

// E7BISM reproduces §IV-B: blind vs greedy vs hybrid self-mapping
// across defect densities — blind cheap at low density, greedy robust
// at high density, hybrid tracking the better of the two everywhere.
func E7BISM(p E7Params) *Report {
	rng := rand.New(rand.NewSource(p.Seed))
	mappers := []bism.Mapper{bism.Blind{}, bism.Greedy{}, bism.Hybrid{BlindBudget: 4}}
	var rows [][]string
	metrics := map[string]float64{}
	for _, density := range p.Densities {
		type acc struct {
			ok      int
			configs int
			cost    float64
		}
		accs := make([]acc, len(mappers))
		for trial := 0; trial < p.Trials; trial++ {
			dm := defect.Random(p.N, p.N, defect.UniformCrosspoint(density), rng)
			app := bism.RandomApp(p.AppDim, p.AppDim, p.AppDensity, rng)
			ch := bism.NewChip(dm)
			for mi, m := range mappers {
				mp, st := m.Map(ch, app, p.MaxAttempts, rng)
				if mp != nil {
					accs[mi].ok++
				}
				accs[mi].configs += st.Configs
				accs[mi].cost += st.Cost(p.DiagCost)
			}
		}
		for mi, m := range mappers {
			a := accs[mi]
			rows = append(rows, []string{
				fmt.Sprintf("%.3f", density), m.Name(),
				fmt.Sprintf("%d%%", a.ok*100/p.Trials),
				fmt.Sprintf("%.1f", float64(a.configs)/float64(p.Trials)),
				fmt.Sprintf("%.1f", a.cost/float64(p.Trials)),
			})
			metrics[fmt.Sprintf("%s_ok_%.3f", m.Name(), density)] = float64(a.ok) / float64(p.Trials)
		}
	}
	lines := table("density\tscheme\tsuccess\tmean-configs\tmean-cost", rows)
	lines = append(lines, fmt.Sprintf("chip %d×%d, app %d×%d (density %.2f), budget %d configs, BISD cost %.0f× BIST",
		p.N, p.N, p.AppDim, p.AppDim, p.AppDensity, p.MaxAttempts, p.DiagCost))
	return &Report{ID: "E7", Title: "blind / greedy / hybrid BISM (§IV-B)", Lines: lines, Metrics: metrics}
}

// E8Params size the defect-unaware flow study.
type E8Params struct {
	Ns        []int
	Densities []float64
	Trials    int
	Seed      int64
	NChips    int
	NApps     int
}

// DefaultE8Params match EXPERIMENTS.md.
func DefaultE8Params() E8Params {
	return E8Params{
		Ns:        []int{16, 32, 64},
		Densities: []float64{0.01, 0.05, 0.10, 0.20},
		Trials:    40,
		Seed:      7,
		NChips:    1000,
		NApps:     10,
	}
}

// E8DefectUnaware reproduces Fig. 6: the recoverable k×k sub-crossbar
// size across array sizes and defect densities, the O(N) descriptor,
// and the flow-cost comparison between the traditional defect-aware and
// the proposed defect-unaware flow.
func E8DefectUnaware(p E8Params) *Report {
	rng := rand.New(rand.NewSource(p.Seed))
	var rows [][]string
	metrics := map[string]float64{}
	for _, n := range p.Ns {
		for _, density := range p.Densities {
			sumK := 0
			for t := 0; t < p.Trials; t++ {
				m := defect.Random(n, n, defect.UniformCrosspoint(density), rng)
				sumK += dflow.Greedy(m).K()
			}
			meanK := float64(sumK) / float64(p.Trials)
			e := dflow.Greedy(defect.NewMap(n, n))
			rows = append(rows, []string{
				fmt.Sprint(n), fmt.Sprintf("%.2f", density),
				fmt.Sprintf("%.1f", meanK),
				fmt.Sprintf("%.0f%%", 100*meanK/float64(n)),
				fmt.Sprint(e.DescriptorBits(n)), fmt.Sprint(dflow.RawMapBits(n)),
			})
			metrics[fmt.Sprintf("meanK_n%d_p%.2f", n, density)] = meanK
		}
	}
	lines := table("N\tdensity\tmean k\tk/N\tdescriptor bits (k=N)\traw map bits", rows)

	// Flow cost comparison at a representative recovery point.
	n := 64
	m := defect.Random(n, n, defect.UniformCrosspoint(0.05), rng)
	k := dflow.Greedy(m).K()
	var costRows [][]string
	for _, chips := range []int{1, 10, 100, p.NChips} {
		aware, unaware := dflow.CompareFlows(n, k, chips, p.NApps, dflow.DefaultCosts())
		costRows = append(costRows, []string{
			fmt.Sprint(chips), fmt.Sprint(p.NApps), fmt.Sprint(k),
			fmt.Sprintf("%.0f", aware), fmt.Sprintf("%.0f", unaware),
			fmt.Sprintf("%.2f×", aware/unaware),
		})
	}
	lines = append(lines, "")
	lines = append(lines, table("chips\tapps\tk\taware-cost\tunaware-cost\tadvantage", costRows)...)
	aware, unaware := dflow.CompareFlows(n, k, p.NChips, p.NApps, dflow.DefaultCosts())
	metrics["cost_advantage"] = aware / unaware
	return &Report{ID: "E8", Title: "defect-unaware design flow (Fig. 6)", Lines: lines, Metrics: metrics}
}
