package experiments

import (
	"fmt"
	"math/rand"

	"nanoxbar/internal/arith"
	"nanoxbar/internal/latsynth"
)

// E9ArithSSM covers the paper's future-work objectives 3 and 4
// (Section V): arithmetic elements and a synchronous state machine
// realized on crossbar logic. It reports the lattice-network cost of
// ripple adders and comparators (versus the exploding flat
// single-lattice alternative) and verifies the "101" sequence-detector
// SSM against its reference automaton.
func E9ArithSSM() *Report {
	opts := latsynth.DefaultOptions()
	var rows [][]string
	metrics := map[string]float64{}

	// Adders: per-width network cost + correctness spot check.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8} {
		nw := arith.RippleAdder(n, opts)
		okAll := true
		for t := 0; t < 100; t++ {
			a := rng.Uint64() & (1<<uint(n) - 1)
			b := rng.Uint64() & (1<<uint(n) - 1)
			if arith.AddUint(nw, n, a, b) != a+b {
				okAll = false
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("adder%d", n), fmt.Sprint(nw.NumLattices()),
			fmt.Sprint(nw.TotalArea()), fmt.Sprint(okAll),
		})
		metrics[fmt.Sprintf("adder%d_area", n)] = float64(nw.TotalArea())
	}
	// Comparators.
	for _, n := range []int{2, 4} {
		nw := arith.Comparator(n, opts)
		okAll := true
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				if arith.GreaterUint(nw, n, a, b) != (a > b) {
					okAll = false
				}
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("cmp%d", n), fmt.Sprint(nw.NumLattices()),
			fmt.Sprint(nw.TotalArea()), fmt.Sprint(okAll),
		})
	}
	lines := table("circuit\tlattices\ttotal area\tverified", rows)

	// SSM: synthesize the 101 detector, compare against the reference.
	spec := arith.SequenceDetector101()
	m, err := arith.SynthesizeSSM(spec, opts)
	if err != nil {
		lines = append(lines, "SSM synthesis failed: "+err.Error())
		return &Report{ID: "E9", Title: "arithmetic elements and SSM (Section V)", Lines: lines, Metrics: metrics}
	}
	in := make([]uint64, 200)
	for i := range in {
		in[i] = uint64(rng.Intn(2))
	}
	got := m.Run(in)
	want := spec.ReferenceRun(in)
	match := true
	for i := range want {
		if got[i] != want[i] {
			match = false
		}
	}
	lines = append(lines, fmt.Sprintf("SSM '101 detector': %d states, %d next-state lattices, logic area %d, 200-step equivalence: %v",
		spec.NumStates, len(m.NextBits), m.TotalArea(), match))
	metrics["ssm_area"] = float64(m.TotalArea())
	metrics["ssm_equiv"] = b2f(match)
	return &Report{ID: "E9", Title: "arithmetic elements and SSM (Section V)", Lines: lines, Metrics: metrics}
}
