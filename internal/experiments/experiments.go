// Package experiments regenerates every table and figure of the DATE'17
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// experiment returns a formatted report and structured results; the
// cmd/repro binary prints the reports that EXPERIMENTS.md records, and
// the top-level benchmarks re-run them under `go test -bench`.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Report is the outcome of one experiment.
type Report struct {
	ID      string
	Title   string
	Lines   []string           // preformatted table rows
	Metrics map[string]float64 // key numbers for benchmarks/EXPERIMENTS.md
}

// WriteTo renders the report.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// table formats rows with aligned columns.
func table(header string, rows [][]string) []string {
	var buf strings.Builder
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, header)
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	out := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	return out
}

// All runs every experiment with default parameters.
func All() []*Report {
	return []*Report{
		E1TwoTerminalSizes(),
		E2FourTerminalComparison(),
		E3Fig4(),
		E4PCircuit(),
		E5DReducible(),
		E6BIST(),
		E7BISM(DefaultE7Params()),
		E8DefectUnaware(DefaultE8Params()),
		E9ArithSSM(),
		E10Variation(),
		E11Lifetime(),
	}
}
