package experiments

import (
	"fmt"
	"math/rand"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/dreduce"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/pcircuit"
)

// E4PCircuit reproduces §III-B-1: lattice areas with and without the
// P-circuit decomposition preprocessing, under both the dual-method [2]
// synthesizer (exact covers) and the ISOP-based heuristic covers (the
// stand-in for the second synthesis method the paper applies).
func E4PCircuit() *Report {
	type variant struct {
		name string
		opts latsynth.Options
	}
	variants := []variant{
		{"exact", latsynth.DefaultOptions()},
		{"isop", latsynth.Options{Exact: false, Cells: latsynth.MostFrequent, PostReduce: true}},
	}
	var rows [][]string
	improved := map[string]int{}
	tried := map[string]int{}
	for _, s := range e4Functions() {
		for _, v := range variants {
			base, err := latsynth.DualMethod(s.F, v.opts)
			if err != nil {
				continue
			}
			dec, err := pcircuit.Best(s.F, pcircuit.Options{Synth: v.opts, Mode: pcircuit.WithIntersection})
			if err != nil {
				continue
			}
			tried[v.name]++
			delta := "="
			if dec.Area() < base.Area() {
				improved[v.name]++
				delta = fmt.Sprintf("-%d%%", (base.Area()-dec.Area())*100/base.Area())
			} else if dec.Area() > base.Area() {
				delta = fmt.Sprintf("+%d%%", (dec.Area()-base.Area())*100/base.Area())
			}
			rows = append(rows, []string{
				s.Name, v.name, fmt.Sprint(base.Area()),
				fmt.Sprint(dec.Area()), fmt.Sprintf("x%d/%v", dec.Var+1, dec.Mode), delta,
			})
		}
	}
	lines := table("name\tcovers\tdual\tpcircuit\tsplit\tΔ", rows)
	for _, v := range variants {
		lines = append(lines, fmt.Sprintf("%s covers: decomposition improved %d/%d functions",
			v.name, improved[v.name], tried[v.name]))
	}
	return &Report{
		ID:    "E4",
		Title: "P-circuit decomposition preprocessing (§III-B-1)",
		Lines: lines,
		Metrics: map[string]float64{
			"improved_exact": float64(improved["exact"]),
			"tried_exact":    float64(tried["exact"]),
			"improved_isop":  float64(improved["isop"]),
			"tried_isop":     float64(tried["isop"]),
		},
	}
}

// e4Functions picks decomposition-friendly benchmark shapes: mux-like
// and mixed-support functions where projections genuinely shrink.
func e4Functions() []benchfn.Spec {
	specs := []benchfn.Spec{
		benchfn.Mux(1),
		benchfn.Mux(2),
		benchfn.Majority(5),
		benchfn.Threshold(6, 2),
		benchfn.AdderBit(2, 1),
		benchfn.ComparatorGT(2),
		benchfn.Rd(5, 1),
	}
	for seed := int64(10); seed < 16; seed++ {
		specs = append(specs, benchfn.RandomDensity(6, 0.35, seed))
	}
	return specs
}

// E5DReducible reproduces §III-B-2: lattice areas with and without the
// D-reducibility preprocessing on a seeded family of D-reducible
// functions across dimensions and codimensions.
func E5DReducible() *Report {
	opts := latsynth.DefaultOptions()
	var rows [][]string
	improved, tried := 0, 0
	bigImproved, bigTried := 0, 0 // the n=8, codim≤2 subclass
	var sumDirect, sumDecomp float64
	for _, n := range []int{6, 7, 8} {
		for _, codim := range []int{1, 2, 3} {
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(100*int64(n) + 10*int64(codim) + seed))
				f, _ := dreduce.RandomDReducible(n, codim, 0.5, rng)
				direct, err := latsynth.DualMethod(f, opts)
				if err != nil {
					continue
				}
				dec, err := dreduce.Synthesize(f, opts)
				if err != nil {
					continue
				}
				tried++
				sumDirect += float64(direct.Area())
				sumDecomp += float64(dec.Area())
				mark := "="
				if dec.Area() < direct.Area() {
					improved++
					mark = "better"
				} else if dec.Area() > direct.Area() {
					mark = "worse"
				}
				if n == 8 && codim <= 2 {
					bigTried++
					if dec.Area() < direct.Area() {
						bigImproved++
					}
				}
				rows = append(rows, []string{
					fmt.Sprintf("n=%d codim=%d seed=%d", n, codim, seed),
					fmt.Sprint(dec.Analysis.Affine.Dim()),
					fmt.Sprint(direct.Area()), fmt.Sprint(dec.Area()), mark,
				})
			}
		}
	}
	lines := table("function\tdim(A)\tdirect\tdreduce\tresult", rows)
	lines = append(lines,
		fmt.Sprintf("decomposition improved %d/%d; mean area %.1f → %.1f",
			improved, tried, sumDirect/float64(tried), sumDecomp/float64(tried)),
		fmt.Sprintf("large/low-codim subclass (n=8, codim≤2): improved %d/%d — the regime the technique targets",
			bigImproved, bigTried))
	return &Report{
		ID:    "E5",
		Title: "D-reducible preprocessing (§III-B-2)",
		Lines: lines,
		Metrics: map[string]float64{
			"improved":     float64(improved),
			"tried":        float64(tried),
			"big_improved": float64(bigImproved),
			"big_tried":    float64(bigTried),
			"mean_direct":  sumDirect / float64(tried),
			"mean_dec":     sumDecomp / float64(tried),
		},
	}
}
