package experiments

import (
	"fmt"
	"math"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/core"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/xbar2t"
)

// E1TwoTerminalSizes reproduces Fig. 3: the diode and FET array size
// formulas, anchored on the paper's worked example (diode 2×5, FET 4×4
// for f = x1x2 + x1'x2'), across the benchmark suite.
func E1TwoTerminalSizes() *Report {
	opts := latsynth.DefaultOptions()
	var rows [][]string
	metrics := map[string]float64{}
	for _, s := range benchfn.Suite() {
		fc, dc, exact := latsynth.Covers(s.F, opts)
		sz := xbar2t.FormulaSizes(fc, dc)
		sop := "exact"
		if !exact {
			sop = "isop"
		}
		rows = append(rows, []string{
			s.Name, fmt.Sprint(s.N()), sop,
			fmt.Sprint(fc.NumProducts()), fmt.Sprint(fc.DistinctLiterals()), fmt.Sprint(dc.NumProducts()),
			fmt.Sprintf("%d×%d", sz.DiodeRows, sz.DiodeCols),
			fmt.Sprintf("%d×%d", sz.FETRows, sz.FETCols),
			fmt.Sprint(sz.DiodeArea()), fmt.Sprint(sz.FETArea()),
		})
		if s.Name == "xnor2" {
			metrics["xnor2_diode_area"] = float64(sz.DiodeArea())
			metrics["xnor2_fet_area"] = float64(sz.FETArea())
		}
	}
	return &Report{
		ID:      "E1",
		Title:   "two-terminal array sizes (Fig. 3 formulas)",
		Lines:   table("name\tn\tsop\tP(f)\tL(f)\tP(fD)\tdiode\tFET\tdA\tfA", rows),
		Metrics: metrics,
	}
}

// E2FourTerminalComparison reproduces the Fig. 5 formula and the paper's
// headline claim that four-terminal lattices offer favorably better
// sizes than the two-terminal implementations.
func E2FourTerminalComparison() *Report {
	opts := core.DefaultOptions()
	var rows [][]string
	wins, total := 0, 0
	var logDiode, logFET, logLat float64
	for _, s := range benchfn.Suite() {
		cmp, err := core.CompareTechnologies(s.F, opts)
		if err != nil {
			rows = append(rows, []string{s.Name, "error: " + err.Error()})
			continue
		}
		total++
		la, da, fa := cmp.Lattice.Area(), cmp.Diode.Area(), cmp.FET.Area()
		logDiode += math.Log(float64(da))
		logFET += math.Log(float64(fa))
		logLat += math.Log(float64(la))
		winner := "lattice"
		if la > da || la > fa {
			winner = "2T"
		} else {
			wins++
		}
		rows = append(rows, []string{
			s.Name, fmt.Sprint(s.N()),
			fmt.Sprintf("%d×%d", cmp.Diode.Rows, cmp.Diode.Cols),
			fmt.Sprintf("%d×%d", cmp.FET.Rows, cmp.FET.Cols),
			fmt.Sprintf("%d×%d", cmp.Lattice.Rows, cmp.Lattice.Cols),
			cmp.Lattice.Method,
			fmt.Sprint(da), fmt.Sprint(fa), fmt.Sprint(la), winner,
		})
	}
	gm := func(logSum float64) float64 { return math.Exp(logSum / float64(total)) }
	lines := table("name\tn\tdiode\tFET\tlattice\tmethod\tdA\tfA\tlA\twinner", rows)
	lines = append(lines,
		fmt.Sprintf("lattice smallest-or-tied on %d/%d functions", wins, total),
		fmt.Sprintf("geomean areas: diode %.1f, FET %.1f, lattice %.1f",
			gm(logDiode), gm(logFET), gm(logLat)))
	return &Report{
		ID:    "E2",
		Title: "diode vs FET vs four-terminal lattice areas (Fig. 5, §I claim)",
		Lines: lines,
		Metrics: map[string]float64{
			"lattice_wins":    float64(wins),
			"total":           float64(total),
			"mean_diode_area": gm(logDiode),
			"mean_fet_area":   gm(logFET),
			"mean_lat_area":   gm(logLat),
		},
	}
}

// E3Fig4 reproduces the paper's Fig. 4 worked example: the hand-crafted
// 3×2 lattice computing x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6, its path
// products, and the sizes the synthesis methods achieve on the same
// function.
func E3Fig4() *Report {
	spec := benchfn.Fig4()
	hand := lattice.New(3, 2)
	for i := 0; i < 3; i++ {
		hand.Set(i, 0, lattice.Lit(i, false))
		hand.Set(i, 1, lattice.Lit(3+i, false))
	}
	lines := []string{"hand lattice (Fig. 4):"}
	lines = append(lines, hand.String())
	ok := hand.Implements(spec.F)
	lines = append(lines, fmt.Sprintf("hand lattice implements caption SOP: %v", ok))
	paths, err := hand.Paths(100000)
	if err == nil {
		lines = append(lines, fmt.Sprintf("path products: %v", paths))
	}
	res, err := latsynth.DualMethod(spec.F, latsynth.DefaultOptions())
	metrics := map[string]float64{"hand_area": float64(hand.Area()), "correct": b2f(ok)}
	if err == nil {
		lines = append(lines, fmt.Sprintf("dual-method synthesis: %d×%d (area %d), hand area %d",
			res.Lattice.R, res.Lattice.C, res.Area(), hand.Area()))
		metrics["dual_area"] = float64(res.Area())
	}
	return &Report{ID: "E3", Title: "Fig. 4 four-terminal lattice example", Lines: lines, Metrics: metrics}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
