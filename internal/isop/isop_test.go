package isop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/truthtab"
)

func randTT(n int, rng *rand.Rand) truthtab.TT {
	t := truthtab.New(n)
	for a := uint64(0); a < t.Size(); a++ {
		if rng.Intn(2) == 1 {
			t.SetBit(a, true)
		}
	}
	return t
}

func TestConstants(t *testing.T) {
	for n := 0; n <= 6; n++ {
		if len(OfTT(truthtab.Zero(n))) != 0 {
			t.Fatal("cover of 0 not empty")
		}
		c := OfTT(truthtab.One(n))
		if len(c) != 1 || !c[0].IsUniverse() {
			t.Fatalf("cover of 1 = %v", c)
		}
	}
}

func TestSingleVar(t *testing.T) {
	f := truthtab.Var(3, 1)
	c := OfTT(f)
	if len(c) != 1 || c[0].String() != "x2" {
		t.Fatalf("cover = %v", c)
	}
}

func TestExactCoverProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(8)
		f := randTT(n, rng)
		c := OfTT(f)
		if !cube.IsCoverOf(c, f) {
			t.Fatalf("ISOP cover != f for n=%d f=%v cover=%v", n, f, c)
		}
	}
}

func TestIrredundancy(t *testing.T) {
	// Removing any cube must lose part of the on-set (with L = U = f).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		n := 2 + rng.Intn(5)
		f := randTT(n, rng)
		c := OfTT(f)
		for k := range c {
			reduced := make(cube.Cover, 0, len(c)-1)
			reduced = append(reduced, c[:k]...)
			reduced = append(reduced, c[k+1:]...)
			if cube.IsCoverOf(reduced, f) {
				t.Fatalf("cube %v redundant in cover %v of %v", c[k], c, f)
			}
		}
	}
}

func TestAllCubesAreImplicants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(7)
		f := randTT(n, rng)
		for _, cb := range OfTT(f) {
			if !cube.IsImplicant(cb, f) {
				t.Fatalf("cube %v not implicant of %v", cb, f)
			}
		}
	}
}

func TestIntervalProperty(t *testing.T) {
	// With don't-cares: L ⇒ cover ⇒ U.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(6)
		a, b := randTT(n, rng), randTT(n, rng)
		L := a.And(b) // ensure L ⇒ U
		U := a.Or(b)
		c := Cover(L, U)
		g := c.ToTT(n)
		if !L.Implies(g) {
			t.Fatalf("cover misses required on-set: L=%v U=%v g=%v", L, U, g)
		}
		if !g.Implies(U) {
			t.Fatalf("cover exceeds upper bound: L=%v U=%v g=%v", L, U, g)
		}
	}
}

func TestDontCaresShrinkCover(t *testing.T) {
	// f = x1x2 with DC everywhere x1=1: minimal choice is just x1.
	n := 2
	L := truthtab.Var(n, 0).And(truthtab.Var(n, 1))
	U := truthtab.Var(n, 0)
	c := Cover(L, U)
	if len(c) != 1 || c[0].NumLiterals() != 1 {
		t.Fatalf("expected single-literal cube, got %v", c)
	}
}

func TestKnownFunctions(t *testing.T) {
	// XOR needs 2 products; XNOR needs 2.
	xor := truthtab.Var(2, 0).Xor(truthtab.Var(2, 1))
	if c := OfTT(xor); len(c) != 2 {
		t.Fatalf("xor cover = %v", c)
	}
	// Majority-3: exactly 3 prime implicants of 2 literals each.
	maj := truthtab.FromFunc(3, func(a uint64) bool {
		return a&1+a>>1&1+a>>2&1 >= 2
	})
	c := OfTT(maj)
	if len(c) != 3 {
		t.Fatalf("maj3 cover = %v", c)
	}
	for _, cb := range c {
		if cb.NumLiterals() != 2 {
			t.Fatalf("maj3 cube %v not prime-sized", cb)
		}
	}
}

func TestParity(t *testing.T) {
	// Parity of n vars needs 2^(n-1) products — ISOP must find exactly
	// that (every prime of parity is a minterm).
	for n := 2; n <= 6; n++ {
		p := truthtab.Zero(n)
		for a := uint64(0); a < p.Size(); a++ {
			ones := 0
			for v := 0; v < n; v++ {
				if a>>uint(v)&1 == 1 {
					ones++
				}
			}
			if ones%2 == 1 {
				p.SetBit(a, true)
			}
		}
		c := OfTT(p)
		if len(c) != 1<<(n-1) {
			t.Fatalf("parity%d cover has %d products, want %d", n, len(c), 1<<(n-1))
		}
	}
}

func TestQuickInterval(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a, b := randTT(n, rng), randTT(n, rng)
		L, U := a.And(b), a.Or(b)
		g := Cover(L, U).ToTT(n)
		return L.Implies(g) && g.Implies(U)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPanicOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for L not implying U")
		}
	}()
	Cover(truthtab.One(2), truthtab.Zero(2))
}

func TestLargerN(t *testing.T) {
	// Sanity at n=12 (beyond exact-minimizer comfort).
	rng := rand.New(rand.NewSource(6))
	f := truthtab.FromFunc(12, func(a uint64) bool { return rng.Intn(4) == 0 })
	c := OfTT(f)
	if !cube.IsCoverOf(c, f) {
		t.Fatal("n=12 ISOP cover mismatch")
	}
}
