// Package isop computes irredundant sum-of-products covers with the
// Minato–Morreale recursive algorithm, operating on truth-table
// intervals.
//
// Given a lower bound L and an upper bound U with L ⇒ U, Cover returns an
// irredundant cover c of some function g with L ⇒ g ⇒ U. With L = U = f
// this is an irredundant SOP of f; the don't-care gap between L and U is
// the flexibility the P-circuit decomposition of the DATE'17 paper
// exploits.
//
// Unlike the exact Quine–McCluskey minimizer (package qm), ISOP is
// polynomial per cube and scales to the full 24-variable range of
// package truthtab, at the cost of yielding an irredundant rather than a
// minimum cover.
package isop

import (
	"fmt"

	"nanoxbar/internal/cube"
	"nanoxbar/internal/truthtab"
)

// Cover returns an irredundant SOP cover c with L ⇒ cover(c) ⇒ U.
// It panics if L does not imply U.
func Cover(L, U truthtab.TT) cube.Cover {
	if L.NumVars() != U.NumVars() {
		panic("isop: variable count mismatch")
	}
	if !L.Implies(U) {
		panic(fmt.Sprintf("isop: L does not imply U (L=%v, U=%v)", L, U))
	}
	cv, _ := irredundant(L, U, 0)
	return cv
}

// OfTT returns an irredundant SOP of f (no don't-cares).
func OfTT(f truthtab.TT) cube.Cover { return Cover(f, f) }

// irredundant implements Minato–Morreale. v is the lowest variable index
// that may still be split on. It returns the cover and the function the
// cover computes (needed by the recursion to build the "both halves"
// remainder).
func irredundant(L, U truthtab.TT, v int) (cube.Cover, truthtab.TT) {
	n := L.NumVars()
	if L.IsZero() {
		return nil, truthtab.Zero(n)
	}
	if U.IsOne() {
		return cube.Cover{cube.Universe}, truthtab.One(n)
	}
	// Find the next variable either bound depends on. Since L ⇒ U and
	// U is not the constant 1 while L is not 0, some variable must
	// remain.
	split := -1
	for i := v; i < n; i++ {
		if L.DependsOn(i) || U.DependsOn(i) {
			split = i
			break
		}
	}
	if split < 0 {
		// L is a nonzero constant function of the remaining vars,
		// i.e. L = U = 1 on this subspace; handled above unless the
		// bounds were inconsistent.
		panic("isop: no splitting variable (inconsistent bounds)")
	}
	l0, l1 := L.Cofactor(split, false), L.Cofactor(split, true)
	u0, u1 := U.Cofactor(split, false), U.Cofactor(split, true)

	// Cubes that must carry the literal x': needed where the 0-half
	// requires coverage the 1-half cannot absorb.
	c0, g0 := irredundant(l0.AndNot(u1), u0, split+1)
	// Cubes that must carry the literal x.
	c1, g1 := irredundant(l1.AndNot(u0), u1, split+1)
	// Remainder to be covered without the split literal.
	rem := l0.AndNot(g0).Or(l1.AndNot(g1))
	cr, gr := irredundant(rem, u0.And(u1), split+1)

	neg := cube.FromLiteral(split, true)
	pos := cube.FromLiteral(split, false)
	out := make(cube.Cover, 0, len(c0)+len(c1)+len(cr))
	for _, c := range c0 {
		m, ok := c.Intersect(neg)
		if !ok {
			panic("isop: contradictory cube in 0-branch")
		}
		out = append(out, m)
	}
	for _, c := range c1 {
		m, ok := c.Intersect(pos)
		if !ok {
			panic("isop: contradictory cube in 1-branch")
		}
		out = append(out, m)
	}
	out = append(out, cr...)

	x := truthtab.Var(n, split)
	g := x.Not().And(g0).Or(x.And(g1)).Or(gr)
	return out, g
}
