package isop

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/truthtab"
)

func benchTT(n int, seed int64) truthtab.TT {
	rng := rand.New(rand.NewSource(seed))
	t := truthtab.New(n)
	for a := uint64(0); a < t.Size(); a++ {
		if rng.Intn(2) == 1 {
			t.SetBit(a, true)
		}
	}
	return t
}

func BenchmarkISOP8Var(b *testing.B) {
	f := benchTT(8, 1)
	for i := 0; i < b.N; i++ {
		OfTT(f)
	}
}

func BenchmarkISOP12Var(b *testing.B) {
	f := benchTT(12, 2)
	for i := 0; i < b.N; i++ {
		OfTT(f)
	}
}

func BenchmarkISOPWithDontCares(b *testing.B) {
	x, y := benchTT(8, 3), benchTT(8, 4)
	L, U := x.And(y), x.Or(y)
	for i := 0; i < b.N; i++ {
		Cover(L, U)
	}
}
