package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrChaosDrop is the connection-level failure ChaosTransport injects:
// the request never reaches the server, as if the TCP connection was
// refused or reset. http.Client wraps it in *url.Error like any real
// transport failure.
var ErrChaosDrop = errors.New("chaos: connection dropped")

// ChaosConfig tunes a ChaosTransport. All rates are probabilities in
// [0,1] drawn independently per request from the seeded stream, so a
// given (seed, request sequence) replays the same fault schedule.
type ChaosConfig struct {
	// Seed drives every fault decision.
	Seed int64
	// DropRate is the probability of failing the request with
	// ErrChaosDrop before it is sent.
	DropRate float64
	// ErrorRate is the probability of starting a 5xx burst: the
	// request (and the next 0–2, bursts are 1–3 long) gets a
	// synthesized 503 (or occasionally 500) without reaching the
	// server.
	ErrorRate float64
	// LatencyRate is the probability of a latency spike: a sleep in
	// [LatencyMin, LatencyMax] before forwarding.
	LatencyRate float64
	// LatencyMin/LatencyMax bound the spike (defaults 5ms/50ms).
	LatencyMin, LatencyMax time.Duration
	// TruncateRate is the probability of cutting the response body
	// short: reads stop partway with io.ErrUnexpectedEOF, as if the
	// connection died mid-stream (for NDJSON, a truncated frame).
	TruncateRate float64
	// Clock times latency spikes (nil = Wall). Tests inject a Fake so
	// a spike schedule is asserted without real sleeping.
	Clock Clock
}

// normalize applies the latency defaults.
func (c ChaosConfig) normalize() ChaosConfig {
	if c.LatencyMin <= 0 {
		c.LatencyMin = 5 * time.Millisecond
	}
	if c.LatencyMax < c.LatencyMin {
		c.LatencyMax = c.LatencyMin * 10
	}
	return c
}

// ChaosStats counts injected faults, for the soak report and telemetry
// export.
type ChaosStats struct {
	Requests    uint64 // requests seen
	Drops       uint64 // connections dropped
	Errors5xx   uint64 // synthesized 5xx responses
	Latencies   uint64 // latency spikes injected
	Truncations uint64 // response bodies truncated
}

// ChaosTransport is a fault-injecting http.RoundTripper: it wraps a
// real transport and, per seeded draws, drops connections, synthesizes
// 5xx bursts, injects latency spikes, and truncates response bodies.
// It exists so the soak driver can prove the serving stack's end-to-end
// resilience claim — every request either succeeds or fails with a
// typed error — under faults that unit tests cannot produce. Safe for
// concurrent use; concurrency does reorder which request draws which
// fault, but the fault mix is seed-stable.
type ChaosTransport struct {
	next  http.RoundTripper
	cfg   ChaosConfig
	clock Clock

	mu    sync.Mutex
	rng   *rand.Rand
	burst int // remaining synthesized-5xx responses in the current burst

	requests    atomic.Uint64
	drops       atomic.Uint64
	errors5xx   atomic.Uint64
	latencies   atomic.Uint64
	truncations atomic.Uint64
}

// NewChaosTransport wraps next (nil = http.DefaultTransport).
func NewChaosTransport(next http.RoundTripper, cfg ChaosConfig) *ChaosTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	cfg = cfg.normalize()
	clock := cfg.Clock
	if clock == nil {
		clock = Wall()
	}
	return &ChaosTransport{next: next, cfg: cfg, clock: clock, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injected-fault counters.
func (t *ChaosTransport) Stats() ChaosStats {
	return ChaosStats{
		Requests:    t.requests.Load(),
		Drops:       t.drops.Load(),
		Errors5xx:   t.errors5xx.Load(),
		Latencies:   t.latencies.Load(),
		Truncations: t.truncations.Load(),
	}
}

// plan draws this request's faults from the seeded stream in one
// critical section: drop, burst-5xx status (0 = none), latency, and
// truncation fraction (negative = none).
func (t *ChaosTransport) plan() (drop bool, status int, latency time.Duration, truncFrac float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.burst > 0 {
		t.burst--
		status = 503
	} else if t.cfg.ErrorRate > 0 && t.rng.Float64() < t.cfg.ErrorRate {
		t.burst = t.rng.Intn(3) // 0–2 further responses in this burst
		status = 503
		if t.rng.Float64() < 0.25 {
			status = 500
		}
	}
	if status == 0 && t.cfg.DropRate > 0 && t.rng.Float64() < t.cfg.DropRate {
		drop = true
	}
	if t.cfg.LatencyRate > 0 && t.rng.Float64() < t.cfg.LatencyRate {
		span := t.cfg.LatencyMax - t.cfg.LatencyMin
		latency = t.cfg.LatencyMin + time.Duration(t.rng.Int63n(int64(span)+1))
	}
	truncFrac = -1
	if t.cfg.TruncateRate > 0 && t.rng.Float64() < t.cfg.TruncateRate {
		truncFrac = t.rng.Float64()
	}
	return drop, status, latency, truncFrac
}

// RoundTrip applies the planned faults around the wrapped transport.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	drop, status, latency, truncFrac := t.plan()

	if latency > 0 {
		t.latencies.Add(1)
		if err := t.clock.Sleep(req.Context(), latency); err != nil {
			return nil, err
		}
	}
	if status != 0 {
		t.errors5xx.Add(1)
		// Drain and close the request body as a real transport would.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return synth5xx(req, status), nil
	}
	if drop {
		t.drops.Add(1)
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, ErrChaosDrop
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil || truncFrac < 0 || resp.Body == nil {
		return resp, err
	}
	t.truncations.Add(1)
	resp.Body = &truncatingBody{rc: resp.Body, frac: truncFrac}
	return resp, nil
}

// synth5xx fabricates a server-error response with a typed wire body,
// so clients that decode error bodies still get a taxonomy code.
func synth5xx(req *http.Request, status int) *http.Response {
	code := "unavailable"
	if status == 500 {
		code = "internal"
	}
	body := fmt.Sprintf(`{"error":{"code":%q,"message":"chaos: injected %d"}}`, code, status)
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatingBody lets a random fraction of each read window through,
// then fails with io.ErrUnexpectedEOF — the shape of a connection lost
// mid-body. The cut point is lazy (a fraction of the first 64KiB
// window) so streams of unknown length still truncate somewhere
// plausible.
type truncatingBody struct {
	rc        io.ReadCloser
	frac      float64
	allowed   int64
	resolved  bool
	delivered int64
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if !b.resolved {
		b.allowed = int64(b.frac * float64(64<<10))
		b.resolved = true
	}
	if b.delivered >= b.allowed {
		return 0, io.ErrUnexpectedEOF
	}
	if max := b.allowed - b.delivered; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := b.rc.Read(p)
	b.delivered += int64(n)
	if err == io.EOF {
		// The body legitimately ended before the cut point; let the
		// EOF through so short responses sometimes survive truncation
		// draws — chaos, not a guaranteed kill.
		return n, err
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.rc.Close() }
