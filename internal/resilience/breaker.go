package resilience

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the circuit is
// fenced off (open, or half-open with the probe slot taken). Callers
// map it onto their unavailable-class error.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the circuit's position.
type BreakerState int32

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerConfig tunes a Breaker. The zero value is usable: Normalize
// fills in the defaults.
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive failures that opens
	// the circuit (default 5).
	FailureThreshold int
	// Cooldown is how long an open circuit rejects before letting a
	// half-open probe through (default 1s).
	Cooldown time.Duration
	// SuccessesToClose is the run of consecutive probe successes that
	// closes a half-open circuit (default 1).
	SuccessesToClose int
}

// Normalize returns the config with defaults applied.
func (c BreakerConfig) Normalize() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 1
	}
	return c
}

// BreakerStats counts a breaker's transitions and rejections, for
// telemetry export.
type BreakerStats struct {
	State      BreakerState
	Opens      uint64 // transitions into open (incl. re-opens from half-open)
	HalfOpens  uint64 // transitions into half-open
	Closes     uint64 // transitions back to closed
	Rejections uint64 // Allow calls refused
}

// Breaker is a circuit breaker: it watches a dependency through the
// success/failure reports of its callers and fails fast while the
// dependency is down, so a dead server costs one rejected call instead
// of one timeout per request. Time comes from the injected clock, so
// the open→half-open→closed walk is deterministic under test. Safe for
// concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock
	// onTransition, when non-nil, observes every state change (called
	// outside the lock would race re-entrant transitions; it is called
	// under the lock and must not call back into the breaker).
	onTransition func(from, to BreakerState)

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	probing   bool      // the half-open probe slot is taken
	openedAt  time.Time // when the circuit last opened

	opens      atomic.Uint64
	halfOpens  atomic.Uint64
	closes     atomic.Uint64
	rejections atomic.Uint64
}

// NewBreaker builds a closed breaker. A nil clock uses Wall;
// onTransition may be nil.
func NewBreaker(cfg BreakerConfig, clock Clock, onTransition func(from, to BreakerState)) *Breaker {
	if clock == nil {
		clock = Wall()
	}
	return &Breaker{cfg: cfg.Normalize(), clock: clock, onTransition: onTransition}
}

// State returns the current position (open circuits past their cooldown
// still report open until the next Allow flips them half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	st := b.state
	b.mu.Unlock()
	return BreakerStats{
		State:      st,
		Opens:      b.opens.Load(),
		HalfOpens:  b.halfOpens.Load(),
		Closes:     b.closes.Load(),
		Rejections: b.rejections.Load(),
	}
}

// transition moves the state under the lock, notifying the observer.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case BreakerOpen:
		b.opens.Add(1)
		b.openedAt = b.clock.Now()
	case BreakerHalfOpen:
		b.halfOpens.Add(1)
		b.successes = 0
	case BreakerClosed:
		b.closes.Add(1)
		b.failures = 0
	}
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Allow asks to run one request. It returns nil when traffic may flow
// (and, in half-open, reserves the probe slot) or ErrBreakerOpen when
// the circuit rejects. Every Allow that returns nil must be matched by
// exactly one Report.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejections.Add(1)
			return ErrBreakerOpen
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			b.rejections.Add(1)
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Report resolves an allowed request: ok=true counts toward closing,
// ok=false toward opening. In half-open, the probe's failure re-opens
// the circuit immediately; its success closes it after
// SuccessesToClose consecutive good probes.
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.transition(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.probing = false
		if !ok {
			b.transition(BreakerOpen)
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessesToClose {
			b.transition(BreakerClosed)
		}
	case BreakerOpen:
		// A late report from a request allowed before the circuit
		// opened; the cooldown clock is already running.
	}
}
