package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrLimited is returned by Limiter.Acquire when the concurrency limit
// stayed saturated past the wait budget — the request is shed, not
// queued. Callers map it onto their overloaded-class error.
var ErrLimited = errors.New("resilience: concurrency limit saturated")

// Limiter bounds concurrent work with a shed policy: an Acquire that
// cannot get a slot within MaxWait fails typed instead of queueing
// without bound. This is the admission-control primitive behind the
// HTTP layer's 429s — bounded latency for admitted requests, fast
// typed rejection for the rest. Safe for concurrent use.
type Limiter struct {
	slots   chan struct{}
	maxWait time.Duration

	admitted atomic.Uint64
	shed     atomic.Uint64
}

// NewLimiter builds a limiter admitting max concurrent holders; an
// Acquire waits up to maxWait for a slot (0 = shed immediately when
// saturated).
func NewLimiter(max int, maxWait time.Duration) *Limiter {
	if max < 1 {
		max = 1
	}
	return &Limiter{slots: make(chan struct{}, max), maxWait: maxWait}
}

// Cap returns the concurrency limit.
func (l *Limiter) Cap() int { return cap(l.slots) }

// Inflight returns the number of slots currently held.
func (l *Limiter) Inflight() int { return len(l.slots) }

// Admitted returns how many Acquires succeeded.
func (l *Limiter) Admitted() uint64 { return l.admitted.Load() }

// Shed returns how many Acquires were rejected with ErrLimited.
func (l *Limiter) Shed() uint64 { return l.shed.Load() }

// Acquire takes a slot, waiting at most the limiter's MaxWait. It
// returns nil (caller must Release), ErrLimited when shed, or ctx.Err()
// when the context dies first.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return nil
	default:
	}
	if l.maxWait <= 0 {
		l.shed.Add(1)
		return ErrLimited
	}
	waitCtx, cancel := context.WithTimeout(ctx, l.maxWait)
	defer cancel()
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return nil
	case <-waitCtx.Done():
		if ctx.Err() != nil {
			return ctx.Err()
		}
		l.shed.Add(1)
		return ErrLimited
	}
}

// Release returns a slot taken by a successful Acquire.
func (l *Limiter) Release() {
	select {
	case <-l.slots:
	default:
		panic("resilience: Release without Acquire")
	}
}
