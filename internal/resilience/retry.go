package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy shapes a jittered exponential backoff schedule. The zero
// value is usable: Normalize fills in the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3; 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0,1]: the sleep is delay*(1-Jitter) + rand*delay*Jitter, so 0 is
	// fully deterministic and 1 is full-range jitter (default 0.5).
	Jitter float64
}

// Normalize returns the policy with defaults applied.
func (p RetryPolicy) Normalize() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	return p
}

// abortError marks an error as non-retryable.
type abortError struct{ err error }

func (a *abortError) Error() string { return a.err.Error() }
func (a *abortError) Unwrap() error { return a.err }

// Abort wraps err so Retrier.Do returns it immediately instead of
// retrying — for failures where a retry cannot help (bad request) or
// is unsafe (side effects already observed).
func Abort(err error) error {
	if err == nil {
		return nil
	}
	return &abortError{err: err}
}

// retryAfterError carries a server-supplied backoff hint.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (r *retryAfterError) Error() string { return r.err.Error() }
func (r *retryAfterError) Unwrap() error { return r.err }

// WithRetryAfter attaches a server-supplied Retry-After hint to err:
// the retrier sleeps at least this long before the next attempt,
// overriding a shorter backoff.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil || after <= 0 {
		return err
	}
	return &retryAfterError{err: err, after: after}
}

// RetryAfter extracts a Retry-After hint from err (0 when absent).
func RetryAfter(err error) time.Duration {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after
	}
	return 0
}

// RetryStats counts a retrier's work, for telemetry export.
type RetryStats struct {
	// Attempts is the total number of operation invocations.
	Attempts uint64
	// Retries is how many of those were re-tries (attempt ≥ 2).
	Retries uint64
	// Exhausted counts Do calls that failed every allowed attempt.
	Exhausted uint64
}

// Retrier runs operations under a RetryPolicy with seeded jitter and an
// injectable clock, so a given (seed, failure pattern) always produces
// the same backoff schedule. Safe for concurrent use.
type Retrier struct {
	policy RetryPolicy
	clock  Clock

	mu  sync.Mutex
	rng *rand.Rand

	attempts  atomic.Uint64
	retries   atomic.Uint64
	exhausted atomic.Uint64
}

// NewRetrier builds a retrier. A nil clock uses Wall.
func NewRetrier(policy RetryPolicy, clock Clock, seed int64) *Retrier {
	if clock == nil {
		clock = Wall()
	}
	return &Retrier{
		policy: policy.Normalize(),
		clock:  clock,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Stats snapshots the retrier's counters.
func (r *Retrier) Stats() RetryStats {
	return RetryStats{
		Attempts:  r.attempts.Load(),
		Retries:   r.retries.Load(),
		Exhausted: r.exhausted.Load(),
	}
}

// delay computes the sleep before retry number n (1-based), folding in
// jitter and any server hint carried by err.
func (r *Retrier) delay(n int, err error) time.Duration {
	d := float64(r.policy.BaseDelay)
	for i := 1; i < n; i++ {
		d *= r.policy.Multiplier
		if d >= float64(r.policy.MaxDelay) {
			break
		}
	}
	if d > float64(r.policy.MaxDelay) {
		d = float64(r.policy.MaxDelay)
	}
	if j := r.policy.Jitter; j > 0 {
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		d = d*(1-j) + u*d*j
	}
	out := time.Duration(d)
	if hint := RetryAfter(err); hint > out {
		out = hint
	}
	return out
}

// Do runs op until it succeeds, returns an Abort-wrapped error, the
// attempt budget is spent, or the context dies. Between attempts it
// sleeps the jittered backoff (or the error's Retry-After hint if
// longer) on the injected clock; a sleep that would outlive the
// context's deadline is not started — Do returns the last error
// immediately, since the caller could never observe a later success.
// op receives the 1-based attempt number.
func (r *Retrier) Do(ctx context.Context, op func(ctx context.Context, attempt int) error) error {
	var last error
	for attempt := 1; ; attempt++ {
		r.attempts.Add(1)
		if attempt > 1 {
			r.retries.Add(1)
		}
		last = op(ctx, attempt)
		if last == nil {
			return nil
		}
		var abort *abortError
		if errors.As(last, &abort) {
			return abort.err
		}
		if attempt >= r.policy.MaxAttempts {
			r.exhausted.Add(1)
			return last
		}
		d := r.delay(attempt, last)
		if deadline, ok := ctx.Deadline(); ok && r.clock.Now().Add(d).After(deadline) {
			return last
		}
		if err := r.clock.Sleep(ctx, d); err != nil {
			return last
		}
	}
}
