// Package resilience is the fault-tolerance substrate of the serving
// stack itself. The paper's thesis is computing correctly on unreliable
// fabric — defect maps, self-repair, redundancy — and this package
// applies the same posture to the software that serves it: every
// component assumes the thing on the other side can stall, vanish, or
// lie, and degrades in a bounded, typed, observable way instead of
// hanging or crashing.
//
// The pieces, each stdlib-only and independently testable:
//
//   - Clock: an injectable time source so retry/breaker behavior is
//     deterministic under test (Fake advances manually).
//   - RetryPolicy / Retrier: jittered exponential backoff with
//     Retry-After hints and context-deadline awareness.
//   - Breaker: a per-endpoint circuit breaker (closed → open →
//     half-open with probing) that fails fast while a dependency is
//     down instead of burning a timeout per call.
//   - Limiter: a concurrency limit with a bounded acquisition wait —
//     the admission-control primitive behind HTTP load shedding.
//   - ChaosTransport: a fault-injecting http.RoundTripper (latency
//     spikes, dropped connections, 5xx bursts, truncated streams),
//     seeded so a chaos soak replays exactly.
//
// internal/engine uses the queue-wait budget for admission control,
// internal/httpapi mounts the limiter as shed middleware, and
// pkg/nanoxbar/client wires the retrier and breaker around every HTTP
// call; cmd/xbarload drives the whole stack through ChaosTransport.
package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the retry and breaker machinery. Production
// code uses Wall; tests use a Fake so backoff schedules and breaker
// cooldowns are deterministic instead of sleeping for real.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// wallClock is the real time.Now/time.Timer clock.
type wallClock struct{}

// Wall returns the real-time clock.
func Wall() Clock { return wallClock{} }

//xbarvet:ignore clockdiscipline: wallClock is the one sanctioned real-time source
func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	//xbarvet:ignore clockdiscipline: wallClock is the one sanctioned real-time source
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fake is a manual clock for tests. Sleep does not block: it advances
// the fake's notion of now by the full duration and records it, so a
// test asserts the exact backoff schedule a retry loop produced without
// any real waiting (and without goroutine coordination that would make
// the test racy). Safe for concurrent use.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFake returns a fake clock starting at start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward without recording a sleep — the
// "time passes while nobody waits" of a breaker cooldown.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// Sleep advances now by d immediately, records d, and honors a context
// that is already done (matching the pre-sleep check real code sees).
func (f *Fake) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d < 0 {
		d = 0
	}
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.sleeps = append(f.sleeps, d)
	f.mu.Unlock()
	return nil
}

// Sleeps returns a copy of every duration passed to Sleep, in order.
func (f *Fake) Sleeps() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Duration, len(f.sleeps))
	copy(out, f.sleeps)
	return out
}
