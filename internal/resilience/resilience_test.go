package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFakeClock(t *testing.T) {
	start := time.Unix(1000, 0)
	fc := NewFake(start)
	if got := fc.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	fc.Advance(3 * time.Second)
	if got := fc.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("after Advance, Now() = %v", got)
	}
	if err := fc.Sleep(context.Background(), 2*time.Second); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if got := fc.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("after Sleep, Now() = %v", got)
	}
	if got := fc.Sleeps(); len(got) != 1 || got[0] != 2*time.Second {
		t.Fatalf("Sleeps() = %v", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fc.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on dead ctx: %v", err)
	}
	if got := fc.Sleeps(); len(got) != 1 {
		t.Fatalf("dead-ctx Sleep was recorded: %v", got)
	}
}

func TestWallClockSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Wall().Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	fc := NewFake(time.Unix(0, 0))
	r := NewRetrier(RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Jitter: 0}, fc, 1)
	calls := 0
	err := r.Do(context.Background(), func(_ context.Context, attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt = %d on call %d", attempt, calls)
		}
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Zero jitter: the schedule is exactly base, base*2.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	got := fc.Sleeps()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	st := r.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Exhausted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	fc := NewFake(time.Unix(0, 0))
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0}, fc, 1)
	boom := errors.New("boom")
	calls := 0
	err := r.Do(context.Background(), func(context.Context, int) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if st := r.Stats(); st.Exhausted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryAbortStopsImmediately(t *testing.T) {
	fc := NewFake(time.Unix(0, 0))
	r := NewRetrier(RetryPolicy{MaxAttempts: 5}, fc, 1)
	fatal := errors.New("fatal")
	calls := 0
	err := r.Do(context.Background(), func(context.Context, int) error { calls++; return Abort(fatal) })
	if !errors.Is(err, fatal) {
		t.Fatalf("Do = %v, want %v", err, fatal)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if len(fc.Sleeps()) != 0 {
		t.Fatalf("slept %v after abort", fc.Sleeps())
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	fc := NewFake(time.Unix(0, 0))
	r := NewRetrier(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: 0}, fc, 1)
	hinted := WithRetryAfter(errors.New("overloaded"), 250*time.Millisecond)
	calls := 0
	_ = r.Do(context.Background(), func(context.Context, int) error { calls++; return hinted })
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if got := fc.Sleeps(); len(got) != 1 || got[0] != 250*time.Millisecond {
		t.Fatalf("sleeps = %v, want [250ms]", got)
	}
	// The hint is a floor, not a ceiling: a longer backoff wins.
	if got := RetryAfter(WithRetryAfter(errors.New("x"), 7*time.Second)); got != 7*time.Second {
		t.Fatalf("RetryAfter = %v", got)
	}
	if got := RetryAfter(errors.New("plain")); got != 0 {
		t.Fatalf("RetryAfter(plain) = %v", got)
	}
}

func TestRetrySkipsSleepPastDeadline(t *testing.T) {
	fc := NewFake(time.Unix(0, 0))
	r := NewRetrier(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Minute, Jitter: 0}, fc, 1)
	ctx, cancel := context.WithDeadline(context.Background(), fc.Now().Add(time.Second))
	defer cancel()
	boom := errors.New("boom")
	calls := 0
	err := r.Do(ctx, func(context.Context, int) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (sleep would outlive deadline)", calls)
	}
	if len(fc.Sleeps()) != 0 {
		t.Fatalf("slept %v past deadline", fc.Sleeps())
	}
}

func TestRetryJitterDeterministicBySeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		fc := NewFake(time.Unix(0, 0))
		r := NewRetrier(RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, Jitter: 0.5}, fc, seed)
		_ = r.Do(context.Background(), func(context.Context, int) error { return errors.New("x") })
		return fc.Sleeps()
	}
	a, b := schedule(42), schedule(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	c := schedule(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical jitter: %v", a)
	}
	// Jittered delays stay within [delay*(1-j), delay].
	for i, d := range a {
		base := 100 * time.Millisecond << uint(i)
		if d < base/2 || d > base {
			t.Fatalf("sleep[%d] = %v outside [%v, %v]", i, d, base/2, base)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	fc := NewFake(time.Unix(0, 0))
	var transitions []string
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second, SuccessesToClose: 2}, fc,
		func(from, to BreakerState) { transitions = append(transitions, from.String()+"->"+to.String()) })

	// Closed: failures below threshold keep it closed; a success resets.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow while closed: %v", err)
		}
		b.Report(false)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after success reset", b.State())
	}

	// Three consecutive failures open it.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow %d: %v", i, err)
		}
		b.Report(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v", err)
	}

	// Cooldown elapses: next Allow flips half-open and takes the probe
	// slot; a concurrent Allow is rejected.
	fc.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second probe Allow = %v", err)
	}

	// Probe fails: re-open, fresh cooldown.
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow right after re-open = %v", err)
	}

	// Cooldown again: two good probes close it (SuccessesToClose=2).
	fc.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open after 1/2 successes", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}

	st := b.Stats()
	if st.Opens != 2 || st.HalfOpens != 2 || st.Closes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	wantTransitions := []string{
		"closed->open", "open->half_open", "half_open->open",
		"open->half_open", "half_open->closed",
	}
	if fmt.Sprint(transitions) != fmt.Sprint(wantTransitions) {
		t.Fatalf("transitions = %v, want %v", transitions, wantTransitions)
	}
}

func TestBreakerLateReportWhileOpenIgnored(t *testing.T) {
	fc := NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second}, fc, nil)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); err != nil { // in-flight when the first fails
		t.Fatal(err)
	}
	b.Report(false) // opens
	b.Report(true)  // late success must not close an open circuit
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
}

func TestLimiterShedsWhenSaturated(t *testing.T) {
	l := NewLimiter(2, 0)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := l.Inflight(); got != 2 {
		t.Fatalf("Inflight = %d", got)
	}
	if err := l.Acquire(ctx); !errors.Is(err, ErrLimited) {
		t.Fatalf("saturated Acquire = %v, want ErrLimited", err)
	}
	l.Release()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	if l.Admitted() != 3 || l.Shed() != 1 {
		t.Fatalf("admitted=%d shed=%d", l.Admitted(), l.Shed())
	}
}

func TestLimiterBoundedWait(t *testing.T) {
	l := NewLimiter(1, 10*time.Millisecond)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Saturated past the wait budget: shed.
	start := time.Now()
	if err := l.Acquire(ctx); !errors.Is(err, ErrLimited) {
		t.Fatalf("Acquire = %v, want ErrLimited", err)
	}
	if waited := time.Since(start); waited < 5*time.Millisecond {
		t.Fatalf("shed after %v, want a bounded wait first", waited)
	}
	// A release during the wait admits instead.
	go func() { time.Sleep(2 * time.Millisecond); l.Release() }()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("Acquire with mid-wait release: %v", err)
	}
	// Context death beats the wait.
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := l.Acquire(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on dead ctx = %v", err)
	}
}

func TestLimiterReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewLimiter(1, 0).Release()
}

// chaosGet runs one GET through a ChaosTransport-wrapped client and
// classifies the outcome.
func chaosGet(t *testing.T, hc *http.Client, url string) (status int, body string, err error) {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		return resp.StatusCode, string(b), rerr
	}
	return resp.StatusCode, string(b), nil
}

func TestChaosTransportFaults(t *testing.T) {
	payload := strings.Repeat("x", 96<<10) // bigger than the 64KiB truncation window
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	}))
	defer srv.Close()

	t.Run("drop", func(t *testing.T) {
		ct := NewChaosTransport(srv.Client().Transport, ChaosConfig{Seed: 1, DropRate: 1})
		_, _, err := chaosGet(t, &http.Client{Transport: ct}, srv.URL)
		if !errors.Is(err, ErrChaosDrop) {
			t.Fatalf("err = %v, want ErrChaosDrop", err)
		}
		if st := ct.Stats(); st.Drops != 1 || st.Requests != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})

	t.Run("5xx", func(t *testing.T) {
		ct := NewChaosTransport(srv.Client().Transport, ChaosConfig{Seed: 1, ErrorRate: 1})
		status, body, err := chaosGet(t, &http.Client{Transport: ct}, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if status != 503 && status != 500 {
			t.Fatalf("status = %d, want 5xx", status)
		}
		if !strings.Contains(body, `"code"`) {
			t.Fatalf("5xx body lacks a wire code: %q", body)
		}
		if st := ct.Stats(); st.Errors5xx != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})

	t.Run("truncate", func(t *testing.T) {
		ct := NewChaosTransport(srv.Client().Transport, ChaosConfig{Seed: 1, TruncateRate: 1})
		// Retry a few times: a draw can set the cut point past a short
		// read, but the 96KiB payload always exceeds the 64KiB window.
		var lastErr error
		for i := 0; i < 5; i++ {
			_, _, err := chaosGet(t, &http.Client{Transport: ct}, srv.URL)
			lastErr = err
			if err != nil {
				break
			}
		}
		if lastErr == nil {
			t.Fatal("no truncation error across 5 full-rate attempts")
		}
		if st := ct.Stats(); st.Truncations == 0 {
			t.Fatalf("stats = %+v", st)
		}
	})

	t.Run("latency", func(t *testing.T) {
		ct := NewChaosTransport(srv.Client().Transport, ChaosConfig{
			Seed: 1, LatencyRate: 1, LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond,
		})
		start := time.Now()
		if _, _, err := chaosGet(t, &http.Client{Transport: ct}, srv.URL); err != nil {
			t.Fatal(err)
		}
		if time.Since(start) < time.Millisecond {
			t.Fatal("no latency injected at rate 1")
		}
		if st := ct.Stats(); st.Latencies != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})

	t.Run("clean", func(t *testing.T) {
		ct := NewChaosTransport(srv.Client().Transport, ChaosConfig{Seed: 1})
		status, body, err := chaosGet(t, &http.Client{Transport: ct}, srv.URL)
		if err != nil || status != 200 || len(body) != len(payload) {
			t.Fatalf("clean pass: status=%d len=%d err=%v", status, len(body), err)
		}
	})
}

func TestChaosTransportSeedDeterminism(t *testing.T) {
	plans := func(seed int64) string {
		ct := NewChaosTransport(http.DefaultTransport, ChaosConfig{
			Seed: seed, DropRate: 0.3, ErrorRate: 0.2, LatencyRate: 0.3, TruncateRate: 0.2,
		})
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			drop, status, latency, trunc := ct.plan()
			fmt.Fprintf(&sb, "%v/%d/%v/%.3f;", drop, status, latency, trunc)
		}
		return sb.String()
	}
	if plans(7) != plans(7) {
		t.Fatal("same seed produced different fault schedules")
	}
	if plans(7) == plans(8) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestChaosTransportLatencyHonorsContext(t *testing.T) {
	ct := NewChaosTransport(http.DefaultTransport, ChaosConfig{
		Seed: 1, LatencyRate: 1, LatencyMin: time.Hour, LatencyMax: time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://127.0.0.1:1/never", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, rerr := ct.RoundTrip(req)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("RoundTrip = %v, want deadline exceeded", rerr)
	}
	if time.Since(start) > time.Second {
		t.Fatal("latency injection ignored the context")
	}
}
