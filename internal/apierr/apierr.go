// Package apierr is the error taxonomy shared by every layer of the
// serving stack: the engine classifies failures, the HTTP API maps them
// to status codes and machine-readable wire codes, and the HTTP client
// reconstructs typed errors from those codes so errors.Is/As work the
// same against an in-process engine and a remote server.
//
// The taxonomy is deliberately small:
//
//   - ErrBadSpec: the request itself is malformed (unknown benchmark,
//     unparsable expression, out-of-range limits, bad defect map).
//   - ErrInfeasible: the request is well-formed but has no solution
//     within its constraints (implementation exceeds the chip, exact
//     minimization budget exhausted).
//   - ErrCanceled: the caller's context was canceled or timed out
//     before the work completed.
//   - ErrOverloaded: the service is healthy but shed the request under
//     load (queue full past its wait budget, concurrency limit hit).
//     Retry later, ideally after the server's Retry-After hint.
//   - ErrUnavailable: the service cannot currently be reached or is
//     refusing new work (draining for shutdown, connection failures,
//     an open client-side circuit breaker).
//   - ErrInternal: everything else (bugs, panics).
//
// All constructors return a *Error that wraps one of the sentinels, so
// callers use errors.Is(err, apierr.ErrBadSpec) rather than string
// matching, and errors.As(err, *apierr.Error) to reach the wire code.
package apierr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors of the taxonomy. Compare with errors.Is.
var (
	ErrBadSpec     = errors.New("bad request spec")
	ErrInfeasible  = errors.New("infeasible")
	ErrCanceled    = errors.New("canceled")
	ErrOverloaded  = errors.New("overloaded")
	ErrUnavailable = errors.New("unavailable")
	ErrInternal    = errors.New("internal error")
)

// Wire codes, one per sentinel. They travel in JSON error bodies and in
// engine results so remote callers can reconstruct the sentinel.
const (
	CodeBadSpec     = "bad_spec"
	CodeInfeasible  = "infeasible"
	CodeCanceled    = "canceled"
	CodeOverloaded  = "overloaded"
	CodeUnavailable = "unavailable"
	CodeInternal    = "internal"
)

// Error is a classified failure: one of the taxonomy sentinels plus
// human-readable detail. Unwrap returns the sentinel, so
// errors.Is(err, ErrBadSpec) holds for every BadSpec(...) error,
// including ones reconstructed from a wire code on the client side.
type Error struct {
	Sentinel error // one of the Err* sentinels above
	Detail   string
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return e.Sentinel.Error()
	}
	return e.Detail
}

func (e *Error) Unwrap() error { return e.Sentinel }

// Code returns the wire code of the sentinel.
func (e *Error) Code() string { return CodeOf(e.Sentinel) }

func wrap(sentinel error, format string, args ...any) error {
	return &Error{Sentinel: sentinel, Detail: fmt.Sprintf(format, args...)}
}

// BadSpec classifies a malformed request.
func BadSpec(format string, args ...any) error { return wrap(ErrBadSpec, format, args...) }

// Infeasible classifies a well-formed request with no solution within
// its constraints.
func Infeasible(format string, args ...any) error { return wrap(ErrInfeasible, format, args...) }

// Internal classifies an unexpected failure.
func Internal(format string, args ...any) error { return wrap(ErrInternal, format, args...) }

// Overloaded classifies a request shed under load: the service is
// healthy but declined the work rather than queue it indefinitely.
func Overloaded(format string, args ...any) error { return wrap(ErrOverloaded, format, args...) }

// Unavailable classifies a service that cannot take the request at all:
// draining for shutdown, unreachable over the network, or fenced off by
// an open circuit breaker.
func Unavailable(format string, args ...any) error { return wrap(ErrUnavailable, format, args...) }

// Canceled classifies a context failure, keeping the original cause
// (context.Canceled or context.DeadlineExceeded) in the detail.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return wrap(ErrCanceled, "canceled: %v", cause)
}

// CodeOf maps any error onto its wire code. Context errors count as
// canceled even when produced outside this package (e.g. by net/http).
func CodeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBadSpec):
		return CodeBadSpec
	case errors.Is(err, ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	case errors.Is(err, ErrInfeasible):
		return CodeInfeasible
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrUnavailable):
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// FromCode reconstructs a typed error from its wire form, so an error
// that crossed an HTTP boundary still satisfies errors.Is against the
// taxonomy sentinels. Unknown codes map to ErrInternal.
func FromCode(code, detail string) error {
	var sentinel error
	switch code {
	case "":
		return nil
	case CodeBadSpec:
		sentinel = ErrBadSpec
	case CodeInfeasible:
		sentinel = ErrInfeasible
	case CodeCanceled:
		sentinel = ErrCanceled
	case CodeOverloaded:
		sentinel = ErrOverloaded
	case CodeUnavailable:
		sentinel = ErrUnavailable
	default:
		sentinel = ErrInternal
	}
	return &Error{Sentinel: sentinel, Detail: detail}
}

// Classify wraps an arbitrary error into the taxonomy, preserving
// already-classified errors unchanged. Bare context errors become
// ErrCanceled; anything unrecognized becomes ErrInternal.
func Classify(err error) error {
	if err == nil {
		return nil
	}
	var ae *Error
	if errors.As(err, &ae) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Canceled(err)
	}
	return wrap(ErrInternal, "%v", err)
}
