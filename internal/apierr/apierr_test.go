package apierr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestTaxonomy is the table-driven contract for the error taxonomy:
// every constructor wraps its sentinel (errors.Is), exposes the typed
// *Error (errors.As), and round-trips through the wire code without
// losing its classification.
func TestTaxonomy(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
		code     string
	}{
		{"bad_spec", BadSpec("unknown benchmark %q", "nope"), ErrBadSpec, CodeBadSpec},
		{"infeasible", Infeasible("app 8x8 exceeds chip 4x4"), ErrInfeasible, CodeInfeasible},
		{"canceled", Canceled(context.Canceled), ErrCanceled, CodeCanceled},
		{"deadline", Canceled(context.DeadlineExceeded), ErrCanceled, CodeCanceled},
		{"internal", Internal("panic: %v", "boom"), ErrInternal, CodeInternal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !errors.Is(tc.err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", tc.err, tc.sentinel)
			}
			var ae *Error
			if !errors.As(tc.err, &ae) {
				t.Fatalf("errors.As(%v, *Error) = false", tc.err)
			}
			if got := CodeOf(tc.err); got != tc.code {
				t.Fatalf("CodeOf(%v) = %q, want %q", tc.err, got, tc.code)
			}
			// Wire round-trip: code+detail → typed error with the same
			// sentinel and message.
			rt := FromCode(CodeOf(tc.err), tc.err.Error())
			if !errors.Is(rt, tc.sentinel) {
				t.Fatalf("round-tripped error %v lost sentinel %v", rt, tc.sentinel)
			}
			if rt.Error() != tc.err.Error() {
				t.Fatalf("round-tripped detail %q, want %q", rt.Error(), tc.err.Error())
			}
			// Wrapping through fmt keeps the classification.
			wrapped := fmt.Errorf("engine: %w", tc.err)
			if !errors.Is(wrapped, tc.sentinel) || CodeOf(wrapped) != tc.code {
				t.Fatalf("fmt-wrapped error lost classification: %v", wrapped)
			}
		})
	}
}

func TestCodeOfPlainErrors(t *testing.T) {
	if got := CodeOf(nil); got != "" {
		t.Fatalf("CodeOf(nil) = %q, want empty", got)
	}
	if got := CodeOf(errors.New("mystery")); got != CodeInternal {
		t.Fatalf("CodeOf(plain) = %q, want %q", got, CodeInternal)
	}
	if got := CodeOf(context.Canceled); got != CodeCanceled {
		t.Fatalf("CodeOf(context.Canceled) = %q, want %q", got, CodeCanceled)
	}
	if got := CodeOf(fmt.Errorf("op: %w", context.DeadlineExceeded)); got != CodeCanceled {
		t.Fatalf("CodeOf(wrapped deadline) = %q, want %q", got, CodeCanceled)
	}
}

func TestFromCodeUnknown(t *testing.T) {
	err := FromCode("no_such_code", "detail")
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("unknown code should map to ErrInternal, got %v", err)
	}
	if FromCode("", "") != nil {
		t.Fatal("FromCode(\"\") should be nil")
	}
}

func TestClassify(t *testing.T) {
	if Classify(nil) != nil {
		t.Fatal("Classify(nil) != nil")
	}
	pre := BadSpec("x")
	if Classify(pre) != pre {
		t.Fatal("Classify must preserve already-classified errors")
	}
	if !errors.Is(Classify(context.Canceled), ErrCanceled) {
		t.Fatal("Classify(context.Canceled) should be ErrCanceled")
	}
	if !errors.Is(Classify(errors.New("x")), ErrInternal) {
		t.Fatal("Classify(plain) should be ErrInternal")
	}
}
