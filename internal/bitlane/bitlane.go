// Package bitlane holds the shared lane-word helpers of the
// bit-sliced subsystems: the redundancy engine packs 64 Monte Carlo
// trials per word, the yield engine packs 64 dies per word, and both
// need the same two primitives — a tail mask for partial lane groups
// and a 64×64 bit-matrix transpose for moving between entity-major and
// lane-major layouts.
package bitlane

// Mask returns a word with the low lanes bits set: the valid-lane mask
// of a group holding lanes < 64 entities. Mask(64) is all ones.
func Mask(lanes int) uint64 {
	if lanes <= 0 {
		return 0
	}
	if lanes >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(lanes) - 1
}

// Transpose64 transposes the 64×64 bit matrix a in place, treating bit
// j of a[i] as element (i,j): afterwards bit i of a[j] holds the old
// bit j of a[i]. Recursive block swaps (Hacker's Delight §7-3), six
// rounds of masked exchanges — no scratch, no branches on data.
func Transpose64(a *[64]uint64) {
	j, m := 32, uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		// The mask halves with j: after the swap at stride j, the next
		// round mixes within the j/2-wide sub-blocks.
		j >>= 1
		m ^= m << uint(j)
	}
}
