package bitlane

import (
	"math/rand"
	"testing"
)

func TestMask(t *testing.T) {
	cases := []struct {
		lanes int
		want  uint64
	}{
		{-3, 0}, {0, 0}, {1, 1}, {2, 3}, {63, 1<<63 - 1},
		{64, ^uint64(0)}, {65, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.lanes); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.lanes, got, c.want)
		}
	}
}

// transposeNaive is the bit-by-bit reference: out (j,i) = in (i,j).
func transposeNaive(a *[64]uint64) [64]uint64 {
	var out [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			out[j] |= (a[i] >> uint(j) & 1) << uint(i)
		}
	}
	return out
}

func TestTranspose64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var a [64]uint64
		for i := range a {
			a[i] = rng.Uint64()
		}
		want := transposeNaive(&a)
		got := a
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose mismatch", trial)
		}
		// An involution: transposing back restores the input.
		Transpose64(&got)
		if got != a {
			t.Fatalf("trial %d: double transpose is not identity", trial)
		}
	}
}

func TestTranspose64SingleBits(t *testing.T) {
	for i := 0; i < 64; i += 7 {
		for j := 0; j < 64; j += 5 {
			var a [64]uint64
			a[i] = 1 << uint(j)
			Transpose64(&a)
			for r := 0; r < 64; r++ {
				want := uint64(0)
				if r == j {
					want = 1 << uint(i)
				}
				if a[r] != want {
					t.Fatalf("bit (%d,%d): row %d = %#x, want %#x", i, j, r, a[r], want)
				}
			}
		}
	}
}

func BenchmarkTranspose64(b *testing.B) {
	var a [64]uint64
	for i := range a {
		a[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transpose64(&a)
	}
}
