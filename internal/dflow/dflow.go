// Package dflow implements the application-independent defect-tolerant
// flow of Section IV-C / Fig. 6 of the DATE'17 paper.
//
// Instead of re-running placement against each chip's huge defect map
// (the traditional defect-aware flow, Fig. 6a), the defect-unaware flow
// (Fig. 6b) extracts once per chip a universal defect-free k×k
// sub-crossbar from the defective N×N array. Every later design step
// works on a perfect k×k abstraction; the per-chip information shrinks
// from the O(N²) defect map to the O(N) line-selection descriptor.
//
// Extraction is the maximum balanced defect-free sub-crossbar problem
// (NP-hard in general); the package provides the classic greedy
// worst-line-removal heuristic plus an exact branch-free enumeration for
// small N used to audit the heuristic's quality.
package dflow

import (
	"fmt"
	"math/bits"
	"math/rand"

	"nanoxbar/internal/defect"
)

// Extraction is a selected defect-free sub-crossbar: K rows and K
// columns of the physical array, all of whose intersections are healthy,
// with no broken or mutually bridged selected lines.
type Extraction struct {
	Rows, Cols []int
}

// K returns the sub-crossbar dimension.
func (e *Extraction) K() int { return len(e.Rows) }

// DescriptorBits returns the storage the recovered-chip descriptor
// needs: one line index (⌈log2 N⌉ bits) per selected line — the O(N)
// defect map of the proposed flow.
func (e *Extraction) DescriptorBits(n int) int {
	idx := bits.Len(uint(n - 1))
	return (len(e.Rows) + len(e.Cols)) * idx
}

// RawMapBits returns the storage of the traditional full defect map:
// one bit per crosspoint plus line status.
func RawMapBits(n int) int { return n*n + 4*n }

// IsUniversal verifies that the selection is a defect-free sub-crossbar
// of the map: usable for any application, the defining property of the
// defect-unaware flow.
func IsUniversal(m *defect.Map, rows, cols []int) bool {
	selRow := make(map[int]bool, len(rows))
	for _, r := range rows {
		if r < 0 || r >= m.R || m.RowBroken(r) || selRow[r] {
			return false
		}
		selRow[r] = true
	}
	selCol := make(map[int]bool, len(cols))
	for _, c := range cols {
		if c < 0 || c >= m.C || m.ColBroken(c) || selCol[c] {
			return false
		}
		selCol[c] = true
	}
	for _, r := range rows {
		for _, c := range cols {
			if m.At(r, c) != defect.None {
				return false
			}
		}
	}
	for r := 0; r+1 < m.R; r++ {
		if m.RowBridge(r) && selRow[r] && selRow[r+1] {
			return false
		}
	}
	for c := 0; c+1 < m.C; c++ {
		if m.ColBridge(c) && selCol[c] && selCol[c+1] {
			return false
		}
	}
	return true
}

// Greedy extracts a universal defect-free square sub-crossbar with the
// worst-line-removal heuristic: drop broken lines, resolve bridge
// conflicts toward the dirtier endpoint, then repeatedly remove the line
// with the most defective selected intersections, and finally trim to a
// square.
func Greedy(m *defect.Map) *Extraction {
	rowAlive := make([]bool, m.R)
	colAlive := make([]bool, m.C)
	for r := range rowAlive {
		rowAlive[r] = !m.RowBroken(r)
	}
	for c := range colAlive {
		colAlive[c] = !m.ColBroken(c)
	}
	defCount := func(isRow bool, i int) int {
		n := 0
		if isRow {
			for c := 0; c < m.C; c++ {
				if colAlive[c] && m.At(i, c) != defect.None {
					n++
				}
			}
		} else {
			for r := 0; r < m.R; r++ {
				if rowAlive[r] && m.At(r, i) != defect.None {
					n++
				}
			}
		}
		return n
	}
	// Bridge conflicts: drop the endpoint with more defects.
	for r := 0; r+1 < m.R; r++ {
		if m.RowBridge(r) && rowAlive[r] && rowAlive[r+1] {
			if defCount(true, r) >= defCount(true, r+1) {
				rowAlive[r] = false
			} else {
				rowAlive[r+1] = false
			}
		}
	}
	for c := 0; c+1 < m.C; c++ {
		if m.ColBridge(c) && colAlive[c] && colAlive[c+1] {
			if defCount(false, c) >= defCount(false, c+1) {
				colAlive[c] = false
			} else {
				colAlive[c+1] = false
			}
		}
	}
	aliveCount := func(alive []bool) int {
		n := 0
		for _, a := range alive {
			if a {
				n++
			}
		}
		return n
	}
	// Worst-line removal until every selected intersection is clean.
	// Ties prefer the side with more surviving lines, protecting the
	// eventual square dimension.
	for {
		nR, nC := aliveCount(rowAlive), aliveCount(colAlive)
		worst, worstCnt, worstRow := -1, 0, true
		consider := func(i, cnt int, isRow bool) {
			if cnt == 0 {
				return
			}
			take := false
			switch {
			case worst < 0 || cnt > worstCnt:
				take = true
			case cnt == worstCnt && isRow != worstRow:
				// Tie across axes: remove from the larger side to
				// protect the square dimension.
				take = (isRow && nR > nC) || (!isRow && nC > nR)
			}
			if take {
				worst, worstCnt, worstRow = i, cnt, isRow
			}
		}
		for r := 0; r < m.R; r++ {
			if rowAlive[r] {
				consider(r, defCount(true, r), true)
			}
		}
		for c := 0; c < m.C; c++ {
			if colAlive[c] {
				consider(c, defCount(false, c), false)
			}
		}
		if worst < 0 {
			break
		}
		if worstRow {
			rowAlive[worst] = false
		} else {
			colAlive[worst] = false
		}
	}
	// Add-back pass: lines removed early may be clean with respect to
	// the final (smaller) selection on the other axis; restore them.
	for changed := true; changed; {
		changed = false
		for r := 0; r < m.R; r++ {
			if rowAlive[r] || m.RowBroken(r) {
				continue
			}
			if r > 0 && m.RowBridge(r-1) && rowAlive[r-1] {
				continue
			}
			if r+1 < m.R && m.RowBridge(r) && rowAlive[r+1] {
				continue
			}
			if defCount(true, r) == 0 {
				rowAlive[r] = true
				changed = true
			}
		}
		for c := 0; c < m.C; c++ {
			if colAlive[c] || m.ColBroken(c) {
				continue
			}
			if c > 0 && m.ColBridge(c-1) && colAlive[c-1] {
				continue
			}
			if c+1 < m.C && m.ColBridge(c) && colAlive[c+1] {
				continue
			}
			if defCount(false, c) == 0 {
				colAlive[c] = true
				changed = true
			}
		}
	}
	var rows, cols []int
	for r, a := range rowAlive {
		if a {
			rows = append(rows, r)
		}
	}
	for c, a := range colAlive {
		if a {
			cols = append(cols, c)
		}
	}
	k := len(rows)
	if len(cols) < k {
		k = len(cols)
	}
	return &Extraction{Rows: rows[:k], Cols: cols[:k]}
}

// ExactMaxK returns the true maximum k of any universal k×k sub-crossbar
// by enumerating row subsets; usable for N ≤ ~14 (audits Greedy). The
// second result is false when N exceeds maxN.
func ExactMaxK(m *defect.Map, maxN int) (int, bool) {
	if m.R > maxN || m.R > 20 || m.C > 64 {
		return 0, false
	}
	best := 0
	for sub := uint64(0); sub < uint64(1)<<uint(m.R); sub++ {
		nRows := bits.OnesCount64(sub)
		if nRows <= best {
			continue
		}
		ok := true
		for r := 0; r < m.R && ok; r++ {
			if sub>>uint(r)&1 == 0 {
				continue
			}
			if m.RowBroken(r) {
				ok = false
			}
			if r+1 < m.R && m.RowBridge(r) && sub>>uint(r+1)&1 == 1 {
				ok = false
			}
		}
		if !ok {
			continue
		}
		// Columns clean against every selected row.
		clean := make([]bool, m.C)
		for c := 0; c < m.C; c++ {
			clean[c] = !m.ColBroken(c)
			for r := 0; r < m.R && clean[c]; r++ {
				if sub>>uint(r)&1 == 1 && m.At(r, c) != defect.None {
					clean[c] = false
				}
			}
		}
		// Maximum clean column subset avoiding bridged adjacent pairs:
		// maximum independent selection on a path, by DP. takePrev /
		// skipPrev are the best counts over columns 0..c with column c
		// selected / not selected.
		const negInf = -1 << 20
		takePrev, skipPrev := negInf, 0
		for c := 0; c < m.C; c++ {
			t := negInf
			if clean[c] {
				if c > 0 && m.ColBridge(c-1) {
					t = skipPrev + 1
				} else {
					t = max(takePrev, skipPrev) + 1
				}
			}
			takePrev, skipPrev = t, max(takePrev, skipPrev)
		}
		nCols := max(takePrev, skipPrev)
		if nCols < 0 {
			nCols = 0
		}
		k := nRows
		if nCols < k {
			k = nCols
		}
		if k > best {
			best = k
		}
	}
	return best, true
}

// Yield estimates P(Greedy recovers k ≥ want) by Monte Carlo over
// random defect maps.
func Yield(n int, p defect.Params, want, trials int, rng *rand.Rand) float64 {
	hits := 0
	for i := 0; i < trials; i++ {
		m := defect.Random(n, n, p, rng)
		if Greedy(m).K() >= want {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// Costs parameterizes the abstract effort model of the two flows
// (arbitrary units; only ratios matter).
type Costs struct {
	TestPerCell    float64 // post-fabrication test+diagnosis, per crosspoint
	AwareMapPerUse float64 // defect-aware mapping effort per cell per (chip, app)
	ExtractPerCell float64 // one-time extraction effort per crosspoint
	FreeMapPerCell float64 // defect-free mapping effort per k×k cell per app
}

// DefaultCosts reflect that defect-aware mapping re-solves placement on
// the defective fabric for every chip, while defect-free mapping is a
// one-shot per application.
func DefaultCosts() Costs {
	return Costs{TestPerCell: 1, AwareMapPerUse: 2, ExtractPerCell: 0.5, FreeMapPerCell: 2}
}

// CompareFlows returns the total effort of the traditional defect-aware
// flow and the proposed defect-unaware flow for fabricating nChips chips
// each running nApps applications on an N×N array recovered to k×k.
func CompareFlows(n, k, nChips, nApps int, c Costs) (aware, unaware float64) {
	cells := float64(n * n)
	kcells := float64(k * k)
	// Fig. 6a: every chip is tested, then every (chip, app) pair runs
	// defect-aware physical design against that chip's defect map.
	aware = float64(nChips)*cells*c.TestPerCell +
		float64(nChips)*float64(nApps)*cells*c.AwareMapPerUse
	// Fig. 6b: every chip is tested and recovered once; each app is
	// mapped once onto the universal k×k abstraction and reused.
	unaware = float64(nChips)*cells*(c.TestPerCell+c.ExtractPerCell) +
		float64(nApps)*kcells*c.FreeMapPerCell
	return aware, unaware
}

// String renders an extraction compactly.
func (e *Extraction) String() string {
	return fmt.Sprintf("k=%d rows=%v cols=%v", e.K(), e.Rows, e.Cols)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
