package dflow

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/defect"
)

func TestGreedyCleanChip(t *testing.T) {
	m := defect.NewMap(8, 8)
	e := Greedy(m)
	if e.K() != 8 {
		t.Fatalf("clean chip k = %d", e.K())
	}
	if !IsUniversal(m, e.Rows, e.Cols) {
		t.Fatal("clean extraction not universal")
	}
}

func TestGreedyAlwaysUniversal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 120; i++ {
		n := 4 + rng.Intn(20)
		p := defect.UniformCrosspoint(rng.Float64() * 0.2)
		p.PRowBreak = rng.Float64() * 0.05
		p.PColBreak = rng.Float64() * 0.05
		p.PRowBridge = rng.Float64() * 0.05
		p.PColBridge = rng.Float64() * 0.05
		m := defect.Random(n, n, p, rng)
		e := Greedy(m)
		if len(e.Rows) != len(e.Cols) {
			t.Fatal("extraction not square")
		}
		if e.K() > 0 && !IsUniversal(m, e.Rows, e.Cols) {
			t.Fatalf("greedy extraction not universal:\n%v\n%v", m, e)
		}
	}
}

func TestGreedyAvoidsKnownDefects(t *testing.T) {
	// A fully defective row and column must be excluded; the rest is
	// clean, so k = n-1.
	n := 6
	m := defect.NewMap(n, n)
	for i := 0; i < n; i++ {
		m.Set(2, i, defect.StuckOpen)
		m.Set(i, 4, defect.StuckClosed)
	}
	e := Greedy(m)
	if e.K() != n-1 {
		t.Fatalf("k = %d, want %d", e.K(), n-1)
	}
	for _, r := range e.Rows {
		if r == 2 {
			t.Fatal("defective row selected")
		}
	}
	for _, c := range e.Cols {
		if c == 4 {
			t.Fatal("defective column selected")
		}
	}
}

func TestExactMatchesBruteOnTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		n := 3 + rng.Intn(4)
		m := defect.Random(n, n, defect.UniformCrosspoint(0.3), rng)
		exact, ok := ExactMaxK(m, 10)
		if !ok {
			t.Fatal("exact refused small N")
		}
		g := Greedy(m).K()
		if g > exact {
			t.Fatalf("greedy %d exceeded exact %d:\n%v", g, exact, m)
		}
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	// On small maps greedy should be within 1 of the optimum most of
	// the time — audit its quality.
	rng := rand.New(rand.NewSource(3))
	within1, total := 0, 0
	for i := 0; i < 80; i++ {
		n := 6 + rng.Intn(4)
		m := defect.Random(n, n, defect.UniformCrosspoint(0.15), rng)
		exact, ok := ExactMaxK(m, 10)
		if !ok {
			continue
		}
		g := Greedy(m).K()
		total++
		if exact-g <= 1 {
			within1++
		}
	}
	if total == 0 || float64(within1)/float64(total) < 0.8 {
		t.Fatalf("greedy within-1 rate %d/%d too low", within1, total)
	}
}

func TestExactHandlesBridges(t *testing.T) {
	// 4×4 clean map with all row bridges: no two adjacent rows may be
	// selected → at most 2 rows {0,2} or {1,3} → k = 2.
	m := defect.NewMap(4, 4)
	for r := 0; r+1 < 4; r++ {
		m.SetRowBridge(r, true)
	}
	exact, ok := ExactMaxK(m, 10)
	if !ok || exact != 2 {
		t.Fatalf("exact = %d, want 2", exact)
	}
	e := Greedy(m)
	if e.K() > 2 {
		t.Fatal("greedy ignored bridges")
	}
	if e.K() > 0 && !IsUniversal(m, e.Rows, e.Cols) {
		t.Fatal("greedy bridge extraction invalid")
	}
}

func TestYieldMonotoneInDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, want, trials := 16, 12, 60
	yLow := Yield(n, defect.UniformCrosspoint(0.01), want, trials, rng)
	yHigh := Yield(n, defect.UniformCrosspoint(0.25), want, trials, rng)
	if yLow < yHigh {
		t.Fatalf("yield should fall with density: %.2f vs %.2f", yLow, yHigh)
	}
	if yLow < 0.5 {
		t.Fatalf("low-density yield %.2f implausibly low", yLow)
	}
}

func TestDescriptorSizeIsLinear(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		m := defect.NewMap(n, n)
		e := Greedy(m)
		d := e.DescriptorBits(n)
		raw := RawMapBits(n)
		if d >= raw {
			t.Fatalf("N=%d: descriptor %d bits not smaller than raw map %d", n, d, raw)
		}
	}
	// Growth: descriptor O(N log N) versus raw O(N²): ratio must
	// improve with N.
	e16 := Greedy(defect.NewMap(16, 16)).DescriptorBits(16)
	e256 := Greedy(defect.NewMap(256, 256)).DescriptorBits(256)
	r16 := float64(e16) / float64(RawMapBits(16))
	r256 := float64(e256) / float64(RawMapBits(256))
	if r256 >= r16 {
		t.Fatalf("descriptor advantage should grow with N: %.3f vs %.3f", r16, r256)
	}
}

func TestCompareFlows(t *testing.T) {
	c := DefaultCosts()
	// Single app, single chip: aware flow is cheaper (no extraction).
	aware, unaware := CompareFlows(64, 56, 1, 1, c)
	if aware > unaware {
		t.Fatalf("one chip/app: aware %.0f should not exceed unaware %.0f", aware, unaware)
	}
	// Many chips and apps: unaware flow must win decisively.
	aware, unaware = CompareFlows(64, 56, 1000, 20, c)
	if unaware >= aware {
		t.Fatalf("at scale unaware %.0f should beat aware %.0f", unaware, aware)
	}
}

func TestIsUniversalRejects(t *testing.T) {
	m := defect.NewMap(4, 4)
	m.Set(1, 1, defect.StuckOpen)
	if IsUniversal(m, []int{0, 1}, []int{0, 1}) {
		t.Fatal("defective intersection accepted")
	}
	if !IsUniversal(m, []int{0, 2}, []int{0, 2}) {
		t.Fatal("clean selection rejected")
	}
	if IsUniversal(m, []int{0, 0}, []int{1, 2}) {
		t.Fatal("duplicate row accepted")
	}
	if IsUniversal(m, []int{0, 9}, []int{1, 2}) {
		t.Fatal("out-of-range row accepted")
	}
	m.SetRowBroken(3, true)
	if IsUniversal(m, []int{3}, []int{0}) {
		t.Fatal("broken row accepted")
	}
}

func TestExactRefusesLargeN(t *testing.T) {
	m := defect.NewMap(16, 16)
	if _, ok := ExactMaxK(m, 10); ok {
		t.Fatal("exact should refuse N beyond the limit")
	}
}
