package bism

import (
	"fmt"

	"nanoxbar/internal/defect"
)

// CheckLanes runs one application-dependent BIST session against all 64
// dies of a lane group at once, for the block-diagonal candidate
// mapping that places logical row i on physical row rowOff+i and
// logical column j on physical column colOff+j. It returns the lane
// mask of dies the candidate FAILS on; bit L clear means die L would
// pass a full scalar check of the same mapping.
//
// The session is the word-kernel dual of (*Chip).check: where the
// scalar check intersects one die's row-major column words against a
// selection mask, this intersects one site's die-major lane word — the
// per-row kernel used&open | (sel&^used)&closed evaluated across all
// lanes at once, one OR per crosspoint of the application footprint.
// Violations are accumulated, not diagnosed: the lane path only needs
// pass/fail per die, and failing dies are demoted to the scalar mapper
// which re-derives the full BISD diagnosis from the die's own map.
//
// pending is the lane mask the caller still cares about (dies not yet
// placed by an earlier candidate); the scan stops early once every
// pending lane has failed. Lanes outside pending may or may not be
// reported failed — callers mask the result.
func CheckLanes(app *App, lp *defect.LanePlanes, rowOff, colOff int, pending uint64) uint64 {
	if rowOff < 0 || colOff < 0 || rowOff+app.R > lp.R || colOff+app.C > lp.C {
		panic(fmt.Sprintf("bism: %d×%d candidate at (%d,%d) outside %d×%d lane planes",
			app.R, app.C, rowOff, colOff, lp.R, lp.C))
	}
	rowBroken, colBroken := lp.RowBrokenWords(), lp.ColBrokenWords()
	rowBridge, colBridge := lp.RowBridgeWords(), lp.ColBridgeWords()

	// Wire faults first — one word per line, the cheap planes.
	failed := uint64(0)
	for i := 0; i < app.R; i++ {
		failed |= rowBroken[rowOff+i]
	}
	for j := 0; j < app.C; j++ {
		failed |= colBroken[colOff+j]
	}
	// Bridges between adjacent selected lines: the candidate selects
	// contiguous line blocks, so exactly the interior pairs are both
	// selected.
	for i := 0; i+1 < app.R; i++ {
		failed |= rowBridge[rowOff+i]
	}
	for j := 0; j+1 < app.C; j++ {
		failed |= colBridge[colOff+j]
	}
	if failed&pending == pending {
		return failed
	}

	// Crosspoints of the candidate footprint: a used switch fails lanes
	// whose site is stuck open, an unused intersection of selected
	// lines fails lanes whose site is stuck closed.
	open, clsd := lp.OpenWords(), lp.ClosedWords()
	for i := 0; i < app.R; i++ {
		base := (rowOff+i)*lp.C + colOff
		for j, u := range app.Used[i] {
			if u {
				failed |= open[base+j]
			} else {
				failed |= clsd[base+j]
			}
		}
		if failed&pending == pending {
			return failed
		}
	}
	return failed
}
