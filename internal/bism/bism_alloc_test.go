//go:build !race

// The zero-allocation assertion lives outside race builds: the race
// runtime instruments allocations of its own, making AllocsPerRun
// unreliable there. The functional property tests still run under
// -race.

package bism

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/defect"
)

// TestGreedyRepairZeroAllocs is the acceptance assertion: a Greedy
// repair attempt performs zero heap allocations. The chip is entirely
// stuck open so every configuration fails and the full BIST→BISD→
// replace/restart loop runs for the whole budget without the one
// success-path mapping clone.
func TestGreedyRepairZeroAllocs(t *testing.T) {
	n := 32
	d := defect.NewMap(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			d.Set(r, c, defect.StuckOpen)
		}
	}
	ch := NewChip(d)
	app := RandomApp(8, 8, 0.5, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	const attempts = 64
	if mp, _ := (Greedy{}).Map(ch, app, attempts, rng); mp != nil {
		t.Fatal("all-stuck-open chip cannot map")
	}
	allocs := testing.AllocsPerRun(20, func() {
		Greedy{}.Map(ch, app, attempts, rng)
	})
	if allocs != 0 {
		t.Fatalf("Greedy repair allocated %.1f times per %d-attempt Map, want 0", allocs, attempts)
	}
}
