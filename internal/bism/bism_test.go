package bism

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/defect"
)

func cleanChip(n int) *Chip { return NewChip(defect.NewMap(n, n)) }

func TestCleanChipFirstTry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	app := RandomApp(4, 4, 0.5, rng)
	for _, m := range []Mapper{Blind{}, Greedy{}, Hybrid{}} {
		mp, st := m.Map(cleanChip(8), app, 100, rng)
		if mp == nil || !st.Success {
			t.Fatalf("%s failed on a clean chip", m.Name())
		}
		if st.Configs != 1 || st.BISTCalls != 1 || st.BISDCalls != 0 {
			t.Fatalf("%s stats on clean chip: %+v", m.Name(), st)
		}
	}
}

func TestReturnedMappingsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 12 + rng.Intn(8)
		d := defect.Random(n, n, defect.UniformCrosspoint(0.02), rng)
		ch := NewChip(d)
		app := RandomApp(4, 4, 0.4, rng)
		for _, m := range []Mapper{Blind{}, Greedy{}, Hybrid{}} {
			mp, st := m.Map(ch, app, 500, rng)
			if mp == nil {
				continue // may legitimately fail
			}
			if !st.Success {
				t.Fatalf("%s returned mapping without success flag", m.Name())
			}
			if !Validate(ch, app, mp) {
				t.Fatalf("%s returned an invalid mapping", m.Name())
			}
			// Injectivity.
			seen := map[int]bool{}
			for _, r := range mp.Rows {
				if seen[r] {
					t.Fatalf("%s duplicated physical row", m.Name())
				}
				seen[r] = true
			}
		}
	}
}

func TestMappingAvoidsDefects(t *testing.T) {
	// A chip defective everywhere except one clean 2×2 corner: any
	// valid mapping of a full 2×2 app must land exactly there.
	n := 6
	d := defect.NewMap(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if r >= 2 || c >= 2 {
				d.Set(r, c, defect.StuckOpen)
			}
		}
	}
	app := NewApp([][]bool{{true, true}, {true, true}})
	ch := NewChip(d)
	rng := rand.New(rand.NewSource(3))
	mp, st := Greedy{}.Map(ch, app, 20000, rng)
	if mp == nil {
		t.Fatalf("greedy failed to find the clean corner: %+v", st)
	}
	for _, r := range mp.Rows {
		if r >= 2 {
			t.Fatalf("mapping uses defective row %d", r)
		}
	}
	for _, c := range mp.Cols {
		if c >= 2 {
			t.Fatalf("mapping uses defective col %d", c)
		}
	}
}

func TestStuckClosedBlocksUnusedCrosspoint(t *testing.T) {
	// App uses (0,0) and (1,1) but not (0,1); a stuck-closed at the
	// mapped (0,1) intersection must invalidate the mapping.
	d := defect.NewMap(2, 2)
	d.Set(0, 1, defect.StuckClosed)
	ch := NewChip(d)
	app := NewApp([][]bool{{true, false}, {false, true}})
	// Identity mapping hits the stuck-closed cell.
	ok, bad := ch.Check(app, &Mapping{Rows: []int{0, 1}, Cols: []int{0, 1}})
	if ok {
		t.Fatal("stuck-closed on an unused crosspoint must fail BIST")
	}
	if len(bad) == 0 {
		t.Fatal("diagnosis must name resources")
	}
	// Swapped rows: logical (0,·) on physical row 1; physical (0,1)
	// now sits at logical (1,1) which IS used → stuck-closed harmless.
	ok, _ = ch.Check(app, &Mapping{Rows: []int{1, 0}, Cols: []int{0, 1}})
	if !ok {
		t.Fatal("swap should tolerate the stuck-closed crosspoint")
	}
}

func TestBridgesBlockAdjacency(t *testing.T) {
	d := defect.NewMap(4, 4)
	d.SetRowBridge(1, true) // rows 1,2 bridged
	ch := NewChip(d)
	app := NewApp([][]bool{{true, true}, {true, true}})
	// Mapping using both bridged rows fails.
	ok, _ := ch.Check(app, &Mapping{Rows: []int{1, 2}, Cols: []int{0, 1}})
	if ok {
		t.Fatal("bridged selected rows must fail")
	}
	// Skipping row 2 is fine.
	ok, _ = ch.Check(app, &Mapping{Rows: []int{1, 3}, Cols: []int{0, 1}})
	if !ok {
		t.Fatal("non-adjacent selection must pass")
	}
}

// TestCheckMatchesScalarReference is the mask-equivalence property
// test: the word-plane BIST/BISD session must agree with the retained
// per-crosspoint reference — pass/fail verdict and the exact diagnosed
// resource set — over random chips, applications and mappings,
// including wire faults and bridges around word boundaries.
func TestCheckMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(80) // crosses the 64-line word boundary
		p := defect.Params{
			PStuckOpen:   rng.Float64() * 0.1,
			PStuckClosed: rng.Float64() * 0.1,
			PRowBreak:    rng.Float64() * 0.1,
			PColBreak:    rng.Float64() * 0.1,
			PRowBridge:   rng.Float64() * 0.1,
			PColBridge:   rng.Float64() * 0.1,
		}
		d := defect.Random(n, n, p, rng)
		ch := NewChip(d)
		appDim := 1 + rng.Intn(n)
		app := RandomApp(appDim, appDim, rng.Float64(), rng)
		scr := getScratch(ch.N, app.R)
		m := scr.mapping(app)
		scr.randomMapping(ch.N, app, rng, m)

		gotOK := ch.check(app, m, scr)
		wantOK, wantBad := ch.checkScalar(app, m)
		if gotOK != wantOK {
			t.Fatalf("trial %d (n=%d): mask check %v, scalar %v\n%s", trial, n, gotOK, wantOK, d)
		}
		gotBad := map[Resource]bool{}
		if !gotOK {
			for _, r := range scr.bad.Resources() {
				gotBad[r] = true
			}
		}
		if len(gotBad) != len(wantBad) {
			t.Fatalf("trial %d (n=%d): diagnosis size %d, scalar %d\nmask: %v\nscalar: %v",
				trial, n, len(gotBad), len(wantBad), gotBad, wantBad)
		}
		for r := range wantBad {
			if !gotBad[r] {
				t.Fatalf("trial %d (n=%d): scalar diagnoses %v, mask does not", trial, n, r)
			}
		}
		putScratch(scr)
	}
}

func TestBlindDegradesGreedySurvives(t *testing.T) {
	// At high defect density blind almost never succeeds within a
	// small budget while greedy usually does — the paper's regime
	// separation.
	rng := rand.New(rand.NewSource(4))
	n, trials, budget := 24, 30, 40
	density := 0.15
	blindWins, greedyWins := 0, 0
	for i := 0; i < trials; i++ {
		d := defect.Random(n, n, defect.UniformCrosspoint(density), rng)
		app := RandomApp(8, 8, 0.5, rng)
		ch := NewChip(d)
		if mp, _ := (Blind{}).Map(ch, app, budget, rng); mp != nil {
			blindWins++
		}
		if mp, _ := (Greedy{}).Map(ch, app, budget, rng); mp != nil {
			greedyWins++
		}
	}
	if greedyWins <= blindWins {
		t.Fatalf("greedy (%d/%d) should beat blind (%d/%d) at density %.2f",
			greedyWins, trials, blindWins, trials, density)
	}
}

func TestBlindCheaperAtLowDensity(t *testing.T) {
	// At very low density blind needs no diagnosis sessions, so its
	// cost with expensive BISD should be no worse than greedy's.
	rng := rand.New(rand.NewSource(5))
	n, trials := 24, 40
	diagCost := 10.0
	var blindCost, greedyCost float64
	for i := 0; i < trials; i++ {
		d := defect.Random(n, n, defect.UniformCrosspoint(0.002), rng)
		app := RandomApp(6, 6, 0.5, rng)
		ch := NewChip(d)
		_, st := (Blind{}).Map(ch, app, 1000, rng)
		blindCost += st.Cost(diagCost)
		_, st = (Greedy{}).Map(ch, app, 1000, rng)
		greedyCost += st.Cost(diagCost)
	}
	if blindCost > greedyCost*1.5 {
		t.Fatalf("blind cost %.1f should be competitive at low density (greedy %.1f)",
			blindCost, greedyCost)
	}
}

func TestHybridTracksBest(t *testing.T) {
	// Hybrid must succeed wherever greedy succeeds (it falls back).
	rng := rand.New(rand.NewSource(6))
	n, trials, budget := 24, 25, 200
	for _, density := range []float64{0.001, 0.05} {
		greedyOK, hybridOK := 0, 0
		for i := 0; i < trials; i++ {
			d := defect.Random(n, n, defect.UniformCrosspoint(density), rng)
			app := RandomApp(5, 5, 0.5, rng)
			ch := NewChip(d)
			if mp, _ := (Greedy{}).Map(ch, app, budget, rng); mp != nil {
				greedyOK++
			}
			if mp, _ := (Hybrid{BlindBudget: 4}).Map(ch, app, budget, rng); mp != nil {
				hybridOK++
			}
		}
		if hybridOK < greedyOK-3 {
			t.Fatalf("density %.3f: hybrid %d/%d far below greedy %d/%d",
				density, hybridOK, trials, greedyOK, trials)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	st := Stats{BISTCalls: 10, BISDCalls: 3}
	if st.Cost(5) != 10+15 {
		t.Fatalf("cost = %v", st.Cost(5))
	}
}

func TestImpossibleAppFails(t *testing.T) {
	// All crosspoints stuck open: nothing that closes a switch can map.
	n := 5
	d := defect.NewMap(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			d.Set(r, c, defect.StuckOpen)
		}
	}
	ch := NewChip(d)
	app := NewApp([][]bool{{true}})
	rng := rand.New(rand.NewSource(7))
	for _, m := range []Mapper{Blind{}, Greedy{}, Hybrid{}} {
		if mp, st := m.Map(ch, app, 50, rng); mp != nil || st.Success {
			t.Fatalf("%s claimed success on an unusable chip", m.Name())
		}
	}
}

func TestAppValidation(t *testing.T) {
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewApp(nil) })
	mustPanic(func() { NewApp([][]bool{{true}, {true, false}}) })
	mustPanic(func() { NewChip(defect.NewMap(2, 3)) })
	mustPanic(func() {
		rng := rand.New(rand.NewSource(8))
		app := RandomApp(9, 9, 0.5, rng)
		Blind{}.Map(cleanChip(4), app, 1, rng)
	})
}

func TestMapperNames(t *testing.T) {
	if (Blind{}).Name() != "blind" || (Greedy{}).Name() != "greedy" {
		t.Fatal("names")
	}
	if (Hybrid{BlindBudget: 7}).Name() != "hybrid(7)" {
		t.Fatal("hybrid name")
	}
}
