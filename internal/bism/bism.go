// Package bism implements the built-in self-mapping (BISM) schemes of
// Section IV-B of the DATE'17 paper: blind, greedy, and hybrid mapping
// of an application configuration onto a partially defective crossbar.
//
// The mapper assigns each logical row/column of the application to a
// distinct physical row/column of the chip. A mapping is valid when
//
//   - every physical crosspoint carrying a used (closed) switch is not
//     stuck open and its wires are intact,
//   - every physical crosspoint at the intersection of selected lines
//     that must stay open is not stuck closed, and
//   - no bridge joins two selected adjacent physical lines.
//
// The chip can only be observed through its built-in test machinery:
// BIST answers pass/fail for the current configuration
// (application-dependent test), and BISD additionally names the
// defective physical resources used by the failing configuration. The
// three schemes differ in how they spend those two primitives, exactly
// as the paper describes: blind re-randomizes after every failed BIST,
// greedy invokes BISD and re-maps only the broken lines, and hybrid
// starts blind and falls back to greedy after a retry budget.
package bism

import (
	"fmt"
	"math/rand"

	"nanoxbar/internal/defect"
)

// App is the application configuration to be realized: a logical R×C
// crosspoint closure matrix.
type App struct {
	R, C int
	Used [][]bool // Used[i][j]: logical crosspoint (i,j) must close
}

// NewApp builds an application from a closure matrix.
func NewApp(used [][]bool) *App {
	if len(used) == 0 || len(used[0]) == 0 {
		panic("bism: empty application")
	}
	a := &App{R: len(used), C: len(used[0]), Used: used}
	for _, row := range used {
		if len(row) != a.C {
			panic("bism: ragged application matrix")
		}
	}
	return a
}

// RandomApp draws an application whose crosspoints close independently
// with the given density.
func RandomApp(r, c int, density float64, rng *rand.Rand) *App {
	used := make([][]bool, r)
	for i := range used {
		used[i] = make([]bool, c)
		for j := range used[i] {
			used[i][j] = rng.Float64() < density
		}
	}
	return NewApp(used)
}

// Mapping assigns logical lines to physical lines (injectively).
type Mapping struct {
	Rows []int // Rows[i] = physical row of logical row i
	Cols []int
}

// Chip is the physical array under self-mapping: the defect map is
// hidden from the algorithms, which may only call BIST and BISD.
type Chip struct {
	N       int
	defects *defect.Map
}

// NewChip wraps a defect map as a testable chip.
func NewChip(m *defect.Map) *Chip {
	if m.R != m.C {
		panic("bism: chip must be square")
	}
	return &Chip{N: m.R, defects: m}
}

// Resource identifies a physical line reported defective by BISD.
type Resource struct {
	IsRow bool
	Index int // physical line index
}

func (r Resource) String() string {
	if r.IsRow {
		return fmt.Sprintf("row%d", r.Index)
	}
	return fmt.Sprintf("col%d", r.Index)
}

// bist checks the mapped configuration; it reports failure and (for the
// diagnosis path) the set of physical lines involved in violations.
func (ch *Chip) check(app *App, m *Mapping) (ok bool, bad map[Resource]bool) {
	bad = make(map[Resource]bool)
	d := ch.defects
	selRow := make(map[int]bool, app.R)
	for _, pr := range m.Rows {
		selRow[pr] = true
	}
	selCol := make(map[int]bool, app.C)
	for _, pc := range m.Cols {
		selCol[pc] = true
	}
	for i, pr := range m.Rows {
		if d.RowBroken[pr] {
			bad[Resource{true, pr}] = true
		}
		for j, pc := range m.Cols {
			k := d.At(pr, pc)
			if app.Used[i][j] && k == defect.StuckOpen {
				bad[Resource{true, pr}] = true
				bad[Resource{false, pc}] = true
			}
			if !app.Used[i][j] && k == defect.StuckClosed {
				bad[Resource{true, pr}] = true
				bad[Resource{false, pc}] = true
			}
		}
	}
	for _, pc := range m.Cols {
		if d.ColBroken[pc] {
			bad[Resource{false, pc}] = true
		}
	}
	for r := 0; r+1 < ch.N; r++ {
		if d.RowBridges[r] && selRow[r] && selRow[r+1] {
			bad[Resource{true, r}] = true
			bad[Resource{true, r + 1}] = true
		}
	}
	for c := 0; c+1 < ch.N; c++ {
		if d.ColBridges[c] && selCol[c] && selCol[c+1] {
			bad[Resource{false, c}] = true
			bad[Resource{false, c + 1}] = true
		}
	}
	return len(bad) == 0, bad
}

// Stats accounts the self-mapping effort, the cost measures compared in
// experiment E7.
type Stats struct {
	Configs   int  // configurations programmed into the crossbar
	BISTCalls int  // application-dependent test sessions
	BISDCalls int  // diagnosis sessions
	Success   bool // a defect-free mapping was found
}

// Cost converts the effort into the abstract cost model: a BIST session
// costs 1, a BISD session costs diagCost (diagnosis applies the
// logarithmic configuration set, so diagCost > 1).
func (s Stats) Cost(diagCost float64) float64 {
	return float64(s.BISTCalls) + diagCost*float64(s.BISDCalls)
}

// Mapper is one self-mapping scheme.
type Mapper interface {
	Name() string
	// Map attempts to find a valid mapping within maxAttempts
	// configurations.
	Map(ch *Chip, app *App, maxAttempts int, rng *rand.Rand) (*Mapping, Stats)
}

func randomMapping(n int, app *App, rng *rand.Rand) *Mapping {
	if app.R > n || app.C > n {
		panic(fmt.Sprintf("bism: %d×%d application exceeds %d×%d chip", app.R, app.C, n, n))
	}
	return &Mapping{
		Rows: rng.Perm(n)[:app.R],
		Cols: rng.Perm(n)[:app.C],
	}
}

// Blind BISM: re-randomize the whole configuration after every failed
// application-dependent BIST. No diagnosis at all — fast and simple at
// low defect densities, hopeless at high ones.
type Blind struct{}

// Name implements Mapper.
func (Blind) Name() string { return "blind" }

// Map implements Mapper.
func (Blind) Map(ch *Chip, app *App, maxAttempts int, rng *rand.Rand) (*Mapping, Stats) {
	var st Stats
	for st.Configs < maxAttempts {
		m := randomMapping(ch.N, app, rng)
		st.Configs++
		st.BISTCalls++
		if ok, _ := ch.check(app, m); ok {
			st.Success = true
			return m, st
		}
	}
	return nil, st
}

// Greedy BISM: after a failed BIST, run BISD and replace only the
// physical lines reported defective with fresh unused ones. Effective at
// high defect densities where blind retries almost never succeed.
type Greedy struct{}

// Name implements Mapper.
func (Greedy) Name() string { return "greedy" }

// Map implements Mapper.
func (g Greedy) Map(ch *Chip, app *App, maxAttempts int, rng *rand.Rand) (*Mapping, Stats) {
	var st Stats
	m := randomMapping(ch.N, app, rng)
	st.Configs++
	return g.repair(ch, app, m, maxAttempts, rng, st)
}

// repair runs the greedy BISD/bypass loop from an existing mapping.
func (Greedy) repair(ch *Chip, app *App, m *Mapping, maxAttempts int, rng *rand.Rand, st Stats) (*Mapping, Stats) {
	for {
		st.BISTCalls++
		ok, _ := ch.check(app, m)
		if ok {
			st.Success = true
			return m, st
		}
		if st.Configs >= maxAttempts {
			return nil, st
		}
		st.BISDCalls++
		_, bad := ch.check(app, m)
		if !replaceBad(ch.N, app, m, bad, rng) {
			// Not enough spare lines to bypass: restart randomly.
			m = randomMapping(ch.N, app, rng)
		}
		st.Configs++
	}
}

// replaceBad remaps every logical line currently assigned to a reported
// defective physical line onto a random unused physical line. It
// reports false when the chip has no spare lines left to try.
func replaceBad(n int, app *App, m *Mapping, bad map[Resource]bool, rng *rand.Rand) bool {
	usedRow := make(map[int]bool, app.R)
	for _, pr := range m.Rows {
		usedRow[pr] = true
	}
	usedCol := make(map[int]bool, app.C)
	for _, pc := range m.Cols {
		usedCol[pc] = true
	}
	spare := func(used map[int]bool) []int {
		var s []int
		for p := 0; p < n; p++ {
			if !used[p] {
				s = append(s, p)
			}
		}
		rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		return s
	}
	spareRows, spareCols := spare(usedRow), spare(usedCol)
	replaced := false
	for i, pr := range m.Rows {
		if bad[Resource{true, pr}] {
			if len(spareRows) == 0 {
				return replaced
			}
			m.Rows[i] = spareRows[0]
			spareRows = spareRows[1:]
			replaced = true
		}
	}
	for j, pc := range m.Cols {
		if bad[Resource{false, pc}] {
			if len(spareCols) == 0 {
				return replaced
			}
			m.Cols[j] = spareCols[0]
			spareCols = spareCols[1:]
			replaced = true
		}
	}
	return replaced
}

// Hybrid BISM: blind for BlindBudget configurations, then greedy. The
// paper's recommended scheme: tracks blind's low cost at low defect
// density and greedy's robustness at high density, for any local or
// global density variation.
type Hybrid struct {
	BlindBudget int // blind configurations before switching (default 4)
}

// Name implements Mapper.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid(%d)", h.budget()) }

func (h Hybrid) budget() int {
	if h.BlindBudget <= 0 {
		return 4
	}
	return h.BlindBudget
}

// Map implements Mapper.
func (h Hybrid) Map(ch *Chip, app *App, maxAttempts int, rng *rand.Rand) (*Mapping, Stats) {
	var st Stats
	budget := h.budget()
	if budget > maxAttempts {
		budget = maxAttempts
	}
	var last *Mapping
	for st.Configs < budget {
		last = randomMapping(ch.N, app, rng)
		st.Configs++
		st.BISTCalls++
		if ok, _ := ch.check(app, last); ok {
			st.Success = true
			return last, st
		}
	}
	if st.Configs >= maxAttempts || last == nil {
		return nil, st
	}
	return Greedy{}.repair(ch, app, last, maxAttempts, rng, st)
}

// Validate re-checks a returned mapping against the chip (used by tests
// and by callers that want a final independent confirmation).
func Validate(ch *Chip, app *App, m *Mapping) bool {
	ok, _ := ch.check(app, m)
	return ok
}
