// Package bism implements the built-in self-mapping (BISM) schemes of
// Section IV-B of the DATE'17 paper: blind, greedy, and hybrid mapping
// of an application configuration onto a partially defective crossbar.
//
// The mapper assigns each logical row/column of the application to a
// distinct physical row/column of the chip. A mapping is valid when
//
//   - every physical crosspoint carrying a used (closed) switch is not
//     stuck open and its wires are intact,
//   - every physical crosspoint at the intersection of selected lines
//     that must stay open is not stuck closed, and
//   - no bridge joins two selected adjacent physical lines.
//
// The chip can only be observed through its built-in test machinery:
// BIST answers pass/fail for the current configuration
// (application-dependent test), and BISD additionally names the
// defective physical resources used by the failing configuration. The
// three schemes differ in how they spend those two primitives, exactly
// as the paper describes: blind re-randomizes after every failed BIST,
// greedy invokes BISD and re-maps only the broken lines, and hybrid
// starts blind and falls back to greedy after a retry budget.
//
// The test machinery itself runs on the defect map's bitset word
// planes: a BIST/BISD session intersects the application's used-column
// masks against the chip's stuck-open/stuck-closed planes 64 physical
// columns per operation, accumulating the diagnosis in a reusable
// bad-line bitset, and every mapper draws its permutations and spare
// lines from pooled scratch — a repair attempt performs zero heap
// allocations.
package bism

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"

	"nanoxbar/internal/defect"
)

// App is the application configuration to be realized: a logical R×C
// crosspoint closure matrix.
type App struct {
	R, C int
	Used [][]bool // Used[i][j]: logical crosspoint (i,j) must close

	// usedIdx[i] lists the used j's of logical row i — precomputed by
	// NewApp so a BIST session only touches closed switches when
	// scattering the application into physical column space.
	usedIdx [][]int32
}

// NewApp builds an application from a closure matrix.
func NewApp(used [][]bool) *App {
	if len(used) == 0 || len(used[0]) == 0 {
		panic("bism: empty application")
	}
	a := &App{R: len(used), C: len(used[0]), Used: used}
	for _, row := range used {
		if len(row) != a.C {
			panic("bism: ragged application matrix")
		}
	}
	a.usedIdx = make([][]int32, a.R)
	for i, row := range used {
		for j, u := range row {
			if u {
				a.usedIdx[i] = append(a.usedIdx[i], int32(j))
			}
		}
	}
	return a
}

// RandomApp draws an application whose crosspoints close independently
// with the given density.
func RandomApp(r, c int, density float64, rng *rand.Rand) *App {
	used := make([][]bool, r)
	for i := range used {
		used[i] = make([]bool, c)
		for j := range used[i] {
			used[i][j] = rng.Float64() < density
		}
	}
	return NewApp(used)
}

// Mapping assigns logical lines to physical lines (injectively).
type Mapping struct {
	Rows []int // Rows[i] = physical row of logical row i
	Cols []int
}

// clone returns an independent copy — mappers hand this out on success
// so the pooled scratch mapping never escapes.
func (m *Mapping) clone() *Mapping {
	return &Mapping{
		Rows: append([]int(nil), m.Rows...),
		Cols: append([]int(nil), m.Cols...),
	}
}

// Chip is the physical array under self-mapping: the defect map is
// hidden from the algorithms, which may only call BIST and BISD. NewChip
// snapshots word-plane views of the map so a test session is pure mask
// arithmetic.
type Chip struct {
	N       int
	defects *defect.Map

	rowBroken []uint64 // views into the defect map's wire bitsets
	colBroken []uint64
	rowBridge []uint64
	colBridge []uint64
}

// NewChip wraps a defect map as a testable chip.
func NewChip(m *defect.Map) *Chip {
	if m.R != m.C {
		panic("bism: chip must be square")
	}
	return &Chip{
		N: m.R, defects: m,
		rowBroken: m.RowBrokenWords(), colBroken: m.ColBrokenWords(),
		rowBridge: m.RowBridgeWords(), colBridge: m.ColBridgeWords(),
	}
}

// Resource identifies a physical line reported defective by BISD.
type Resource struct {
	IsRow bool
	Index int // physical line index
}

func (r Resource) String() string {
	if r.IsRow {
		return fmt.Sprintf("row%d", r.Index)
	}
	return fmt.Sprintf("col%d", r.Index)
}

// BadSet is a BISD diagnosis: bitsets over the physical rows and
// columns involved in violations. It is reused across test sessions —
// the allocation-free replacement for the map[Resource]bool diagnosis.
type BadSet struct {
	rows, cols []uint64
}

func (b *BadSet) grow(w int) {
	if cap(b.rows) < w {
		b.rows = make([]uint64, w)
		b.cols = make([]uint64, w)
	}
	b.rows = b.rows[:w]
	b.cols = b.cols[:w]
	for i := 0; i < w; i++ {
		b.rows[i] = 0
		b.cols[i] = 0
	}
}

// Row reports whether physical row r is diagnosed bad.
func (b *BadSet) Row(r int) bool { return b.rows[r>>6]>>uint(r&63)&1 == 1 }

// Col reports whether physical column c is diagnosed bad.
func (b *BadSet) Col(c int) bool { return b.cols[c>>6]>>uint(c&63)&1 == 1 }

// Resources expands the diagnosis into a Resource list (debug and test
// convenience; allocates).
func (b *BadSet) Resources() []Resource {
	var res []Resource
	for i := range b.rows {
		for w := b.rows[i]; w != 0; w &= w - 1 {
			res = append(res, Resource{true, i<<6 + bits.TrailingZeros64(w)})
		}
	}
	for i := range b.cols {
		for w := b.cols[i]; w != 0; w &= w - 1 {
			res = append(res, Resource{false, i<<6 + bits.TrailingZeros64(w)})
		}
	}
	return res
}

// scratch is the pooled per-session working set of the mappers: the
// current mapping, selection and diagnosis bitsets, the application
// scattered into physical column space, and permutation/spare buffers.
type scratch struct {
	n, w int

	selRow, selCol []uint64 // selected physical lines
	usedPhys       []uint64 // appR×w: used physical columns per logical row
	bad            BadSet

	perm       []int
	rows, cols []int // backing for the working mapping
	spare      []int
	wm         Mapping // the working mapping, aliasing rows/cols
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(n, appR int) *scratch {
	s := scratchPool.Get().(*scratch)
	w := (n + 63) >> 6
	s.n, s.w = n, w
	if cap(s.selRow) < w {
		s.selRow = make([]uint64, w)
		s.selCol = make([]uint64, w)
	}
	s.selRow, s.selCol = s.selRow[:w], s.selCol[:w]
	if cap(s.usedPhys) < appR*w {
		s.usedPhys = make([]uint64, appR*w)
	}
	s.usedPhys = s.usedPhys[:appR*w]
	if cap(s.perm) < n {
		s.perm = make([]int, n)
		s.spare = make([]int, 0, n)
	}
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// mapping returns the scratch-backed working mapping sized for app.
func (s *scratch) mapping(app *App) *Mapping {
	if cap(s.rows) < app.R {
		s.rows = make([]int, app.R)
	}
	if cap(s.cols) < app.C {
		s.cols = make([]int, app.C)
	}
	s.wm = Mapping{Rows: s.rows[:app.R], Cols: s.cols[:app.C]}
	return &s.wm
}

// randomMapping redraws m uniformly over injective line assignments
// (partial Fisher–Yates over the scratch permutation buffer).
func (s *scratch) randomMapping(n int, app *App, rng *rand.Rand, m *Mapping) {
	if app.R > n || app.C > n {
		panic(fmt.Sprintf("bism: %d×%d application exceeds %d×%d chip", app.R, app.C, n, n))
	}
	draw := func(out []int) {
		perm := s.perm[:n]
		for i := range perm {
			perm[i] = i
		}
		for i := range out {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
			out[i] = perm[i]
		}
	}
	draw(m.Rows)
	draw(m.Cols)
}

func bitOf(w []uint64, i int) bool { return w[i>>6]>>uint(i&63)&1 == 1 }
func setBitOf(w []uint64, i int)   { w[i>>6] |= 1 << uint(i&63) }

// markBridgePairs diagnoses bridges between adjacent selected lines:
// for every bit r with bridge(r,r+1) and both lines selected, lines r
// and r+1 are marked bad. Pure word arithmetic with cross-word carries.
func markBridgePairs(bridge, sel, bad []uint64, w int) bool {
	any := false
	for k := 0; k < w; k++ {
		next := uint64(0)
		if k+1 < w {
			next = sel[k+1]
		}
		pairs := bridge[k] & sel[k] & (sel[k]>>1 | next<<63)
		if pairs != 0 {
			bad[k] |= pairs | pairs<<1
			if k+1 < w {
				bad[k+1] |= pairs >> 63
			}
			any = true
		}
	}
	return any
}

// check runs one combined BIST/BISD session over the mapped
// configuration: mask intersections of the application against the
// chip's defect word planes, 64 physical columns at a time. The
// diagnosis lands in scr.bad; check reports whether the configuration
// passed. It performs no heap allocation.
func (ch *Chip) check(app *App, m *Mapping, scr *scratch) bool {
	d, w := ch.defects, scr.w
	selRow, selCol := scr.selRow, scr.selCol
	for k := 0; k < w; k++ {
		selRow[k] = 0
		selCol[k] = 0
	}
	for _, pr := range m.Rows {
		setBitOf(selRow, pr)
	}
	for _, pc := range m.Cols {
		setBitOf(selCol, pc)
	}

	// Scatter the application into physical column space: bit pc of
	// usedPhys[i] is set iff logical crosspoint (i,j) with cols[j]=pc
	// must close.
	up := scr.usedPhys[:app.R*w]
	for k := range up {
		up[k] = 0
	}
	for i, idx := range app.usedIdx {
		row := up[i*w : (i+1)*w]
		for _, j := range idx {
			setBitOf(row, m.Cols[j])
		}
	}

	scr.bad.grow(w)
	badRows, badCols := scr.bad.rows, scr.bad.cols
	bad := false

	for i, pr := range m.Rows {
		if bitOf(ch.rowBroken, pr) {
			setBitOf(badRows, pr)
			bad = true
		}
		open, closed := d.OpenRow(pr), d.ClosedRow(pr)
		row := up[i*w : (i+1)*w]
		rowBad := false
		for k := 0; k < w; k++ {
			// Used switches on stuck-open crosspoints, unused selected
			// intersections on stuck-closed ones.
			v := row[k]&open[k] | (selCol[k]&^row[k])&closed[k]
			if v != 0 {
				badCols[k] |= v
				rowBad = true
			}
		}
		if rowBad {
			setBitOf(badRows, pr)
			bad = true
		}
	}
	for k := 0; k < w; k++ {
		if v := selCol[k] & ch.colBroken[k]; v != 0 {
			badCols[k] |= v
			bad = true
		}
	}
	if markBridgePairs(ch.rowBridge, selRow, badRows, w) {
		bad = true
	}
	if markBridgePairs(ch.colBridge, selCol, badCols, w) {
		bad = true
	}
	return !bad
}

// checkScalar is the retained per-crosspoint reference implementation
// of the BIST/BISD session. The property tests pin the mask-based check
// against it; it is not used on serving paths.
func (ch *Chip) checkScalar(app *App, m *Mapping) (ok bool, bad map[Resource]bool) {
	bad = make(map[Resource]bool)
	d := ch.defects
	selRow := make(map[int]bool, app.R)
	for _, pr := range m.Rows {
		selRow[pr] = true
	}
	selCol := make(map[int]bool, app.C)
	for _, pc := range m.Cols {
		selCol[pc] = true
	}
	for i, pr := range m.Rows {
		if d.RowBroken(pr) {
			bad[Resource{true, pr}] = true
		}
		for j, pc := range m.Cols {
			k := d.At(pr, pc)
			if app.Used[i][j] && k == defect.StuckOpen {
				bad[Resource{true, pr}] = true
				bad[Resource{false, pc}] = true
			}
			if !app.Used[i][j] && k == defect.StuckClosed {
				bad[Resource{true, pr}] = true
				bad[Resource{false, pc}] = true
			}
		}
	}
	for _, pc := range m.Cols {
		if d.ColBroken(pc) {
			bad[Resource{false, pc}] = true
		}
	}
	for r := 0; r+1 < ch.N; r++ {
		if d.RowBridge(r) && selRow[r] && selRow[r+1] {
			bad[Resource{true, r}] = true
			bad[Resource{true, r + 1}] = true
		}
	}
	for c := 0; c+1 < ch.N; c++ {
		if d.ColBridge(c) && selCol[c] && selCol[c+1] {
			bad[Resource{false, c}] = true
			bad[Resource{false, c + 1}] = true
		}
	}
	return len(bad) == 0, bad
}

// Check runs one BIST+BISD session against the mapping and returns the
// diagnosis as a Resource list — the debug/test convenience over the
// internal allocation-free session.
func (ch *Chip) Check(app *App, m *Mapping) (ok bool, bad []Resource) {
	scr := getScratch(ch.N, app.R)
	defer putScratch(scr)
	if ch.check(app, m, scr) {
		return true, nil
	}
	return false, scr.bad.Resources()
}

// Stats accounts the self-mapping effort, the cost measures compared in
// experiment E7.
type Stats struct {
	Configs   int  // configurations programmed into the crossbar
	BISTCalls int  // application-dependent test sessions
	BISDCalls int  // diagnosis sessions
	Success   bool // a defect-free mapping was found
}

// Cost converts the effort into the abstract cost model: a BIST session
// costs 1, a BISD session costs diagCost (diagnosis applies the
// logarithmic configuration set, so diagCost > 1).
func (s Stats) Cost(diagCost float64) float64 {
	return float64(s.BISTCalls) + diagCost*float64(s.BISDCalls)
}

// Mapper is one self-mapping scheme.
type Mapper interface {
	Name() string
	// Map attempts to find a valid mapping within maxAttempts
	// configurations.
	Map(ch *Chip, app *App, maxAttempts int, rng *rand.Rand) (*Mapping, Stats)
}

// Blind BISM: re-randomize the whole configuration after every failed
// application-dependent BIST. No diagnosis at all — fast and simple at
// low defect densities, hopeless at high ones.
type Blind struct{}

// Name implements Mapper.
func (Blind) Name() string { return "blind" }

// Map implements Mapper.
func (Blind) Map(ch *Chip, app *App, maxAttempts int, rng *rand.Rand) (*Mapping, Stats) {
	scr := getScratch(ch.N, app.R)
	defer putScratch(scr)
	var st Stats
	m := scr.mapping(app)
	for st.Configs < maxAttempts {
		scr.randomMapping(ch.N, app, rng, m)
		st.Configs++
		st.BISTCalls++
		if ch.check(app, m, scr) {
			st.Success = true
			return m.clone(), st
		}
	}
	return nil, st
}

// Greedy BISM: after a failed BIST, run BISD and replace only the
// physical lines reported defective with fresh unused ones. Effective at
// high defect densities where blind retries almost never succeed.
type Greedy struct{}

// Name implements Mapper.
func (Greedy) Name() string { return "greedy" }

// Map implements Mapper.
func (g Greedy) Map(ch *Chip, app *App, maxAttempts int, rng *rand.Rand) (*Mapping, Stats) {
	scr := getScratch(ch.N, app.R)
	defer putScratch(scr)
	var st Stats
	m := scr.mapping(app)
	scr.randomMapping(ch.N, app, rng, m)
	st.Configs++
	return g.repair(ch, app, m, maxAttempts, rng, st, scr)
}

// repair runs the greedy BISD/bypass loop from an existing mapping.
func (Greedy) repair(ch *Chip, app *App, m *Mapping, maxAttempts int, rng *rand.Rand, st Stats, scr *scratch) (*Mapping, Stats) {
	for {
		st.BISTCalls++
		if ch.check(app, m, scr) {
			st.Success = true
			return m.clone(), st
		}
		if st.Configs >= maxAttempts {
			return nil, st
		}
		// The failed session's diagnosis (scr.bad) is the BISD answer.
		st.BISDCalls++
		if !replaceBad(ch.N, app, m, scr, rng) {
			// Not enough spare lines to bypass: restart randomly.
			scr.randomMapping(ch.N, app, rng, m)
		}
		st.Configs++
	}
}

// replaceBad remaps every logical line currently assigned to a reported
// defective physical line onto a random unused physical line. It
// reports false when the chip has no spare lines left to try.
func replaceBad(n int, app *App, m *Mapping, scr *scratch, rng *rand.Rand) bool {
	// Spare lines: physical indices outside the current selection
	// (selRow/selCol are valid from the just-failed check), in random
	// order.
	collect := func(sel []uint64) []int {
		s := scr.spare[:0]
		for p := 0; p < n; p++ {
			if !bitOf(sel, p) {
				s = append(s, p)
			}
		}
		for i := len(s) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			s[i], s[j] = s[j], s[i]
		}
		return s
	}
	replaced := false
	spare := collect(scr.selRow)
	si := 0
	for i, pr := range m.Rows {
		if scr.bad.Row(pr) {
			if si == len(spare) {
				return replaced
			}
			m.Rows[i] = spare[si]
			si++
			replaced = true
		}
	}
	spare = collect(scr.selCol)
	si = 0
	for j, pc := range m.Cols {
		if scr.bad.Col(pc) {
			if si == len(spare) {
				return replaced
			}
			m.Cols[j] = spare[si]
			si++
			replaced = true
		}
	}
	return replaced
}

// Hybrid BISM: blind for BlindBudget configurations, then greedy. The
// paper's recommended scheme: tracks blind's low cost at low defect
// density and greedy's robustness at high density, for any local or
// global density variation.
type Hybrid struct {
	BlindBudget int // blind configurations before switching (default 4)
}

// Name implements Mapper.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid(%d)", h.budget()) }

func (h Hybrid) budget() int {
	if h.BlindBudget <= 0 {
		return 4
	}
	return h.BlindBudget
}

// Map implements Mapper.
func (h Hybrid) Map(ch *Chip, app *App, maxAttempts int, rng *rand.Rand) (*Mapping, Stats) {
	scr := getScratch(ch.N, app.R)
	defer putScratch(scr)
	var st Stats
	budget := h.budget()
	if budget > maxAttempts {
		budget = maxAttempts
	}
	m := scr.mapping(app)
	drawn := false
	for st.Configs < budget {
		scr.randomMapping(ch.N, app, rng, m)
		drawn = true
		st.Configs++
		st.BISTCalls++
		if ch.check(app, m, scr) {
			st.Success = true
			return m.clone(), st
		}
	}
	if st.Configs >= maxAttempts || !drawn {
		return nil, st
	}
	return Greedy{}.repair(ch, app, m, maxAttempts, rng, st, scr)
}

// Validate re-checks a returned mapping against the chip (used by tests
// and by callers that want a final independent confirmation).
func Validate(ch *Chip, app *App, m *Mapping) bool {
	scr := getScratch(ch.N, app.R)
	defer putScratch(scr)
	return ch.check(app, m, scr)
}
