package bism

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/defect"
)

// benchChip draws a 64×64 chip at 5% crosspoint density with a few wire
// faults — a die the greedy repair loop has to work on, not a clean
// first-try pass.
func benchChip(b *testing.B) (*Chip, *App) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	p := defect.UniformCrosspoint(0.05)
	p.PRowBreak, p.PColBreak = 0.02, 0.02
	p.PRowBridge, p.PColBridge = 0.01, 0.01
	d := defect.Random(64, 64, p, rng)
	app := RandomApp(16, 16, 0.5, rng)
	return NewChip(d), app
}

// BenchmarkCheck measures one mask-based BIST/BISD session.
func BenchmarkCheck(b *testing.B) {
	ch, app := benchChip(b)
	rng := rand.New(rand.NewSource(2))
	scr := getScratch(ch.N, app.R)
	defer putScratch(scr)
	m := scr.mapping(app)
	scr.randomMapping(ch.N, app, rng, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.check(app, m, scr)
	}
}

// BenchmarkCheckScalar is the retained per-crosspoint reference session.
func BenchmarkCheckScalar(b *testing.B) {
	ch, app := benchChip(b)
	rng := rand.New(rand.NewSource(2))
	scr := getScratch(ch.N, app.R)
	m := scr.mapping(app)
	scr.randomMapping(ch.N, app, rng, m)
	mc := m.clone()
	putScratch(scr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.checkScalar(app, mc)
	}
}

// BenchmarkGreedyMap runs whole greedy self-mapping sessions.
func BenchmarkGreedyMap(b *testing.B) {
	ch, app := benchChip(b)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Greedy{}.Map(ch, app, 200, rng)
	}
}
