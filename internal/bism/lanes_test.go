package bism

import (
	"math/rand"
	"testing"

	"nanoxbar/internal/defect"
)

// blockMapping is the scalar form of CheckLanes's implicit candidate:
// logical line i on physical line off+i.
func blockMapping(app *App, rowOff, colOff int) *Mapping {
	m := &Mapping{Rows: make([]int, app.R), Cols: make([]int, app.C)}
	for i := range m.Rows {
		m.Rows[i] = rowOff + i
	}
	for j := range m.Cols {
		m.Cols[j] = colOff + j
	}
	return m
}

// TestCheckLanesMatchesScalarCheck pins the lane-word BIST session
// against the retained scalar check, lane by lane, across chip sizes
// that cross the 64-line word boundary of the scalar wire bitsets and
// across candidate offsets including the chip edges.
func TestCheckLanesMatchesScalarCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	params := []defect.Params{
		defect.UniformCrosspoint(0.05),
		{PStuckOpen: 0.02, PStuckClosed: 0.02, PRowBreak: 0.04, PColBreak: 0.04,
			PRowBridge: 0.04, PColBridge: 0.04},
		{},
		defect.UniformCrosspoint(1.0),
	}
	for _, n := range []int{8, 64, 70, 130} {
		for pi, p := range params {
			app := RandomApp(3, 5, 0.5, rng)
			lp := defect.NewLanePlanes(n, n)
			lp.Reset()
			for lane := 0; lane < 64; lane++ {
				lp.DrawLane(lane, p, rng)
			}
			offsets := [][2]int{{0, 0}, {1, 2}, {n - app.R, n - app.C}}
			if n > 64 {
				// Straddle the scalar bitsets' word boundary.
				offsets = append(offsets, [2]int{62, 61})
			}
			scalar := defect.NewMap(n, n)
			for _, off := range offsets {
				failed := CheckLanes(app, lp, off[0], off[1], ^uint64(0))
				m := blockMapping(app, off[0], off[1])
				for lane := 0; lane < 64; lane++ {
					lp.ExtractLane(scalar, lane)
					want := !Validate(NewChip(scalar), app, m)
					got := failed>>uint(lane)&1 == 1
					if got != want {
						t.Fatalf("n=%d params[%d] off=%v lane %d: lane check fail=%v, scalar fail=%v",
							n, pi, off, lane, got, want)
					}
				}
			}
		}
	}
}

// TestCheckLanesEarlyExitIsSound checks the pending-mask contract: for
// any pending mask, every pending lane gets its true verdict even when
// the scan exits early.
func TestCheckLanesEarlyExitIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	app := RandomApp(4, 4, 0.6, rng)
	lp := defect.NewLanePlanes(16, 16)
	lp.Reset()
	for lane := 0; lane < 64; lane++ {
		lp.DrawLane(lane, defect.UniformCrosspoint(0.3), rng)
	}
	full := CheckLanes(app, lp, 0, 0, ^uint64(0))
	for trial := 0; trial < 50; trial++ {
		pending := rng.Uint64()
		got := CheckLanes(app, lp, 0, 0, pending)
		if got&pending != full&pending {
			t.Fatalf("pending %#x: verdicts %#x, want %#x (full %#x)",
				pending, got&pending, full&pending, full)
		}
	}
}
