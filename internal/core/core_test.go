package core

import (
	"math/rand"
	"strings"
	"testing"

	"nanoxbar/internal/benchfn"
	"nanoxbar/internal/bism"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/truthtab"
)

func randTT(n int, rng *rand.Rand) truthtab.TT {
	f := truthtab.New(n)
	for a := uint64(0); a < f.Size(); a++ {
		if rng.Intn(2) == 1 {
			f.SetBit(a, true)
		}
	}
	return f
}

func TestSynthesizeAllTechnologiesCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := DefaultOptions()
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(3)
		f := randTT(n, rng)
		if f.IsZero() || f.IsOne() {
			continue
		}
		for _, tech := range []Technology{Diode, FET, FourTerminal} {
			im, err := Synthesize(f, tech, opts)
			if err != nil {
				t.Fatalf("%v: %v", tech, err)
			}
			if !im.Verify(f) {
				t.Fatalf("%v implementation wrong for %v", tech, f)
			}
			if im.Area() <= 0 {
				t.Fatalf("%v area %d", tech, im.Area())
			}
		}
	}
}

func TestPaperExampleSizes(t *testing.T) {
	// The §III running example must reproduce the paper's numbers:
	// diode 2×5, FET 4×4, lattice 2×2.
	f := benchfn.PaperExample().F
	c, err := CompareTechnologies(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Diode.Rows != 2 || c.Diode.Cols != 5 {
		t.Fatalf("diode %d×%d", c.Diode.Rows, c.Diode.Cols)
	}
	if c.FET.Rows != 4 || c.FET.Cols != 4 {
		t.Fatalf("FET %d×%d", c.FET.Rows, c.FET.Cols)
	}
	if c.Lattice.Rows != 2 || c.Lattice.Cols != 2 {
		t.Fatalf("lattice %d×%d", c.Lattice.Rows, c.Lattice.Cols)
	}
}

func TestLatticePreprocessingNeverHurts(t *testing.T) {
	// With TryPCircuit/TryDReduce on, the kept lattice is never larger
	// than the plain dual-method one.
	rng := rand.New(rand.NewSource(2))
	plain := DefaultOptions()
	plain.TryPCircuit, plain.TryDReduce = false, false
	full := DefaultOptions()
	for i := 0; i < 20; i++ {
		n := 3 + rng.Intn(2)
		f := randTT(n, rng)
		p, err := Synthesize(f, FourTerminal, plain)
		if err != nil {
			t.Fatal(err)
		}
		fu, err := Synthesize(f, FourTerminal, full)
		if err != nil {
			t.Fatal(err)
		}
		if fu.Area() > p.Area() {
			t.Fatalf("preprocessing grew area %d → %d", p.Area(), fu.Area())
		}
		if !fu.Verify(f) {
			t.Fatal("preprocessed lattice wrong")
		}
	}
}

func TestFourTerminalUsuallySmallest(t *testing.T) {
	// The paper's headline: four-terminal implementations offer
	// favorably better sizes. Verify the lattice wins or ties on a
	// clear majority of the benchmark suite.
	opts := DefaultOptions()
	wins, total := 0, 0
	for _, s := range benchfn.Suite() {
		if s.N() > 7 {
			continue // keep the test fast; benches cover the rest
		}
		c, err := CompareTechnologies(s.F, opts)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		total++
		if c.Lattice.Area() <= c.Diode.Area() && c.Lattice.Area() <= c.FET.Area() {
			wins++
		}
	}
	if wins*3 < total*2 {
		t.Fatalf("lattice smallest only %d/%d times", wins, total)
	}
}

func TestToAppShapes(t *testing.T) {
	f := benchfn.PaperExample().F
	opts := DefaultOptions()
	for _, tech := range []Technology{Diode, FET, FourTerminal} {
		im, err := Synthesize(f, tech, opts)
		if err != nil {
			t.Fatal(err)
		}
		app := im.ToApp()
		if app.R < 1 || app.C < 1 {
			t.Fatalf("%v app %d×%d", tech, app.R, app.C)
		}
		anyUsed := false
		for _, row := range app.Used {
			for _, u := range row {
				anyUsed = anyUsed || u
			}
		}
		if !anyUsed {
			t.Fatalf("%v app uses nothing", tech)
		}
	}
}

func TestMapWithRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := benchfn.Majority(3).F
	im, err := Synthesize(f, FourTerminal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	chip := defect.Random(16, 16, defect.UniformCrosspoint(0.03), rng)
	rep, err := MapWithRecovery(im, chip, bism.Hybrid{}, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mapping == nil {
		t.Fatalf("hybrid failed on a lightly defective chip: %+v", rep.Stats)
	}
	if !bism.Validate(bism.NewChip(chip), im.ToApp(), rep.Mapping) {
		t.Fatal("returned mapping invalid")
	}
}

func TestMapWithRecoveryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im, err := Synthesize(benchfn.Majority(3).F, FourTerminal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MapWithRecovery(im, defect.NewMap(3, 4), bism.Blind{}, 10, rng); err == nil {
		t.Fatal("non-square chip accepted")
	}
	if _, err := MapWithRecovery(im, defect.NewMap(2, 2), bism.Blind{}, 10, rng); err == nil {
		t.Fatal("too-small chip accepted")
	}
}

func TestTechnologyString(t *testing.T) {
	if Diode.String() != "diode" || FET.String() != "fet" || FourTerminal.String() != "4T-lattice" {
		t.Fatal("names")
	}
}

func TestParseTechnology(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Technology
	}{
		{"diode", Diode}, {"FET", FET}, {"lattice", FourTerminal},
		{"4T-lattice", FourTerminal}, {" 4t ", FourTerminal},
	} {
		got, err := ParseTechnology(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseTechnology(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseTechnology("memristor"); err == nil {
		t.Fatal("ParseTechnology accepted unknown technology")
	}
	// Every String() form must round-trip.
	for _, tech := range []Technology{Diode, FET, FourTerminal} {
		got, err := ParseTechnology(tech.String())
		if err != nil || got != tech {
			t.Fatalf("ParseTechnology(%v.String()) = %v, %v", tech, got, err)
		}
	}
}

func TestCacheKeyStability(t *testing.T) {
	f := benchfn.Majority(3).F
	g := benchfn.Parity(3).F
	opts := DefaultOptions()
	k1 := CacheKey(f, FourTerminal, opts)
	k2 := CacheKey(f.Clone(), FourTerminal, opts)
	if k1 != k2 {
		t.Fatal("identical inputs produced different cache keys")
	}
	if CacheKey(g, FourTerminal, opts) == k1 {
		t.Fatal("different functions share a cache key")
	}
	if CacheKey(f, Diode, opts) == k1 {
		t.Fatal("different technologies share a cache key")
	}
	changed := opts
	changed.TryPCircuit = !changed.TryPCircuit
	if CacheKey(f, FourTerminal, changed) == k1 {
		t.Fatal("different options share a cache key")
	}
	if !strings.Contains(Fingerprint(), "nanoxbar-core/") {
		t.Fatalf("fingerprint %q lacks version prefix", Fingerprint())
	}
}
