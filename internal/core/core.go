// Package core is the public facade of the nanoxbar library: the
// end-to-end synthesis and optimization pipeline of the DATE'17 paper.
// It takes a Boolean function, minimizes it, implements it on a chosen
// crossbar technology (diode, FET, or four-terminal lattice), optionally
// applies the P-circuit and D-reducibility preprocessing, and reports
// array sizes; and it wires the synthesized implementation into the
// fault-tolerance machinery (BIST/BISM/defect-unaware flow).
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/bism"
	"nanoxbar/internal/cube"
	"nanoxbar/internal/defect"
	"nanoxbar/internal/dreduce"
	"nanoxbar/internal/latsynth"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/pcircuit"
	"nanoxbar/internal/truthtab"
	"nanoxbar/internal/xbar2t"
)

// Technology selects the crosspoint device.
type Technology int

// Supported crossbar technologies.
const (
	Diode Technology = iota
	FET
	FourTerminal
)

func (t Technology) String() string {
	switch t {
	case Diode:
		return "diode"
	case FET:
		return "fet"
	case FourTerminal:
		return "4T-lattice"
	}
	return fmt.Sprintf("Technology(%d)", int(t))
}

// Options configure the pipeline.
type Options struct {
	Synth latsynth.Options
	// TryPCircuit also synthesizes a P-circuit decomposition for
	// four-terminal targets and keeps the smaller lattice.
	TryPCircuit bool
	// TryDReduce also synthesizes the D-reducible decomposition for
	// four-terminal targets and keeps the smaller lattice.
	TryDReduce bool
}

// DefaultOptions enable everything the paper's flow uses.
func DefaultOptions() Options {
	return Options{Synth: latsynth.DefaultOptions(), TryPCircuit: true, TryDReduce: true}
}

// Implementation is a synthesized crossbar realization of a function.
type Implementation struct {
	Tech       Technology
	Rows, Cols int
	Method     string // "dual", "pcircuit", "dreduce", "formula"
	FCover     cube.Cover
	DualCover  cube.Cover

	Lattice *lattice.Lattice   // four-terminal targets
	DiodeA  *xbar2t.DiodeArray // diode targets
	FETA    *xbar2t.FETArray   // FET targets

	// app caches the App() conversion. Implementations are shared
	// read-only through the engine cache, and a yield sweep maps the
	// same implementation onto thousands of dies — the application
	// matrix (and the used-column index bism precomputes inside it)
	// must be built once per implementation, not once per die.
	app atomic.Pointer[bism.App]
}

// Area returns Rows×Cols.
func (im *Implementation) Area() int { return im.Rows * im.Cols }

// Synthesize implements f on the chosen technology.
func Synthesize(f truthtab.TT, tech Technology, opts Options) (*Implementation, error) {
	return SynthesizeCtx(context.Background(), f, tech, opts)
}

// SynthesizeCtx is Synthesize with cancellation: the context is checked
// before each synthesis phase (dual method, P-circuit search,
// D-reducibility), so a canceled caller stops between the expensive
// steps and gets an apierr.ErrCanceled-classified error. Synthesis
// failures from the underlying engines are classified as
// apierr.ErrInfeasible.
func SynthesizeCtx(ctx context.Context, f truthtab.TT, tech Technology, opts Options) (*Implementation, error) {
	if err := ctx.Err(); err != nil {
		return nil, apierr.Canceled(err)
	}
	fc, dc, _ := latsynth.Covers(f, opts.Synth)
	switch tech {
	case Diode:
		a := xbar2t.NewDiodeArray(fc)
		return &Implementation{
			Tech: Diode, Rows: a.Rows(), Cols: a.Cols(),
			Method: "formula", FCover: fc, DualCover: dc, DiodeA: a,
		}, nil
	case FET:
		a := xbar2t.NewFETArray(fc, dc)
		s := xbar2t.FormulaSizes(fc, dc)
		return &Implementation{
			Tech: FET, Rows: s.FETRows, Cols: s.FETCols,
			Method: "formula", FCover: fc, DualCover: dc, FETA: a,
		}, nil
	case FourTerminal:
		best, err := latsynth.DualMethod(f, opts.Synth)
		if err != nil {
			return nil, apierr.Infeasible("core: dual method: %v", err)
		}
		method := "dual"
		bestL := best.Lattice
		// P-circuit search is O(support) full syntheses; beyond 8
		// support variables the exact engines are out of their
		// comfort zone and the search would dominate runtime.
		if opts.TryPCircuit && len(f.Support()) >= 2 && len(f.Support()) <= 8 {
			if err := ctx.Err(); err != nil {
				return nil, apierr.Canceled(err)
			}
			if pres, err := pcircuit.Best(f, pcircuit.Options{Synth: opts.Synth, Mode: pcircuit.WithIntersection}); err == nil {
				if pres.Area() < bestL.Area() {
					bestL, method = pres.Lattice, "pcircuit"
				}
			}
		}
		if opts.TryDReduce && !f.IsZero() {
			if err := ctx.Err(); err != nil {
				return nil, apierr.Canceled(err)
			}
			if dres, err := dreduce.Synthesize(f, opts.Synth); err == nil {
				if dres.Area() < bestL.Area() {
					bestL, method = dres.Lattice, "dreduce"
				}
			}
		}
		return &Implementation{
			Tech: FourTerminal, Rows: bestL.R, Cols: bestL.C,
			Method: method, FCover: best.FCover, DualCover: best.DualCover, Lattice: bestL,
		}, nil
	}
	return nil, apierr.BadSpec("core: unknown technology %v", tech)
}

// Verify re-checks that the implementation computes f.
func (im *Implementation) Verify(f truthtab.TT) bool {
	n := f.NumVars()
	switch im.Tech {
	case Diode:
		return im.DiodeA.Function(n).Equal(f)
	case FET:
		return im.FETA.Function(n).Equal(f)
	case FourTerminal:
		return im.Lattice.ImplementsFast(f)
	}
	return false
}

// Comparison reports the three technologies side by side for one
// function — the paper's central size comparison (E2).
type Comparison struct {
	Diode, FET, Lattice *Implementation
}

// CompareTechnologies synthesizes f on all three technologies.
func CompareTechnologies(f truthtab.TT, opts Options) (*Comparison, error) {
	return CompareTechnologiesCtx(context.Background(), f, opts)
}

// CompareTechnologiesCtx is CompareTechnologies with cancellation
// between the per-technology syntheses.
func CompareTechnologiesCtx(ctx context.Context, f truthtab.TT, opts Options) (*Comparison, error) {
	d, err := SynthesizeCtx(ctx, f, Diode, opts)
	if err != nil {
		return nil, err
	}
	ft, err := SynthesizeCtx(ctx, f, FET, opts)
	if err != nil {
		return nil, err
	}
	l, err := SynthesizeCtx(ctx, f, FourTerminal, opts)
	if err != nil {
		return nil, err
	}
	return &Comparison{Diode: d, FET: ft, Lattice: l}, nil
}

// ToApp converts an implementation into the self-mapping application
// format: the matrix of crosspoints the configuration must close (for
// two-terminal arrays) or program (for lattices, every non-constant-0
// site needs a working programmable crosspoint).
func (im *Implementation) ToApp() *bism.App {
	switch im.Tech {
	case Diode:
		used := make([][]bool, im.DiodeA.Rows())
		for r := range used {
			used[r] = make([]bool, im.DiodeA.Cols())
			copy(used[r], im.DiodeA.Crosspoints[r])
			used[r][im.DiodeA.Cols()-1] = true // output-column diode
		}
		return bism.NewApp(used)
	case FourTerminal:
		used := make([][]bool, im.Lattice.R)
		for r := range used {
			used[r] = make([]bool, im.Lattice.C)
			for c := range used[r] {
				used[r][c] = im.Lattice.At(r, c).Kind != lattice.Const0
			}
		}
		return bism.NewApp(used)
	default:
		// FET arrays: both planes flattened row-major by input line.
		used := make([][]bool, len(im.FETA.Rows))
		for r, l := range im.FETA.Rows {
			used[r] = make([]bool, im.FETA.NumCols())
			for j, p := range im.FETA.FProducts {
				used[r][j] = p.HasLiteral(l.Var, l.Neg)
			}
			for j, q := range im.FETA.DProducts {
				used[r][len(im.FETA.FProducts)+j] = q.HasLiteral(l.Var, l.Neg)
			}
		}
		return bism.NewApp(used)
	}
}

// App returns the cached self-mapping application form of the
// implementation. The result is shared: callers must treat it as
// read-only (bism does). Use ToApp for a private copy.
func (im *Implementation) App() *bism.App {
	if a := im.app.Load(); a != nil {
		return a
	}
	a := im.ToApp()
	// Racing builders compute structurally identical apps; last wins.
	im.app.Store(a)
	return a
}

// MapReport is the outcome of placing an implementation on a defective
// chip via a BISM scheme.
type MapReport struct {
	Mapping *bism.Mapping
	Stats   bism.Stats
}

// MapWithRecovery runs the chosen self-mapping scheme to place the
// implementation on a defective chip.
func MapWithRecovery(im *Implementation, chip *defect.Map, scheme bism.Mapper, maxAttempts int, rng *rand.Rand) (*MapReport, error) {
	app := im.App()
	if chip.R != chip.C {
		return nil, apierr.BadSpec("core: chip must be square, got %d×%d", chip.R, chip.C)
	}
	if app.R > chip.R || app.C > chip.C {
		return nil, apierr.Infeasible("core: implementation %d×%d exceeds chip %d×%d", app.R, app.C, chip.R, chip.C)
	}
	m, st := scheme.Map(bism.NewChip(chip), app, maxAttempts, rng)
	return &MapReport{Mapping: m, Stats: st}, nil
}
