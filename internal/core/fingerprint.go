package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"nanoxbar/internal/apierr"
	"nanoxbar/internal/truthtab"
)

// synthVersion is bumped whenever any synthesis algorithm changes its
// output for some input. Cached results keyed with Fingerprint() are
// invalidated automatically across such changes.
const synthVersion = 1

// Fingerprint identifies the synthesis implementation deterministically:
// same binary behavior ⇒ same string, changed behavior ⇒ changed
// version. Persisted caches and cross-process shards include it in
// their keys so stale results can never be served.
func Fingerprint() string {
	return fmt.Sprintf("nanoxbar-core/%d dual+pcircuit+dreduce qm+isop", synthVersion)
}

// ParseTechnology converts a wire-format name into a Technology. It
// accepts the String() forms plus common aliases.
func ParseTechnology(s string) (Technology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "diode":
		return Diode, nil
	case "fet":
		return FET, nil
	case "4t-lattice", "4t", "lattice", "fourterminal", "four-terminal":
		return FourTerminal, nil
	}
	return 0, apierr.BadSpec("core: unknown technology %q (want diode|fet|lattice)", s)
}

// Canonical serializes the options deterministically: two Options
// values produce the same string iff Synthesize behaves identically
// under them. Every field that influences synthesis must appear here;
// the encoding is versioned through Fingerprint, not this string.
func (o Options) Canonical() string {
	return fmt.Sprintf("exact=%t qmvars=%d qmprimes=%d qmcoverprimes=%d qmcoverwork=%d cells=%d postreduce=%t postreducemax=%d pcircuit=%t dreduce=%t",
		o.Synth.Exact,
		o.Synth.QM.MaxVars, o.Synth.QM.MaxPrimes, o.Synth.QM.MaxCoverPrimes, o.Synth.QM.MaxCoverWork,
		int(o.Synth.Cells), o.Synth.PostReduce, o.Synth.PostReduceMaxArea,
		o.TryPCircuit, o.TryDReduce)
}

// CacheKey returns a stable, collision-resistant key for the synthesis
// result of (f, tech, opts): a hex SHA-256 over the implementation
// fingerprint, the technology, the canonical options, and the full
// truth table. Identical inputs map to identical keys across processes
// and machines.
func CacheKey(f truthtab.TT, tech Technology, opts Options) string {
	h := sha256.New()
	h.Write([]byte(Fingerprint()))
	h.Write([]byte{0})
	h.Write([]byte(tech.String()))
	h.Write([]byte{0})
	h.Write([]byte(opts.Canonical()))
	h.Write([]byte{0})
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(f.NumVars()))
	h.Write(buf[:])
	for _, w := range f.Words() {
		binary.LittleEndian.PutUint64(buf[:], w)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
