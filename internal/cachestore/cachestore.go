// Package cachestore persists the engine's synthesis cache across
// process restarts. The paper's defect-unaware flow (Fig. 6) synthesizes
// one function and re-maps it across many dies, so a serving daemon that
// restarts cold re-pays the most expensive step — synthesis — for every
// function it had already answered. A snapshot fixes that: the daemon
// writes its completed cache slots to disk and reloads them at boot,
// answering previously-synthesized functions with pure cache hits.
//
// Format: a gzip stream of newline-delimited JSON. The first line is a
// header carrying a magic string, a format version, and the synthesis
// fingerprint (core.Fingerprint) of the writer; each following line is
// one cache entry — the canonical cache key plus a structural encoding
// of the Implementation. Readers reject snapshots whose magic, version,
// or fingerprint do not match: a snapshot written by a different
// synthesis implementation must never seed a cache, because its keys and
// results both encode the old behavior.
//
// Two-terminal implementations (diode, FET) are stored as their SOP
// covers and rebuilt deterministically through the xbar2t constructors;
// four-terminal implementations additionally store the lattice sites,
// which the dual/P-circuit/D-reduce search does not reproduce cheaply.
package cachestore

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nanoxbar/internal/core"
	"nanoxbar/internal/cube"
	"nanoxbar/internal/lattice"
	"nanoxbar/internal/xbar2t"
)

// Magic identifies a cache snapshot stream.
const Magic = "nanoxbar-cache-snapshot"

// Version is bumped on incompatible changes to the entry encoding.
const Version = 1

// ErrFingerprintMismatch reports a structurally valid snapshot written
// by a different synthesis implementation. Callers start cold.
var ErrFingerprintMismatch = errors.New("cachestore: snapshot fingerprint does not match this binary")

// Entry is one persisted cache slot.
type Entry struct {
	Key string
	Imp *core.Implementation
}

// header is the first NDJSON line of a snapshot.
type header struct {
	Magic       string `json:"magic"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Entries     int    `json:"entries"`
}

// wireCube mirrors cube.Cube with stable JSON names.
type wireCube struct {
	Pos uint64 `json:"p"`
	Neg uint64 `json:"n,omitempty"`
}

// wireSite is one lattice crosspoint: kind, variable, negation.
type wireSite struct {
	Kind uint8 `json:"k"`
	Var  int   `json:"v,omitempty"`
	Neg  bool  `json:"neg,omitempty"`
}

// wireLattice stores the four-terminal array row-major.
type wireLattice struct {
	R     int        `json:"r"`
	C     int        `json:"c"`
	Sites []wireSite `json:"sites"`
}

// wireImp is the structural encoding of a core.Implementation.
type wireImp struct {
	Tech      string       `json:"tech"`
	Rows      int          `json:"rows"`
	Cols      int          `json:"cols"`
	Method    string       `json:"method"`
	FCover    []wireCube   `json:"f_cover"`
	DualCover []wireCube   `json:"dual_cover,omitempty"`
	Lattice   *wireLattice `json:"lattice,omitempty"`
}

// wireEntry is one NDJSON entry line.
type wireEntry struct {
	Key string  `json:"key"`
	Imp wireImp `json:"imp"`
}

func encodeCover(c cube.Cover) []wireCube {
	out := make([]wireCube, len(c))
	for i, cb := range c {
		out[i] = wireCube{Pos: cb.Pos, Neg: cb.Neg}
	}
	return out
}

func decodeCover(w []wireCube) cube.Cover {
	out := make(cube.Cover, len(w))
	for i, cb := range w {
		out[i] = cube.Cube{Pos: cb.Pos, Neg: cb.Neg}
	}
	return out
}

// encodeImp flattens an implementation into its wire form.
func encodeImp(im *core.Implementation) (wireImp, error) {
	w := wireImp{
		Tech:      im.Tech.String(),
		Rows:      im.Rows,
		Cols:      im.Cols,
		Method:    im.Method,
		FCover:    encodeCover(im.FCover),
		DualCover: encodeCover(im.DualCover),
	}
	if im.Tech == core.FourTerminal {
		if im.Lattice == nil {
			return w, fmt.Errorf("cachestore: four-terminal implementation without lattice")
		}
		l := &wireLattice{R: im.Lattice.R, C: im.Lattice.C, Sites: make([]wireSite, 0, im.Lattice.R*im.Lattice.C)}
		for r := 0; r < im.Lattice.R; r++ {
			for c := 0; c < im.Lattice.C; c++ {
				s := im.Lattice.At(r, c)
				l.Sites = append(l.Sites, wireSite{Kind: uint8(s.Kind), Var: s.Var, Neg: s.Neg})
			}
		}
		w.Lattice = l
	}
	return w, nil
}

// decodeImp rebuilds an implementation, re-deriving the crossbar arrays
// from the persisted covers (diode, FET) or lattice sites (4T).
func decodeImp(w wireImp) (*core.Implementation, error) {
	tech, err := core.ParseTechnology(w.Tech)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	if w.Rows < 0 || w.Cols < 0 {
		return nil, fmt.Errorf("cachestore: negative shape %d×%d", w.Rows, w.Cols)
	}
	im := &core.Implementation{
		Tech:      tech,
		Rows:      w.Rows,
		Cols:      w.Cols,
		Method:    w.Method,
		FCover:    decodeCover(w.FCover),
		DualCover: decodeCover(w.DualCover),
	}
	switch tech {
	case core.Diode:
		im.DiodeA = xbar2t.NewDiodeArray(im.FCover)
	case core.FET:
		im.FETA = xbar2t.NewFETArray(im.FCover, im.DualCover)
	case core.FourTerminal:
		wl := w.Lattice
		if wl == nil {
			return nil, fmt.Errorf("cachestore: four-terminal entry without lattice")
		}
		if wl.R < 1 || wl.C < 1 || wl.R*wl.C != len(wl.Sites) {
			return nil, fmt.Errorf("cachestore: lattice shape %d×%d does not match %d sites", wl.R, wl.C, len(wl.Sites))
		}
		l := lattice.New(wl.R, wl.C)
		for i, s := range wl.Sites {
			if s.Kind > uint8(lattice.LiteralSite) {
				return nil, fmt.Errorf("cachestore: bad site kind %d at index %d", s.Kind, i)
			}
			if s.Kind == uint8(lattice.LiteralSite) && (s.Var < 0 || s.Var >= 64) {
				return nil, fmt.Errorf("cachestore: site variable %d out of range at index %d", s.Var, i)
			}
			l.Set(i/wl.C, i%wl.C, lattice.Site{Kind: lattice.SiteKind(s.Kind), Var: s.Var, Neg: s.Neg})
		}
		im.Lattice = l
	}
	return im, nil
}

// Write streams a snapshot of the entries to w, stamped with the given
// synthesis fingerprint.
func Write(w io.Writer, fingerprint string, entries []Entry) error {
	zw := gzip.NewWriter(w)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(header{Magic: Magic, Version: Version, Fingerprint: fingerprint, Entries: len(entries)}); err != nil {
		return fmt.Errorf("cachestore: write header: %w", err)
	}
	for _, e := range entries {
		if e.Key == "" || e.Imp == nil {
			return fmt.Errorf("cachestore: refusing to write empty entry (key=%q)", e.Key)
		}
		wi, err := encodeImp(e.Imp)
		if err != nil {
			return err
		}
		if err := enc.Encode(wireEntry{Key: e.Key, Imp: wi}); err != nil {
			return fmt.Errorf("cachestore: write entry: %w", err)
		}
	}
	return zw.Close()
}

// Read decodes a snapshot stream, returning the writer's fingerprint
// and the entries. wantFingerprint, when non-empty, must match the
// header's or Read fails with ErrFingerprintMismatch before decoding
// any entry.
func Read(r io.Reader, wantFingerprint string) (string, []Entry, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return "", nil, fmt.Errorf("cachestore: not a snapshot (gzip): %w", err)
	}
	defer zr.Close()
	dec := json.NewDecoder(bufio.NewReader(zr))
	var h header
	if err := dec.Decode(&h); err != nil {
		return "", nil, fmt.Errorf("cachestore: read header: %w", err)
	}
	if h.Magic != Magic {
		return "", nil, fmt.Errorf("cachestore: bad magic %q", h.Magic)
	}
	if h.Version != Version {
		return "", nil, fmt.Errorf("cachestore: snapshot version %d, this binary reads %d", h.Version, Version)
	}
	if wantFingerprint != "" && h.Fingerprint != wantFingerprint {
		return h.Fingerprint, nil, fmt.Errorf("%w: snapshot %q, binary %q", ErrFingerprintMismatch, h.Fingerprint, wantFingerprint)
	}
	if h.Entries < 0 {
		return h.Fingerprint, nil, fmt.Errorf("cachestore: negative entry count %d", h.Entries)
	}
	// Preallocate from the header only within reason: a corrupt count
	// must not drive the allocation, entries are still bounds-checked
	// against it after the read.
	prealloc := h.Entries
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	entries := make([]Entry, 0, prealloc)
	for {
		var we wireEntry
		if err := dec.Decode(&we); err == io.EOF {
			break
		} else if err != nil {
			return h.Fingerprint, nil, fmt.Errorf("cachestore: read entry %d: %w", len(entries), err)
		}
		if we.Key == "" {
			return h.Fingerprint, nil, fmt.Errorf("cachestore: entry %d has empty key", len(entries))
		}
		im, err := decodeImp(we.Imp)
		if err != nil {
			return h.Fingerprint, nil, fmt.Errorf("cachestore: entry %d: %w", len(entries), err)
		}
		entries = append(entries, Entry{Key: we.Key, Imp: im})
	}
	if h.Entries != len(entries) {
		return h.Fingerprint, nil, fmt.Errorf("cachestore: truncated snapshot: header says %d entries, read %d", h.Entries, len(entries))
	}
	return h.Fingerprint, entries, nil
}

// Save writes the snapshot atomically: a temp file in the target
// directory, fsync'd, then renamed over path. A crash mid-save leaves
// the previous snapshot intact.
func Save(path, fingerprint string, entries []Entry) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("cachestore: save: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := Write(tmp, fingerprint, entries); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cachestore: save: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cachestore: save: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cachestore: save: rename: %w", err)
	}
	// Sweep temp files abandoned by saves that died before their rename
	// (kill -9 mid-checkpoint): without this every crash leaks one. Our
	// own temp is already renamed away, so anything still matching is
	// stale. Saves to one path are serialized by the caller, so no live
	// writer loses its file here.
	if stale, err := filepath.Glob(path + ".tmp-*"); err == nil {
		for _, s := range stale {
			_ = os.Remove(s)
		}
	}
	return nil
}

// Load reads the snapshot at path, enforcing the fingerprint match.
func Load(path, wantFingerprint string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cachestore: load: %w", err)
	}
	defer f.Close()
	_, entries, err := Read(f, wantFingerprint)
	return entries, err
}
